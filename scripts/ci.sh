#!/usr/bin/env sh
# CI gate: build, vet (go vet + the repo's own invariant analyzers), then
# the full test suite under the race detector. Run from anywhere; operates
# on the repository containing this script.
set -eu

cd "$(dirname "$0")/.."

echo '== go build'
go build ./...

echo '== go vet'
go vet ./...

echo '== pcsi-vet (invariant analyzers)'
go run ./cmd/pcsi-vet ./...

echo '== pcsi-vet machine formats (SARIF artifact + json determinism)'
# SARIF for archive/code-scanning upload. pcsi-vet exits 1 when diagnostics
# fire, but the tree is clean here (the text run above already gated).
go run ./cmd/pcsi-vet -format sarif ./... > pcsi-vet.sarif
# The machine formats must be byte-identical across runs on the same tree.
go run ./cmd/pcsi-vet -format json ./... > /tmp/pcsi-vet-a.json
go run ./cmd/pcsi-vet -format json ./... > /tmp/pcsi-vet-b.json
cmp /tmp/pcsi-vet-a.json /tmp/pcsi-vet-b.json || { echo 'pcsi-vet -format json not byte-identical across runs' >&2; exit 1; }

echo '== gofmt'
badfmt=$(gofmt -l . | grep -v '^\.git' || true)
if [ -n "$badfmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$badfmt" >&2
    exit 1
fi

echo '== go test -race'
go test -race ./...

echo '== trace export smoke'
go run ./cmd/pcsictl trace e1 -o /tmp/t.json 2>/dev/null
go run ./cmd/pcsictl trace -verify /tmp/t.json

echo '== chaos smoke (seed sweep with fault injection; exits 1 on invariant violation)'
go run ./cmd/pcsictl chaos E4 -seeds 5

echo '== E13 overload smoke (QoS holds goodput >= 0.9x capacity, sheds under load; exits 1 on FAIL)'
go run ./cmd/pcsi-bench -run E13 > /tmp/e13-a.txt
go run ./cmd/pcsi-bench -run E13 > /tmp/e13-b.txt
cmp /tmp/e13-a.txt /tmp/e13-b.txt || { echo 'E13 not byte-identical across runs' >&2; exit 1; }

echo '== E14 cache smoke (colocated caches beat cache-off under Zipf fan-out; exits 1 on FAIL)'
go run ./cmd/pcsi-bench -run E14 > /tmp/e14-a.txt
go run ./cmd/pcsi-bench -run E14 > /tmp/e14-b.txt
cmp /tmp/e14-a.txt /tmp/e14-b.txt || { echo 'E14 not byte-identical across runs' >&2; exit 1; }
grep -q '\[PASS\] hot-keys-hit' /tmp/e14-a.txt || { echo 'E14 hit-rate shape check missing' >&2; exit 1; }
grep -q '\[PASS\] lease-zero-stale' /tmp/e14-a.txt || { echo 'E14 lease coherence check missing' >&2; exit 1; }

echo '== E15 faasfs smoke (transactional POSIX beats NFS and REST under concurrent writers; exits 1 on FAIL)'
go run ./cmd/pcsi-bench -run E15 > /tmp/e15-a.txt
go run ./cmd/pcsi-bench -run E15 > /tmp/e15-b.txt
cmp /tmp/e15-a.txt /tmp/e15-b.txt || { echo 'E15 not byte-identical across runs' >&2; exit 1; }
grep -q '\[PASS\] faasfs-serializable' /tmp/e15-a.txt || { echo 'E15 serializability check missing' >&2; exit 1; }
grep -q '\[PASS\] faasfs-beats-rest' /tmp/e15-a.txt || { echo 'E15 faasfs-vs-rest shape check missing' >&2; exit 1; }

echo '== dashboard smoke (telemetry plane; HTML + JSON timeline must be byte-identical across re-runs)'
go run ./cmd/pcsictl dash e13 -seed 1 -o /tmp/dash-a.html 2>/dev/null
go run ./cmd/pcsictl dash e13 -seed 1 -o /tmp/dash-b.html 2>/dev/null
cmp /tmp/dash-a.html /tmp/dash-b.html || { echo 'dash HTML not byte-identical across runs' >&2; exit 1; }
cmp /tmp/dash-a.json /tmp/dash-b.json || { echo 'dash JSON timeline not byte-identical across runs' >&2; exit 1; }
cp /tmp/dash-a.html pcsi-dash-e13.html
cp /tmp/dash-a.json pcsi-dash-e13.json

echo '== engine microbenchmark (regression gate vs committed BENCH_engine.json)'
# Fails (exit 1) if allocs/event regresses >10% or events/sec drops >10%
# against the committed baseline. Writes the fresh run as an artifact so a
# deliberate perf change can be reviewed and the baseline re-committed.
go run ./cmd/pcsi-bench -engine \
    -engine-baseline BENCH_engine.json \
    -engine-out pcsi-bench-engine.json

echo 'CI OK'

// Benchmarks regenerating the paper's tables and figures under `go test
// -bench`. Two kinds of numbers appear:
//
//   - wall-clock benchmarks (Table 1's measured rows): ns/op is the
//     result;
//   - simulation benchmarks: ns/op measures simulator throughput, and the
//     paper-comparable number — virtual latency — is attached as the
//     custom metric "sim-ns/op" via b.ReportMetric.
//
// The experiment binary (cmd/pcsi-bench) prints the same data as tables
// with paper-vs-measured columns; EXPERIMENTS.md records both.
package repro_test

import (
	"syscall"
	"testing"
	"time"

	"repro/internal/consistency"
	"repro/internal/dynamo"
	"repro/internal/media"
	"repro/internal/nfsbase"
	"repro/internal/object"
	"repro/internal/restbase"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/wire"
	"repro/pcsi"
)

// --- Table 1 (E1): measured rows ---

func BenchmarkTable1_MarshalJSON1K(b *testing.B) {
	codec := wire.JSONCodec{}
	msg := &wire.Message{Op: "GetObject", Key: "bucket/key", Auth: "token", Body: make([]byte, 1024)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc, err := codec.Encode(msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := codec.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_MarshalBinary1K(b *testing.B) {
	codec := wire.BinaryCodec{}
	msg := &wire.Message{Op: "GetObject", Key: "bucket/key", Auth: "token", Body: make([]byte, 1024)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc, err := codec.Encode(msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := codec.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_HTTPLoopback(b *testing.B) {
	srv, err := restbase.NewLoopbackHTTP(make([]byte, 1024))
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Get(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_SocketRoundTrip(b *testing.B) {
	srv, err := restbase.NewLoopbackTCP()
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	payload := make([]byte, 64)
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := srv.RoundTrip(payload, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_SocketDialPerRequest(b *testing.B) {
	srv, err := restbase.NewLoopbackTCP()
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	payload := make([]byte, 64)
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := srv.DialRoundTrip(payload, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_Syscall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = syscall.Getpid()
	}
}

func BenchmarkTable1_IndirectCall(b *testing.B) {
	f := func(x int) int { return x + 1 }
	fp := &f
	sink := 0
	for i := 0; i < b.N; i++ {
		sink = (*fp)(sink)
	}
	_ = sink
}

// --- §2.1 (E2): 1KB fetch, NFS vs DynamoDB ---

func BenchmarkFetch1KB_NFS(b *testing.B) {
	env := sim.NewEnv(1)
	net := simnet.New(env, simnet.DC2021)
	srv := nfsbase.NewServer(net, media.Disk)
	if err := srv.Export("obj", make([]byte, 1024)); err != nil {
		b.Fatal(err)
	}
	client := net.AddNode(1)
	var simTotal time.Duration
	n := b.N
	env.Go("bench", func(p *sim.Proc) {
		m, err := srv.Mount(p, client)
		if err != nil {
			b.Error(err)
			return
		}
		h, err := m.Lookup(p, "obj")
		if err != nil {
			b.Error(err)
			return
		}
		start := p.Now()
		for i := 0; i < n; i++ {
			if _, err := m.Read(p, h, 0, 1024); err != nil {
				b.Error(err)
				return
			}
		}
		simTotal = p.Now().Sub(start)
	})
	b.ResetTimer()
	env.Run()
	b.ReportMetric(float64(simTotal.Nanoseconds())/float64(n), "sim-ns/op")
}

func BenchmarkFetch1KB_DynamoDB(b *testing.B) {
	env := sim.NewEnv(1)
	net := simnet.New(env, simnet.DC2021)
	tbl := dynamo.New(net, 3, media.Disk)
	client := net.AddNode(2)
	var simTotal time.Duration
	n := b.N
	env.Go("bench", func(p *sim.Proc) {
		if err := tbl.PutItem(p, client, "tok", "obj", make([]byte, 1024)); err != nil {
			b.Error(err)
			return
		}
		start := p.Now()
		for i := 0; i < n; i++ {
			if _, err := tbl.GetItem(p, client, "tok", "obj", true); err != nil {
				b.Error(err)
				return
			}
		}
		simTotal = p.Now().Sub(start)
	})
	b.ResetTimer()
	env.Run()
	b.ReportMetric(float64(simTotal.Nanoseconds())/float64(n), "sim-ns/op")
}

// --- Figure 1 (E3): mutability-gated operations ---

func BenchmarkMutability_TransitionCheck(b *testing.B) {
	levels := object.Levels()
	ok := 0
	for i := 0; i < b.N; i++ {
		if levels[i%4].CanTransition(levels[(i+1)%4]) {
			ok++
		}
	}
	_ = ok
}

// BenchmarkMutability_AppendOnlyWrite measures the raw object append
// primitive (E3's lattice), below the capability layer by design.
//
//pcsi:allow rawmutation benchmarks the object-layer primitive itself.
func BenchmarkMutability_AppendOnlyWrite(b *testing.B) {
	o := object.New(1, object.Regular)
	if err := o.SetMutability(object.AppendOnly); err != nil {
		b.Fatal(err)
	}
	chunk := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := o.Append(chunk); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 2 / §4.1 (E4): pipeline placement ---

func benchPipeline(b *testing.B, policy pcsi.PlacementPolicy) {
	opts := pcsi.DefaultOptions()
	opts.Policy = policy
	cloud := pcsi.New(opts)
	client := cloud.NewClient(0)
	n := b.N
	if n > 200 {
		n = 200 // each iteration is a full 3-stage pipeline
	}
	var simTotal time.Duration
	cloud.Env().Go("bench", func(p *pcsi.Proc) {
		weights, err := client.Create(p, pcsi.Regular)
		if err != nil {
			b.Error(err)
			return
		}
		if err := client.Put(p, weights, make([]byte, 1<<16)); err != nil {
			b.Error(err)
			return
		}
		if err := client.Freeze(p, weights, pcsi.Immutable); err != nil {
			b.Error(err)
			return
		}
		pre, err := client.RegisterFunction(p, pcsi.FnConfig{
			Name: "pre", Kind: pcsi.PlatformWasm,
			Handler: func(fc *pcsi.FnCtx) error {
				fc.Proc().Sleep(2 * time.Millisecond)
				return fc.Client.Put(fc.Proc(), fc.Outputs[0], make([]byte, 8<<20))
			},
		})
		if err != nil {
			b.Error(err)
			return
		}
		infer, err := client.RegisterFunction(p, pcsi.FnConfig{
			Name: "infer", Kind: pcsi.PlatformGPU,
			Handler: func(fc *pcsi.FnCtx) error {
				if dev := fc.Device(); dev != nil {
					fc.Proc().Sleep(dev.Ensure("weights", 50<<20))
				}
				if _, err := fc.Client.Get(fc.Proc(), fc.Inputs[0]); err != nil {
					return err
				}
				fc.Proc().Sleep(5 * time.Millisecond)
				return fc.Client.Put(fc.Proc(), fc.Outputs[0], make([]byte, 1024))
			},
		})
		if err != nil {
			b.Error(err)
			return
		}
		post, err := client.RegisterFunction(p, pcsi.FnConfig{
			Name: "post", Kind: pcsi.PlatformWasm,
			Handler: func(fc *pcsi.FnCtx) error {
				_, err := fc.Client.Get(fc.Proc(), fc.Inputs[0])
				return err
			},
		})
		if err != nil {
			b.Error(err)
			return
		}
		var start pcsi.Time
		for i := -1; i < n; i++ { // iteration -1 is warm-up (cold starts)
			if i == 0 {
				start = p.Now()
			}
			upload, err := client.Create(p, pcsi.Regular, pcsi.WithEphemeral())
			if err != nil {
				b.Error(err)
				return
			}
			result, err := client.Create(p, pcsi.Regular, pcsi.WithEphemeral())
			if err != nil {
				b.Error(err)
				return
			}
			if _, err := client.RunGraph(p, []pcsi.GraphTask{
				{Name: "pre", Fn: pre, Outputs: []pcsi.Ref{upload}, PreferGPUNode: policy == pcsi.PlaceColocate},
				{Name: "infer", Fn: infer, After: []string{"pre"}, Colocate: true,
					Inputs: []pcsi.Ref{upload}, Outputs: []pcsi.Ref{result}},
				{Name: "post", Fn: post, After: []string{"infer"}, Colocate: true,
					Inputs: []pcsi.Ref{result}},
			}); err != nil {
				b.Error(err)
				return
			}
			client.Drop(upload)
			client.Drop(result)
		}
		simTotal = p.Now().Sub(start)
	})
	b.ResetTimer()
	cloud.Env().Run()
	b.ReportMetric(float64(simTotal.Nanoseconds())/float64(n), "sim-ns/op")
	b.ReportMetric(float64(cloud.BytesMoved)/float64(n), "net-bytes/op")
}

func BenchmarkPipeline_Naive(b *testing.B)    { benchPipeline(b, pcsi.PlaceNaive) }
func BenchmarkPipeline_Colocate(b *testing.B) { benchPipeline(b, pcsi.PlaceColocate) }

// --- §3.3/§4.3 (E6): the consistency menu ---

func benchConsistency(b *testing.B, lvl consistency.Level, write bool) {
	env := sim.NewEnv(1)
	net := simnet.New(env, simnet.DC2021)
	var nodes []simnet.NodeID
	for i := 0; i < 3; i++ {
		nodes = append(nodes, net.AddNode(i))
	}
	grp := consistency.NewGroup(env, net, nodes, media.NVMe)
	client := net.AddNode(0)
	payload := make([]byte, 4096)
	var simTotal time.Duration
	n := b.N
	env.Go("bench", func(p *sim.Proc) {
		id, err := grp.Create(p, client, object.Regular)
		if err != nil {
			b.Error(err)
			return
		}
		p.Sleep(50 * time.Millisecond)
		//pcsi:allow rawmutation mutator runs inside Group.Apply's quorum-fenced update path
		if err := grp.Apply(p, client, id, consistency.Linearizable, len(payload), func(o *object.Object) error {
			return o.SetData(payload)
		}); err != nil {
			b.Error(err)
			return
		}
		start := p.Now()
		for i := 0; i < n; i++ {
			if write {
				//pcsi:allow rawmutation mutator runs inside Group.Apply's quorum-fenced update path
				err = grp.Apply(p, client, id, lvl, len(payload), func(o *object.Object) error {
					return o.SetData(payload)
				})
			} else {
				_, err = grp.Read(p, client, id, lvl)
			}
			if err != nil {
				b.Error(err)
				return
			}
		}
		simTotal = p.Now().Sub(start)
	})
	b.ResetTimer()
	env.Run()
	b.ReportMetric(float64(simTotal.Nanoseconds())/float64(n), "sim-ns/op")
}

func BenchmarkConsistency_LinearizableWrite(b *testing.B) {
	benchConsistency(b, consistency.Linearizable, true)
}
func BenchmarkConsistency_EventualWrite(b *testing.B) {
	benchConsistency(b, consistency.Eventual, true)
}
func BenchmarkConsistency_LinearizableRead(b *testing.B) {
	benchConsistency(b, consistency.Linearizable, false)
}
func BenchmarkConsistency_EventualRead(b *testing.B) {
	benchConsistency(b, consistency.Eventual, false)
}

// --- §2.1 (E7): granularity sweep, REST vs PCSI on the fast network ---

func benchGranularityREST(b *testing.B, size int) {
	env := sim.NewEnv(1)
	net := simnet.New(env, simnet.FastNet)
	var nodes []simnet.NodeID
	for i := 0; i < 3; i++ {
		nodes = append(nodes, net.AddNode(i))
	}
	grp := consistency.NewGroup(env, net, nodes, media.DRAM)
	cfg := restbase.DefaultConfig()
	cfg.RawBody = true
	gw := restbase.NewGateway(net, grp, cfg)
	client := net.AddNode(0)
	var simTotal time.Duration
	n := b.N
	env.Go("bench", func(p *sim.Proc) {
		id, err := gw.Create(p, client, "tok", object.Regular)
		if err != nil {
			b.Error(err)
			return
		}
		if err := gw.Put(p, client, "tok", id, make([]byte, size), consistency.Eventual); err != nil {
			b.Error(err)
			return
		}
		start := p.Now()
		for i := 0; i < n; i++ {
			if _, err := gw.Get(p, client, "tok", id, consistency.Eventual); err != nil {
				b.Error(err)
				return
			}
		}
		simTotal = p.Now().Sub(start)
	})
	b.ResetTimer()
	env.Run()
	b.ReportMetric(float64(simTotal.Nanoseconds())/float64(n), "sim-ns/op")
}

func benchGranularityPCSI(b *testing.B, size int) {
	opts := pcsi.DefaultOptions()
	opts.NetProfile = simnet.FastNet
	opts.Media = media.DRAM
	cloud := pcsi.New(opts)
	client := cloud.NewClient(0)
	var simTotal time.Duration
	n := b.N
	cloud.Env().Go("bench", func(p *pcsi.Proc) {
		ref, err := client.Create(p, pcsi.Regular, pcsi.WithConsistency(pcsi.Eventual))
		if err != nil {
			b.Error(err)
			return
		}
		if err := client.Put(p, ref, make([]byte, size)); err != nil {
			b.Error(err)
			return
		}
		start := p.Now()
		for i := 0; i < n; i++ {
			if _, err := client.GetAt(p, ref, pcsi.Eventual); err != nil {
				b.Error(err)
				return
			}
		}
		simTotal = p.Now().Sub(start)
	})
	b.ResetTimer()
	cloud.Env().Run()
	b.ReportMetric(float64(simTotal.Nanoseconds())/float64(n), "sim-ns/op")
}

func BenchmarkGranularity_REST_64B(b *testing.B)  { benchGranularityREST(b, 64) }
func BenchmarkGranularity_REST_64KB(b *testing.B) { benchGranularityREST(b, 64<<10) }
func BenchmarkGranularity_REST_4MB(b *testing.B)  { benchGranularityREST(b, 4<<20) }
func BenchmarkGranularity_PCSI_64B(b *testing.B)  { benchGranularityPCSI(b, 64) }
func BenchmarkGranularity_PCSI_64KB(b *testing.B) { benchGranularityPCSI(b, 64<<10) }
func BenchmarkGranularity_PCSI_4MB(b *testing.B)  { benchGranularityPCSI(b, 4<<20) }

// --- §3.2 (E8): authorisation paths ---

func BenchmarkAuth_CapabilityCheck(b *testing.B) {
	cloud := pcsi.New(pcsi.DefaultOptions())
	client := cloud.NewClient(0)
	var ref pcsi.Ref
	cloud.Env().Go("setup", func(p *pcsi.Proc) {
		var err error
		ref, err = client.Create(p, pcsi.Regular)
		if err != nil {
			b.Error(err)
		}
	})
	cloud.Env().Run()
	caps := cloud.Caps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The raw capability validation the PCSI data path performs.
		_ = caps.Checks
		_ = ref.Rights()
	}
}

// --- E9/E5: scheduling and autoscale throughput of the simulator ---

func BenchmarkSimulator_InvokeThroughput(b *testing.B) {
	opts := pcsi.DefaultOptions()
	opts.Media = media.DRAM
	cloud := pcsi.New(opts)
	client := cloud.NewClient(0)
	n := b.N
	cloud.Env().Go("bench", func(p *pcsi.Proc) {
		fn, err := client.RegisterFunction(p, pcsi.FnConfig{
			Name: "noop", Kind: pcsi.PlatformWasm,
			Handler: func(fc *pcsi.FnCtx) error { return nil },
		})
		if err != nil {
			b.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			if _, err := client.Invoke(p, fn, pcsi.InvokeArgs{}); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ResetTimer()
	cloud.Env().Run()
}

// --- E10: GC throughput ---

func BenchmarkGC_MarkSweep(b *testing.B) {
	opts := pcsi.DefaultOptions()
	opts.Media = media.DRAM
	cloud := pcsi.New(opts)
	client := cloud.NewClient(0)
	var refs []pcsi.Ref
	cloud.Env().Go("setup", func(p *pcsi.Proc) {
		for i := 0; i < 500; i++ {
			ref, err := client.Create(p, pcsi.Regular)
			if err != nil {
				b.Error(err)
				return
			}
			refs = append(refs, ref)
		}
	})
	cloud.Env().Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cloud.Collect() // everything reachable: pure mark cost
	}
	b.StopTimer()
	if len(refs) == 0 {
		b.Fatal("setup failed")
	}
}

// BenchmarkSimEngine measures raw event throughput of the DES core.
func BenchmarkSimEngine_EventDispatch(b *testing.B) {
	env := sim.NewEnv(1)
	n := b.N
	env.Go("ticker", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	env.Run()
}

// --- §3.1 (E12): variant optimizer ---

func benchVariantGoal(b *testing.B, goal pcsi.Goal) {
	cloud := pcsi.New(pcsi.DefaultOptions())
	client := cloud.NewClient(0)
	n := b.N
	if n > 500 {
		n = 500
	}
	var simTotal time.Duration
	cloud.Env().Go("bench", func(p *pcsi.Proc) {
		fn, err := client.RegisterFunction(p, pcsi.FnConfig{
			Name: "transcode", Kind: pcsi.PlatformWasm,
			TypicalExec: 200 * time.Millisecond,
			Variants: []pcsi.Variant{
				{Name: "wasm", Kind: pcsi.PlatformWasm, Res: pcsi.Resources{MilliCPU: 1000, MemMB: 256}, SpeedFactor: 1},
				{Name: "gpu", Kind: pcsi.PlatformGPU, Res: pcsi.Resources{GPUs: 1}, SpeedFactor: 5},
			},
			Handler: func(fc *pcsi.FnCtx) error {
				fc.Proc().Sleep(fc.Inv.Scale(200 * time.Millisecond))
				return nil
			},
		})
		if err != nil {
			b.Error(err)
			return
		}
		start := p.Now()
		for i := 0; i < n; i++ {
			if _, err := client.Invoke(p, fn, pcsi.InvokeArgs{Goal: goal}); err != nil {
				b.Error(err)
				return
			}
		}
		simTotal = p.Now().Sub(start)
	})
	b.ResetTimer()
	cloud.Env().Run()
	b.ReportMetric(float64(simTotal.Nanoseconds())/float64(n), "sim-ns/op")
	b.ReportMetric(float64(cloud.Runtime().Meter.Total())*1e6/float64(n), "usd-per-Mop")
}

func BenchmarkVariants_GoalCost(b *testing.B)    { benchVariantGoal(b, pcsi.GoalCost) }
func BenchmarkVariants_GoalLatency(b *testing.B) { benchVariantGoal(b, pcsi.GoalLatency) }

package pcsi_test

import (
	"testing"
	"time"

	"repro/pcsi"
)

// These tests exercise the public facade exactly as a downstream user
// would, without touching internal packages.

func TestQuickstartFlow(t *testing.T) {
	cloud := pcsi.New(pcsi.DefaultOptions())
	client := cloud.NewClient(0)
	var got []byte
	cloud.Env().Go("main", func(p *pcsi.Proc) {
		ref, err := client.Create(p, pcsi.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		if err := client.Put(p, ref, []byte("hello")); err != nil {
			t.Error(err)
			return
		}
		got, err = client.Get(p, ref)
		if err != nil {
			t.Error(err)
		}
	})
	cloud.Env().Run()
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestFacadeConstantsCoherent(t *testing.T) {
	if !pcsi.Mutable.CanTransition(pcsi.Immutable) {
		t.Error("lattice broken through facade")
	}
	if pcsi.Linearizable.String() != "linearizable" {
		t.Error("consistency constants broken")
	}
	if !pcsi.RightsAll.Has(pcsi.RightRead | pcsi.RightExec) {
		t.Error("rights constants broken")
	}
	if pcsi.PlatformWasm.String() != "wasm" {
		t.Error("platform constants broken")
	}
	if pcsi.PlaceColocate.String() != "colocate" {
		t.Error("policy constants broken")
	}
}

func TestFunctionThroughFacade(t *testing.T) {
	cloud := pcsi.New(pcsi.DefaultOptions())
	client := cloud.NewClient(0)
	ran := false
	cloud.Env().Go("main", func(p *pcsi.Proc) {
		fn, err := client.RegisterFunction(p, pcsi.FnConfig{
			Name: "hello", Kind: pcsi.PlatformWasm,
			Handler: func(fc *pcsi.FnCtx) error { ran = true; return nil },
		})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := client.Invoke(p, fn, pcsi.InvokeArgs{}); err != nil {
			t.Error(err)
		}
	})
	cloud.Env().Run()
	if !ran {
		t.Fatal("function never ran")
	}
}

func TestOptionsVariants(t *testing.T) {
	opts := pcsi.DefaultOptions()
	opts.Policy = pcsi.PlaceNaive
	opts.Seed = 42
	cloud := pcsi.New(opts)
	if cloud == nil {
		t.Fatal("nil cloud")
	}
	// Deterministic: same seed, same first random value.
	a := pcsi.New(opts).Env().Rand().Int63()
	b := pcsi.New(opts).Env().Rand().Int63()
	if a != b {
		t.Error("same options produced different random streams")
	}
}

func TestSocketThroughFacade(t *testing.T) {
	cloud := pcsi.New(pcsi.DefaultOptions())
	client := cloud.NewClient(0)
	cloud.Env().Go("main", func(p *pcsi.Proc) {
		conn, err := client.Create(p, pcsi.Socket)
		if err != nil {
			t.Error(err)
			return
		}
		if err := client.SockSend(p, conn, pcsi.ClientEnd, []byte("ping")); err != nil {
			t.Error(err)
			return
		}
		msg, err := client.SockRecv(p, conn, pcsi.ServerEnd)
		if err != nil || string(msg) != "ping" {
			t.Errorf("SockRecv = %q, %v", msg, err)
		}
		if err := client.SockClose(p, conn); err != nil {
			t.Error(err)
		}
	})
	cloud.Env().Run()
}

func TestVariantsThroughFacade(t *testing.T) {
	cloud := pcsi.New(pcsi.DefaultOptions())
	client := cloud.NewClient(0)
	cloud.Env().Go("main", func(p *pcsi.Proc) {
		fn, err := client.RegisterFunction(p, pcsi.FnConfig{
			Name: "f", Kind: pcsi.PlatformWasm,
			TypicalExec: 50 * time.Millisecond,
			Variants: []pcsi.Variant{
				{Name: "wasm", Kind: pcsi.PlatformWasm, Res: pcsi.Resources{MilliCPU: 500, MemMB: 64}, SpeedFactor: 1},
				{Name: "gpu", Kind: pcsi.PlatformGPU, Res: pcsi.Resources{GPUs: 1}, SpeedFactor: 5},
			},
			Handler: func(fc *pcsi.FnCtx) error {
				fc.Proc().Sleep(fc.Inv.Scale(50 * time.Millisecond))
				return nil
			},
		})
		if err != nil {
			t.Error(err)
			return
		}
		inst, err := client.Invoke(p, fn, pcsi.InvokeArgs{Goal: pcsi.GoalCost})
		if err != nil {
			t.Error(err)
			return
		}
		if inst.Variant().Name != "wasm" {
			t.Errorf("GoalCost ran %q", inst.Variant().Name)
		}
	})
	cloud.Env().Run()
}

func TestEphemeralCannotBeBound(t *testing.T) {
	cloud := pcsi.New(pcsi.DefaultOptions())
	client := cloud.NewClient(0)
	cloud.Env().Go("main", func(p *pcsi.Proc) {
		ns, _, err := client.NewNamespace(p)
		if err != nil {
			t.Error(err)
			return
		}
		eph, err := client.Create(p, pcsi.Regular, pcsi.WithEphemeral())
		if err != nil {
			t.Error(err)
			return
		}
		if err := ns.Bind(p, client, "scratch", eph); err == nil {
			t.Error("ephemeral object bound into a namespace")
		}
	})
	cloud.Env().Run()
}

// Package pcsi is the public API of this repository's reference
// implementation of the Portable Cloud System Interface, the interface
// sketched in "The RESTless Cloud" (Pemberton, Schleier-Smith, Gonzalez —
// HotOS '21).
//
// PCSI models the cloud with two abstractions:
//
//   - Computation: stateless functions with explicit data-layer inputs
//     and outputs, heterogeneous execution platforms, and composable task
//     graphs ([Client.RegisterFunction], [Client.Invoke],
//     [Client.RunGraph]).
//   - State: objects (files, directories, FIFOs, sockets, devices)
//     reached through capability references, with a four-level mutability
//     lattice and a two-entry consistency menu ([Client.Create],
//     [Client.Put], [Client.Get], [Client.Freeze]).
//
// A [Cloud] is a complete simulated deployment — datacenter network,
// cluster, replicated store, function runtime — driven by a deterministic
// virtual clock. Everything a client does pays modelled network, media,
// and protocol costs, so experiments measure interface-induced overheads
// exactly as the paper discusses them.
//
// Quickstart:
//
//	cloud := pcsi.New(pcsi.DefaultOptions())
//	client := cloud.NewClient(0)
//	cloud.Env().Go("main", func(p *pcsi.Proc) {
//	    ref, _ := client.Create(p, pcsi.Regular)
//	    _ = client.Put(p, ref, []byte("hello"))
//	    data, _ := client.Get(p, ref)
//	    fmt.Println(string(data))
//	})
//	cloud.Env().Run()
package pcsi

import (
	"repro/internal/capability"
	"repro/internal/cluster"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/faas"
	"repro/internal/faasfs"
	"repro/internal/fault"
	"repro/internal/fncache"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/qos"
	"repro/internal/sim"
)

// Core types, re-exported for downstream users.
type (
	// Cloud is one PCSI deployment.
	Cloud = core.Cloud
	// Options configures a deployment.
	Options = core.Options
	// Client is a session bound to an origin node.
	Client = core.Client
	// Ref is a capability reference to an object.
	Ref = core.Ref
	// NS is a namespace handle.
	NS = core.NS
	// FnCtx is the context passed to function bodies.
	FnCtx = core.FnCtx
	// FnConfig describes a function to register.
	FnConfig = core.FnConfig
	// InvokeArgs parameterise an invocation.
	InvokeArgs = core.InvokeArgs
	// GraphTask is a node of a task graph.
	GraphTask = core.GraphTask
	// StatInfo is object metadata.
	StatInfo = core.StatInfo
	// PlacementPolicy selects the function-placement scheduler.
	PlacementPolicy = core.PlacementPolicy
	// Proc is a simulated process handle.
	Proc = sim.Proc
	// Env is the simulation environment.
	Env = sim.Env
	// Time is a point in virtual time.
	Time = sim.Time
	// Resources is a resource bundle for function footprints.
	Resources = cluster.Resources
	// Variant is one implementation of a function (§3.1's simultaneous
	// implementations).
	Variant = faas.Variant
	// Goal selects among a function's variants per invocation.
	Goal = faas.Goal
	// RetryPolicy retries operations with deadline, capped exponential
	// backoff, deterministic jitter, and retryable/fatal classification.
	// Set Options.Retry to thread it through data/meta/fn operations.
	RetryPolicy = fault.Policy
	// RetryBackoff parameterises a RetryPolicy's backoff curve.
	RetryBackoff = fault.Backoff
	// FaultSpec describes a fault-injection session (rates + schedule)
	// for chaos testing against a deployment.
	FaultSpec = fault.Spec
	// FaultRates are stochastic fault probabilities.
	FaultRates = fault.Rates
	// FaultEvent is one entry of a declarative fault schedule.
	FaultEvent = fault.Event
	// FaultSession is an active fault-injection session.
	FaultSession = fault.Session
	// QoSConfig configures the admission controller (per-tenant WFQ
	// weights + per-class limits). Set Options.QoS to enable it; nil
	// keeps the unguarded data and invoke paths.
	QoSConfig = qos.Config
	// QoSClassConfig configures one admission class: concurrency limit
	// (or a per-op footprint it is derived from), queue bound, queue-delay
	// budget, and CoDel backpressure.
	QoSClassConfig = qos.ClassConfig
	// QoSStats snapshots one class's admission counters.
	QoSStats = qos.Stats
	// ObsConfig configures the virtual-time telemetry plane (sampling
	// interval, series capacity, flight recorder, default SLOs). Pass it
	// to ActivateObs; clouds built while the session is active each get a
	// telemetry Plane (Cloud.Obs()).
	ObsConfig = obs.Config
	// ObsSession is an active telemetry session.
	ObsSession = obs.Session
	// ObsPlane is one deployment's telemetry: sampled series, SLO alert
	// log, and flight recorder. All methods are safe on a nil plane, so
	// callers never branch on whether telemetry is on.
	ObsPlane = obs.Plane
	// SLO is one declarative objective with multi-window burn-rate
	// alerting (latency quantile target, goodput floor, or shed ceiling).
	SLO = obs.Objective
	// SLOLatency targets a histogram quantile (SLO.Latency).
	SLOLatency = obs.LatencyTarget
	// SLOGoodput sets a goodput floor on the failure share (SLO.Goodput).
	SLOGoodput = obs.GoodputFloor
	// SLOShed caps the shed share of admission decisions (SLO.Shed).
	SLOShed = obs.ShedCeiling
	// SLOAlert is one fire/resolve transition of an SLO.
	SLOAlert = obs.Alert
	// FlightEvent is one flight-recorder entry.
	FlightEvent = obs.FlightEvent
	// ObsTimeline is a session's exportable dump; WriteHTML renders the
	// static dashboard and WriteJSON the machine-readable timeline.
	ObsTimeline = obs.Timeline
	// FnCacheConfig enables per-node caches colocated with function
	// executors. Set Options.FnCache to enable them; nil keeps every read
	// and write on the store path, byte-identical to builds without the
	// cache. Linearizable reads are cached under virtual-time leases with
	// invalidate-on-write; eventual lattice objects get local CRDT
	// replicas merged through anti-entropy.
	FnCacheConfig = fncache.Config
	// FnCacheStats snapshots a deployment's cache counters
	// (Cloud.FnCache().Snapshot()).
	FnCacheStats = fncache.Stats
	// Lattice is a join-semilattice value for eventual-consistency
	// objects ([Client.LatticeCreate], [Client.LatticeUpdate],
	// [Client.LatticeRead], [Client.LatticeSync]).
	Lattice = fncache.Lattice
	// LWWReg is a last-writer-wins register lattice.
	LWWReg = fncache.LWWReg
	// GCounter is a grow-only counter lattice.
	GCounter = fncache.GCounter
	// ORSet is an observed-remove set lattice (add wins over concurrent
	// remove).
	ORSet = fncache.ORSet
	// LMap is a map-of-lattices; entries join pointwise.
	LMap = fncache.LMap
	// FaaSFS is a shared, transactional, POSIX-shaped file system over
	// PCSI objects. Mount one with MountFaaSFS; each function invocation
	// opens a snapshot-isolated FaaSFSSession and commits optimistically.
	FaaSFS = faasfs.FS
	// FaaSFSSession is one snapshot-isolated transaction over a mounted
	// FaaSFS: a POSIX surface (Open/Creat/Read/Write/Seek/Close, Mkdir,
	// Unlink, Rename, ReadDir, Stat) plus Commit/Abort.
	FaaSFSSession = faasfs.Session
	// FaaSFSConfig parameterises a mount (transaction counters).
	FaaSFSConfig = faasfs.Config
	// FaaSFSStats snapshots a mount's commit/conflict/abort/replay
	// counters (FaaSFS.Stats()).
	FaaSFSStats = faasfs.Stats
)

// ErrOverload is returned by admission-controlled operations when load is
// shed. It classifies as fatal — retry layers must not amplify overload.
var ErrOverload = qos.ErrOverload

// ErrConflict is returned by FaaSFSSession.Commit when optimistic
// validation fails. It classifies as transient — retry policies re-run
// the whole transaction against a fresh snapshot.
var ErrConflict = faasfs.ErrConflict

// MountFaaSFS creates a fresh transactional file system on the client's
// cloud. Sessions open with FaaSFS.Begin (or run whole transactions with
// FaaSFS.Run, which retries conflicts under a RetryPolicy).
func MountFaaSFS(p *Proc, cl *Client, cfg FaaSFSConfig) (*FaaSFS, error) {
	return faasfs.Mount(p, cl, cfg)
}

// Admission classes (for Cloud.QoS().ClassStats).
const (
	QoSClassData   = qos.ClassData
	QoSClassInvoke = qos.ClassInvoke
	QoSClassTask   = qos.ClassTask
)

// ActivateFaults installs a process-global fault-injection session; clouds
// built while it is active inject per spec. Deactivate it when done.
func ActivateFaults(spec FaultSpec) *FaultSession { return fault.Activate(spec) }

// ActivateObs installs a process-global telemetry session; clouds built
// while it is active sample their metrics on virtual time, evaluate SLO
// burn rates, and keep a flight recorder. Deactivate it when done.
func ActivateObs(cfg ObsConfig) *ObsSession { return obs.Activate(cfg) }

// DefaultRetryPolicy is the stock chaos-mode retry policy.
func DefaultRetryPolicy() *RetryPolicy { return fault.DefaultPolicy() }

// UniformFaultRates derives a conventional rate mix from one chaos knob.
func UniformFaultRates(rate float64) FaultRates { return fault.Uniform(rate) }

// Fault schedule actions.
const (
	FaultCrashNode   = fault.CrashNode
	FaultRecoverNode = fault.RecoverNode
	FaultRackPower   = fault.RackPower
	FaultRackRestore = fault.RackRestore
	FaultPartition   = fault.Partition
	FaultHeal        = fault.Heal
)

// Optimisation goals for variant selection.
const (
	GoalDefault = faas.GoalDefault
	GoalLatency = faas.GoalLatency
	GoalCost    = faas.GoalCost
)

// New builds a Cloud.
func New(opts Options) *Cloud { return core.New(opts) }

// DefaultOptions returns a representative deployment configuration.
func DefaultOptions() Options { return core.DefaultOptions() }

// Object kinds.
const (
	Regular   = object.Regular
	Directory = object.Directory
	FIFO      = object.FIFO
	Socket    = object.Socket
	Device    = object.Device
)

// Mutability levels (Figure 1 of the paper).
const (
	Mutable    = object.Mutable
	AppendOnly = object.AppendOnly
	FixedSize  = object.FixedSize
	Immutable  = object.Immutable
)

// Consistency levels (§3.3's two-entry menu).
const (
	Linearizable = consistency.Linearizable
	Eventual     = consistency.Eventual
)

// Rights for capability references.
const (
	RightRead    = capability.Read
	RightWrite   = capability.Write
	RightAppend  = capability.Append
	RightExec    = capability.Exec
	RightSetMut  = capability.SetMut
	RightGrant   = capability.Grant
	RightUnlink  = capability.Unlink
	RightDestroy = capability.Destroy
	RightsAll    = capability.All
)

// Execution platform kinds (§3.1's heterogeneous implementations).
const (
	PlatformProcess   = platform.Process
	PlatformContainer = platform.Container
	PlatformMicroVM   = platform.MicroVM
	PlatformUnikernel = platform.Unikernel
	PlatformWasm      = platform.Wasm
	PlatformGPU       = platform.GPU
)

// Socket ends (for Socket objects, Figure 2's TCP connection).
const (
	ClientEnd = core.ClientEnd
	ServerEnd = core.ServerEnd
)

// Placement policies.
const (
	PlaceNaive    = core.PlaceNaive
	PlacePacked   = core.PlacePacked
	PlaceColocate = core.PlaceColocate
	PlaceScavenge = core.PlaceScavenge
)

// WithConsistency sets a created object's default consistency level.
var WithConsistency = core.WithConsistency

// WithMutability sets a created object's initial mutability level.
var WithMutability = core.WithMutability

// WithEphemeral makes the created object node-local and unreplicated —
// single-copy state for task-graph intermediates.
var WithEphemeral = core.WithEphemeral

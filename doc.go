// Package repro is a reference implementation of the Portable Cloud
// System Interface (PCSI) from "The RESTless Cloud" (Pemberton,
// Schleier-Smith, Gonzalez — HotOS '21), together with the baselines the
// paper argues against and a harness that regenerates every quantitative
// artifact in the paper.
//
// The public API lives in package repro/pcsi. The experiment harness is
// cmd/pcsi-bench; a real TCP daemon and CLI are cmd/pcsid and cmd/pcsictl.
// See README.md, DESIGN.md, and EXPERIMENTS.md.
package repro

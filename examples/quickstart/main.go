// Quickstart: the smallest complete PCSI program.
//
// It boots a simulated cloud, creates objects with explicit consistency
// and mutability, shares an attenuated reference, registers and invokes a
// function with explicit data-layer inputs and outputs, and prints what
// everything cost in (virtual) time.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/pcsi"
)

func main() {
	cloud := pcsi.New(pcsi.DefaultOptions())
	client := cloud.NewClient(0)

	cloud.Env().Go("main", func(p *pcsi.Proc) {
		// --- State: objects with explicit consistency and mutability ---
		doc, err := client.Create(p, pcsi.Regular,
			pcsi.WithConsistency(pcsi.Linearizable))
		check(err)
		check(client.Put(p, doc, []byte("PCSI: a portable cloud system interface")))

		// Freeze it: along Figure 1's lattice, IMMUTABLE content can be
		// cached anywhere.
		check(client.Freeze(p, doc, pcsi.Immutable))

		// Attenuate: hand out a read-only capability. The holder cannot
		// write, and there is no ambient authority to escalate through.
		shared, err := client.Attenuate(doc, pcsi.RightRead)
		check(err)
		if err := client.Put(p, shared, []byte("vandalism")); err != nil {
			fmt.Println("write through read-only ref refused:", err)
		}

		// --- Naming: no global namespace; directories are passed around ---
		ns, _, err := client.NewNamespace(p)
		check(err)
		check(ns.Bind(p, client, "docs/readme", shared))
		byPath, err := ns.Open(p, client, "docs/readme", pcsi.RightRead)
		check(err)
		data, err := client.Get(p, byPath)
		check(err)
		fmt.Printf("read via namespace: %q\n", data)

		// --- Computation: a function with explicit inputs and outputs ---
		fn, err := client.RegisterFunction(p, pcsi.FnConfig{
			Name: "summarize",
			Kind: pcsi.PlatformWasm,
			Handler: func(fc *pcsi.FnCtx) error {
				in, err := fc.Client.Get(fc.Proc(), fc.Inputs[0])
				if err != nil {
					return err
				}
				summary := fmt.Sprintf("%d bytes: %.20q...", len(in), in)
				return fc.Client.Put(fc.Proc(), fc.Outputs[0], []byte(summary))
			},
		})
		check(err)
		out, err := client.Create(p, pcsi.Regular)
		check(err)
		start := p.Now()
		_, err = client.Invoke(p, fn, pcsi.InvokeArgs{
			Inputs:  []pcsi.Ref{shared},
			Outputs: []pcsi.Ref{out},
		})
		check(err)
		result, err := client.Get(p, out)
		check(err)
		fmt.Printf("function produced: %s\n", result)
		fmt.Printf("invocation took %v of virtual time (incl. one cold start)\n", p.Now().Sub(start))
	})
	cloud.Env().Run()

	fmt.Printf("total virtual time: %v; bytes moved over the fabric: %d\n",
		cloud.Env().Now(), cloud.BytesMoved)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// RESTless: the paper's title argument as a program.
//
// The same workload — many fine-grained reads of a small object — runs
// twice: through a stateless REST gateway (per-request connections, HTTP,
// JSON envelope, remote auth re-checks) and through stateful PCSI
// references (open once, binary protocol, local capability checks). The
// example prints where every microsecond of the REST path goes and how
// the comparison changes on an emerging fast network.
//
//	go run ./examples/restless
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/consistency"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/restbase"
	"repro/internal/simnet"
	"repro/pcsi"

	"repro/internal/object"
	"repro/internal/sim"
)

const (
	objectSize = 1024
	reads      = 200
)

func main() {
	for _, prof := range []simnet.Profile{simnet.DC2021, simnet.FastNet} {
		fmt.Printf("=== network: %s (RTT %v) ===\n", prof.Name, prof.BaseRTT)
		rest := runREST(prof)
		pcsiLat := runPCSI(prof)
		fmt.Printf("REST mean:  %v\nPCSI mean:  %v  (%.0fx faster)\n",
			metrics.FmtDuration(rest), metrics.FmtDuration(pcsiLat),
			float64(rest)/float64(pcsiLat))

		cfg := restbase.DefaultConfig()
		fixed := restbase.ProtocolOverhead(cfg, objectSize)
		fmt.Printf("REST fixed protocol cost: %v per op (%.0f%% of the %s RTT budget)\n\n",
			metrics.FmtDuration(fixed), float64(fixed)/float64(prof.BaseRTT)*100, prof.Name)
	}
	fmt.Println("the smaller the op and the faster the network, the more RESTless the cloud needs to be")
}

func runREST(prof simnet.Profile) time.Duration {
	env := sim.NewEnv(1)
	net := simnet.New(env, prof)
	var nodes []simnet.NodeID
	for i := 0; i < 3; i++ {
		nodes = append(nodes, net.AddNode(i))
	}
	grp := consistency.NewGroup(env, net, nodes, media.DRAM)
	gw := restbase.NewGateway(net, grp, restbase.DefaultConfig())
	client := net.AddNode(0)
	var total time.Duration
	env.Go("rest", func(p *sim.Proc) {
		id, err := gw.Create(p, client, "bearer-token", object.Regular)
		check(err)
		check(gw.Put(p, client, "bearer-token", id, make([]byte, objectSize), consistency.Eventual))
		start := p.Now()
		for i := 0; i < reads; i++ {
			if _, err := gw.Get(p, client, "bearer-token", id, consistency.Eventual); err != nil {
				log.Fatal(err)
			}
		}
		total = p.Now().Sub(start)
	})
	env.Run()
	fmt.Printf("REST: %d reads, %d connection setups, %d remote auth checks\n",
		reads, gw.Requests.Value()-2, gw.AuthChecks-2)
	return total / reads
}

func runPCSI(prof simnet.Profile) time.Duration {
	opts := pcsi.DefaultOptions()
	opts.NetProfile = prof
	opts.Media = media.DRAM
	cloud := pcsi.New(opts)
	client := cloud.NewClient(0)
	var total time.Duration
	cloud.Env().Go("pcsi", func(p *pcsi.Proc) {
		ns, _, err := client.NewNamespace(p)
		check(err)
		wref, err := ns.CreateAt(p, client, "obj", pcsi.Regular,
			pcsi.WithConsistency(pcsi.Eventual))
		check(err)
		check(client.Put(p, wref, make([]byte, objectSize)))
		// Authorisation happens once, at open.
		ref, err := ns.Open(p, client, "obj", pcsi.RightRead)
		check(err)
		start := p.Now()
		for i := 0; i < reads; i++ {
			if _, err := client.GetAt(p, ref, pcsi.Eventual); err != nil {
				log.Fatal(err)
			}
		}
		total = p.Now().Sub(start)
	})
	cloud.Env().Run()
	fmt.Printf("PCSI: %d reads through one reference, %d local capability checks\n",
		reads, cloud.Caps().Checks)
	return total / reads
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

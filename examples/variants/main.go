// Variants: §3.1's universal compute interface in action — "Multiple
// implementations of the same function can even be provided
// simultaneously, allowing an optimizer to choose dynamically among them
// to meet performance and cost goals."
//
// One "transcode" function is registered with two implementations: a
// cheap WebAssembly build and a 5x-faster GPU build. The same call site
// runs under a cost goal and under a latency goal; the runtime picks the
// hardware, promoting to the GPU once traffic justifies its boot.
//
//	go run ./examples/variants
package main

import (
	"fmt"
	"log"
	"time"

	"repro/pcsi"
)

func main() {
	for _, goal := range []pcsi.Goal{pcsi.GoalCost, pcsi.GoalLatency} {
		run(goal)
	}
	fmt.Println("same function reference, same handler — the optimizer picked the implementation")
}

func run(goal pcsi.Goal) {
	cloud := pcsi.New(pcsi.DefaultOptions())
	client := cloud.NewClient(0)
	fmt.Printf("=== goal: %s ===\n", goal)
	cloud.Env().Go("driver", func(p *pcsi.Proc) {
		fn, err := client.RegisterFunction(p, pcsi.FnConfig{
			Name:        "transcode",
			Kind:        pcsi.PlatformWasm,
			TypicalExec: 200 * time.Millisecond,
			Variants: []pcsi.Variant{
				{Name: "wasm", Kind: pcsi.PlatformWasm,
					Res: pcsi.Resources{MilliCPU: 1000, MemMB: 256}, SpeedFactor: 1},
				{Name: "gpu", Kind: pcsi.PlatformGPU,
					Res: pcsi.Resources{GPUs: 1}, SpeedFactor: 5},
			},
			Handler: func(fc *pcsi.FnCtx) error {
				// One handler; Scale() adapts the modelled work to the
				// implementation actually chosen.
				fc.Proc().Sleep(fc.Inv.Scale(200 * time.Millisecond))
				return nil
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		counts := map[string]int{}
		var total time.Duration
		const calls = 12
		for i := 0; i < calls; i++ {
			start := p.Now()
			inst, err := client.Invoke(p, fn, pcsi.InvokeArgs{Goal: goal})
			if err != nil {
				log.Fatal(err)
			}
			took := p.Now().Sub(start)
			total += took
			counts[inst.Variant().Name]++
			if i < 5 || counts[inst.Variant().Name] == 1 {
				fmt.Printf("call %2d -> %-4s (%v)\n", i+1, inst.Variant().Name, took.Round(time.Millisecond))
			}
		}
		fmt.Printf("ran %v; mean %v\n", counts, total/time.Duration(calls))
		fmt.Printf("compute bill: %v\n\n", cloud.Runtime().Meter.Total())
	})
	cloud.Env().Run()
}

// Autoscaling: functions "scale in accordance to the number of requests
// they receive" (§1) — from zero, to a fleet, and back to zero — with
// pay-per-use billing.
//
// A traffic spike hits a completely cold deployment. The example prints
// the fleet size over time, latency percentiles, and what the burst cost
// under pay-per-use versus keeping a peak-sized fleet provisioned.
//
//	go run ./examples/autoscale
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/metrics"
	"repro/internal/workload"
	"repro/pcsi"
)

func main() {
	opts := pcsi.DefaultOptions()
	opts.IdleTimeout = 2 * time.Second
	opts.Policy = pcsi.PlacePacked
	cloud := pcsi.New(opts)
	client := cloud.NewClient(0)
	env := cloud.Env()
	rt := cloud.Runtime()

	lat := metrics.NewHistogram("latency")
	var served int

	var fn pcsi.Ref
	ready := env.NewEvent()
	env.Go("setup", func(p *pcsi.Proc) {
		var err error
		fn, err = client.RegisterFunction(p, pcsi.FnConfig{
			Name: "handler", Kind: pcsi.PlatformWasm,
			Res: pcsi.Resources{MilliCPU: 500, MemMB: 128},
			Handler: func(fc *pcsi.FnCtx) error {
				fc.Proc().Sleep(25 * time.Millisecond)
				return nil
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		ready.Complete(nil)
	})

	// Load: 1s quiet, 4s spike at 800 rps, then silence.
	env.Go("load", func(p *pcsi.Proc) {
		if _, err := p.Wait(ready); err != nil {
			return
		}
		fmt.Printf("t=%-6v fleet=%d (cold deployment)\n", p.Now(), rt.WarmCount("handler"))
		p.Sleep(time.Second)
		arr := workload.NewPoisson(env, 800)
		workload.Run(env, arr, p.Now().Add(4*time.Second), func(rp *pcsi.Proc, seq int) {
			start := rp.Now()
			if _, err := client.Invoke(rp, fn, pcsi.InvokeArgs{}); err != nil {
				return
			}
			served++
			lat.Observe(rp.Now().Sub(start))
		})
	})

	// Sampler: print the fleet size each second.
	env.Go("sampler", func(p *pcsi.Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(time.Second)
			fmt.Printf("t=%-6v fleet=%d\n", p.Now(), rt.WarmCount("handler"))
		}
	})
	env.RunUntil(pcsi.Time(12 * time.Second))

	rt.Drain()
	fmt.Printf("\nserved %d requests: p50=%v p99=%v\n", served,
		metrics.FmtDuration(lat.P50()), metrics.FmtDuration(lat.P99()))
	fmt.Printf("cold starts: %d, warm starts: %d\n", rt.ColdStarts.Value(), rt.WarmStarts.Value())

	peakFleet := 25.0 // sized for the spike
	perInstHour := 0.048*0.5 + 0.0053*0.125
	payPerUse := rt.InstanceSeconds / 3600 * perInstHour
	provisioned := peakFleet * 12 / 3600 * perInstHour
	fmt.Printf("pay-per-use: $%.6f for %.0f instance-seconds\n", payPerUse, rt.InstanceSeconds)
	fmt.Printf("peak-provisioned for the same window: $%.6f (%.1fx more)\n",
		provisioned, provisioned/payPerUse)

	admissionDemo()
}

// admissionDemo shows the other half of elasticity: what happens when the
// cluster CANNOT scale to the offered load. A fixed 8-slot deployment is
// hit with a burst at 4x its capacity. With Options.QoS set, the excess is
// shed on arrival with the typed pcsi.ErrOverload, the queue-delay budget
// caps the tail, and goodput stays pinned at capacity.
func admissionDemo() {
	opts := pcsi.DefaultOptions()
	opts.Policy = pcsi.PlacePacked
	opts.IdleTimeout = time.Second
	// 4 nodes × 2 slots of 2000 mCPU → 8 concurrent invocations; at 10ms
	// per call the deployment serves 800 rps, and the burst offers 3200.
	opts.ClusterCfg.Racks = 2
	opts.ClusterCfg.NodesPerRack = 2
	opts.ClusterCfg.NodeCap = pcsi.Resources{MilliCPU: 4000, MemMB: 16384}
	opts.QoS = &pcsi.QoSConfig{Invoke: pcsi.QoSClassConfig{
		PerOp:         pcsi.Resources{MilliCPU: 2000, MemMB: 128},
		MaxQueue:      64,
		MaxQueueDelay: 100 * time.Millisecond,
		CoDelTarget:   20 * time.Millisecond,
		CoDelInterval: 100 * time.Millisecond,
	}}
	cloud := pcsi.New(opts)
	client := cloud.NewClient(0)
	env := cloud.Env()

	lat := metrics.NewHistogram("latency")
	var served, shed int

	var fn pcsi.Ref
	ready := env.NewEvent()
	env.Go("setup", func(p *pcsi.Proc) {
		var err error
		fn, err = client.RegisterFunction(p, pcsi.FnConfig{
			Name: "gated", Kind: pcsi.PlatformWasm,
			Res: pcsi.Resources{MilliCPU: 1990, MemMB: 120},
			Handler: func(fc *pcsi.FnCtx) error {
				fc.Proc().Sleep(10 * time.Millisecond)
				return nil
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		ready.Complete(nil)
	})
	env.Go("burst", func(p *pcsi.Proc) {
		if _, err := p.Wait(ready); err != nil {
			return
		}
		arr := workload.NewPoisson(env, 3200) // 4x the 800 rps capacity
		workload.Run(env, arr, p.Now().Add(2*time.Second), func(rp *pcsi.Proc, seq int) {
			start := rp.Now()
			switch _, err := client.Invoke(rp, fn, pcsi.InvokeArgs{}); {
			case err == nil:
				served++
				lat.Observe(rp.Now().Sub(start))
			case errors.Is(err, pcsi.ErrOverload):
				shed++
			}
		})
	})
	env.RunUntil(pcsi.Time(5 * time.Second))
	cloud.Runtime().Drain()

	fmt.Printf("\n-- admission control: 4x overload burst against a fixed 8-slot fleet --\n")
	fmt.Printf("served %d, shed %d (typed ErrOverload — never a timeout)\n", served, shed)
	fmt.Printf("goodput %.0f rps of 800 rps capacity, p50=%v p99=%v (queue-delay budget 100ms)\n",
		float64(served)/2, metrics.FmtDuration(lat.P50()), metrics.FmtDuration(lat.P99()))
	st := cloud.QoS().ClassStats(pcsi.QoSClassInvoke)
	fmt.Printf("shed breakdown: queue-full=%d deadline=%d codel=%d, peak queue %d\n",
		st.ShedQueueFull, st.ShedDeadline, st.ShedCoDel, st.MaxQueued)
}

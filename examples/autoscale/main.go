// Autoscaling: functions "scale in accordance to the number of requests
// they receive" (§1) — from zero, to a fleet, and back to zero — with
// pay-per-use billing.
//
// A traffic spike hits a completely cold deployment. The example prints
// the fleet size over time, latency percentiles, and what the burst cost
// under pay-per-use versus keeping a peak-sized fleet provisioned.
//
//	go run ./examples/autoscale
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/metrics"
	"repro/internal/workload"
	"repro/pcsi"
)

func main() {
	opts := pcsi.DefaultOptions()
	opts.IdleTimeout = 2 * time.Second
	opts.Policy = pcsi.PlacePacked
	cloud := pcsi.New(opts)
	client := cloud.NewClient(0)
	env := cloud.Env()
	rt := cloud.Runtime()

	lat := metrics.NewHistogram("latency")
	var served int

	var fn pcsi.Ref
	ready := env.NewEvent()
	env.Go("setup", func(p *pcsi.Proc) {
		var err error
		fn, err = client.RegisterFunction(p, pcsi.FnConfig{
			Name: "handler", Kind: pcsi.PlatformWasm,
			Res: pcsi.Resources{MilliCPU: 500, MemMB: 128},
			Handler: func(fc *pcsi.FnCtx) error {
				fc.Proc().Sleep(25 * time.Millisecond)
				return nil
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		ready.Complete(nil)
	})

	// Load: 1s quiet, 4s spike at 800 rps, then silence.
	env.Go("load", func(p *pcsi.Proc) {
		if _, err := p.Wait(ready); err != nil {
			return
		}
		fmt.Printf("t=%-6v fleet=%d (cold deployment)\n", p.Now(), rt.WarmCount("handler"))
		p.Sleep(time.Second)
		arr := workload.NewPoisson(env, 800)
		workload.Run(env, arr, p.Now().Add(4*time.Second), func(rp *pcsi.Proc, seq int) {
			start := rp.Now()
			if _, err := client.Invoke(rp, fn, pcsi.InvokeArgs{}); err != nil {
				return
			}
			served++
			lat.Observe(rp.Now().Sub(start))
		})
	})

	// Sampler: print the fleet size each second.
	env.Go("sampler", func(p *pcsi.Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(time.Second)
			fmt.Printf("t=%-6v fleet=%d\n", p.Now(), rt.WarmCount("handler"))
		}
	})
	env.RunUntil(pcsi.Time(12 * time.Second))

	rt.Drain()
	fmt.Printf("\nserved %d requests: p50=%v p99=%v\n", served,
		metrics.FmtDuration(lat.P50()), metrics.FmtDuration(lat.P99()))
	fmt.Printf("cold starts: %d, warm starts: %d\n", rt.ColdStarts.Value(), rt.WarmStarts.Value())

	peakFleet := 25.0 // sized for the spike
	perInstHour := 0.048*0.5 + 0.0053*0.125
	payPerUse := rt.InstanceSeconds / 3600 * perInstHour
	provisioned := peakFleet * 12 / 3600 * perInstHour
	fmt.Printf("pay-per-use: $%.6f for %.0f instance-seconds\n", payPerUse, rt.InstanceSeconds)
	fmt.Printf("peak-provisioned for the same window: $%.6f (%.1fx more)\n",
		provisioned, provisioned/payPerUse)
}

// Union namespaces: Docker-style layered file trees with capabilities
// and garbage collection.
//
// A read-mostly base image is shared by two tenants, each of which gets a
// private writable layer union-mounted on top. Writes copy up; removals
// record whiteouts; the base never changes. When a tenant's layer is
// dropped, reachability GC reclaims exactly its private objects.
//
//	go run ./examples/unionfs
package main

import (
	"fmt"
	"log"

	"repro/pcsi"
)

func main() {
	cloud := pcsi.New(pcsi.DefaultOptions())
	admin := cloud.NewClient(0)
	tenantA := cloud.NewClient(1)
	tenantB := cloud.NewClient(2)

	var aNS, bNS *pcsi.NS
	var aRoot, bRoot pcsi.Ref

	cloud.Env().Go("main", func(p *pcsi.Proc) {
		// --- The base image: built once, then frozen ---
		base, _, err := admin.NewNamespace(p)
		check(err)
		for path, content := range map[string]string{
			"etc/config":   "workers=4\n",
			"etc/motd":     "welcome to the base image\n",
			"bin/app":      "#!machine-code\n",
			"lib/runtime":  "runtime-v1\n",
			"data/default": "seed dataset\n",
		} {
			ref, err := base.CreateAt(p, admin, path, pcsi.Regular)
			check(err)
			check(admin.Put(p, ref, []byte(content)))
			check(admin.Freeze(p, ref, pcsi.Immutable))
			admin.Drop(ref)
		}
		baseRO := base.Freeze() // read-only view for sharing

		// --- Each tenant layers a private writable namespace on top ---
		aNS, aRoot, err = tenantA.Union(p, baseRO)
		check(err)
		bNS, bRoot, err = tenantB.Union(p, baseRO)
		check(err)

		// Tenant A overrides the config (copy-up) and adds a file.
		aCfg, err := aNS.Open(p, tenantA, "etc/config", pcsi.RightRead|pcsi.RightWrite)
		check(err)
		check(tenantA.Put(p, aCfg, []byte("workers=32\n")))
		tenantA.Drop(aCfg)
		aPriv, err := aNS.CreateAt(p, tenantA, "data/tenant-a.db", pcsi.Regular)
		check(err)
		check(tenantA.Put(p, aPriv, make([]byte, 4096)))
		tenantA.Drop(aPriv)

		// Tenant B deletes the motd (whiteout) — invisible in B, intact in
		// A and in the base.
		check(bNS.Remove(p, tenantB, "etc/motd"))

		// --- Show the three views ---
		show := func(who string, ns *pcsi.NS, cl *pcsi.Client) {
			entries, err := ns.List(p, cl, "etc")
			check(err)
			cfg, err := ns.Open(p, cl, "etc/config", pcsi.RightRead)
			check(err)
			content, err := cl.Get(p, cfg)
			check(err)
			cl.Drop(cfg)
			fmt.Printf("%-8s etc/ -> %v, config = %q\n", who, entries, content)
		}
		show("base", base, admin)
		show("tenantA", aNS, tenantA)
		show("tenantB", bNS, tenantB)

		if _, err := bNS.Open(p, tenantB, "etc/motd", pcsi.RightRead); err != nil {
			fmt.Println("tenantB: etc/motd is whited out:", err)
		}

		// --- Reclamation: drop tenant A's layer ---
		before := cloud.Group().Primary0Store().Len()
		aNS.DropRoot()
		tenantA.Drop(aRoot)
		reclaimed := cloud.Collect()
		fmt.Printf("dropped tenant A's layer: %d objects reclaimed (%d -> %d objects)\n",
			reclaimed, before, cloud.Group().Primary0Store().Len())

		// Tenant B still works.
		if _, err := bNS.Open(p, tenantB, "etc/config", pcsi.RightRead); err != nil {
			log.Fatalf("tenant B broken after A's reclamation: %v", err)
		}
		fmt.Println("tenant B's union still resolves after A's layer was collected")
	})
	cloud.Env().Run()
	_ = bRoot
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

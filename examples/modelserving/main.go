// Model serving: the paper's Figure 2 application, end to end.
//
// A three-stage pipeline — HTTP decode → GPU inference → post-processing
// — runs the same requests under naive placement and under task-graph-
// aware co-location, printing the per-stage placement, end-to-end
// latencies, and the data-movement difference (§4.1: "data movement is
// reduced to a single cudaMemcpy").
//
//	go run ./examples/modelserving
package main

import (
	"fmt"
	"log"
	"time"

	"repro/pcsi"
)

const (
	uploadSize = 8 << 20  // an image batch
	weightSize = 50 << 20 // model weights on the device
	requests   = 10
)

func main() {
	for _, cfg := range []struct {
		name   string
		policy pcsi.PlacementPolicy
	}{
		{"naive placement", pcsi.PlaceNaive},
		{"co-located (task-graph aware)", pcsi.PlaceColocate},
	} {
		run(cfg.name, cfg.policy)
	}
}

func run(name string, policy pcsi.PlacementPolicy) {
	opts := pcsi.DefaultOptions()
	opts.Policy = policy
	cloud := pcsi.New(opts)
	client := cloud.NewClient(0)

	fmt.Printf("=== %s ===\n", name)
	cloud.Env().Go("driver", func(p *pcsi.Proc) {
		// Shared model weights: strongly consistent, immutable.
		weights, err := client.Create(p, pcsi.Regular, pcsi.WithConsistency(pcsi.Linearizable))
		check(err)
		check(client.Put(p, weights, make([]byte, 1<<16)))
		check(client.Freeze(p, weights, pcsi.Immutable))
		weightsRO, err := client.Attenuate(weights, pcsi.RightRead)
		check(err)

		// Eventually-consistent request metrics (Figure 2's "Metrics").
		metricsObj, err := client.Create(p, pcsi.Regular, pcsi.WithConsistency(pcsi.Eventual))
		check(err)
		metricsApp, err := client.Attenuate(metricsObj, pcsi.RightAppend)
		check(err)

		pre, err := client.RegisterFunction(p, pcsi.FnConfig{
			Name: "decode", Kind: pcsi.PlatformWasm,
			Handler: func(fc *pcsi.FnCtx) error {
				fc.Proc().Sleep(2 * time.Millisecond) // parse HTTP, stream upload
				return fc.Client.Put(fc.Proc(), fc.Outputs[0], make([]byte, uploadSize))
			},
		})
		check(err)
		infer, err := client.RegisterFunction(p, pcsi.FnConfig{
			Name: "infer", Kind: pcsi.PlatformGPU,
			Handler: func(fc *pcsi.FnCtx) error {
				if dev := fc.Device(); dev != nil {
					fc.Proc().Sleep(dev.Ensure("weights", weightSize)) // cudaMemcpy if absent
				}
				batch, err := fc.Client.Get(fc.Proc(), fc.Inputs[0])
				if err != nil {
					return err
				}
				if dev := fc.Device(); dev != nil {
					fc.Proc().Sleep(dev.Ensure(fmt.Sprintf("batch-%d", fc.Inv.Seq), int64(len(batch))))
				}
				fc.Proc().Sleep(5 * time.Millisecond) // the kernel
				return fc.Client.Put(fc.Proc(), fc.Outputs[0], make([]byte, 1024))
			},
		})
		check(err)
		post, err := client.RegisterFunction(p, pcsi.FnConfig{
			Name: "respond", Kind: pcsi.PlatformWasm,
			Handler: func(fc *pcsi.FnCtx) error {
				if _, err := fc.Client.Get(fc.Proc(), fc.Inputs[0]); err != nil {
					return err
				}
				fc.Proc().Sleep(time.Millisecond)
				return fc.Client.Append(fc.Proc(), fc.Inputs[1], []byte("request served\n"))
			},
		})
		check(err)

		var total time.Duration
		for i := 0; i < requests; i++ {
			upload, err := client.Create(p, pcsi.Regular, pcsi.WithEphemeral())
			check(err)
			result, err := client.Create(p, pcsi.Regular, pcsi.WithEphemeral())
			check(err)
			start := p.Now()
			res, err := client.RunGraph(p, []pcsi.GraphTask{
				{Name: "decode", Fn: pre, Outputs: []pcsi.Ref{upload},
					PreferGPUNode: policy == pcsi.PlaceColocate},
				{Name: "infer", Fn: infer, After: []string{"decode"}, Colocate: true,
					Inputs: []pcsi.Ref{upload, weightsRO}, Outputs: []pcsi.Ref{result}},
				{Name: "respond", Fn: post, After: []string{"infer"}, Colocate: true,
					Inputs: []pcsi.Ref{result, metricsApp}},
			})
			check(err)
			took := p.Now().Sub(start)
			if i == 0 {
				fmt.Printf("placement: decode@node%d infer@node%d respond@node%d\n",
					res["decode"].Instance.Node.ID, res["infer"].Instance.Node.ID, res["respond"].Instance.Node.ID)
				fmt.Printf("first request (cold starts + weights copy): %v\n", took)
			} else {
				total += took
			}
			client.Drop(upload)
			client.Drop(result)
		}
		fmt.Printf("warm mean over %d requests: %v\n", requests-1, total/time.Duration(requests-1))
	})
	cloud.Env().Run()
	fmt.Printf("network bytes moved: %d; node-cache hits: %d\n\n", cloud.BytesMoved, cloud.CacheHits)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

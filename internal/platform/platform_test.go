package platform

import (
	"testing"
	"time"
)

func TestTable1Calibration(t *testing.T) {
	// The platform invoke overheads must match Table 1 of the paper.
	if got := Specs(Process).InvokeOverhead; got != 500*time.Nanosecond {
		t.Errorf("Process (syscall) overhead = %v, want 500ns", got)
	}
	if got := Specs(MicroVM).InvokeOverhead; got != 700*time.Nanosecond {
		t.Errorf("MicroVM (hypercall) overhead = %v, want 700ns", got)
	}
	if got := Specs(Wasm).InvokeOverhead; got != 17*time.Nanosecond {
		t.Errorf("Wasm call overhead = %v, want 17ns", got)
	}
}

func TestAllKindsHaveSpecs(t *testing.T) {
	for _, k := range Kinds() {
		s := Specs(k)
		if s.Kind != k {
			t.Errorf("Specs(%v).Kind = %v", k, s.Kind)
		}
		if s.ColdStart <= 0 || s.InvokeOverhead <= 0 {
			t.Errorf("%v has non-positive timings: %+v", k, s)
		}
		if s.Footprint.IsZero() {
			t.Errorf("%v has zero footprint", k)
		}
		if k.String() == "" {
			t.Errorf("%v has empty name", k)
		}
	}
}

func TestWasmColdStartBelowMicroVM(t *testing.T) {
	// The paper's point about lightweight isolation: Wasm instances must be
	// orders of magnitude cheaper to start and invoke than microVMs.
	w, m := Specs(Wasm), Specs(MicroVM)
	if w.ColdStart*100 > m.ColdStart {
		t.Errorf("Wasm cold start %v not ≪ MicroVM %v", w.ColdStart, m.ColdStart)
	}
	if w.InvokeOverhead*10 > m.InvokeOverhead {
		t.Errorf("Wasm invoke %v not ≪ MicroVM %v", w.InvokeOverhead, m.InvokeOverhead)
	}
}

func TestCopyCostScalesWithSize(t *testing.T) {
	small := CopyCost(1 << 10)
	big := CopyCost(1 << 30) // 1 GiB at 16 GB/s ≈ 67ms
	if big <= small {
		t.Error("copy cost does not grow with size")
	}
	if big < 50*time.Millisecond || big > 100*time.Millisecond {
		t.Errorf("1GiB copy = %v, want ~67ms at PCIe bandwidth", big)
	}
}

func TestDeviceResidency(t *testing.T) {
	d := NewDevice(1024)
	c1 := d.Ensure("weights", 100<<20)
	if c1 == 0 {
		t.Error("first Ensure should cost a copy")
	}
	if d.Copies != 1 {
		t.Errorf("Copies = %d, want 1", d.Copies)
	}
	c2 := d.Ensure("weights", 100<<20)
	if c2 != 0 {
		t.Errorf("resident Ensure cost %v, want 0 — this is §4.1's point", c2)
	}
	if d.Copies != 1 {
		t.Errorf("Copies = %d after resident hit, want 1", d.Copies)
	}
	if !d.Resident("weights") {
		t.Error("weights not resident")
	}
}

func TestDeviceEviction(t *testing.T) {
	d := NewDevice(300)
	d.Ensure("a", 100<<20)
	d.Ensure("b", 100<<20)
	d.Ensure("c", 100<<20)
	if d.UsedMB() != 300 {
		t.Fatalf("UsedMB = %d, want 300", d.UsedMB())
	}
	d.Ensure("d", 100<<20) // must evict something
	if d.UsedMB() > 300 {
		t.Errorf("UsedMB = %d exceeds capacity", d.UsedMB())
	}
	if !d.Resident("d") {
		t.Error("newly ensured object not resident")
	}
}

func TestDeviceInvalidate(t *testing.T) {
	d := NewDevice(1024)
	d.Ensure("x", 10<<20)
	d.Invalidate("x")
	if d.Resident("x") {
		t.Error("invalidated object still resident")
	}
	if d.UsedMB() != 0 {
		t.Errorf("UsedMB = %d after invalidate, want 0", d.UsedMB())
	}
	d.Invalidate("never-there") // must not panic
}

func TestDeviceOversizedObjectPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized Ensure did not panic")
		}
	}()
	NewDevice(10).Ensure("huge", 100<<20)
}

// Package platform models the heterogeneous execution platforms PCSI
// functions can run on (§3.1: "accelerators, containers, unikernels,
// WebAssembly, etc."), each with its own isolation-boundary crossing cost,
// cold-start latency, and resource footprint.
//
// Invoke overheads are calibrated to the paper's Table 1: a Linux system
// call (process isolation) costs 500 ns, a KVM hypervisor call (microVM)
// 700 ns, and a WebAssembly call in V8 17 ns.
package platform

import (
	"fmt"
	"time"

	"repro/internal/cluster"
)

// Kind enumerates execution platforms.
type Kind uint8

// The supported platform kinds.
const (
	Process   Kind = iota // plain OS process: syscall-level isolation cost
	Container             // namespaced container
	MicroVM               // KVM-style lightweight VM
	Unikernel             // single-purpose library OS on a hypervisor
	Wasm                  // WebAssembly instance inside a shared runtime
	GPU                   // accelerator-resident kernel
	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Process:
		return "process"
	case Container:
		return "container"
	case MicroVM:
		return "microvm"
	case Unikernel:
		return "unikernel"
	case Wasm:
		return "wasm"
	case GPU:
		return "gpu"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Kinds returns all platform kinds.
func Kinds() []Kind {
	ks := make([]Kind, 0, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		ks = append(ks, k)
	}
	return ks
}

// Spec describes a platform's cost model.
type Spec struct {
	Kind Kind
	// ColdStart is the time to boot a fresh instance (image pull excluded;
	// code fetch is modelled separately by the FaaS layer).
	ColdStart time.Duration
	// InvokeOverhead is the isolation-boundary crossing cost per call
	// (Table 1 calibrated).
	InvokeOverhead time.Duration
	// Teardown is the instance destruction time.
	Teardown time.Duration
	// Footprint is the idle resource cost of a warm instance.
	Footprint cluster.Resources
}

// Specs returns the default calibrated spec for each platform kind.
//
// Table 1 anchors: syscall 500ns (Process), hypervisor call 700ns
// (MicroVM/Unikernel), Wasm call 17ns. Cold starts reflect published
// serverless measurements: Wasm instances start in tens of microseconds,
// microVMs (Firecracker-class) in ~125ms, containers in ~400ms.
func Specs(k Kind) Spec {
	switch k {
	case Process:
		return Spec{Kind: k, ColdStart: 5 * time.Millisecond, InvokeOverhead: 500 * time.Nanosecond,
			Teardown: time.Millisecond, Footprint: cluster.Resources{MilliCPU: 100, MemMB: 64}}
	case Container:
		return Spec{Kind: k, ColdStart: 400 * time.Millisecond, InvokeOverhead: 700 * time.Nanosecond,
			Teardown: 50 * time.Millisecond, Footprint: cluster.Resources{MilliCPU: 100, MemMB: 128}}
	case MicroVM:
		return Spec{Kind: k, ColdStart: 125 * time.Millisecond, InvokeOverhead: 700 * time.Nanosecond,
			Teardown: 10 * time.Millisecond, Footprint: cluster.Resources{MilliCPU: 100, MemMB: 160}}
	case Unikernel:
		return Spec{Kind: k, ColdStart: 10 * time.Millisecond, InvokeOverhead: 700 * time.Nanosecond,
			Teardown: time.Millisecond, Footprint: cluster.Resources{MilliCPU: 50, MemMB: 32}}
	case Wasm:
		return Spec{Kind: k, ColdStart: 50 * time.Microsecond, InvokeOverhead: 17 * time.Nanosecond,
			Teardown: 10 * time.Microsecond, Footprint: cluster.Resources{MilliCPU: 10, MemMB: 8}}
	case GPU:
		return Spec{Kind: k, ColdStart: 2 * time.Second, InvokeOverhead: 10 * time.Microsecond,
			Teardown: 100 * time.Millisecond, Footprint: cluster.Resources{MilliCPU: 1000, MemMB: 4096, GPUs: 1}}
	default:
		panic("platform: unknown kind")
	}
}

// PCIe-class host↔device interconnect bandwidth used by the device memory
// model (bytes/second). NVLink-class fabrics would be ~10x this.
const HostDeviceBandwidth = 16e9

// CopyCost returns the host↔device transfer time for size bytes — the
// "single cudaMemcpy" of the paper's §4.1 — including a fixed launch
// latency.
func CopyCost(size int64) time.Duration {
	const launch = 10 * time.Microsecond
	return launch + time.Duration(float64(size)/HostDeviceBandwidth*float64(time.Second))
}

// Device models accelerator-attached memory with residency tracking: data
// already resident on the device needs no transfer, which is how a
// task-graph-aware scheduler avoids redundant copies.
type Device struct {
	CapMB    int64
	usedMB   int64
	resident map[string]int64 // key -> size bytes
	// Copies counts host↔device transfers performed.
	Copies      int64
	BytesCopied int64
}

// NewDevice returns a device with the given memory capacity.
func NewDevice(capMB int64) *Device {
	return &Device{CapMB: capMB, resident: make(map[string]int64)}
}

// Resident reports whether key's data is on the device.
func (d *Device) Resident(key string) bool {
	_, ok := d.resident[key]
	return ok
}

// UsedMB returns occupied device memory.
func (d *Device) UsedMB() int64 { return d.usedMB }

// Ensure makes key's data (size bytes) resident, returning the transfer
// time required: zero if already resident, one copy otherwise. When memory
// is tight, least-recently-added entries are evicted (free of charge — the
// host copy is authoritative).
func (d *Device) Ensure(key string, size int64) time.Duration {
	if d.Resident(key) {
		return 0
	}
	needMB := (size + 1<<20 - 1) >> 20
	if needMB > d.CapMB {
		panic(fmt.Sprintf("platform: object %s (%d MB) exceeds device capacity %d MB", key, needMB, d.CapMB))
	}
	for d.usedMB+needMB > d.CapMB {
		d.evictOne()
	}
	d.resident[key] = size
	d.usedMB += needMB
	d.Copies++
	d.BytesCopied += size
	return CopyCost(size)
}

// Invalidate drops key from the device (e.g., after the host copy mutated).
func (d *Device) Invalidate(key string) {
	if sz, ok := d.resident[key]; ok {
		delete(d.resident, key)
		d.usedMB -= (sz + 1<<20 - 1) >> 20
	}
}

func (d *Device) evictOne() {
	if len(d.resident) == 0 {
		panic("platform: evict on empty device")
	}
	// Evict the smallest key, not an arbitrary map element: which working
	// set survives memory pressure must not vary with map-iteration order.
	victim, first := "", true
	for k := range d.resident {
		if first || k < victim {
			victim, first = k, false
		}
	}
	d.Invalidate(victim)
}

package gc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/capability"
	"repro/internal/media"
	"repro/internal/object"
	"repro/internal/store"
)

func TestUnreferencedObjectCollected(t *testing.T) {
	st := store.New(media.DRAM, 0)
	reg := capability.NewRegistry()
	c := New(st)
	c.AddRoots(reg)

	kept := st.Create(object.Regular)
	reg.Mint(kept.ID(), capability.Read)
	orphan := st.Create(object.Regular)
	if err := st.SetData(orphan.ID(), make([]byte, 100)); err != nil {
		t.Fatal(err)
	}

	swept := c.Collect()
	if swept != 1 {
		t.Errorf("swept = %d, want 1", swept)
	}
	if !st.Contains(kept.ID()) {
		t.Error("referenced object collected")
	}
	if st.Contains(orphan.ID()) {
		t.Error("orphan survived")
	}
	if c.LastReclaimed != 100 {
		t.Errorf("LastReclaimed = %d, want 100", c.LastReclaimed)
	}
}

func TestDirectoryKeepsChildrenAlive(t *testing.T) {
	st := store.New(media.DRAM, 0)
	reg := capability.NewRegistry()
	c := New(st)
	c.AddRoots(reg)

	root := st.Create(object.Directory)
	sub := st.Create(object.Directory)
	leaf := st.Create(object.Regular)
	if err := root.Link("sub", sub.ID()); err != nil {
		t.Fatal(err)
	}
	if err := sub.Link("leaf", leaf.ID()); err != nil {
		t.Fatal(err)
	}
	reg.Mint(root.ID(), capability.Read)

	if swept := c.Collect(); swept != 0 {
		t.Errorf("swept = %d, want 0", swept)
	}
	for _, id := range []object.ID{root.ID(), sub.ID(), leaf.ID()} {
		if !st.Contains(id) {
			t.Errorf("%v collected despite reachability", id)
		}
	}
	// Unlink the subtree: both sub and leaf become garbage.
	if err := root.Unlink("sub"); err != nil {
		t.Fatal(err)
	}
	if swept := c.Collect(); swept != 2 {
		t.Errorf("swept = %d after unlink, want 2", swept)
	}
}

func TestDroppedReferenceMakesGarbage(t *testing.T) {
	st := store.New(media.DRAM, 0)
	reg := capability.NewRegistry()
	c := New(st)
	c.AddRoots(reg)
	o := st.Create(object.Regular)
	ref := reg.Mint(o.ID(), capability.Read)
	if swept := c.Collect(); swept != 0 {
		t.Fatalf("swept = %d with live ref", swept)
	}
	reg.Drop(ref)
	if swept := c.Collect(); swept != 1 {
		t.Errorf("swept = %d after drop, want 1", swept)
	}
}

func TestPinProtects(t *testing.T) {
	st := store.New(media.DRAM, 0)
	c := New(st)
	o := st.Create(object.Regular)
	c.Pin(o.ID())
	c.Pin(o.ID())
	if swept := c.Collect(); swept != 0 {
		t.Fatalf("pinned object swept")
	}
	c.Unpin(o.ID())
	if swept := c.Collect(); swept != 0 {
		t.Fatalf("nested pin not honoured")
	}
	c.Unpin(o.ID())
	if swept := c.Collect(); swept != 1 {
		t.Errorf("swept = %d after unpin, want 1", swept)
	}
}

func TestCycleCollected(t *testing.T) {
	// Two directories referencing each other but unreachable from roots
	// must still be collected — mark & sweep handles cycles.
	st := store.New(media.DRAM, 0)
	c := New(st)
	a := st.Create(object.Directory)
	b := st.Create(object.Directory)
	if err := a.Link("b", b.ID()); err != nil {
		t.Fatal(err)
	}
	if err := b.Link("a", a.ID()); err != nil {
		t.Fatal(err)
	}
	if swept := c.Collect(); swept != 2 {
		t.Errorf("swept = %d, want 2 (cycle)", swept)
	}
}

func TestMultipleRootSources(t *testing.T) {
	st := store.New(media.DRAM, 0)
	c := New(st)
	a := st.Create(object.Regular)
	b := st.Create(object.Regular)
	st.Create(object.Regular) // garbage
	c.AddRoots(RootsFunc(func() []object.ID { return []object.ID{a.ID()} }))
	c.AddRoots(RootsFunc(func() []object.ID { return []object.ID{b.ID()} }))
	if swept := c.Collect(); swept != 1 {
		t.Errorf("swept = %d, want 1", swept)
	}
	if !st.Contains(a.ID()) || !st.Contains(b.ID()) {
		t.Error("rooted object collected")
	}
}

func TestStaleRootIgnored(t *testing.T) {
	st := store.New(media.DRAM, 0)
	c := New(st)
	c.AddRoots(RootsFunc(func() []object.ID { return []object.ID{object.ID(999)} }))
	st.Create(object.Regular)
	if swept := c.Collect(); swept != 1 {
		t.Errorf("swept = %d, want 1", swept)
	}
}

// Property: after any collection, every object reachable from roots is
// still present and every present object is reachable (safety AND
// completeness of the collector).
func TestCollectExactnessProperty(t *testing.T) {
	f := func(links []uint8, rootPick uint8) bool {
		st := store.New(media.DRAM, 0)
		c := New(st)
		const n = 10
		var objs []*object.Object
		for i := 0; i < n; i++ {
			objs = append(objs, st.Create(object.Directory))
		}
		// Random edges.
		for i := 0; i+1 < len(links); i += 2 {
			from := objs[int(links[i])%n]
			to := objs[int(links[i+1])%n]
			_ = from.Link(to.ID().String()+from.ID().String(), to.ID())
		}
		root := objs[int(rootPick)%n]
		c.AddRoots(RootsFunc(func() []object.ID { return []object.ID{root.ID()} }))

		// Compute expected reachability independently.
		expect := map[object.ID]bool{}
		var walk func(id object.ID)
		walk = func(id object.ID) {
			if expect[id] || !st.Contains(id) {
				return
			}
			expect[id] = true
			o, _ := st.Get(id)
			for _, ch := range o.ChildIDs() {
				walk(ch)
			}
		}
		walk(root.ID())

		c.Collect()
		if st.Len() != len(expect) {
			return false
		}
		for id := range expect {
			if !st.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectionStats(t *testing.T) {
	st := store.New(media.DRAM, 0)
	c := New(st)
	st.Create(object.Regular)
	c.Collect()
	c.Collect()
	if c.Collections != 2 {
		t.Errorf("Collections = %d", c.Collections)
	}
	if c.LastSwept != 0 {
		t.Errorf("second collection swept %d", c.LastSwept)
	}
}

// Package gc implements PCSI's automated resource reclamation (§3.2):
// "object reachability [is] explicit. An object is only accessible by
// functions that hold a reference to it or to a namespace containing it
// ... Another benefit is automated resource reclamation for unreachable
// objects."
//
// The collector is a mark-and-sweep over one store: roots are (a) every
// object with a live capability reference and (b) the root directories of
// registered namespaces; directories keep their children alive.
package gc

import (
	"repro/internal/object"
	"repro/internal/store"
)

// RootSource contributes root object IDs to a collection.
type RootSource interface {
	// Roots returns object IDs that must be considered live.
	Roots() []object.ID
}

// RootsFunc adapts a function to a RootSource.
type RootsFunc func() []object.ID

// Roots calls f.
func (f RootsFunc) Roots() []object.ID { return f() }

// Collector garbage-collects one store.
type Collector struct {
	st      *store.Store
	sources []RootSource
	// Pinned objects are never collected regardless of reachability
	// (system objects such as function code during execution).
	pinned map[object.ID]int

	// Stats from the most recent collection.
	LastMarked    int
	LastSwept     int
	LastSweptIDs  []object.ID
	LastReclaimed int64 // bytes
	Collections   int
}

// New returns a collector for st.
func New(st *store.Store) *Collector {
	return &Collector{st: st, pinned: make(map[object.ID]int)}
}

// AddRoots registers a root source (capability registry, namespace table).
func (c *Collector) AddRoots(src RootSource) { c.sources = append(c.sources, src) }

// Pin protects id from collection until a matching Unpin. Pins nest.
func (c *Collector) Pin(id object.ID) { c.pinned[id]++ }

// Unpin removes one pin from id.
func (c *Collector) Unpin(id object.ID) {
	if c.pinned[id] <= 1 {
		delete(c.pinned, id)
		return
	}
	c.pinned[id]--
}

// Collect runs a full mark-and-sweep and returns the number of objects
// reclaimed.
func (c *Collector) Collect() int {
	marked := make(map[object.ID]bool)
	var stack []object.ID
	push := func(id object.ID) {
		if id != object.NilID && !marked[id] && c.st.Contains(id) {
			marked[id] = true
			stack = append(stack, id)
		}
	}
	for _, src := range c.sources {
		for _, id := range src.Roots() {
			push(id)
		}
	}
	for id := range c.pinned {
		push(id)
	}
	// Trace: directories reach their entries; other kinds are leaves.
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		o, err := c.st.Get(id)
		if err != nil {
			continue
		}
		if o.Kind() == object.Directory {
			for _, child := range o.ChildIDs() {
				push(child)
			}
		}
	}
	// Sweep.
	swept := 0
	var reclaimed int64
	c.LastSweptIDs = c.LastSweptIDs[:0]
	for _, id := range c.st.IDs() {
		if marked[id] {
			continue
		}
		if o, err := c.st.Get(id); err == nil {
			reclaimed += o.Size()
		}
		if err := c.st.Delete(id); err == nil {
			swept++
			c.LastSweptIDs = append(c.LastSweptIDs, id)
		}
	}
	c.LastMarked = len(marked)
	c.LastSwept = swept
	c.LastReclaimed = reclaimed
	c.Collections++
	return swept
}

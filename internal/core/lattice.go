package core

import (
	"fmt"

	"repro/internal/capability"
	"repro/internal/consistency"
	"repro/internal/fncache"
	"repro/internal/media"
	"repro/internal/object"
	"repro/internal/sim"
)

// Lattice object operations: eventual-consistency objects whose payloads
// are encoded join-semilattice values (internal/fncache). With a colocated
// cache, updates merge into the caller node's local replica at DRAM cost
// and reach the store on the next LatticeSync; without one, every
// operation is a read-merge-write round trip through the store. Either
// way the store-level anti-entropy resolves concurrent flushes with the
// lattice join instead of last-writer-wins (Group.SetMerger), so replicas
// converge without losing updates.

// LatticeCreate makes an eventual-consistency object initialized to the
// bottom lattice value. The bottom write is linearizable so every replica
// starts from a decodable lattice payload; all later updates are eventual.
func (cl *Client) LatticeCreate(p *sim.Proc, bottom fncache.Lattice) (Ref, error) {
	r, err := cl.Create(p, object.Regular, WithConsistency(consistency.Eventual))
	if err != nil {
		return Ref{}, err
	}
	seed := r
	seed.lvl = consistency.Linearizable
	if err := cl.Put(p, seed, bottom.Encode()); err != nil {
		return Ref{}, err
	}
	return r, nil
}

// LatticeUpdate merges delta into the object. Cached: a DRAM-cost merge
// into the node's local replica, flushed later. Uncached: read-merge-write
// through the store.
func (cl *Client) LatticeUpdate(p *sim.Proc, r Ref, delta fncache.Lattice) error {
	if err := cl.check(r, capability.Write); err != nil {
		return err
	}
	if fc := cl.c.fncache; fc != nil {
		fc.LatticeMergeLocal(int(cl.node), fncache.Key(r.cap.Object()), delta)
		p.Sleep(media.DRAM.WriteLatency)
		return nil
	}
	return cl.latticeRMW(p, r, delta.Encode())
}

// LatticeRead returns the object's lattice value as observed at the
// caller's node: the local replica when cached (counting a read against a
// store that has moved on as observed-stale), the store's closest replica
// otherwise.
func (cl *Client) LatticeRead(p *sim.Proc, r Ref) (fncache.Lattice, error) {
	if err := cl.check(r, capability.Read); err != nil {
		return nil, err
	}
	fc := cl.c.fncache
	if fc == nil {
		data, err := cl.GetAt(p, r, consistency.Eventual)
		if err != nil {
			return nil, err
		}
		return fncache.Decode(data)
	}
	node, key := int(cl.node), fncache.Key(r.cap.Object())
	if v, ok := fc.LatticeGet(node, key); ok {
		if newest, have := cl.c.grp.NewestStamp(r.cap.Object()); have && fc.SyncStamp(node, key).Less(newest) {
			fc.NoteLatticeStale()
		}
		p.Sleep(media.DRAM.ReadLatency)
		return v, nil
	}
	// Cold: pull the store value into a fresh local replica.
	data, err := cl.GetAt(p, r, consistency.Eventual)
	if err != nil {
		return nil, err
	}
	v, derr := fncache.Decode(data)
	if derr != nil {
		return nil, derr
	}
	stamp, _ := cl.c.grp.NewestStamp(r.cap.Object())
	fc.LatticePull(node, key, v, stamp)
	return v, nil
}

// LatticeSync flushes the caller node's dirty replica into the store
// (read-merge-write at eventual consistency) and pulls the store's join
// back, clearing observed staleness up to the synced stamp. A no-op
// without a cache: every update already went through the store.
func (cl *Client) LatticeSync(p *sim.Proc, r Ref) error {
	if err := cl.check(r, capability.Read|capability.Write); err != nil {
		return err
	}
	fc := cl.c.fncache
	if fc == nil {
		return nil
	}
	node, key := int(cl.node), fncache.Key(r.cap.Object())
	if fc.LatticeDirty(node, key) {
		enc := fc.NodeValue(node, key)
		if err := cl.latticeRMW(p, r, enc); err != nil {
			return err
		}
		stamp, _ := cl.c.grp.NewestStamp(r.cap.Object())
		fc.Flushed(node, key, stamp)
	}
	data, err := cl.GetAt(p, r, consistency.Eventual)
	if err != nil {
		return err
	}
	v, derr := fncache.Decode(data)
	if derr != nil {
		return derr
	}
	stamp, _ := cl.c.grp.NewestStamp(r.cap.Object())
	fc.LatticePull(node, key, v, stamp)
	return nil
}

// latticeRMW folds enc into the stored payload: read the current value,
// join, write back. The write is eventual — a concurrent flush from
// another node lands on a different replica and anti-entropy joins the
// two (Merges counter), which is what makes this safe without a lock.
func (cl *Client) latticeRMW(p *sim.Proc, r Ref, enc []byte) error {
	cur, err := cl.GetAt(p, r, consistency.Eventual)
	if err != nil {
		return err
	}
	merged := enc
	if fncache.Mergeable(cur) {
		if m, ok := fncache.MergePayload(cur, enc); ok {
			merged = m
		}
	}
	return cl.Put(p, r, merged)
}

// LatticeAudit is the lattice convergence check, used by the chaos
// harness's invariants and by experiments after quiescence. It (1) flushes
// every node replica into the store quiescently, (2) runs anti-entropy to
// a fixed point, (3) asserts every node replica is ≤ the store's join — a
// replica holding state the join lost means an update was dropped — and
// (4) installs the join back into every replica so post-audit state is
// converged. The returned strings describe violations; nil means every
// replica converged (or the deployment has no cache).
func (c *Cloud) LatticeAudit() []string {
	fc := c.fncache
	if fc == nil {
		return nil
	}
	var v []string
	st := c.grp.Primary0Store()
	keys := fc.LatticeKeys()
	for _, key := range keys {
		id := object.ID(key)
		if !st.Contains(id) {
			continue // swept by GC; Invalidate dropped the replicas
		}
		for _, node := range fc.LatticeNodes(key) {
			enc := fc.NodeValue(node, key)
			if enc == nil {
				continue
			}
			err := c.grp.QuiescentApply(id, func(o *object.Object) error {
				merged := enc
				if cur := o.Read(); fncache.Mergeable(cur) {
					if m, ok := fncache.MergePayload(cur, enc); ok {
						merged = m
					}
				}
				return o.SetData(merged)
			})
			if err != nil {
				v = append(v, fmt.Sprintf("lattice flush of object %v from node %d: %v", id, node, err))
			}
		}
	}
	c.grp.SyncAll()
	for _, key := range keys {
		id := object.ID(key)
		o, err := st.Get(id)
		if err != nil {
			continue
		}
		storeVal := o.Read()
		sv, derr := fncache.Decode(storeVal)
		if derr != nil {
			v = append(v, fmt.Sprintf("lattice object %v: store payload is not a lattice: %v", id, derr))
			continue
		}
		stamp, _ := c.grp.NewestStamp(id)
		for _, node := range fc.LatticeNodes(key) {
			enc := fc.NodeValue(node, key)
			if le, lerr := fncache.PayloadLeq(enc, storeVal); lerr != nil || !le {
				v = append(v, fmt.Sprintf("lattice replica of object %v at node %d exceeds the store join after heal+sync", id, node))
				continue
			}
			fc.InstallPulled(node, key, sv, stamp)
		}
	}
	return v
}

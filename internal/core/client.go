package core

import (
	"errors"
	"fmt"

	"repro/internal/capability"
	"repro/internal/consistency"
	"repro/internal/cost"
	"repro/internal/fncache"
	"repro/internal/media"
	"repro/internal/object"
	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Client is a PCSI session bound to an origin node. All data operations
// are charged the network and media costs of that origin, and validated
// against the capability each call presents — a stateful, reference-based
// protocol (§3.2: "references make the PCSI API stateful").
type Client struct {
	c    *Cloud
	node simnet.NodeID
	// tenant names the workload for QoS admission; "" is the default
	// tenant. Inert when the cloud runs without a controller.
	tenant string
}

// NewClient returns a client homed on a fresh node in the given rack.
func (c *Cloud) NewClient(rack int) *Client {
	return &Client{c: c, node: c.net.AddNode(rack)}
}

// ClientAt returns a client homed on an existing node (e.g., a function
// instance's node, so data ops originate where the code runs).
func (c *Cloud) ClientAt(node simnet.NodeID) *Client {
	return &Client{c: c, node: node}
}

// Node returns the client's origin node.
func (cl *Client) Node() simnet.NodeID { return cl.node }

// Cloud returns the owning deployment.
func (cl *Client) Cloud() *Cloud { return cl.c }

// WithTenant returns a copy of the client attributed to the named tenant:
// its operations queue in (and are weighted by) that tenant's WFQ queues
// when the cloud has a QoS controller, and its function invocations carry
// the tenant in their placement hints.
func (cl *Client) WithTenant(name string) *Client {
	c2 := *cl
	c2.tenant = name
	return &c2
}

// Tenant returns the client's tenant name ("" = default).
func (cl *Client) Tenant() string { return cl.tenant }

// admit gates one data-plane operation through the admission controller.
// With no controller (the historical configuration) it is an inlined
// no-op returning the zero Grant.
func (cl *Client) admit(p *sim.Proc, class qos.Class) (qos.Grant, error) {
	return cl.c.qos.Admit(p, qos.Request{Tenant: cl.tenant, Class: class})
}

// CreateOpt mutates creation parameters.
type CreateOpt func(*createParams)

type createParams struct {
	lvl       consistency.Level
	mut       object.Mutability
	ephemeral bool
}

// WithConsistency sets the object's default consistency level.
func WithConsistency(l consistency.Level) CreateOpt {
	return func(p *createParams) { p.lvl = l }
}

// WithMutability sets the object's initial mutability level.
func WithMutability(m object.Mutability) CreateOpt {
	return func(p *createParams) { p.mut = m }
}

// check validates the reference's rights; this is the single, local
// capability check that replaces REST's per-request re-authentication.
// Traced runs record each check as an instant event on the capability
// track — the check itself costs zero virtual time, which is the point.
func (cl *Client) check(r Ref, need capability.Rights) error {
	err := cl.checkErr(r, need)
	if t := trace.Of(cl.c.env); t != nil {
		attrs := []trace.Attr{
			trace.Int("obj", int64(r.cap.Object())),
			trace.Str("need", need.String()),
		}
		if err != nil {
			attrs = append(attrs, trace.Str("denied", err.Error()))
		}
		t.Instant("capability", "cap", "check", attrs...)
	}
	return err
}

func (cl *Client) checkErr(r Ref, need capability.Rights) error {
	if !r.Valid() {
		return ErrInvalidRef
	}
	if err := cl.c.caps.Check(r.cap, need); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// observe records a data operation's latency.
func (cl *Client) observe(p *sim.Proc, start sim.Time) {
	cl.c.DataLat.Observe(p.Now().Sub(start))
}

// opSpan opens a span for one client operation: cat "core.data" for payload
// ops, "core.meta" for metadata-only ops. The span nests under whatever the
// calling process has open (a function's exec span, a task span, ...).
func (cl *Client) opSpan(p *sim.Proc, cat, name string, obj object.ID) *trace.Span {
	return trace.Of(cl.c.env).Start(p, cat, name,
		trace.Int("obj", int64(obj)), trace.Int("origin", int64(cl.node)))
}

// Create makes a new object and returns a full-rights reference to it.
func (cl *Client) Create(p *sim.Proc, kind object.Kind, opts ...CreateOpt) (Ref, error) {
	params := createParams{lvl: consistency.Linearizable, mut: object.Mutable}
	for _, o := range opts {
		o(&params)
	}
	g, qerr := cl.admit(p, qos.ClassData)
	if qerr != nil {
		return Ref{}, qerr
	}
	defer g.Release()
	sp := trace.Of(cl.c.env).Start(p, "core.data", "create", trace.Int("origin", int64(cl.node)))
	defer sp.Close(p)
	start := p.Now()
	if params.ephemeral {
		id := cl.c.newEphem(cl.node, kind)
		if params.mut != object.Mutable {
			if err := cl.c.ephem[id].obj.SetMutability(params.mut); err != nil {
				return Ref{}, err
			}
		}
		p.Sleep(media.DRAM.WriteLatency)
		cl.observe(p, start)
		return Ref{cap: cl.c.caps.Mint(id, capability.All), lvl: params.lvl}, nil
	}
	var id object.ID
	err := cl.c.do(p, "core.create", func() error {
		if ferr := cl.c.inj.OpFault(p, "core.create"); ferr != nil {
			return ferr
		}
		var cerr error
		id, cerr = cl.c.grp.Create(p, cl.node, kind)
		return cerr
	})
	if err != nil {
		return Ref{}, err
	}
	if params.mut != object.Mutable {
		err = cl.c.grp.Apply(p, cl.node, id, consistency.Linearizable, 0, func(o *object.Object) error {
			return o.SetMutability(params.mut)
		})
		if err != nil {
			return Ref{}, err
		}
	}
	cl.observe(p, start)
	return Ref{cap: cl.c.caps.Mint(id, capability.All), lvl: params.lvl}, nil
}

// beginWrite opens a coherence write on r's object when the colocated
// cache may lease it: the epoch bump drops every holder BEFORE the store
// mutates (so no entry outlives the data it copied), and the invalidation
// fan-out is charged one message per holder. The returned closure ends the
// write and must run even when the store operation fails.
func (cl *Client) beginWrite(p *sim.Proc, r Ref) func() {
	fc := cl.c.fncache
	if fc == nil || r.lvl != consistency.Linearizable {
		return func() {}
	}
	key := fncache.Key(r.cap.Object())
	for _, h := range fc.BeginWrite(key) {
		cl.c.net.Send(p, cl.node, simnet.NodeID(h), 64) // invalidate message
	}
	return func() { fc.EndWrite(key) }
}

// Put replaces an object's payload.
func (cl *Client) Put(p *sim.Proc, r Ref, data []byte) error {
	if err := cl.check(r, capability.Write); err != nil {
		return err
	}
	g, qerr := cl.admit(p, qos.ClassData)
	if qerr != nil {
		return qerr
	}
	defer g.Release()
	sp := cl.opSpan(p, "core.data", "put", r.cap.Object())
	sp.Annotate(trace.Int("bytes", int64(len(data))))
	defer sp.Close(p)
	if e, ok := cl.c.ephemOf(r.cap.Object()); ok {
		// Whole-object writes migrate the single copy to the writer: data
		// lives where it was produced, so a co-scheduled consumer reads it
		// locally (§4.1).
		e.owner = cl.node
		return cl.ephemMutate(p, e, len(data), func(o *object.Object) error {
			return o.SetData(data)
		})
	}
	start := p.Now()
	endWrite := cl.beginWrite(p, r)
	defer endWrite()
	cl.c.BytesMoved += int64(len(data))
	err := cl.c.do(p, "core.put", func() error {
		if ferr := cl.c.inj.OpFault(p, "core.put"); ferr != nil {
			return ferr
		}
		return cl.c.grp.Apply(p, cl.node, r.cap.Object(), r.lvl, len(data), func(o *object.Object) error {
			return o.SetData(data)
		})
	})
	if err == nil {
		// Stage the written content locally; it becomes servable if the
		// object is later frozen (cache-stable, §3.3).
		cl.c.cacheFor(cl.node)[r.cap.Object()] = &cacheEntry{data: append([]byte(nil), data...)}
		cl.c.Meter.Charge("write", cost.PCSIBook.WriteCost(int64(len(data))))
	}
	cl.observe(p, start)
	return err
}

// Get returns an object's full payload. Reads of frozen objects whose
// content is cached on the client's node are served locally without
// touching the network — logical disaggregation without physical
// disaggregation (§4.1).
func (cl *Client) Get(p *sim.Proc, r Ref) ([]byte, error) {
	if err := cl.check(r, capability.Read); err != nil {
		return nil, err
	}
	g, qerr := cl.admit(p, qos.ClassData)
	if qerr != nil {
		return nil, qerr
	}
	defer g.Release()
	sp := cl.opSpan(p, "core.data", "get", r.cap.Object())
	defer sp.Close(p)
	if e, ok := cl.c.ephemOf(r.cap.Object()); ok {
		var data []byte
		err := cl.ephemView(p, e, int(e.obj.Size()), func(o *object.Object) error {
			data = o.Read()
			return nil
		})
		return data, err
	}
	start := p.Now()
	if e, ok := cl.c.cacheFor(cl.node)[r.cap.Object()]; ok && e.stable {
		cl.c.CacheHits++
		sp.Annotate(trace.Str("cache", "hit"))
		p.Sleep(media.DRAM.ReadCost(int64(len(e.data))))
		cl.c.Meter.Charge("read", cost.PCSIBook.ReadCost(int64(len(e.data)), false))
		cl.observe(p, start)
		return append([]byte(nil), e.data...), nil
	}
	// Lease path: a linearizable read served from the colocated cache skips
	// both the network round trip and the primary's per-object lock — the
	// Cloudburst win. Validity is audited on every hit: an entry whose fill
	// stamp trails the store's newest is a coherence violation, not a
	// staleness allowance.
	fc := cl.c.fncache
	leased := fc != nil && r.lvl == consistency.Linearizable
	key := fncache.Key(r.cap.Object())
	if leased {
		if data, stamp, ok := fc.LeaseGet(int(cl.node), key, p.Now()); ok {
			if newest, have := cl.c.grp.NewestStamp(r.cap.Object()); have && stamp.Less(newest) {
				fc.StaleLeaseServes.Inc()
			}
			sp.Annotate(trace.Str("fncache", "hit"))
			p.Sleep(media.DRAM.ReadCost(int64(len(data))))
			cl.c.Meter.Charge("read", cost.PCSIBook.ReadCost(int64(len(data)), false))
			cl.observe(p, start)
			return append([]byte(nil), data...), nil
		}
	}
	var epochAtRead uint64
	if leased {
		epochAtRead = fc.Epoch(key)
	}
	var data []byte
	var frozen bool
	var kind object.Kind
	err := cl.c.do(p, "core.get", func() error {
		if ferr := cl.c.inj.OpFault(p, "core.get"); ferr != nil {
			return ferr
		}
		return cl.c.grp.View(p, cl.node, r.cap.Object(), r.lvl, func(o *object.Object) error {
			data = o.Read()
			frozen = o.Mutability() == object.Immutable
			kind = o.Kind()
			return nil
		})
	})
	if err == nil {
		// Pull-through: remote reads populate the local cache; the entry
		// is servable immediately when the object is already frozen.
		cl.c.cacheFor(cl.node)[r.cap.Object()] = &cacheEntry{data: append([]byte(nil), data...), stable: frozen}
		cl.c.Meter.Charge("read", cost.PCSIBook.ReadCost(int64(len(data)), r.lvl == consistency.Linearizable))
		if leased && kind == object.Regular {
			// Fill under the epoch recorded before the read; a write that
			// slipped in between bumped it and the fill is refused. Only
			// plain payload objects are cached: FIFOs, sockets, and
			// directories mutate through verbs the lease directory does not
			// hook.
			stamp, _ := cl.c.grp.PrimaryStamp(r.cap.Object())
			fc.LeaseFill(int(cl.node), key, data, stamp, epochAtRead, p.Now())
		}
	}
	cl.c.BytesMoved += int64(len(data))
	cl.observe(p, start)
	return data, err
}

// GetAt reads at a specific consistency level, overriding the reference's
// default — the per-operation menu of §3.3.
func (cl *Client) GetAt(p *sim.Proc, r Ref, lvl consistency.Level) ([]byte, error) {
	if err := cl.check(r, capability.Read); err != nil {
		return nil, err
	}
	g, qerr := cl.admit(p, qos.ClassData)
	if qerr != nil {
		return nil, qerr
	}
	defer g.Release()
	sp := cl.opSpan(p, "core.data", "get_at", r.cap.Object())
	defer sp.Close(p)
	start := p.Now()
	var data []byte
	err := cl.c.do(p, "core.get_at", func() error {
		if ferr := cl.c.inj.OpFault(p, "core.get_at"); ferr != nil {
			return ferr
		}
		var gerr error
		data, gerr = cl.c.grp.Read(p, cl.node, r.cap.Object(), lvl)
		return gerr
	})
	cl.c.BytesMoved += int64(len(data))
	cl.observe(p, start)
	return data, err
}

// Append appends to an object.
func (cl *Client) Append(p *sim.Proc, r Ref, data []byte) error {
	if err := cl.check(r, capability.Append); err != nil {
		return err
	}
	g, qerr := cl.admit(p, qos.ClassData)
	if qerr != nil {
		return qerr
	}
	defer g.Release()
	sp := cl.opSpan(p, "core.data", "append", r.cap.Object())
	sp.Annotate(trace.Int("bytes", int64(len(data))))
	defer sp.Close(p)
	if e, ok := cl.c.ephemOf(r.cap.Object()); ok {
		return cl.ephemMutate(p, e, len(data), func(o *object.Object) error {
			return o.Append(data)
		})
	}
	start := p.Now()
	endWrite := cl.beginWrite(p, r)
	defer endWrite()
	cl.c.BytesMoved += int64(len(data))
	err := cl.c.do(p, "core.append", func() error {
		if ferr := cl.c.inj.OpFault(p, "core.append"); ferr != nil {
			return ferr
		}
		return cl.c.grp.Apply(p, cl.node, r.cap.Object(), r.lvl, len(data), func(o *object.Object) error {
			return o.Append(data)
		})
	})
	cl.observe(p, start)
	return err
}

// WriteAt writes data at an offset.
func (cl *Client) WriteAt(p *sim.Proc, r Ref, data []byte, off int64) error {
	if err := cl.check(r, capability.Write); err != nil {
		return err
	}
	g, qerr := cl.admit(p, qos.ClassData)
	if qerr != nil {
		return qerr
	}
	defer g.Release()
	sp := cl.opSpan(p, "core.data", "write_at", r.cap.Object())
	sp.Annotate(trace.Int("bytes", int64(len(data))))
	defer sp.Close(p)
	if e, ok := cl.c.ephemOf(r.cap.Object()); ok {
		return cl.ephemMutate(p, e, len(data), func(o *object.Object) error {
			_, werr := o.WriteAt(data, off)
			return werr
		})
	}
	start := p.Now()
	endWrite := cl.beginWrite(p, r)
	defer endWrite()
	cl.c.BytesMoved += int64(len(data))
	err := cl.c.do(p, "core.write_at", func() error {
		if ferr := cl.c.inj.OpFault(p, "core.write_at"); ferr != nil {
			return ferr
		}
		return cl.c.grp.Apply(p, cl.node, r.cap.Object(), r.lvl, len(data), func(o *object.Object) error {
			_, werr := o.WriteAt(data, off)
			return werr
		})
	})
	cl.observe(p, start)
	return err
}

// ReadAt reads up to n bytes from an offset.
func (cl *Client) ReadAt(p *sim.Proc, r Ref, off int64, n int) ([]byte, error) {
	if err := cl.check(r, capability.Read); err != nil {
		return nil, err
	}
	g, qerr := cl.admit(p, qos.ClassData)
	if qerr != nil {
		return nil, qerr
	}
	defer g.Release()
	sp := cl.opSpan(p, "core.data", "read_at", r.cap.Object())
	defer sp.Close(p)
	if e, ok := cl.c.ephemOf(r.cap.Object()); ok {
		buf := make([]byte, n)
		var got int
		err := cl.ephemView(p, e, n, func(o *object.Object) error {
			var rerr error
			got, rerr = o.ReadAt(buf, off)
			return rerr
		})
		return buf[:got], err
	}
	start := p.Now()
	buf := make([]byte, n)
	var got int
	err := cl.c.do(p, "core.read_at", func() error {
		if ferr := cl.c.inj.OpFault(p, "core.read_at"); ferr != nil {
			return ferr
		}
		return cl.c.grp.View(p, cl.node, r.cap.Object(), r.lvl, func(o *object.Object) error {
			var rerr error
			got, rerr = o.ReadAt(buf, off)
			return rerr
		})
	})
	cl.c.BytesMoved += int64(got)
	cl.observe(p, start)
	return buf[:got], err
}

// Freeze moves the object along the Figure 1 mutability lattice. Freezing
// to IMMUTABLE promotes any staged local copy to cache-stable.
func (cl *Client) Freeze(p *sim.Proc, r Ref, m object.Mutability) error {
	if err := cl.check(r, capability.SetMut); err != nil {
		return err
	}
	g, qerr := cl.admit(p, qos.ClassData)
	if qerr != nil {
		return qerr
	}
	defer g.Release()
	sp := cl.opSpan(p, "core.meta", "freeze", r.cap.Object())
	sp.Annotate(trace.Str("to", m.String()))
	defer sp.Close(p)
	if e, ok := cl.c.ephemOf(r.cap.Object()); ok {
		return cl.ephemMutate(p, e, 0, func(o *object.Object) error {
			return o.SetMutability(m)
		})
	}
	endWrite := cl.beginWrite(p, r)
	defer endWrite()
	err := cl.c.do(p, "core.freeze", func() error {
		if ferr := cl.c.inj.OpFault(p, "core.freeze"); ferr != nil {
			return ferr
		}
		return cl.c.grp.Apply(p, cl.node, r.cap.Object(), consistency.Linearizable, 0, func(o *object.Object) error {
			return o.SetMutability(m)
		})
	})
	if err == nil && m == object.Immutable {
		// The staged local copy may be stale (another node could have
		// written after we staged), so it cannot simply be promoted.
		// Drop it unless it provably matches the frozen content; the next
		// Get pulls the authoritative bytes through and caches them.
		id := r.cap.Object()
		if e, ok := cl.c.cacheFor(cl.node)[id]; ok {
			if o, gerr := cl.c.grp.Primary0Store().Get(id); gerr == nil && bytesEqual(o.Read(), e.data) {
				e.stable = true
			} else {
				delete(cl.c.cacheFor(cl.node), id)
			}
		}
	}
	return err
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Mutability reports the object's current level.
func (cl *Client) Mutability(p *sim.Proc, r Ref) (object.Mutability, error) {
	if err := cl.check(r, capability.Read); err != nil {
		return 0, err
	}
	sp := cl.opSpan(p, "core.meta", "mutability", r.cap.Object())
	defer sp.Close(p)
	if e, ok := cl.c.ephemOf(r.cap.Object()); ok {
		var m object.Mutability
		err := cl.ephemView(p, e, 0, func(o *object.Object) error {
			m = o.Mutability()
			return nil
		})
		return m, err
	}
	var m object.Mutability
	err := cl.c.grp.View(p, cl.node, r.cap.Object(), consistency.Linearizable, func(o *object.Object) error {
		m = o.Mutability()
		return nil
	})
	return m, err
}

// Push enqueues a message on a FIFO object.
func (cl *Client) Push(p *sim.Proc, r Ref, msg []byte) error {
	if err := cl.check(r, capability.Append); err != nil {
		return err
	}
	g, qerr := cl.admit(p, qos.ClassData)
	if qerr != nil {
		return qerr
	}
	defer g.Release()
	sp := cl.opSpan(p, "core.data", "push", r.cap.Object())
	defer sp.Close(p)
	cl.c.BytesMoved += int64(len(msg))
	return cl.c.do(p, "core.push", func() error {
		if ferr := cl.c.inj.OpFault(p, "core.push"); ferr != nil {
			return ferr
		}
		return cl.c.grp.Apply(p, cl.node, r.cap.Object(), consistency.Linearizable, len(msg), func(o *object.Object) error {
			return o.Push(msg)
		})
	})
}

// Pop dequeues a message from a FIFO object, blocking (with polling) until
// one is available. Pop deliberately bypasses QoS admission: a consumer
// parked on an empty queue would pin an admission slot for an unbounded
// poll, starving producers of the very tokens needed to fill the queue.
func (cl *Client) Pop(p *sim.Proc, r Ref) ([]byte, error) {
	if err := cl.check(r, capability.Read|capability.Write); err != nil {
		return nil, err
	}
	sp := cl.opSpan(p, "core.data", "pop", r.cap.Object())
	defer sp.Close(p)
	if err := cl.c.inj.OpFault(p, "core.pop"); err != nil {
		return nil, err
	}
	for {
		var msg []byte
		err := cl.c.grp.Apply(p, cl.node, r.cap.Object(), consistency.Linearizable, 0, func(o *object.Object) error {
			m, perr := o.Pop()
			if perr != nil {
				return perr
			}
			msg = m
			return nil
		})
		if err == nil {
			cl.c.BytesMoved += int64(len(msg))
			return msg, nil
		}
		if !errors.Is(err, object.ErrFIFOEmpty) {
			return nil, err
		}
		p.Sleep(cl.c.net.Profile().BaseRTT) // poll backoff
	}
}

// Attenuate derives a reference with narrowed rights.
func (cl *Client) Attenuate(r Ref, mask capability.Rights) (Ref, error) {
	nr, err := cl.c.caps.Attenuate(r.cap, mask)
	if err != nil {
		return Ref{}, err
	}
	return Ref{cap: nr, lvl: r.lvl}, nil
}

// Drop releases a reference; the object becomes collectable once
// unreachable.
func (cl *Client) Drop(r Ref) { cl.c.caps.Drop(r.cap) }

// Revoke invalidates every outstanding reference to the object behind r.
// Requires the Grant right (issuer-level authority).
func (cl *Client) Revoke(r Ref) error {
	if err := cl.check(r, capability.Grant); err != nil {
		return err
	}
	cl.c.caps.Revoke(r.cap.Object())
	return nil
}

// Stat returns kind, size, version and mutability without payload
// transfer.
type StatInfo struct {
	Kind       object.Kind
	Size       int64
	Version    uint64
	Mutability object.Mutability
}

// Stat fetches object metadata.
func (cl *Client) Stat(p *sim.Proc, r Ref) (StatInfo, error) {
	var info StatInfo
	if err := cl.check(r, capability.Read); err != nil {
		return info, err
	}
	g, qerr := cl.admit(p, qos.ClassData)
	if qerr != nil {
		return info, qerr
	}
	defer g.Release()
	sp := cl.opSpan(p, "core.meta", "stat", r.cap.Object())
	defer sp.Close(p)
	if e, ok := cl.c.ephemOf(r.cap.Object()); ok {
		err := cl.ephemView(p, e, 0, func(o *object.Object) error {
			info = StatInfo{Kind: o.Kind(), Size: o.Size(), Version: o.Version(), Mutability: o.Mutability()}
			return nil
		})
		return info, err
	}
	err := cl.c.do(p, "core.stat", func() error {
		if ferr := cl.c.inj.OpFault(p, "core.stat"); ferr != nil {
			return ferr
		}
		return cl.c.grp.View(p, cl.node, r.cap.Object(), consistency.Linearizable, func(o *object.Object) error {
			info = StatInfo{Kind: o.Kind(), Size: o.Size(), Version: o.Version(), Mutability: o.Mutability()}
			return nil
		})
	})
	return info, err
}

package core

import (
	"strings"

	"repro/internal/capability"
	"repro/internal/consistency"
	"repro/internal/fncache"
	"repro/internal/namespace"
	"repro/internal/object"
	"repro/internal/sim"
)

// NS is a handle on a PCSI namespace. There is no global namespace (§3.2):
// every function and client reaches state through namespace handles passed
// to it. Namespace metadata is always linearizable and served by the
// metadata primary; mutations are mirrored to all replicas.
type NS struct {
	c  *Cloud
	ns *namespace.Namespace
}

// metaOp charges the protocol cost of one metadata operation: a binary-
// framed exchange with the metadata primary plus a media touch per path
// component.
func (c *Cloud) metaOp(p *sim.Proc, from *Client, path string) {
	comps := 1 + strings.Count(strings.Trim(path, "/"), "/")
	c.net.Send(p, from.node, c.grp.Primary0Node(), 64+len(path))
	for i := 0; i < comps; i++ {
		p.Sleep(c.opts.Media.ReadLatency)
	}
	c.net.Send(p, c.grp.Primary0Node(), from.node, 128)
}

// NewNamespace creates a fresh namespace rooted at a new directory and
// returns the handle plus a reference to the root.
func (cl *Client) NewNamespace(p *sim.Proc) (*NS, Ref, error) {
	c := cl.c
	id, err := c.grp.Create(p, cl.node, object.Directory)
	if err != nil {
		return nil, Ref{}, err
	}
	ns, err := namespace.New(c.grp.Primary0Store(), id)
	if err != nil {
		return nil, Ref{}, err
	}
	c.nsRoots[id] = struct{}{}
	ref := Ref{cap: c.caps.Mint(id, capability.All), lvl: consistency.Linearizable}
	return &NS{c: c, ns: ns}, ref, nil
}

// Union returns a new namespace that layers a fresh writable directory
// over ns (Docker-style layering, §3.2).
func (cl *Client) Union(p *sim.Proc, lower *NS) (*NS, Ref, error) {
	c := cl.c
	id, err := c.grp.Create(p, cl.node, object.Directory)
	if err != nil {
		return nil, Ref{}, err
	}
	u, err := namespace.NewUnion(c.grp.Primary0Store(), id, lower.ns)
	if err != nil {
		return nil, Ref{}, err
	}
	c.nsRoots[id] = struct{}{}
	ref := Ref{cap: c.caps.Mint(id, capability.All), lvl: consistency.Linearizable}
	return &NS{c: c, ns: u}, ref, nil
}

// Freeze returns a read-only view of the namespace (for sharing with
// less-trusted functions).
func (n *NS) Freeze() *NS { return &NS{c: n.c, ns: n.ns.Freeze()} }

// Layers reports the union stack depth.
func (n *NS) Layers() int { return n.ns.Layers() }

// Root returns the top layer's root directory ID.
func (n *NS) Root() object.ID { return n.ns.Root() }

// DropRoot unregisters the namespace from the GC root set; its objects
// become collectable once no references remain.
func (n *NS) DropRoot() { delete(n.c.nsRoots, n.ns.Root()) }

// mirrorPath mirrors every directory along path (and the target object if
// it resolves) to all replicas, keeping metadata replicated after a
// mutation on the primary.
func (n *NS) mirrorPath(p *sim.Proc, path string) error {
	ids := []object.ID{n.ns.Root()}
	trimmed := strings.Trim(path, "/")
	if trimmed != "" {
		parts := strings.Split(trimmed, "/")
		for i := range parts {
			prefix := strings.Join(parts[:i+1], "/")
			if id, err := n.ns.Resolve(prefix); err == nil {
				ids = append(ids, id)
			}
		}
	}
	if fc := n.c.fncache; fc != nil {
		// Mirror bypasses the lease write path, and a copy-up target can be
		// a Regular object some node leased: invalidate before the state
		// replicates so no cached entry outlives the mirrored content.
		keys := make([]fncache.Key, len(ids))
		for i, id := range ids {
			keys[i] = fncache.Key(id)
		}
		fc.Invalidate(keys...)
	}
	return n.c.grp.Mirror(p, ids...)
}

// CreateAt creates an object at path in the namespace and returns a
// full-rights reference.
func (n *NS) CreateAt(p *sim.Proc, cl *Client, path string, kind object.Kind, opts ...CreateOpt) (Ref, error) {
	params := createParams{lvl: consistency.Linearizable, mut: object.Mutable}
	for _, o := range opts {
		o(&params)
	}
	n.c.metaOp(p, cl, path)
	o, err := n.ns.Create(path, kind)
	if err != nil {
		return Ref{}, err
	}
	if params.mut != object.Mutable {
		if err := o.SetMutability(params.mut); err != nil {
			return Ref{}, err
		}
	}
	if err := n.mirrorPath(p, path); err != nil {
		return Ref{}, err
	}
	return Ref{cap: n.c.caps.Mint(o.ID(), capability.All), lvl: params.lvl}, nil
}

// Open resolves path and returns a reference with the requested rights.
// The capability model means this is the only authorisation point: data
// operations through the returned reference need no further auth.
func (n *NS) Open(p *sim.Proc, cl *Client, path string, rights capability.Rights) (Ref, error) {
	n.c.metaOp(p, cl, path)
	var id object.ID
	var err error
	if rights&(capability.Write|capability.Append) != 0 && n.ns.Layers() > 1 {
		// Writing through a union triggers copy-up.
		o, werr := n.ns.OpenForWrite(path)
		if werr != nil {
			return Ref{}, werr
		}
		id = o.ID()
		if err := n.mirrorPath(p, path); err != nil {
			return Ref{}, err
		}
	} else {
		id, err = n.ns.Resolve(path)
		if err != nil {
			return Ref{}, err
		}
	}
	return Ref{cap: n.c.caps.Mint(id, rights), lvl: consistency.Linearizable}, nil
}

// Bind links an existing object (by reference) at path. Ephemeral objects
// cannot be bound: namespaces only name durable, replicated state.
func (n *NS) Bind(p *sim.Proc, cl *Client, path string, r Ref) error {
	if err := cl.check(r, 0); err != nil {
		return err
	}
	if _, ok := n.c.ephemOf(r.cap.Object()); ok {
		return ErrEphemeralNS
	}
	n.c.metaOp(p, cl, path)
	if err := n.ns.Bind(path, r.cap.Object()); err != nil {
		return err
	}
	return n.mirrorPath(p, path)
}

// Remove unlinks path (recording a whiteout in union namespaces).
func (n *NS) Remove(p *sim.Proc, cl *Client, path string) error {
	n.c.metaOp(p, cl, path)
	dir := parentPath(path)
	if err := n.ns.Remove(path); err != nil {
		return err
	}
	return n.mirrorPath(p, dir)
}

// List returns merged entry names of the directory at path.
func (n *NS) List(p *sim.Proc, cl *Client, path string) ([]string, error) {
	n.c.metaOp(p, cl, path)
	return n.ns.List(path)
}

func parentPath(path string) string {
	trimmed := strings.Trim(path, "/")
	i := strings.LastIndex(trimmed, "/")
	if i < 0 {
		return ""
	}
	return trimmed[:i]
}

package core

import (
	"errors"

	"repro/internal/capability"
	"repro/internal/consistency"
	"repro/internal/object"
	"repro/internal/sim"
)

// Socket operations: Figure 2's application is fronted by a "TCP
// Connection" object — a bidirectional message pipe reached through the
// same reference mechanism as every other object. The client end is 0,
// the server (function) end is 1; a typical pattern attenuates a
// reference before handing it to the serving function.

// Socket ends.
const (
	ClientEnd = 0
	ServerEnd = 1
)

// SockSend enqueues msg from the given end toward the other.
func (cl *Client) SockSend(p *sim.Proc, r Ref, end int, msg []byte) error {
	if err := cl.check(r, capability.Write); err != nil {
		return err
	}
	if e, ok := cl.c.ephemOf(r.cap.Object()); ok {
		return cl.ephemMutate(p, e, len(msg), func(o *object.Object) error {
			return o.SockSend(end, msg)
		})
	}
	cl.c.BytesMoved += int64(len(msg))
	return cl.c.grp.Apply(p, cl.node, r.cap.Object(), consistency.Linearizable, len(msg), func(o *object.Object) error {
		return o.SockSend(end, msg)
	})
}

// SockRecv blocks (polling at network cadence) until a message arrives at
// the given end, the socket closes, or the poll budget runs out.
func (cl *Client) SockRecv(p *sim.Proc, r Ref, end int) ([]byte, error) {
	if err := cl.check(r, capability.Read|capability.Write); err != nil {
		return nil, err
	}
	const maxPolls = 100000
	for i := 0; i < maxPolls; i++ {
		var msg []byte
		op := func(o *object.Object) error {
			m, rerr := o.SockRecv(end)
			if rerr != nil {
				return rerr
			}
			msg = m
			return nil
		}
		var err error
		if e, ok := cl.c.ephemOf(r.cap.Object()); ok {
			err = cl.ephemMutate(p, e, 0, op)
		} else {
			err = cl.c.grp.Apply(p, cl.node, r.cap.Object(), consistency.Linearizable, 0, op)
		}
		if err == nil {
			cl.c.BytesMoved += int64(len(msg))
			return msg, nil
		}
		if !errors.Is(err, object.ErrSockEmpty) {
			return nil, err
		}
		p.Sleep(cl.c.net.Profile().BaseRTT)
	}
	return nil, errors.New("core: socket receive poll budget exhausted")
}

// SockClose closes the connection.
func (cl *Client) SockClose(p *sim.Proc, r Ref) error {
	if err := cl.check(r, capability.Write); err != nil {
		return err
	}
	if e, ok := cl.c.ephemOf(r.cap.Object()); ok {
		return cl.ephemMutate(p, e, 0, func(o *object.Object) error { return o.SockClose() })
	}
	return cl.c.grp.Apply(p, cl.node, r.cap.Object(), consistency.Linearizable, 0, func(o *object.Object) error {
		return o.SockClose()
	})
}

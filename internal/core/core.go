// Package core implements the paper's contribution: the Portable Cloud
// System Interface (PCSI), a unified interface to cloud state and
// computation (§3).
//
// A Cloud wires together every substrate — the simulated datacenter
// network and cluster, the replicated object store with the two-entry
// consistency menu, capability references, per-function namespaces with
// union layering, the autoscaling function runtime, task graphs, and
// reachability GC — behind one small set of verbs. Clients are bound to an
// origin node, so every operation pays realistic (simulated) network,
// media, and protocol costs.
//
// The deliberate contrasts with the baselines:
//
//   - Access is by reference (capability), not by re-authenticated name:
//     rights are checked locally at the API boundary once per operation
//     instead of per-request credential validation on a remote front door.
//   - The protocol is stateful and binary-framed: no per-call connection
//     setup, HTTP parsing, or JSON marshaling (cf. internal/restbase).
//   - Consistency and mutability are explicit per object.
package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/capability"
	"repro/internal/cluster"
	"repro/internal/consistency"
	"repro/internal/cost"
	"repro/internal/faas"
	"repro/internal/fault"
	"repro/internal/fncache"
	"repro/internal/gc"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/qos"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// PlacementPolicy selects the scheduler used for function placement.
type PlacementPolicy int

// The available policies.
const (
	PlaceNaive PlacementPolicy = iota
	PlacePacked
	PlaceColocate
	PlaceScavenge
)

// String names the policy.
func (p PlacementPolicy) String() string {
	switch p {
	case PlaceNaive:
		return "naive"
	case PlacePacked:
		return "packed"
	case PlaceColocate:
		return "colocate"
	case PlaceScavenge:
		return "scavenge"
	default:
		return "unknown"
	}
}

// Options configures a Cloud.
type Options struct {
	Seed       int64
	NetProfile simnet.Profile
	ClusterCfg cluster.Config
	// Replicas is the state replication factor (one per rack by default).
	Replicas int
	Media    media.Profile
	Policy   PlacementPolicy
	// FaaS tuning.
	IdleTimeout  sim.Duration
	EvictionProb float64
	// AntiEntropyInterval > 0 starts background gossip.
	AntiEntropyInterval sim.Duration
	// GPUMemMB sizes each GPU node's device memory.
	GPUMemMB int64
	// Retry, when set, wraps data/meta/fn operations in the policy (bound
	// to this cloud's env). Nil keeps the historical fail-immediately
	// behavior; during an active fault session the session's default
	// policy is adopted instead.
	Retry *fault.Policy
	// QoS, when set, builds an admission controller over the cluster and
	// threads it through data ops, function invocations, and task graphs.
	// Nil keeps the historical unguarded paths byte-identical.
	QoS *qos.Config
	// FnCache, when set, colocates a function cache with the executors
	// (internal/fncache): linearizable objects cache under virtual-time
	// leases with invalidate-on-write, eventual objects as lattice CRDTs
	// merged by anti-entropy. Nil keeps every hook inert and the run
	// byte-identical to a cache-free build.
	FnCache *fncache.Config
}

// DefaultOptions returns a representative mid-size deployment.
func DefaultOptions() Options {
	return Options{
		Seed:       1,
		NetProfile: simnet.DC2021,
		ClusterCfg: cluster.DefaultConfig,
		Replicas:   3,
		Media:      media.NVMe,
		Policy:     PlaceColocate,
		GPUMemMB:   16384,
	}
}

// Cloud is one PCSI deployment.
type Cloud struct {
	opts Options
	env  *sim.Env
	net  *simnet.Network
	cl   *cluster.Cluster
	grp  *consistency.Group
	rt   *faas.Runtime
	caps *capability.Registry
	col  *gc.Collector

	inj      *fault.Injector // nil outside chaos sessions
	retry    *fault.Policy   // nil = no retries
	qos      *qos.Controller // nil = no admission control
	obsPlane *obs.Plane      // nil outside obs sessions
	fncache  *fncache.Cache  // nil = no colocated caches

	fnRefs   map[string]Ref // function name -> code object ref
	fnByCode map[object.ID]string
	nsRoots  map[object.ID]struct{}
	devices  map[simnet.NodeID]*platform.Device

	// caches holds per-node copies of cache-stable object content (§3.3:
	// once frozen, "content ... may be safely cached anywhere"). A write
	// stages the data on the writer's node; freezing to IMMUTABLE promotes
	// the staged copy, after which same-node reads are served locally —
	// the mechanism behind §4.1's co-location win.
	caches map[simnet.NodeID]map[object.ID]*cacheEntry

	// ephem holds node-local, unreplicated objects (see ephemeral.go).
	ephem      map[object.ID]*ephemObj
	ephemDrops object.ID

	// reg is the unified metrics directory; the exported fields below
	// alias its entries for terse call sites.
	reg *trace.Registry

	// Meters and counters shared by experiments.
	Meter   *cost.Meter
	DataLat *metrics.Histogram
	// BytesMoved tallies payload bytes that crossed the network on data
	// operations (E4's data-movement metric).
	BytesMoved int64
	// CacheHits counts local reads served from a node cache.
	CacheHits int64
	// RetryAttempts counts retried operations (chaos diagnostics).
	RetryAttempts int64
	// GraphsStarted/GraphsFinished bracket RunGraph calls; the chaos
	// harness asserts they match (graphs complete or fail cleanly, never
	// leak mid-flight).
	GraphsStarted  int64
	GraphsFinished int64
}

type cacheEntry struct {
	data   []byte
	stable bool // frozen IMMUTABLE: safe to serve
}

// New builds a Cloud.
func New(opts Options) *Cloud {
	if opts.Replicas <= 0 {
		opts.Replicas = 3
	}
	if opts.Media.Name == "" {
		opts.Media = media.NVMe
	}
	if opts.GPUMemMB <= 0 {
		opts.GPUMemMB = 16384
	}
	env := sim.NewEnv(opts.Seed)
	trace.Of(env).SetLabel("pcsi/" + opts.Policy.String())
	net := simnet.New(env, opts.NetProfile)
	cl := cluster.New(env, net, opts.ClusterCfg)

	// Storage replicas spread across racks on dedicated storage nodes.
	var storageNodes []simnet.NodeID
	for i := 0; i < opts.Replicas; i++ {
		rack := i % maxInt(opts.ClusterCfg.Racks, 1)
		storageNodes = append(storageNodes, net.AddNode(rack))
	}
	grp := consistency.NewGroup(env, net, storageNodes, opts.Media)

	c := &Cloud{
		opts:    opts,
		env:     env,
		net:     net,
		cl:      cl,
		grp:     grp,
		caps:    capability.NewRegistry(),
		fnRefs:  make(map[string]Ref),
		nsRoots: make(map[object.ID]struct{}),
		devices: make(map[simnet.NodeID]*platform.Device),
		caches:  make(map[simnet.NodeID]map[object.ID]*cacheEntry),
		reg:     trace.NewRegistry(),
		Meter:   cost.NewMeter("pcsi"),
		DataLat: metrics.NewHistogram("pcsi_data_ops"),
	}
	c.reg.Register(c.DataLat)

	// Telemetry plane (optional): an active obs session samples this
	// cloud's registry on its own virtual clock. No session ⇒ nil plane ⇒
	// every hook below is an inert nil check and the run stays
	// byte-identical to an unobserved one.
	c.obsPlane = obs.ActiveSession().Attach(env, c.reg, "pcsi/"+opts.Policy.String())

	// Colocated function caches (optional): lease coherence for
	// linearizable objects, lattice merges for eventual ones. The merger
	// upgrade to anti-entropy only installs alongside the cache, so
	// cache-free deployments keep last-writer-wins byte-identically.
	if opts.FnCache != nil {
		c.fncache = fncache.New(env, *opts.FnCache, c.reg)
		grp.SetMerger(fncache.MergePayload)
	}

	var plc faas.Placer
	switch opts.Policy {
	case PlaceNaive:
		plc = scheduler.Naive{C: cl}
	case PlacePacked:
		plc = scheduler.Packed{C: cl}
	case PlaceScavenge:
		plc = scheduler.Scavenge{C: cl, Fallback: scheduler.Packed{C: cl}}
	default:
		plc = scheduler.GPUAware{C: cl, Inner: scheduler.Colocate{C: cl}}
	}
	// Admission control (optional): the controller derives concurrency
	// limits from this cluster and exports per-class queue metrics into
	// the cloud's registry. Nil config ⇒ nil controller ⇒ every Admit is
	// an inlined no-op and the run is byte-identical to a pre-QoS build.
	if opts.QoS != nil {
		c.qos = qos.New(env, cl, *opts.QoS)
		c.instrumentQoS()
	}

	c.rt = faas.NewRuntime(cl, scheduler.Traced{Env: env, Inner: plc}, faas.Config{
		IdleTimeout:  opts.IdleTimeout,
		CodeStore:    grp.Primary0Node(),
		EvictionProb: opts.EvictionProb,
		Metrics:      c.reg,
		QoS:          c.qos,
		FnCache:      c.fncache,
	})

	// Fault-injection wiring. Only a non-idle active session yields an
	// injector; otherwise all of this is inert and the run stays
	// byte-identical to a fault-free one.
	if inj := fault.Attach(env, net, cl); inj != nil {
		c.inj = inj
		c.rt.SetFailFast(true)
		inj.Observe(func(n fault.Notice) {
			trace.Of(env).Instant("fault", "fault", n.Kind, trace.Str("detail", n.Detail))
			c.obsPlane.Record("fault", n.Kind, n.Detail)
		})
		inj.OnNodeDown(func(id simnet.NodeID, down bool) {
			if down {
				c.rt.FailNode(id)
			}
		})
		if opts.Retry == nil {
			opts.Retry = fault.ActiveSession().Spec().Retry
		}
	}
	if opts.Retry != nil {
		c.retry = opts.Retry.Bind(env)
		if c.retry.Retryable == nil {
			c.retry.Retryable = DefaultRetryable
		}
		if c.retry.OnAttempt == nil {
			c.retry.OnAttempt = func(op string, attempt int, err error, delay sim.Duration) {
				c.RetryAttempts++
				c.inj.Note("retry.attempt")
				c.obsPlane.Record("retry", op, err.Error())
				trace.Of(env).Instant("fault", "retry", op,
					trace.Int("attempt", int64(attempt)),
					trace.Str("err", err.Error()), trace.Str("delay", delay.String()))
			}
		}
	}
	if s := fault.ActiveSession(); s != nil {
		s.AddCheck("pcsi/"+opts.Policy.String(), c.chaosInvariants)
	}

	c.col = gc.New(grp.Primary0Store())
	c.col.AddRoots(c.caps)
	c.col.AddRoots(gc.RootsFunc(c.namespaceRoots))
	c.col.AddRoots(gc.RootsFunc(c.functionRoots))

	for _, n := range cl.Nodes() {
		if n.HasGPU() {
			c.devices[n.ID] = platform.NewDevice(opts.GPUMemMB)
		}
	}
	if opts.AntiEntropyInterval > 0 {
		grp.StartAntiEntropy(opts.AntiEntropyInterval)
	}
	return c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// instrumentQoS registers per-class queue-depth/in-flight gauges, a
// queue-delay histogram, and admit/shed counters in the cloud's metrics
// registry and hands them to the controller. metrics.Gauge, Histogram,
// and Counter satisfy the qos metric interfaces structurally — qos itself
// never imports internal/metrics.
func (c *Cloud) instrumentQoS() {
	for _, class := range []qos.Class{qos.ClassData, qos.ClassInvoke, qos.ClassTask} {
		if !c.qos.Enabled(class) {
			continue
		}
		depth := metrics.NewGauge("qos_" + class.String() + "_queue_depth")
		inflight := metrics.NewGauge("qos_" + class.String() + "_inflight")
		delay := metrics.NewHistogram("qos_" + class.String() + "_queue_delay")
		admitted := metrics.NewCounter("qos_" + class.String() + "_admitted")
		shed := metrics.NewCounter("qos_" + class.String() + "_shed")
		c.reg.Register(depth)
		c.reg.Register(inflight)
		c.reg.Register(delay)
		c.reg.Register(admitted)
		c.reg.Register(shed)
		// Per-tenant accounting: counters created lazily at first sight of
		// a tenant, cached so the admission hot path pays one map lookup.
		// The name concatenation runs once per (class, tenant).
		prefix := "qos_" + class.String() + "_tenant_"
		qlabel := "qos_" + class.String()
		admitByTenant := make(map[string]*metrics.Counter)
		shedByTenant := make(map[string]*metrics.Counter)
		c.qos.Instrument(class, qos.Instruments{
			QueueDepth: depth,
			InFlight:   inflight,
			QueueDelay: delay,
			Admitted:   admitted,
			Shed:       shed,
			OnAdmit: func(now sim.Time, tenant string, delay sim.Duration) {
				m := admitByTenant[tenant]
				if m == nil {
					m = metrics.NewCounter(prefix + tenant + "_admitted")
					c.reg.Register(m)
					admitByTenant[tenant] = m
				}
				m.Inc()
			},
			OnShed: func(now sim.Time, tenant, reason string) {
				m := shedByTenant[tenant]
				if m == nil {
					m = metrics.NewCounter(prefix + tenant + "_shed")
					c.reg.Register(m)
					shedByTenant[tenant] = m
				}
				m.Inc()
				c.obsPlane.Record("shed", qlabel, tenant+" "+reason)
			},
		})
	}
}

// QoS returns the admission controller, or nil when the deployment runs
// without one.
func (c *Cloud) QoS() *qos.Controller { return c.qos }

// Obs returns the cloud's telemetry plane, or nil when no obs session was
// active at construction.
func (c *Cloud) Obs() *obs.Plane { return c.obsPlane }

// FnCache returns the colocated function cache, or nil when the deployment
// runs without one.
func (c *Cloud) FnCache() *fncache.Cache { return c.fncache }

// Env returns the simulation environment.
func (c *Cloud) Env() *sim.Env { return c.env }

// Net returns the datacenter network.
func (c *Cloud) Net() *simnet.Network { return c.net }

// Cluster returns the compute cluster.
func (c *Cloud) Cluster() *cluster.Cluster { return c.cl }

// Runtime returns the function runtime.
func (c *Cloud) Runtime() *faas.Runtime { return c.rt }

// Group returns the replicated state layer.
func (c *Cloud) Group() *consistency.Group { return c.grp }

// Caps returns the capability registry (tests/experiments).
func (c *Cloud) Caps() *capability.Registry { return c.caps }

// Metrics returns the unified registry holding every metric of this
// deployment — the Cloud's own histograms and the runtime's counters.
func (c *Cloud) Metrics() *trace.Registry { return c.reg }

// Device returns the GPU device memory attached to a node, or nil.
func (c *Cloud) Device(n simnet.NodeID) *platform.Device { return c.devices[n] }

// Ref is a PCSI reference: the sole way to reach objects (§3.2).
type Ref struct {
	cap capability.Ref
	// lvl is the object's default consistency level, captured at open.
	lvl consistency.Level
}

// Valid reports whether the reference was issued by a Cloud.
func (r Ref) Valid() bool { return r.cap.Valid() }

// Rights returns the reference's rights.
func (r Ref) Rights() capability.Rights { return r.cap.Rights() }

// ObjectID exposes the referenced object's ID (diagnostics).
func (r Ref) ObjectID() object.ID { return r.cap.Object() }

// Level returns the reference's default consistency level.
func (r Ref) Level() consistency.Level { return r.lvl }

// String renders the reference.
func (r Ref) String() string { return fmt.Sprintf("pcsi-%v[%v]", r.cap.Object(), r.cap.Rights()) }

// Errors returned by the PCSI API. Both are answers, not conditions:
// retrying an invalid reference or an unknown function re-asks a question
// the system already answered, so they classify as fatal.
var (
	ErrInvalidRef = fault.Fatal("core: invalid reference")
	ErrNoSuchFn   = fault.Fatal("core: unknown function")
)

// namespaceRoots contributes registered namespace roots to the GC, in
// sorted order so the mark phase's visit order is run-independent.
func (c *Cloud) namespaceRoots() []object.ID {
	out := make([]object.ID, 0, len(c.nsRoots))
	for id := range c.nsRoots {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// functionRoots keeps registered function code objects alive, in sorted
// order for the same reason as namespaceRoots.
func (c *Cloud) functionRoots() []object.ID {
	out := make([]object.ID, 0, len(c.fnRefs))
	for _, r := range c.fnRefs {
		out = append(out, r.cap.Object())
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// cacheFor returns (creating) a node's local cache.
func (c *Cloud) cacheFor(n simnet.NodeID) map[object.ID]*cacheEntry {
	m, ok := c.caches[n]
	if !ok {
		m = make(map[object.ID]*cacheEntry)
		c.caches[n] = m
	}
	return m
}

// Collect runs a GC cycle over the state layer, propagating sweeps to all
// replicas and node caches, and returns the number of objects reclaimed.
func (c *Cloud) Collect() int {
	n := c.col.Collect()
	c.grp.Delete(c.col.LastSweptIDs...)
	for _, cache := range c.caches {
		for _, id := range c.col.LastSweptIDs {
			delete(cache, id)
		}
	}
	if c.fncache != nil {
		keys := make([]fncache.Key, len(c.col.LastSweptIDs))
		for i, id := range c.col.LastSweptIDs {
			keys[i] = fncache.Key(id)
		}
		c.fncache.Invalidate(keys...)
	}
	return n + c.sweepEphemeral()
}

// Collector exposes GC statistics.
func (c *Cloud) Collector() *gc.Collector { return c.col }

// do runs op through the cloud's retry policy; with no policy bound it
// calls fn exactly once with zero overhead.
func (c *Cloud) do(p *sim.Proc, op string, fn func() error) error {
	return c.retry.Do(p, op, fn)
}

// DefaultRetryable extends the substrate classifier with PCSI-level
// transients: consistency unavailability and placement pressure are worth
// retrying; not-found, invalid references, and capability denials are not.
func DefaultRetryable(err error) bool {
	return fault.Retryable(err) ||
		errors.Is(err, consistency.ErrUnavailable) ||
		errors.Is(err, faas.ErrNoPlacement)
}

func (c *Cloud) ephemContains(id object.ID) bool {
	_, ok := c.ephem[id]
	return ok
}

// chaosInvariants audits end-of-run state for the chaos harness. Runs
// after the harness heals partitions; SyncAll forces quiescent
// anti-entropy so eventual convergence is checked, not awaited.
func (c *Cloud) chaosInvariants() []string {
	var v []string
	if n := c.grp.LinStaleReads; n > 0 {
		v = append(v, fmt.Sprintf("%d stale linearizable reads", n))
	}
	if c.fncache != nil {
		if n := c.fncache.StaleLeaseServes.Value(); n > 0 {
			v = append(v, fmt.Sprintf("%d linearizable reads served from stale lease entries", n))
		}
		v = append(v, c.LatticeAudit()...)
	}
	c.grp.SyncAll()
	if ids := c.grp.Divergent(); len(ids) > 0 {
		v = append(v, fmt.Sprintf("%d objects divergent across replicas after heal+sync", len(ids)))
	}
	if c.GraphsStarted != c.GraphsFinished {
		v = append(v, fmt.Sprintf("task graphs leaked: %d started, %d finished", c.GraphsStarted, c.GraphsFinished))
	}
	st := c.grp.Primary0Store()
	for _, id := range c.caps.Roots() {
		if !st.Contains(id) && !c.ephemContains(id) {
			v = append(v, fmt.Sprintf("live capability refers to missing object %v", id))
		}
	}
	return v
}

package core

import (
	"fmt"
	"time"

	"repro/internal/capability"
	"repro/internal/cluster"
	"repro/internal/consistency"
	"repro/internal/faas"
	"repro/internal/object"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/taskgraph"
	"repro/internal/trace"
)

// FnCtx is the context a PCSI function body receives: explicit data-layer
// inputs and outputs (by reference), a small by-value body, and a client
// homed on the node the instance runs on — so the function's state access
// pays exactly the costs of its placement (§4.1).
type FnCtx struct {
	Inv     *faas.Invocation
	Client  *Client
	Inputs  []Ref
	Outputs []Ref
	Body    []byte
	cloud   *Cloud
}

// Proc returns the simulation process the function runs in.
func (fc *FnCtx) Proc() *sim.Proc { return fc.Inv.Proc() }

// Cloud returns the deployment.
func (fc *FnCtx) Cloud() *Cloud { return fc.cloud }

// Device returns the GPU memory of the node the function runs on, or nil.
func (fc *FnCtx) Device() *platform.Device {
	return fc.cloud.Device(fc.Inv.Node())
}

// HandlerFunc is a PCSI function body.
type HandlerFunc func(fc *FnCtx) error

// FnConfig describes a function to register.
type FnConfig struct {
	Name string
	Kind platform.Kind
	// Res is the per-instance resource demand beyond the platform
	// baseline (set GPUs for accelerator functions).
	Res cluster.Resources
	// CodeSize is the size of the code object stored in the data layer.
	CodeSize int64
	// Concurrency is max in-flight invocations per instance (default 1).
	Concurrency int
	// Variants optionally provide alternative implementations the runtime
	// optimizer chooses among per invocation (§3.1).
	Variants []faas.Variant
	// TypicalExec is the optimizer's baseline compute-time estimate.
	TypicalExec time.Duration
	Handler     HandlerFunc
}

// invokeArgs travels through faas.Invocation.Ctx to the adapter.
type invokeArgs struct {
	inputs  []Ref
	outputs []Ref
}

// RegisterFunction stores the function's code as an object in the data
// layer (functions are objects, §3.1: "users store functions themselves as
// objects in the data layer") and returns an executable reference.
func (cl *Client) RegisterFunction(p *sim.Proc, cfg FnConfig) (Ref, error) {
	c := cl.c
	if cfg.CodeSize <= 0 {
		cfg.CodeSize = 1 << 20
	}
	rsp := trace.Of(c.env).Start(p, "core.fn", "register", trace.Str("fn", cfg.Name))
	defer rsp.Close(p)
	codeRef, err := cl.Create(p, object.Regular)
	if err != nil {
		return Ref{}, err
	}
	if err := cl.Put(p, codeRef, make([]byte, minInt64(cfg.CodeSize, 1<<16))); err != nil {
		return Ref{}, err
	}
	// Code is immutable once published — drop-in replacement means
	// registering a new version, never mutating in place.
	if err := cl.Freeze(p, codeRef, object.Immutable); err != nil {
		return Ref{}, err
	}
	handler := cfg.Handler
	fn := &faas.Function{
		Name:        cfg.Name,
		Kind:        cfg.Kind,
		Res:         cfg.Res,
		CodeSize:    cfg.CodeSize,
		Concurrency: cfg.Concurrency,
		Variants:    cfg.Variants,
		TypicalExec: cfg.TypicalExec,
		Handler: func(inv *faas.Invocation) error {
			fc := &FnCtx{
				Inv:    inv,
				Client: c.ClientAt(inv.Node()),
				Body:   inv.Body,
				cloud:  c,
			}
			if args, ok := inv.Ctx.(*invokeArgs); ok && args != nil {
				fc.Inputs = args.inputs
				fc.Outputs = args.outputs
			}
			return handler(fc)
		},
	}
	if err := c.rt.Register(fn); err != nil {
		return Ref{}, err
	}
	ref, err := cl.Attenuate(codeRef, capability.Read|capability.Exec|capability.Grant)
	if err != nil {
		return Ref{}, err
	}
	c.fnRefs[cfg.Name] = ref
	if c.fnByCode == nil {
		c.fnByCode = make(map[object.ID]string)
	}
	c.fnByCode[codeRef.cap.Object()] = cfg.Name
	return ref, nil
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// InvokeArgs parameterise one invocation.
type InvokeArgs struct {
	Inputs  []Ref
	Outputs []Ref
	Body    []byte
	// Goal selects among the function's variants (§3.1's optimizer).
	Goal  faas.Goal
	Hints faas.PlacementHints
}

// Invoke calls the function behind fnRef, blocking until it returns.
// Requires the Exec right — functions are invoked through references like
// any other object.
func (cl *Client) Invoke(p *sim.Proc, fnRef Ref, args InvokeArgs) (*faas.Instance, error) {
	if err := cl.check(fnRef, capability.Exec); err != nil {
		return nil, err
	}
	name, ok := cl.c.fnByCode[fnRef.cap.Object()]
	if !ok {
		return nil, ErrNoSuchFn
	}
	sp := trace.Of(cl.c.env).Start(p, "core.fn", "invoke", trace.Str("fn", name))
	defer sp.Close(p)
	hints := args.Hints
	if args.Goal != faas.GoalDefault {
		hints.Goal = args.Goal
	}
	if hints.Tenant == "" {
		hints.Tenant = cl.tenant
	}
	var inst *faas.Instance
	err := cl.c.do(p, "core.invoke:"+name, func() error {
		if ferr := cl.c.inj.OpFault(p, "core.invoke"); ferr != nil {
			return ferr
		}
		// The invocation request travels to the runtime's control plane
		// (and again on each retry — the request is re-sent).
		cl.c.net.Send(p, cl.node, cl.c.grp.Primary0Node(), 128+len(args.Body))
		var ierr error
		inst, ierr = cl.c.rt.Invoke(p, name, args.Body, hints, &invokeArgs{inputs: args.Inputs, outputs: args.Outputs})
		return ierr
	})
	return inst, err
}

// GraphTask is one node of a PCSI task graph.
type GraphTask struct {
	Name string
	Fn   Ref
	Body []byte
	// After lists dependencies by task name.
	After []string
	// Colocate requests placement next to the first dependency (§4.1).
	Colocate bool
	// PreferGPUNode places this task on a GPU node in anticipation of an
	// accelerator-bound downstream stage (§4.1).
	PreferGPUNode bool
	Inputs        []Ref
	Outputs       []Ref
}

// RunGraph executes a task graph and returns per-task results. Tasks whose
// dependencies are satisfied run concurrently (pipelining).
func (cl *Client) RunGraph(p *sim.Proc, tasks []GraphTask) (map[string]*taskgraph.Result, error) {
	g := taskgraph.NewGraph()
	argsByName := make(map[string]*invokeArgs, len(tasks))
	for i := range tasks {
		t := &tasks[i]
		if err := cl.check(t.Fn, capability.Exec); err != nil {
			return nil, fmt.Errorf("core: task %q: %w", t.Name, err)
		}
		name, ok := cl.c.fnByCode[t.Fn.cap.Object()]
		if !ok {
			return nil, fmt.Errorf("core: task %q: %w", t.Name, ErrNoSuchFn)
		}
		argsByName[t.Name] = &invokeArgs{inputs: t.Inputs, outputs: t.Outputs}
		if err := g.Add(&taskgraph.Task{
			Name:          t.Name,
			Fn:            name,
			Body:          t.Body,
			After:         t.After,
			Colocate:      t.Colocate,
			PreferGPUNode: t.PreferGPUNode,
		}); err != nil {
			return nil, err
		}
	}
	ex := taskgraph.NewExecutor(cl.c.rt)
	ex.MakeCtx = func(t *taskgraph.Task) any { return argsByName[t.Name] }
	ex.Retry = cl.c.retry
	ex.QoS = cl.c.qos
	ex.Tenant = cl.tenant
	// Bracketing counters: Execute returns on both success and clean
	// failure, so a mismatch means a graph leaked mid-flight (chaos
	// invariant).
	cl.c.GraphsStarted++
	res, err := ex.Execute(p, g)
	cl.c.GraphsFinished++
	return res, err
}

// ConsistencyOf reports the reference's default level (diagnostics).
func (cl *Client) ConsistencyOf(r Ref) consistency.Level { return r.lvl }

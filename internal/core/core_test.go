package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/capability"
	"repro/internal/cluster"
	"repro/internal/consistency"
	"repro/internal/faas"
	"repro/internal/media"
	"repro/internal/object"
	"repro/internal/platform"
	"repro/internal/sim"
)

func testCloud(seed int64) *Cloud {
	opts := DefaultOptions()
	opts.Seed = seed
	opts.ClusterCfg = cluster.Config{
		Racks: 2, NodesPerRack: 4,
		NodeCap:         cluster.Resources{MilliCPU: 16000, MemMB: 32768},
		GPUNodesPerRack: 1, GPUsPerGPUNode: 2,
	}
	opts.Media = media.DRAM
	return New(opts)
}

// run drives fn inside a simulation process and runs the clock dry.
func run(t *testing.T, c *Cloud, fn func(p *sim.Proc)) {
	t.Helper()
	c.Env().Go("test", fn)
	c.Env().Run()
}

func TestCreatePutGet(t *testing.T) {
	c := testCloud(1)
	client := c.NewClient(0)
	run(t, c, func(p *sim.Proc) {
		ref, err := client.Create(p, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		if err := client.Put(p, ref, []byte("hello pcsi")); err != nil {
			t.Error(err)
			return
		}
		got, err := client.Get(p, ref)
		if err != nil || string(got) != "hello pcsi" {
			t.Errorf("Get = %q, %v", got, err)
		}
		info, err := client.Stat(p, ref)
		if err != nil || info.Size != 10 || info.Kind != object.Regular {
			t.Errorf("Stat = %+v, %v", info, err)
		}
	})
}

func TestCapabilityGatesOperations(t *testing.T) {
	c := testCloud(2)
	client := c.NewClient(0)
	run(t, c, func(p *sim.Proc) {
		ref, err := client.Create(p, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		ro, err := client.Attenuate(ref, capability.Read)
		if err != nil {
			t.Error(err)
			return
		}
		if err := client.Put(p, ro, []byte("x")); err == nil {
			t.Error("write through read-only reference succeeded")
		}
		if _, err := client.Get(p, ro); err != nil {
			t.Errorf("read through read-only reference failed: %v", err)
		}
		// Zero ref is rejected.
		if _, err := client.Get(p, Ref{}); !errors.Is(err, ErrInvalidRef) {
			t.Errorf("zero ref err = %v", err)
		}
	})
}

func TestRevocation(t *testing.T) {
	c := testCloud(3)
	client := c.NewClient(0)
	run(t, c, func(p *sim.Proc) {
		ref, err := client.Create(p, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		shared, err := client.Attenuate(ref, capability.Read)
		if err != nil {
			t.Error(err)
			return
		}
		if err := client.Revoke(ref); err != nil {
			t.Error(err)
			return
		}
		if _, err := client.Get(p, shared); err == nil {
			t.Error("revoked reference still works")
		}
	})
}

func TestMutabilityThroughAPI(t *testing.T) {
	c := testCloud(4)
	client := c.NewClient(0)
	run(t, c, func(p *sim.Proc) {
		ref, err := client.Create(p, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		if err := client.Put(p, ref, []byte("v1")); err != nil {
			t.Error(err)
			return
		}
		if err := client.Freeze(p, ref, object.Immutable); err != nil {
			t.Error(err)
			return
		}
		if err := client.Put(p, ref, []byte("v2")); !errors.Is(err, object.ErrImmutable) {
			t.Errorf("write to frozen object err = %v", err)
		}
		m, err := client.Mutability(p, ref)
		if err != nil || m != object.Immutable {
			t.Errorf("Mutability = %v, %v", m, err)
		}
	})
}

func TestConsistencyMenuPerObject(t *testing.T) {
	c := testCloud(5)
	client := c.NewClient(0)
	run(t, c, func(p *sim.Proc) {
		strong, err := client.Create(p, object.Regular, WithConsistency(consistency.Linearizable))
		if err != nil {
			t.Error(err)
			return
		}
		weak, err := client.Create(p, object.Regular, WithConsistency(consistency.Eventual))
		if err != nil {
			t.Error(err)
			return
		}
		if strong.Level() != consistency.Linearizable || weak.Level() != consistency.Eventual {
			t.Error("levels not captured on references")
		}
		// Writes at both levels succeed and strong read-own-write holds.
		if err := client.Put(p, strong, []byte("s")); err != nil {
			t.Error(err)
		}
		if err := client.Put(p, weak, []byte("w")); err != nil {
			t.Error(err)
		}
		got, err := client.Get(p, strong)
		if err != nil || string(got) != "s" {
			t.Errorf("strong read = %q, %v", got, err)
		}
	})
}

func TestNamespaceCreateOpenAcrossClients(t *testing.T) {
	c := testCloud(6)
	alice := c.NewClient(0)
	bob := c.NewClient(1)
	run(t, c, func(p *sim.Proc) {
		ns, _, err := alice.NewNamespace(p)
		if err != nil {
			t.Error(err)
			return
		}
		ref, err := ns.CreateAt(p, alice, "data/models/resnet", object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		if err := alice.Put(p, ref, []byte("weights")); err != nil {
			t.Error(err)
			return
		}
		// Bob opens by path with read rights only.
		bobRef, err := ns.Open(p, bob, "data/models/resnet", capability.Read)
		if err != nil {
			t.Error(err)
			return
		}
		got, err := bob.Get(p, bobRef)
		if err != nil || string(got) != "weights" {
			t.Errorf("bob read = %q, %v", got, err)
		}
		if err := bob.Put(p, bobRef, []byte("evil")); err == nil {
			t.Error("bob wrote through a read-only path open")
		}
	})
}

func TestUnionNamespaceLayering(t *testing.T) {
	c := testCloud(7)
	client := c.NewClient(0)
	run(t, c, func(p *sim.Proc) {
		base, _, err := client.NewNamespace(p)
		if err != nil {
			t.Error(err)
			return
		}
		cfgRef, err := base.CreateAt(p, client, "etc/conf", object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		if err := client.Put(p, cfgRef, []byte("base")); err != nil {
			t.Error(err)
			return
		}
		upper, _, err := client.Union(p, base)
		if err != nil {
			t.Error(err)
			return
		}
		if upper.Layers() != 2 {
			t.Errorf("Layers = %d", upper.Layers())
		}
		// Write through the union: copy-up; base unchanged.
		wRef, err := upper.Open(p, client, "etc/conf", capability.Read|capability.Write)
		if err != nil {
			t.Error(err)
			return
		}
		if err := client.Put(p, wRef, []byte("override")); err != nil {
			t.Error(err)
			return
		}
		baseRef, err := base.Open(p, client, "etc/conf", capability.Read)
		if err != nil {
			t.Error(err)
			return
		}
		got, err := client.Get(p, baseRef)
		if err != nil || string(got) != "base" {
			t.Errorf("base layer = %q, %v (copy-up leaked)", got, err)
		}
		uRef, err := upper.Open(p, client, "etc/conf", capability.Read)
		if err != nil {
			t.Error(err)
			return
		}
		got, err = client.Get(p, uRef)
		if err != nil || string(got) != "override" {
			t.Errorf("union read = %q, %v", got, err)
		}
	})
}

func TestFunctionInvokeWithDataLayer(t *testing.T) {
	c := testCloud(8)
	client := c.NewClient(0)
	run(t, c, func(p *sim.Proc) {
		fnRef, err := client.RegisterFunction(p, FnConfig{
			Name: "double", Kind: platform.Wasm,
			Handler: func(fc *FnCtx) error {
				in, err := fc.Client.Get(fc.Proc(), fc.Inputs[0])
				if err != nil {
					return err
				}
				return fc.Client.Put(fc.Proc(), fc.Outputs[0], append(in, in...))
			},
		})
		if err != nil {
			t.Error(err)
			return
		}
		in, err := client.Create(p, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		out, err := client.Create(p, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		if err := client.Put(p, in, []byte("ab")); err != nil {
			t.Error(err)
			return
		}
		inRO, err := client.Attenuate(in, capability.Read)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := client.Invoke(p, fnRef, InvokeArgs{Inputs: []Ref{inRO}, Outputs: []Ref{out}}); err != nil {
			t.Error(err)
			return
		}
		got, err := client.Get(p, out)
		if err != nil || !bytes.Equal(got, []byte("abab")) {
			t.Errorf("function output = %q, %v", got, err)
		}
	})
}

func TestInvokeRequiresExecRight(t *testing.T) {
	c := testCloud(9)
	client := c.NewClient(0)
	run(t, c, func(p *sim.Proc) {
		fnRef, err := client.RegisterFunction(p, FnConfig{
			Name: "noop", Kind: platform.Wasm,
			Handler: func(*FnCtx) error { return nil },
		})
		if err != nil {
			t.Error(err)
			return
		}
		ro, err := client.Attenuate(fnRef, capability.Read)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := client.Invoke(p, ro, InvokeArgs{}); err == nil {
			t.Error("invoke without Exec right succeeded")
		}
		// A data object is not a function.
		data, err := client.Create(p, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := client.Invoke(p, data, InvokeArgs{}); !errors.Is(err, ErrNoSuchFn) {
			t.Errorf("invoke of data object err = %v", err)
		}
	})
}

func TestRunGraphPipelines(t *testing.T) {
	c := testCloud(10)
	client := c.NewClient(0)
	run(t, c, func(p *sim.Proc) {
		mk := func(name string, d time.Duration) Ref {
			ref, err := client.RegisterFunction(p, FnConfig{
				Name: name, Kind: platform.Wasm,
				Handler: func(fc *FnCtx) error {
					fc.Proc().Sleep(d)
					return nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			return ref
		}
		a := mk("stage-a", time.Millisecond)
		b := mk("stage-b", time.Millisecond)
		results, err := client.RunGraph(p, []GraphTask{
			{Name: "a", Fn: a},
			{Name: "b", Fn: b, After: []string{"a"}, Colocate: true},
		})
		if err != nil {
			t.Error(err)
			return
		}
		if results["b"].Start < results["a"].End {
			t.Error("graph order violated")
		}
		if results["a"].Instance.Node.ID != results["b"].Instance.Node.ID {
			t.Error("colocated tasks on different nodes under Colocate policy")
		}
	})
}

func TestGCReclaimsDroppedObjects(t *testing.T) {
	c := testCloud(11)
	client := c.NewClient(0)
	var ref Ref
	run(t, c, func(p *sim.Proc) {
		var err error
		ref, err = client.Create(p, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		if err := client.Put(p, ref, make([]byte, 4096)); err != nil {
			t.Error(err)
		}
	})
	id := ref.ObjectID()
	if n := c.Collect(); n != 0 {
		t.Fatalf("collected %d objects with live refs", n)
	}
	client.Drop(ref)
	if n := c.Collect(); n != 1 {
		t.Fatalf("collected %d after drop, want 1", n)
	}
	// Swept from every replica.
	for i, r := range c.Group().Replicas() {
		if r.St.Contains(id) {
			t.Errorf("replica %d still holds swept object", i)
		}
	}
}

func TestGCKeepsNamespaceContents(t *testing.T) {
	c := testCloud(12)
	client := c.NewClient(0)
	var ns *NS
	var rootRef Ref
	run(t, c, func(p *sim.Proc) {
		var err error
		ns, rootRef, err = client.NewNamespace(p)
		if err != nil {
			t.Error(err)
			return
		}
		ref, err := ns.CreateAt(p, client, "keep/me", object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		// Even after dropping the direct reference, the namespace keeps the
		// object alive.
		client.Drop(ref)
	})
	if n := c.Collect(); n != 0 {
		t.Fatalf("collected %d objects reachable via namespace", n)
	}
	// Dropping both the namespace registration and the root capability
	// makes the subtree garbage.
	ns.DropRoot()
	client.Drop(rootRef)
	if n := c.Collect(); n < 3 { // root dir + "keep" dir + "me" object
		t.Errorf("collected %d after root drop, want >= 3", n)
	}
}

func TestFIFOPlumbing(t *testing.T) {
	c := testCloud(13)
	client := c.NewClient(0)
	run(t, c, func(p *sim.Proc) {
		fifo, err := client.Create(p, object.FIFO)
		if err != nil {
			t.Error(err)
			return
		}
		// Producer and consumer processes.
		c.Env().Go("producer", func(pp *sim.Proc) {
			pp.Sleep(time.Millisecond)
			for i := 0; i < 3; i++ {
				if err := client.Push(pp, fifo, []byte{byte('a' + i)}); err != nil {
					t.Error(err)
				}
			}
		})
		var got []string
		for i := 0; i < 3; i++ {
			msg, err := client.Pop(p, fifo)
			if err != nil {
				t.Error(err)
				return
			}
			got = append(got, string(msg))
		}
		want := []string{"a", "b", "c"}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("fifo order = %v", got)
			}
		}
	})
}

func TestBytesMovedAccounting(t *testing.T) {
	c := testCloud(14)
	client := c.NewClient(0)
	run(t, c, func(p *sim.Proc) {
		ref, err := client.Create(p, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		before := c.BytesMoved
		if err := client.Put(p, ref, make([]byte, 1000)); err != nil {
			t.Error(err)
			return
		}
		if c.BytesMoved-before != 1000 {
			t.Errorf("BytesMoved delta = %d, want 1000", c.BytesMoved-before)
		}
	})
}

func TestReadAtPartial(t *testing.T) {
	c := testCloud(15)
	client := c.NewClient(0)
	run(t, c, func(p *sim.Proc) {
		ref, err := client.Create(p, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		if err := client.Put(p, ref, []byte("0123456789")); err != nil {
			t.Error(err)
			return
		}
		got, err := client.ReadAt(p, ref, 3, 4)
		if err != nil || string(got) != "3456" {
			t.Errorf("ReadAt = %q, %v", got, err)
		}
	})
}

func TestDeviceWiring(t *testing.T) {
	c := testCloud(16)
	found := 0
	for _, n := range c.Cluster().Nodes() {
		if n.HasGPU() {
			if c.Device(n.ID) == nil {
				t.Errorf("GPU node %d has no device memory", n.ID)
			}
			found++
		} else if c.Device(n.ID) != nil {
			t.Errorf("non-GPU node %d has device memory", n.ID)
		}
	}
	if found == 0 {
		t.Fatal("no GPU nodes in test cluster")
	}
}

func TestPolicyString(t *testing.T) {
	for _, p := range []PlacementPolicy{PlaceNaive, PlacePacked, PlaceColocate, PlaceScavenge} {
		if p.String() == "unknown" {
			t.Errorf("policy %d unnamed", p)
		}
	}
}

func TestCacheStableLocalReads(t *testing.T) {
	c := testCloud(17)
	client := c.NewClient(0)
	run(t, c, func(p *sim.Proc) {
		ref, err := client.Create(p, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		if err := client.Put(p, ref, make([]byte, 4096)); err != nil {
			t.Error(err)
			return
		}
		// Not yet frozen: reads must go remote (coherence).
		if _, err := client.Get(p, ref); err != nil {
			t.Error(err)
			return
		}
		if c.CacheHits != 0 {
			t.Error("mutable object served from cache")
		}
		if err := client.Freeze(p, ref, object.Immutable); err != nil {
			t.Error(err)
			return
		}
		before := c.BytesMoved
		start := p.Now()
		if _, err := client.Get(p, ref); err != nil {
			t.Error(err)
			return
		}
		local := p.Now().Sub(start)
		if c.CacheHits != 1 {
			t.Errorf("CacheHits = %d, want 1", c.CacheHits)
		}
		if c.BytesMoved != before {
			t.Error("cached read moved bytes over the network")
		}
		if local > 50*time.Microsecond {
			t.Errorf("cached read took %v, want local-memory time", local)
		}
	})
}

func TestCachePullThroughOnRemoteNode(t *testing.T) {
	c := testCloud(18)
	writer := c.NewClient(0)
	reader := c.NewClient(1)
	run(t, c, func(p *sim.Proc) {
		ref, err := writer.Create(p, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		if err := writer.Put(p, ref, []byte("frozen-data")); err != nil {
			t.Error(err)
			return
		}
		if err := writer.Freeze(p, ref, object.Immutable); err != nil {
			t.Error(err)
			return
		}
		ro, err := writer.Attenuate(ref, capability.Read)
		if err != nil {
			t.Error(err)
			return
		}
		// First remote read pulls through; second is a local hit.
		if _, err := reader.Get(p, ro); err != nil {
			t.Error(err)
			return
		}
		hitsBefore := c.CacheHits
		got, err := reader.Get(p, ro)
		if err != nil || string(got) != "frozen-data" {
			t.Errorf("Get = %q, %v", got, err)
		}
		if c.CacheHits != hitsBefore+1 {
			t.Errorf("second read not served from cache")
		}
	})
}

func TestSocketPlumbing(t *testing.T) {
	c := testCloud(19)
	front := c.NewClient(0) // the load balancer / connection owner
	run(t, c, func(p *sim.Proc) {
		conn, err := front.Create(p, object.Socket)
		if err != nil {
			t.Error(err)
			return
		}
		// A serving function gets the server end via an attenuated ref.
		fnRef, err := front.RegisterFunction(p, FnConfig{
			Name: "http-server", Kind: platform.Wasm,
			Handler: func(fc *FnCtx) error {
				req, err := fc.Client.SockRecv(fc.Proc(), fc.Inputs[0], ServerEnd)
				if err != nil {
					return err
				}
				resp := append([]byte("HTTP/1.1 200 OK\n\n"), req...)
				return fc.Client.SockSend(fc.Proc(), fc.Inputs[0], ServerEnd, resp)
			},
		})
		if err != nil {
			t.Error(err)
			return
		}
		connRW, err := front.Attenuate(conn, capability.Read|capability.Write)
		if err != nil {
			t.Error(err)
			return
		}
		// Client writes the request, invokes the function, reads response.
		if err := front.SockSend(p, conn, ClientEnd, []byte("GET /")); err != nil {
			t.Error(err)
			return
		}
		if _, err := front.Invoke(p, fnRef, InvokeArgs{Inputs: []Ref{connRW}}); err != nil {
			t.Error(err)
			return
		}
		resp, err := front.SockRecv(p, conn, ClientEnd)
		if err != nil {
			t.Error(err)
			return
		}
		if string(resp) != "HTTP/1.1 200 OK\n\nGET /" {
			t.Errorf("response = %q", resp)
		}
		if err := front.SockClose(p, conn); err != nil {
			t.Error(err)
		}
		if err := front.SockSend(p, conn, ClientEnd, []byte("late")); !errors.Is(err, object.ErrSockClosed) {
			t.Errorf("send after close = %v", err)
		}
	})
}

func TestEphemeralSocket(t *testing.T) {
	c := testCloud(20)
	client := c.NewClient(0)
	run(t, c, func(p *sim.Proc) {
		conn, err := client.Create(p, object.Socket, WithEphemeral())
		if err != nil {
			t.Error(err)
			return
		}
		if err := client.SockSend(p, conn, ClientEnd, []byte("fast-path")); err != nil {
			t.Error(err)
			return
		}
		msg, err := client.SockRecv(p, conn, ServerEnd)
		if err != nil || string(msg) != "fast-path" {
			t.Errorf("recv = %q, %v", msg, err)
		}
	})
}

func TestVariantOptimizerThroughAPI(t *testing.T) {
	c := testCloud(21)
	client := c.NewClient(0)
	run(t, c, func(p *sim.Proc) {
		fn, err := client.RegisterFunction(p, FnConfig{
			Name: "transcode", Kind: platform.Wasm,
			TypicalExec: 200 * time.Millisecond,
			Variants: []faas.Variant{
				{Name: "wasm", Kind: platform.Wasm, Res: cluster.Resources{MilliCPU: 1000, MemMB: 256}, SpeedFactor: 1},
				{Name: "gpu", Kind: platform.GPU, Res: cluster.Resources{GPUs: 1}, SpeedFactor: 5},
			},
			Handler: func(fc *FnCtx) error {
				fc.Proc().Sleep(fc.Inv.Scale(200 * time.Millisecond))
				return nil
			},
		})
		if err != nil {
			t.Error(err)
			return
		}
		// Cost goal: cheap wasm implementation.
		inst, err := client.Invoke(p, fn, InvokeArgs{Goal: faas.GoalCost})
		if err != nil {
			t.Error(err)
			return
		}
		if inst.Variant().Name != "wasm" {
			t.Errorf("GoalCost ran %q", inst.Variant().Name)
		}
		// Same function reference, same handler — a different goal can
		// transparently use different hardware (drop-in replacement).
		if _, err := client.Invoke(p, fn, InvokeArgs{Goal: faas.GoalLatency}); err != nil {
			t.Errorf("latency-goal invoke failed: %v", err)
		}
	})
}

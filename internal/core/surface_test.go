package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/capability"
	"repro/internal/consistency"
	"repro/internal/object"
	"repro/internal/platform"
	"repro/internal/sim"
)

// Surface tests for API paths not covered by the scenario tests:
// positional reads/writes, per-op consistency overrides, namespace verbs,
// and the ephemeral object lifecycle.

func TestAppendAndWriteAt(t *testing.T) {
	c := testCloud(30)
	client := c.NewClient(0)
	run(t, c, func(p *sim.Proc) {
		log, err := client.Create(p, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		if err := client.Append(p, log, []byte("line1\n")); err != nil {
			t.Error(err)
			return
		}
		if err := client.Append(p, log, []byte("line2\n")); err != nil {
			t.Error(err)
			return
		}
		if err := client.WriteAt(p, log, []byte("LINE"), 0); err != nil {
			t.Error(err)
			return
		}
		got, err := client.Get(p, log)
		if err != nil || string(got) != "LINE1\nline2\n" {
			t.Errorf("Get = %q, %v", got, err)
		}
		// Append right alone is not enough for WriteAt.
		ao, err := client.Attenuate(log, capability.Append)
		if err != nil {
			t.Error(err)
			return
		}
		if err := client.WriteAt(p, ao, []byte("x"), 0); err == nil {
			t.Error("WriteAt with append-only rights succeeded")
		}
		if err := client.Append(p, ao, []byte("more\n")); err != nil {
			t.Errorf("Append with append right failed: %v", err)
		}
	})
}

func TestGetAtOverridesLevel(t *testing.T) {
	c := testCloud(31)
	client := c.NewClient(0)
	run(t, c, func(p *sim.Proc) {
		ref, err := client.Create(p, object.Regular, WithConsistency(consistency.Linearizable))
		if err != nil {
			t.Error(err)
			return
		}
		if err := client.Put(p, ref, []byte("v")); err != nil {
			t.Error(err)
			return
		}
		// Strong-by-default object, read eventually: must be cheaper.
		t0 := p.Now()
		if _, err := client.GetAt(p, ref, consistency.Linearizable); err != nil {
			t.Error(err)
			return
		}
		strong := p.Now().Sub(t0)
		t0 = p.Now()
		if _, err := client.GetAt(p, ref, consistency.Eventual); err != nil {
			t.Error(err)
			return
		}
		eventual := p.Now().Sub(t0)
		if eventual > strong {
			t.Errorf("eventual GetAt %v slower than strong %v", eventual, strong)
		}
	})
}

func TestNamespaceVerbs(t *testing.T) {
	c := testCloud(32)
	client := c.NewClient(0)
	run(t, c, func(p *sim.Proc) {
		ns, root, err := client.NewNamespace(p)
		if err != nil {
			t.Error(err)
			return
		}
		if ns.Root() != root.ObjectID() {
			t.Error("Root() does not match root ref")
		}
		obj, err := client.Create(p, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		if err := client.Put(p, obj, []byte("bound")); err != nil {
			t.Error(err)
			return
		}
		if err := ns.Bind(p, client, "dir/bound.txt", obj); err != nil {
			t.Error(err)
			return
		}
		if _, err := ns.CreateAt(p, client, "dir/second.txt", object.Regular); err != nil {
			t.Error(err)
			return
		}
		names, err := ns.List(p, client, "dir")
		if err != nil || len(names) != 2 {
			t.Errorf("List = %v, %v", names, err)
		}
		if err := ns.Remove(p, client, "dir/second.txt"); err != nil {
			t.Error(err)
			return
		}
		names, err = ns.List(p, client, "dir")
		if err != nil || len(names) != 1 || names[0] != "bound.txt" {
			t.Errorf("List after remove = %v, %v", names, err)
		}
		// Frozen view refuses writes but resolves.
		ro := ns.Freeze()
		if _, err := ro.CreateAt(p, client, "dir/third", object.Regular); err == nil {
			t.Error("create through frozen namespace succeeded")
		}
		ref, err := ro.Open(p, client, "dir/bound.txt", capability.Read)
		if err != nil {
			t.Error(err)
			return
		}
		data, err := client.Get(p, ref)
		if err != nil || string(data) != "bound" {
			t.Errorf("frozen-view read = %q, %v", data, err)
		}
	})
}

func TestEphemeralLifecycle(t *testing.T) {
	c := testCloud(33)
	producer := c.NewClient(0)
	consumer := c.NewClient(1)
	var ref Ref
	run(t, c, func(p *sim.Proc) {
		var err error
		ref, err = producer.Create(p, object.Regular, WithEphemeral())
		if err != nil {
			t.Error(err)
			return
		}
		if c.EphemeralCount() != 1 {
			t.Errorf("EphemeralCount = %d", c.EphemeralCount())
		}
		if err := producer.Append(p, ref, []byte("part1-")); err != nil {
			t.Error(err)
			return
		}
		if err := producer.Append(p, ref, []byte("part2")); err != nil {
			t.Error(err)
			return
		}
		// Positional read from a remote node pays a hop but works.
		part, err := consumer.ReadAt(p, ref, 6, 5)
		if err != nil || string(part) != "part2" {
			t.Errorf("ReadAt = %q, %v", part, err)
		}
		info, err := consumer.Stat(p, ref)
		if err != nil || info.Size != 11 {
			t.Errorf("Stat = %+v, %v", info, err)
		}
		m, err := consumer.Mutability(p, ref)
		if err != nil || m != object.Mutable {
			t.Errorf("Mutability = %v, %v", m, err)
		}
		// Freeze works on ephemerals too.
		if err := producer.Freeze(p, ref, object.Immutable); err != nil {
			t.Error(err)
			return
		}
		if err := producer.Put(p, ref, []byte("no")); !errors.Is(err, object.ErrImmutable) {
			t.Errorf("write to frozen ephemeral = %v", err)
		}
	})
	// GC reclaims dropped ephemerals.
	producer.Drop(ref)
	if n := c.Collect(); n < 1 {
		t.Errorf("Collect reclaimed %d, want >= 1 ephemeral", n)
	}
	if c.EphemeralCount() != 0 {
		t.Errorf("EphemeralCount = %d after collect", c.EphemeralCount())
	}
}

func TestEphemeralWriteAtFromRemoteNode(t *testing.T) {
	c := testCloud(34)
	owner := c.NewClient(0)
	remote := c.NewClient(1)
	run(t, c, func(p *sim.Proc) {
		ref, err := owner.Create(p, object.Regular, WithEphemeral())
		if err != nil {
			t.Error(err)
			return
		}
		if err := owner.Put(p, ref, bytes.Repeat([]byte{0}, 8)); err != nil {
			t.Error(err)
			return
		}
		if err := remote.WriteAt(p, ref, []byte("ab"), 2); err != nil {
			t.Error(err)
			return
		}
		got, err := owner.Get(p, ref)
		if err != nil || got[2] != 'a' || got[3] != 'b' {
			t.Errorf("Get = %v, %v", got, err)
		}
	})
}

func TestAccessorsAndStrings(t *testing.T) {
	c := testCloud(35)
	client := c.NewClient(2)
	if client.Node() == 0 && c.Net().Nodes() == 0 {
		t.Error("client node not registered")
	}
	if client.Cloud() != c {
		t.Error("Cloud() mismatch")
	}
	if c.Runtime() == nil || c.Caps() == nil || c.Collector() == nil {
		t.Error("nil accessors")
	}
	run(t, c, func(p *sim.Proc) {
		ref, err := client.Create(p, object.Regular, WithMutability(object.AppendOnly),
			WithConsistency(consistency.Eventual))
		if err != nil {
			t.Error(err)
			return
		}
		if client.ConsistencyOf(ref) != consistency.Eventual {
			t.Error("ConsistencyOf mismatch")
		}
		if ref.String() == "" || ref.Rights() != capability.All {
			t.Errorf("ref = %v rights = %v", ref, ref.Rights())
		}
		m, err := client.Mutability(p, ref)
		if err != nil || m != object.AppendOnly {
			t.Errorf("WithMutability not applied: %v, %v", m, err)
		}
	})
}

func TestFnCtxAccessors(t *testing.T) {
	c := testCloud(36)
	client := c.NewClient(0)
	run(t, c, func(p *sim.Proc) {
		fn, err := client.RegisterFunction(p, FnConfig{
			Name: "introspect", Kind: platform.Wasm,
			Handler: func(fc *FnCtx) error {
				if fc.Cloud() != c {
					t.Error("FnCtx.Cloud mismatch")
				}
				// Wasm functions land on CPU nodes: no device.
				if fc.Device() != nil && !clusterNodeHasGPU(c, fc) {
					t.Error("device on non-GPU node")
				}
				return nil
			},
		})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := client.Invoke(p, fn, InvokeArgs{}); err != nil {
			t.Error(err)
		}
	})
}

func clusterNodeHasGPU(c *Cloud, fc *FnCtx) bool {
	n := c.Cluster().Node(fc.Inv.Node())
	return n != nil && n.HasGPU()
}

func TestFreezeDoesNotPromoteStaleCache(t *testing.T) {
	// Writer A stages v1 locally; writer B overwrites with v2; A freezes.
	// A's subsequent read must observe v2, not its stale staged copy.
	c := testCloud(37)
	a := c.NewClient(0)
	b := c.NewClient(1)
	run(t, c, func(p *sim.Proc) {
		ref, err := a.Create(p, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		if err := a.Put(p, ref, []byte("v1")); err != nil {
			t.Error(err)
			return
		}
		wref, err := a.Attenuate(ref, capability.All)
		if err != nil {
			t.Error(err)
			return
		}
		if err := b.Put(p, wref, []byte("v2")); err != nil {
			t.Error(err)
			return
		}
		if err := a.Freeze(p, ref, object.Immutable); err != nil {
			t.Error(err)
			return
		}
		got, err := a.Get(p, ref)
		if err != nil || string(got) != "v2" {
			t.Errorf("A read %q after freeze, want v2 (stale cache promoted)", got)
		}
	})
}

package core

// Directory verbs and versioned reads for transactional clients. The
// faasfs subsystem layers snapshot-isolated POSIX sessions over these:
// optimistic validation needs payload+version read atomically, and commit
// installation needs an absolute (idempotent) way to replace a
// directory's entry table. Directory metadata follows the NS convention —
// the authoritative copy lives on replica 0 and mutations are mirrored to
// every replica.

import (
	"fmt"
	"sort"

	"repro/internal/capability"
	"repro/internal/consistency"
	"repro/internal/fncache"
	"repro/internal/object"
	"repro/internal/qos"
	"repro/internal/sim"
)

// DirEntry is one name→object binding in a Directory object. ID is the
// raw object ID so callers outside the object layer (faasfs) can carry
// entry tables without importing internal/object.
type DirEntry struct {
	Name string
	ID   uint64
}

// Object kinds and mutability levels re-exported so subsystems layered
// strictly above internal/core (faasfs) need not import internal/object.
const (
	KindRegular   = object.Regular
	KindDirectory = object.Directory
	MutAppendOnly = object.AppendOnly
)

// GetVersioned returns an object's payload together with the version the
// payload was read at, atomically under the primary's per-object lock —
// the read half of optimistic concurrency control. Always linearizable;
// bypasses the cache-stable and lease fast paths (they do not carry
// versions).
func (cl *Client) GetVersioned(p *sim.Proc, r Ref) ([]byte, uint64, error) {
	if err := cl.check(r, capability.Read); err != nil {
		return nil, 0, err
	}
	g, qerr := cl.admit(p, qos.ClassData)
	if qerr != nil {
		return nil, 0, qerr
	}
	defer g.Release()
	sp := cl.opSpan(p, "core.data", "get_versioned", r.cap.Object())
	defer sp.Close(p)
	var data []byte
	var ver uint64
	if e, ok := cl.c.ephemOf(r.cap.Object()); ok {
		err := cl.ephemView(p, e, int(e.obj.Size()), func(o *object.Object) error {
			data, ver = o.Read(), o.Version()
			return nil
		})
		return data, ver, err
	}
	start := p.Now()
	err := cl.c.do(p, "core.get", func() error {
		if ferr := cl.c.inj.OpFault(p, "core.get"); ferr != nil {
			return ferr
		}
		return cl.c.grp.View(p, cl.node, r.cap.Object(), consistency.Linearizable, func(o *object.Object) error {
			data, ver = o.Read(), o.Version()
			return nil
		})
	})
	cl.c.BytesMoved += int64(len(data))
	cl.observe(p, start)
	return data, ver, err
}

// ReadDir returns a Directory object's entries together with the version
// they were read at, from the authoritative metadata replica. Entries are
// sorted by name.
func (cl *Client) ReadDir(p *sim.Proc, r Ref) ([]DirEntry, uint64, error) {
	if err := cl.check(r, capability.Read); err != nil {
		return nil, 0, err
	}
	g, qerr := cl.admit(p, qos.ClassData)
	if qerr != nil {
		return nil, 0, qerr
	}
	defer g.Release()
	sp := cl.opSpan(p, "core.meta", "readdir", r.cap.Object())
	defer sp.Close(p)
	var ents []DirEntry
	var ver uint64
	err := cl.c.do(p, "core.readdir", func() error {
		if ferr := cl.c.inj.OpFault(p, "core.readdir"); ferr != nil {
			return ferr
		}
		cl.c.metaOp(p, cl, "")
		o, err := cl.c.grp.Primary0Store().Get(r.cap.Object())
		if err != nil {
			return fmt.Errorf("core: readdir: %w", err)
		}
		ents, ver, err = entryTable(o)
		return err
	})
	return ents, ver, err
}

// SetDirEntries replaces a Directory object's entry table with the given
// one, as a single metadata operation on the authoritative replica
// mirrored to all others. The operation is absolute — installing a table
// the directory already holds is a no-op — so transactional commit
// installation and crash-recovery replay can both use it idempotently.
func (cl *Client) SetDirEntries(p *sim.Proc, r Ref, entries []DirEntry) error {
	if err := cl.check(r, capability.Write); err != nil {
		return err
	}
	g, qerr := cl.admit(p, qos.ClassData)
	if qerr != nil {
		return qerr
	}
	defer g.Release()
	sp := cl.opSpan(p, "core.meta", "set_entries", r.cap.Object())
	defer sp.Close(p)
	id := r.cap.Object()
	return cl.c.do(p, "core.setdir", func() error {
		if ferr := cl.c.inj.OpFault(p, "core.setdir"); ferr != nil {
			return ferr
		}
		cl.c.metaOp(p, cl, "")
		o, err := cl.c.grp.Primary0Store().Get(id)
		if err != nil {
			return fmt.Errorf("core: setdir: %w", err)
		}
		if err := installEntries(o, entries); err != nil {
			return err
		}
		if fc := cl.c.fncache; fc != nil {
			// Mirror bypasses the lease write path; drop any cached copy
			// before the state replicates.
			fc.Invalidate(fncache.Key(id))
		}
		return cl.c.grp.Mirror(p, id)
	})
}

// entryTable snapshots a directory's entries (sorted) and version.
func entryTable(o *object.Object) ([]DirEntry, uint64, error) {
	if o.Kind() != object.Directory {
		return nil, 0, fmt.Errorf("core: readdir on %v: %w", o.Kind(), object.ErrWrongKind)
	}
	names := o.Entries()
	ents := make([]DirEntry, 0, len(names))
	for _, n := range names {
		id, err := o.Lookup(n)
		if err != nil {
			return nil, 0, err
		}
		ents = append(ents, DirEntry{Name: n, ID: uint64(id)})
	}
	return ents, o.Version(), nil
}

// installEntries diffs the directory's current entries against the wanted
// table and applies only the difference, so replaying an already-installed
// table leaves the version untouched.
func installEntries(o *object.Object, entries []DirEntry) error {
	if o.Kind() != object.Directory {
		return fmt.Errorf("core: setdir on %v: %w", o.Kind(), object.ErrWrongKind)
	}
	want := make(map[string]object.ID, len(entries))
	for _, e := range entries {
		want[e.Name] = object.ID(e.ID)
	}
	for _, n := range o.Entries() {
		cur, err := o.Lookup(n)
		if err != nil {
			return err
		}
		if w, ok := want[n]; !ok || w != cur {
			if err := o.Unlink(n); err != nil {
				return err
			}
		}
	}
	names := make([]string, 0, len(want))
	for n := range want {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if cur, err := o.Lookup(n); err == nil && cur == want[n] {
			continue
		}
		if err := o.Link(n, want[n]); err != nil {
			return err
		}
	}
	return nil
}

// QuiescentRead returns an object's payload and version directly from the
// authoritative replica, outside any simulated process — chaos-audit
// plumbing (no capability checks, costs, or caches). Replicated objects
// only.
func (c *Cloud) QuiescentRead(r Ref) ([]byte, uint64, error) {
	o, err := c.grp.Primary0Store().Get(r.cap.Object())
	if err != nil {
		return nil, 0, err
	}
	return o.Read(), o.Version(), nil
}

// QuiescentEntries returns a Directory object's entry table and version
// directly from the authoritative replica — chaos-audit plumbing.
func (c *Cloud) QuiescentEntries(r Ref) ([]DirEntry, uint64, error) {
	o, err := c.grp.Primary0Store().Get(r.cap.Object())
	if err != nil {
		return nil, 0, err
	}
	return entryTable(o)
}

// QuiescentPut replaces an object's payload at the authoritative replica,
// outside any simulated process — the roll-forward primitive the faasfs
// chaos check uses to replay a durably-committed redo log after healing.
// SyncAll propagates the result.
func (c *Cloud) QuiescentPut(r Ref, data []byte) error {
	return c.grp.QuiescentApply(r.cap.Object(), func(o *object.Object) error {
		if string(o.Read()) == string(data) {
			return nil
		}
		return o.SetData(data)
	})
}

// QuiescentSetEntries replaces a Directory object's entry table at the
// authoritative replica, outside any simulated process — chaos-audit
// replay, idempotent like SetDirEntries.
func (c *Cloud) QuiescentSetEntries(r Ref, entries []DirEntry) error {
	return c.grp.QuiescentApply(r.cap.Object(), func(o *object.Object) error {
		return installEntries(o, entries)
	})
}

// NoteDirRoot registers a directory as a GC root, keeping it and
// everything reachable from it alive across Collect — faasfs mounts pin
// their root and journal this way.
func (c *Cloud) NoteDirRoot(r Ref) { c.nsRoots[r.cap.Object()] = struct{}{} }

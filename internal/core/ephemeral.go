package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/media"
	"repro/internal/object"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Ephemeral objects implement §3.2's observation that "PCSI only describes
// an interface to state, underlying implementations may vary ... This
// could mean storage on disk in multiple datacenters or keeping just one
// copy in the memory of a GPU." An ephemeral object lives in the memory
// of the node that created it — no replication, no durability — yet is
// reached through exactly the same reference API as replicated objects.
// Task-graph intermediates use them: when producer and consumer are
// co-scheduled, data movement drops to zero network bytes (§4.1).

// ErrEphemeralNS is returned when binding an ephemeral object into a
// namespace, which only persists durable objects. Fatal: the binding is
// wrong by construction and no retry changes that.
var ErrEphemeralNS = fault.Fatal("core: ephemeral objects cannot be bound into namespaces")

// ephemBase offsets ephemeral IDs far above the replicated ID space.
const ephemBase object.ID = 1 << 40

type ephemObj struct {
	owner simnet.NodeID
	obj   *object.Object
}

// WithEphemeral makes the created object node-local and unreplicated:
// cheap, single-copy state for task intermediates.
func WithEphemeral() CreateOpt {
	return func(p *createParams) { p.ephemeral = true }
}

func (c *Cloud) newEphem(owner simnet.NodeID, kind object.Kind) object.ID {
	if c.ephem == nil {
		c.ephem = make(map[object.ID]*ephemObj)
	}
	id := ephemBase + object.ID(len(c.ephem)) + c.ephemDrops
	c.ephem[id] = &ephemObj{owner: owner, obj: object.New(id, kind)}
	return id
}

// ephemOf returns the ephemeral entry behind a reference, if any.
func (c *Cloud) ephemOf(id object.ID) (*ephemObj, bool) {
	e, ok := c.ephem[id]
	return e, ok
}

// ephemAccess charges the cost of touching an ephemeral object from a
// node: local memory when on the owner, one exchange with the owner
// otherwise. size is the payload crossing the boundary.
func (cl *Client) ephemAccess(p *sim.Proc, e *ephemObj, sendSize, recvSize int) {
	if cl.node == e.owner {
		cl.c.CacheHits++
		p.Sleep(media.DRAM.ReadCost(int64(sendSize + recvSize)))
		return
	}
	cl.c.net.Send(p, cl.node, e.owner, 64+sendSize)
	p.Sleep(media.DRAM.ReadCost(int64(sendSize + recvSize)))
	cl.c.net.Send(p, e.owner, cl.node, 64+recvSize)
	cl.c.BytesMoved += int64(sendSize + recvSize)
}

// ephemMutate runs a mutation against an ephemeral object.
func (cl *Client) ephemMutate(p *sim.Proc, e *ephemObj, size int, fn func(*object.Object) error) error {
	start := p.Now()
	if err := fn(e.obj); err != nil {
		return err
	}
	cl.ephemAccess(p, e, size, 0)
	cl.observe(p, start)
	return nil
}

// ephemView runs a read against an ephemeral object.
func (cl *Client) ephemView(p *sim.Proc, e *ephemObj, recvSize int, fn func(*object.Object) error) error {
	start := p.Now()
	if err := fn(e.obj); err != nil {
		return err
	}
	cl.ephemAccess(p, e, 0, recvSize)
	cl.observe(p, start)
	return nil
}

// sweepEphemeral drops ephemeral objects with no live references.
func (c *Cloud) sweepEphemeral() int {
	if len(c.ephem) == 0 {
		return 0
	}
	live := make(map[object.ID]bool)
	for _, id := range c.caps.Roots() {
		live[id] = true
	}
	n := 0
	for id := range c.ephem {
		if !live[id] {
			delete(c.ephem, id)
			c.ephemDrops++
			n++
		}
	}
	return n
}

// EphemeralCount reports live ephemeral objects (tests/diagnostics).
func (c *Cloud) EphemeralCount() int { return len(c.ephem) }

// ephemString describes an ephemeral entry.
func (e *ephemObj) String() string {
	return fmt.Sprintf("ephem(%v@node%d)", e.obj.ID(), e.owner)
}

package dynamo

import (
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func testTable(seed int64) (*sim.Env, *Table, simnet.NodeID) {
	env := sim.NewEnv(seed)
	net := simnet.New(env, simnet.DC2021)
	tbl := New(net, 3, media.Disk)
	client := net.AddNode(2)
	return env, tbl, client
}

func TestPutGetItem(t *testing.T) {
	env, tbl, client := testTable(1)
	env.Go("c", func(p *sim.Proc) {
		if err := tbl.PutItem(p, client, "tok", "k", []byte("v")); err != nil {
			t.Error(err)
			return
		}
		got, err := tbl.GetItem(p, client, "tok", "k", true)
		if err != nil || string(got) != "v" {
			t.Errorf("GetItem = %q, %v", got, err)
		}
	})
	env.Run()
}

func TestGetMissingKey(t *testing.T) {
	env, tbl, client := testTable(2)
	env.Go("c", func(p *sim.Proc) {
		if _, err := tbl.GetItem(p, client, "tok", "ghost", true); err == nil {
			t.Error("missing key succeeded")
		}
	})
	env.Run()
}

func TestPaper21LatencyCalibration(t *testing.T) {
	// §2.1: "fetching the same data from DynamoDB takes 4.3 ms".
	env, tbl, client := testTable(3)
	var total time.Duration
	const reads = 50
	env.Go("c", func(p *sim.Proc) {
		if err := tbl.PutItem(p, client, "tok", "obj", make([]byte, 1024)); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < reads; i++ {
			start := p.Now()
			if _, err := tbl.GetItem(p, client, "tok", "obj", true); err != nil {
				t.Error(err)
				return
			}
			total += p.Now().Sub(start)
		}
	})
	env.Run()
	mean := total / reads
	if mean < 3500*time.Microsecond || mean > 5200*time.Microsecond {
		t.Errorf("1KB DynamoDB fetch = %v, paper says ~4.3ms", mean)
	}
}

func TestEventualCheaperAndFasterThanStrong(t *testing.T) {
	env, tbl, client := testTable(4)
	var strong, eventual time.Duration
	env.Go("c", func(p *sim.Proc) {
		if err := tbl.PutItem(p, client, "tok", "k", make([]byte, 1024)); err != nil {
			t.Error(err)
			return
		}
		start := p.Now()
		if _, err := tbl.GetItem(p, client, "tok", "k", true); err != nil {
			t.Error(err)
		}
		strong = p.Now().Sub(start)
		start = p.Now()
		if _, err := tbl.GetItem(p, client, "tok", "k", false); err != nil {
			t.Error(err)
		}
		eventual = p.Now().Sub(start)
	})
	env.Run()
	if eventual > strong {
		t.Errorf("eventual read %v slower than strong %v", eventual, strong)
	}
	if ReadCostPerMillion(1024, false) >= ReadCostPerMillion(1024, true) {
		t.Error("eventual read not cheaper than strong")
	}
}

func TestPaperCostBracket(t *testing.T) {
	s := float64(ReadCostPerMillion(1024, true))
	e := float64(ReadCostPerMillion(1024, false))
	if !(e < 0.18 && 0.18 < s) {
		t.Errorf("paper's $0.18/M outside [e=%.3f, s=%.3f]", e, s)
	}
}

func TestAuthCheckedPerRequest(t *testing.T) {
	env, tbl, client := testTable(5)
	env.Go("c", func(p *sim.Proc) {
		if err := tbl.PutItem(p, client, "tok", "k", []byte("v")); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 3; i++ {
			if _, err := tbl.GetItem(p, client, "tok", "k", false); err != nil {
				t.Error(err)
			}
		}
	})
	env.Run()
	// 1 create + 1 put + 3 gets = 5 auth checks.
	if got := tbl.Gateway().AuthChecks; got != 5 {
		t.Errorf("AuthChecks = %d, want 5", got)
	}
}

// Package dynamo composes the DynamoDB-style baseline of §2.1: a
// stateless REST front door (internal/restbase) over a three-replica
// quorum store, priced by the request-unit book.
//
// Calibration: on the DC2021 profile a strongly consistent 1 KB GetItem
// lands at the paper's ~4.3 ms — the sum of connection setup, HTTP and
// JSON handling, a remote credential check, two internal routing hops,
// and the replicated storage access — and costs $0.125–0.25 per million
// reads depending on consistency (the paper's $0.18/M is a mix).
package dynamo

import (
	"time"

	"repro/internal/consistency"
	"repro/internal/cost"
	"repro/internal/fault"
	"repro/internal/media"
	"repro/internal/object"
	"repro/internal/restbase"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Table is a DynamoDB-like key-value table.
type Table struct {
	env  *sim.Env
	gw   *restbase.Gateway
	grp  *consistency.Group
	keys map[string]object.ID
}

// New builds a table with nReplicas spread across racks, on the given
// media.
func New(net *simnet.Network, nReplicas int, media media.Profile) *Table {
	var nodes []simnet.NodeID
	for i := 0; i < nReplicas; i++ {
		nodes = append(nodes, net.AddNode(i))
	}
	grp := consistency.NewGroup(net.Env(), net, nodes, media)
	cfg := restbase.DefaultConfig()
	// Routing inside a managed database adds metadata/partition lookups
	// on top of the plain gateway path.
	cfg.RoutingHops = 2
	cfg.PerHopProcess = 800 * time.Microsecond
	cfg.Book = cost.DynamoBook
	t := &Table{
		env:  net.Env(),
		gw:   restbase.NewGateway(net, grp, cfg),
		grp:  grp,
		keys: make(map[string]object.ID),
	}
	// NewGateway labelled the run "rest"; a managed table is its own
	// baseline, so relabel (last set wins).
	trace.Of(t.env).SetLabel("dynamo")
	return t
}

// Gateway exposes the REST front door (metrics).
func (t *Table) Gateway() *restbase.Gateway { return t.gw }

// PutItem stores value under key.
func (t *Table) PutItem(p *sim.Proc, client simnet.NodeID, creds, key string, value []byte) error {
	sp := trace.Of(t.env).Start(p, "dynamo", "put_item",
		trace.Str("key", key), trace.Int("bytes", int64(len(value))))
	defer sp.Close(p)
	if err := fault.Of(t.env).OpFault(p, "dynamo.put_item"); err != nil {
		return err
	}
	id, ok := t.keys[key]
	if !ok {
		var err error
		id, err = t.gw.Create(p, client, creds, object.Regular)
		if err != nil {
			return err
		}
		t.keys[key] = id
	}
	return t.gw.Put(p, client, creds, id, value, consistency.Linearizable)
}

// GetItem fetches key's value; strong selects a strongly consistent read.
func (t *Table) GetItem(p *sim.Proc, client simnet.NodeID, creds, key string, strong bool) ([]byte, error) {
	sp := trace.Of(t.env).Start(p, "dynamo", "get_item",
		trace.Str("key", key), trace.Str("consistency", consistencyName(strong)))
	defer sp.Close(p)
	if err := fault.Of(t.env).OpFault(p, "dynamo.get_item"); err != nil {
		return nil, err
	}
	id, ok := t.keys[key]
	if !ok {
		return nil, consistency.ErrNotFound
	}
	lvl := consistency.Eventual
	if strong {
		lvl = consistency.Linearizable
	}
	return t.gw.Get(p, client, creds, id, lvl)
}

func consistencyName(strong bool) string {
	if strong {
		return "strong"
	}
	return "eventual"
}

// ReadCostPerMillion returns the priced cost of a size-byte read at the
// given consistency, per million operations.
func ReadCostPerMillion(size int64, strong bool) cost.USD {
	return cost.DynamoBook.ReadCost(size, strong).PerMillion()
}

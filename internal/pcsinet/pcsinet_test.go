package pcsinet

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/media"
	"repro/internal/platform"
)

func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	opts := core.DefaultOptions()
	opts.Media = media.DRAM
	srv := NewServer(core.New(opts))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return srv, cl
}

func TestCreatePutGetOverTCP(t *testing.T) {
	_, cl := startServer(t)
	tok, err := cl.Create("regular", "linearizable", "MUTABLE", false)
	if err != nil {
		t.Fatal(err)
	}
	if tok == "" {
		t.Fatal("empty token")
	}
	if err := cl.Put(tok, []byte("network payload")); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Get(tok)
	if err != nil || !bytes.Equal(got, []byte("network payload")) {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestStatAndFreeze(t *testing.T) {
	_, cl := startServer(t)
	tok, err := cl.Create("regular", "", "", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Put(tok, make([]byte, 123)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Freeze(tok, "IMMUTABLE"); err != nil {
		t.Fatal(err)
	}
	info, err := cl.Stat(tok)
	if err != nil {
		t.Fatal(err)
	}
	if info["size"] != "123" || info["mutability"] != "IMMUTABLE" {
		t.Errorf("Stat = %v", info)
	}
	if err := cl.Put(tok, []byte("x")); err == nil {
		t.Error("write to frozen object over TCP succeeded")
	}
}

func TestAttenuationOverTCP(t *testing.T) {
	_, cl := startServer(t)
	tok, err := cl.Create("regular", "", "", false)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := cl.Attenuate(tok, "read")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Put(ro, []byte("x")); err == nil {
		t.Error("write through read-only token succeeded")
	}
	if _, err := cl.Get(ro); err != nil {
		t.Errorf("read through read-only token failed: %v", err)
	}
	// Amplification must fail.
	if _, err := cl.Attenuate(ro, "read|write"); err == nil {
		t.Error("amplification over TCP succeeded")
	}
}

func TestUnknownTokenRejected(t *testing.T) {
	_, cl := startServer(t)
	if _, err := cl.Get("ref-forged"); err == nil {
		t.Error("forged token accepted")
	}
	if err := cl.Put("", nil); err == nil {
		t.Error("empty token accepted")
	}
}

func TestNamespaceOverTCP(t *testing.T) {
	_, cl := startServer(t)
	ns, root, err := cl.NewNamespace()
	if err != nil {
		t.Fatal(err)
	}
	if ns == "" || root == "" {
		t.Fatal("missing tokens")
	}
	if _, err := cl.CreateAt(ns, "data/a.txt", "regular"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CreateAt(ns, "data/b.txt", "regular"); err != nil {
		t.Fatal(err)
	}
	names, err := cl.List(ns, "data")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a.txt" || names[1] != "b.txt" {
		t.Errorf("List = %v", names)
	}
	wtok, err := cl.Open(ns, "data/a.txt", "read|write")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Put(wtok, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	rtok, err := cl.Open(ns, "data/a.txt", "read")
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.Get(rtok)
	if err != nil || string(got) != "hello" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := cl.Remove(ns, "data/b.txt"); err != nil {
		t.Fatal(err)
	}
	names, err = cl.List(ns, "data")
	if err != nil || len(names) != 1 {
		t.Errorf("List after remove = %v, %v", names, err)
	}
}

func TestInvokeOverTCP(t *testing.T) {
	srv, cl := startServer(t)
	fnTok, err := srv.RegisterFunction(core.FnConfig{
		Name: "upper", Kind: platform.Wasm,
		Handler: func(fc *core.FnCtx) error {
			in, err := fc.Client.Get(fc.Proc(), fc.Inputs[0])
			if err != nil {
				return err
			}
			return fc.Client.Put(fc.Proc(), fc.Outputs[0], bytes.ToUpper(in))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	in, err := cl.Create("regular", "", "", false)
	if err != nil {
		t.Fatal(err)
	}
	out, err := cl.Create("regular", "", "", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Put(in, []byte("shout")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Invoke(fnTok, []string{in}, []string{out}, nil); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Get(out)
	if err != nil || string(got) != "SHOUT" {
		t.Fatalf("function output = %q, %v", got, err)
	}
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["invocations"] != "1" {
		t.Errorf("stats = %v", stats)
	}
}

func TestDropOverTCP(t *testing.T) {
	_, cl := startServer(t)
	tok, err := cl.Create("regular", "", "", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Drop(tok); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(tok); err == nil {
		t.Error("dropped token still works")
	}
}

func TestBadRequests(t *testing.T) {
	_, cl := startServer(t)
	if _, err := cl.Create("alien-kind", "", "", false); err == nil {
		t.Error("bad kind accepted")
	}
	if _, err := cl.Create("regular", "quantum", "", false); err == nil {
		t.Error("bad consistency accepted")
	}
	if _, err := cl.Create("regular", "", "SOMETIMES", false); err == nil {
		t.Error("bad mutability accepted")
	}
	if _, err := cl.call("warp", "", nil, nil); err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Errorf("unknown op err = %v", err)
	}
}

func TestEphemeralOverTCP(t *testing.T) {
	_, cl := startServer(t)
	tok, err := cl.Create("regular", "", "", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Put(tok, []byte("scratch")); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Get(tok)
	if err != nil || string(got) != "scratch" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestMultipleConnections(t *testing.T) {
	srv, cl1 := startServer(t)
	addr := srv.ln.Addr().String()
	cl2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	tok, err := cl1.Create("regular", "", "", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl1.Put(tok, []byte("shared")); err != nil {
		t.Fatal(err)
	}
	// Tokens are connection-independent capabilities.
	got, err := cl2.Get(tok)
	if err != nil || string(got) != "shared" {
		t.Fatalf("cross-connection Get = %q, %v", got, err)
	}
}

func TestSocketOverTCP(t *testing.T) {
	_, cl := startServer(t)
	conn, err := cl.Create("socket", "", "", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.SockSend(conn, "client", []byte("request")); err != nil {
		t.Fatal(err)
	}
	msg, err := cl.SockRecv(conn, "server")
	if err != nil || string(msg) != "request" {
		t.Fatalf("SockRecv = %q, %v", msg, err)
	}
	if err := cl.SockSend(conn, "server", []byte("response")); err != nil {
		t.Fatal(err)
	}
	msg, err = cl.SockRecv(conn, "client")
	if err != nil || string(msg) != "response" {
		t.Fatalf("SockRecv = %q, %v", msg, err)
	}
	if err := cl.SockClose(conn); err != nil {
		t.Fatal(err)
	}
	if err := cl.SockSend(conn, "client", []byte("late")); err == nil {
		t.Error("send after close succeeded over TCP")
	}
}

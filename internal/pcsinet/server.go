package pcsinet

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/capability"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/object"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Server serves a PCSI deployment over TCP. Requests are serialised
// through the deterministic simulator one at a time; each request runs as
// a fresh simulation process.
type Server struct {
	cloud  *core.Cloud
	client *core.Client
	ln     net.Listener

	mu     sync.Mutex
	tokens map[string]core.Ref
	nss    map[string]*core.NS
	fns    map[string]core.Ref
	done   chan struct{}
}

// NewServer wraps a deployment. Functions registered through
// RegisterFunction become invokable by token.
func NewServer(cloud *core.Cloud) *Server {
	return &Server{
		cloud:  cloud,
		client: cloud.NewClient(0),
		tokens: make(map[string]core.Ref),
		nss:    make(map[string]*core.NS),
		fns:    make(map[string]core.Ref),
		done:   make(chan struct{}),
	}
}

// Listen starts accepting connections on addr ("127.0.0.1:0" for tests)
// and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the server.
func (s *Server) Close() error {
	close(s.done)
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		req, err := ReadFrame(conn)
		if err != nil {
			return
		}
		resp := s.dispatch(req)
		if err := WriteFrame(conn, resp); err != nil {
			return
		}
	}
}

// newToken mints an unguessable token.
func newToken(prefix string) string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err)
	}
	return prefix + "-" + hex.EncodeToString(b[:])
}

// runSim executes fn as a simulation process and drives the clock until
// it finishes. The whole server shares one virtual timeline.
func (s *Server) runSim(fn func(p *sim.Proc) error) error {
	env := s.cloud.Env()
	var ferr error
	finished := false
	env.Go("rpc", func(p *sim.Proc) {
		ferr = fn(p)
		finished = true
	})
	for !finished && env.Pending() > 0 {
		env.RunUntil(env.Now().Add(10 * time.Millisecond))
	}
	if !finished {
		return errors.New("pcsinet: request did not complete")
	}
	return ferr
}

// RegisterFunction registers a handler on the deployment and returns the
// token clients invoke it by.
func (s *Server) RegisterFunction(cfg core.FnConfig) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ref core.Ref
	err := s.runSim(func(p *sim.Proc) error {
		var rerr error
		ref, rerr = s.client.RegisterFunction(p, cfg)
		return rerr
	})
	if err != nil {
		return "", err
	}
	tok := newToken("fn")
	s.fns[tok] = ref
	return tok, nil
}

func parseKind(sk string) (object.Kind, error) {
	switch strings.ToLower(sk) {
	case "", "regular", "file":
		return object.Regular, nil
	case "directory", "dir":
		return object.Directory, nil
	case "fifo":
		return object.FIFO, nil
	case "socket":
		return object.Socket, nil
	case "device":
		return object.Device, nil
	default:
		return 0, fmt.Errorf("unknown kind %q", sk)
	}
}

func parseLevel(sl string) (consistency.Level, error) {
	switch strings.ToLower(sl) {
	case "", "linearizable", "strong":
		return consistency.Linearizable, nil
	case "eventual", "weak":
		return consistency.Eventual, nil
	default:
		return 0, fmt.Errorf("unknown consistency %q", sl)
	}
}

func parseMutability(sm string) (object.Mutability, error) {
	switch strings.ToUpper(sm) {
	case "", "MUTABLE":
		return object.Mutable, nil
	case "APPEND_ONLY":
		return object.AppendOnly, nil
	case "FIXED_SIZE":
		return object.FixedSize, nil
	case "IMMUTABLE":
		return object.Immutable, nil
	default:
		return 0, fmt.Errorf("unknown mutability %q", sm)
	}
}

func parseRights(sr string) (capability.Rights, error) {
	if sr == "" || sr == "all" {
		return capability.All, nil
	}
	var r capability.Rights
	for _, part := range strings.Split(sr, "|") {
		switch strings.ToLower(strings.TrimSpace(part)) {
		case "read":
			r |= capability.Read
		case "write":
			r |= capability.Write
		case "append":
			r |= capability.Append
		case "exec":
			r |= capability.Exec
		case "setmut":
			r |= capability.SetMut
		case "grant":
			r |= capability.Grant
		case "unlink":
			r |= capability.Unlink
		case "destroy":
			r |= capability.Destroy
		default:
			return 0, fmt.Errorf("unknown right %q", part)
		}
	}
	return r, nil
}

func (s *Server) refFor(token string) (core.Ref, error) {
	ref, ok := s.tokens[token]
	if !ok {
		return core.Ref{}, fmt.Errorf("unknown reference token %q", token)
	}
	return ref, nil
}

// dispatch handles one request under the server lock (requests share one
// deterministic timeline, so they serialise).
func (s *Server) dispatch(req *wire.Message) *wire.Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := func(k string) string {
		if req.Headers == nil {
			return ""
		}
		return req.Headers[k]
	}
	switch req.Op {
	case OpCreate:
		kind, err := parseKind(h("kind"))
		if err != nil {
			return errResp(err)
		}
		lvl, err := parseLevel(h("consistency"))
		if err != nil {
			return errResp(err)
		}
		mut, err := parseMutability(h("mutability"))
		if err != nil {
			return errResp(err)
		}
		opts := []core.CreateOpt{core.WithConsistency(lvl), core.WithMutability(mut)}
		if h("ephemeral") == "true" {
			opts = append(opts, core.WithEphemeral())
		}
		var ref core.Ref
		err = s.runSim(func(p *sim.Proc) error {
			var rerr error
			ref, rerr = s.client.Create(p, kind, opts...)
			return rerr
		})
		if err != nil {
			return errResp(err)
		}
		tok := newToken("ref")
		s.tokens[tok] = ref
		return okResp(nil, map[string]string{"token": tok})

	case OpPut, OpAppend:
		ref, err := s.refFor(req.Key)
		if err != nil {
			return errResp(err)
		}
		err = s.runSim(func(p *sim.Proc) error {
			if req.Op == OpAppend {
				return s.client.Append(p, ref, req.Body)
			}
			return s.client.Put(p, ref, req.Body)
		})
		if err != nil {
			return errResp(err)
		}
		return okResp(nil, nil)

	case OpGet:
		ref, err := s.refFor(req.Key)
		if err != nil {
			return errResp(err)
		}
		var data []byte
		err = s.runSim(func(p *sim.Proc) error {
			var rerr error
			data, rerr = s.client.Get(p, ref)
			return rerr
		})
		if err != nil {
			return errResp(err)
		}
		return okResp(data, nil)

	case OpFreeze:
		ref, err := s.refFor(req.Key)
		if err != nil {
			return errResp(err)
		}
		mut, err := parseMutability(h("level"))
		if err != nil {
			return errResp(err)
		}
		if err := s.runSim(func(p *sim.Proc) error { return s.client.Freeze(p, ref, mut) }); err != nil {
			return errResp(err)
		}
		return okResp(nil, nil)

	case OpStat:
		ref, err := s.refFor(req.Key)
		if err != nil {
			return errResp(err)
		}
		var info core.StatInfo
		err = s.runSim(func(p *sim.Proc) error {
			var rerr error
			info, rerr = s.client.Stat(p, ref)
			return rerr
		})
		if err != nil {
			return errResp(err)
		}
		return okResp(nil, map[string]string{
			"kind":       info.Kind.String(),
			"size":       strconv.FormatInt(info.Size, 10),
			"version":    strconv.FormatUint(info.Version, 10),
			"mutability": info.Mutability.String(),
		})

	case OpAttenu:
		ref, err := s.refFor(req.Key)
		if err != nil {
			return errResp(err)
		}
		rights, err := parseRights(h("rights"))
		if err != nil {
			return errResp(err)
		}
		nr, err := s.client.Attenuate(ref, rights)
		if err != nil {
			return errResp(err)
		}
		tok := newToken("ref")
		s.tokens[tok] = nr
		return okResp(nil, map[string]string{"token": tok})

	case OpDrop:
		ref, err := s.refFor(req.Key)
		if err != nil {
			return errResp(err)
		}
		s.client.Drop(ref)
		delete(s.tokens, req.Key)
		return okResp(nil, nil)

	case OpMkdirNS:
		var ns *core.NS
		var root core.Ref
		err := s.runSim(func(p *sim.Proc) error {
			var rerr error
			ns, root, rerr = s.client.NewNamespace(p)
			return rerr
		})
		if err != nil {
			return errResp(err)
		}
		tok := newToken("ns")
		s.nss[tok] = ns
		rootTok := newToken("ref")
		s.tokens[rootTok] = root
		return okResp(nil, map[string]string{"token": tok, "root": rootTok})

	case OpCreateAt, OpOpen, OpList, OpRemove:
		ns, ok := s.nss[req.Key]
		if !ok {
			return errResp(fmt.Errorf("unknown namespace token %q", req.Key))
		}
		return s.nsOp(ns, req)

	case OpInvoke:
		fnRef, ok := s.fns[req.Key]
		if !ok {
			return errResp(fmt.Errorf("unknown function token %q", req.Key))
		}
		var inputs, outputs []core.Ref
		for _, tok := range splitList(h("inputs")) {
			ref, err := s.refFor(tok)
			if err != nil {
				return errResp(err)
			}
			inputs = append(inputs, ref)
		}
		for _, tok := range splitList(h("outputs")) {
			ref, err := s.refFor(tok)
			if err != nil {
				return errResp(err)
			}
			outputs = append(outputs, ref)
		}
		err := s.runSim(func(p *sim.Proc) error {
			_, ierr := s.client.Invoke(p, fnRef, core.InvokeArgs{Inputs: inputs, Outputs: outputs, Body: req.Body})
			return ierr
		})
		if err != nil {
			return errResp(err)
		}
		return okResp(nil, nil)

	case OpSockSend, OpSockRecv, OpSockEnd:
		ref, err := s.refFor(req.Key)
		if err != nil {
			return errResp(err)
		}
		end := core.ClientEnd
		if h("end") == "server" || h("end") == "1" {
			end = core.ServerEnd
		}
		switch req.Op {
		case OpSockSend:
			if err := s.runSim(func(p *sim.Proc) error {
				return s.client.SockSend(p, ref, end, req.Body)
			}); err != nil {
				return errResp(err)
			}
			return okResp(nil, nil)
		case OpSockRecv:
			var msg []byte
			if err := s.runSim(func(p *sim.Proc) error {
				var rerr error
				msg, rerr = s.client.SockRecv(p, ref, end)
				return rerr
			}); err != nil {
				return errResp(err)
			}
			return okResp(msg, nil)
		default:
			if err := s.runSim(func(p *sim.Proc) error {
				return s.client.SockClose(p, ref)
			}); err != nil {
				return errResp(err)
			}
			return okResp(nil, nil)
		}

	case OpStats:
		rt := s.cloud.Runtime()
		return okResp(nil, map[string]string{
			"invocations": strconv.FormatInt(rt.Invocations.Value(), 10),
			"cold_starts": strconv.FormatInt(rt.ColdStarts.Value(), 10),
			"bytes_moved": strconv.FormatInt(s.cloud.BytesMoved, 10),
			"cache_hits":  strconv.FormatInt(s.cloud.CacheHits, 10),
			"virtual_now": s.cloud.Env().Now().String(),
		})

	default:
		return errResp(fmt.Errorf("unknown op %q", req.Op))
	}
}

func (s *Server) nsOp(ns *core.NS, req *wire.Message) *wire.Message {
	h := func(k string) string {
		if req.Headers == nil {
			return ""
		}
		return req.Headers[k]
	}
	path := h("path")
	switch req.Op {
	case OpCreateAt:
		kind, err := parseKind(h("kind"))
		if err != nil {
			return errResp(err)
		}
		var ref core.Ref
		err = s.runSim(func(p *sim.Proc) error {
			var rerr error
			ref, rerr = ns.CreateAt(p, s.client, path, kind)
			return rerr
		})
		if err != nil {
			return errResp(err)
		}
		tok := newToken("ref")
		s.tokens[tok] = ref
		return okResp(nil, map[string]string{"token": tok})
	case OpOpen:
		rights, err := parseRights(h("rights"))
		if err != nil {
			return errResp(err)
		}
		var ref core.Ref
		err = s.runSim(func(p *sim.Proc) error {
			var rerr error
			ref, rerr = ns.Open(p, s.client, path, rights)
			return rerr
		})
		if err != nil {
			return errResp(err)
		}
		tok := newToken("ref")
		s.tokens[tok] = ref
		return okResp(nil, map[string]string{"token": tok})
	case OpList:
		var names []string
		err := s.runSim(func(p *sim.Proc) error {
			var rerr error
			names, rerr = ns.List(p, s.client, path)
			return rerr
		})
		if err != nil {
			return errResp(err)
		}
		return okResp([]byte(strings.Join(names, "\n")), nil)
	case OpRemove:
		if err := s.runSim(func(p *sim.Proc) error { return ns.Remove(p, s.client, path) }); err != nil {
			return errResp(err)
		}
		return okResp(nil, nil)
	}
	return errResp(errors.New("unreachable"))
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

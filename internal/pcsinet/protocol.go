// Package pcsinet exposes a PCSI deployment over a real TCP connection
// using the stateful binary protocol the paper advocates: clients open
// references once and then operate through compact, capability-bearing
// frames — no per-request credential round trips, no text envelopes.
//
// The wire format is a 4-byte big-endian length prefix followed by a
// wire.BinaryCodec message. References never leave the server; clients
// hold unguessable tokens mapped to capabilities server-side (the classic
// "swiss number" pattern).
package pcsinet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/wire"
)

// Protocol operations.
const (
	OpCreate   = "create"    // Headers: kind, mutability?, consistency?, ephemeral?
	OpPut      = "put"       // Key: token; Body: data
	OpGet      = "get"       // Key: token
	OpAppend   = "append"    // Key: token; Body: data
	OpFreeze   = "freeze"    // Key: token; Headers: level
	OpStat     = "stat"      // Key: token
	OpAttenu   = "attenuate" // Key: token; Headers: rights
	OpDrop     = "drop"      // Key: token
	OpMkdirNS  = "mkns"      // create a namespace; returns ns token
	OpCreateAt = "createat"  // Key: ns token; Headers: path, kind
	OpOpen     = "open"      // Key: ns token; Headers: path, rights
	OpList     = "list"      // Key: ns token; Headers: path
	OpRemove   = "remove"    // Key: ns token; Headers: path
	OpInvoke   = "invoke"    // Key: fn token; Body: request body
	OpStats    = "stats"     // deployment counters
	OpSockSend = "socksend"  // Key: token; Headers: end; Body: message
	OpSockRecv = "sockrecv"  // Key: token; Headers: end
	OpSockEnd  = "sockclose" // Key: token
)

// Status codes.
const (
	StatusOK    = 200
	StatusError = 400
)

// MaxFrame bounds a single protocol frame.
const MaxFrame = 64 << 20

// ErrFrameTooLarge is returned for oversized frames.
var ErrFrameTooLarge = errors.New("pcsinet: frame exceeds MaxFrame")

var codec = wire.BinaryCodec{}

// WriteFrame writes one length-prefixed message.
func WriteFrame(w io.Writer, m *wire.Message) error {
	payload, err := codec.Encode(m)
	if err != nil {
		return err
	}
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed message.
func ReadFrame(r io.Reader) (*wire.Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return codec.Decode(payload)
}

// errResp builds an error response.
func errResp(err error) *wire.Message {
	return &wire.Message{Status: StatusError, Headers: map[string]string{"error": err.Error()}}
}

// okResp builds a success response.
func okResp(body []byte, headers map[string]string) *wire.Message {
	return &wire.Message{Status: StatusOK, Body: body, Headers: headers}
}

// RespError extracts the error from a response, if any.
func RespError(m *wire.Message) error {
	if m.Status == StatusOK {
		return nil
	}
	if m.Headers != nil && m.Headers["error"] != "" {
		return fmt.Errorf("pcsinet: %s", m.Headers["error"])
	}
	return fmt.Errorf("pcsinet: status %d", m.Status)
}

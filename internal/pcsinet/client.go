package pcsinet

import (
	"net"
	"strings"

	"repro/internal/wire"
)

// Client is a connection to a pcsid server. It is not safe for concurrent
// use; open one client per goroutine (the protocol is stateful, like the
// interface it carries).
type Client struct {
	conn net.Conn
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// call performs one request/response exchange.
func (c *Client) call(op, key string, headers map[string]string, body []byte) (*wire.Message, error) {
	req := &wire.Message{Op: op, Key: key, Headers: headers, Body: body}
	if err := WriteFrame(c.conn, req); err != nil {
		return nil, err
	}
	resp, err := ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if err := RespError(resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Create makes an object; kind/consistency/mutability use the protocol's
// string forms ("regular", "eventual", "APPEND_ONLY", ...). Returns the
// reference token.
func (c *Client) Create(kind, consistencyLvl, mutability string, ephemeral bool) (string, error) {
	h := map[string]string{"kind": kind, "consistency": consistencyLvl, "mutability": mutability}
	if ephemeral {
		h["ephemeral"] = "true"
	}
	resp, err := c.call(OpCreate, "", h, nil)
	if err != nil {
		return "", err
	}
	return resp.Headers["token"], nil
}

// Put replaces an object's payload.
func (c *Client) Put(token string, data []byte) error {
	_, err := c.call(OpPut, token, nil, data)
	return err
}

// Append appends to an object.
func (c *Client) Append(token string, data []byte) error {
	_, err := c.call(OpAppend, token, nil, data)
	return err
}

// Get fetches an object's payload.
func (c *Client) Get(token string) ([]byte, error) {
	resp, err := c.call(OpGet, token, nil, nil)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// Freeze moves the object along the mutability lattice.
func (c *Client) Freeze(token, level string) error {
	_, err := c.call(OpFreeze, token, map[string]string{"level": level}, nil)
	return err
}

// Stat returns object metadata as protocol headers.
func (c *Client) Stat(token string) (map[string]string, error) {
	resp, err := c.call(OpStat, token, nil, nil)
	if err != nil {
		return nil, err
	}
	return resp.Headers, nil
}

// Attenuate derives a narrowed reference ("read|write" rights syntax).
func (c *Client) Attenuate(token, rights string) (string, error) {
	resp, err := c.call(OpAttenu, token, map[string]string{"rights": rights}, nil)
	if err != nil {
		return "", err
	}
	return resp.Headers["token"], nil
}

// Drop releases a reference token.
func (c *Client) Drop(token string) error {
	_, err := c.call(OpDrop, token, nil, nil)
	return err
}

// NewNamespace creates a namespace, returning its token and the root
// reference token.
func (c *Client) NewNamespace() (nsToken, rootToken string, err error) {
	resp, err := c.call(OpMkdirNS, "", nil, nil)
	if err != nil {
		return "", "", err
	}
	return resp.Headers["token"], resp.Headers["root"], nil
}

// CreateAt creates an object at a path inside a namespace.
func (c *Client) CreateAt(nsToken, path, kind string) (string, error) {
	resp, err := c.call(OpCreateAt, nsToken, map[string]string{"path": path, "kind": kind}, nil)
	if err != nil {
		return "", err
	}
	return resp.Headers["token"], nil
}

// Open resolves a path to a reference with the given rights.
func (c *Client) Open(nsToken, path, rights string) (string, error) {
	resp, err := c.call(OpOpen, nsToken, map[string]string{"path": path, "rights": rights}, nil)
	if err != nil {
		return "", err
	}
	return resp.Headers["token"], nil
}

// List returns directory entries at a path.
func (c *Client) List(nsToken, path string) ([]string, error) {
	resp, err := c.call(OpList, nsToken, map[string]string{"path": path}, nil)
	if err != nil {
		return nil, err
	}
	if len(resp.Body) == 0 {
		return nil, nil
	}
	return strings.Split(string(resp.Body), "\n"), nil
}

// Remove unlinks a path.
func (c *Client) Remove(nsToken, path string) error {
	_, err := c.call(OpRemove, nsToken, map[string]string{"path": path}, nil)
	return err
}

// Invoke calls a function by token with optional input/output reference
// tokens.
func (c *Client) Invoke(fnToken string, inputs, outputs []string, body []byte) error {
	h := map[string]string{
		"inputs":  strings.Join(inputs, ","),
		"outputs": strings.Join(outputs, ","),
	}
	_, err := c.call(OpInvoke, fnToken, h, body)
	return err
}

// SockSend enqueues a message on a socket object ("client" or "server"
// end).
func (c *Client) SockSend(token, end string, msg []byte) error {
	_, err := c.call(OpSockSend, token, map[string]string{"end": end}, msg)
	return err
}

// SockRecv dequeues a message arriving at the given end.
func (c *Client) SockRecv(token, end string) ([]byte, error) {
	resp, err := c.call(OpSockRecv, token, map[string]string{"end": end}, nil)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// SockClose closes a socket object.
func (c *Client) SockClose(token string) error {
	_, err := c.call(OpSockEnd, token, nil, nil)
	return err
}

// Stats returns deployment counters.
func (c *Client) Stats() (map[string]string, error) {
	resp, err := c.call(OpStats, "", nil, nil)
	if err != nil {
		return nil, err
	}
	return resp.Headers, nil
}

package taskgraph

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faas"
	"repro/internal/platform"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func testRT(seed int64, colocate bool) (*sim.Env, *faas.Runtime) {
	env := sim.NewEnv(seed)
	net := simnet.New(env, simnet.DC2021)
	cl := cluster.New(env, net, cluster.Config{
		Racks: 2, NodesPerRack: 4,
		NodeCap:         cluster.Resources{MilliCPU: 16000, MemMB: 32768},
		GPUNodesPerRack: 1, GPUsPerGPUNode: 2,
	})
	var plc faas.Placer
	if colocate {
		plc = scheduler.Colocate{C: cl}
	} else {
		plc = scheduler.Naive{C: cl}
	}
	return env, faas.NewRuntime(cl, plc, faas.Config{CodeStore: net.AddNode(0)})
}

func reg(t *testing.T, rt *faas.Runtime, name string, d time.Duration) {
	t.Helper()
	err := rt.Register(&faas.Function{
		Name: name, Kind: platform.Wasm,
		Handler: func(inv *faas.Invocation) error { inv.Proc().Sleep(d); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGraphValidateTopo(t *testing.T) {
	g := NewGraph()
	for _, task := range []*Task{
		{Name: "c", Fn: "f", After: []string{"a", "b"}},
		{Name: "a", Fn: "f"},
		{Name: "b", Fn: "f", After: []string{"a"}},
	} {
		if err := g.Add(task); err != nil {
			t.Fatal(err)
		}
	}
	topo, err := g.Validate()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range topo {
		pos[n] = i
	}
	if !(pos["a"] < pos["b"] && pos["b"] < pos["c"]) {
		t.Errorf("topo = %v", topo)
	}
}

func TestGraphCycleDetected(t *testing.T) {
	g := NewGraph()
	_ = g.Add(&Task{Name: "a", Fn: "f", After: []string{"b"}})
	_ = g.Add(&Task{Name: "b", Fn: "f", After: []string{"a"}})
	if _, err := g.Validate(); !errors.Is(err, ErrCycle) {
		t.Errorf("err = %v, want ErrCycle", err)
	}
}

func TestGraphUnknownDep(t *testing.T) {
	g := NewGraph()
	_ = g.Add(&Task{Name: "a", Fn: "f", After: []string{"ghost"}})
	if _, err := g.Validate(); !errors.Is(err, ErrUnknown) {
		t.Errorf("err = %v, want ErrUnknown", err)
	}
}

func TestGraphDuplicateTask(t *testing.T) {
	g := NewGraph()
	if err := g.Add(&Task{Name: "a", Fn: "f"}); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(&Task{Name: "a", Fn: "f"}); !errors.Is(err, ErrDupTask) {
		t.Errorf("err = %v, want ErrDupTask", err)
	}
}

func TestExecuteRespectsOrder(t *testing.T) {
	env, rt := testRT(1, false)
	reg(t, rt, "f", time.Millisecond)
	g, err := Pipeline([]string{"s1", "s2", "s3"}, []string{"f", "f", "f"})
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(rt)
	var results map[string]*Result
	env.Go("main", func(p *sim.Proc) {
		results, err = ex.Execute(p, g)
	})
	env.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if results["s2"].Start < results["s1"].End {
		t.Error("s2 started before s1 finished")
	}
	if results["s3"].Start < results["s2"].End {
		t.Error("s3 started before s2 finished")
	}
}

func TestExecutePipelinesIndependentBranches(t *testing.T) {
	env, rt := testRT(2, false)
	reg(t, rt, "slow", 50*time.Millisecond)
	reg(t, rt, "fast", time.Millisecond)
	g := NewGraph()
	_ = g.Add(&Task{Name: "a", Fn: "slow"})
	_ = g.Add(&Task{Name: "b", Fn: "fast"})
	ex := NewExecutor(rt)
	var results map[string]*Result
	env.Go("main", func(p *sim.Proc) {
		var err error
		results, err = ex.Execute(p, g)
		if err != nil {
			t.Error(err)
		}
	})
	env.Run()
	// b must not wait for a.
	if results["b"].End >= results["a"].End {
		t.Errorf("independent task b (%v) serialised behind a (%v)", results["b"].End, results["a"].End)
	}
}

func TestColocationHintsPlaceTogether(t *testing.T) {
	env, rt := testRT(3, true)
	reg(t, rt, "f", time.Millisecond)
	g, err := Pipeline([]string{"p", "q", "r"}, []string{"f", "f", "f"})
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(rt)
	var results map[string]*Result
	env.Go("main", func(p *sim.Proc) {
		results, err = ex.Execute(p, g)
		if err != nil {
			t.Error(err)
		}
	})
	env.Run()
	n1 := results["p"].Instance.Node.ID
	n2 := results["q"].Instance.Node.ID
	n3 := results["r"].Instance.Node.ID
	if n1 != n2 || n2 != n3 {
		t.Errorf("pipeline scattered across nodes %v, %v, %v with Colocate policy", n1, n2, n3)
	}
}

func TestDependencyFailureShortCircuits(t *testing.T) {
	env, rt := testRT(4, false)
	boom := errors.New("boom")
	if err := rt.Register(&faas.Function{Name: "bad", Kind: platform.Wasm,
		Handler: func(*faas.Invocation) error { return boom }}); err != nil {
		t.Fatal(err)
	}
	reg(t, rt, "ok", time.Millisecond)
	g := NewGraph()
	_ = g.Add(&Task{Name: "a", Fn: "bad"})
	_ = g.Add(&Task{Name: "b", Fn: "ok", After: []string{"a"}})
	ex := NewExecutor(rt)
	var results map[string]*Result
	var execErr error
	env.Go("main", func(p *sim.Proc) {
		results, execErr = ex.Execute(p, g)
	})
	env.Run()
	if execErr == nil {
		t.Fatal("Execute swallowed the failure")
	}
	if results["b"].Err == nil {
		t.Error("dependent task ran despite failed dependency")
	}
	if results["b"].Instance != nil {
		t.Error("dependent task was invoked")
	}
}

func TestDynamicSubmit(t *testing.T) {
	env, rt := testRT(5, false)
	ex := NewExecutor(rt)
	// The root task dynamically spawns a child, Ciel-style.
	if err := rt.Register(&faas.Function{Name: "root", Kind: platform.Wasm,
		Handler: func(inv *faas.Invocation) error {
			inv.Proc().Sleep(time.Millisecond)
			_, err := ex.Submit(inv.Proc().Env(), &Task{Name: "child", Fn: "leaf", After: []string{"root"}})
			return err
		}}); err != nil {
		t.Fatal(err)
	}
	childRan := false
	if err := rt.Register(&faas.Function{Name: "leaf", Kind: platform.Wasm,
		Handler: func(inv *faas.Invocation) error { childRan = true; return nil }}); err != nil {
		t.Fatal(err)
	}
	g := NewGraph()
	_ = g.Add(&Task{Name: "root", Fn: "root"})
	env.Go("main", func(p *sim.Proc) {
		if _, err := ex.Execute(p, g); err != nil {
			t.Error(err)
		}
	})
	env.Run()
	if !childRan {
		t.Error("dynamically submitted task never ran")
	}
}

func TestSubmitBeforeExecuteFails(t *testing.T) {
	_, rt := testRT(6, false)
	ex := NewExecutor(rt)
	env := rt.Env()
	if _, err := ex.Submit(env, &Task{Name: "x", Fn: "f"}); err == nil {
		t.Error("Submit before Execute accepted")
	}
}

func TestPipelineHelperValidation(t *testing.T) {
	if _, err := Pipeline([]string{"a"}, []string{"f", "g"}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := Pipeline(nil, nil); err == nil {
		t.Error("empty pipeline accepted")
	}
	g, err := Pipeline([]string{"a", "b"}, []string{"f", "g"})
	if err != nil || g.Len() != 2 {
		t.Fatalf("Pipeline = %v, %v", g, err)
	}
}

func TestTaskRetriesRecoverTransientFailures(t *testing.T) {
	env, rt := testRT(7, false)
	failures := 2
	if err := rt.Register(&faas.Function{Name: "flaky", Kind: platform.Wasm,
		Handler: func(inv *faas.Invocation) error {
			if failures > 0 {
				failures--
				return errors.New("transient")
			}
			return nil
		}}); err != nil {
		t.Fatal(err)
	}
	g := NewGraph()
	_ = g.Add(&Task{Name: "a", Fn: "flaky", Retries: 3})
	ex := NewExecutor(rt)
	var results map[string]*Result
	env.Go("main", func(p *sim.Proc) {
		var err error
		results, err = ex.Execute(p, g)
		if err != nil {
			t.Errorf("Execute with retries failed: %v", err)
		}
	})
	env.Run()
	if results["a"].Attempts != 2 {
		t.Errorf("Attempts = %d, want 2", results["a"].Attempts)
	}
}

func TestTaskRetriesExhausted(t *testing.T) {
	env, rt := testRT(8, false)
	if err := rt.Register(&faas.Function{Name: "dead", Kind: platform.Wasm,
		Handler: func(*faas.Invocation) error { return errors.New("always") }}); err != nil {
		t.Fatal(err)
	}
	g := NewGraph()
	_ = g.Add(&Task{Name: "a", Fn: "dead", Retries: 2})
	ex := NewExecutor(rt)
	env.Go("main", func(p *sim.Proc) {
		results, err := ex.Execute(p, g)
		if err == nil {
			t.Error("exhausted retries reported success")
		}
		if results["a"].Attempts != 3 {
			t.Errorf("Attempts = %d, want 3", results["a"].Attempts)
		}
	})
	env.Run()
}

// Package taskgraph implements PCSI task graphs (§3.1): compositions of
// functions whose structure is visible to the system, "which opens up
// optimization opportunities such as pipelining or physical co-location."
//
// Graphs may be specified ahead of time (Cloudburst-style) or grown
// dynamically from running tasks (Ray/Ciel-style) via Executor.Submit.
// The executor runs every task whose dependencies have completed, so
// independent branches pipeline naturally, and passes each task a
// placement hint pointing at the node its first dependency ran on.
package taskgraph

import (
	"errors"
	"fmt"

	"repro/internal/faas"
	"repro/internal/fault"
	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Errors returned by graph construction and execution. All are structural
// defects in the submitted graph — fatal, since resubmitting the same
// shape can never succeed.
var (
	ErrCycle     = fault.Fatal("taskgraph: dependency cycle")
	ErrDupTask   = fault.Fatal("taskgraph: duplicate task name")
	ErrUnknown   = fault.Fatal("taskgraph: unknown dependency")
	ErrNotLinear = fault.Fatal("taskgraph: graph is not a linear pipeline")
)

// Task is one node in a graph.
type Task struct {
	Name string
	// Fn names the registered function to invoke.
	Fn string
	// Body is the pass-by-value argument.
	Body []byte
	// After lists dependency task names.
	After []string
	// Colocate asks the executor to hint placement near the first
	// dependency's execution node.
	Colocate bool
	// PreferGPUNode hints placement onto a GPU-equipped node even for
	// CPU work, anticipating an accelerator-bound consumer (§4.1).
	PreferGPUNode bool
	// Retries re-invokes the task on failure (preempted scavenged
	// instances, transient handler errors) up to this many extra times.
	Retries int
}

// Graph is a DAG of tasks.
type Graph struct {
	tasks map[string]*Task
	order []string
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{tasks: make(map[string]*Task)} }

// Add inserts a task. Dependencies may be added in any order but must all
// exist by Execute time.
func (g *Graph) Add(t *Task) error {
	if t.Name == "" || t.Fn == "" {
		return errors.New("taskgraph: task needs a name and function")
	}
	if _, dup := g.tasks[t.Name]; dup {
		return fmt.Errorf("%w: %q", ErrDupTask, t.Name)
	}
	g.tasks[t.Name] = t
	g.order = append(g.order, t.Name)
	return nil
}

// Len returns the number of tasks.
func (g *Graph) Len() int { return len(g.tasks) }

// Validate checks that dependencies exist and the graph is acyclic,
// returning a topological order.
func (g *Graph) Validate() ([]string, error) {
	indeg := make(map[string]int, len(g.tasks))
	out := make(map[string][]string, len(g.tasks))
	for name, t := range g.tasks {
		if _, ok := indeg[name]; !ok {
			indeg[name] = 0
		}
		for _, dep := range t.After {
			if _, ok := g.tasks[dep]; !ok {
				return nil, fmt.Errorf("%w: %q needs %q", ErrUnknown, name, dep)
			}
			indeg[name]++
			out[dep] = append(out[dep], name)
		}
	}
	var topo []string
	var ready []string
	for _, name := range g.order { // deterministic order
		if indeg[name] == 0 {
			ready = append(ready, name)
		}
	}
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		topo = append(topo, n)
		for _, m := range out[n] {
			indeg[m]--
			if indeg[m] == 0 {
				ready = append(ready, m)
			}
		}
	}
	if len(topo) != len(g.tasks) {
		return nil, ErrCycle
	}
	return topo, nil
}

// Result records one task's execution.
type Result struct {
	Task     *Task
	Instance *faas.Instance
	Start    sim.Time
	End      sim.Time
	Err      error
	// Attempts counts failed tries before the recorded outcome.
	Attempts int
	// Span is the task's trace span, or 0 when tracing was off. Dependent
	// tasks link their spans to it, giving the trace the graph's causal
	// edges.
	Span trace.SpanID
}

// Executor runs graphs on a FaaS runtime.
type Executor struct {
	rt *faas.Runtime
	// Ctx is passed through to every invocation (PCSI data context).
	Ctx any
	// MakeCtx, when set, builds a per-task context (overrides Ctx).
	MakeCtx func(t *Task) any
	// Retry, when set, replaces the naive immediate-retry loop with a
	// bound policy (backoff, deadline, error classification) for every
	// task invocation. Task.Retries is ignored in that case.
	Retry *fault.Policy
	// QoS, when set, gates each task launch through the admission
	// controller (qos.ClassTask) — a concurrency budget separate from the
	// per-invocation class, so graph fan-out is bounded before it floods
	// the invoke path. Overload sheds surface as task errors.
	QoS *qos.Controller
	// Tenant names the workload for QoS admission and propagates into
	// each task's placement hints.
	Tenant string

	results map[string]*Result
	done    map[string]*sim.Event
	graph   *Graph
	gspan   trace.SpanID // current graph/run span; task spans parent here
}

// NewExecutor returns an executor over rt.
func NewExecutor(rt *faas.Runtime) *Executor {
	return &Executor{rt: rt}
}

// Execute runs the whole graph from the calling process, returning
// per-task results. Tasks run as soon as their dependencies finish.
func (e *Executor) Execute(p *sim.Proc, g *Graph) (map[string]*Result, error) {
	if _, err := g.Validate(); err != nil {
		return nil, err
	}
	env := p.Env()
	e.graph = g
	e.results = make(map[string]*Result, g.Len())
	e.done = make(map[string]*sim.Event, g.Len())
	gsp := trace.Of(env).Start(p, "graph", "run", trace.Int("tasks", int64(g.Len())))
	e.gspan = gsp.SpanID()
	for _, name := range g.order {
		e.done[name] = env.NewEvent()
	}
	for _, name := range g.order {
		t := g.tasks[name]
		env.Go("task:"+t.Name, func(tp *sim.Proc) { e.runTask(tp, t) })
	}
	// Wait for every task.
	var firstErr error
	for _, name := range g.order {
		if _, err := p.Wait(e.done[name]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, r := range e.results {
		if r.Err != nil && firstErr == nil {
			firstErr = r.Err
		}
	}
	gsp.Close(p)
	return e.results, firstErr
}

// runTask waits for dependencies, computes hints, and invokes. When traced,
// the dependency waits become root "task/wait" spans (queueing time, kept
// out of the graph span's attribution) and the execution becomes a "task"
// span parented under the graph/run span with causal links to every
// dependency's span.
func (e *Executor) runTask(p *sim.Proc, t *Task) {
	tr := trace.Of(p.Env())
	hints := faas.PlacementHints{PreferGPUNode: t.PreferGPUNode, Tenant: e.Tenant}
	var links []trace.SpanID
	for i, dep := range t.After {
		wsp := tr.Start(p, "task.wait", "wait:"+dep)
		v, err := p.Wait(e.done[dep])
		wsp.Close(p)
		r, _ := v.(*Result)
		if err == nil && r != nil && r.Err != nil {
			err = r.Err
		}
		if err != nil {
			e.finish(t, &Result{Task: t, Err: fmt.Errorf("taskgraph: dependency %q failed: %w", dep, err)})
			return
		}
		if r != nil && r.Span != 0 {
			links = append(links, r.Span)
		}
		if i == 0 && t.Colocate && r != nil && r.Instance != nil {
			hints.NearNode = r.Instance.Node.ID
			hints.HasNear = true
		}
	}
	// Dependencies resolved: ask the task class for admission. Shed tasks
	// fail cleanly (dependents see the overload error) instead of piling
	// onto the invoke path.
	grant, qerr := e.QoS.Admit(p, qos.Request{Tenant: e.Tenant, Class: qos.ClassTask})
	if qerr != nil {
		e.finish(t, &Result{Task: t, Err: fmt.Errorf("taskgraph: %q rejected: %w", t.Name, qerr)})
		return
	}
	defer grant.Release()
	res := &Result{Task: t, Start: p.Now()}
	tsp := tr.StartSpan(p, e.gspan, links, "task", t.Name, trace.Str("fn", t.Fn))
	ctx := e.Ctx
	if e.MakeCtx != nil {
		ctx = e.MakeCtx(t)
	}
	var inst *faas.Instance
	var err error
	if e.Retry != nil {
		err = e.Retry.Do(p, "task:"+t.Name, func() error {
			var ierr error
			inst, ierr = e.rt.Invoke(p, t.Fn, t.Body, hints, ctx)
			if ierr != nil {
				res.Attempts++
			}
			return ierr
		})
	} else {
		for attempt := 0; attempt <= t.Retries; attempt++ {
			inst, err = e.rt.Invoke(p, t.Fn, t.Body, hints, ctx)
			if err == nil {
				break
			}
			res.Attempts++
		}
	}
	if res.Attempts > 0 {
		tsp.Annotate(trace.Int("retries", int64(res.Attempts)))
	}
	tsp.Close(p)
	res.Span = tsp.SpanID()
	res.Instance = inst
	res.End = p.Now()
	res.Err = err
	e.finish(t, res)
}

func (e *Executor) finish(t *Task, r *Result) {
	e.results[t.Name] = r
	e.done[t.Name].Complete(r)
}

// Submit dynamically adds a task to a running graph (Ray/Ciel-style) and
// returns its completion event. The task may depend on any task already
// in the graph. Call from within a handler via the executor captured in
// the invocation context.
func (e *Executor) Submit(env *sim.Env, t *Task) (*sim.Event, error) {
	if e.graph == nil {
		return nil, errors.New("taskgraph: Submit before Execute")
	}
	for _, dep := range t.After {
		if _, ok := e.done[dep]; !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknown, dep)
		}
	}
	if err := e.graph.Add(t); err != nil {
		return nil, err
	}
	ev := env.NewEvent()
	e.done[t.Name] = ev
	env.Go("task:"+t.Name, func(tp *sim.Proc) { e.runTask(tp, t) })
	return ev, nil
}

// Pipeline builds a linear chain of tasks, each colocated with its
// predecessor — the Figure 2 shape.
func Pipeline(names []string, fns []string) (*Graph, error) {
	if len(names) != len(fns) || len(names) == 0 {
		return nil, errors.New("taskgraph: names and fns must align")
	}
	g := NewGraph()
	for i := range names {
		t := &Task{Name: names[i], Fn: fns[i], Colocate: true}
		if i > 0 {
			t.After = []string{names[i-1]}
		}
		if err := g.Add(t); err != nil {
			return nil, err
		}
	}
	return g, nil
}

package trace

import (
	"encoding/json"
	"io"
	"sort"
)

// The exporter writes Chrome trace_event format JSON: an object with a
// "traceEvents" array that chrome://tracing and Perfetto load directly.
// Each Run becomes one process (pid), each Track one thread (tid), spans
// become "X" complete events, instants "i" events, and causal links flow
// ("s"/"f") event pairs. Everything is emitted in a fixed order and
// encoding/json sorts map keys, so equal Data yields byte-identical output.

type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`  // instant scope
	BP   string         `json:"bp,omitempty"` // flow binding point
	ID   *SpanID        `json:"id,omitempty"` // flow event id
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// micros converts virtual nanoseconds to the microsecond float the trace
// format expects; int64 nanosecond counts up to 2^53 round-trip exactly.
func micros(ns int64) float64 { return float64(ns) / 1e3 }

// Export writes d as Chrome trace_event JSON. The output is deterministic:
// runs in order, spans sorted by (start, creation order), tids assigned by
// first appearance, metadata first.
func Export(w io.Writer, d *Data) error {
	f := &traceFile{DisplayTimeUnit: "ns", TraceEvents: []traceEvent{}}
	for i, run := range d.Runs {
		pid := i + 1
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": run.Label},
		})
		spans := append([]*Span(nil), run.Spans...)
		sort.Slice(spans, func(a, b int) bool {
			if spans[a].Start != spans[b].Start {
				return spans[a].Start < spans[b].Start
			}
			return spans[a].seq < spans[b].seq
		})
		tids := make(map[string]int)
		for _, s := range spans {
			if _, ok := tids[s.Track]; !ok {
				tid := len(tids) + 1
				tids[s.Track] = tid
				f.TraceEvents = append(f.TraceEvents, traceEvent{
					Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
					Args: map[string]any{"name": s.Track},
				})
			}
		}
		for _, s := range spans {
			ev := traceEvent{
				Name: s.Name, Cat: s.Cat, Ts: micros(int64(s.Start)),
				Pid: pid, Tid: tids[s.Track], Args: spanArgs(s),
			}
			if s.Instant {
				ev.Ph, ev.S = "i", "t"
			} else {
				ev.Ph = "X"
				dur := micros(int64(s.End - s.Start))
				ev.Dur = &dur
			}
			f.TraceEvents = append(f.TraceEvents, ev)
		}
		// Causal links as flow arrows: one s/f pair per (producer,
		// consumer) edge, emitted in consumer span order.
		byID := make(map[SpanID]*Span, len(spans))
		for _, s := range spans {
			byID[s.ID] = s
		}
		for _, s := range spans {
			for _, link := range s.Links {
				from, ok := byID[link]
				if !ok {
					continue
				}
				id := from.ID
				f.TraceEvents = append(f.TraceEvents,
					traceEvent{
						Name: "dep", Cat: "flow", Ph: "s", Ts: micros(int64(from.End)),
						Pid: pid, Tid: tids[from.Track], ID: &id,
					},
					traceEvent{
						Name: "dep", Cat: "flow", Ph: "f", BP: "e", Ts: micros(int64(s.Start)),
						Pid: pid, Tid: tids[s.Track], ID: &id,
					})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// spanArgs renders a span's identity and attributes as the event's args.
// encoding/json emits map keys sorted, keeping the output deterministic.
func spanArgs(s *Span) map[string]any {
	args := map[string]any{"span": uint64(s.ID)}
	if s.Parent != 0 {
		args["parent"] = uint64(s.Parent)
	}
	for _, a := range s.Attrs {
		args[a.Key] = a.Value
	}
	return args
}

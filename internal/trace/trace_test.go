package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// Local Metric implementors: the real metrics package lives beside trace in
// the substrate tier, and trace itself may only import internal/sim.
type fakeCounter struct{ name string }

func (c *fakeCounter) Name() string { return c.name }

type fakeHistogram struct{ name string }

func (h *fakeHistogram) Name() string { return h.name }

// collect brackets fn with a fresh collector and returns its data.
func collect(t *testing.T, fn func()) *Data {
	t.Helper()
	c := StartCollecting()
	defer c.Stop()
	fn()
	return c.Data()
}

func TestOfWithoutCollectorIsNil(t *testing.T) {
	env := sim.NewEnv(1)
	if tr := Of(env); tr != nil {
		t.Fatalf("Of with no active collector = %v, want nil", tr)
	}
	if tr := Of(nil); tr != nil {
		t.Fatalf("Of(nil) = %v, want nil", tr)
	}
}

func TestNilSafety(t *testing.T) {
	// Every instrumentation-facing method must be a no-op on nil.
	var tr *Tracer
	tr.SetLabel("x")
	tr.Instant("track", "cat", "name")
	if sp := tr.Mark("track", "cat", "name", 0, 1); sp != nil {
		t.Fatalf("nil tracer Mark = %v, want nil", sp)
	}
	env := sim.NewEnv(1)
	env.Go("p", func(p *sim.Proc) {
		sp := tr.Start(p, "cat", "name")
		if sp != nil {
			t.Errorf("nil tracer Start = %v, want nil", sp)
		}
		sp.Annotate(Str("k", "v"))
		sp.Close(p)
		if id := sp.SpanID(); id != 0 {
			t.Errorf("nil span SpanID = %d, want 0", id)
		}
	})
	env.Run()
}

func TestNestingAndTrackInheritance(t *testing.T) {
	var outer, inner, root *Span
	d := collect(t, func() {
		env := sim.NewEnv(1)
		env.Go("driver", func(p *sim.Proc) {
			tr := Of(env)
			outer = tr.Start(p, "a", "outer")
			p.Sleep(10 * time.Millisecond)
			inner = tr.Start(p, "b", "inner")
			if got := Current(p); got != inner {
				t.Errorf("Current = %v, want inner", got)
			}
			p.Sleep(5 * time.Millisecond)
			inner.Close(p)
			if got := Current(p); got != outer {
				t.Errorf("after inner close Current = %v, want outer", got)
			}
			root = tr.StartSpan(p, NoParent, nil, "c", "root")
			root.Close(p)
			outer.Close(p)
		})
		env.Run()
	})
	if inner.Parent != outer.ID {
		t.Errorf("inner.Parent = %d, want outer %d", inner.Parent, outer.ID)
	}
	if inner.Track != "driver" || outer.Track != "driver" {
		t.Errorf("tracks = %q/%q, want driver", inner.Track, outer.Track)
	}
	if root.Parent != 0 {
		t.Errorf("NoParent span Parent = %d, want 0", root.Parent)
	}
	if got := inner.Duration(); got != 5*time.Millisecond {
		t.Errorf("inner duration = %v, want 5ms", got)
	}
	if len(d.Runs) != 1 || len(d.Runs[0].Spans) != 3 {
		t.Fatalf("collected %+v, want 1 run with 3 spans", d)
	}
}

// TestDataClosesOpenSpans leaks a span on purpose to prove Data closes
// still-open spans at collection time.
//
//pcsi:allow spanleak the leak is the behavior under test
func TestDataClosesOpenSpans(t *testing.T) {
	d := collect(t, func() {
		env := sim.NewEnv(1)
		env.Go("p", func(p *sim.Proc) {
			Of(env).Start(p, "cat", "leaked")
			p.Sleep(time.Millisecond)
		})
		env.Run()
	})
	s := d.Runs[0].Spans[0]
	if s.open {
		t.Fatal("Data left span open")
	}
	if s.End.Sub(s.Start) != time.Millisecond {
		t.Fatalf("leaked span closed at %v after start, want 1ms (env final time)", s.End.Sub(s.Start))
	}
}

func TestDoubleCollectorPanics(t *testing.T) {
	c := StartCollecting()
	defer c.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("second StartCollecting did not panic")
		}
	}()
	StartCollecting()
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	h := &fakeHistogram{name: "lat"}
	c := &fakeCounter{name: "ops"}
	r.Register(h)
	r.Register(c)
	r.Register(nil) // no-op
	if got := r.Names(); len(got) != 2 || got[0] != "lat" || got[1] != "ops" {
		t.Fatalf("Names = %v, want [lat ops]", got)
	}
	if r.Get("lat") != Metric(h) {
		t.Fatal("Get(lat) did not return the registered histogram")
	}
	if got := Lookup[*fakeCounter](r, "ops"); got != c {
		t.Fatalf("Lookup[*fakeCounter](ops) = %v, want %v", got, c)
	}
	if got := Lookup[*fakeCounter](r, "lat"); got != nil {
		t.Fatalf("Lookup with wrong type = %v, want nil", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	r.Register(&fakeCounter{name: "ops"})
}

// runWorkload drives a small two-process workload and returns its trace.
func runWorkload(t *testing.T, seed int64) *Data {
	return collect(t, func() {
		env := sim.NewEnv(seed)
		tr := Of(env)
		tr.SetLabel("workload")
		done := env.NewEvent()
		var firstID SpanID
		env.Go("producer", func(p *sim.Proc) {
			sp := tr.Start(p, "stage", "produce", Int("n", 3))
			p.Sleep(time.Duration(1+env.Rand().Intn(5)) * time.Millisecond)
			sp.Close(p)
			firstID = sp.ID
			done.Complete(nil)
		})
		env.Go("consumer", func(p *sim.Proc) {
			p.Wait(done)
			sp := tr.StartSpan(p, 0, []SpanID{firstID}, "stage", "consume")
			p.Sleep(2 * time.Millisecond)
			sp.Close(p)
		})
		tr.Instant("events", "mark", "tick")
		env.Run()
	})
}

func TestExportDeterministic(t *testing.T) {
	var bufs [2]bytes.Buffer
	for i := range bufs {
		if err := Export(&bufs[i], runWorkload(t, 7)); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatalf("same seed produced different exports:\n%s\n--\n%s", bufs[0].String(), bufs[1].String())
	}
	var f struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(bufs[0].Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("export has no traceEvents")
	}
	phases := make(map[string]int)
	for _, ev := range f.TraceEvents {
		phases[ev["ph"].(string)]++
	}
	// 1 process + 3 thread metadata, 2 X spans, 1 instant, 1 flow pair.
	for ph, want := range map[string]int{"M": 4, "X": 2, "i": 1, "s": 1, "f": 1} {
		if phases[ph] != want {
			t.Errorf("ph %q count = %d, want %d (all: %v)", ph, phases[ph], want, phases)
		}
	}
}

func TestSpanIDsDifferAcrossSeeds(t *testing.T) {
	a := runWorkload(t, 1).Runs[0].Spans[0].ID
	b := runWorkload(t, 2).Runs[0].Spans[0].ID
	if a == b {
		t.Fatalf("span IDs identical across seeds (%d): not drawn from the seeded observer stream", a)
	}
}

// mkSpan builds a closed synthetic span for analyzer tests.
func mkSpan(id, parent SpanID, seq int, cat, name, track string, start, end time.Duration, links ...SpanID) *Span {
	return &Span{
		ID: id, Parent: parent, Links: links, Cat: cat, Name: name,
		Track: track, Start: sim.Time(start), End: sim.Time(end), seq: seq,
	}
}

func TestCriticalPathLinearChain(t *testing.T) {
	// Three sequential ops on one track: the chain covers everything.
	run := Run{Label: "lin", Spans: []*Span{
		mkSpan(1, 0, 0, "net", "a", "t", 0, 10*time.Millisecond),
		mkSpan(2, 0, 1, "core.data", "b", "t", 10*time.Millisecond, 30*time.Millisecond),
		mkSpan(3, 0, 2, "net", "c", "t", 30*time.Millisecond, 40*time.Millisecond),
	}}
	rep := CriticalPath(run)
	if len(rep.Chain) != 3 {
		t.Fatalf("chain length = %d, want 3", len(rep.Chain))
	}
	if rep.Coverage() != 1 {
		t.Fatalf("coverage = %v, want 1", rep.Coverage())
	}
	want := map[string]time.Duration{"net": 20 * time.Millisecond, "core.data": 20 * time.Millisecond}
	for _, c := range rep.Components {
		if want[c.Cat] != c.Total {
			t.Errorf("component %s = %v, want %v", c.Cat, c.Total, want[c.Cat])
		}
		delete(want, c.Cat)
	}
	if len(want) != 0 {
		t.Errorf("missing components: %v", want)
	}
}

func TestCriticalPathFollowsLinks(t *testing.T) {
	// Fork/join: join links to both branches; the longer branch (slow, on
	// its own track) must be chosen over the same-track short one.
	run := Run{Label: "fork", Spans: []*Span{
		mkSpan(1, 0, 0, "net", "start", "t1", 0, 5*time.Millisecond),
		mkSpan(2, 0, 1, "task", "fast", "t1", 5*time.Millisecond, 10*time.Millisecond, 1),
		mkSpan(3, 0, 2, "task", "slow", "t2", 5*time.Millisecond, 40*time.Millisecond, 1),
		mkSpan(4, 0, 3, "task", "join", "t1", 40*time.Millisecond, 50*time.Millisecond, 2, 3),
	}}
	rep := CriticalPath(run)
	names := make([]string, len(rep.Chain))
	for i, s := range rep.Chain {
		names[i] = s.Name
	}
	if got := strings.Join(names, ">"); got != "start>slow>join" {
		t.Fatalf("chain = %s, want start>slow>join", got)
	}
	if rep.Coverage() != 1 {
		t.Fatalf("coverage = %v, want 1", rep.Coverage())
	}
}

func TestCriticalPathSelfTimeAttribution(t *testing.T) {
	// A parent mostly covered by a child charges only its self-time.
	run := Run{Label: "nest", Spans: []*Span{
		mkSpan(1, 0, 0, "faas", "invoke", "t", 0, 100*time.Millisecond),
		mkSpan(2, 1, 1, "fn", "handler", "t", 10*time.Millisecond, 90*time.Millisecond),
	}}
	rep := CriticalPath(run)
	got := make(map[string]time.Duration)
	for _, c := range rep.Components {
		got[c.Cat] = c.Total
	}
	if got["faas"] != 20*time.Millisecond || got["fn"] != 80*time.Millisecond {
		t.Fatalf("attribution = %v, want faas=20ms fn=80ms", got)
	}
}

func TestCriticalPathEmptyAndInstantOnly(t *testing.T) {
	rep := CriticalPath(Run{Label: "empty"})
	if len(rep.Chain) != 0 || rep.Coverage() != 1 {
		t.Fatalf("empty run report = %+v, want empty chain, coverage 1", rep)
	}
	inst := &Span{ID: 1, Cat: "c", Name: "n", Instant: true}
	rep = CriticalPath(Run{Label: "inst", Spans: []*Span{inst}})
	if len(rep.Chain) != 0 {
		t.Fatalf("instant-only run chain = %v, want empty", rep.Chain)
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	if !strings.Contains(buf.String(), "no timed spans") {
		t.Fatalf("Render of empty report = %q", buf.String())
	}
}

func TestMerge(t *testing.T) {
	a := &Data{Runs: []Run{{Label: "a"}}}
	b := &Data{Runs: []Run{{Label: "b"}, {Label: "c"}}}
	m := Merge(a, nil, b)
	if len(m.Runs) != 3 || m.Runs[0].Label != "a" || m.Runs[2].Label != "c" {
		t.Fatalf("Merge = %+v", m.Runs)
	}
}

package trace

import (
	"fmt"
	"sort"
)

// Metric is anything a Registry can own: the metrics package's Histogram,
// Counter, and Gauge all satisfy it. The registry holds metrics behind this
// interface so internal/trace itself depends only on internal/sim and the
// standard library, as the layering invariant requires.
type Metric interface {
	Name() string
}

// Registry is a unified directory of named metrics. Components construct
// their histograms/counters/gauges as before but register them here, so
// every metric of a simulated system is enumerable from one place instead
// of being scattered across struct fields.
type Registry struct {
	byName map[string]Metric
	names  []string // registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Metric)}
}

// Register adds a metric under its own name and returns it. Registering two
// metrics with the same name is a programming error and panics; nil
// registries and nil metrics are ignored so optional instrumentation can
// register unconditionally.
func (r *Registry) Register(m Metric) Metric {
	if r == nil || m == nil {
		return m
	}
	name := m.Name()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("trace: metric %q registered twice", name))
	}
	r.byName[name] = m
	r.names = append(r.names, name)
	return m
}

// Get returns the metric registered under name, or nil.
func (r *Registry) Get(name string) Metric {
	if r == nil {
		return nil
	}
	return r.byName[name]
}

// Names returns the registered names in sorted order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	out := append([]string(nil), r.names...)
	sort.Strings(out)
	return out
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.byName)
}

// Each calls fn for every metric in sorted name order.
func (r *Registry) Each(fn func(Metric)) {
	for _, name := range r.Names() {
		fn(r.byName[name])
	}
}

// Lookup fetches the metric registered under name as a concrete type,
// returning the zero value when absent or of a different type.
func Lookup[T Metric](r *Registry, name string) T {
	m, _ := r.Get(name).(T)
	return m
}

package trace

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/sim"
)

// The critical-path analyzer walks one run's span DAG backwards from the
// span that finishes last, chaining through causal links where present and
// otherwise through the preceding sibling on the same track, and then
// attributes the chain's virtual time to component categories by recursive
// self-time: a span's own category is charged its duration minus the time
// covered by its children, so e.g. a graph.run span that is mostly task
// spans charges "task" and "net" rather than "graph".

// Component is the virtual time attributed to one span category on the
// critical path.
type Component struct {
	Cat   string
	Total time.Duration
}

// PathReport is the result of CriticalPath over one run.
type PathReport struct {
	Label      string
	Chain      []*Span // critical path, earliest first
	Start, End sim.Time
	Spans      int // non-instant spans considered
	Components []Component
	// Attributed is the part of [Start,End] covered by chain spans (and
	// hence decomposed into Components); Unattributed is the gap time.
	Attributed   time.Duration
	Unattributed time.Duration
}

// Coverage returns the fraction of end-to-end virtual time attributed to
// named spans, in [0,1]; an empty report covers 1 (nothing to attribute).
func (r *PathReport) Coverage() float64 {
	total := r.End.Sub(r.Start)
	if total <= 0 {
		return 1
	}
	return float64(r.Attributed) / float64(total)
}

// CriticalPath analyzes one run's spans. Instant spans are skipped; an
// empty run yields an empty report.
func CriticalPath(run Run) *PathReport {
	rep := &PathReport{Label: run.Label}
	var spans []*Span
	for _, s := range run.Spans {
		if !s.Instant {
			spans = append(spans, s)
		}
	}
	rep.Spans = len(spans)
	if len(spans) == 0 {
		return rep
	}
	byID := make(map[SpanID]*Span, len(spans))
	children := make(map[SpanID][]*Span)
	for _, s := range spans {
		byID[s.ID] = s
	}
	for _, s := range spans {
		if s.Parent != 0 && byID[s.Parent] != nil {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	for _, cs := range children {
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].Start != cs[j].Start {
				return cs[i].Start < cs[j].Start
			}
			return cs[i].seq < cs[j].seq
		})
	}
	// The chain ends at the span finishing last (earliest-created on ties,
	// which prefers the outermost of simultaneously-closing spans), lifted
	// to its outermost ancestor so the walk stays at one altitude.
	last := spans[0]
	for _, s := range spans[1:] {
		if s.End > last.End || (s.End == last.End && s.seq < last.seq) {
			last = s
		}
	}
	top := func(s *Span) *Span {
		for s.Parent != 0 && byID[s.Parent] != nil {
			s = byID[s.Parent]
		}
		return s
	}
	cur := top(last)
	chain := []*Span{cur}
	for len(chain) <= len(spans) {
		pred := predecessor(cur, spans, byID)
		if pred == nil {
			break
		}
		pred = top(pred)
		if pred == cur {
			break
		}
		chain = append(chain, pred)
		cur = pred
	}
	// Reverse into chronological order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	rep.Chain = chain
	rep.Start, rep.End = chain[0].Start, chain[len(chain)-1].End

	// Attribution: recursive self-time per category over the chain spans,
	// plus overlap-clamped coverage of the [Start,End] window.
	acc := make(map[string]time.Duration)
	for _, s := range chain {
		attribute(s, children, acc)
	}
	cursor := rep.Start
	var covered time.Duration
	for _, s := range chain {
		st, en := s.Start, s.End
		if st < cursor {
			st = cursor
		}
		if en > st {
			covered += en.Sub(st)
			cursor = en
		}
	}
	rep.Attributed = covered
	rep.Unattributed = rep.End.Sub(rep.Start) - covered
	for cat, d := range acc {
		if d > 0 {
			rep.Components = append(rep.Components, Component{Cat: cat, Total: d})
		}
	}
	sort.Slice(rep.Components, func(i, j int) bool {
		if rep.Components[i].Total != rep.Components[j].Total {
			return rep.Components[i].Total > rep.Components[j].Total
		}
		return rep.Components[i].Cat < rep.Components[j].Cat
	})
	return rep
}

// predecessor picks the span causally before cur: the latest-finishing
// linked span if cur (or its latest-ending descendant chain) declares
// links, otherwise the latest span on the same track and altitude that
// ends at or before cur starts.
func predecessor(cur *Span, spans []*Span, byID map[SpanID]*Span) *Span {
	var best *Span
	for _, link := range cur.Links {
		if s := byID[link]; s != nil {
			if best == nil || s.End > best.End || (s.End == best.End && s.seq < best.seq) {
				best = s
			}
		}
	}
	if best != nil {
		return best
	}
	for _, s := range spans {
		if s == cur || s.Track != cur.Track || s.Parent != cur.Parent || s.End > cur.Start {
			continue
		}
		if best == nil || s.End > best.End || (s.End == best.End && s.seq > best.seq) {
			best = s
		}
	}
	return best
}

// attribute charges s's category its self-time (duration minus children
// cover, clamped at zero) and recurses into the children.
func attribute(s *Span, children map[SpanID][]*Span, acc map[string]time.Duration) {
	var covered time.Duration
	for _, c := range children[s.ID] {
		attribute(c, children, acc)
		covered += c.Duration()
	}
	self := s.Duration() - covered
	if self < 0 {
		self = 0
	}
	acc[s.Cat] += self
}

// Render writes a human-readable critical-path report.
func (r *PathReport) Render(w io.Writer) {
	fmt.Fprintf(w, "== critical path: %s ==\n", r.Label)
	if len(r.Chain) == 0 {
		fmt.Fprintf(w, "   no timed spans\n")
		return
	}
	total := r.End.Sub(r.Start)
	fmt.Fprintf(w, "   end-to-end: %v across %d spans (chain length %d)\n",
		total, r.Spans, len(r.Chain))
	fmt.Fprintf(w, "   component attribution:\n")
	for _, c := range r.Components {
		fmt.Fprintf(w, "     %-12s %12v  %5.1f%%\n", c.Cat, c.Total, pct(c.Total, total))
	}
	if r.Unattributed > 0 {
		fmt.Fprintf(w, "     %-12s %12v  %5.1f%%\n", "(gaps)", r.Unattributed, pct(r.Unattributed, total))
	}
	fmt.Fprintf(w, "   coverage: %.1f%% of end-to-end virtual time attributed to named spans\n",
		100*r.Coverage())
	n := len(r.Chain)
	show := n
	if show > 8 {
		show = 8
	}
	fmt.Fprintf(w, "   chain head:\n")
	for _, s := range r.Chain[:show] {
		fmt.Fprintf(w, "     +%-12v %s/%s (%v)\n",
			s.Start.Sub(r.Start), s.Cat, s.Name, s.Duration())
	}
	if n > show {
		fmt.Fprintf(w, "     ... %d more\n", n-show)
	}
}

func pct(part, whole time.Duration) float64 {
	if whole <= 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

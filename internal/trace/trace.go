// Package trace is a deterministic, virtual-time span tracer for the
// simulation engine. Spans carry sim.Time start/end stamps, a parent span
// ID, causal links, and key/value attributes; no wall clock is ever read,
// so the package satisfies the simtime invariant by construction, and span
// IDs are drawn from a per-environment observer rand stream (sim.Env.
// ObserverRand) rather than a global counter, so two runs with the same
// seed produce byte-identical traces.
//
// Tracing is opt-in per process: instrumentation calls trace.Of(env), which
// returns nil unless a Collector is active, and every method is safe on a
// nil Tracer or nil Span. An untraced run therefore pays only a nil check
// and — because ObserverRand does not touch the environment's fork counter —
// draws exactly the same random numbers as a traced one.
//
// The package also hosts Registry, a unified directory of named metrics
// (see registry.go), the Chrome trace_event exporter (export.go), and the
// critical-path analyzer (critical.go). It may import only internal/sim and
// the standard library; the layering analyzer enforces this.
package trace

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/sim"
)

// SpanID identifies a span within one exported trace. IDs fit in 32 bits so
// they survive the float64 round-trip of JSON trace viewers. Zero means
// "no span".
type SpanID uint64

// Attr is one key/value annotation on a span. Values are pre-rendered to
// strings so spans stay comparable and the export is trivially
// deterministic.
type Attr struct {
	Key   string
	Value string
}

// Str returns a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int returns an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: fmt.Sprintf("%d", v)} }

// Span is one timed (or instant) interval of virtual time. Fields are
// exported for the exporter and analyzer; instrumentation should only use
// Close and Annotate.
type Span struct {
	ID      SpanID
	Parent  SpanID   // enclosing span, or 0 for a root
	Links   []SpanID // causal predecessors that are not the parent
	Cat     string   // component category ("core.data", "net", "faas", ...)
	Name    string
	Track   string // display lane, normally the opening process's name
	Start   sim.Time
	End     sim.Time
	Attrs   []Attr
	Instant bool // zero-duration point event

	seq  int // creation order within the tracer; tiebreaker everywhere
	open bool
	prev *Span // span context to restore on Close
}

// Close ends the span at the process's current virtual time and pops it
// from the process's span context. Safe on a nil span; closing twice is a
// no-op.
func (s *Span) Close(p *sim.Proc) {
	if s == nil || !s.open {
		return
	}
	s.open = false
	s.End = p.Now()
	if cur, ok := p.SpanCtx().(*Span); ok && cur == s {
		p.SetSpanCtx(s.prev)
	}
}

// Annotate appends attributes to the span. Safe on a nil span.
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, attrs...)
}

// Duration returns End-Start.
func (s *Span) Duration() sim.Duration { return s.End.Sub(s.Start) }

// Tracer records spans for one simulation environment. One tracer maps to
// one process row ("pid") in the Chrome export.
type Tracer struct {
	env   *sim.Env
	label string
	rng   *rand.Rand
	used  map[SpanID]bool
	spans []*Span
}

// Collector gathers the tracers of every environment created while it is
// active. Exactly one collector may be active per process at a time; the
// experiment harness brackets a run with StartCollecting/Stop.
type Collector struct {
	tracers []*Tracer
}

// active is the process-wide collector, or nil when tracing is off. The
// engine's one-process-at-a-time discipline makes unsynchronized access
// safe: environments run sequentially under a single Run loop.
var active *Collector

// StartCollecting turns tracing on and returns the collector that will
// receive every environment's tracer until Stop.
func StartCollecting() *Collector {
	if active != nil {
		panic("trace: a collector is already active")
	}
	active = &Collector{}
	return active
}

// Stop turns tracing off. Already-attached tracers keep their spans; Data
// remains callable.
func (c *Collector) Stop() {
	if active == c {
		active = nil
	}
}

// Data snapshots the collected spans as one run per tracer, in tracer
// creation order. Spans still open (processes aborted at shutdown) are
// closed at their environment's final virtual time.
func (c *Collector) Data() *Data {
	d := &Data{}
	for _, t := range c.tracers {
		for _, s := range t.spans {
			if s.open {
				s.open = false
				s.End = t.env.Now()
				if s.End < s.Start {
					s.End = s.Start
				}
			}
		}
		d.Runs = append(d.Runs, Run{Label: t.label, Spans: t.spans})
	}
	return d
}

// Of returns the tracer attached to env, creating and registering one if a
// collector is active, and nil otherwise. All instrumentation goes through
// Of, so it costs one interface assertion when tracing is off.
func Of(env *sim.Env) *Tracer {
	if env == nil {
		return nil
	}
	if t, ok := env.ObserverContext().(*Tracer); ok {
		return t
	}
	c := active
	if c == nil {
		return nil
	}
	t := &Tracer{
		env:   env,
		label: "run" + strconv.Itoa(len(c.tracers)+1),
		rng:   env.ObserverRand("trace.spanid"),
		used:  make(map[SpanID]bool),
	}
	env.SetObserverContext(t)
	c.tracers = append(c.tracers, t)
	return t
}

// SetLabel names the tracer's process row in the export ("pcsi/colocate",
// "rest", ...). Safe on a nil tracer.
func (t *Tracer) SetLabel(label string) {
	if t == nil {
		return
	}
	t.label = label
}

// Label returns the tracer's display label.
func (t *Tracer) Label() string { return t.label }

// newID draws a fresh nonzero 32-bit span ID from the observer stream,
// retrying the (vanishingly rare) collisions so IDs are unique per tracer.
func (t *Tracer) newID() SpanID {
	for {
		id := SpanID(t.rng.Uint32())
		if id != 0 && !t.used[id] {
			t.used[id] = true
			return id
		}
	}
}

// Start opens a span on process p at the current virtual time, nested under
// the process's current span (if any). Safe on a nil tracer, returning a
// nil span on which Close and Annotate are no-ops.
func (t *Tracer) Start(p *sim.Proc, cat, name string, attrs ...Attr) *Span {
	return t.StartSpan(p, 0, nil, cat, name, attrs...)
}

// StartSpan opens a span with an explicit parent and causal links. A zero
// parent nests under the process's current span; parent == NoParent forces
// a root span even inside an open span context.
func (t *Tracer) StartSpan(p *sim.Proc, parent SpanID, links []SpanID, cat, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		ID:     t.newID(),
		Parent: parent,
		Links:  links,
		Cat:    cat,
		Name:   name,
		Track:  p.Name(),
		Start:  p.Now(),
		Attrs:  attrs,
		seq:    len(t.spans),
		open:   true,
	}
	if cur, ok := p.SpanCtx().(*Span); ok && cur != nil {
		if parent == 0 {
			s.Parent = cur.ID
		}
		s.Track = cur.Track
		s.prev = cur
	}
	if s.Parent == NoParent {
		s.Parent = 0
	}
	t.spans = append(t.spans, s)
	p.SetSpanCtx(s)
	return s
}

// NoParent forces StartSpan to open a root span even when the process has
// an open span context (used for shadow spans like dependency waits that
// must not be attributed under the enclosing span).
const NoParent SpanID = 1<<64 - 1

// Instant records a zero-duration point event on the given display track at
// the environment's current time. Safe on a nil tracer.
func (t *Tracer) Instant(track, cat, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	now := t.env.Now()
	t.spans = append(t.spans, &Span{
		ID:      t.newID(),
		Cat:     cat,
		Name:    name,
		Track:   track,
		Start:   now,
		End:     now,
		Attrs:   attrs,
		Instant: true,
		seq:     len(t.spans),
	})
}

// Mark records a closed span with explicit bounds, outside any process
// context — the experiment harness uses it for the run-level root span.
// Safe on a nil tracer.
func (t *Tracer) Mark(track, cat, name string, start, end sim.Time, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		ID:    t.newID(),
		Cat:   cat,
		Name:  name,
		Track: track,
		Start: start,
		End:   end,
		Attrs: attrs,
		seq:   len(t.spans),
	}
	t.spans = append(t.spans, s)
	return s
}

// Current returns the process's innermost open span, or nil.
func Current(p *sim.Proc) *Span {
	s, _ := p.SpanCtx().(*Span)
	return s
}

// CurrentID returns the ID of the process's innermost open span, or 0.
func CurrentID(p *sim.Proc) SpanID {
	if s := Current(p); s != nil {
		return s.ID
	}
	return 0
}

// SpanID returns the span's ID, or 0 for nil — convenient when recording
// the span of an operation that may not have been traced.
func (s *Span) SpanID() SpanID {
	if s == nil {
		return 0
	}
	return s.ID
}

// Data is the collected output of one traced run: one Run per simulation
// environment, in creation order.
type Data struct {
	Runs []Run
}

// Run is the span set of one environment plus its display label.
type Run struct {
	Label string
	Spans []*Span
}

// Merge concatenates several traced runs into one Data, preserving order —
// used by pcsi-bench -trace to emit a single file across experiments.
func Merge(ds ...*Data) *Data {
	out := &Data{}
	for _, d := range ds {
		if d == nil {
			continue
		}
		out.Runs = append(out.Runs, d.Runs...)
	}
	return out
}

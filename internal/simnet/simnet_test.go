package simnet

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func newNet(t *testing.T, p Profile) (*sim.Env, *Network) {
	t.Helper()
	env := sim.NewEnv(1)
	return env, New(env, p)
}

func TestTopologyFactors(t *testing.T) {
	_, net := newNet(t, DC2021)
	a := net.AddNode(0)
	b := net.AddNode(0)
	c := net.AddNode(1)
	if got := net.RTT(a, a); got != 2*time.Microsecond {
		t.Errorf("loopback RTT = %v, want 2µs", got)
	}
	if got := net.RTT(a, b); got != 100*time.Microsecond {
		t.Errorf("same-rack RTT = %v, want 100µs", got)
	}
	if got := net.RTT(a, c); got != 200*time.Microsecond {
		t.Errorf("cross-rack RTT = %v, want 200µs", got)
	}
}

func TestProfilesMatchTable1(t *testing.T) {
	cases := []struct {
		p    Profile
		want time.Duration
	}{
		{DC2005, time.Millisecond},
		{DC2021, 200 * time.Microsecond},
		{FastNet, time.Microsecond},
	}
	for _, c := range cases {
		if c.p.BaseRTT != c.want {
			t.Errorf("%s BaseRTT = %v, want %v (Table 1)", c.p.Name, c.p.BaseRTT, c.want)
		}
	}
}

func TestOneWayIncludesSerialization(t *testing.T) {
	env := sim.NewEnv(1)
	p := DC2021
	p.JitterFrac = 0 // deterministic for this test
	net := New(env, p)
	a, b := net.AddNode(0), net.AddNode(1)
	small := net.OneWay(a, b, 0)
	big := net.OneWay(a, b, 1<<20) // 1 MiB at 1.25 GB/s ≈ 839µs extra
	extra := big - small
	wantExtra := time.Duration(float64(1<<20) / p.Bandwidth * float64(time.Second))
	if diff := extra - wantExtra; diff > time.Microsecond || diff < -time.Microsecond {
		t.Errorf("serialisation delay = %v, want ≈%v", extra, wantExtra)
	}
}

func TestSendAdvancesClockAndCounts(t *testing.T) {
	env, net := newNet(t, DC2021)
	a, b := net.AddNode(0), net.AddNode(1)
	var took time.Duration
	env.Go("sender", func(p *sim.Proc) {
		start := p.Now()
		net.Send(p, a, b, 1024)
		took = p.Now().Sub(start)
	})
	env.Run()
	if took < 100*time.Microsecond {
		t.Errorf("one-way send took %v, want >= half base RTT", took)
	}
	if net.Msgs != 1 || net.Bytes != 1024 {
		t.Errorf("stats = %d msgs / %d bytes, want 1/1024", net.Msgs, net.Bytes)
	}
}

func TestCallRoundTrip(t *testing.T) {
	env, net := newNet(t, DC2021)
	a, b := net.AddNode(0), net.AddNode(1)
	serverTime := 300 * time.Microsecond
	var rtt time.Duration
	env.Go("client", func(p *sim.Proc) {
		rtt = net.Call(p, a, b, 100, 1024, func(sp *sim.Proc) { sp.Sleep(serverTime) })
	})
	env.Run()
	if rtt < net.RTT(a, b)+serverTime {
		t.Errorf("Call RTT = %v, want >= %v", rtt, net.RTT(a, b)+serverTime)
	}
	if rtt > 2*(net.RTT(a, b)+serverTime) {
		t.Errorf("Call RTT = %v, implausibly large", rtt)
	}
}

func TestJitterBoundedAndDeterministic(t *testing.T) {
	env := sim.NewEnv(42)
	net := New(env, DC2021)
	a, b := net.AddNode(0), net.AddNode(1)
	base := float64(net.RTT(a, b))/2 + float64(net.Profile().PerMsgOverhead)
	for i := 0; i < 1000; i++ {
		d := float64(net.OneWay(a, b, 0))
		if d < base || d > base*(1+net.Profile().JitterFrac)+1 {
			t.Fatalf("OneWay = %v outside jitter bounds [%v, %v]", time.Duration(d), time.Duration(base), time.Duration(base*1.1))
		}
	}
	// Determinism: same seed, same sequence.
	env2 := sim.NewEnv(42)
	net2 := New(env2, DC2021)
	a2, b2 := net2.AddNode(0), net2.AddNode(1)
	if net.OneWay(a, b, 64) == 0 {
		t.Fatal("zero delay")
	}
	x := New(sim.NewEnv(42), DC2021)
	xa, xb := x.AddNode(0), x.AddNode(1)
	for i := 0; i < 10; i++ {
		if net2.OneWay(a2, b2, 64) != x.OneWay(xa, xb, 64) {
			t.Fatal("same seed produced different jitter sequences")
		}
	}
}

func TestFastNetIsFasterThanDC(t *testing.T) {
	envF := sim.NewEnv(1)
	fast := New(envF, FastNet)
	fa, fb := fast.AddNode(0), fast.AddNode(1)
	envD := sim.NewEnv(1)
	slow := New(envD, DC2021)
	sa, sb := slow.AddNode(0), slow.AddNode(1)
	if fast.RTT(fa, fb) >= slow.RTT(sa, sb) {
		t.Errorf("FastNet RTT %v not faster than DC2021 %v", fast.RTT(fa, fb), slow.RTT(sa, sb))
	}
	// The paper's core claim: fast-network RTT (1µs) is far below web
	// service protocol overheads (~50µs).
	if fast.RTT(fa, fb) > 2*time.Microsecond {
		t.Errorf("FastNet cross-rack RTT = %v, want ~1µs", fast.RTT(fa, fb))
	}
}

func TestNodeRegistration(t *testing.T) {
	_, net := newNet(t, DC2021)
	a := net.AddNode(3)
	b := net.AddNode(7)
	if net.Nodes() != 2 {
		t.Errorf("Nodes = %d, want 2", net.Nodes())
	}
	if net.Rack(a) != 3 || net.Rack(b) != 7 {
		t.Errorf("racks = %d,%d want 3,7", net.Rack(a), net.Rack(b))
	}
	if a == b {
		t.Error("AddNode returned duplicate IDs")
	}
}

// Link faults injected through SetLinkFaultFunc: drops retransmit (extra
// latency, counted), duplicates double the traffic accounting, and delay
// spikes add their extra delay. Without a fault func, nothing changes.
func TestLinkFaultsShapeDelivery(t *testing.T) {
	env, net := newNet(t, DC2021)
	a, b := net.AddNode(0), net.AddNode(1)
	var fault LinkFault
	net.SetLinkFaultFunc(func(x, y NodeID, size int) LinkFault { return fault })

	deliver := func(lf LinkFault) time.Duration {
		fault = lf
		var took time.Duration
		env.Go("send", func(p *sim.Proc) {
			start := p.Now()
			net.Send(p, a, b, 1024)
			took = p.Now().Sub(start)
		})
		env.RunUntil(env.Now().Add(time.Second))
		return took
	}

	clean := deliver(LinkFault{})
	msgs, bytes := net.Msgs, net.Bytes

	dropped := deliver(LinkFault{Drop: true})
	if dropped <= clean {
		t.Errorf("dropped delivery took %v, want more than the clean %v (retransmit)", dropped, clean)
	}
	if net.Drops != 1 {
		t.Errorf("Drops = %d, want 1", net.Drops)
	}

	duped := deliver(LinkFault{Duplicate: true})
	if net.Dups != 1 {
		t.Errorf("Dups = %d, want 1", net.Dups)
	}
	if net.Msgs != msgs+3 || net.Bytes != bytes+3*1024 {
		// two sends since the snapshot, one of them duplicated
		t.Errorf("traffic after dup = %d msgs / %d bytes, want %d / %d",
			net.Msgs, net.Bytes, msgs+3, bytes+3*1024)
	}
	_ = duped

	// Per-send jitter means baselines differ between calls; the spike still
	// dominates any jittered base delay.
	spiked := deliver(LinkFault{ExtraDelay: 5 * time.Millisecond})
	if spiked < 5*time.Millisecond {
		t.Errorf("spiked delivery took %v, want ≥ the 5ms spike", spiked)
	}
	if net.Spikes != 1 {
		t.Errorf("Spikes = %d, want 1", net.Spikes)
	}
}

// Reachable defaults to true for every pair until a predicate is installed,
// and reverts when the predicate is removed.
func TestReachableDefaultsTrue(t *testing.T) {
	_, net := newNet(t, DC2021)
	a, b := net.AddNode(0), net.AddNode(1)
	if !net.Reachable(a, b) {
		t.Fatal("pair unreachable with no predicate installed")
	}
	net.SetReachableFunc(func(x, y NodeID) bool { return false })
	if net.Reachable(a, b) {
		t.Fatal("predicate ignored")
	}
	net.SetReachableFunc(nil)
	if !net.Reachable(a, b) {
		t.Fatal("removing the predicate did not restore reachability")
	}
}

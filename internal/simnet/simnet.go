// Package simnet models a warehouse-scale datacenter network on top of the
// sim engine.
//
// Latency is composed of a base round-trip time (calibrated against the
// paper's Table 1 profiles), a topology factor (loopback, same rack, cross
// rack), per-message fixed overheads, serialisation delay from link
// bandwidth, and bounded random jitter. The model deliberately captures the
// quantities the paper argues about — RTT magnitudes versus protocol
// overheads — rather than packet-level detail.
package simnet

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// NodeID identifies a machine in the cluster.
type NodeID int

// Profile is a named set of network latency parameters. The three standard
// profiles correspond to rows of the paper's Table 1.
type Profile struct {
	Name string
	// BaseRTT is the cross-rack round-trip time for a minimal message.
	BaseRTT time.Duration
	// Bandwidth is per-link bandwidth in bytes per second.
	Bandwidth float64
	// PerMsgOverhead is fixed per-message processing (NIC, kernel path).
	PerMsgOverhead time.Duration
	// JitterFrac bounds uniform random jitter as a fraction of latency.
	JitterFrac float64
}

// Standard profiles, calibrated to Table 1 of the paper.
var (
	// DC2005 matches "2005 data center network RTT: 1,000,000 ns".
	DC2005 = Profile{Name: "dc2005", BaseRTT: time.Millisecond, Bandwidth: 125e6, PerMsgOverhead: 10 * time.Microsecond, JitterFrac: 0.10}
	// DC2021 matches "2021 data center network RTT: 200,000 ns".
	DC2021 = Profile{Name: "dc2021", BaseRTT: 200 * time.Microsecond, Bandwidth: 1.25e9, PerMsgOverhead: 2 * time.Microsecond, JitterFrac: 0.10}
	// FastNet matches "Emerging fast network RTT: 1,000 ns".
	FastNet = Profile{Name: "fastnet", BaseRTT: time.Microsecond, Bandwidth: 12.5e9, PerMsgOverhead: 100 * time.Nanosecond, JitterFrac: 0.05}
)

// Topology distance scale factors applied to BaseRTT.
const (
	loopbackFactor = 0.01 // same node: in-kernel loopback
	sameRackFactor = 0.5  // one ToR switch hop
	crossRackFac   = 1.0  // full fabric traversal
)

// LinkFault describes injected per-message faults, produced by a fault hook
// (see SetLinkFaultFunc). The zero value means no fault.
type LinkFault struct {
	// Drop loses the first copy; the model charges a detect+retransmit
	// penalty rather than failing the send, so Send stays infallible.
	Drop bool
	// Duplicate delivers a spurious extra copy (counted in Msgs/Bytes).
	Duplicate bool
	// ExtraDelay adds a delay spike to the delivery.
	ExtraDelay time.Duration
}

// Network is a simulated datacenter fabric connecting nodes arranged in
// racks.
type Network struct {
	env     *sim.Env
	profile Profile
	racks   map[NodeID]int
	next    NodeID

	faultFn func(a, b NodeID, size int) LinkFault
	reachFn func(a, b NodeID) bool

	// Stats records aggregate traffic.
	Msgs  int64
	Bytes int64
	// Fault stats record injected link faults.
	Drops  int64
	Dups   int64
	Spikes int64
}

// New returns a network using the given latency profile.
func New(env *sim.Env, profile Profile) *Network {
	return &Network{env: env, profile: profile, racks: make(map[NodeID]int)}
}

// Env returns the simulation environment.
func (n *Network) Env() *sim.Env { return n.env }

// Profile returns the active latency profile.
func (n *Network) Profile() Profile { return n.profile }

// AddNode registers a new node in the given rack and returns its ID.
func (n *Network) AddNode(rack int) NodeID {
	id := n.next
	n.next++
	n.racks[id] = rack
	return id
}

// Rack returns the rack a node lives in.
func (n *Network) Rack(id NodeID) int { return n.racks[id] }

// SetLinkFaultFunc installs a per-message fault hook consulted by Send.
// A nil hook (the default) injects nothing.
func (n *Network) SetLinkFaultFunc(f func(a, b NodeID, size int) LinkFault) { n.faultFn = f }

// SetReachableFunc installs a partition predicate. A nil predicate (the
// default) makes every pair reachable.
func (n *Network) SetReachableFunc(f func(a, b NodeID) bool) { n.reachFn = f }

// Reachable reports whether a can currently reach b. Protocol layers (e.g.
// replication groups) consult this to model partitions; it never affects
// Send itself, which models traffic already committed to the wire.
func (n *Network) Reachable(a, b NodeID) bool {
	if n.reachFn == nil {
		return true
	}
	return n.reachFn(a, b)
}

// Nodes returns the number of registered nodes.
func (n *Network) Nodes() int { return len(n.racks) }

func (n *Network) factor(a, b NodeID) float64 {
	switch {
	case a == b:
		return loopbackFactor
	case n.racks[a] == n.racks[b]:
		return sameRackFactor
	default:
		return crossRackFac
	}
}

// RTT returns the expected round-trip time between two nodes for a minimal
// message, without jitter.
func (n *Network) RTT(a, b NodeID) time.Duration {
	return time.Duration(float64(n.profile.BaseRTT) * n.factor(a, b))
}

// OneWay returns the modelled one-way delay for a message of size bytes
// from a to b, including serialisation delay, fixed overhead, and jitter.
func (n *Network) OneWay(a, b NodeID, size int) time.Duration {
	base := float64(n.RTT(a, b)) / 2
	ser := float64(size) / n.profile.Bandwidth * float64(time.Second)
	d := base + ser + float64(n.profile.PerMsgOverhead)
	if n.profile.JitterFrac > 0 {
		d += d * n.profile.JitterFrac * n.env.Rand().Float64()
	}
	return time.Duration(d)
}

// Send delivers a message of size bytes from a to b, sleeping the calling
// process for the one-way delay. When tracing is active each hop becomes a
// "net/send" span under the caller's current span.
func (n *Network) Send(p *sim.Proc, a, b NodeID, size int) {
	n.Msgs++
	n.Bytes += int64(size)
	sp := trace.Of(n.env).Start(p, "net", "send",
		trace.Int("src", int64(a)), trace.Int("dst", int64(b)), trace.Int("bytes", int64(size)))
	d := n.OneWay(a, b, size)
	if n.faultFn != nil {
		if lf := n.faultFn(a, b, size); lf != (LinkFault{}) {
			if lf.Drop {
				// Lost first copy: detection (one RTO, modelled as the
				// un-jittered RTT) plus a retransmission taking the same
				// one-way delay again. No extra jitter draw, so the shared
				// random stream is untouched.
				n.Drops++
				d = 2*d + n.RTT(a, b)
				sp.Annotate(trace.Str("fault", "drop"))
			}
			if lf.Duplicate {
				n.Dups++
				n.Msgs++
				n.Bytes += int64(size)
				sp.Annotate(trace.Str("fault", "dup"))
			}
			if lf.ExtraDelay > 0 {
				n.Spikes++
				d += lf.ExtraDelay
				sp.Annotate(trace.Str("fault", "delay"))
			}
		}
	}
	p.Sleep(d)
	sp.Close(p)
}

// Call performs a synchronous request/response exchange: request of reqSize
// from a to b, server-side work, response of respSize back. The server
// function runs in the caller's process after the request delay, modelling
// a dedicated handler. It returns the total round-trip duration.
func (n *Network) Call(p *sim.Proc, a, b NodeID, reqSize, respSize int, server func(*sim.Proc)) time.Duration {
	start := p.Now()
	n.Send(p, a, b, reqSize)
	if server != nil {
		server(p)
	}
	n.Send(p, b, a, respSize)
	return p.Now().Sub(start)
}

// String describes the network.
func (n *Network) String() string {
	return fmt.Sprintf("simnet(%s, %d nodes, rtt=%v)", n.profile.Name, len(n.racks), n.profile.BaseRTT)
}

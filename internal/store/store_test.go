package store

import (
	"errors"
	"testing"

	"repro/internal/media"
	"repro/internal/object"
)

func TestCreateAllocatesDistinctIDs(t *testing.T) {
	s := New(media.DRAM, 0)
	a := s.Create(object.Regular)
	b := s.Create(object.Directory)
	if a.ID() == b.ID() {
		t.Fatal("duplicate IDs")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	got, err := s.Get(a.ID())
	if err != nil || got != a {
		t.Errorf("Get = %v, %v", got, err)
	}
}

func TestGetMissing(t *testing.T) {
	s := New(media.DRAM, 0)
	if _, err := s.Get(999); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestQuotaEnforcedAtomically(t *testing.T) {
	s := New(media.DRAM, 100)
	o := s.Create(object.Regular)
	if err := s.SetData(o.ID(), make([]byte, 60)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetData(o.ID(), make([]byte, 150)); !errors.Is(err, ErrQuota) {
		t.Fatalf("err = %v, want ErrQuota", err)
	}
	// Object must be unchanged after quota failure.
	if o.Size() != 60 {
		t.Errorf("size = %d after failed write, want 60", o.Size())
	}
	if s.Used() != 60 {
		t.Errorf("Used = %d, want 60", s.Used())
	}
}

func TestQuotaAccountsShrink(t *testing.T) {
	s := New(media.DRAM, 100)
	o := s.Create(object.Regular)
	if err := s.SetData(o.ID(), make([]byte, 90)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetData(o.ID(), make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if s.Used() != 10 {
		t.Errorf("Used = %d, want 10", s.Used())
	}
	// Space freed by the shrink must be reusable.
	o2 := s.Create(object.Regular)
	if err := s.SetData(o2.ID(), make([]byte, 80)); err != nil {
		t.Errorf("reuse of freed space failed: %v", err)
	}
}

func TestAppendQuota(t *testing.T) {
	s := New(media.DRAM, 10)
	o := s.Create(object.Regular)
	if err := s.Append(o.ID(), make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(o.ID(), make([]byte, 8)); !errors.Is(err, ErrQuota) {
		t.Fatalf("err = %v, want ErrQuota", err)
	}
	if o.Size() != 8 {
		t.Errorf("size = %d, want 8", o.Size())
	}
}

func TestDeleteReclaims(t *testing.T) {
	s := New(media.DRAM, 0)
	o := s.Create(object.Regular)
	if err := s.SetData(o.ID(), make([]byte, 42)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(o.ID()); err != nil {
		t.Fatal(err)
	}
	if s.Used() != 0 || s.Len() != 0 {
		t.Errorf("Used=%d Len=%d after delete", s.Used(), s.Len())
	}
	if err := s.Delete(o.ID()); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete err = %v", err)
	}
}

func TestInsertRejectsDuplicates(t *testing.T) {
	s := New(media.DRAM, 0)
	o := s.Create(object.Regular)
	dup := object.New(o.ID(), object.Regular)
	if err := s.Insert(dup); err == nil {
		t.Fatal("duplicate insert succeeded")
	}
	fresh := object.New(100, object.Regular)
	if err := s.Insert(fresh); err != nil {
		t.Fatal(err)
	}
	// Future Create must not collide with the adopted ID.
	n := s.Create(object.Regular)
	if n.ID() <= 100 {
		t.Errorf("Create after Insert returned id %v, want > 100", n.ID())
	}
}

func TestIDsSorted(t *testing.T) {
	s := New(media.DRAM, 0)
	for i := 0; i < 10; i++ {
		s.Create(object.Regular)
	}
	ids := s.IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("IDs not sorted")
		}
	}
}

func TestMediaCosts(t *testing.T) {
	// Disk must be far slower than DRAM, and cost must grow with size.
	if media.Disk.ReadCost(1024) <= media.DRAM.ReadCost(1024) {
		t.Error("disk read not slower than DRAM")
	}
	if media.NVMe.ReadCost(1<<20) <= media.NVMe.ReadCost(1024) {
		t.Error("read cost does not grow with size")
	}
	// §2.1 calibration: a 1KB read from disk should be ~1.2ms, the bulk of
	// the paper's 1.5ms NFS fetch.
	c := media.Disk.ReadCost(1024)
	if c < 1_000_000 || c > 1_500_000 {
		t.Errorf("Disk 1KB read = %v, want ~1.2ms", c)
	}
}

func TestReadWriteCounters(t *testing.T) {
	s := New(media.DRAM, 0)
	o := s.Create(object.Regular)
	if err := s.SetData(o.ID(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(o.ID()); err != nil {
		t.Fatal(err)
	}
	if s.Writes != 1 {
		t.Errorf("Writes = %d, want 1", s.Writes)
	}
	if s.Reads < 1 {
		t.Errorf("Reads = %d, want >= 1", s.Reads)
	}
}

func TestContains(t *testing.T) {
	s := New(media.DRAM, 0)
	o := s.Create(object.Regular)
	if !s.Contains(o.ID()) {
		t.Error("Contains = false for stored object")
	}
	if s.Contains(12345) {
		t.Error("Contains = true for missing object")
	}
}

// Package store implements the node-local object store that backs PCSI
// state replicas: an ID-allocating in-memory extent store with quota
// accounting and simulated media access costs (internal/media).
//
// A Store represents one storage server's worth of objects. Replication and
// consistency live a layer up (internal/consistency); this layer only
// guarantees local atomicity and tracks space.
package store

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/media"
	"repro/internal/object"
)

// Errors returned by the store.
var (
	ErrNotFound = fault.Fatal("store: object not found")
	ErrQuota    = fault.Fatal("store: quota exceeded")
)

// Store is a single node's object store.
type Store struct {
	media   media.Profile
	objects map[object.ID]*object.Object
	nextID  object.ID
	quota   int64 // bytes; 0 = unlimited
	used    int64
	// Reads/Writes count operations for experiment accounting.
	Reads  int64
	Writes int64
}

// New returns an empty store on the given medium with a byte quota
// (0 = unlimited).
func New(m media.Profile, quota int64) *Store {
	return &Store{media: m, objects: make(map[object.ID]*object.Object), nextID: 1, quota: quota}
}

// Media returns the store's medium profile.
func (s *Store) Media() media.Profile { return s.media }

// Used returns bytes of payload currently stored.
func (s *Store) Used() int64 { return s.used }

// Len returns the number of stored objects.
func (s *Store) Len() int { return len(s.objects) }

// Create allocates a fresh object of the given kind.
func (s *Store) Create(kind object.Kind) *object.Object {
	o := object.New(s.nextID, kind)
	s.objects[o.ID()] = o
	s.nextID++
	return o
}

// Insert adopts an externally built object (replica transfer, copy-up).
// The object's ID must not collide with an existing one.
func (s *Store) Insert(o *object.Object) error {
	if _, ok := s.objects[o.ID()]; ok {
		return fmt.Errorf("store: duplicate id %v", o.ID())
	}
	s.objects[o.ID()] = o
	s.used += o.Size()
	if o.ID() >= s.nextID {
		s.nextID = o.ID() + 1
	}
	return nil
}

// AllocID reserves an object ID without creating the object; used when a
// replicated group must agree on IDs before replicas materialise them.
func (s *Store) AllocID() object.ID {
	id := s.nextID
	s.nextID++
	return id
}

// Get returns the object with the given ID.
func (s *Store) Get(id object.ID) (*object.Object, error) {
	o, ok := s.objects[id]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNotFound, id)
	}
	s.Reads++
	return o, nil
}

// Contains reports whether the store holds id, without counting a read.
func (s *Store) Contains(id object.ID) bool {
	_, ok := s.objects[id]
	return ok
}

// UpdateAccounting must be called around mutations so quota tracking stays
// correct: pass the object's size delta.
func (s *Store) UpdateAccounting(delta int64) error {
	if s.quota > 0 && s.used+delta > s.quota {
		return fmt.Errorf("%w: used %d + %d > %d", ErrQuota, s.used, delta, s.quota)
	}
	s.used += delta
	s.Writes++
	return nil
}

// SetData replaces an object's payload through the store so quota is
// enforced atomically: on quota failure the object is unchanged.
func (s *Store) SetData(id object.ID, data []byte) error {
	o, err := s.Get(id)
	if err != nil {
		return err
	}
	delta := int64(len(data)) - o.Size()
	if s.quota > 0 && s.used+delta > s.quota {
		return fmt.Errorf("%w: used %d + %d > %d", ErrQuota, s.used, delta, s.quota)
	}
	if err := o.SetData(data); err != nil {
		return err
	}
	s.used += delta
	s.Writes++
	return nil
}

// Append appends through the store with quota enforcement.
func (s *Store) Append(id object.ID, data []byte) error {
	o, err := s.Get(id)
	if err != nil {
		return err
	}
	if s.quota > 0 && s.used+int64(len(data)) > s.quota {
		return fmt.Errorf("%w: used %d + %d > %d", ErrQuota, s.used, int64(len(data)), s.quota)
	}
	if err := o.Append(data); err != nil {
		return err
	}
	s.used += int64(len(data))
	s.Writes++
	return nil
}

// Delete removes an object, reclaiming its space. Used by the GC.
func (s *Store) Delete(id object.ID) error {
	o, ok := s.objects[id]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotFound, id)
	}
	s.used -= o.Size()
	delete(s.objects, id)
	return nil
}

// IDs returns all object IDs in ascending order (deterministic iteration
// for GC and anti-entropy).
func (s *Store) IDs() []object.ID {
	ids := make([]object.ID, 0, len(s.objects))
	for id := range s.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

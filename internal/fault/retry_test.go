package fault

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// quickCfg seeds testing/quick explicitly so property runs are reproducible.
func quickCfg(seed int64) *quick.Config {
	return &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(seed))}
}

// backoffFrom maps raw generator bytes onto a Backoff across the interesting
// parameter space: zero values (defaults), caps below the base, growth
// factors in [1, 4.9], jitter in [0, 1].
func backoffFrom(base, capv uint16, factorQ, jitterQ uint8) Backoff {
	return Backoff{
		Base:       sim.Duration(base) * time.Microsecond,
		Cap:        sim.Duration(capv) * time.Microsecond,
		Factor:     1 + float64(factorQ%40)/10,
		JitterFrac: float64(jitterQ%11) / 10,
	}
}

// Property: the nominal backoff curve is monotone non-decreasing and never
// exceeds the cap.
func TestBackoffNominalMonotoneCapped(t *testing.T) {
	f := func(base, capv uint16, factorQ, retries uint8) bool {
		b := backoffFrom(base, capv, factorQ, 0)
		n := int(retries%20) + 2
		prev := sim.Duration(-1)
		for i := 0; i < n; i++ {
			d := b.Nominal(i)
			if d < prev {
				return false
			}
			if b.Cap > 0 && d > b.Cap {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, quickCfg(1)); err != nil {
		t.Fatal(err)
	}
}

// Property: jittered delays stay within ±JitterFrac of the nominal delay
// (and are never negative).
func TestBackoffJitterBounded(t *testing.T) {
	f := func(base, capv uint16, factorQ, jitterQ uint8, seed int64, retry uint8) bool {
		b := backoffFrom(base, capv, factorQ, jitterQ)
		rng := rand.New(rand.NewSource(seed))
		r := int(retry % 30)
		nom := float64(b.Nominal(r))
		d := float64(b.Delay(r, rng))
		j := b.JitterFrac
		const eps = 2 // float→duration rounding slack
		return d >= 0 && d >= nom*(1-j)-eps && d <= nom*(1+j)+eps
	}
	if err := quick.Check(f, quickCfg(2)); err != nil {
		t.Fatal(err)
	}
}

// Property: identical rng seeds yield identical delay sequences — the
// determinism contract retries depend on.
func TestBackoffDelayDeterministic(t *testing.T) {
	f := func(base, capv uint16, factorQ, jitterQ uint8, seed int64) bool {
		b := backoffFrom(base, capv, factorQ, jitterQ)
		r1 := rand.New(rand.NewSource(seed))
		r2 := rand.New(rand.NewSource(seed))
		for i := 0; i < 12; i++ {
			if b.Delay(i, r1) != b.Delay(i, r2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(3)); err != nil {
		t.Fatal(err)
	}
}

// Zero jitter (or a nil rng) degrades Delay to exactly Nominal.
func TestBackoffNoJitterIsNominal(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Cap: 100 * time.Millisecond, Factor: 2}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10; i++ {
		if b.Delay(i, rng) != b.Nominal(i) {
			t.Fatalf("retry %d: Delay != Nominal with zero jitter", i)
		}
	}
	jb := Backoff{Base: time.Millisecond, Factor: 2, JitterFrac: 0.5}
	for i := 0; i < 10; i++ {
		if jb.Delay(i, nil) != jb.Nominal(i) {
			t.Fatalf("retry %d: Delay != Nominal with nil rng", i)
		}
	}
}

// The deadline is enforced before sleeping: virtual time never runs past it
// and the error names it.
func TestPolicyDeadlineEnforced(t *testing.T) {
	const deadline = 50 * time.Millisecond
	env := sim.NewEnv(7)
	p := (&Policy{
		MaxAttempts: 1000,
		Deadline:    deadline,
		Backoff:     Backoff{Base: time.Millisecond, Factor: 2, JitterFrac: 0.5},
	}).Bind(env)
	attempts := 0
	var err error
	env.Go("retry", func(proc *sim.Proc) {
		err = p.Do(proc, "op", func() error {
			attempts++
			return ErrInjected
		})
	})
	end := env.Run()
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err = %v, want deadline exhaustion", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("deadline error does not wrap the last attempt error: %v", err)
	}
	if got := end.Sub(sim.Time(0)); got > deadline {
		t.Errorf("virtual time %v ran past the %v deadline", got, deadline)
	}
	if attempts < 2 {
		t.Errorf("attempts = %d, want several before the deadline", attempts)
	}
}

// MaxAttempts bounds the retry count exactly, and the terminal error wraps
// the last failure.
func TestPolicyMaxAttempts(t *testing.T) {
	env := sim.NewEnv(1)
	p := (&Policy{MaxAttempts: 5, Backoff: Backoff{Base: time.Microsecond}}).Bind(env)
	attempts := 0
	var err error
	env.Go("retry", func(proc *sim.Proc) {
		err = p.Do(proc, "op", func() error {
			attempts++
			return ErrInjectedTimeout
		})
	})
	env.Run()
	if attempts != 5 {
		t.Errorf("attempts = %d, want 5", attempts)
	}
	if err == nil || !strings.Contains(err.Error(), "after 5 attempts") {
		t.Errorf("err = %v, want attempt-count wrap", err)
	}
	if !errors.Is(err, ErrInjectedTimeout) {
		t.Errorf("terminal error does not wrap the cause: %v", err)
	}
}

// Fatal (non-retryable) errors return immediately, untouched.
func TestPolicyFatalErrorNoRetry(t *testing.T) {
	sentinel := errors.New("capability denied")
	env := sim.NewEnv(1)
	p := DefaultPolicy().Bind(env)
	attempts := 0
	var err error
	env.Go("retry", func(proc *sim.Proc) {
		err = p.Do(proc, "op", func() error {
			attempts++
			return sentinel
		})
	})
	env.Run()
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1 for a fatal error", attempts)
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want the sentinel unchanged", err)
	}
}

// A nil policy is the no-op fast path: fn runs exactly once.
func TestNilPolicyRunsOnce(t *testing.T) {
	var p *Policy
	attempts := 0
	if err := p.Do(nil, "op", func() error {
		attempts++
		return ErrInjected
	}); !errors.Is(err, ErrInjected) {
		t.Errorf("err = %v", err)
	}
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1", attempts)
	}
}

// Bound policies with the same env seed replay byte-identical retry timing;
// the template itself stays rng-free.
func TestPolicyBindDeterministic(t *testing.T) {
	run := func() []sim.Duration {
		env := sim.NewEnv(11)
		p := DefaultPolicy()
		var delays []sim.Duration
		p.OnAttempt = func(op string, attempt int, err error, delay sim.Duration) {
			delays = append(delays, delay)
		}
		q := p.Bind(env)
		env.Go("retry", func(proc *sim.Proc) {
			q.Do(proc, "op", func() error { return ErrInjected }) //nolint:errcheck
		})
		env.Run()
		return delays
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no retries recorded")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d differs across identical seeds: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRetryableClassification(t *testing.T) {
	for _, err := range []error{
		ErrInjected,
		ErrInjectedTimeout,
		sim.ErrTimeout,
		cluster.ErrNodeDown,
		cluster.ErrNoCapacity,
		// Wrapped transients stay retryable.
		errors.Join(errors.New("ctx"), cluster.ErrNodeDown),
	} {
		if !Retryable(err) {
			t.Errorf("Retryable(%v) = false, want true", err)
		}
	}
	for _, err := range []error{nil, errors.New("no such object")} {
		if Retryable(err) {
			t.Errorf("Retryable(%v) = true, want false", err)
		}
	}
}

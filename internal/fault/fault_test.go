package fault

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func smallCluster(env *sim.Env) (*simnet.Network, *cluster.Cluster) {
	net := simnet.New(env, simnet.DC2021)
	cl := cluster.New(env, net, cluster.Config{
		Racks: 2, NodesPerRack: 2,
		NodeCap: cluster.Resources{MilliCPU: 8000, MemMB: 16384},
	})
	return net, cl
}

// An idle spec (no rates, no schedule) must attach nothing at all — the
// zero-perturbation guarantee.
func TestIdleSpecAttachesNothing(t *testing.T) {
	s := Activate(Spec{Retry: DefaultPolicy()})
	defer s.Deactivate()
	env := sim.NewEnv(1)
	if in := Of(env); in != nil {
		t.Fatal("Of returned an injector for an idle spec")
	}
	net, cl := smallCluster(env)
	if in := Attach(env, net, cl); in != nil {
		t.Fatal("Attach returned an injector for an idle spec")
	}
	if len(s.Counters()) != 0 {
		t.Errorf("idle session has counters: %v", s.Counters())
	}
}

// With no session active, Of returns nil and every Injector method is a
// nil-safe no-op.
func TestNilInjectorSafe(t *testing.T) {
	env := sim.NewEnv(1)
	in := Of(env)
	if in != nil {
		t.Fatal("Of returned an injector with no active session")
	}
	in.Observe(func(Notice) {})
	in.OnNodeDown(func(simnet.NodeID, bool) {})
	in.Note("x")
	in.healPartition()
	env.Go("op", func(p *sim.Proc) {
		if err := in.OpFault(p, "op"); err != nil {
			t.Errorf("nil OpFault = %v", err)
		}
	})
	env.Run()
}

func TestDoubleActivatePanics(t *testing.T) {
	s := Activate(Spec{Rates: Uniform(0.1)})
	defer s.Deactivate()
	defer func() {
		if recover() == nil {
			t.Error("second Activate did not panic")
		}
	}()
	Activate(Spec{})
}

// Injected faults draw only from observer streams: the env's shared random
// stream yields the same sequence whether or not injection is active.
func TestInjectionDoesNotPerturbSharedStream(t *testing.T) {
	sample := func(inject bool) []float64 {
		if inject {
			s := Activate(Spec{Rates: Uniform(0.5)})
			defer s.Deactivate()
		}
		env := sim.NewEnv(42)
		in := Of(env)
		if inject && in == nil {
			t.Fatal("no injector under active session")
		}
		env.Go("ops", func(p *sim.Proc) {
			for i := 0; i < 200; i++ {
				in.OpFault(p, "probe") //nolint:errcheck
			}
		})
		env.Run()
		out := make([]float64, 32)
		for i := range out {
			out[i] = env.Rand().Float64()
		}
		return out
	}
	clean, faulty := sample(false), sample(true)
	if !reflect.DeepEqual(clean, faulty) {
		t.Fatal("active injection perturbed the env's shared random stream")
	}
}

func TestUniformRates(t *testing.T) {
	if !(Rates{}).zero() || !Uniform(0).zero() {
		t.Error("zero rates not recognised as idle")
	}
	r := Uniform(0.1)
	if r.OpError != 0.1 || r.LinkLoss != 0.1 || r.OpTimeout != 0.05 || r.LinkDup != 0.05 || r.DelaySpike != 0.05 {
		t.Errorf("Uniform(0.1) = %+v", r)
	}
}

// OpFault injects errors and timeouts at roughly the configured rates, and
// injected timeouts consume TimeoutDelay of virtual time.
func TestOpFaultRatesAndTimeoutDelay(t *testing.T) {
	s := Activate(Spec{
		Rates:        Rates{OpError: 0.2, OpTimeout: 0.1},
		TimeoutDelay: 7 * time.Millisecond,
	})
	defer s.Deactivate()
	env := sim.NewEnv(3)
	in := Of(env)
	var nerr, ntimeout int
	env.Go("ops", func(p *sim.Proc) {
		for i := 0; i < 1000; i++ {
			before := p.Now()
			err := in.OpFault(p, "probe")
			switch {
			case errors.Is(err, ErrInjectedTimeout):
				ntimeout++
				if d := p.Now().Sub(before); d != 7*time.Millisecond {
					t.Errorf("injected timeout blocked %v, want 7ms", d)
				}
			case errors.Is(err, ErrInjected):
				nerr++
			case err != nil:
				t.Errorf("unexpected error %v", err)
			}
		}
	})
	env.Run()
	if nerr < 150 || nerr > 250 {
		t.Errorf("injected errors = %d/1000, want ≈200", nerr)
	}
	if ntimeout < 50 || ntimeout > 120 {
		t.Errorf("injected timeouts = %d/1000, want ≈80", ntimeout)
	}
}

// A declarative schedule crashes and recovers nodes at exact virtual times.
func TestScheduleCrashRecover(t *testing.T) {
	s := Activate(Spec{Schedule: []Event{
		// Deliberately out of order: armSchedule must sort by At.
		{At: 30 * time.Millisecond, Action: RecoverNode, Node: 1},
		{At: 10 * time.Millisecond, Action: CrashNode, Node: 1},
	}})
	defer s.Deactivate()
	env := sim.NewEnv(5)
	net, cl := smallCluster(env)
	if in := Attach(env, net, cl); in == nil {
		t.Fatal("Attach returned nil for a scheduled spec")
	}
	n := cl.Node(1)
	env.RunUntil(sim.Time(0).Add(5 * time.Millisecond))
	if n.Down() {
		t.Error("node down before the scheduled crash")
	}
	env.RunUntil(sim.Time(0).Add(15 * time.Millisecond))
	if !n.Down() {
		t.Error("node not down after the scheduled crash")
	}
	env.RunUntil(sim.Time(0).Add(35 * time.Millisecond))
	if n.Down() {
		t.Error("node still down after the scheduled recovery")
	}
}

// Rack power events fail and restore every node in the rack.
func TestScheduleRackPower(t *testing.T) {
	s := Activate(Spec{Schedule: []Event{
		{At: 10 * time.Millisecond, Action: RackPower, Rack: 1},
		{At: 20 * time.Millisecond, Action: RackRestore, Rack: 1},
	}})
	defer s.Deactivate()
	env := sim.NewEnv(5)
	net, cl := smallCluster(env)
	Attach(env, net, cl)
	env.RunUntil(sim.Time(0).Add(15 * time.Millisecond))
	for _, n := range cl.Nodes() {
		if want := n.Rack == 1; n.Down() != want {
			t.Errorf("node %d (rack %d) down = %v at 15ms", n.ID, n.Rack, n.Down())
		}
	}
	env.RunUntil(sim.Time(0).Add(25 * time.Millisecond))
	for _, n := range cl.Nodes() {
		if n.Down() {
			t.Errorf("node %d still down after rack restore", n.ID)
		}
	}
}

// Partitions make cross-group pairs unreachable (unlisted nodes fall into
// group 0) and heal on schedule; HealAll clears any still-active partition.
func TestSchedulePartitionHeal(t *testing.T) {
	s := Activate(Spec{Schedule: []Event{
		{At: 10 * time.Millisecond, Action: Partition, Groups: [][]simnet.NodeID{{0, 1}, {2}}},
		{At: 30 * time.Millisecond, Action: Heal},
		{At: 40 * time.Millisecond, Action: Partition, Groups: [][]simnet.NodeID{{0}, {1, 2, 3}}},
	}})
	defer s.Deactivate()
	env := sim.NewEnv(5)
	net, cl := smallCluster(env)
	Attach(env, net, cl)
	env.RunUntil(sim.Time(0).Add(15 * time.Millisecond))
	if net.Reachable(0, 2) || net.Reachable(2, 0) {
		t.Error("partitioned pair 0↔2 still reachable")
	}
	if !net.Reachable(0, 1) {
		t.Error("same-group pair 0↔1 unreachable")
	}
	if net.Reachable(3, 2) {
		t.Error("unlisted node 3 should default to group 0, away from node 2")
	}
	env.RunUntil(sim.Time(0).Add(35 * time.Millisecond))
	if !net.Reachable(0, 2) {
		t.Error("pair 0↔2 unreachable after heal")
	}
	env.RunUntil(sim.Time(0).Add(45 * time.Millisecond))
	if net.Reachable(0, 3) {
		t.Error("second partition not applied")
	}
	s.HealAll()
	if !net.Reachable(0, 3) {
		t.Error("HealAll left the partition active")
	}
}

// Node crash/recover notifications reach OnNodeDown hooks and observers.
func TestObserversAndOnNodeDown(t *testing.T) {
	s := Activate(Spec{Schedule: []Event{
		{At: 10 * time.Millisecond, Action: CrashNode, Node: 0},
		{At: 20 * time.Millisecond, Action: RecoverNode, Node: 0},
	}})
	defer s.Deactivate()
	env := sim.NewEnv(5)
	net, cl := smallCluster(env)
	in := Attach(env, net, cl)
	var kinds []string
	in.Observe(func(n Notice) { kinds = append(kinds, n.Kind) })
	var downs, ups int
	in.OnNodeDown(func(id simnet.NodeID, down bool) {
		if down {
			downs++
		} else {
			ups++
		}
	})
	env.Run()
	if downs != 1 || ups != 1 {
		t.Errorf("OnNodeDown saw %d crashes, %d recoveries; want 1 and 1", downs, ups)
	}
	if !reflect.DeepEqual(kinds, []string{"node.crash", "node.recover"}) {
		t.Errorf("observed kinds = %v", kinds)
	}
}

// Two sessions with identical specs over identical seeds produce identical
// counters — the whole-sweep determinism the chaos harness relies on.
func TestSessionCountersDeterministic(t *testing.T) {
	run := func() []Counter {
		s := Activate(Spec{Rates: Uniform(0.2)})
		defer s.Deactivate()
		env := sim.NewEnv(13)
		net, cl := smallCluster(env)
		in := Attach(env, net, cl)
		in.Note("retry.attempt")
		env.Go("traffic", func(p *sim.Proc) {
			for i := 0; i < 100; i++ {
				net.Send(p, 0, 2, 512)
				in.OpFault(p, "probe") //nolint:errcheck
			}
		})
		env.Run()
		return s.Counters()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no counters recorded at a 20% fault rate")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("counters diverged across identical runs:\n%v\n%v", a, b)
	}
}

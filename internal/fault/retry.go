package fault

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// Backoff is a capped exponential backoff with deterministic jitter.
type Backoff struct {
	Base       sim.Duration // first delay; default 1ms
	Cap        sim.Duration // ceiling on the nominal delay; 0 = uncapped
	Factor     float64      // exponential growth factor; default 2
	JitterFrac float64      // delay varies in [d*(1-J), d*(1+J)]; clamped to [0,1]
}

// Nominal returns the un-jittered delay before the retry-th retry
// (0-indexed): min(Base * Factor^retry, Cap). Monotone non-decreasing.
func (b Backoff) Nominal(retry int) sim.Duration {
	base := b.Base
	if base <= 0 {
		base = time.Millisecond
	}
	f := b.Factor
	if f < 1 {
		f = 2
	}
	if retry < 0 {
		retry = 0
	}
	d := float64(base) * math.Pow(f, float64(retry))
	if b.Cap > 0 && d > float64(b.Cap) {
		d = float64(b.Cap)
	}
	if d > float64(math.MaxInt64)/2 {
		d = float64(math.MaxInt64) / 2
	}
	return sim.Duration(d)
}

// Delay returns the jittered delay before the retry-th retry, drawing from
// rng (an observer stream, so jitter never perturbs the workload).
func (b Backoff) Delay(retry int, rng *rand.Rand) sim.Duration {
	d := float64(b.Nominal(retry))
	j := b.JitterFrac
	if j > 1 {
		j = 1
	}
	if j > 0 && rng != nil {
		d *= 1 + j*(2*rng.Float64()-1)
	}
	if d < 0 {
		d = 0
	}
	return sim.Duration(d)
}

// Policy is a retry policy: attempts are re-run for retryable errors with
// backoff until MaxAttempts or the total Deadline is exhausted. A Policy
// value without an rng is a template; Bind derives a per-env copy whose
// jitter comes from the env's observer stream.
type Policy struct {
	MaxAttempts int          // total tries including the first; default 3
	Deadline    sim.Duration // budget across all attempts; 0 = unlimited
	Backoff     Backoff
	// Retryable classifies errors; nil means the package default.
	Retryable func(error) bool
	// OnAttempt runs before each backoff sleep, after attempt `attempt`
	// (1-based) failed with err and the next try is delay away.
	OnAttempt func(op string, attempt int, err error, delay sim.Duration)

	rng *rand.Rand
}

// DefaultPolicy is the stock chaos-mode policy: 4 attempts, 2s budget,
// 1ms→200ms exponential backoff with ±50% jitter.
func DefaultPolicy() *Policy {
	return &Policy{
		MaxAttempts: 4,
		Deadline:    2 * time.Second,
		Backoff: Backoff{
			Base:       time.Millisecond,
			Cap:        200 * time.Millisecond,
			Factor:     2,
			JitterFrac: 0.5,
		},
	}
}

// Bind returns a copy of p whose jitter draws from env's observer stream.
func (p *Policy) Bind(env *sim.Env) *Policy {
	if p == nil {
		return nil
	}
	q := *p
	q.rng = env.ObserverRand("fault.retry")
	return &q
}

// Do runs fn, retrying per the policy. A nil policy runs fn exactly once
// with zero overhead. The deadline is enforced before sleeping: no backoff
// sleep may carry the elapsed total past Deadline.
func (p *Policy) Do(proc *sim.Proc, op string, fn func() error) error {
	if p == nil {
		return fn()
	}
	max := p.MaxAttempts
	if max <= 0 {
		max = 3
	}
	retryable := p.Retryable
	if retryable == nil {
		retryable = Retryable
	}
	start := proc.Now()
	for attempt := 1; ; attempt++ {
		err := fn()
		if err == nil {
			return nil
		}
		if !retryable(err) {
			return err
		}
		if attempt >= max {
			return fmt.Errorf("fault: %s failed after %d attempts: %w", op, attempt, err)
		}
		delay := p.Backoff.Delay(attempt-1, p.rng)
		if p.Deadline > 0 && proc.Now().Sub(start)+delay > p.Deadline {
			return fmt.Errorf("fault: %s retry deadline %v exhausted after %d attempts: %w",
				op, p.Deadline, attempt, err)
		}
		if p.OnAttempt != nil {
			p.OnAttempt(op, attempt, err, delay)
		}
		proc.Sleep(delay)
	}
}

// Classified is implemented by errors that carry their own retry
// classification. Typed rejections from higher layers (e.g. QoS overload
// sheds) classify themselves as fatal through this interface, so the
// fault layer never has to import them: a shed is an answer, and
// retrying it re-offers the load the system just refused.
type Classified interface {
	Retryable() bool
}

// classed is a comparable classified sentinel: errors.Is matches it by
// value through any fmt.Errorf("%w") wrapping, and Retryable answers the
// classifier directly, so a sentinel built from Fatal or Transient never
// needs an entry in a classifier's errors.Is table.
type classed struct {
	msg   string
	retry bool
}

func (e classed) Error() string   { return e.msg }
func (e classed) Retryable() bool { return e.retry }

// Fatal returns an error sentinel classified as non-retryable: retry
// policies return it to the caller on first sight. Use it for answers —
// not-found, invalid arguments, capability denials — where retrying
// re-asks a question the system already answered.
func Fatal(msg string) error { return classed{msg: msg} }

// Transient returns an error sentinel classified as retryable: retry
// policies back off and re-run the attempt. Use it for conditions that
// clear on their own — pressure, races, windows mid-reconfiguration.
func Transient(msg string) error { return classed{msg: msg, retry: true} }

// Fatalf is Fatal with fmt.Sprintf formatting, for dynamic error text
// that must still carry a non-retryable classification. When the
// arguments include an error to preserve, prefer fmt.Errorf("...: %w",
// err) around a classified sentinel instead — Fatalf flattens the chain.
func Fatalf(format string, args ...any) error {
	return classed{msg: fmt.Sprintf(format, args...)}
}

// Transientf is Transient with fmt.Sprintf formatting; see Fatalf.
func Transientf(format string, args ...any) error {
	return classed{msg: fmt.Sprintf(format, args...), retry: true}
}

// Retryable is the substrate-level error classifier: injected faults,
// timeouts, and node/capacity transients are retryable; everything else
// (not-found, invalid refs, capability denials, handler bugs) is fatal.
// Errors implementing Classified override the table. Embedding layers
// wrap this to add their own transient errors.
func Retryable(err error) bool {
	var c Classified
	if errors.As(err, &c) {
		return c.Retryable()
	}
	switch {
	case err == nil:
		return false
	case errors.Is(err, ErrInjected),
		errors.Is(err, ErrInjectedTimeout),
		errors.Is(err, sim.ErrTimeout),
		errors.Is(err, cluster.ErrNodeDown),
		errors.Is(err, cluster.ErrNoCapacity):
		return true
	}
	return false
}

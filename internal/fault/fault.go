// Package fault is the deterministic fault-injection substrate. A chaos run
// activates a Session describing stochastic fault rates and/or a declarative
// schedule of timed events (node crashes, rack power, partitions); domain
// layers then consult the per-Env Injector at operation boundaries.
//
// Determinism contract: every random draw an Injector makes comes from
// sim.Env.ObserverRand streams, which are derived from the seed without
// touching the workload's shared stream or the fork counter. Enabling faults
// at seed S therefore perturbs nothing else — the same seed with the same
// Spec replays byte-identically, and an idle Spec (all rates zero, empty
// schedule) attaches nothing at all, leaving runs bit-for-bit equal to
// fault-free ones.
//
// Layering: fault sits in the substrate tier. It may be imported by any
// domain package but itself imports only sim, simnet, and cluster; richer
// integrations (tracing, metrics, faas instance teardown) are wired in by
// the embedding layer through the Observe / OnNodeDown callbacks.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Injected operation failures. Callers classify both as retryable.
var (
	// ErrInjected is the base error for injected operation failures.
	ErrInjected = errors.New("fault: injected error")
	// ErrInjectedTimeout marks an injected timeout; the faulting operation
	// blocks for Spec.TimeoutDelay of virtual time before returning it.
	ErrInjectedTimeout = errors.New("fault: injected timeout")
)

// Rates are per-decision probabilities for stochastic injection. All zero
// means no stochastic faults.
type Rates struct {
	OpError    float64 // operation fails immediately with ErrInjected
	OpTimeout  float64 // operation blocks TimeoutDelay then fails with ErrInjectedTimeout
	LinkLoss   float64 // message dropped; modeled as detect+retransmit delay
	LinkDup    float64 // message duplicated (extra msg/byte counts)
	DelaySpike float64 // message delayed by a multi-RTT spike
}

func (r Rates) zero() bool {
	return r.OpError == 0 && r.OpTimeout == 0 && r.LinkLoss == 0 && r.LinkDup == 0 && r.DelaySpike == 0
}

// Uniform derives a conventional rate mix from a single chaos knob: ops and
// links fault at rate, the rarer modes (timeouts, duplicates) at rate/2.
func Uniform(rate float64) Rates {
	if rate <= 0 {
		return Rates{}
	}
	return Rates{
		OpError:    rate,
		OpTimeout:  rate / 2,
		LinkLoss:   rate,
		LinkDup:    rate / 2,
		DelaySpike: rate / 2,
	}
}

// Action is a scheduled fault kind.
type Action int

const (
	// CrashNode powers off cluster node Node at time At.
	CrashNode Action = iota
	// RecoverNode powers Node back on.
	RecoverNode
	// RackPower fails every cluster node in rack Rack.
	RackPower
	// RackRestore recovers every cluster node in rack Rack.
	RackRestore
	// Partition splits the network into Groups; nodes in different groups
	// cannot reach each other. Nodes not listed fall into group 0.
	Partition
	// Heal removes any active partition.
	Heal
)

func (a Action) String() string {
	switch a {
	case CrashNode:
		return "crash-node"
	case RecoverNode:
		return "recover-node"
	case RackPower:
		return "rack-power"
	case RackRestore:
		return "rack-restore"
	case Partition:
		return "partition"
	case Heal:
		return "heal"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// Event is one entry in a declarative fault schedule.
type Event struct {
	At     sim.Duration      // virtual time offset from env start
	Action Action            //
	Node   simnet.NodeID     // CrashNode / RecoverNode
	Rack   int               // RackPower / RackRestore
	Groups [][]simnet.NodeID // Partition
}

// Spec describes everything a Session injects.
type Spec struct {
	Rates        Rates
	Schedule     []Event
	TimeoutDelay sim.Duration // block time for injected timeouts; default 100ms
	// Retry, when set, is the default retry policy embedding systems adopt
	// for the duration of the session (core uses it when Options.Retry is
	// nil). Policies are templates; each env binds its own jitter stream.
	Retry *Policy
}

func (s Spec) idle() bool { return s.Rates.zero() && len(s.Schedule) == 0 }

// Notice describes one injected fault, delivered to Observe callbacks.
type Notice struct {
	Kind   string // e.g. "op.error", "link.drop", "node.crash", "partition"
	Detail string
}

// Counter is an aggregated injection count, for deterministic reporting.
type Counter struct {
	Name string
	N    int64
}

// Violation is a failed invariant check.
type Violation struct {
	Check  string
	Detail string
}

type check struct {
	name string
	fn   func() []string
}

// Session is a process-global fault-injection activation, mirroring the
// trace collector: at most one is active at a time.
type Session struct {
	spec      Spec
	injectors []*Injector
	byEnv     map[*sim.Env]*Injector
	checks    []check
}

var active *Session

// Activate installs spec as the process-global fault session. Panics if one
// is already active.
func Activate(spec Spec) *Session {
	if active != nil {
		panic("fault: a session is already active")
	}
	if spec.TimeoutDelay <= 0 {
		spec.TimeoutDelay = 100 * time.Millisecond
	}
	s := &Session{spec: spec, byEnv: make(map[*sim.Env]*Injector)}
	active = s
	return s
}

// Deactivate ends the session. Envs created afterwards see no injection.
func (s *Session) Deactivate() {
	if active == s {
		active = nil
	}
}

// ActiveSession returns the current session, or nil.
func ActiveSession() *Session { return active }

// Spec returns the session's spec.
func (s *Session) Spec() Spec { return s.spec }

// AddCheck registers a named invariant; fn returns one message per
// violation. Embedding layers register these at construction so the chaos
// harness can audit end-of-run state it has no direct access to.
func (s *Session) AddCheck(name string, fn func() []string) {
	s.checks = append(s.checks, check{name, fn})
}

// RunChecks runs every registered invariant in registration order.
func (s *Session) RunChecks() []Violation {
	var out []Violation
	for _, c := range s.checks {
		for _, msg := range c.fn() {
			out = append(out, Violation{Check: c.name, Detail: msg})
		}
	}
	return out
}

// HealAll clears active partitions on every injector, for post-run
// quiescence before convergence checks.
func (s *Session) HealAll() {
	for _, in := range s.injectors {
		in.healPartition()
	}
}

// Counters aggregates injection counts across all injectors, sorted by name.
func (s *Session) Counters() []Counter {
	sum := make(map[string]int64)
	for _, in := range s.injectors {
		for k, v := range in.counts {
			sum[k] += v
		}
	}
	names := make([]string, 0, len(sum))
	for k := range sum {
		names = append(names, k)
	}
	sort.Strings(names)
	out := make([]Counter, 0, len(names))
	for _, k := range names {
		out = append(out, Counter{k, sum[k]})
	}
	return out
}

// Injector injects faults into one sim.Env. All methods are nil-safe so
// call sites can hold one unconditionally.
type Injector struct {
	env        *sim.Env
	net        *simnet.Network  // nil for op-only injectors
	cl         *cluster.Cluster // nil when no cluster is attached
	spec       Spec
	opRNG      *rand.Rand
	linkRNG    *rand.Rand
	part       map[simnet.NodeID]int
	partActive bool
	counts     map[string]int64
	observers  []func(Notice)
	onDown     []func(simnet.NodeID, bool)
	armed      bool
}

// Of returns the active session's injector for env, creating an
// operation-only injector on first use. Returns nil when no session is
// active or the session's spec is idle — the zero-perturbation guarantee.
func Of(env *sim.Env) *Injector {
	s := active
	if s == nil || s.spec.idle() || env == nil {
		return nil
	}
	if in, ok := s.byEnv[env]; ok {
		return in
	}
	in := &Injector{
		env:     env,
		spec:    s.spec,
		opRNG:   env.ObserverRand("fault.ops"),
		linkRNG: env.ObserverRand("fault.link"),
		counts:  make(map[string]int64),
	}
	s.byEnv[env] = in
	s.injectors = append(s.injectors, in)
	return in
}

// Attach upgrades env's injector with network and cluster wiring: link
// faults and reachability hooks are installed on net, and the schedule (if
// any) is armed as a virtual-time process. Returns nil when idle.
func Attach(env *sim.Env, net *simnet.Network, cl *cluster.Cluster) *Injector {
	in := Of(env)
	if in == nil {
		return nil
	}
	if net != nil && in.net == nil {
		in.net = net
		net.SetLinkFaultFunc(in.linkFault)
		net.SetReachableFunc(in.reachable)
	}
	if cl != nil && in.cl == nil {
		in.cl = cl
	}
	if len(in.spec.Schedule) > 0 && !in.armed {
		in.armed = true
		in.armSchedule()
	}
	return in
}

// Observe registers fn to receive a Notice for every injected fault.
func (in *Injector) Observe(fn func(Notice)) {
	if in == nil {
		return
	}
	in.observers = append(in.observers, fn)
}

// OnNodeDown registers fn to run after the injector crashes or recovers a
// cluster node (down=true on crash). The embedding layer uses this to tear
// down higher-level state (e.g. faas instances) the substrate cannot see.
func (in *Injector) OnNodeDown(fn func(simnet.NodeID, bool)) {
	if in == nil {
		return
	}
	in.onDown = append(in.onDown, fn)
}

// Note bumps a named counter (e.g. retry attempts recorded by the embedding
// layer) so it appears in the session's deterministic summary.
func (in *Injector) Note(name string) {
	if in == nil {
		return
	}
	in.counts[name]++
}

func (in *Injector) emit(kind, detail string) {
	in.counts[kind]++
	for _, fn := range in.observers {
		fn(Notice{Kind: kind, Detail: detail})
	}
}

// OpFault rolls the stochastic operation-fault dice for op. It returns nil
// (no fault), ErrInjected, or — after blocking TimeoutDelay of virtual
// time — ErrInjectedTimeout.
func (in *Injector) OpFault(p *sim.Proc, op string) error {
	if in == nil {
		return nil
	}
	r := in.spec.Rates
	if r.OpError > 0 && in.opRNG.Float64() < r.OpError {
		in.emit("op.error", op)
		return fmt.Errorf("%w: %s", ErrInjected, op)
	}
	if r.OpTimeout > 0 && in.opRNG.Float64() < r.OpTimeout {
		in.emit("op.timeout", op)
		p.Sleep(in.spec.TimeoutDelay)
		return fmt.Errorf("%w: %s after %v", ErrInjectedTimeout, op, in.spec.TimeoutDelay)
	}
	return nil
}

// linkFault is installed as the network's per-message fault hook.
func (in *Injector) linkFault(a, b simnet.NodeID, size int) simnet.LinkFault {
	var lf simnet.LinkFault
	if a == b {
		return lf
	}
	r := in.spec.Rates
	if r.LinkLoss > 0 && in.linkRNG.Float64() < r.LinkLoss {
		lf.Drop = true
		in.emit("link.drop", fmt.Sprintf("%d->%d", a, b))
	}
	if r.LinkDup > 0 && in.linkRNG.Float64() < r.LinkDup {
		lf.Duplicate = true
		in.emit("link.dup", fmt.Sprintf("%d->%d", a, b))
	}
	if r.DelaySpike > 0 && in.linkRNG.Float64() < r.DelaySpike {
		// Spike of 1–5 RTTs, magnitude from the injector's own stream.
		mult := 1 + 4*in.linkRNG.Float64()
		lf.ExtraDelay = time.Duration(mult * float64(in.net.RTT(a, b)))
		in.emit("link.delay", fmt.Sprintf("%d->%d +%v", a, b, lf.ExtraDelay))
	}
	return lf
}

// reachable is installed as the network's partition predicate.
func (in *Injector) reachable(a, b simnet.NodeID) bool {
	if !in.partActive {
		return true
	}
	return in.part[a] == in.part[b]
}

func (in *Injector) setPartition(groups [][]simnet.NodeID) {
	in.part = make(map[simnet.NodeID]int)
	for g, nodes := range groups {
		for _, id := range nodes {
			in.part[id] = g
		}
	}
	in.partActive = true
	in.emit("partition", fmt.Sprintf("%d groups", len(groups)))
}

func (in *Injector) healPartition() {
	if in == nil || !in.partActive {
		return
	}
	in.partActive = false
	in.part = nil
	in.emit("heal", "")
}

func (in *Injector) setNodeDown(id simnet.NodeID, down bool) {
	if in.cl == nil || in.cl.Node(id) == nil {
		return
	}
	in.cl.SetDown(id, down)
	if down {
		in.emit("node.crash", fmt.Sprintf("node %d", id))
	} else {
		in.emit("node.recover", fmt.Sprintf("node %d", id))
	}
	for _, fn := range in.onDown {
		fn(id, down)
	}
}

func (in *Injector) setRackDown(rack int, down bool) {
	if in.cl == nil {
		return
	}
	kind := "rack.restore"
	if down {
		kind = "rack.power"
	}
	in.emit(kind, fmt.Sprintf("rack %d", rack))
	for _, n := range in.cl.Nodes() {
		if n.Rack == rack {
			in.setNodeDown(n.ID, down)
		}
	}
}

// armSchedule spawns a virtual-time process that applies schedule events in
// order. Only called for non-empty schedules, so idle specs never add a
// process to the env.
func (in *Injector) armSchedule() {
	evs := make([]Event, len(in.spec.Schedule))
	copy(evs, in.spec.Schedule)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	in.env.Go("fault-schedule", func(p *sim.Proc) {
		for _, ev := range evs {
			if until := sim.Time(0).Add(ev.At).Sub(p.Now()); until > 0 {
				p.Sleep(until)
			}
			in.apply(ev)
		}
	})
}

func (in *Injector) apply(ev Event) {
	switch ev.Action {
	case CrashNode:
		in.setNodeDown(ev.Node, true)
	case RecoverNode:
		in.setNodeDown(ev.Node, false)
	case RackPower:
		in.setRackDown(ev.Rack, true)
	case RackRestore:
		in.setRackDown(ev.Rack, false)
	case Partition:
		in.setPartition(ev.Groups)
	case Heal:
		in.healPartition()
	}
}

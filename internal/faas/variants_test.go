package faas

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/platform"
	"repro/internal/sim"
)

// resizeFn is a function with two implementations: a cheap Wasm build and
// a GPU build 10x faster — §3.1's simultaneous-implementations scenario.
func resizeFn() *Function {
	return &Function{
		Name:        "resize",
		Kind:        platform.Wasm,
		TypicalExec: 100 * time.Millisecond,
		Handler: func(inv *Invocation) error {
			inv.Proc().Sleep(inv.Scale(100 * time.Millisecond))
			return nil
		},
		Variants: []Variant{
			{Name: "wasm", Kind: platform.Wasm, Res: cluster.Resources{MilliCPU: 1000, MemMB: 256}, SpeedFactor: 1},
			{Name: "gpu", Kind: platform.GPU, Res: cluster.Resources{GPUs: 1}, SpeedFactor: 10},
		},
	}
}

func TestGoalCostPicksCheapVariant(t *testing.T) {
	env, rt := testRuntime(11, Config{})
	if err := rt.Register(resizeFn()); err != nil {
		t.Fatal(err)
	}
	env.Go("c", func(p *sim.Proc) {
		inst, err := rt.Invoke(p, "resize", nil, PlacementHints{Goal: GoalCost}, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if inst.Variant().Name != "wasm" {
			t.Errorf("GoalCost chose %q, want wasm", inst.Variant().Name)
		}
	})
	env.Run()
}

func TestGoalLatencyPicksFastVariantWhenBothCold(t *testing.T) {
	// Cold GPU boots in 2s vs wasm's 50µs, but then runs 10x faster:
	// 2s + 10ms > 50µs + 100ms, so a *cold* latency-optimal choice is wasm.
	env, rt := testRuntime(12, Config{})
	if err := rt.Register(resizeFn()); err != nil {
		t.Fatal(err)
	}
	env.Go("c", func(p *sim.Proc) {
		inst, err := rt.Invoke(p, "resize", nil, PlacementHints{Goal: GoalLatency}, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if inst.Variant().Name != "wasm" {
			t.Errorf("cold GoalLatency chose %q, want wasm (GPU cold start dominates)", inst.Variant().Name)
		}
	})
	env.Run()
}

func TestGoalLatencySwitchesToWarmGPU(t *testing.T) {
	env, rt := testRuntime(13, Config{})
	if err := rt.Register(resizeFn()); err != nil {
		t.Fatal(err)
	}
	env.Go("c", func(p *sim.Proc) {
		// Warm a GPU instance explicitly via the default goal on a GPU-only
		// variant: force it by invoking with GoalLatency twice — first call
		// picks wasm (cold GPU), so warm the GPU by estimating... Instead,
		// warm it directly: temporarily make cost goal pick GPU is wrong;
		// use chooseVariant bypass: invoke once with a hand-built hint on
		// the GPU variant by exhausting wasm? Simplest honest path: warm
		// the GPU variant through a latency call after making it warm via
		// direct cold start.
		if _, err := rt.coldStart(p, rt.fns["resize"], 1, PlacementHints{}); err != nil {
			t.Error(err)
			return
		}
		// Release the warmed instance to the idle pool.
		for _, in := range rt.pool["resize"] {
			rt.release(in)
		}
		inst, err := rt.Invoke(p, "resize", nil, PlacementHints{Goal: GoalLatency}, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if inst.Variant().Name != "gpu" {
			t.Errorf("warm GoalLatency chose %q, want gpu (10x faster, already warm)", inst.Variant().Name)
		}
	})
	env.Run()
}

func TestVariantScaleSpeedsUpExecution(t *testing.T) {
	env, rt := testRuntime(14, Config{})
	if err := rt.Register(resizeFn()); err != nil {
		t.Fatal(err)
	}
	var wasmTook, gpuTook time.Duration
	env.Go("c", func(p *sim.Proc) {
		// Wasm run.
		t0 := p.Now()
		if _, err := rt.Invoke(p, "resize", nil, PlacementHints{Goal: GoalCost}, nil); err != nil {
			t.Error(err)
			return
		}
		wasmTook = p.Now().Sub(t0)
		// Warm GPU then time a warm GPU run.
		if _, err := rt.coldStart(p, rt.fns["resize"], 1, PlacementHints{}); err != nil {
			t.Error(err)
			return
		}
		for _, in := range rt.pool["resize"] {
			rt.release(in)
		}
		t0 = p.Now()
		inst, err := rt.Invoke(p, "resize", nil, PlacementHints{Goal: GoalLatency}, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if inst.Variant().Name != "gpu" {
			t.Fatalf("expected warm gpu, got %q", inst.Variant().Name)
		}
		gpuTook = p.Now().Sub(t0)
	})
	env.Run()
	if gpuTook >= wasmTook {
		t.Errorf("gpu variant (%v) not faster than wasm (%v)", gpuTook, wasmTook)
	}
	// ~10x compute speedup, modulo overheads.
	if gpuTook > wasmTook/4 {
		t.Errorf("gpu variant %v not near 10x faster than %v", gpuTook, wasmTook)
	}
}

func TestSingleVariantDefaultUnchanged(t *testing.T) {
	env, rt := testRuntime(15, Config{})
	if err := rt.Register(wasmFn("plain", sleeper(time.Millisecond))); err != nil {
		t.Fatal(err)
	}
	env.Go("c", func(p *sim.Proc) {
		inst, err := rt.Invoke(p, "plain", nil, PlacementHints{Goal: GoalLatency}, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if inst.Variant().Name != "primary" || inst.Variant().SpeedFactor != 1 {
			t.Errorf("synthesised variant = %+v", inst.Variant())
		}
	})
	env.Run()
}

func TestVariantsDoNotShareWarmInstances(t *testing.T) {
	env, rt := testRuntime(16, Config{})
	if err := rt.Register(resizeFn()); err != nil {
		t.Fatal(err)
	}
	env.Go("c", func(p *sim.Proc) {
		// A warm wasm instance must not serve a request that chose gpu.
		if _, err := rt.Invoke(p, "resize", nil, PlacementHints{Goal: GoalCost}, nil); err != nil {
			t.Error(err)
			return
		}
		if _, err := rt.coldStart(p, rt.fns["resize"], 1, PlacementHints{}); err != nil {
			t.Error(err)
			return
		}
		for _, in := range rt.pool["resize"] {
			rt.release(in)
		}
		inst, err := rt.Invoke(p, "resize", nil, PlacementHints{Goal: GoalLatency}, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if inst.Variant().Name != "gpu" {
			t.Errorf("latency goal served by %q", inst.Variant().Name)
		}
	})
	env.Run()
	if rt.ColdStarts.Value() != 2 {
		t.Errorf("cold starts = %d, want 2 (one per variant)", rt.ColdStarts.Value())
	}
}

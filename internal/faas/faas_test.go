package faas

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// randomPlacer is a trivial in-package placer so faas tests don't depend
// on internal/scheduler.
type randomPlacer struct{ c *cluster.Cluster }

func (r randomPlacer) Place(res cluster.Resources, hints PlacementHints) (*cluster.Node, bool) {
	if hints.HasNear {
		if n := r.c.Node(hints.NearNode); n != nil && res.Fits(n.Free()) {
			return n, false
		}
	}
	return r.c.FirstFit(res), false
}

func testRuntime(seed int64, cfg Config) (*sim.Env, *Runtime) {
	env := sim.NewEnv(seed)
	net := simnet.New(env, simnet.DC2021)
	cl := cluster.New(env, net, cluster.Config{
		Racks: 2, NodesPerRack: 4,
		NodeCap:         cluster.Resources{MilliCPU: 16000, MemMB: 32768},
		GPUNodesPerRack: 1, GPUsPerGPUNode: 2,
	})
	cfg.CodeStore = net.AddNode(0)
	return env, NewRuntime(cl, randomPlacer{cl}, cfg)
}

func sleeper(d time.Duration) HandlerFunc {
	return func(inv *Invocation) error {
		inv.Proc().Sleep(d)
		return nil
	}
}

func wasmFn(name string, h HandlerFunc) *Function {
	return &Function{Name: name, Kind: platform.Wasm, CodeSize: 1 << 20, Handler: h}
}

func TestRegisterAndInvoke(t *testing.T) {
	env, rt := testRuntime(1, Config{})
	if err := rt.Register(wasmFn("f", sleeper(time.Millisecond))); err != nil {
		t.Fatal(err)
	}
	env.Go("c", func(p *sim.Proc) {
		inst, err := rt.Invoke(p, "f", []byte("body"), PlacementHints{}, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if inst == nil || inst.Node == nil {
			t.Error("no instance")
		}
	})
	env.Run()
	if rt.Invocations.Value() != 1 || rt.ColdStarts.Value() != 1 {
		t.Errorf("invocations=%d cold=%d", rt.Invocations.Value(), rt.ColdStarts.Value())
	}
}

func TestRegisterValidation(t *testing.T) {
	_, rt := testRuntime(1, Config{})
	if err := rt.Register(&Function{Name: "", Handler: sleeper(0)}); err == nil {
		t.Error("nameless function accepted")
	}
	if err := rt.Register(&Function{Name: "x"}); err == nil {
		t.Error("handlerless function accepted")
	}
	if err := rt.Register(wasmFn("dup", sleeper(0))); err != nil {
		t.Fatal(err)
	}
	if err := rt.Register(wasmFn("dup", sleeper(0))); err == nil {
		t.Error("duplicate registration accepted")
	}
}

func TestUnknownFunction(t *testing.T) {
	env, rt := testRuntime(1, Config{})
	env.Go("c", func(p *sim.Proc) {
		_, err := rt.Invoke(p, "ghost", nil, PlacementHints{}, nil)
		if !errors.Is(err, ErrUnknownFunction) {
			t.Errorf("err = %v", err)
		}
	})
	env.Run()
}

func TestBodySizeLimit(t *testing.T) {
	env, rt := testRuntime(1, Config{})
	if err := rt.Register(wasmFn("f", sleeper(0))); err != nil {
		t.Fatal(err)
	}
	env.Go("c", func(p *sim.Proc) {
		_, err := rt.Invoke(p, "f", make([]byte, MaxBodySize+1), PlacementHints{}, nil)
		if !errors.Is(err, ErrBodyTooLarge) {
			t.Errorf("err = %v", err)
		}
	})
	env.Run()
}

func TestWarmReuse(t *testing.T) {
	env, rt := testRuntime(1, Config{})
	if err := rt.Register(wasmFn("f", sleeper(time.Millisecond))); err != nil {
		t.Fatal(err)
	}
	env.Go("c", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if _, err := rt.Invoke(p, "f", nil, PlacementHints{}, nil); err != nil {
				t.Error(err)
			}
		}
	})
	env.Run()
	if rt.ColdStarts.Value() != 1 {
		t.Errorf("cold starts = %d, want 1", rt.ColdStarts.Value())
	}
	if rt.WarmStarts.Value() != 4 {
		t.Errorf("warm starts = %d, want 4", rt.WarmStarts.Value())
	}
}

func TestColdStartLatencyVisible(t *testing.T) {
	env, rt := testRuntime(1, Config{})
	fn := &Function{Name: "vm", Kind: platform.MicroVM, CodeSize: 0, Handler: sleeper(0)}
	if err := rt.Register(fn); err != nil {
		t.Fatal(err)
	}
	var cold, warm time.Duration
	env.Go("c", func(p *sim.Proc) {
		t0 := p.Now()
		if _, err := rt.Invoke(p, "vm", nil, PlacementHints{}, nil); err != nil {
			t.Error(err)
		}
		cold = p.Now().Sub(t0)
		t0 = p.Now()
		if _, err := rt.Invoke(p, "vm", nil, PlacementHints{}, nil); err != nil {
			t.Error(err)
		}
		warm = p.Now().Sub(t0)
	})
	env.Run()
	spec := platform.Specs(platform.MicroVM)
	if cold < spec.ColdStart {
		t.Errorf("cold invoke %v < platform cold start %v", cold, spec.ColdStart)
	}
	if warm >= spec.ColdStart {
		t.Errorf("warm invoke %v paid a cold start", warm)
	}
}

func TestAutoscaleFromZeroToMany(t *testing.T) {
	env, rt := testRuntime(2, Config{})
	if err := rt.Register(wasmFn("f", sleeper(10*time.Millisecond))); err != nil {
		t.Fatal(err)
	}
	const burst = 50
	done := env.NewBarrier(burst)
	for i := 0; i < burst; i++ {
		env.Go("c", func(p *sim.Proc) {
			if _, err := rt.Invoke(p, "f", nil, PlacementHints{}, nil); err != nil {
				t.Error(err)
			}
			done.Arrive()
		})
	}
	env.Run()
	// All 50 arrive at t=0 with no warm instances: every one cold-starts.
	if rt.ColdStarts.Value() != burst {
		t.Errorf("cold starts = %d, want %d (scale from zero)", rt.ColdStarts.Value(), burst)
	}
	if rt.WarmCount("f") != burst {
		t.Errorf("warm count = %d, want %d", rt.WarmCount("f"), burst)
	}
}

func TestIdleReaperShrinksToZero(t *testing.T) {
	env, rt := testRuntime(3, Config{IdleTimeout: 50 * time.Millisecond})
	if err := rt.Register(wasmFn("f", sleeper(time.Millisecond))); err != nil {
		t.Fatal(err)
	}
	env.Go("c", func(p *sim.Proc) {
		if _, err := rt.Invoke(p, "f", nil, PlacementHints{}, nil); err != nil {
			t.Error(err)
		}
	})
	env.RunUntil(sim.Time(time.Second))
	if rt.WarmCount("f") != 0 {
		t.Errorf("warm count = %d after idle timeout, want 0 (scale to zero)", rt.WarmCount("f"))
	}
	// Resources must have been released.
	if used := rt.Cluster().TotalUsed(); !used.IsZero() {
		t.Errorf("cluster still holds %v after reap", used)
	}
}

func TestNoImplicitState(t *testing.T) {
	env, rt := testRuntime(4, Config{})
	leaked := false
	fn := wasmFn("stateful", func(inv *Invocation) error {
		if _, ok := inv.Scratch["seen"]; ok {
			leaked = true
		}
		inv.Scratch["seen"] = true
		return nil
	})
	if err := rt.Register(fn); err != nil {
		t.Fatal(err)
	}
	env.Go("c", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if _, err := rt.Invoke(p, "stateful", nil, PlacementHints{}, nil); err != nil {
				t.Error(err)
			}
		}
	})
	env.Run()
	if leaked {
		t.Error("scratch state survived across invocations — no-implicit-state violated")
	}
	if rt.WarmStarts.Value() != 2 {
		t.Errorf("warm starts = %d (instances were reused, state still must not leak)", rt.WarmStarts.Value())
	}
}

func TestPlacementHintHonoured(t *testing.T) {
	env, rt := testRuntime(5, Config{})
	if err := rt.Register(wasmFn("f", sleeper(time.Millisecond))); err != nil {
		t.Fatal(err)
	}
	target := rt.Cluster().Nodes()[3]
	env.Go("c", func(p *sim.Proc) {
		inst, err := rt.Invoke(p, "f", nil, PlacementHints{NearNode: target.ID, HasNear: true}, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if inst.Node.ID != target.ID {
			t.Errorf("placed on %v, hinted %v", inst.Node.ID, target.ID)
		}
	})
	env.Run()
}

func TestHandlerErrorPropagates(t *testing.T) {
	env, rt := testRuntime(6, Config{})
	boom := errors.New("boom")
	if err := rt.Register(wasmFn("bad", func(*Invocation) error { return boom })); err != nil {
		t.Fatal(err)
	}
	env.Go("c", func(p *sim.Proc) {
		if _, err := rt.Invoke(p, "bad", nil, PlacementHints{}, nil); !errors.Is(err, boom) {
			t.Errorf("err = %v, want boom", err)
		}
	})
	env.Run()
}

func TestBillingAccumulates(t *testing.T) {
	env, rt := testRuntime(7, Config{})
	if err := rt.Register(wasmFn("f", sleeper(100*time.Millisecond))); err != nil {
		t.Fatal(err)
	}
	env.Go("c", func(p *sim.Proc) {
		if _, err := rt.Invoke(p, "f", nil, PlacementHints{}, nil); err != nil {
			t.Error(err)
		}
	})
	env.Run()
	if rt.Meter.Total() <= 0 {
		t.Error("no compute charge recorded")
	}
	if rt.BusySeconds < 0.09 {
		t.Errorf("BusySeconds = %v, want ~0.1", rt.BusySeconds)
	}
	rt.Drain()
	if rt.InstanceSeconds <= 0 {
		t.Error("Drain did not account instance seconds")
	}
}

func TestConcurrencySharing(t *testing.T) {
	env, rt := testRuntime(8, Config{})
	fn := wasmFn("shared", sleeper(10*time.Millisecond))
	fn.Concurrency = 8
	if err := rt.Register(fn); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		delay := time.Duration(i) * time.Millisecond // arrive while instance 1 is busy
		env.Go("c", func(p *sim.Proc) {
			p.Sleep(delay)
			if _, err := rt.Invoke(p, "shared", nil, PlacementHints{}, nil); err != nil {
				t.Error(err)
			}
		})
	}
	env.Run()
	if rt.ColdStarts.Value() != 1 {
		t.Errorf("cold starts = %d, want 1 (concurrency=8 shares one instance)", rt.ColdStarts.Value())
	}
}

func TestFailNodeKillsInstancesAndReplaces(t *testing.T) {
	env, rt := testRuntime(9, Config{})
	if err := rt.Register(wasmFn("f", sleeper(time.Millisecond))); err != nil {
		t.Fatal(err)
	}
	var firstNode simnet.NodeID
	env.Go("c", func(p *sim.Proc) {
		inst, err := rt.Invoke(p, "f", nil, PlacementHints{}, nil)
		if err != nil {
			t.Error(err)
			return
		}
		firstNode = inst.Node.ID
		// The machine dies.
		if killed := rt.FailNode(firstNode); killed != 1 {
			t.Errorf("FailNode killed %d, want 1", killed)
		}
		if rt.WarmCount("f") != 0 {
			t.Errorf("warm count = %d after node failure", rt.WarmCount("f"))
		}
		// Next invocation re-places (cold) and succeeds.
		inst2, err := rt.Invoke(p, "f", nil, PlacementHints{}, nil)
		if err != nil {
			t.Errorf("invoke after node failure: %v", err)
			return
		}
		if inst2 == nil {
			t.Error("no replacement instance")
		}
	})
	env.Run()
	if rt.ColdStarts.Value() != 2 {
		t.Errorf("cold starts = %d, want 2", rt.ColdStarts.Value())
	}
	if rt.NodeFailKills != 1 {
		t.Errorf("NodeFailKills = %d", rt.NodeFailKills)
	}
	// Resources of the dead instances were released.
	if used := rt.Cluster().Node(firstNode).Used(); !used.IsZero() {
		t.Errorf("failed node still holds %v", used)
	}
}

func TestFailNodeOnEmptyNodeIsNoop(t *testing.T) {
	_, rt := testRuntime(10, Config{})
	if killed := rt.FailNode(simnet.NodeID(0)); killed != 0 {
		t.Errorf("killed %d on empty node", killed)
	}
}

func TestFailNodeDuringInflightCallDoesNotResurrect(t *testing.T) {
	env, rt := testRuntime(17, Config{})
	if err := rt.Register(wasmFn("slow", sleeper(10*time.Millisecond))); err != nil {
		t.Fatal(err)
	}
	var inst *Instance
	env.Go("caller", func(p *sim.Proc) {
		var err error
		inst, err = rt.Invoke(p, "slow", nil, PlacementHints{}, nil)
		if err != nil {
			t.Error(err)
		}
	})
	env.Go("killer", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond) // mid-flight
		for _, n := range rt.Cluster().Nodes() {
			rt.FailNode(n.ID)
		}
	})
	env.Run()
	if inst == nil {
		t.Fatal("no instance")
	}
	// The dead instance must not have returned to the idle pool.
	if rt.WarmCount("slow") != 0 {
		t.Errorf("WarmCount = %d after node failure, want 0", rt.WarmCount("slow"))
	}
	// Accounting must be consistent: exactly one destroy, resources freed.
	for _, n := range rt.Cluster().Nodes() {
		if !n.Used().IsZero() {
			t.Errorf("node %d still holds %v", n.ID, n.Used())
		}
	}
}

// With FailFast on (how chaos runs configure the runtime), an invocation
// whose node dies mid-call returns at the fault time with the node error
// instead of running to completion.
func TestFailFastInterruptsAtFaultTime(t *testing.T) {
	env, rt := testRuntime(1, Config{})
	rt.SetFailFast(true) // the post-construction path core's chaos wiring uses
	if err := rt.Register(wasmFn("slow", sleeper(100*time.Millisecond))); err != nil {
		t.Fatal(err)
	}
	var ierr error
	var elapsed time.Duration
	env.Go("caller", func(p *sim.Proc) {
		start := p.Now()
		_, ierr = rt.Invoke(p, "slow", nil, PlacementHints{}, nil)
		elapsed = p.Now().Sub(start)
	})
	env.Go("killer", func(p *sim.Proc) {
		p.Sleep(50 * time.Millisecond) // mid-handler
		for _, n := range rt.Cluster().Nodes() {
			rt.FailNode(n.ID)
		}
	})
	env.Run()
	if !errors.Is(ierr, cluster.ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown at the fault time", ierr)
	}
	if elapsed >= 100*time.Millisecond {
		t.Errorf("invocation took %v: ran to completion despite node failure", elapsed)
	}
	// The dead instance must not return to the idle pool.
	if rt.WarmCount("slow") != 0 {
		t.Errorf("WarmCount = %d after node failure, want 0", rt.WarmCount("slow"))
	}
}

// Without FailFast (the default), the same scenario runs to completion —
// the historical inline path that keeps fault-free runs byte-identical.
func TestFailFastOffRunsToCompletion(t *testing.T) {
	env, rt := testRuntime(1, Config{})
	if err := rt.Register(wasmFn("slow", sleeper(100*time.Millisecond))); err != nil {
		t.Fatal(err)
	}
	var ierr error
	var elapsed time.Duration
	env.Go("caller", func(p *sim.Proc) {
		start := p.Now()
		_, ierr = rt.Invoke(p, "slow", nil, PlacementHints{}, nil)
		elapsed = p.Now().Sub(start)
	})
	env.Go("killer", func(p *sim.Proc) {
		p.Sleep(50 * time.Millisecond)
		for _, n := range rt.Cluster().Nodes() {
			rt.FailNode(n.ID)
		}
	})
	env.Run()
	if ierr != nil {
		t.Fatalf("err = %v, want completion with FailFast off", ierr)
	}
	if elapsed < 100*time.Millisecond {
		t.Errorf("invocation took %v, want the full handler duration", elapsed)
	}
}

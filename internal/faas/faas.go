// Package faas implements PCSI computation (§3.1): functions with a
// universal compute interface, no implicit state between invocations, and
// narrow, heterogeneous execution platforms.
//
// The runtime autoscales each function from zero: an invocation with no
// idle instance cold-starts a fresh one on a node chosen by the pluggable
// Placer; warm instances serve subsequent invocations until an idle
// timeout reaps them. Instance time is metered for pay-per-use billing.
package faas

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/cost"
	"repro/internal/fault"
	"repro/internal/fncache"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// MaxBodySize bounds the pass-by-value request body (§3.1: "a small
// pass-by-value request body"); larger payloads must travel through the
// data layer.
const MaxBodySize = 4096

// Errors returned by the runtime. All three classify as fatal at this
// layer; core.DefaultRetryable overrides ErrNoPlacement to retryable,
// because a full cluster drains as instances are reaped.
var (
	ErrUnknownFunction = fault.Fatal("faas: unknown function")
	ErrBodyTooLarge    = fault.Fatal("faas: request body exceeds MaxBodySize")
	ErrNoPlacement     = fault.Fatal("faas: no node can host the function")
)

// PlacementHints guide the Placer for one instance start.
type PlacementHints struct {
	// NearNode requests co-location with a specific node (task-graph
	// locality, §4.1).
	NearNode simnet.NodeID
	HasNear  bool
	// PreferGPUNode asks for placement on a GPU-equipped node even for
	// CPU-only work — §4.1's forward-looking placement of a producer next
	// to its accelerator-bound consumer.
	PreferGPUNode bool
	// Scavenge requests harvested idle capacity (§4.2).
	Scavenge bool
	// Goal selects among a function's variants (§3.1's optimizer).
	Goal Goal
	// Tenant names the workload for QoS admission and weighted-fair
	// queueing ("" = the default tenant). Ignored when the runtime has no
	// QoS controller.
	Tenant string
}

// Placer chooses a node for a new instance. Implementations live in
// internal/scheduler.
type Placer interface {
	// Place returns the node to start an instance on, and whether the
	// allocation should be scavenged. A nil node means no capacity.
	Place(res cluster.Resources, hints PlacementHints) (*cluster.Node, bool)
}

// HandlerFunc is the body of a function. It runs inside a simulation
// process and models its compute by sleeping; it reaches state only
// through the Invocation's explicit inputs and outputs.
type HandlerFunc func(inv *Invocation) error

// Function is a registered function. Functions are themselves stored as
// objects in the data layer (CodeSize bytes fetched on cold start).
type Function struct {
	Name string
	Kind platform.Kind
	// Res is the per-instance resource footprint (beyond the platform
	// baseline).
	Res cluster.Resources
	// CodeSize is the size of the function's code object, fetched from
	// the code store on every cold start.
	CodeSize int64
	// Handler is the function body.
	Handler HandlerFunc
	// Concurrency is the max in-flight invocations per instance (1 =
	// classic FaaS).
	Concurrency int
	// Variants optionally provide alternative implementations (see
	// variants.go); when empty, Kind/Res above define the only one.
	Variants []Variant
	// TypicalExec is the modelled baseline compute time the optimizer
	// uses to estimate variant latency and cost.
	TypicalExec time.Duration
}

// Invocation carries one call's context.
type Invocation struct {
	proc     *sim.Proc
	Fn       *Function
	Body     []byte
	Instance *Instance
	// Scratch is per-invocation state, destroyed on return — the "no
	// implicit state" rule made mechanical.
	Scratch map[string]any
	// Ctx is an opaque slot the embedding system (PCSI core) uses to give
	// handlers data-layer access.
	Ctx any
	// Seq is the invocation sequence number on this runtime.
	Seq int64
}

// Proc returns the simulation process the handler runs in.
func (inv *Invocation) Proc() *sim.Proc { return inv.proc }

// Scale adjusts a baseline compute duration for the implementation
// serving this call: handlers write Sleep(inv.Scale(base)) and faster
// variants finish proportionally sooner.
func (inv *Invocation) Scale(d time.Duration) time.Duration {
	sf := inv.Instance.Variant().SpeedFactor
	if sf <= 0 {
		sf = 1
	}
	return time.Duration(float64(d) / sf)
}

// Node returns the node the invocation executes on.
func (inv *Invocation) Node() simnet.NodeID { return inv.Instance.Node.ID }

// instState tracks an instance through its lifecycle.
type instState uint8

const (
	instIdle instState = iota
	instBusy
	instDead
)

// Instance is one warm copy of a function.
type Instance struct {
	Fn        *Function
	Node      *cluster.Node
	alloc     *cluster.Alloc
	state     instState
	idleSince sim.Time
	bornAt    sim.Time
	busy      time.Duration
	inflight  int
	variant   int
}

// Variant returns the implementation this instance runs.
func (i *Instance) Variant() Variant { return variants(i.Fn)[i.variant] }

// Scavenged reports whether the instance runs on harvested capacity.
func (i *Instance) Scavenged() bool { return i.alloc.Scavenged }

// Config tunes the runtime.
type Config struct {
	// IdleTimeout reaps instances idle this long (0 = never).
	IdleTimeout time.Duration
	// CodeStore is the node code objects are fetched from on cold start.
	CodeStore simnet.NodeID
	// EvictionProb is the per-use probability that a scavenged instance
	// was preempted and must cold-start again.
	EvictionProb float64
	// Metrics optionally shares a metrics registry with the embedding
	// system; NewRuntime creates a private one when nil. The runtime's
	// counters and histograms register themselves there.
	Metrics *trace.Registry
	// FailFast races each handler against its node's failure event so an
	// invocation on a machine that dies mid-call fails at the fault time
	// instead of running to completion. Off by default: the extra handler
	// process changes event interleaving, so fault-free runs keep the
	// historical inline path byte-identical. Chaos runs switch it on.
	FailFast bool
	// QoS optionally gates invocations through an admission controller
	// (qos.ClassInvoke). Nil = no admission control, byte-identical to the
	// pre-QoS runtime.
	QoS *qos.Controller
	// FnCache optionally colocates a function cache with the executors:
	// node failures drop the node's cached state along with its instances
	// (the cache lives in the executor's DRAM). Nil = no cache.
	FnCache *fncache.Cache
}

// Runtime hosts functions on a cluster.
type Runtime struct {
	env  *sim.Env
	cl   *cluster.Cluster
	net  *simnet.Network
	plc  Placer
	cfg  Config
	fns  map[string]*Function
	pool map[string][]*Instance
	seq  int64
	// fnInvokes counts per-function invocations for the variant
	// optimizer's promotion rule.
	fnInvokes map[string]int64
	reg       *trace.Registry

	// Metrics. The fields alias entries in Metrics() — the registry owns
	// the canonical directory; the fields keep call sites terse.
	ColdStarts  *metrics.Counter
	WarmStarts  *metrics.Counter
	Invocations *metrics.Counter
	Preemptions *metrics.Counter
	// InvokeFails counts invocations that failed after admission —
	// placement errors and fail-fast node deaths. Typed sheds are not
	// failures (a shed is an answer), so SLO burn rates can separate
	// "degraded by design" from "broken".
	InvokeFails *metrics.Counter
	InvokeLat   *metrics.Histogram
	Meter       *cost.Meter
	// NodeFailKills counts instances lost to injected node failures.
	NodeFailKills int64
	// InstanceSeconds accumulates billed instance lifetime.
	InstanceSeconds float64
	// BusySeconds accumulates time instances spent executing.
	BusySeconds float64

	// reaperWake releases the parked reaper when instances exist again;
	// parking the reaper while the fleet is empty lets the event queue
	// drain so simulations terminate.
	reaperWake *sim.Event
}

// NewRuntime returns a runtime placing instances with plc.
func NewRuntime(cl *cluster.Cluster, plc Placer, cfg Config) *Runtime {
	reg := cfg.Metrics
	if reg == nil {
		reg = trace.NewRegistry()
	}
	rt := &Runtime{
		env:  cl.Env(),
		cl:   cl,
		net:  cl.Net(),
		plc:  plc,
		cfg:  cfg,
		fns:  make(map[string]*Function),
		pool: make(map[string][]*Instance),
		reg:  reg,

		ColdStarts:  metrics.NewCounter("cold_starts"),
		WarmStarts:  metrics.NewCounter("warm_starts"),
		Invocations: metrics.NewCounter("invocations"),
		Preemptions: metrics.NewCounter("preemptions"),
		InvokeFails: metrics.NewCounter("invoke_failures"),
		InvokeLat:   metrics.NewHistogram("invoke_latency"),
		Meter:       cost.NewMeter("faas"),
	}
	reg.Register(rt.ColdStarts)
	reg.Register(rt.WarmStarts)
	reg.Register(rt.Invocations)
	reg.Register(rt.Preemptions)
	reg.Register(rt.InvokeFails)
	reg.Register(rt.InvokeLat)
	if cfg.IdleTimeout > 0 {
		rt.startReaper()
	}
	return rt
}

// Metrics returns the registry holding every runtime metric.
func (rt *Runtime) Metrics() *trace.Registry { return rt.reg }

// Env returns the runtime's simulation environment.
func (rt *Runtime) Env() *sim.Env { return rt.env }

// Cluster returns the backing cluster.
func (rt *Runtime) Cluster() *cluster.Cluster { return rt.cl }

// Register adds a function. Concurrency defaults to 1.
func (rt *Runtime) Register(fn *Function) error {
	if fn.Name == "" || fn.Handler == nil {
		return errors.New("faas: function needs a name and handler")
	}
	if _, dup := rt.fns[fn.Name]; dup {
		return fmt.Errorf("faas: function %q already registered", fn.Name)
	}
	if fn.Concurrency <= 0 {
		fn.Concurrency = 1
	}
	rt.fns[fn.Name] = fn
	return nil
}

// Lookup returns a registered function.
func (rt *Runtime) Lookup(name string) (*Function, bool) {
	fn, ok := rt.fns[name]
	return fn, ok
}

// Invoke runs fn with the given body, blocking the calling process until
// the handler returns. It returns the instance that served the call.
func (rt *Runtime) Invoke(p *sim.Proc, name string, body []byte, hints PlacementHints, ctx any) (*Instance, error) {
	fn, ok := rt.fns[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownFunction, name)
	}
	if len(body) > MaxBodySize {
		return nil, fmt.Errorf("%w: %d bytes", ErrBodyTooLarge, len(body))
	}
	sp := trace.Of(rt.env).Start(p, "faas", "invoke", trace.Str("fn", name))
	start := p.Now()
	// Admission control: park in the tenant's weighted-fair queue (or shed
	// under overload) before any placement work happens. A nil controller
	// admits inline with zero overhead.
	grant, err := rt.cfg.QoS.Admit(p, qos.Request{Tenant: hints.Tenant, Class: qos.ClassInvoke})
	if err != nil {
		sp.Annotate(trace.Str("err", err.Error()))
		sp.Close(p)
		return nil, err
	}
	defer grant.Release()
	qsp := trace.Of(rt.env).Start(p, "sched", "acquire")
	inst, err := rt.acquire(p, fn, hints)
	qsp.Close(p)
	if err != nil {
		rt.InvokeFails.Inc()
		sp.Annotate(trace.Str("err", err.Error()))
		sp.Close(p)
		return nil, err
	}
	sp.Annotate(trace.Int("node", int64(inst.Node.ID)))
	spec := platform.Specs(inst.Variant().Kind)
	p.Sleep(spec.InvokeOverhead)
	rt.seq++
	inv := &Invocation{
		proc:     p,
		Fn:       fn,
		Body:     append([]byte(nil), body...),
		Instance: inst,
		Scratch:  make(map[string]any),
		Ctx:      ctx,
		Seq:      rt.seq,
	}
	busyFrom := p.Now()
	xsp := trace.Of(rt.env).Start(p, "fn", fn.Name)
	var herr error
	if rt.cfg.FailFast {
		herr = rt.runFailFast(p, fn, inv, inst)
	} else {
		herr = fn.Handler(inv)
	}
	xsp.Close(p)
	if herr != nil {
		rt.InvokeFails.Inc()
	}
	took := p.Now().Sub(busyFrom)
	inst.busy += took
	rt.BusySeconds += took.Seconds()
	// Destroy per-invocation state: the no-implicit-state rule.
	inv.Scratch = nil
	rt.release(inst)
	rt.Invocations.Inc()
	rt.InvokeLat.Observe(p.Now().Sub(start))
	fp := variantFootprint(inst.Variant())
	rt.Meter.Charge("compute", cost.ComputeBook.ComputeCost(
		fp.MilliCPU, fp.MemMB, fp.GPUs, took, inst.Scavenged()))
	sp.Close(p)
	return inst, herr
}

// SetFailFast toggles Config.FailFast after construction (chaos wiring).
func (rt *Runtime) SetFailFast(on bool) { rt.cfg.FailFast = on }

// runFailFast executes the handler in a child process and races it against
// the hosting node's failure event. On node failure the invocation returns
// immediately with the node error; the orphaned handler keeps running in
// the dead instance but its effects are already moot.
func (rt *Runtime) runFailFast(p *sim.Proc, fn *Function, inv *Invocation, inst *Instance) error {
	done := rt.env.NewEvent()
	parent := p.SpanCtx()
	rt.env.Go("handler:"+fn.Name, func(hp *sim.Proc) {
		hp.SetSpanCtx(parent)
		inv.proc = hp
		done.Complete(fn.Handler(inv))
	})
	idx, v, err := p.WaitAny(done, inst.Node.FailEvent())
	if idx == 1 {
		return fmt.Errorf("faas: %q interrupted: %w", fn.Name, err)
	}
	if v == nil {
		return nil
	}
	return v.(error)
}

// acquire returns an idle instance or cold-starts one.
func (rt *Runtime) acquire(p *sim.Proc, fn *Function, hints PlacementHints) (*Instance, error) {
	variant := rt.chooseVariant(fn, hints.Goal)
	for {
		inst := rt.takeIdle(fn, variant, hints)
		if inst == nil {
			break
		}
		// Scavenged instances may have been preempted while idle. Only
		// idle instances can be found preempted — one with calls in
		// flight is demonstrably alive.
		if inst.state == instIdle && inst.Scavenged() && rt.cfg.EvictionProb > 0 &&
			rt.env.Rand().Float64() < rt.cfg.EvictionProb {
			rt.Preemptions.Inc()
			rt.destroy(inst)
			continue
		}
		inst.state = instBusy
		inst.inflight++
		rt.WarmStarts.Inc()
		return inst, nil
	}
	return rt.coldStart(p, fn, variant, hints)
}

// takeIdle pops an idle instance of the chosen variant, preferring one on
// the hinted node.
func (rt *Runtime) takeIdle(fn *Function, variant int, hints PlacementHints) *Instance {
	insts := rt.pool[fn.Name]
	pick := -1
	for i, in := range insts {
		available := in.variant == variant && (in.state == instIdle ||
			(in.state == instBusy && in.inflight < in.Fn.Concurrency))
		if !available {
			continue
		}
		if hints.HasNear && in.Node.ID == hints.NearNode {
			pick = i
			break
		}
		if pick < 0 {
			pick = i
		}
	}
	if pick < 0 {
		return nil
	}
	return insts[pick]
}

// coldStart places, allocates, boots, and fetches code for a fresh
// instance of the chosen variant.
func (rt *Runtime) coldStart(p *sim.Proc, fn *Function, variant int, hints PlacementHints) (*Instance, error) {
	v := variants(fn)[variant]
	res := variantFootprint(v)
	sp := trace.Of(rt.env).Start(p, "faas", "coldstart", trace.Str("fn", fn.Name))
	defer sp.Close(p)
	node, scavenge := rt.plc.Place(res, hints)
	if node == nil {
		return nil, fmt.Errorf("%w: %q needs %v", ErrNoPlacement, fn.Name, res)
	}
	sp.Annotate(trace.Int("node", int64(node.ID)))
	if scavenge {
		sp.Annotate(trace.Str("scavenged", "true"))
	}
	var alloc *cluster.Alloc
	var err error
	if scavenge {
		alloc, err = rt.cl.Scavenge(node, res)
	} else {
		alloc, err = rt.cl.Allocate(node, res)
	}
	if err != nil {
		return nil, err
	}
	spec := platform.Specs(v.Kind)
	// Fetch the function's code object from the data layer.
	if fn.CodeSize > 0 {
		rt.net.Send(p, rt.cfg.CodeStore, node.ID, int(fn.CodeSize))
	}
	p.Sleep(spec.ColdStart)
	inst := &Instance{
		Fn:      fn,
		Node:    node,
		alloc:   alloc,
		state:   instBusy,
		bornAt:  p.Now(),
		variant: variant,
	}
	inst.inflight++
	rt.pool[fn.Name] = append(rt.pool[fn.Name], inst)
	rt.ColdStarts.Inc()
	if rt.reaperWake != nil {
		rt.reaperWake.Complete(nil)
	}
	return inst, nil
}

// release returns an instance to the idle pool. Instances destroyed while
// a call was in flight (node failure) stay dead.
func (rt *Runtime) release(inst *Instance) {
	inst.inflight--
	if inst.inflight <= 0 && inst.state != instDead {
		inst.state = instIdle
		inst.idleSince = rt.env.Now()
	}
}

// destroy tears an instance down and releases its resources.
func (rt *Runtime) destroy(inst *Instance) {
	if inst.state == instDead {
		return
	}
	inst.state = instDead
	life := rt.env.Now().Sub(inst.bornAt)
	rt.InstanceSeconds += life.Seconds()
	_ = rt.cl.Release(inst.alloc)
	insts := rt.pool[inst.Fn.Name]
	for i, in := range insts {
		if in == inst {
			rt.pool[inst.Fn.Name] = append(insts[:i], insts[i+1:]...)
			break
		}
	}
}

// poolFns returns the pooled function names in sorted order. Every sweep
// over the whole fleet walks functions through this, so teardown sleeps,
// instance-second accounting, and kill ordering never depend on
// randomized map-iteration order.
func (rt *Runtime) poolFns() []string {
	fns := make([]string, 0, len(rt.pool))
	for fn := range rt.pool {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	return fns
}

// startReaper launches the idle-instance reaper. While the fleet is empty
// the reaper parks on reaperWake instead of polling, so an otherwise-idle
// simulation's event queue can drain.
func (rt *Runtime) startReaper() {
	rt.reaperWake = rt.env.NewEvent()
	rt.env.Go("faas-reaper", func(p *sim.Proc) {
		for {
			if rt.liveInstances() == 0 {
				rt.reaperWake = rt.env.NewEvent()
				if _, err := p.Wait(rt.reaperWake); err != nil {
					return
				}
			}
			p.Sleep(rt.cfg.IdleTimeout / 2)
			cutoff := p.Now().Add(-rt.cfg.IdleTimeout)
			for _, fn := range rt.poolFns() {
				for _, in := range append([]*Instance(nil), rt.pool[fn]...) {
					if in.state == instIdle && in.idleSince <= cutoff {
						p.Sleep(platform.Specs(in.Variant().Kind).Teardown)
						rt.destroy(in)
					}
				}
			}
		}
	})
}

func (rt *Runtime) liveInstances() int {
	n := 0
	for _, insts := range rt.pool {
		n += len(insts)
	}
	return n
}

// FailNode destroys every instance on the given node, modelling a machine
// failure. In-flight invocations on the node fail at their next yield;
// future invocations re-place elsewhere. Returns the number of instances
// killed.
func (rt *Runtime) FailNode(node simnet.NodeID) int {
	rt.cl.SetDown(node, true)
	if rt.cfg.FnCache != nil {
		// The colocated cache shares the machine's fate: lease entries and
		// lattice replicas in its DRAM are gone.
		rt.cfg.FnCache.DropNode(int(node))
	}
	killed := 0
	for _, fn := range rt.poolFns() {
		for _, in := range append([]*Instance(nil), rt.pool[fn]...) {
			if in.Node.ID == node && in.state != instDead {
				rt.destroy(in)
				killed++
			}
		}
	}
	rt.NodeFailKills += int64(killed)
	return killed
}

// Drain destroys every instance (end of experiment) so instance-seconds
// accounting is complete.
func (rt *Runtime) Drain() {
	for _, fn := range rt.poolFns() {
		for _, in := range append([]*Instance(nil), rt.pool[fn]...) {
			rt.destroy(in)
		}
	}
}

// WarmCount returns the number of live instances for a function.
func (rt *Runtime) WarmCount(name string) int {
	n := 0
	for _, in := range rt.pool[name] {
		if in.state != instDead {
			n++
		}
	}
	return n
}

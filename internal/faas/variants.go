package faas

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/cost"
	"repro/internal/platform"
)

// Variants implement §3.1's universal compute interface: "Multiple
// implementations of the same function can even be provided
// simultaneously, allowing an optimizer to choose dynamically among them
// to meet performance and cost goals." A Function may carry several
// Variant implementations — say a cheap Wasm build and a fast GPU build —
// and each invocation names a Goal; the runtime picks the implementation.

// Variant is one implementation of a function.
type Variant struct {
	// Name labels the implementation ("wasm", "gpu-fp16", ...).
	Name string
	Kind platform.Kind
	// Res is the per-instance resource demand beyond the platform
	// baseline.
	Res cluster.Resources
	// SpeedFactor scales the function's modelled compute time: a variant
	// with SpeedFactor 8 runs the same work 8x faster than baseline.
	SpeedFactor float64
}

// Goal states what an invocation wants optimised.
type Goal uint8

// The optimisation goals.
const (
	// GoalDefault keeps the legacy behaviour: the function's primary
	// implementation, warm instances preferred.
	GoalDefault Goal = iota
	// GoalLatency minimises expected completion time (warm fast variants
	// win; cold starts are charged against candidates).
	GoalLatency
	// GoalCost minimises expected dollars for the invocation.
	GoalCost
)

// String names the goal.
func (g Goal) String() string {
	switch g {
	case GoalLatency:
		return "latency"
	case GoalCost:
		return "cost"
	default:
		return "default"
	}
}

// variantFootprint is the variant's total demand.
func variantFootprint(v Variant) cluster.Resources {
	return platform.Specs(v.Kind).Footprint.Add(v.Res)
}

// variants returns the function's implementation list; a function without
// explicit variants has exactly one, synthesised from its own fields.
func variants(fn *Function) []Variant {
	if len(fn.Variants) > 0 {
		return fn.Variants
	}
	return []Variant{{Name: "primary", Kind: fn.Kind, Res: fn.Res, SpeedFactor: 1}}
}

// estimate returns the optimizer's expected latency and cost for running
// one invocation on variant v, given whether a warm instance exists.
func (rt *Runtime) estimate(fn *Function, v Variant, warm bool) (time.Duration, cost.USD) {
	speed := v.SpeedFactor
	if speed <= 0 {
		speed = 1
	}
	exec := fn.TypicalExec
	if exec <= 0 {
		exec = 10 * time.Millisecond
	}
	exec = time.Duration(float64(exec) / speed)
	spec := platform.Specs(v.Kind)
	lat := spec.InvokeOverhead + exec
	if !warm {
		lat += spec.ColdStart
	}
	fp := variantFootprint(v)
	usd := cost.ComputeBook.ComputeCost(fp.MilliCPU, fp.MemMB, fp.GPUs, exec, false)
	return lat, usd
}

// promotionThreshold is the sustained-traffic point at which the latency
// optimizer evaluates variants at steady state: with enough calls, a cold
// start amortises, so it pays to boot the faster implementation now
// (INFaaS-style promotion).
const promotionThreshold = 3

// chooseVariant picks the implementation for this invocation.
func (rt *Runtime) chooseVariant(fn *Function, goal Goal) int {
	vs := variants(fn)
	if len(vs) == 1 || goal == GoalDefault {
		return 0
	}
	if rt.fnInvokes == nil {
		rt.fnInvokes = make(map[string]int64)
	}
	rt.fnInvokes[fn.Name]++
	steady := goal == GoalLatency && rt.fnInvokes[fn.Name] > promotionThreshold
	best := 0
	var bestLat time.Duration
	var bestCost cost.USD
	for i, v := range vs {
		warm := rt.hasWarmVariant(fn, i) || steady
		lat, usd := rt.estimate(fn, v, warm)
		if i == 0 {
			bestLat, bestCost = lat, usd
			continue
		}
		switch goal {
		case GoalLatency:
			if lat < bestLat {
				best, bestLat, bestCost = i, lat, usd
			}
		case GoalCost:
			if usd < bestCost {
				best, bestLat, bestCost = i, lat, usd
			}
		}
	}
	return best
}

// hasWarmVariant reports whether an idle (or shareable) instance of the
// given variant exists.
func (rt *Runtime) hasWarmVariant(fn *Function, variant int) bool {
	for _, in := range rt.pool[fn.Name] {
		if in.variant != variant {
			continue
		}
		if in.state == instIdle || (in.state == instBusy && in.inflight < fn.Concurrency) {
			return true
		}
	}
	return false
}

package wire

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

var codecs = []Codec{JSONCodec{}, BinaryCodec{}}

func sample() *Message {
	return &Message{
		Op:      "GetObject",
		Key:     "bucket/data/file.bin",
		Auth:    "bearer-token-abc123",
		Headers: map[string]string{"consistency": "eventual", "range": "0-1023"},
		Body:    []byte("payload bytes \x00\x01\xff"),
		Status:  200,
	}
}

func TestRoundTrip(t *testing.T) {
	for _, c := range codecs {
		m := sample()
		enc, err := c.Encode(m)
		if err != nil {
			t.Fatalf("%s encode: %v", c.Name(), err)
		}
		got, err := c.Decode(enc)
		if err != nil {
			t.Fatalf("%s decode: %v", c.Name(), err)
		}
		if got.Op != m.Op || got.Key != m.Key || got.Auth != m.Auth || got.Status != m.Status {
			t.Errorf("%s: fields mismatch: %+v", c.Name(), got)
		}
		if !bytes.Equal(got.Body, m.Body) {
			t.Errorf("%s: body mismatch", c.Name())
		}
		for k, v := range m.Headers {
			if got.Headers[k] != v {
				t.Errorf("%s: header %q = %q, want %q", c.Name(), k, got.Headers[k], v)
			}
		}
	}
}

func TestEmptyMessage(t *testing.T) {
	for _, c := range codecs {
		enc, err := c.Encode(&Message{})
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		got, err := c.Decode(enc)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if got.Op != "" || len(got.Body) != 0 {
			t.Errorf("%s: %+v", c.Name(), got)
		}
	}
}

// Property: both codecs round-trip arbitrary messages.
func TestRoundTripProperty(t *testing.T) {
	for _, c := range codecs {
		c := c
		f := func(op, key, auth string, body []byte, status uint16) bool {
			m := &Message{Op: op, Key: key, Auth: auth, Body: body, Status: int(status)}
			enc, err := c.Encode(m)
			if err != nil {
				return false
			}
			got, err := c.Decode(enc)
			if err != nil {
				return false
			}
			return got.Op == op && got.Key == key && got.Auth == auth &&
				got.Status == int(status) && bytes.Equal(got.Body, body)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestBinaryMoreCompactThanJSON(t *testing.T) {
	m := sample()
	j, err := JSONCodec{}.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BinaryCodec{}.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) >= len(j) {
		t.Errorf("binary (%d bytes) not smaller than JSON (%d bytes)", len(b), len(j))
	}
}

func TestDecodeGarbage(t *testing.T) {
	for _, c := range codecs {
		if _, err := c.Decode([]byte("{{{{not-valid")); err == nil {
			t.Errorf("%s accepted garbage", c.Name())
		}
	}
	// Truncated binary message.
	full, err := BinaryCodec{}.Encode(sample())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(full); cut += 7 {
		if _, err := (BinaryCodec{}).Decode(full[:cut]); err == nil {
			t.Errorf("binary accepted truncation at %d", cut)
		}
	}
}

func TestModelCostCalibration(t *testing.T) {
	// Table 1: "Object marshaling (1k): >50,000 ns".
	j := JSONCodec{}.ModelCost(1024)
	if j < 50_000 {
		t.Errorf("JSON 1k model cost = %v, Table 1 says >50µs", j)
	}
	b := BinaryCodec{}.ModelCost(1024)
	if b*10 > j {
		t.Errorf("binary cost %v not ≪ JSON cost %v", b, j)
	}
	if (JSONCodec{}).ModelCost(1<<20) <= (JSONCodec{}).ModelCost(1024) {
		t.Error("model cost does not scale with size")
	}
}

func TestBinaryDeterministic(t *testing.T) {
	m := sample()
	a, err := BinaryCodec{}.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BinaryCodec{}.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("binary encoding nondeterministic (header ordering?)")
	}
}

// Package wire provides the message codecs used at system boundaries: a
// JSON envelope codec representing today's web-services data path (the
// "object marshaling" row of Table 1) and a compact binary codec
// representing the stateful PCSI protocol.
//
// Both codecs are real implementations measured by the Table 1 benchmarks;
// the simulated REST gateway additionally charges their modelled costs.
package wire

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"
)

// Message is a request/response envelope exchanged with a storage or
// compute service.
type Message struct {
	Op      string            // operation name, e.g. "GetObject"
	Key     string            // object key / path
	Auth    string            // bearer credential (REST resends every call)
	Headers map[string]string // protocol metadata
	Body    []byte            // payload
	Status  int               // response status
}

// Codec serialises messages.
type Codec interface {
	// Name identifies the codec in experiment output.
	Name() string
	Encode(*Message) ([]byte, error)
	Decode([]byte) (*Message, error)
	// ModelCost returns the simulated CPU time to encode+decode a message
	// with a body of size bytes, used by the simulated gateway.
	ModelCost(size int) time.Duration
}

// --- JSON codec (web services baseline) ---

// JSONCodec marshals the envelope as JSON with a base64 body, the shape of
// a typical REST cloud API.
type JSONCodec struct{}

type jsonEnvelope struct {
	Op      string            `json:"op"`
	Key     string            `json:"key"`
	Auth    string            `json:"auth,omitempty"`
	Headers map[string]string `json:"headers,omitempty"`
	Body    string            `json:"body,omitempty"`
	Status  int               `json:"status,omitempty"`
}

// Name implements Codec.
func (JSONCodec) Name() string { return "json" }

// Encode implements Codec.
func (JSONCodec) Encode(m *Message) ([]byte, error) {
	env := jsonEnvelope{Op: m.Op, Key: m.Key, Auth: m.Auth, Headers: m.Headers, Status: m.Status}
	if len(m.Body) > 0 {
		env.Body = base64.StdEncoding.EncodeToString(m.Body)
	}
	return json.Marshal(env)
}

// Decode implements Codec.
func (JSONCodec) Decode(b []byte) (*Message, error) {
	var env jsonEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, fmt.Errorf("wire: json decode: %w", err)
	}
	m := &Message{Op: env.Op, Key: env.Key, Auth: env.Auth, Headers: env.Headers, Status: env.Status}
	if env.Body != "" {
		body, err := base64.StdEncoding.DecodeString(env.Body)
		if err != nil {
			return nil, fmt.Errorf("wire: body decode: %w", err)
		}
		m.Body = body
	}
	return m, nil
}

// ModelCost implements Codec: calibrated to Table 1's "Object marshaling
// (1k): >50,000 ns" — a fixed envelope cost of 45µs plus ~5µs per KiB of
// body (JSON+base64 throughput of roughly 200 MB/s for encode+decode).
func (JSONCodec) ModelCost(size int) time.Duration {
	const perKiB = 5 * time.Microsecond
	return 45*time.Microsecond + time.Duration(float64(size)/1024*float64(perKiB))
}

// --- Binary codec (PCSI protocol) ---

// BinaryCodec is a length-prefixed binary framing with no text encoding
// and no body transformation — the kind of protocol a stateful cloud
// system interface would use.
type BinaryCodec struct{}

// Name implements Codec.
func (BinaryCodec) Name() string { return "binary" }

var errShort = errors.New("wire: short binary message")

func putString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func getString(b []byte) (string, []byte, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || uint64(len(b)-k) < n {
		return "", nil, errShort
	}
	return string(b[k : k+int(n)]), b[k+int(n):], nil
}

// Encode implements Codec.
func (BinaryCodec) Encode(m *Message) ([]byte, error) {
	buf := make([]byte, 0, 64+len(m.Body))
	buf = putString(buf, m.Op)
	buf = putString(buf, m.Key)
	buf = putString(buf, m.Auth)
	buf = binary.AppendUvarint(buf, uint64(m.Status))
	buf = binary.AppendUvarint(buf, uint64(len(m.Headers)))
	// Deterministic header order.
	keys := make([]string, 0, len(m.Headers))
	for k := range m.Headers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		buf = putString(buf, k)
		buf = putString(buf, m.Headers[k])
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.Body)))
	buf = append(buf, m.Body...)
	return buf, nil
}

// Decode implements Codec.
func (BinaryCodec) Decode(b []byte) (*Message, error) {
	m := &Message{}
	var err error
	if m.Op, b, err = getString(b); err != nil {
		return nil, err
	}
	if m.Key, b, err = getString(b); err != nil {
		return nil, err
	}
	if m.Auth, b, err = getString(b); err != nil {
		return nil, err
	}
	status, k := binary.Uvarint(b)
	if k <= 0 {
		return nil, errShort
	}
	m.Status = int(status)
	b = b[k:]
	nh, k := binary.Uvarint(b)
	if k <= 0 {
		return nil, errShort
	}
	b = b[k:]
	if nh > 0 {
		m.Headers = make(map[string]string, nh)
		for i := uint64(0); i < nh; i++ {
			var key, val string
			if key, b, err = getString(b); err != nil {
				return nil, err
			}
			if val, b, err = getString(b); err != nil {
				return nil, err
			}
			m.Headers[key] = val
		}
	}
	nb, k := binary.Uvarint(b)
	if k <= 0 || uint64(len(b)-k) < nb {
		return nil, errShort
	}
	m.Body = append([]byte(nil), b[k:k+int(nb)]...)
	return m, nil
}

// ModelCost implements Codec: binary framing costs roughly a memcpy —
// two orders of magnitude below JSON.
func (BinaryCodec) ModelCost(size int) time.Duration {
	const perKiB = 300 * time.Nanosecond
	return 200*time.Nanosecond + time.Duration(float64(size)/1024*float64(perKiB))
}

// Package fncache implements Cloudburst-style colocated function caches:
// per-node caches keyed by object reference, living next to the faas
// executors so functions touch hot state at DRAM cost instead of paying a
// store round trip (PAPERS.md: Cloudburst; ROADMAP item 4).
//
// Coherence follows the paper's two-entry consistency menu. Linearizable
// objects are cached under virtual-time leases with invalidate-on-write:
// every write path bumps the key's epoch before it mutates the store, so a
// cached entry can never outlive the data it copies. Eventual objects are
// cached as lattice CRDT values (this file): commutative, associative,
// idempotent merge functions that replicas can apply in any order and
// still converge — the mathematical contract that makes "merge locally,
// gossip later" safe.
package fncache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Lattice is a join-semilattice value: Merge is the least upper bound and
// must be commutative, associative, and idempotent; Leq is the induced
// partial order (a ≤ b ⇔ merge(a,b) = b). Encode renders a deterministic
// tagged binary form — equal lattice values encode byte-identically, so
// convergence checks can compare encodings.
type Lattice interface {
	Merge(other Lattice) Lattice
	Leq(other Lattice) bool
	Encode() []byte
}

// Encoding tags. Every encoded lattice starts with one of these, so store
// payloads self-identify as mergeable (the consistency layer's anti-entropy
// asks Mergeable before replacing a concurrent update with LWW).
const (
	tagLWW      byte = 0xC1
	tagGCounter byte = 0xC2
	tagORSet    byte = 0xC3
	tagLMap     byte = 0xC4
)

// ErrNotLattice reports a payload that does not decode as a lattice value.
var ErrNotLattice = errors.New("fncache: payload is not an encoded lattice")

// Mergeable reports whether a payload carries a lattice encoding.
func Mergeable(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	switch b[0] {
	case tagLWW, tagGCounter, tagORSet, tagLMap:
		return true
	}
	return false
}

// Decode parses an encoded lattice value.
func Decode(b []byte) (Lattice, error) {
	v, rest, err := decodeAny(b)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrNotLattice, len(rest))
	}
	return v, nil
}

// MergePayload merges two encoded lattice values of the same type. ok is
// false when either payload is not a lattice or the types differ — the
// caller falls back to last-writer-wins.
func MergePayload(a, b []byte) ([]byte, bool) {
	if len(a) == 0 || len(b) == 0 || a[0] != b[0] {
		return nil, false
	}
	av, err := Decode(a)
	if err != nil {
		return nil, false
	}
	bv, err := Decode(b)
	if err != nil {
		return nil, false
	}
	return av.Merge(bv).Encode(), true
}

// PayloadLeq reports whether encoded lattice a ≤ b. It errors when either
// payload is not a lattice or the types differ.
func PayloadLeq(a, b []byte) (bool, error) {
	if len(a) == 0 || len(b) == 0 || a[0] != b[0] {
		return false, ErrNotLattice
	}
	av, err := Decode(a)
	if err != nil {
		return false, err
	}
	bv, err := Decode(b)
	if err != nil {
		return false, err
	}
	return av.Leq(bv), nil
}

// ---------------------------------------------------------------------------
// LWW register

// LWWReg is a last-writer-wins register: a timestamped value where merge
// keeps the greater (T, Actor, Val) triple. The Val tiebreak makes merge
// commutative even when two actors collide on (T, Actor).
type LWWReg struct {
	T     uint64
	Actor int32
	Val   []byte
}

func (r LWWReg) less(o LWWReg) bool {
	if r.T != o.T {
		return r.T < o.T
	}
	if r.Actor != o.Actor {
		return r.Actor < o.Actor
	}
	return string(r.Val) < string(o.Val)
}

// Merge keeps the greater register.
func (r LWWReg) Merge(other Lattice) Lattice {
	o := other.(LWWReg)
	if r.less(o) {
		return o
	}
	return r
}

// Leq reports r ≤ other in the register order.
func (r LWWReg) Leq(other Lattice) bool {
	o := other.(LWWReg)
	return !o.less(r)
}

// Encode renders the register.
func (r LWWReg) Encode() []byte {
	b := []byte{tagLWW}
	b = binary.BigEndian.AppendUint64(b, r.T)
	b = binary.BigEndian.AppendUint32(b, uint32(r.Actor))
	b = binary.AppendUvarint(b, uint64(len(r.Val)))
	return append(b, r.Val...)
}

// ---------------------------------------------------------------------------
// G-counter

// GCounter is a grow-only counter: one monotone slot per actor, merged by
// element-wise maximum.
type GCounter map[int32]uint64

// Add bumps the actor's slot and returns the updated counter.
func (g GCounter) Add(actor int32, n uint64) GCounter {
	out := make(GCounter, len(g)+1)
	for k, v := range g {
		out[k] = v
	}
	out[actor] += n
	return out
}

// Count sums every actor's contribution.
func (g GCounter) Count() uint64 {
	var n uint64
	for _, v := range g {
		n += v
	}
	return n
}

// Merge takes the element-wise maximum.
func (g GCounter) Merge(other Lattice) Lattice {
	o := other.(GCounter)
	out := make(GCounter, len(g)+len(o))
	for k, v := range g {
		out[k] = v
	}
	for k, v := range o {
		if v > out[k] {
			out[k] = v
		}
	}
	return out
}

// Leq reports whether every slot of g is ≤ other's.
func (g GCounter) Leq(other Lattice) bool {
	o := other.(GCounter)
	for k, v := range g {
		if v > o[k] {
			return false
		}
	}
	return true
}

// Encode renders slots in sorted actor order.
func (g GCounter) Encode() []byte {
	actors := make([]int32, 0, len(g))
	for k, v := range g {
		if v != 0 {
			actors = append(actors, k)
		}
	}
	sort.Slice(actors, func(i, j int) bool { return actors[i] < actors[j] })
	b := []byte{tagGCounter}
	b = binary.AppendUvarint(b, uint64(len(actors)))
	for _, a := range actors {
		b = binary.BigEndian.AppendUint32(b, uint32(a))
		b = binary.AppendUvarint(b, g[a])
	}
	return b
}

// ---------------------------------------------------------------------------
// OR-set

// ORSet is an observed-remove set: adds carry unique tags, removes
// tombstone the tags they observed, and merge unions both sides — so a
// concurrent add always survives a remove that never saw it.
type ORSet struct {
	Adds  map[string]map[uint64]bool
	Tombs map[uint64]bool
}

// NewORSet returns an empty set.
func NewORSet() ORSet {
	return ORSet{Adds: make(map[string]map[uint64]bool), Tombs: make(map[uint64]bool)}
}

func (s ORSet) clone() ORSet {
	out := NewORSet()
	for e, tags := range s.Adds {
		m := make(map[uint64]bool, len(tags))
		for t := range tags {
			m[t] = true
		}
		out.Adds[e] = m
	}
	for t := range s.Tombs {
		out.Tombs[t] = true
	}
	return out
}

// Add inserts elem under a fresh unique tag and returns the updated set.
func (s ORSet) Add(elem string, tag uint64) ORSet {
	out := s.clone()
	if out.Adds[elem] == nil {
		out.Adds[elem] = make(map[uint64]bool)
	}
	out.Adds[elem][tag] = true
	return out
}

// Remove tombstones every currently observed tag of elem.
func (s ORSet) Remove(elem string) ORSet {
	out := s.clone()
	for t := range out.Adds[elem] {
		out.Tombs[t] = true
	}
	return out
}

// Contains reports whether elem has a live (untombstoned) tag.
func (s ORSet) Contains(elem string) bool {
	for t := range s.Adds[elem] {
		if !s.Tombs[t] {
			return true
		}
	}
	return false
}

// Elems returns the live elements in sorted order.
func (s ORSet) Elems() []string {
	var out []string
	for e := range s.Adds {
		if s.Contains(e) {
			out = append(out, e)
		}
	}
	sort.Strings(out)
	return out
}

// Merge unions adds and tombstones.
func (s ORSet) Merge(other Lattice) Lattice {
	o := other.(ORSet)
	out := s.clone()
	for e, tags := range o.Adds {
		if out.Adds[e] == nil {
			out.Adds[e] = make(map[uint64]bool, len(tags))
		}
		for t := range tags {
			out.Adds[e][t] = true
		}
	}
	for t := range o.Tombs {
		out.Tombs[t] = true
	}
	return out
}

// Leq reports whether s's adds and tombstones are subsets of other's.
func (s ORSet) Leq(other Lattice) bool {
	o := other.(ORSet)
	for e, tags := range s.Adds {
		for t := range tags {
			if !o.Adds[e][t] {
				return false
			}
		}
	}
	for t := range s.Tombs {
		if !o.Tombs[t] {
			return false
		}
	}
	return true
}

// Encode renders elements, tags, and tombstones in sorted order.
func (s ORSet) Encode() []byte {
	elems := make([]string, 0, len(s.Adds))
	for e := range s.Adds {
		if len(s.Adds[e]) > 0 {
			elems = append(elems, e)
		}
	}
	sort.Strings(elems)
	b := []byte{tagORSet}
	b = binary.AppendUvarint(b, uint64(len(elems)))
	for _, e := range elems {
		b = binary.AppendUvarint(b, uint64(len(e)))
		b = append(b, e...)
		tags := make([]uint64, 0, len(s.Adds[e]))
		for t := range s.Adds[e] {
			tags = append(tags, t)
		}
		sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
		b = binary.AppendUvarint(b, uint64(len(tags)))
		for _, t := range tags {
			b = binary.AppendUvarint(b, t)
		}
	}
	tombs := make([]uint64, 0, len(s.Tombs))
	for t := range s.Tombs {
		tombs = append(tombs, t)
	}
	sort.Slice(tombs, func(i, j int) bool { return tombs[i] < tombs[j] })
	b = binary.AppendUvarint(b, uint64(len(tombs)))
	for _, t := range tombs {
		b = binary.AppendUvarint(b, t)
	}
	return b
}

// ---------------------------------------------------------------------------
// Map of lattices

// LMap is a map whose values are themselves lattices, merged keywise —
// Cloudburst's composite lattice type (a map of registers/counters/sets).
type LMap map[string]Lattice

// Set returns a copy with key bound to v.
func (m LMap) Set(key string, v Lattice) LMap {
	out := make(LMap, len(m)+1)
	for k, lv := range m {
		out[k] = lv
	}
	out[key] = v
	return out
}

// Merge unions keys, merging values present on both sides.
func (m LMap) Merge(other Lattice) Lattice {
	o := other.(LMap)
	out := make(LMap, len(m)+len(o))
	for k, v := range m {
		out[k] = v
	}
	for k, v := range o {
		if have, ok := out[k]; ok {
			out[k] = have.Merge(v)
		} else {
			out[k] = v
		}
	}
	return out
}

// Leq reports whether every key of m exists in other with a ≥ value.
func (m LMap) Leq(other Lattice) bool {
	o := other.(LMap)
	for k, v := range m {
		ov, ok := o[k]
		if !ok || !v.Leq(ov) {
			return false
		}
	}
	return true
}

// Encode renders entries in sorted key order with nested encodings.
func (m LMap) Encode() []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b := []byte{tagLMap}
	b = binary.AppendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = binary.AppendUvarint(b, uint64(len(k)))
		b = append(b, k...)
		enc := m[k].Encode()
		b = binary.AppendUvarint(b, uint64(len(enc)))
		b = append(b, enc...)
	}
	return b
}

// ---------------------------------------------------------------------------
// Decoding

func decodeAny(b []byte) (Lattice, []byte, error) {
	if len(b) == 0 {
		return nil, nil, ErrNotLattice
	}
	switch b[0] {
	case tagLWW:
		return decodeLWW(b[1:])
	case tagGCounter:
		return decodeGCounter(b[1:])
	case tagORSet:
		return decodeORSet(b[1:])
	case tagLMap:
		return decodeLMap(b[1:])
	default:
		return nil, nil, fmt.Errorf("%w: tag 0x%02x", ErrNotLattice, b[0])
	}
}

func takeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: truncated varint", ErrNotLattice)
	}
	return v, b[n:], nil
}

func takeBytes(b []byte, n uint64) ([]byte, []byte, error) {
	if uint64(len(b)) < n {
		return nil, nil, fmt.Errorf("%w: truncated payload", ErrNotLattice)
	}
	return b[:n], b[n:], nil
}

func decodeLWW(b []byte) (Lattice, []byte, error) {
	if len(b) < 12 {
		return nil, nil, fmt.Errorf("%w: short register", ErrNotLattice)
	}
	r := LWWReg{T: binary.BigEndian.Uint64(b), Actor: int32(binary.BigEndian.Uint32(b[8:]))}
	n, rest, err := takeUvarint(b[12:])
	if err != nil {
		return nil, nil, err
	}
	val, rest, err := takeBytes(rest, n)
	if err != nil {
		return nil, nil, err
	}
	r.Val = append([]byte(nil), val...)
	return r, rest, nil
}

func decodeGCounter(b []byte) (Lattice, []byte, error) {
	n, rest, err := takeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	g := make(GCounter, n)
	for i := uint64(0); i < n; i++ {
		if len(rest) < 4 {
			return nil, nil, fmt.Errorf("%w: short counter slot", ErrNotLattice)
		}
		actor := int32(binary.BigEndian.Uint32(rest))
		var v uint64
		v, rest, err = takeUvarint(rest[4:])
		if err != nil {
			return nil, nil, err
		}
		g[actor] = v
	}
	return g, rest, nil
}

func decodeORSet(b []byte) (Lattice, []byte, error) {
	s := NewORSet()
	nElems, rest, err := takeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	for i := uint64(0); i < nElems; i++ {
		var n uint64
		n, rest, err = takeUvarint(rest)
		if err != nil {
			return nil, nil, err
		}
		var eb []byte
		eb, rest, err = takeBytes(rest, n)
		if err != nil {
			return nil, nil, err
		}
		elem := string(eb)
		var nTags uint64
		nTags, rest, err = takeUvarint(rest)
		if err != nil {
			return nil, nil, err
		}
		tags := make(map[uint64]bool, nTags)
		for j := uint64(0); j < nTags; j++ {
			var t uint64
			t, rest, err = takeUvarint(rest)
			if err != nil {
				return nil, nil, err
			}
			tags[t] = true
		}
		s.Adds[elem] = tags
	}
	nTombs, rest, err := takeUvarint(rest)
	if err != nil {
		return nil, nil, err
	}
	for i := uint64(0); i < nTombs; i++ {
		var t uint64
		t, rest, err = takeUvarint(rest)
		if err != nil {
			return nil, nil, err
		}
		s.Tombs[t] = true
	}
	return s, rest, nil
}

func decodeLMap(b []byte) (Lattice, []byte, error) {
	n, rest, err := takeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	m := make(LMap, n)
	for i := uint64(0); i < n; i++ {
		var kn uint64
		kn, rest, err = takeUvarint(rest)
		if err != nil {
			return nil, nil, err
		}
		var kb []byte
		kb, rest, err = takeBytes(rest, kn)
		if err != nil {
			return nil, nil, err
		}
		var vn uint64
		vn, rest, err = takeUvarint(rest)
		if err != nil {
			return nil, nil, err
		}
		var vb []byte
		vb, rest, err = takeBytes(rest, vn)
		if err != nil {
			return nil, nil, err
		}
		v, err := Decode(vb)
		if err != nil {
			return nil, nil, err
		}
		m[string(kb)] = v
	}
	return m, rest, nil
}

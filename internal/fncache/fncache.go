package fncache

import (
	"sort"
	"time"

	"repro/internal/consistency"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Key identifies a cached object. It is the object ID's underlying integer
// so the cache stays below the state layer's type surface; core converts at
// the boundary. Node identifiers are plain ints for the same reason.
type Key uint64

// DefaultLeaseTTL bounds how long a lease entry may be served without
// revalidation when the deployment does not choose its own TTL.
const DefaultLeaseTTL = 250 * time.Millisecond

// Config tunes a deployment's colocated caches. The zero value is never
// used directly: a nil *Config on core.Options means "no cache" and every
// hook in the data path stays inert.
type Config struct {
	// LeaseTTL is the virtual-time lease duration for linearizable
	// entries (default DefaultLeaseTTL). Invalidations, not expiry, carry
	// the coherence guarantee; the TTL is a backstop that bounds how long
	// a partitioned node can serve a frozen view.
	LeaseTTL sim.Duration
	// MaxEntriesPerNode caps each node's lease cache (0 = unbounded).
	// Eviction drops the smallest key first — deterministic, no clock.
	MaxEntriesPerNode int
}

// leaseEntry is one node's cached copy of a linearizable object.
type leaseEntry struct {
	data    []byte
	stamp   consistency.Stamp
	epoch   uint64
	expires sim.Time
}

// dirEntry is the per-key coherence directory: the lease epoch, whether a
// write is in flight, and which nodes hold entries (the invalidation
// fan-out set).
type dirEntry struct {
	epoch   uint64
	writing bool
	holders map[int]bool
}

// latticeReplica is one node's local lattice replica for an eventual key.
type latticeReplica struct {
	val Lattice
	// syncStamp is the store stamp last observed by a flush or pull; reads
	// served while the store has moved past it count as observed-stale.
	syncStamp consistency.Stamp
	dirty     bool
}

// Stats snapshots the cache counters (experiments, facade).
type Stats struct {
	Hits, Misses      int64
	Invalidations     int64
	StaleLeaseServes  int64
	LatticeMerges     int64
	LatticeStaleReads int64
}

// Cache is the deployment-wide directory of per-node colocated caches.
// It does no scheduling and sleeps for nothing itself: core charges the
// modelled DRAM and network costs at its call sites, so a disabled cache
// is exactly zero virtual-time overhead.
type Cache struct {
	env *sim.Env
	cfg Config

	lease map[int]map[Key]*leaseEntry
	dir   map[Key]*dirEntry
	lat   map[int]map[Key]*latticeReplica
	// latKeys tracks every key ever cached as a lattice, for the
	// convergence audit's deterministic sweep.
	latKeys map[Key]bool

	// Counters, registered in the deployment's metric registry so the
	// telemetry plane samples hit/miss/staleness series like any other.
	Hits              *metrics.Counter
	Misses            *metrics.Counter
	Invalidations     *metrics.Counter
	StaleLeaseServes  *metrics.Counter
	LatticeMerges     *metrics.Counter
	LatticeStaleReads *metrics.Counter
}

// New builds a cache and registers its counters in reg (which may be nil
// for tests).
func New(env *sim.Env, cfg Config, reg *trace.Registry) *Cache {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	c := &Cache{
		env:     env,
		cfg:     cfg,
		lease:   make(map[int]map[Key]*leaseEntry),
		dir:     make(map[Key]*dirEntry),
		lat:     make(map[int]map[Key]*latticeReplica),
		latKeys: make(map[Key]bool),

		Hits:              metrics.NewCounter("fncache_hits"),
		Misses:            metrics.NewCounter("fncache_misses"),
		Invalidations:     metrics.NewCounter("fncache_invalidations"),
		StaleLeaseServes:  metrics.NewCounter("fncache_stale_serves"),
		LatticeMerges:     metrics.NewCounter("fncache_lattice_merges"),
		LatticeStaleReads: metrics.NewCounter("fncache_stale_reads"),
	}
	if reg != nil {
		reg.Register(c.Hits)
		reg.Register(c.Misses)
		reg.Register(c.Invalidations)
		reg.Register(c.StaleLeaseServes)
		reg.Register(c.LatticeMerges)
		reg.Register(c.LatticeStaleReads)
	}
	return c
}

// Snapshot returns the current counter values.
func (c *Cache) Snapshot() Stats {
	return Stats{
		Hits:              c.Hits.Value(),
		Misses:            c.Misses.Value(),
		Invalidations:     c.Invalidations.Value(),
		StaleLeaseServes:  c.StaleLeaseServes.Value(),
		LatticeMerges:     c.LatticeMerges.Value(),
		LatticeStaleReads: c.LatticeStaleReads.Value(),
	}
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

func (c *Cache) dirFor(key Key) *dirEntry {
	d, ok := c.dir[key]
	if !ok {
		d = &dirEntry{holders: make(map[int]bool)}
		c.dir[key] = d
	}
	return d
}

func (c *Cache) nodeLease(node int) map[Key]*leaseEntry {
	m, ok := c.lease[node]
	if !ok {
		m = make(map[Key]*leaseEntry)
		c.lease[node] = m
	}
	return m
}

// ---------------------------------------------------------------------------
// Lease coherence (linearizable objects)

// Epoch returns the key's current lease epoch. A reader records it before
// the authoritative read; LeaseFill refuses the entry if a write bumped the
// epoch in between.
func (c *Cache) Epoch(key Key) uint64 { return c.dirFor(key).epoch }

// LeaseGet serves a linearizable read from the node's cache. A miss (no
// entry, stale epoch, expired TTL, or a write in flight) drops the entry
// and returns ok=false; the caller then reads the store and LeaseFills.
func (c *Cache) LeaseGet(node int, key Key, now sim.Time) (data []byte, stamp consistency.Stamp, ok bool) {
	d := c.dirFor(key)
	entries := c.nodeLease(node)
	e, have := entries[key]
	if !have {
		c.Misses.Inc()
		return nil, consistency.Stamp{}, false
	}
	if e.epoch != d.epoch || d.writing || now > e.expires {
		delete(entries, key)
		delete(d.holders, node)
		c.Misses.Inc()
		return nil, consistency.Stamp{}, false
	}
	c.Hits.Inc()
	return e.data, e.stamp, true
}

// LeaseFill installs a freshly read entry, validated against the epoch the
// reader observed before the authoritative read: if a write began since
// (epoch moved or is in flight), the fill is dropped — the reader keeps its
// correct data, the cache just declines to remember it.
func (c *Cache) LeaseFill(node int, key Key, data []byte, stamp consistency.Stamp, epochAtRead uint64, now sim.Time) {
	d := c.dirFor(key)
	if d.epoch != epochAtRead || d.writing {
		return
	}
	entries := c.nodeLease(node)
	if c.cfg.MaxEntriesPerNode > 0 && len(entries) >= c.cfg.MaxEntriesPerNode {
		if _, have := entries[key]; !have {
			c.evictOne(node, entries)
		}
	}
	entries[key] = &leaseEntry{
		data:    append([]byte(nil), data...),
		stamp:   stamp,
		epoch:   d.epoch,
		expires: now.Add(c.cfg.LeaseTTL),
	}
	d.holders[node] = true
}

// evictOne drops the smallest cached key — a deterministic victim choice
// that needs neither a clock nor randomness.
func (c *Cache) evictOne(node int, entries map[Key]*leaseEntry) {
	victim, any := Key(0), false
	for k := range entries {
		if !any || k < victim {
			victim, any = k, true
		}
	}
	if any {
		delete(entries, victim)
		delete(c.dirFor(victim).holders, node)
	}
}

// BeginWrite opens a write on key: the epoch advances, every holder's entry
// is dropped, and fills are refused until EndWrite. It returns the nodes
// that held entries, in sorted order, so the caller can charge the
// invalidation fan-out's network cost.
func (c *Cache) BeginWrite(key Key) []int {
	d := c.dirFor(key)
	d.epoch++
	d.writing = true
	holders := make([]int, 0, len(d.holders))
	for n := range d.holders {
		holders = append(holders, n)
		delete(c.nodeLease(n), key)
	}
	sort.Ints(holders)
	d.holders = make(map[int]bool)
	if len(holders) > 0 {
		c.Invalidations.Add(int64(len(holders)))
	}
	return holders
}

// EndWrite closes a write opened by BeginWrite.
func (c *Cache) EndWrite(key Key) { c.dirFor(key).writing = false }

// Invalidate drops key everywhere and advances its epoch (GC sweeps,
// namespace mirrors). Returns the number of entries dropped.
func (c *Cache) Invalidate(keys ...Key) int {
	dropped := 0
	for _, key := range keys {
		d, ok := c.dir[key]
		if ok {
			d.epoch++
			for n := range d.holders {
				delete(c.nodeLease(n), key)
				dropped++
			}
			d.holders = make(map[int]bool)
		}
		for _, reps := range c.lat {
			delete(reps, key)
		}
		delete(c.latKeys, key)
	}
	if dropped > 0 {
		c.Invalidations.Add(int64(dropped))
	}
	return dropped
}

// DropNode discards every entry and lattice replica a node holds (machine
// failure: the executor's DRAM is gone).
func (c *Cache) DropNode(node int) {
	for key := range c.lease[node] {
		delete(c.dirFor(key).holders, node)
	}
	delete(c.lease, node)
	delete(c.lat, node)
}

// ---------------------------------------------------------------------------
// Lattice coherence (eventual objects)

func (c *Cache) nodeLat(node int) map[Key]*latticeReplica {
	m, ok := c.lat[node]
	if !ok {
		m = make(map[Key]*latticeReplica)
		c.lat[node] = m
	}
	return m
}

// LatticeGet returns the node's local replica. ok=false means cold: the
// caller pulls from the store and calls LatticePull.
func (c *Cache) LatticeGet(node int, key Key) (Lattice, bool) {
	r, ok := c.nodeLat(node)[key]
	if !ok {
		c.Misses.Inc()
		return nil, false
	}
	c.Hits.Inc()
	return r.val, true
}

// LatticeMergeLocal merges delta into the node's replica and marks it
// dirty for the next flush. The replica is created if absent.
func (c *Cache) LatticeMergeLocal(node int, key Key, delta Lattice) {
	reps := c.nodeLat(node)
	r, ok := reps[key]
	if !ok {
		r = &latticeReplica{val: delta}
		reps[key] = r
	} else {
		r.val = r.val.Merge(delta)
	}
	r.dirty = true
	c.latKeys[key] = true
	c.LatticeMerges.Inc()
}

// LatticePull merges the store's value (read at stamp) into the node's
// replica and clears observed staleness up to that stamp.
func (c *Cache) LatticePull(node int, key Key, storeVal Lattice, stamp consistency.Stamp) {
	reps := c.nodeLat(node)
	r, ok := reps[key]
	if !ok {
		reps[key] = &latticeReplica{val: storeVal, syncStamp: stamp}
		c.latKeys[key] = true
		return
	}
	r.val = r.val.Merge(storeVal)
	r.syncStamp = stamp
	c.LatticeMerges.Inc()
}

// LatticeDirty reports whether the node's replica has unflushed local
// updates; Flushed clears the flag and records the store stamp the flush
// produced.
func (c *Cache) LatticeDirty(node int, key Key) bool {
	r, ok := c.nodeLat(node)[key]
	return ok && r.dirty
}

// Flushed marks the node's replica clean as of the given store stamp.
func (c *Cache) Flushed(node int, key Key, stamp consistency.Stamp) {
	if r, ok := c.nodeLat(node)[key]; ok {
		r.dirty = false
		r.syncStamp = stamp
	}
}

// NoteLatticeStale records a read served while the store held a newer
// stamp than the replica's last sync — the observed-staleness metric.
func (c *Cache) NoteLatticeStale() { c.LatticeStaleReads.Inc() }

// SyncStamp returns the stamp of the node replica's last flush or pull.
func (c *Cache) SyncStamp(node int, key Key) consistency.Stamp {
	if r, ok := c.nodeLat(node)[key]; ok {
		return r.syncStamp
	}
	return consistency.Stamp{}
}

// LatticeKeys returns every key cached as a lattice anywhere, sorted.
func (c *Cache) LatticeKeys() []Key {
	out := make([]Key, 0, len(c.latKeys))
	for k := range c.latKeys {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LatticeNodes returns the nodes holding a replica of key, sorted.
func (c *Cache) LatticeNodes(key Key) []int {
	var out []int
	for n, reps := range c.lat {
		if _, ok := reps[key]; ok {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

// NodeValue returns the encoded replica a node holds for key (convergence
// audit), or nil.
func (c *Cache) NodeValue(node int, key Key) []byte {
	if r, ok := c.nodeLat(node)[key]; ok {
		return r.val.Encode()
	}
	return nil
}

// InstallPulled replaces a node's replica wholesale after a quiescent pull
// (post-audit convergence): every replica adopts the merged store value.
func (c *Cache) InstallPulled(node int, key Key, v Lattice, stamp consistency.Stamp) {
	c.nodeLat(node)[key] = &latticeReplica{val: v, syncStamp: stamp}
}

package fncache

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/consistency"
	"repro/internal/sim"
)

// qc returns a seeded quick config so every property run is reproducible.
func qc(seed int64) *quick.Config {
	return &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(seed))}
}

// lmapFrom builds a mixed-type LMap from quick-generatable specs. Key
// prefixes keep the two value types on disjoint keys, as a real client
// would (merging different lattice types under one key is a schema error).
func lmapFrom(gcs map[string]GCounter, regs map[string]LWWReg) LMap {
	m := make(LMap, len(gcs)+len(regs))
	for k, v := range gcs {
		m["g:"+k] = v
	}
	for k, v := range regs {
		m["r:"+k] = v
	}
	return m
}

func checkLaws(t *testing.T, name string, f interface{}, seed int64) {
	t.Helper()
	if err := quick.Check(f, qc(seed)); err != nil {
		t.Errorf("%s: %v", name, err)
	}
}

// mergeEq reports whether two lattice values encode identically.
func mergeEq(a, b Lattice) bool { return bytes.Equal(a.Encode(), b.Encode()) }

func TestLatticeLawsLWW(t *testing.T) {
	checkLaws(t, "commutative", func(a, b LWWReg) bool {
		return mergeEq(a.Merge(b), b.Merge(a))
	}, 1)
	checkLaws(t, "associative", func(a, b, c LWWReg) bool {
		return mergeEq(a.Merge(b).Merge(c), a.Merge(b.Merge(c)))
	}, 2)
	checkLaws(t, "idempotent", func(a LWWReg) bool {
		return mergeEq(a.Merge(a), a)
	}, 3)
	checkLaws(t, "monotone", func(a, b LWWReg) bool {
		j := a.Merge(b)
		return a.Leq(j) && b.Leq(j)
	}, 4)
}

func TestLatticeLawsGCounter(t *testing.T) {
	checkLaws(t, "commutative", func(a, b GCounter) bool {
		return mergeEq(a.Merge(b), b.Merge(a))
	}, 5)
	checkLaws(t, "associative", func(a, b, c GCounter) bool {
		return mergeEq(a.Merge(b).Merge(c), a.Merge(b.Merge(c)))
	}, 6)
	checkLaws(t, "idempotent", func(a GCounter) bool {
		return mergeEq(a.Merge(a), a)
	}, 7)
	checkLaws(t, "monotone", func(a, b GCounter) bool {
		j := a.Merge(b)
		return a.Leq(j) && b.Leq(j)
	}, 8)
	checkLaws(t, "count-monotone", func(a GCounter, actor int32, n uint64) bool {
		b := a.Add(actor, n%1000)
		return a.Leq(b) && b.Count() >= a.Count()
	}, 9)
}

func TestLatticeLawsORSet(t *testing.T) {
	checkLaws(t, "commutative", func(a, b ORSet) bool {
		return mergeEq(a.Merge(b), b.Merge(a))
	}, 10)
	checkLaws(t, "associative", func(a, b, c ORSet) bool {
		return mergeEq(a.Merge(b).Merge(c), a.Merge(b.Merge(c)))
	}, 11)
	checkLaws(t, "idempotent", func(a ORSet) bool {
		return mergeEq(a.Merge(a), a)
	}, 12)
	checkLaws(t, "monotone", func(a, b ORSet) bool {
		j := a.Merge(b)
		return a.Leq(j) && b.Leq(j)
	}, 13)
	// Observed-remove semantics: an add concurrent with a remove survives
	// the merge, because the remove never observed its tag.
	checkLaws(t, "concurrent-add-wins", func(elem string, t1, t2 uint64) bool {
		if t1 == t2 {
			t2++
		}
		base := NewORSet().Add(elem, t1)
		removed := base.Remove(elem)
		readded := base.Add(elem, t2)
		m := removed.Merge(readded).(ORSet)
		return m.Contains(elem)
	}, 14)
}

func TestLatticeLawsLMap(t *testing.T) {
	checkLaws(t, "commutative", func(ga, gb map[string]GCounter, ra, rb map[string]LWWReg) bool {
		a, b := lmapFrom(ga, ra), lmapFrom(gb, rb)
		return mergeEq(a.Merge(b), b.Merge(a))
	}, 16)
	checkLaws(t, "associative", func(ga, gb, gc map[string]GCounter, ra, rb, rc map[string]LWWReg) bool {
		a, b, c := lmapFrom(ga, ra), lmapFrom(gb, rb), lmapFrom(gc, rc)
		return mergeEq(a.Merge(b).Merge(c), a.Merge(b.Merge(c)))
	}, 17)
	checkLaws(t, "idempotent", func(ga map[string]GCounter, ra map[string]LWWReg) bool {
		a := lmapFrom(ga, ra)
		return mergeEq(a.Merge(a), a)
	}, 18)
	checkLaws(t, "monotone", func(ga, gb map[string]GCounter, ra, rb map[string]LWWReg) bool {
		a, b := lmapFrom(ga, ra), lmapFrom(gb, rb)
		j := a.Merge(b)
		return a.Leq(j) && b.Leq(j)
	}, 19)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	checkLaws(t, "lww", func(a LWWReg) bool {
		v, err := Decode(a.Encode())
		return err == nil && mergeEq(v, a)
	}, 20)
	checkLaws(t, "gcounter", func(a GCounter) bool {
		v, err := Decode(a.Encode())
		return err == nil && mergeEq(v, a)
	}, 21)
	checkLaws(t, "orset", func(a ORSet) bool {
		v, err := Decode(a.Encode())
		return err == nil && mergeEq(v, a)
	}, 22)
	checkLaws(t, "lmap", func(ga map[string]GCounter, ra map[string]LWWReg) bool {
		a := lmapFrom(ga, ra)
		v, err := Decode(a.Encode())
		return err == nil && mergeEq(v, a)
	}, 23)
}

func TestMergePayload(t *testing.T) {
	checkLaws(t, "same-type", func(a, b GCounter) bool {
		m, ok := MergePayload(a.Encode(), b.Encode())
		if !ok {
			return false
		}
		le, err := PayloadLeq(a.Encode(), m)
		if err != nil || !le {
			return false
		}
		return bytes.Equal(m, a.Merge(b).Encode())
	}, 24)
	checkLaws(t, "cross-type-refused", func(a GCounter, b LWWReg) bool {
		_, ok := MergePayload(a.Encode(), b.Encode())
		return !ok
	}, 25)
	if Mergeable([]byte("plain bytes")) {
		t.Error("Mergeable accepted a non-lattice payload")
	}
	if _, ok := MergePayload([]byte{0x01, 0x02}, []byte{0x01, 0x03}); ok {
		t.Error("MergePayload merged non-lattice payloads")
	}
}

// TestLeaseEpochMonotonicity drives random op sequences against the lease
// directory next to a trivial model store (a counter bumped by each write)
// and checks the coherence contract: epochs never go backwards, and a hit
// always returns the model's current value — i.e. no entry survives a
// write that invalidated it, no fill lands during a write, and a fill
// against a moved epoch is refused.
func TestLeaseEpochMonotonicity(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(nil, Config{}, nil)
		store := map[Key]byte{}
		lastEpoch := map[Key]uint64{}
		now := sim.Time(0)
		for _, op := range ops {
			key := Key(op>>2) % 3
			node := int(op>>4) % 4
			switch op % 4 {
			case 0, 1: // read at node
				if data, _, ok := c.LeaseGet(node, key, now); ok {
					if len(data) != 1 || data[0] != store[key] {
						return false // stale hit: cache outlived a write
					}
				} else {
					e := c.Epoch(key)
					c.LeaseFill(node, key, []byte{store[key]}, stampOf(uint64(store[key])), e, now)
				}
			case 2: // write
				holders := c.BeginWrite(key)
				for i := 1; i < len(holders); i++ {
					if holders[i-1] >= holders[i] {
						return false // fan-out set must be sorted, unique
					}
				}
				store[key]++
				c.EndWrite(key)
			case 3: // racy fill: recorded epoch, then a write slips in
				e := c.Epoch(key)
				c.BeginWrite(key)
				store[key]++
				c.EndWrite(key)
				c.LeaseFill(node, key, []byte{store[key] - 1}, stampOf(uint64(store[key]-1)), e, now)
			}
			if ep := c.Epoch(key); ep < lastEpoch[key] {
				return false // epoch regressed
			} else {
				lastEpoch[key] = ep
			}
		}
		return true
	}
	if err := quick.Check(f, qc(26)); err != nil {
		t.Error(err)
	}
}

func stampOf(n uint64) consistency.Stamp { return consistency.Stamp{Counter: n} }

func TestLeaseTTLExpiry(t *testing.T) {
	c := New(nil, Config{LeaseTTL: 10}, nil)
	c.LeaseFill(1, 7, []byte{42}, stampOf(1), c.Epoch(7), sim.Time(0))
	if _, _, ok := c.LeaseGet(1, 7, sim.Time(5)); !ok {
		t.Fatal("entry should be live before TTL")
	}
	if _, _, ok := c.LeaseGet(1, 7, sim.Time(11)); ok {
		t.Fatal("entry served past its lease TTL")
	}
	if _, _, ok := c.LeaseGet(1, 7, sim.Time(5)); ok {
		t.Fatal("expired entry should have been dropped")
	}
}

func TestLeaseEviction(t *testing.T) {
	c := New(nil, Config{MaxEntriesPerNode: 2}, nil)
	now := sim.Time(0)
	for _, k := range []Key{5, 3, 9} {
		c.LeaseFill(0, k, []byte{byte(k)}, stampOf(uint64(k)), c.Epoch(k), now)
	}
	if _, _, ok := c.LeaseGet(0, 3, now); ok {
		t.Fatal("smallest key should have been evicted")
	}
	for _, k := range []Key{5, 9} {
		if _, _, ok := c.LeaseGet(0, k, now); !ok {
			t.Fatalf("key %d should have survived eviction", k)
		}
	}
}

func TestDropNodeAndInvalidate(t *testing.T) {
	c := New(nil, Config{}, nil)
	now := sim.Time(0)
	c.LeaseFill(0, 1, []byte{1}, stampOf(1), c.Epoch(1), now)
	c.LeaseFill(1, 1, []byte{1}, stampOf(1), c.Epoch(1), now)
	c.LatticeMergeLocal(0, 2, GCounter{}.Add(0, 1))
	c.DropNode(0)
	if _, _, ok := c.LeaseGet(0, 1, now); ok {
		t.Fatal("dropped node still serves lease entries")
	}
	if _, ok := c.LatticeGet(0, 2); ok {
		t.Fatal("dropped node still holds lattice replicas")
	}
	if _, _, ok := c.LeaseGet(1, 1, now); !ok {
		t.Fatal("surviving node lost its entry")
	}
	before := c.Epoch(1)
	if n := c.Invalidate(1); n != 1 {
		t.Fatalf("Invalidate dropped %d entries, want 1", n)
	}
	if c.Epoch(1) <= before {
		t.Fatal("Invalidate must advance the epoch")
	}
	if _, _, ok := c.LeaseGet(1, 1, now); ok {
		t.Fatal("invalidated entry still served")
	}
}

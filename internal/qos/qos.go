// Package qos implements admission control, weighted-fair queueing, and
// overload protection for the PCSI data plane and FaaS invocation path.
//
// The paper's §4 performance claim is that an explicit OS-style interface
// lets the provider schedule and isolate work predictably, where REST
// clouds expose only opaque throttling (429s) that clients answer with
// retries. This package is the scheduling half of that claim:
//
//   - Per-tenant weighted-fair queueing: start-time-fair virtual-time tags
//     over sim.Time decide dispatch order, so each backlogged tenant
//     receives service proportional to its weight within one operation of
//     its weighted share.
//   - Concurrency limits derived from cluster capacity ([Capacity]), so
//     admitted work never dives into the placement layer just to fail.
//   - Bounded per-tenant queues with deadline-aware load shedding:
//     requests that would (or did) wait longer than the class's queue-delay
//     budget are rejected early with a typed [ErrOverload] that the retry
//     layer classifies as fatal — overload rejections are an answer, not a
//     transient, which kills retry storms at the source.
//   - CoDel-style queue-delay backpressure: when the standing queue delay
//     stays above target for a full interval, queued requests are shed at
//     increasing frequency until the queue drains to target.
//
// Every decision is a pure function of virtual time and deterministic
// arrival order (tie-breaks by tenant name, then sequence number) — the
// same property as sim.Env.ObserverRand streams, only stronger: no
// randomness is consumed at all. A nil *Controller is fully inert: every
// method no-ops without touching the event queue, so a QoS-disabled run is
// byte-identical to one built before this package existed.
package qos

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ErrOverload is the sentinel all QoS rejections match via errors.Is. It
// implements the fault layer's Classified interface as non-retryable:
// shedding is load control, and a client that retries a shed re-offers
// the very load the system just refused.
var ErrOverload error = overloadSentinel{}

type overloadSentinel struct{}

func (overloadSentinel) Error() string   { return "qos: overloaded" }
func (overloadSentinel) Retryable() bool { return false }

// OverloadError is the typed rejection returned to shed requests. It
// matches ErrOverload under errors.Is and classifies as non-retryable.
type OverloadError struct {
	Tenant string
	Class  Class
	// Reason is "queue-full", "deadline", or "codel".
	Reason string
}

// Error renders the rejection.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("qos: overloaded (%s, tenant %q, class %s)", e.Reason, e.Tenant, e.Class)
}

// Is matches the ErrOverload sentinel.
func (e *OverloadError) Is(target error) bool { return target == ErrOverload }

// Retryable marks shed responses fatal for fault.Policy classification.
func (e *OverloadError) Retryable() bool { return false }

// Class separates the admission-controlled paths; each class has its own
// concurrency budget and queues, so task-level and invocation-level
// admission compose without double-counting.
type Class uint8

// The admission classes.
const (
	// ClassData gates data/meta operations on the PCSI client.
	ClassData Class = iota
	// ClassInvoke gates function invocations in the FaaS runtime.
	ClassInvoke
	// ClassTask gates task-graph task launches.
	ClassTask
	numClasses
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassData:
		return "data"
	case ClassInvoke:
		return "invoke"
	case ClassTask:
		return "task"
	default:
		// Admission tracing stringifies the class per shed/queue span, so
		// avoid the fmt machinery on this path.
		return "class(" + strconv.Itoa(int(c)) + ")"
	}
}

// ClassConfig tunes one admission class. A zero-value class is disabled:
// Admit passes through with no queueing and no bookkeeping.
type ClassConfig struct {
	// MaxConcurrency is the number of operations admitted concurrently.
	// When 0 and PerOp is set, it is derived from cluster capacity at
	// construction ([Capacity]).
	MaxConcurrency int
	// PerOp is the resource footprint one admitted operation occupies,
	// used to derive MaxConcurrency from the cluster.
	PerOp cluster.Resources
	// MaxQueue bounds each tenant's queue; arrivals beyond it are shed
	// with reason "queue-full". 0 = unbounded.
	MaxQueue int
	// MaxQueueDelay is the queue-delay budget: arrivals whose estimated
	// wait exceeds it are shed on arrival, and queued requests that have
	// already waited longer are shed at dispatch (reason "deadline").
	// 0 = no deadline shedding.
	MaxQueueDelay sim.Duration
	// CoDelTarget enables CoDel-style backpressure: when the delay of
	// dispatched requests stays above the target for a full CoDelInterval,
	// queued requests are shed (reason "codel") at increasing frequency
	// until the standing queue drains. 0 = off.
	CoDelTarget sim.Duration
	// CoDelInterval is the CoDel control interval (default 100ms).
	CoDelInterval sim.Duration
}

// Config configures a Controller.
type Config struct {
	// Weights maps tenant name to WFQ weight. Unknown tenants (and the
	// "" tenant, recorded as "default") get weight 1.
	Weights map[string]float64
	// Data, Invoke, and Task configure the three admission classes.
	Data, Invoke, Task ClassConfig
}

// Request asks for admission of one operation.
type Request struct {
	// Tenant is the workload the operation belongs to ("" = "default").
	Tenant string
	Class  Class
}

// Stats is a snapshot of one class's admission counters.
type Stats struct {
	Admitted      int64
	Shed          int64
	ShedQueueFull int64
	ShedDeadline  int64
	ShedCoDel     int64
	MaxQueued     int
}

// Gauge is the subset of metrics.Gauge the controller drives. The
// controller takes interfaces rather than importing internal/metrics so
// its import surface stays at sim/cluster/fault/trace (DESIGN.md §3); the
// embedding layer wires concrete metrics in via Instrument.
type Gauge interface {
	Add(nowNS int64, delta float64)
}

// Observer is the subset of metrics.Histogram the controller drives.
type Observer interface {
	Observe(d sim.Duration)
}

// Counter is the subset of metrics.Counter the controller drives.
type Counter interface {
	Inc()
}

// Instruments are the per-class metrics the embedding system provides.
// Any field may be nil.
type Instruments struct {
	// QueueDepth tracks the total queued requests of the class over time.
	QueueDepth Gauge
	// InFlight tracks admitted, not-yet-released operations over time.
	InFlight Gauge
	// QueueDelay observes the queueing delay of each admitted request.
	QueueDelay Observer
	// Admitted and Shed count admission outcomes.
	Admitted Counter
	Shed     Counter
	// OnAdmit, when set, is called after each admission with the tenant
	// and the request's queueing delay — the hook the telemetry plane
	// uses for per-tenant accounting without qos importing it.
	OnAdmit func(now sim.Time, tenant string, delay sim.Duration)
	// OnShed, when set, is called after each shed with the tenant and
	// the reason ("queue-full" | "deadline" | "codel").
	OnShed func(now sim.Time, tenant, reason string)
}

// Controller is the admission-control plane of one deployment. A nil
// Controller is valid and fully inert.
type Controller struct {
	env     *sim.Env
	classes [numClasses]*classQ
	weights map[string]float64
}

// waiter is one queued admission request.
type waiter struct {
	tenant *tenantQ
	ev     *sim.Event
	enq    sim.Time
	start  float64 // virtual start tag
	finish float64 // virtual finish tag
	seq    uint64
}

// tenantQ is one tenant's FIFO within a class.
type tenantQ struct {
	name       string
	weight     float64
	lastFinish float64
	q          []*waiter
}

// classQ is the WFQ scheduler state of one class.
type classQ struct {
	class    Class
	cfg      ClassConfig
	limit    int
	inflight int
	queued   int
	vtime    float64
	seq      uint64
	tenants  map[string]*tenantQ
	names    []string // sorted tenant names, for deterministic scans
	cd       codel
	// ewmaServiceNS estimates per-operation service time for the
	// arrival-time wait estimate (deadline-aware early rejection).
	ewmaServiceNS float64
	ins           Instruments
	stats         Stats
}

// New builds a Controller over env. Classes whose resolved concurrency
// limit is zero stay disabled. cl (may be nil) supplies the capacity that
// PerOp-configured classes derive their limits from.
func New(env *sim.Env, cl *cluster.Cluster, cfg Config) *Controller {
	q := &Controller{env: env, weights: cfg.Weights}
	for class, cc := range map[Class]ClassConfig{ClassData: cfg.Data, ClassInvoke: cfg.Invoke, ClassTask: cfg.Task} {
		limit := cc.MaxConcurrency
		if limit == 0 && cl != nil {
			limit = Capacity(cl, cc.PerOp)
		}
		if limit <= 0 {
			continue
		}
		if cc.CoDelTarget > 0 && cc.CoDelInterval <= 0 {
			cc.CoDelInterval = 100 * sim.Duration(1e6) // 100ms
		}
		q.classes[class] = &classQ{
			class:   class,
			cfg:     cc,
			limit:   limit,
			tenants: make(map[string]*tenantQ),
			cd:      codel{target: cc.CoDelTarget, interval: cc.CoDelInterval},
		}
	}
	return q
}

// Capacity returns how many operations of footprint res the cluster can
// host concurrently, summing each node's bottleneck dimension. A zero
// footprint (or cluster) yields 0 — callers must state what one admitted
// operation costs before a limit can be derived.
func Capacity(cl *cluster.Cluster, res cluster.Resources) int {
	if cl == nil {
		return 0
	}
	total := 0
	for _, n := range cl.Nodes() {
		per := math.MaxInt
		counted := false
		if res.MilliCPU > 0 {
			per = minInt(per, int(n.Cap.MilliCPU/res.MilliCPU))
			counted = true
		}
		if res.MemMB > 0 {
			per = minInt(per, int(n.Cap.MemMB/res.MemMB))
			counted = true
		}
		if res.GPUs > 0 {
			per = minInt(per, int(n.Cap.GPUs/res.GPUs))
			counted = true
		}
		if counted {
			total += per
		}
	}
	return total
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Enabled reports whether the class admits under control. A nil
// controller (and a zero-limit class) reports false.
func (q *Controller) Enabled(class Class) bool {
	return q != nil && class < numClasses && q.classes[class] != nil
}

// Limit returns the class's resolved concurrency limit (0 if disabled).
func (q *Controller) Limit(class Class) int {
	if !q.Enabled(class) {
		return 0
	}
	return q.classes[class].limit
}

// Instrument wires metrics into a class. No-op on nil controllers and
// disabled classes.
func (q *Controller) Instrument(class Class, ins Instruments) {
	if !q.Enabled(class) {
		return
	}
	q.classes[class].ins = ins
}

// ClassStats snapshots a class's admission counters.
func (q *Controller) ClassStats(class Class) Stats {
	if !q.Enabled(class) {
		return Stats{}
	}
	return q.classes[class].stats
}

// Grant is an admitted operation's token; Release it when the operation
// completes. The zero Grant (returned by pass-through admissions) releases
// as a no-op.
type Grant struct {
	q       *Controller
	c       *classQ
	admitAt sim.Time
}

// Admit runs the admission gate for one operation, parking the calling
// process in the tenant's weighted-fair queue while the class is at its
// concurrency limit. It returns an error matching ErrOverload when the
// request is shed (queue full, deadline exceeded, or CoDel backpressure).
// On nil controllers and disabled classes it admits immediately with zero
// overhead.
//
//pcsi:hotpath
func (q *Controller) Admit(p *sim.Proc, req Request) (Grant, error) {
	if q == nil || req.Class >= numClasses {
		return Grant{}, nil
	}
	c := q.classes[req.Class]
	if c == nil {
		return Grant{}, nil
	}
	now := q.env.Now()
	t := c.tenant(q, req.Tenant)

	// Fast path: free slot and empty queue — admit without parking.
	if c.queued == 0 && c.inflight < c.limit {
		start := math.Max(c.vtime, t.lastFinish)
		t.lastFinish = start + 1/t.weight
		c.vtime = start
		return q.admitNow(c, now, t.name, 0), nil
	}

	if c.cfg.MaxQueue > 0 && len(t.q) >= c.cfg.MaxQueue {
		return Grant{}, q.shedArrival(c, t, "queue-full")
	}
	if c.cfg.MaxQueueDelay > 0 && c.estWait() > c.cfg.MaxQueueDelay {
		return Grant{}, q.shedArrival(c, t, "deadline")
	}

	c.seq++
	w := &waiter{tenant: t, ev: q.env.NewEvent(), enq: now, seq: c.seq}
	w.start = math.Max(c.vtime, t.lastFinish)
	w.finish = w.start + 1/t.weight
	t.lastFinish = w.finish
	t.q = append(t.q, w)
	c.queued++
	if c.queued > c.stats.MaxQueued {
		c.stats.MaxQueued = c.queued
	}
	gaugeAdd(c.ins.QueueDepth, now, 1)

	sp := trace.Of(q.env).Start(p, "qos", "queue",
		trace.Str("class", c.class.String()), trace.Str("tenant", t.name))
	q.dispatch(c)
	_, err := p.Wait(w.ev)
	sp.Close(p)
	if err != nil {
		return Grant{}, err
	}
	return Grant{q: q, c: c, admitAt: q.env.Now()}, nil
}

// Release returns the operation's concurrency slot and dispatches queued
// work. Safe on the zero Grant.
//
//pcsi:hotpath
func (g Grant) Release() {
	if g.c == nil {
		return
	}
	now := g.q.env.Now()
	c := g.c
	c.inflight--
	gaugeAdd(c.ins.InFlight, now, -1)
	// Deterministic EWMA of observed service time feeds the arrival-time
	// wait estimate.
	const alpha = 0.2
	s := float64(now.Sub(g.admitAt))
	if c.ewmaServiceNS == 0 {
		c.ewmaServiceNS = s
	} else {
		c.ewmaServiceNS += alpha * (s - c.ewmaServiceNS)
	}
	g.q.dispatch(c)
}

// admitNow books an in-flight slot at time now.
func (q *Controller) admitNow(c *classQ, now sim.Time, tenant string, delay sim.Duration) Grant {
	c.inflight++
	c.stats.Admitted++
	counterInc(c.ins.Admitted)
	gaugeAdd(c.ins.InFlight, now, 1)
	if c.ins.QueueDelay != nil {
		c.ins.QueueDelay.Observe(delay)
	}
	if c.ins.OnAdmit != nil {
		c.ins.OnAdmit(now, tenant, delay)
	}
	return Grant{q: q, c: c, admitAt: now}
}

// dispatch admits queued requests in virtual-finish-tag order while slots
// are free, applying deadline and CoDel shedding to queue heads.
//
//pcsi:hotpath
func (q *Controller) dispatch(c *classQ) {
	now := q.env.Now()
	for c.inflight < c.limit {
		w := c.popMinFinish()
		if w == nil {
			return
		}
		gaugeAdd(c.ins.QueueDepth, now, -1)
		sojourn := now.Sub(w.enq)
		if c.cfg.MaxQueueDelay > 0 && sojourn > c.cfg.MaxQueueDelay {
			q.shedQueued(c, w, "deadline")
			continue
		}
		if c.cd.onDispatch(now, sojourn) {
			q.shedQueued(c, w, "codel")
			continue
		}
		c.vtime = math.Max(c.vtime, w.start)
		// The grant travels back through Admit's own return, not the
		// completion value; completing with nil avoids boxing a Grant
		// into the event's any slot on every dispatch.
		q.admitNow(c, now, w.tenant.name, sojourn)
		w.ev.Complete(nil)
	}
}

// popMinFinish removes and returns the queue-head waiter with the
// smallest virtual finish tag; ties break on sequence number. Tenants are
// scanned in sorted-name order, so the choice is deterministic.
//
//pcsi:hotpath
func (c *classQ) popMinFinish() *waiter {
	var best *tenantQ
	for _, name := range c.names {
		t := c.tenants[name]
		if len(t.q) == 0 {
			continue
		}
		if best == nil || t.q[0].finish < best.q[0].finish ||
			(t.q[0].finish == best.q[0].finish && t.q[0].seq < best.q[0].seq) {
			best = t
		}
	}
	if best == nil {
		return nil
	}
	w := best.q[0]
	best.q = best.q[1:]
	c.queued--
	return w
}

// estWait estimates a new arrival's queueing delay from the current
// backlog and the observed service rate.
func (c *classQ) estWait() sim.Duration {
	if c.ewmaServiceNS == 0 {
		return 0
	}
	return sim.Duration(float64(c.queued+1) * c.ewmaServiceNS / float64(c.limit))
}

// tenant returns (creating) the named tenant's queue.
func (c *classQ) tenant(q *Controller, name string) *tenantQ {
	if name == "" {
		name = "default"
	}
	t, ok := c.tenants[name]
	if !ok {
		w := q.weights[name]
		if w <= 0 {
			w = 1
		}
		t = &tenantQ{name: name, weight: w}
		c.tenants[name] = t
		i := sort.SearchStrings(c.names, name)
		c.names = append(c.names, "")
		copy(c.names[i+1:], c.names[i:])
		c.names[i] = name
	}
	return t
}

// shedArrival rejects a request at the admission gate.
func (q *Controller) shedArrival(c *classQ, t *tenantQ, reason string) error {
	err := &OverloadError{Tenant: t.name, Class: c.class, Reason: reason}
	q.recordShed(c, t.name, reason)
	return err
}

// shedQueued rejects a request that was already queued; the parked
// process resumes with the overload error.
func (q *Controller) shedQueued(c *classQ, w *waiter, reason string) {
	q.recordShed(c, w.tenant.name, reason)
	w.ev.Fail(&OverloadError{Tenant: w.tenant.name, Class: c.class, Reason: reason})
}

func (q *Controller) recordShed(c *classQ, tenant, reason string) {
	c.stats.Shed++
	switch reason {
	case "queue-full":
		c.stats.ShedQueueFull++
	case "deadline":
		c.stats.ShedDeadline++
	case "codel":
		c.stats.ShedCoDel++
	}
	counterInc(c.ins.Shed)
	if c.ins.OnShed != nil {
		c.ins.OnShed(q.env.Now(), tenant, reason)
	}
	trace.Of(q.env).Instant("qos", "qos", "shed",
		trace.Str("class", c.class.String()), trace.Str("tenant", tenant),
		trace.Str("reason", reason))
}

func gaugeAdd(g Gauge, now sim.Time, delta float64) {
	if g != nil {
		g.Add(int64(now), delta)
	}
}

func counterInc(c Counter) {
	if c != nil {
		c.Inc()
	}
}

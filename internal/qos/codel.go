package qos

import (
	"math"

	"repro/internal/sim"
)

// codel implements the CoDel (Controlled Delay, Nichols & Jacobson, CACM
// 2012) control law over queue sojourn times, adapted to admission
// queues: instead of dropping packets we shed queued requests with a
// typed overload error. The law is evaluated at dispatch time, so it is
// a deterministic function of virtual time — no randomness, no timers.
type codel struct {
	target   sim.Duration // sojourn target; 0 disables the controller
	interval sim.Duration // sliding window over which delay must stay high

	firstAbove sim.Time // when sojourn first exceeded target (0 = not above)
	dropping   bool     // in the shedding state
	dropNext   sim.Time // next scheduled shed while dropping
	count      int      // sheds in the current dropping episode
}

// onDispatch runs the control law for one dequeued request with the
// given sojourn time and reports whether the request should be shed.
func (c *codel) onDispatch(now sim.Time, sojourn sim.Duration) bool {
	if c.target <= 0 {
		return false
	}
	if sojourn < c.target {
		// Below target: leave the dropping state and reset the window.
		c.firstAbove = 0
		c.dropping = false
		return false
	}
	if !c.dropping {
		if c.firstAbove == 0 {
			// First time above target: arm the interval window.
			c.firstAbove = now.Add(c.interval)
			return false
		}
		if now < c.firstAbove {
			return false
		}
		// Sojourn stayed above target for a full interval: start
		// shedding. Successive episodes shed faster (count memory).
		c.dropping = true
		if c.count > 2 {
			c.count -= 2
		} else {
			c.count = 1
		}
		c.dropNext = c.controlNext(now)
		return true
	}
	if now < c.dropNext {
		return false
	}
	// In the dropping state and the control-law deadline passed: shed
	// again, tightening the interval by 1/sqrt(count).
	c.count++
	c.dropNext = c.controlNext(c.dropNext)
	return true
}

// controlNext schedules the next shed at t + interval/sqrt(count).
func (c *codel) controlNext(t sim.Time) sim.Time {
	n := c.count
	if n < 1 {
		n = 1
	}
	return t.Add(sim.Duration(float64(c.interval) / math.Sqrt(float64(n))))
}

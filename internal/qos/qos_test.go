package qos

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/sim"
	//pcsi:allow layering tests need a real cluster, whose constructor takes a network; simnet never reaches non-test qos code
	"repro/internal/simnet"
)

// one controller with a single invoke-class limit, no cluster derivation.
func testController(env *sim.Env, cc ClassConfig, weights map[string]float64) *Controller {
	return New(env, nil, Config{Invoke: cc, Weights: weights})
}

func TestNilControllerIsInert(t *testing.T) {
	env := sim.NewEnv(1)
	var q *Controller
	done := false
	env.Go("op", func(p *sim.Proc) {
		g, err := q.Admit(p, Request{Tenant: "a", Class: ClassInvoke})
		if err != nil {
			t.Errorf("nil controller Admit err = %v", err)
		}
		g.Release()
		done = true
	})
	env.Run()
	if !done {
		t.Fatal("proc did not run")
	}
	if q.Enabled(ClassInvoke) || q.Limit(ClassInvoke) != 0 {
		t.Error("nil controller reports enabled")
	}
	q.Instrument(ClassInvoke, Instruments{})
	if q.ClassStats(ClassInvoke) != (Stats{}) {
		t.Error("nil controller has stats")
	}
}

func TestDisabledClassPassesThrough(t *testing.T) {
	env := sim.NewEnv(1)
	q := testController(env, ClassConfig{MaxConcurrency: 1}, nil)
	if q.Enabled(ClassData) {
		t.Fatal("data class should be disabled")
	}
	env.Go("op", func(p *sim.Proc) {
		g, err := q.Admit(p, Request{Class: ClassData})
		if err != nil {
			t.Errorf("disabled class Admit err = %v", err)
		}
		g.Release()
	})
	env.Run()
}

func TestConcurrencyLimitEnforced(t *testing.T) {
	env := sim.NewEnv(1)
	q := testController(env, ClassConfig{MaxConcurrency: 2}, nil)
	var peak, cur int
	for i := 0; i < 6; i++ {
		env.Go("op", func(p *sim.Proc) {
			g, err := q.Admit(p, Request{Class: ClassInvoke})
			if err != nil {
				t.Errorf("Admit: %v", err)
				return
			}
			cur++
			if cur > peak {
				peak = cur
			}
			p.Sleep(time.Millisecond)
			cur--
			g.Release()
		})
	}
	env.Run()
	if peak != 2 {
		t.Errorf("peak concurrency = %d, want 2", peak)
	}
	st := q.ClassStats(ClassInvoke)
	if st.Admitted != 6 || st.Shed != 0 {
		t.Errorf("stats = %+v, want 6 admitted, 0 shed", st)
	}
}

func TestQueueFullSheds(t *testing.T) {
	env := sim.NewEnv(1)
	q := testController(env, ClassConfig{MaxConcurrency: 1, MaxQueue: 2}, nil)
	var admitted, shed int
	for i := 0; i < 6; i++ {
		env.Go("op", func(p *sim.Proc) {
			g, err := q.Admit(p, Request{Class: ClassInvoke})
			if err != nil {
				if !errors.Is(err, ErrOverload) {
					t.Errorf("shed error %v does not match ErrOverload", err)
				}
				shed++
				return
			}
			admitted++
			p.Sleep(time.Millisecond)
			g.Release()
		})
	}
	env.Run()
	// 1 in flight + 2 queued; the remaining 3 shed at arrival.
	if admitted != 3 || shed != 3 {
		t.Errorf("admitted=%d shed=%d, want 3/3", admitted, shed)
	}
	st := q.ClassStats(ClassInvoke)
	if st.ShedQueueFull != 3 {
		t.Errorf("ShedQueueFull = %d, want 3", st.ShedQueueFull)
	}
	var oe *OverloadError
	env.Go("late", func(p *sim.Proc) {
		// Queue drained; this admits.
		g, err := q.Admit(p, Request{Class: ClassInvoke})
		if err != nil {
			t.Errorf("post-drain Admit: %v", err)
		}
		g.Release()
	})
	env.Run()
	_ = oe
}

func TestOverloadErrorClassification(t *testing.T) {
	err := error(&OverloadError{Tenant: "a", Class: ClassData, Reason: "queue-full"})
	if !errors.Is(err, ErrOverload) {
		t.Error("OverloadError does not match ErrOverload")
	}
	if fault.Retryable(err) {
		t.Error("overload shed classified retryable; retry storms survive")
	}
	if fault.Retryable(ErrOverload) {
		t.Error("ErrOverload sentinel classified retryable")
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "queue-full" {
		t.Errorf("errors.As round-trip failed: %v", oe)
	}
	if err.Error() == "" || ErrOverload.Error() == "" {
		t.Error("empty error strings")
	}
}

func TestDeadlineShedsStaleQueuedWork(t *testing.T) {
	env := sim.NewEnv(1)
	q := testController(env, ClassConfig{MaxConcurrency: 1, MaxQueueDelay: 5 * time.Millisecond}, nil)
	var order []string
	env.Go("hog", func(p *sim.Proc) {
		g, err := q.Admit(p, Request{Class: ClassInvoke})
		if err != nil {
			t.Errorf("hog: %v", err)
			return
		}
		p.Sleep(20 * time.Millisecond) // far past the queue-delay budget
		g.Release()
		order = append(order, "hog-done")
	})
	env.Go("victim", func(p *sim.Proc) {
		p.Sleep(time.Microsecond) // queue behind the hog
		_, err := q.Admit(p, Request{Class: ClassInvoke})
		if !errors.Is(err, ErrOverload) {
			t.Errorf("victim err = %v, want overload", err)
		}
		var oe *OverloadError
		if errors.As(err, &oe) && oe.Reason != "deadline" {
			t.Errorf("reason = %q, want deadline", oe.Reason)
		}
		order = append(order, "victim-shed")
	})
	env.Run()
	if len(order) != 2 || order[0] != "hog-done" {
		t.Errorf("order = %v", order)
	}
	if st := q.ClassStats(ClassInvoke); st.ShedDeadline != 1 {
		t.Errorf("ShedDeadline = %d, want 1", st.ShedDeadline)
	}
}

func TestWFQRespectsWeights(t *testing.T) {
	// Two tenants, weight 3:1, limit 1, both keep a continuous backlog.
	env := sim.NewEnv(1)
	q := testController(env, ClassConfig{MaxConcurrency: 1},
		map[string]float64{"gold": 3, "bronze": 1})
	served := map[string]int{}
	for _, tenant := range []string{"gold", "bronze"} {
		tenant := tenant
		for i := 0; i < 4; i++ { // 4 closed-loop workers per tenant
			env.Go(tenant, func(p *sim.Proc) {
				for {
					g, err := q.Admit(p, Request{Tenant: tenant, Class: ClassInvoke})
					if err != nil {
						return
					}
					p.Sleep(time.Millisecond)
					served[tenant]++
					g.Release()
					if p.Now() > sim.Time(200*time.Millisecond) {
						return
					}
				}
			})
		}
	}
	env.RunUntil(sim.Time(200 * time.Millisecond))
	total := served["gold"] + served["bronze"]
	goldShare := float64(served["gold"]) / float64(total)
	if goldShare < 0.70 || goldShare > 0.80 {
		t.Errorf("gold share = %.3f (gold=%d bronze=%d), want ~0.75",
			goldShare, served["gold"], served["bronze"])
	}
}

func TestCapacityDerivation(t *testing.T) {
	env := sim.NewEnv(1)
	cl := cluster.New(env, simnet.New(env, simnet.DC2021), cluster.Config{
		Racks: 2, NodesPerRack: 2,
		NodeCap: cluster.Resources{MilliCPU: 4000, MemMB: 8192},
	})
	// 1000 mCPU, 1024 MB per op → min(4, 8) = 4 per node × 4 nodes = 16.
	got := Capacity(cl, cluster.Resources{MilliCPU: 1000, MemMB: 1024})
	if got != 16 {
		t.Errorf("Capacity = %d, want 16", got)
	}
	if Capacity(nil, cluster.Resources{MilliCPU: 1}) != 0 {
		t.Error("nil cluster capacity != 0")
	}
	if Capacity(cl, cluster.Resources{}) != 0 {
		t.Error("zero footprint capacity != 0")
	}
	q := New(env, cl, Config{Invoke: ClassConfig{PerOp: cluster.Resources{MilliCPU: 1000, MemMB: 1024}}})
	if q.Limit(ClassInvoke) != 16 {
		t.Errorf("derived limit = %d, want 16", q.Limit(ClassInvoke))
	}
}

func TestCoDelShedsStandingQueue(t *testing.T) {
	// Limit 1, service 10ms, CoDel target 2ms / interval 20ms, and a
	// standing backlog: sojourn times sit far above target, so after the
	// first interval CoDel must begin shedding queued requests.
	env := sim.NewEnv(1)
	q := testController(env, ClassConfig{
		MaxConcurrency: 1,
		CoDelTarget:    2 * time.Millisecond,
		CoDelInterval:  20 * time.Millisecond,
	}, nil)
	var admitted, shed int
	for i := 0; i < 40; i++ {
		i := i
		env.Go("op", func(p *sim.Proc) {
			p.Sleep(sim.Duration(i) * time.Millisecond) // 1/ms arrival ramp
			g, err := q.Admit(p, Request{Class: ClassInvoke})
			if err != nil {
				shed++
				return
			}
			admitted++
			p.Sleep(10 * time.Millisecond)
			g.Release()
		})
	}
	env.Run()
	st := q.ClassStats(ClassInvoke)
	if st.ShedCoDel == 0 {
		t.Errorf("CoDel shed nothing under a standing queue (admitted=%d shed=%d)", admitted, shed)
	}
	if admitted == 0 {
		t.Error("CoDel shed everything")
	}
	if admitted+shed != 40 {
		t.Errorf("admitted+shed = %d, want 40", admitted+shed)
	}
}

func TestInstrumentsWired(t *testing.T) {
	env := sim.NewEnv(1)
	q := testController(env, ClassConfig{MaxConcurrency: 1, MaxQueue: 1}, nil)
	var depth, inflight fakeGauge
	var delays []sim.Duration
	var admits, sheds int
	q.Instrument(ClassInvoke, Instruments{
		QueueDepth: &depth,
		InFlight:   &inflight,
		QueueDelay: observerFunc(func(d sim.Duration) { delays = append(delays, d) }),
		Admitted:   counterFunc(func() { admits++ }),
		Shed:       counterFunc(func() { sheds++ }),
	})
	for i := 0; i < 4; i++ {
		env.Go("op", func(p *sim.Proc) {
			g, err := q.Admit(p, Request{Class: ClassInvoke})
			if err != nil {
				return
			}
			p.Sleep(time.Millisecond)
			g.Release()
		})
	}
	env.Run()
	if admits != 2 || sheds != 2 {
		t.Errorf("admits=%d sheds=%d, want 2/2", admits, sheds)
	}
	if len(delays) != 2 || delays[0] != 0 || delays[1] != time.Millisecond {
		t.Errorf("delays = %v, want [0 1ms]", delays)
	}
	if inflight.level != 0 || inflight.max != 1 {
		t.Errorf("inflight level=%v max=%v, want 0/1", inflight.level, inflight.max)
	}
	if depth.level != 0 || depth.max != 1 {
		t.Errorf("depth level=%v max=%v, want 0/1", depth.level, depth.max)
	}
}

type fakeGauge struct{ level, max float64 }

func (g *fakeGauge) Add(_ int64, d float64) {
	g.level += d
	if g.level > g.max {
		g.max = g.level
	}
}

type observerFunc func(sim.Duration)

func (f observerFunc) Observe(d sim.Duration) { f(d) }

type counterFunc func()

func (f counterFunc) Inc() { f() }

func TestClassString(t *testing.T) {
	if ClassData.String() != "data" || ClassInvoke.String() != "invoke" || ClassTask.String() != "task" {
		t.Error("class names wrong")
	}
	if Class(9).String() == "" {
		t.Error("unknown class renders empty")
	}
}

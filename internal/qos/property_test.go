package qos

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

// TestPropertyWFQFairness: for any tenant set with arbitrary weights, all
// continuously backlogged, each tenant's service count stays within one
// max-op (plus integer rounding) of its weighted share — the classic
// start-time-fair queueing bound.
func TestPropertyWFQFairness(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 40,
		Rand:     rand.New(rand.NewSource(7)),
	}
	prop := func(seed int64, nTenants uint8, rawWeights [5]uint8) bool {
		n := 2 + int(nTenants)%4 // 2..5 tenants
		weights := map[string]float64{}
		names := make([]string, n)
		for i := 0; i < n; i++ {
			names[i] = string(rune('a' + i))
			weights[names[i]] = float64(1 + int(rawWeights[i])%8) // 1..8
		}
		env := sim.NewEnv(seed)
		q := testController(env, ClassConfig{MaxConcurrency: 1}, weights)
		const service = time.Millisecond
		horizon := sim.Time(300 * time.Millisecond)
		served := map[string]int{}
		for _, name := range names {
			name := name
			for w := 0; w < 3; w++ { // keep a standing backlog per tenant
				env.Go(name, func(p *sim.Proc) {
					for p.Now() < horizon {
						g, err := q.Admit(p, Request{Tenant: name, Class: ClassInvoke})
						if err != nil {
							return
						}
						p.Sleep(service)
						if p.Now() <= horizon {
							served[name]++
						}
						g.Release()
					}
				})
			}
		}
		env.RunUntil(horizon)
		total, wsum := 0, 0.0
		for _, name := range names {
			total += served[name]
			wsum += weights[name]
		}
		if total == 0 {
			return false
		}
		for _, name := range names {
			share := weights[name] / wsum
			want := float64(total) * share
			diff := float64(served[name]) - want
			if diff < 0 {
				diff = -diff
			}
			// SFQ bound: lag ≤ one op of every competing tenant's share,
			// i.e. within ~1 op of the ideal plus integer rounding.
			if diff > 2 {
				t.Logf("tenant %s served %d, ideal %.2f (weights %v, total %d)",
					name, served[name], want, weights, total)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyShedRateMonotone: for any queue/deadline configuration,
// pushing a deterministic open-loop arrival ladder at increasing offered
// load never decreases the number of sheds — overload protection responds
// monotonically to pressure.
func TestPropertyShedRateMonotone(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 30,
		Rand:     rand.New(rand.NewSource(11)),
	}
	prop := func(rawLimit, rawQueue uint8) bool {
		limit := 1 + int(rawLimit)%4    // 1..4 concurrent ops
		maxQueue := 1 + int(rawQueue)%8 // 1..8 queued per tenant
		const service = 10 * time.Millisecond
		// Capacity of the class in requests/sec.
		capacity := float64(limit) / service.Seconds()
		prevShed := int64(-1)
		for _, factor := range []float64{0.5, 1, 2, 4} {
			env := sim.NewEnv(1)
			q := testController(env, ClassConfig{
				MaxConcurrency: limit,
				MaxQueue:       maxQueue,
			}, nil)
			rate := capacity * factor
			gap := sim.Duration(float64(time.Second) / rate)
			window := 500 * time.Millisecond
			n := int(float64(window) / float64(gap))
			for i := 0; i < n; i++ {
				i := i
				env.Go("arrival", func(p *sim.Proc) {
					p.Sleep(sim.Duration(i) * gap) // uniform open-loop arrivals
					g, err := q.Admit(p, Request{Class: ClassInvoke})
					if err != nil {
						return
					}
					p.Sleep(service)
					g.Release()
				})
			}
			env.Run()
			shed := q.ClassStats(ClassInvoke).Shed
			if shed < prevShed {
				t.Logf("limit=%d queue=%d: shed %d at %.1fx after %d at lower load",
					limit, maxQueue, shed, factor, prevShed)
				return false
			}
			prevShed = shed
		}
		return prevShed > 0 // 4x offered load must shed something
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Table builds aligned plain-text tables for the experiment harness, in the
// spirit of the paper's Table 1.
type Table struct {
	title   string
	headers []string
	rows    [][]string
	notes   []string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// Row appends a row; cells are stringified with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// Note appends a footnote printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// Render writes the formatted table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		return b.String()
	}
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total > 2 {
		total -= 2
	}
	fmt.Fprintf(w, "%s\n%s\n", t.title, strings.Repeat("=", max(total, len(t.title))))
	fmt.Fprintln(w, line(t.headers))
	fmt.Fprintln(w, strings.Repeat("-", max(total, len(t.title))))
	for _, row := range t.rows {
		fmt.Fprintln(w, line(row))
	}
	for _, n := range t.notes {
		fmt.Fprintf(w, "  * %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

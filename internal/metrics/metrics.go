// Package metrics provides the measurement primitives used by the
// experiment harness: latency histograms with percentile summaries,
// counters, and time-weighted gauges for utilisation tracking.
//
// Histograms use logarithmic bucketing (HDR-style) so they cover the full
// Table 1 range — 17 ns WebAssembly calls up to millisecond RTTs — with
// bounded relative error and constant memory.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// bucketsPerDecade controls histogram resolution: relative error is about
// 1/bucketsPerDecade of a decade (~5% here).
const bucketsPerDecade = 48

// Histogram records durations in logarithmic buckets.
type Histogram struct {
	name    string
	counts  map[int]int64
	total   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	hasData bool
}

// NewHistogram returns an empty histogram.
func NewHistogram(name string) *Histogram {
	return &Histogram{name: name, counts: make(map[int]int64)}
}

// Name returns the histogram's label.
func (h *Histogram) Name() string { return h.name }

// zeroBucket is the dedicated bucket for zero-duration observations, which
// have no logarithm; bucketMid maps it back to exactly 0 so the all-zero
// histogram reports min=max=mean=p50=0.
const zeroBucket = math.MinInt32

func bucketOf(d time.Duration) int {
	if d <= 0 {
		return zeroBucket
	}
	return int(math.Floor(math.Log10(float64(d)) * bucketsPerDecade))
}

func bucketMid(b int) time.Duration {
	if b == zeroBucket {
		return 0
	}
	// Observations within half a bucket of MaxInt64 land in a bucket whose
	// midpoint overflows int64; saturate so quantiles stay monotone.
	v := math.Pow(10, (float64(b)+0.5)/bucketsPerDecade)
	if v >= math.MaxInt64 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(v)
}

// Observe records one duration. Negative durations cannot occur in virtual
// time and are clamped to zero, keeping min/max/sum consistent with the
// zero bucket they land in.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)]++
	h.total++
	h.sum += d
	if !h.hasData || d < h.min {
		h.min = d
	}
	if !h.hasData || d > h.max {
		h.max = d
	}
	h.hasData = true
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Min returns the smallest observation.
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns an approximation of the q-th quantile (0 <= q <= 1).
// Exact min/max are returned at the extremes.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(math.Ceil(q * float64(h.total)))
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var seen int64
	for _, k := range keys {
		seen += h.counts[k]
		if seen >= rank {
			mid := bucketMid(k)
			if mid < h.min {
				mid = h.min
			}
			if mid > h.max {
				mid = h.max
			}
			return mid
		}
	}
	return h.max
}

// P50, P95, P99 are convenience quantile accessors.
func (h *Histogram) P50() time.Duration { return h.Quantile(0.50) }

// P95 returns the 95th percentile.
func (h *Histogram) P95() time.Duration { return h.Quantile(0.95) }

// P99 returns the 99th percentile.
func (h *Histogram) P99() time.Duration { return h.Quantile(0.99) }

// Summary renders a one-line summary.
func (h *Histogram) Summary() string {
	if h.total == 0 {
		return fmt.Sprintf("%s: no data", h.name)
	}
	return fmt.Sprintf("%s: n=%d mean=%v p50=%v p99=%v max=%v",
		h.name, h.total, FmtDuration(h.Mean()), FmtDuration(h.P50()),
		FmtDuration(h.P99()), FmtDuration(h.max))
}

// Counter is a monotonically increasing count with an optional byte tally.
type Counter struct {
	name  string
	n     int64
	bytes int64
}

// NewCounter returns a zeroed counter.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Inc adds one occurrence.
func (c *Counter) Inc() { c.n++ }

// Add adds n occurrences.
func (c *Counter) Add(n int64) { c.n += n }

// AddBytes adds one occurrence of b bytes.
func (c *Counter) AddBytes(b int64) { c.n++; c.bytes += b }

// Value returns the occurrence count.
func (c *Counter) Value() int64 { return c.n }

// Bytes returns the byte tally.
func (c *Counter) Bytes() int64 { return c.bytes }

// Name returns the counter's label.
func (c *Counter) Name() string { return c.name }

// Gauge tracks a level over virtual time and integrates it, producing
// time-weighted averages — the right statistic for utilisation.
type Gauge struct {
	name     string
	level    float64
	lastT    int64 // virtual ns of last update
	weighted float64
	maxLevel float64
	started  bool
	startT   int64
}

// NewGauge returns a gauge at level zero.
func NewGauge(name string) *Gauge { return &Gauge{name: name} }

// Name returns the gauge's label.
func (g *Gauge) Name() string { return g.name }

// Set records the gauge level at virtual time nowNS.
func (g *Gauge) Set(nowNS int64, level float64) {
	if !g.started {
		g.started = true
		g.startT = nowNS
	} else {
		g.weighted += g.level * float64(nowNS-g.lastT)
	}
	g.level = level
	g.lastT = nowNS
	if level > g.maxLevel {
		g.maxLevel = level
	}
}

// Add adjusts the level by delta at time nowNS.
func (g *Gauge) Add(nowNS int64, delta float64) { g.Set(nowNS, g.level+delta) }

// Level returns the current level.
func (g *Gauge) Level() float64 { return g.level }

// Max returns the highest level seen.
func (g *Gauge) Max() float64 { return g.maxLevel }

// Avg returns the time-weighted average level from the first Set through
// endNS. A zero-duration window (endNS == the first update, e.g. a burst
// where everything happens at one virtual instant) has no area to
// integrate; the current level is the only defensible mean, so return it
// rather than 0.
func (g *Gauge) Avg(endNS int64) float64 {
	if !g.started {
		return 0
	}
	if endNS <= g.startT {
		return g.level
	}
	w := g.weighted + g.level*float64(endNS-g.lastT)
	return w / float64(endNS-g.startT)
}

// FmtDuration renders a duration with engineering-friendly precision
// (sub-microsecond values keep nanosecond resolution).
func FmtDuration(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// FmtBytes renders a byte count in binary units.
func FmtBytes(b int64) string {
	const k = 1024
	switch {
	case b < k:
		return fmt.Sprintf("%dB", b)
	case b < k*k:
		return fmt.Sprintf("%.1fKiB", float64(b)/k)
	case b < k*k*k:
		return fmt.Sprintf("%.1fMiB", float64(b)/(k*k))
	default:
		return fmt.Sprintf("%.2fGiB", float64(b)/(k*k*k))
	}
}

package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram("x")
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if !strings.Contains(h.Summary(), "no data") {
		t.Errorf("Summary() = %q, want 'no data'", h.Summary())
	}
}

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram("lat")
	for _, d := range []time.Duration{10, 20, 30, 40} {
		h.Observe(d * time.Microsecond)
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d, want 4", h.Count())
	}
	if h.Mean() != 25*time.Microsecond {
		t.Errorf("Mean = %v, want 25µs", h.Mean())
	}
	if h.Min() != 10*time.Microsecond || h.Max() != 40*time.Microsecond {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram("q")
	rng := rand.New(rand.NewSource(1))
	var exact []time.Duration
	for i := 0; i < 10000; i++ {
		d := time.Duration(rng.Intn(1_000_000) + 1)
		exact = append(exact, d)
		h.Observe(d)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want := exact[int(q*float64(len(exact)))-1]
		got := h.Quantile(q)
		ratio := float64(got) / float64(want)
		if ratio < 0.90 || ratio > 1.10 {
			t.Errorf("Quantile(%v) = %v, exact %v (ratio %.3f)", q, got, want, ratio)
		}
	}
}

func TestHistogramQuantileExtremes(t *testing.T) {
	h := NewHistogram("e")
	h.Observe(5)
	h.Observe(500)
	if h.Quantile(0) != 5 {
		t.Errorf("Quantile(0) = %v, want min", h.Quantile(0))
	}
	if h.Quantile(1) != 500 {
		t.Errorf("Quantile(1) = %v, want max", h.Quantile(1))
	}
}

func TestHistogramZeroAndNegativeDurations(t *testing.T) {
	h := NewHistogram("z")
	h.Observe(0)
	h.Observe(-5) // clamped to 0: negative durations cannot occur in virtual time
	h.Observe(100)
	if h.Count() != 3 {
		t.Errorf("Count = %d, want 3", h.Count())
	}
	if h.Min() != 0 {
		t.Errorf("Min = %v, want 0 (zero bucket)", h.Min())
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(samples []uint32) bool {
		if len(samples) == 0 {
			return true
		}
		h := NewHistogram("p")
		for _, s := range samples {
			h.Observe(time.Duration(s%10_000_000) + 1)
		}
		prev := time.Duration(0)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: mean is always within [min, max].
func TestHistogramMeanBoundedProperty(t *testing.T) {
	f := func(samples []uint16) bool {
		if len(samples) == 0 {
			return true
		}
		h := NewHistogram("m")
		for _, s := range samples {
			h.Observe(time.Duration(s))
		}
		return h.Mean() >= h.Min() && h.Mean() <= h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter("ops")
	c.Inc()
	c.Add(4)
	c.AddBytes(1024)
	if c.Value() != 6 {
		t.Errorf("Value = %d, want 6", c.Value())
	}
	if c.Bytes() != 1024 {
		t.Errorf("Bytes = %d, want 1024", c.Bytes())
	}
	if c.Name() != "ops" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestGaugeTimeWeightedAverage(t *testing.T) {
	g := NewGauge("util")
	g.Set(0, 1.0)  // level 1 for [0,10)
	g.Set(10, 0.0) // level 0 for [10,20)
	g.Set(20, 0.5) // level .5 for [20,40)
	avg := g.Avg(40)
	want := (1.0*10 + 0 + 0.5*20) / 40
	if diff := avg - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Avg = %v, want %v", avg, want)
	}
	if g.Max() != 1.0 {
		t.Errorf("Max = %v, want 1", g.Max())
	}
}

func TestGaugeAdd(t *testing.T) {
	g := NewGauge("conc")
	g.Add(0, 2)
	g.Add(5, 3)
	g.Add(10, -4)
	if g.Level() != 1 {
		t.Errorf("Level = %v, want 1", g.Level())
	}
	if g.Max() != 5 {
		t.Errorf("Max = %v, want 5", g.Max())
	}
}

func TestGaugeAvgBeforeStart(t *testing.T) {
	g := NewGauge("x")
	if g.Avg(100) != 0 {
		t.Errorf("Avg of unset gauge = %v, want 0", g.Avg(100))
	}
}

// A window of zero duration has no area to integrate; the mean must be
// the level at that instant, not 0 — otherwise a burst whose updates all
// land on one virtual timestamp reports an average of zero depth while
// holding a nonzero queue.
func TestGaugeAvgZeroDurationWindow(t *testing.T) {
	g := NewGauge("depth")
	g.Set(50, 3)
	if got := g.Avg(50); got != 3 {
		t.Errorf("Avg over zero-duration window = %v, want 3", got)
	}
	g.Add(50, 2) // still the same instant
	if got := g.Avg(50); got != 5 {
		t.Errorf("Avg after same-instant Add = %v, want 5", got)
	}
	if got := g.Avg(40); got != 5 {
		t.Errorf("Avg with end before start = %v, want current level 5", got)
	}
	// Once the window has real width, normal integration resumes.
	g.Set(60, 0)
	if got, want := g.Avg(60), 5.0; got != want {
		t.Errorf("Avg over [50,60] = %v, want %v", got, want)
	}
}

func TestFmtDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "0"},
		{17, "17ns"},
		{500, "500ns"},
		{5 * time.Microsecond, "5.0µs"},
		{50 * time.Microsecond, "50.0µs"},
		{200 * time.Microsecond, "200.0µs"},
		{1500 * time.Microsecond, "1.50ms"},
		{4300 * time.Microsecond, "4.30ms"},
		{2 * time.Second, "2.000s"},
	}
	for _, c := range cases {
		if got := FmtDuration(c.d); got != c.want {
			t.Errorf("FmtDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestFmtBytes(t *testing.T) {
	cases := []struct {
		b    int64
		want string
	}{
		{512, "512B"},
		{2048, "2.0KiB"},
		{3 << 20, "3.0MiB"},
		{5 << 30, "5.00GiB"},
	}
	for _, c := range cases {
		if got := FmtBytes(c.b); got != c.want {
			t.Errorf("FmtBytes(%d) = %q, want %q", c.b, got, c.want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Table 1: Latencies", "Operation", "Latency")
	tb.Row("Linux system call", "500ns")
	tb.Row("WebAssembly call", "17ns")
	tb.Note("measured on loopback")
	out := tb.String()
	for _, want := range []string{"Table 1", "Operation", "Linux system call", "17ns", "measured on loopback"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("T", "A", "B")
	tb.Row("x", "1")
	tb.Row("longer-cell", "2")
	lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
	// Find the two data lines; the "1" and "2" columns must start at the
	// same offset.
	var data []string
	for _, l := range lines {
		if strings.HasPrefix(l, "x") || strings.HasPrefix(l, "longer-cell") {
			data = append(data, l)
		}
	}
	if len(data) != 2 {
		t.Fatalf("found %d data lines, want 2", len(data))
	}
	if strings.Index(data[0], "1") != strings.Index(data[1], "2") {
		t.Errorf("columns misaligned:\n%s\n%s", data[0], data[1])
	}
}

// TestHistogramAllZero is the regression test for zero-duration handling:
// bucketOf(0) lands in the dedicated zero bucket and bucketMid maps it back
// to exactly 0, so a histogram of all-zero durations must report
// min=max=mean=0 and every percentile 0.
func TestHistogramAllZero(t *testing.T) {
	h := NewHistogram("zeros")
	for i := 0; i < 100; i++ {
		h.Observe(0)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
	if h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Errorf("min/max/mean = %v/%v/%v, want all 0", h.Min(), h.Max(), h.Mean())
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 0.999, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("Quantile(%v) = %v, want 0", q, got)
		}
	}
	if strings.Contains(h.Summary(), "no data") {
		t.Errorf("Summary() = %q; 100 observations are data", h.Summary())
	}
}

// TestHistogramNegativeClamped: negative durations cannot occur in virtual
// time; Observe clamps them to zero so min/sum stay consistent with the
// zero bucket.
func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram("neg")
	h.Observe(-time.Second)
	h.Observe(time.Millisecond)
	if h.Min() != 0 {
		t.Errorf("Min = %v, want 0 (negative observation clamped)", h.Min())
	}
	if h.Sum() != time.Millisecond {
		t.Errorf("Sum = %v, want 1ms", h.Sum())
	}
	if got := h.Quantile(0.25); got != 0 {
		t.Errorf("Quantile(0.25) = %v, want 0", got)
	}
}

// TestGaugeName pins the Name accessor the metrics registry relies on.
func TestGaugeName(t *testing.T) {
	if got := NewGauge("util").Name(); got != "util" {
		t.Errorf("Name() = %q, want %q", got, "util")
	}
}

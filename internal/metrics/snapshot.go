// Snapshot types: immutable, mergeable copies of the live metrics, built
// for the observability sampler (internal/obs). A sampler that runs at a
// fixed virtual-time interval wants three operations the live types do not
// offer: a cheap point-in-time copy (Snapshot), the difference of two
// copies to isolate one window (Delta), and recombination of windows into
// larger ones (Merge).
//
// HistSnapshot deliberately drops the exact min/max the live Histogram
// tracks: quantiles are answered from bucket midpoints alone. That loses
// the end-point clamping Histogram.Quantile performs but buys algebraic
// closure — Merge is associative and Delta(prev) is exact, which the
// property tests in snapshot_test.go pin down.
package metrics

import (
	"math"
	"sort"
	"time"
)

// Bucket is one (bucket index, count) cell of a histogram snapshot.
type Bucket struct {
	B int   // logarithmic bucket index (zeroBucket for the zero bucket)
	N int64 // observations in the bucket
}

// HistSnapshot is an immutable copy of a histogram's bucket counts, sorted
// by bucket index. The zero value is an empty snapshot.
type HistSnapshot struct {
	Buckets []Bucket // ascending by B
	Total   int64
	Sum     time.Duration
}

// Snapshot copies the histogram's current state. The result shares no
// storage with the live histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Total: h.total, Sum: h.sum}
	if len(h.counts) == 0 {
		return s
	}
	s.Buckets = make([]Bucket, 0, len(h.counts))
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		s.Buckets = append(s.Buckets, Bucket{B: k, N: h.counts[k]})
	}
	return s
}

// Merge returns the combination of two windows: counts added bucket-wise,
// totals and sums added. Merge is associative and commutative, with the
// empty snapshot as identity.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := HistSnapshot{Total: s.Total + o.Total, Sum: s.Sum + o.Sum}
	out.Buckets = make([]Bucket, 0, len(s.Buckets)+len(o.Buckets))
	i, j := 0, 0
	for i < len(s.Buckets) && j < len(o.Buckets) {
		a, b := s.Buckets[i], o.Buckets[j]
		switch {
		case a.B < b.B:
			out.Buckets = append(out.Buckets, a)
			i++
		case a.B > b.B:
			out.Buckets = append(out.Buckets, b)
			j++
		default:
			out.Buckets = append(out.Buckets, Bucket{B: a.B, N: a.N + b.N})
			i, j = i+1, j+1
		}
	}
	out.Buckets = append(out.Buckets, s.Buckets[i:]...)
	out.Buckets = append(out.Buckets, o.Buckets[j:]...)
	if len(out.Buckets) == 0 {
		out.Buckets = nil
	}
	return out
}

// Delta returns the window s minus prev, where prev must be an earlier
// snapshot of the same histogram (every prev bucket count <= the matching
// s count). It is the inverse of Merge: prev.Merge(s.Delta(prev)) == s.
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	out := HistSnapshot{Total: s.Total - prev.Total, Sum: s.Sum - prev.Sum}
	j := 0
	for _, b := range s.Buckets {
		n := b.N
		for j < len(prev.Buckets) && prev.Buckets[j].B < b.B {
			j++
		}
		if j < len(prev.Buckets) && prev.Buckets[j].B == b.B {
			n -= prev.Buckets[j].N
			j++
		}
		if n > 0 {
			out.Buckets = append(out.Buckets, Bucket{B: b.B, N: n})
		}
	}
	return out
}

// Count returns the number of observations in the window.
func (s HistSnapshot) Count() int64 { return s.Total }

// Mean returns the average observation in the window, or 0 when empty.
func (s HistSnapshot) Mean() time.Duration {
	if s.Total == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Total)
}

// Quantile approximates the q-th quantile of the window from bucket
// midpoints (no exact min/max clamping — see the package comment).
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range s.Buckets {
		seen += b.N
		if seen >= rank {
			return bucketMid(b.B)
		}
	}
	return bucketMid(s.Buckets[len(s.Buckets)-1].B)
}

// P50, P95 and P99 are convenience quantile accessors.
func (s HistSnapshot) P50() time.Duration { return s.Quantile(0.50) }

// P95 returns the windowed 95th percentile.
func (s HistSnapshot) P95() time.Duration { return s.Quantile(0.95) }

// P99 returns the windowed 99th percentile.
func (s HistSnapshot) P99() time.Duration { return s.Quantile(0.99) }

// CounterSnapshot is a point-in-time copy of a Counter.
type CounterSnapshot struct {
	N     int64
	Bytes int64
}

// Snapshot copies the counter's current state.
func (c *Counter) Snapshot() CounterSnapshot {
	return CounterSnapshot{N: c.n, Bytes: c.bytes}
}

// Delta returns the window s minus prev (an earlier snapshot of the same
// counter).
func (s CounterSnapshot) Delta(prev CounterSnapshot) CounterSnapshot {
	return CounterSnapshot{N: s.N - prev.N, Bytes: s.Bytes - prev.Bytes}
}

// GaugeSnapshot is a point-in-time copy of a Gauge's level and peak.
type GaugeSnapshot struct {
	Level float64
	Max   float64
}

// Snapshot copies the gauge's current level and high-water mark.
func (g *Gauge) Snapshot() GaugeSnapshot {
	return GaugeSnapshot{Level: g.level, Max: g.maxLevel}
}

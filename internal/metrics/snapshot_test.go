package metrics

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// quickCfg seeds testing/quick so the property tests are reproducible.
func quickCfg() *quick.Config {
	return &quick.Config{Rand: rand.New(rand.NewSource(7)), MaxCount: 200}
}

func histSnap(ds []time.Duration) HistSnapshot {
	h := NewHistogram("h")
	for _, d := range ds {
		h.Observe(d)
	}
	return h.Snapshot()
}

func TestHistSnapshotMergeAssociative(t *testing.T) {
	prop := func(a, b, c []time.Duration) bool {
		sa, sb, sc := histSnap(a), histSnap(b), histSnap(c)
		return reflect.DeepEqual(sa.Merge(sb).Merge(sc), sa.Merge(sb.Merge(sc)))
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestHistSnapshotMergeCommutative(t *testing.T) {
	prop := func(a, b []time.Duration) bool {
		sa, sb := histSnap(a), histSnap(b)
		return reflect.DeepEqual(sa.Merge(sb), sb.Merge(sa))
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Merging the windows of two observation streams must be indistinguishable
// from observing the concatenated stream in one histogram.
func TestHistSnapshotMergeEqualsConcatenation(t *testing.T) {
	prop := func(a, b []time.Duration) bool {
		both := append(append([]time.Duration(nil), a...), b...)
		return reflect.DeepEqual(histSnap(a).Merge(histSnap(b)), histSnap(both))
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Delta is the inverse of Merge: snapshotting before and after a batch of
// observations and differencing recovers exactly the batch's window.
func TestHistSnapshotDeltaInvertsMerge(t *testing.T) {
	prop := func(a, b []time.Duration) bool {
		h := NewHistogram("h")
		for _, d := range a {
			h.Observe(d)
		}
		before := h.Snapshot()
		for _, d := range b {
			h.Observe(d)
		}
		after := h.Snapshot()
		window := after.Delta(before)
		return reflect.DeepEqual(window, histSnap(b)) &&
			reflect.DeepEqual(before.Merge(window), after)
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Quantiles must be monotone in q, and the quantile of a merged window must
// sit between the matching quantiles of its parts. The bracketing half of
// the property is checked at dyadic quantiles only: ceil(q*n) is computed
// in float64, and for non-dyadic q (0.95, 0.99) representation error can
// shift the rank by one, which is a rounding artifact, not a merge bug.
func TestHistSnapshotQuantileMonotoneAcrossMerge(t *testing.T) {
	monotone := []float64{0, 0.25, 0.50, 0.90, 0.95, 0.99, 1}
	dyadic := []float64{0, 0.25, 0.50, 0.75, 1}
	prop := func(a, b []time.Duration) bool {
		sa, sb := histSnap(a), histSnap(b)
		m := sa.Merge(sb)
		prev := time.Duration(-1)
		for _, q := range monotone {
			v := m.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		if sa.Total == 0 || sb.Total == 0 {
			return true
		}
		for _, q := range dyadic {
			lo, hi := sa.Quantile(q), sb.Quantile(q)
			if hi < lo {
				lo, hi = hi, lo
			}
			if v := m.Quantile(q); v < lo || v > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestHistSnapshotQuantileAccuracy(t *testing.T) {
	h := NewHistogram("h")
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	for _, tc := range []struct {
		q     float64
		exact time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.95, 950 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
	} {
		got := s.Quantile(tc.q)
		lo := tc.exact - tc.exact/10
		hi := tc.exact + tc.exact/10
		if got < lo || got > hi {
			t.Errorf("q=%v: got %v, want within 10%% of %v", tc.q, got, tc.exact)
		}
	}
	if got := s.Mean(); got != h.Mean() {
		t.Errorf("snapshot mean %v != histogram mean %v", got, h.Mean())
	}
	if s.Count() != 1000 {
		t.Errorf("count = %d, want 1000", s.Count())
	}
}

func TestHistSnapshotZeroAndEmpty(t *testing.T) {
	var empty HistSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	if !reflect.DeepEqual(empty.Merge(empty), empty) {
		t.Error("empty.Merge(empty) != empty")
	}
	h := NewHistogram("h")
	h.Observe(0)
	h.Observe(-5 * time.Millisecond) // clamped to the zero bucket
	s := h.Snapshot()
	if s.Total != 2 || s.P99() != 0 {
		t.Errorf("zero-bucket snapshot: total=%d p99=%v, want 2 and 0", s.Total, s.P99())
	}
}

func TestCounterSnapshotDelta(t *testing.T) {
	c := NewCounter("c")
	c.Add(3)
	c.AddBytes(100)
	before := c.Snapshot()
	c.Add(5)
	c.AddBytes(50)
	d := c.Snapshot().Delta(before)
	if d.N != 6 || d.Bytes != 50 {
		t.Errorf("delta = %+v, want N=6 Bytes=50", d)
	}
}

func TestGaugeSnapshot(t *testing.T) {
	g := NewGauge("g")
	g.Set(0, 4)
	g.Set(10, 2)
	s := g.Snapshot()
	if s.Level != 2 || s.Max != 4 {
		t.Errorf("snapshot = %+v, want Level=2 Max=4", s)
	}
}

// Package capability implements PCSI references (§3.2): unforgeable,
// rights-carrying handles that are the primary way to reach objects.
//
// References make the PCSI API stateful — the paper's explicit contrast
// with REST — and provide capability-oriented security in the style of
// Capsicum: a holder can attenuate (narrow) a reference's rights and pass
// it on, but can never amplify them; there is no ambient authority. An
// object's issuer can revoke all outstanding references by bumping the
// object's revocation epoch.
package capability

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/fault"
	"repro/internal/object"
)

// Rights is a bitmask of permitted operations.
type Rights uint32

// The individual rights.
const (
	Read    Rights = 1 << iota // read payload / lookup entries
	Write                      // overwrite payload
	Append                     // append to payload / add directory entries
	Exec                       // invoke as a function
	SetMut                     // move along the mutability lattice
	Grant                      // mint attenuated references for others
	Unlink                     // remove directory entries
	Destroy                    // delete the object
)

// All is every right.
const All = Read | Write | Append | Exec | SetMut | Grant | Unlink | Destroy

// ReadOnly is the common attenuation for sharing data.
const ReadOnly = Read

// Has reports whether r includes every right in need.
func (r Rights) Has(need Rights) bool { return r&need == need }

// String renders the rights set.
func (r Rights) String() string {
	if r == 0 {
		return "none"
	}
	names := []struct {
		bit  Rights
		name string
	}{
		{Read, "read"}, {Write, "write"}, {Append, "append"}, {Exec, "exec"},
		{SetMut, "setmut"}, {Grant, "grant"}, {Unlink, "unlink"}, {Destroy, "destroy"},
	}
	var out []string
	for _, n := range names {
		if r.Has(n.bit) {
			out = append(out, n.name)
		}
	}
	return strings.Join(out, "|")
}

// Errors returned by capability checks.
var (
	ErrDenied  = fault.Fatal("capability: required right not held")
	ErrRevoked = fault.Fatal("capability: reference revoked")
	ErrAmplify = fault.Fatal("capability: attenuation cannot add rights")
	ErrNoGrant = fault.Fatal("capability: grant right required")
	ErrUnknown = fault.Fatal("capability: unknown reference")
)

// RefID identifies a reference within a Space.
type RefID uint64

// Ref is a capability: an object ID plus a rights mask, bound to the
// issuing Space and the object's revocation epoch at mint time.
type Ref struct {
	id     RefID
	obj    object.ID
	rights Rights
	epoch  uint64
	space  *Space
}

// Object returns the referenced object's ID.
func (r Ref) Object() object.ID { return r.obj }

// Rights returns the reference's rights mask.
func (r Ref) Rights() Rights { return r.rights }

// Valid reports whether the reference was minted by a space (zero Refs are
// invalid).
func (r Ref) Valid() bool { return r.space != nil }

// String renders the reference.
func (r Ref) String() string {
	return fmt.Sprintf("ref(%v, %v)", r.obj, r.rights)
}

// Space tracks the references and revocation epochs of one trust domain
// (typically one PCSI deployment).
type Space struct {
	next   RefID
	epochs map[object.ID]uint64
	minted map[RefID]struct{}
	// Checks counts capability validations, for experiment E8.
	Checks int64
}

// NewSpace returns an empty capability space.
func NewSpace() *Space {
	return &Space{next: 1, epochs: make(map[object.ID]uint64), minted: make(map[RefID]struct{})}
}

// Mint issues a fresh reference to obj with the given rights. Only the
// system (object creator) calls Mint; user code obtains references from
// creation calls or by attenuation.
func (s *Space) Mint(obj object.ID, rights Rights) Ref {
	r := Ref{id: s.next, obj: obj, rights: rights, epoch: s.epochs[obj], space: s}
	s.minted[r.id] = struct{}{}
	s.next++
	return r
}

// Attenuate derives a new reference from r with rights narrowed to mask.
// The result's rights are r.rights & mask; requesting rights outside the
// parent's is an error (amplification).
func (s *Space) Attenuate(r Ref, mask Rights) (Ref, error) {
	if err := s.Check(r, 0); err != nil {
		return Ref{}, err
	}
	if mask&^r.rights != 0 {
		return Ref{}, fmt.Errorf("%w: have %v, requested %v", ErrAmplify, r.rights, mask)
	}
	return s.Mint(r.obj, r.rights&mask), nil
}

// Delegate mints a copy of r for another holder; requires the Grant right.
func (s *Space) Delegate(r Ref, mask Rights) (Ref, error) {
	if err := s.Check(r, Grant); err != nil {
		if errors.Is(err, ErrDenied) {
			return Ref{}, ErrNoGrant
		}
		return Ref{}, err
	}
	return s.Attenuate(r, mask)
}

// Check validates that r is live (minted here, not revoked) and carries
// every right in need.
func (s *Space) Check(r Ref, need Rights) error {
	s.Checks++
	if r.space != s {
		return ErrUnknown
	}
	if _, ok := s.minted[r.id]; !ok {
		return ErrUnknown
	}
	if r.epoch != s.epochs[r.obj] {
		return ErrRevoked
	}
	if !r.rights.Has(need) {
		return fmt.Errorf("%w: need %v, have %v", ErrDenied, need, r.rights)
	}
	return nil
}

// Revoke invalidates every outstanding reference to obj by advancing its
// epoch. New references minted afterwards are valid.
func (s *Space) Revoke(obj object.ID) {
	s.epochs[obj]++
}

// Drop forgets a single reference; subsequent checks on it fail.
func (s *Space) Drop(r Ref) {
	delete(s.minted, r.id)
}

// Registry retains the (object, epoch) of every live reference so the GC
// can compute reachability roots. PCSI deployments wrap a Space in a
// Registry.
type Registry struct {
	*Space
	byRef map[RefID]object.ID
}

// NewRegistry returns a registry-backed capability space.
func NewRegistry() *Registry {
	return &Registry{Space: NewSpace(), byRef: make(map[RefID]object.ID)}
}

// Mint issues and records a reference.
func (g *Registry) Mint(obj object.ID, rights Rights) Ref {
	r := g.Space.Mint(obj, rights)
	g.byRef[r.id] = obj
	return r
}

// Attenuate derives and records a narrowed reference.
func (g *Registry) Attenuate(r Ref, mask Rights) (Ref, error) {
	nr, err := g.Space.Attenuate(r, mask)
	if err != nil {
		return Ref{}, err
	}
	g.byRef[nr.id] = nr.obj
	return nr, nil
}

// Drop forgets a reference and its registry entry.
func (g *Registry) Drop(r Ref) {
	g.Space.Drop(r)
	delete(g.byRef, r.id)
}

// Roots returns the set of objects with live references — the GC root
// contribution of held capabilities. Sorted for determinism.
func (g *Registry) Roots() []object.ID {
	seen := make(map[object.ID]struct{})
	for id, obj := range g.byRef {
		if _, minted := g.minted[id]; !minted {
			continue
		}
		seen[obj] = struct{}{}
	}
	out := make([]object.ID, 0, len(seen))
	for obj := range seen {
		out = append(out, obj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

package capability

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/object"
)

func TestMintAndCheck(t *testing.T) {
	s := NewSpace()
	r := s.Mint(object.ID(1), Read|Write)
	if err := s.Check(r, Read); err != nil {
		t.Fatal(err)
	}
	if err := s.Check(r, Read|Write); err != nil {
		t.Fatal(err)
	}
	if err := s.Check(r, Exec); !errors.Is(err, ErrDenied) {
		t.Errorf("Check(Exec) = %v, want ErrDenied", err)
	}
}

func TestZeroRefInvalid(t *testing.T) {
	s := NewSpace()
	var zero Ref
	if zero.Valid() {
		t.Error("zero Ref reports valid")
	}
	if err := s.Check(zero, Read); !errors.Is(err, ErrUnknown) {
		t.Errorf("Check(zero) = %v, want ErrUnknown", err)
	}
}

func TestForeignSpaceRefRejected(t *testing.T) {
	a, b := NewSpace(), NewSpace()
	r := a.Mint(object.ID(1), All)
	if err := b.Check(r, Read); !errors.Is(err, ErrUnknown) {
		t.Errorf("foreign ref check = %v, want ErrUnknown", err)
	}
}

func TestAttenuateNarrows(t *testing.T) {
	s := NewSpace()
	r := s.Mint(object.ID(1), Read|Write|Grant)
	ro, err := s.Attenuate(r, Read)
	if err != nil {
		t.Fatal(err)
	}
	if ro.Rights() != Read {
		t.Errorf("rights = %v, want read", ro.Rights())
	}
	if err := s.Check(ro, Write); !errors.Is(err, ErrDenied) {
		t.Errorf("attenuated ref allows write: %v", err)
	}
	// The parent is unaffected.
	if err := s.Check(r, Write); err != nil {
		t.Errorf("parent lost rights: %v", err)
	}
}

func TestAttenuateCannotAmplify(t *testing.T) {
	s := NewSpace()
	r := s.Mint(object.ID(1), Read)
	if _, err := s.Attenuate(r, Read|Write); !errors.Is(err, ErrAmplify) {
		t.Errorf("amplification err = %v, want ErrAmplify", err)
	}
}

// Property: any chain of attenuations yields rights that are a subset of
// the original — monotonic narrowing, the core capability invariant.
func TestAttenuationMonotoneProperty(t *testing.T) {
	f := func(initial uint32, masks []uint32) bool {
		s := NewSpace()
		r := s.Mint(object.ID(1), Rights(initial)&All)
		orig := r.Rights()
		for _, m := range masks {
			nr, err := s.Attenuate(r, Rights(m)&r.Rights())
			if err != nil {
				return false
			}
			r = nr
			if r.Rights()&^orig != 0 {
				return false // gained a right not originally held
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestDelegateRequiresGrant(t *testing.T) {
	s := NewSpace()
	nog := s.Mint(object.ID(1), Read|Write)
	if _, err := s.Delegate(nog, Read); !errors.Is(err, ErrNoGrant) {
		t.Errorf("delegate without grant = %v, want ErrNoGrant", err)
	}
	g := s.Mint(object.ID(1), Read|Grant)
	d, err := s.Delegate(g, Read)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Check(d, Read); err != nil {
		t.Errorf("delegated ref invalid: %v", err)
	}
}

func TestRevokeInvalidatesOutstanding(t *testing.T) {
	s := NewSpace()
	r1 := s.Mint(object.ID(7), All)
	r2, err := s.Attenuate(r1, Read)
	if err != nil {
		t.Fatal(err)
	}
	other := s.Mint(object.ID(8), All)
	s.Revoke(object.ID(7))
	if err := s.Check(r1, Read); !errors.Is(err, ErrRevoked) {
		t.Errorf("r1 after revoke = %v, want ErrRevoked", err)
	}
	if err := s.Check(r2, Read); !errors.Is(err, ErrRevoked) {
		t.Errorf("r2 after revoke = %v, want ErrRevoked", err)
	}
	// References to other objects are untouched.
	if err := s.Check(other, Read); err != nil {
		t.Errorf("unrelated ref revoked: %v", err)
	}
	// New references minted after the revocation are valid.
	fresh := s.Mint(object.ID(7), Read)
	if err := s.Check(fresh, Read); err != nil {
		t.Errorf("fresh ref after revoke invalid: %v", err)
	}
}

func TestDropForgetsSingleRef(t *testing.T) {
	s := NewSpace()
	r := s.Mint(object.ID(1), Read)
	keep := s.Mint(object.ID(1), Read)
	s.Drop(r)
	if err := s.Check(r, Read); !errors.Is(err, ErrUnknown) {
		t.Errorf("dropped ref check = %v, want ErrUnknown", err)
	}
	if err := s.Check(keep, Read); err != nil {
		t.Errorf("sibling ref affected by drop: %v", err)
	}
}

func TestChecksCounter(t *testing.T) {
	s := NewSpace()
	r := s.Mint(object.ID(1), Read)
	before := s.Checks
	for i := 0; i < 5; i++ {
		if err := s.Check(r, Read); err != nil {
			t.Fatal(err)
		}
	}
	if s.Checks != before+5 {
		t.Errorf("Checks = %d, want %d", s.Checks, before+5)
	}
}

func TestRightsString(t *testing.T) {
	if Rights(0).String() != "none" {
		t.Errorf("Rights(0) = %q", Rights(0).String())
	}
	got := (Read | Write).String()
	if got != "read|write" {
		t.Errorf("read|write = %q", got)
	}
}

func TestRegistryRoots(t *testing.T) {
	g := NewRegistry()
	a := g.Mint(object.ID(1), All)
	g.Mint(object.ID(2), Read)
	b, err := g.Attenuate(a, Read)
	if err != nil {
		t.Fatal(err)
	}
	roots := g.Roots()
	if len(roots) != 2 || roots[0] != 1 || roots[1] != 2 {
		t.Fatalf("Roots = %v, want [1 2]", roots)
	}
	g.Drop(a)
	g.Drop(b)
	roots = g.Roots()
	if len(roots) != 1 || roots[0] != 2 {
		t.Fatalf("Roots after drops = %v, want [2]", roots)
	}
}

func TestRegistryRootsDeterministic(t *testing.T) {
	g := NewRegistry()
	for i := 10; i > 0; i-- {
		g.Mint(object.ID(i), Read)
	}
	r1 := g.Roots()
	r2 := g.Roots()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("Roots not deterministic")
		}
		if i > 0 && r1[i-1] >= r1[i] {
			t.Fatal("Roots not sorted")
		}
	}
}

package sim

// Resource is a counting semaphore with FIFO admission, used to model
// contended capacity (CPU slots, disk queue depth, connection pools).
type Resource struct {
	env  *Env
	name string
	cap  int64
	used int64
	q    []*resWaiter

	// Contention statistics.
	waits     int64
	totalWait Duration
}

type resWaiter struct {
	p  *Proc
	n  int64
	at Time
}

// NewResource returns a resource with the given capacity.
func (e *Env) NewResource(name string, capacity int64) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{env: e, name: name, cap: capacity}
}

// Capacity returns the total capacity.
func (r *Resource) Capacity() int64 { return r.cap }

// InUse returns the currently acquired amount.
func (r *Resource) InUse() int64 { return r.used }

// Queued returns the number of waiting acquirers.
func (r *Resource) Queued() int { return len(r.q) }

// Acquire takes n units, parking the process in FIFO order until they are
// available. n must not exceed capacity.
func (r *Resource) Acquire(p *Proc, n int64) {
	if n > r.cap {
		panic("sim: acquire exceeds resource capacity")
	}
	if len(r.q) == 0 && r.used+n <= r.cap {
		r.used += n
		return
	}
	start := r.env.now
	r.q = append(r.q, &resWaiter{p: p, n: n, at: start})
	// admit reserves our units before waking us, so one park suffices.
	p.park()
	r.waits++
	r.totalWait += r.env.now.Sub(start)
}

// TryAcquire takes n units if immediately available and reports success.
func (r *Resource) TryAcquire(n int64) bool {
	if len(r.q) == 0 && r.used+n <= r.cap {
		r.used += n
		return true
	}
	return false
}

// Release returns n units and admits queued acquirers in FIFO order.
func (r *Resource) Release(n int64) {
	r.used -= n
	if r.used < 0 {
		panic("sim: resource over-released")
	}
	r.admit()
}

func (r *Resource) admit() {
	for len(r.q) > 0 {
		w := r.q[0]
		if r.used+w.n > r.cap {
			return
		}
		r.used += w.n
		r.q = r.q[1:]
		r.env.wakeNow(w.p)
	}
}

// AvgWait returns the mean queueing delay across all completed acquisitions
// that had to wait.
func (r *Resource) AvgWait() Duration {
	if r.waits == 0 {
		return 0
	}
	return r.totalWait / Duration(r.waits)
}

// Use acquires n units, runs fn, and releases them.
func (r *Resource) Use(p *Proc, n int64, fn func()) {
	r.Acquire(p, n)
	defer r.Release(n)
	fn()
}

// Queue is an unbounded FIFO of items with blocking receive, modelling
// message queues and work channels inside the simulation.
type Queue[T any] struct {
	env     *Env
	items   []T
	waiters []*Proc
	closed  bool
}

// NewQueue returns an empty queue.
func NewQueue[T any](e *Env) *Queue[T] { return &Queue[T]{env: e} }

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends an item and wakes one waiting receiver. It never blocks.
func (q *Queue[T]) Put(v T) {
	if q.closed {
		panic("sim: put on closed queue")
	}
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		p := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.env.wakeNow(p)
	}
}

// Close marks the queue closed; blocked and future Gets return ok=false
// once drained.
func (q *Queue[T]) Close() {
	q.closed = true
	for _, p := range q.waiters {
		q.env.wakeNow(p)
	}
	q.waiters = nil
}

// Get removes and returns the head item, parking while the queue is empty.
// ok is false if the queue is closed and drained.
func (q *Queue[T]) Get(p *Proc) (v T, ok bool) {
	for len(q.items) == 0 {
		if q.closed {
			return v, false
		}
		q.waiters = append(q.waiters, p)
		p.park()
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

// TryGet removes and returns the head item without blocking.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

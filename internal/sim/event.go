package sim

import "errors"

// ErrTimeout is returned from waits that exceed their deadline.
var ErrTimeout = errors.New("sim: wait timed out")

// Event is a one-shot completion that processes can wait on. It carries an
// arbitrary value or an error. Completing an already-completed event is a
// no-op, which makes race-to-complete patterns (timeouts, first-of) simple.
type Event struct {
	env  *Env
	done bool
	val  any
	err  error
	// The overwhelmingly common shapes are one waiter and zero or one
	// callbacks, so the first of each lives in an inline slot and the
	// slices only materialize for fan-in events. Wake and callback order
	// is still registration order: slot first, then the slice.
	waiter0   *Proc
	waiters   []*Proc
	callback0 func(any, error)
	callbacks []func(any, error)
}

// NewEvent returns an incomplete event.
func (e *Env) NewEvent() *Event { return &Event{env: e} }

// Done reports whether the event has completed.
func (ev *Event) Done() bool { return ev.done }

// Value returns the completion value and error; only meaningful once Done.
func (ev *Event) Value() (any, error) { return ev.val, ev.err }

// Complete finishes the event successfully with value v. Waiters resume at
// the current virtual time. Subsequent completions are ignored.
func (ev *Event) Complete(v any) { ev.finish(v, nil) }

// Fail finishes the event with an error.
func (ev *Event) Fail(err error) { ev.finish(nil, err) }

//pcsi:hotpath
func (ev *Event) finish(v any, err error) {
	if ev.done {
		return
	}
	ev.done = true
	ev.val = v
	ev.err = err
	if ev.waiter0 != nil {
		ev.env.wakeNow(ev.waiter0)
		ev.waiter0 = nil
	}
	for _, p := range ev.waiters {
		ev.env.wakeNow(p)
	}
	ev.waiters = nil
	if cb := ev.callback0; cb != nil {
		ev.callback0 = nil
		cb(v, err)
	}
	for _, cb := range ev.callbacks {
		cb(v, err)
	}
	ev.callbacks = nil
}

// OnComplete registers fn to run (in engine context) when the event
// completes; if it already has, fn runs immediately.
func (ev *Event) OnComplete(fn func(v any, err error)) {
	if ev.done {
		fn(ev.val, ev.err)
		return
	}
	if ev.callback0 == nil && len(ev.callbacks) == 0 {
		ev.callback0 = fn
		return
	}
	ev.callbacks = append(ev.callbacks, fn)
}

// Wait parks the process until the event completes and returns its result.
//
//pcsi:hotpath
func (p *Proc) Wait(ev *Event) (any, error) {
	for !ev.done {
		if ev.waiter0 == nil && len(ev.waiters) == 0 {
			ev.waiter0 = p
		} else {
			ev.waiters = append(ev.waiters, p)
		}
		p.park()
	}
	return ev.val, ev.err
}

// WaitTimeout waits for the event for at most d of virtual time. On timeout
// it returns ErrTimeout; the event itself stays pending.
func (p *Proc) WaitTimeout(ev *Event, d Duration) (any, error) {
	if ev.done {
		return ev.val, ev.err
	}
	timer := p.env.NewEvent()
	p.env.After(d, func() { timer.Complete(nil) })
	fired := p.env.NewEvent()
	ev.OnComplete(func(v any, err error) { fired.finish(v, err) })
	timer.OnComplete(func(any, error) { fired.finish(nil, ErrTimeout) })
	return p.Wait(fired)
}

// WaitAll waits for every event and returns the first error seen, if any.
func (p *Proc) WaitAll(evs ...*Event) error {
	var first error
	for _, ev := range evs {
		if _, err := p.Wait(ev); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WaitAny waits until at least one event completes and returns its index
// and result.
func (p *Proc) WaitAny(evs ...*Event) (int, any, error) {
	for i, ev := range evs {
		if ev.Done() {
			v, err := ev.Value()
			return i, v, err
		}
	}
	type res struct {
		i   int
		v   any
		err error
	}
	first := p.env.NewEvent()
	for i, ev := range evs {
		i := i
		ev.OnComplete(func(v any, err error) { first.Complete(res{i, v, err}) })
	}
	v, _ := p.Wait(first)
	r := v.(res)
	return r.i, r.v, r.err
}

// Barrier completes once n arrivals have been recorded.
type Barrier struct {
	ev   *Event
	need int
}

// NewBarrier returns a barrier expecting n arrivals.
func (e *Env) NewBarrier(n int) *Barrier { return &Barrier{ev: e.NewEvent(), need: n} }

// Arrive records one arrival; the n-th arrival releases all waiters.
func (b *Barrier) Arrive() {
	b.need--
	if b.need <= 0 {
		b.ev.Complete(nil)
	}
}

// Wait parks until the barrier releases.
func (b *Barrier) Wait(p *Proc) { p.Wait(b.ev) } //nolint:errcheck // barrier never fails

package sim

import (
	"testing"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEnv(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEnv(1)
	var woke Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		woke = p.Now()
	})
	end := e.Run()
	if woke != Time(5*time.Millisecond) {
		t.Errorf("woke at %v, want 5ms", woke)
	}
	if end != woke {
		t.Errorf("Run returned %v, want %v", end, woke)
	}
}

func TestSleepNegativeClampsToZero(t *testing.T) {
	e := NewEnv(1)
	e.Go("p", func(p *Proc) {
		p.Sleep(-time.Second)
		if p.Now() != 0 {
			t.Errorf("negative sleep advanced clock to %v", p.Now())
		}
	})
	e.Run()
}

func TestEventOrderingDeterministic(t *testing.T) {
	e := NewEnv(1)
	var order []int
	// Same timestamp: must fire in scheduling order.
	e.At(10, func() { order = append(order, 1) })
	e.At(10, func() { order = append(order, 2) })
	e.At(5, func() { order = append(order, 0) })
	e.Run()
	want := []int{0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestInterleavedProcesses(t *testing.T) {
	e := NewEnv(1)
	var trace []string
	e.Go("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(2)
		trace = append(trace, "a2")
		p.Sleep(2)
		trace = append(trace, "a4")
	})
	e.Go("b", func(p *Proc) {
		p.Sleep(1)
		trace = append(trace, "b1")
		p.Sleep(2)
		trace = append(trace, "b3")
	})
	e.Run()
	want := []string{"a0", "b1", "a2", "b3", "a4"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestSpawnFromProcess(t *testing.T) {
	e := NewEnv(1)
	var childRan bool
	e.Go("parent", func(p *Proc) {
		p.Sleep(3)
		e.Go("child", func(c *Proc) {
			if c.Now() != 3 {
				t.Errorf("child started at %v, want 3", c.Now())
			}
			childRan = true
		})
		p.Sleep(1)
	})
	e.Run()
	if !childRan {
		t.Fatal("child never ran")
	}
}

func TestEventCompleteWakesWaiters(t *testing.T) {
	e := NewEnv(1)
	ev := e.NewEvent()
	var got any
	var at Time
	e.Go("waiter", func(p *Proc) {
		got, _ = p.Wait(ev)
		at = p.Now()
	})
	e.Go("completer", func(p *Proc) {
		p.Sleep(7)
		ev.Complete("hello")
	})
	e.Run()
	if got != "hello" {
		t.Errorf("Wait returned %v, want hello", got)
	}
	if at != 7 {
		t.Errorf("waiter resumed at %v, want 7", at)
	}
}

func TestEventDoubleCompleteIgnored(t *testing.T) {
	e := NewEnv(1)
	ev := e.NewEvent()
	ev.Complete(1)
	ev.Complete(2)
	ev.Fail(ErrTimeout)
	v, err := ev.Value()
	if v != 1 || err != nil {
		t.Fatalf("Value() = %v, %v; want 1, nil", v, err)
	}
}

func TestWaitOnCompletedEventReturnsImmediately(t *testing.T) {
	e := NewEnv(1)
	ev := e.NewEvent()
	ev.Complete(42)
	e.Go("w", func(p *Proc) {
		v, err := p.Wait(ev)
		if v != 42 || err != nil {
			t.Errorf("Wait = %v, %v; want 42, nil", v, err)
		}
		if p.Now() != 0 {
			t.Errorf("Wait on done event advanced clock to %v", p.Now())
		}
	})
	e.Run()
}

func TestWaitTimeout(t *testing.T) {
	e := NewEnv(1)
	never := e.NewEvent()
	var err error
	var at Time
	e.Go("w", func(p *Proc) {
		_, err = p.WaitTimeout(never, 9)
		at = p.Now()
	})
	e.Run()
	if err != ErrTimeout {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
	if at != 9 {
		t.Errorf("timed out at %v, want 9", at)
	}
}

func TestWaitTimeoutCompletesFirst(t *testing.T) {
	e := NewEnv(1)
	ev := e.NewEvent()
	e.At(3, func() { ev.Complete("x") })
	var v any
	var err error
	e.Go("w", func(p *Proc) { v, err = p.WaitTimeout(ev, 100) })
	e.Run()
	if v != "x" || err != nil {
		t.Errorf("WaitTimeout = %v, %v; want x, nil", v, err)
	}
}

func TestWaitAny(t *testing.T) {
	e := NewEnv(1)
	a, b, c := e.NewEvent(), e.NewEvent(), e.NewEvent()
	e.At(5, func() { b.Complete("b") })
	e.At(9, func() { a.Complete("a") })
	var idx int
	var v any
	e.Go("w", func(p *Proc) { idx, v, _ = p.WaitAny(a, b, c) })
	e.Run()
	if idx != 1 || v != "b" {
		t.Errorf("WaitAny = %d, %v; want 1, b", idx, v)
	}
}

func TestWaitAllCollectsFirstError(t *testing.T) {
	e := NewEnv(1)
	a, b := e.NewEvent(), e.NewEvent()
	e.At(1, func() { a.Fail(ErrTimeout) })
	e.At(2, func() { b.Complete(nil) })
	var err error
	e.Go("w", func(p *Proc) { err = p.WaitAll(a, b) })
	e.Run()
	if err != ErrTimeout {
		t.Errorf("WaitAll err = %v, want ErrTimeout", err)
	}
}

func TestBarrier(t *testing.T) {
	e := NewEnv(1)
	bar := e.NewBarrier(3)
	var released Time = -1
	e.Go("waiter", func(p *Proc) {
		bar.Wait(p)
		released = p.Now()
	})
	for i := 1; i <= 3; i++ {
		d := Duration(i)
		e.After(d, bar.Arrive)
	}
	e.Run()
	if released != 3 {
		t.Errorf("barrier released at %v, want 3", released)
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	e := NewEnv(1)
	var fired []Time
	e.At(10, func() { fired = append(fired, 10) })
	e.At(20, func() { fired = append(fired, 20) })
	now := e.RunUntil(15)
	if now != 15 {
		t.Errorf("RunUntil returned %v, want 15", now)
	}
	if len(fired) != 1 || fired[0] != 10 {
		t.Errorf("fired = %v, want [10]", fired)
	}
	e.Run()
	if len(fired) != 2 {
		t.Errorf("after Run, fired = %v, want both", fired)
	}
}

func TestShutdownAbortsParkedProcesses(t *testing.T) {
	e := NewEnv(1)
	never := e.NewEvent()
	reached := false
	e.Go("stuck", func(p *Proc) {
		p.Wait(never)  //nolint:errcheck
		reached = true // must not run
	})
	e.Run()
	if reached {
		t.Fatal("aborted process continued past Wait")
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d after Run, want 0", e.LiveProcs())
	}
}

func TestResourceAdmitsFIFO(t *testing.T) {
	e := NewEnv(1)
	r := e.NewResource("cpu", 1)
	var order []string
	worker := func(name string, hold Duration) func(*Proc) {
		return func(p *Proc) {
			r.Acquire(p, 1)
			order = append(order, name)
			p.Sleep(hold)
			r.Release(1)
		}
	}
	e.Go("a", worker("a", 10))
	e.Go("b", worker("b", 10))
	e.Go("c", worker("c", 10))
	e.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestResourceCounting(t *testing.T) {
	e := NewEnv(1)
	r := e.NewResource("mem", 10)
	maxInUse := int64(0)
	for i := 0; i < 5; i++ {
		e.Go("w", func(p *Proc) {
			r.Acquire(p, 4)
			if r.InUse() > maxInUse {
				maxInUse = r.InUse()
			}
			p.Sleep(10)
			r.Release(4)
		})
	}
	e.Run()
	if maxInUse > 10 {
		t.Fatalf("resource oversubscribed: %d > 10", maxInUse)
	}
	if r.InUse() != 0 {
		t.Fatalf("InUse = %d at end, want 0", r.InUse())
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := NewEnv(1)
	r := e.NewResource("x", 2)
	if !r.TryAcquire(2) {
		t.Fatal("TryAcquire(2) on empty resource failed")
	}
	if r.TryAcquire(1) {
		t.Fatal("TryAcquire(1) on full resource succeeded")
	}
	r.Release(2)
	if !r.TryAcquire(1) {
		t.Fatal("TryAcquire(1) after release failed")
	}
}

func TestResourceAvgWait(t *testing.T) {
	e := NewEnv(1)
	r := e.NewResource("cpu", 1)
	e.Go("a", func(p *Proc) { r.Acquire(p, 1); p.Sleep(100); r.Release(1) })
	e.Go("b", func(p *Proc) { r.Acquire(p, 1); r.Release(1) })
	e.Run()
	if got := r.AvgWait(); got != 100 {
		t.Errorf("AvgWait = %v, want 100ns", got)
	}
}

func TestQueueBlockingGet(t *testing.T) {
	e := NewEnv(1)
	q := NewQueue[int](e)
	var got int
	var at Time
	e.Go("consumer", func(p *Proc) {
		v, ok := q.Get(p)
		if !ok {
			t.Error("Get returned !ok")
		}
		got, at = v, p.Now()
	})
	e.Go("producer", func(p *Proc) {
		p.Sleep(4)
		q.Put(41)
	})
	e.Run()
	if got != 41 || at != 4 {
		t.Errorf("got %d at %v, want 41 at 4", got, at)
	}
}

func TestQueueCloseDrains(t *testing.T) {
	e := NewEnv(1)
	q := NewQueue[int](e)
	q.Put(1)
	q.Put(2)
	q.Close()
	var vals []int
	e.Go("c", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			vals = append(vals, v)
		}
	})
	e.Run()
	if len(vals) != 2 || vals[0] != 1 || vals[1] != 2 {
		t.Fatalf("vals = %v, want [1 2]", vals)
	}
}

func TestQueueCloseWakesBlockedGetter(t *testing.T) {
	e := NewEnv(1)
	q := NewQueue[string](e)
	okAtEnd := true
	e.Go("c", func(p *Proc) { _, okAtEnd = q.Get(p) })
	e.After(5, q.Close)
	e.Run()
	if okAtEnd {
		t.Fatal("Get on closed queue returned ok=true")
	}
}

func TestDeterministicRand(t *testing.T) {
	a := NewEnv(42).Rand().Int63()
	b := NewEnv(42).Rand().Int63()
	c := NewEnv(43).Rand().Int63()
	if a != b {
		t.Errorf("same seed produced different values: %d vs %d", a, b)
	}
	if a == c {
		t.Errorf("different seeds produced identical first value %d", a)
	}
}

func TestManyProcessesStress(t *testing.T) {
	e := NewEnv(7)
	const n = 500
	count := 0
	for i := 0; i < n; i++ {
		d := Duration(e.Rand().Intn(1000))
		e.Go("w", func(p *Proc) {
			p.Sleep(d)
			count++
			p.Sleep(d)
		})
	}
	e.Run()
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d, want 0", e.LiveProcs())
	}
}

func TestYieldRunsSameInstantEvents(t *testing.T) {
	e := NewEnv(1)
	var seq []string
	e.Go("a", func(p *Proc) {
		seq = append(seq, "a-before")
		p.Yield()
		seq = append(seq, "a-after")
	})
	e.Go("b", func(p *Proc) { seq = append(seq, "b") })
	e.Run()
	// b was spawned after a but a yielded, so b runs before a-after.
	want := []string{"a-before", "b", "a-after"}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("seq = %v, want %v", seq, want)
		}
	}
}

func TestResourceUseHelper(t *testing.T) {
	e := NewEnv(1)
	r := e.NewResource("cpu", 2)
	ran := false
	e.Go("w", func(p *Proc) {
		r.Use(p, 2, func() {
			ran = true
			if r.InUse() != 2 {
				t.Errorf("InUse inside Use = %d", r.InUse())
			}
		})
		if r.InUse() != 0 {
			t.Errorf("InUse after Use = %d", r.InUse())
		}
	})
	e.Run()
	if !ran {
		t.Fatal("Use body never ran")
	}
}

func TestAtInThePastClampsToNow(t *testing.T) {
	e := NewEnv(1)
	var firedAt Time = -1
	e.Go("driver", func(p *Proc) {
		p.Sleep(100)
		e.At(5, func() { firedAt = e.Now() }) // 5 < now: clamp
		p.Sleep(1)
	})
	e.Run()
	if firedAt != 100 {
		t.Errorf("past event fired at %v, want clamped to 100", firedAt)
	}
}

func TestOnCompleteAfterDoneRunsImmediately(t *testing.T) {
	e := NewEnv(1)
	ev := e.NewEvent()
	ev.Complete("x")
	ran := false
	ev.OnComplete(func(v any, err error) {
		if v != "x" || err != nil {
			t.Errorf("OnComplete got %v, %v", v, err)
		}
		ran = true
	})
	if !ran {
		t.Fatal("OnComplete on done event did not run")
	}
}

func TestEventFailPropagates(t *testing.T) {
	e := NewEnv(1)
	ev := e.NewEvent()
	boom := ErrTimeout
	e.At(3, func() { ev.Fail(boom) })
	var err error
	e.Go("w", func(p *Proc) { _, err = p.Wait(ev) })
	e.Run()
	if err != boom {
		t.Errorf("Wait err = %v, want failure", err)
	}
}

func TestWaitAnyAlreadyDone(t *testing.T) {
	e := NewEnv(1)
	a, b := e.NewEvent(), e.NewEvent()
	b.Complete("ready")
	e.Go("w", func(p *Proc) {
		i, v, err := p.WaitAny(a, b)
		if i != 1 || v != "ready" || err != nil {
			t.Errorf("WaitAny = %d, %v, %v", i, v, err)
		}
		if p.Now() != 0 {
			t.Error("WaitAny on done event advanced the clock")
		}
	})
	e.Run()
}

func TestProcName(t *testing.T) {
	e := NewEnv(1)
	e.Go("named-proc", func(p *Proc) {
		if p.Name() != "named-proc" {
			t.Errorf("Name = %q", p.Name())
		}
		if p.Env() != e {
			t.Error("Env mismatch")
		}
	})
	e.Run()
}

func TestGoAfterShutdownIsNoop(t *testing.T) {
	e := NewEnv(1)
	e.Go("first", func(p *Proc) {})
	e.Run()
	ran := false
	e.Go("late", func(p *Proc) { ran = true })
	e.Run()
	if ran {
		t.Error("process spawned after shutdown ran")
	}
}

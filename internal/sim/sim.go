// Package sim provides a sequential discrete-event simulation engine.
//
// The engine advances a virtual clock through a queue of timestamped events.
// Simulated activities are written as ordinary Go functions ("processes")
// that run on their own goroutines but execute strictly one at a time: a
// process runs until it parks (Sleep, Wait, Acquire, ...) and only then does
// the engine dispatch the next event. This gives deterministic, race-free
// simulations with natural sequential code.
//
// Virtual time is completely decoupled from wall-clock time: a Sleep of ten
// simulated minutes costs only one event dispatch.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the simulation epoch.
type Time int64

// Duration re-exports time.Duration; all simulated delays use it.
type Duration = time.Duration

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the time as a duration since the epoch.
func (t Time) String() string { return Duration(t).String() }

// ErrAborted is delivered (via panic, recovered by the engine) to processes
// that are still parked when the environment shuts down, and returned from
// waits that are abandoned. Processes normally never observe it.
var ErrAborted = errors.New("sim: environment shut down")

// event is a scheduled callback. Events with equal times fire in scheduling
// order (seq breaks ties), which keeps runs deterministic.
type event struct {
	t   Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (h eventHeap) Peek() *event { return h[0] }

// Env is a simulation environment: a virtual clock plus an event queue.
// It is not safe for concurrent use from goroutines outside the engine's
// own process discipline.
type Env struct {
	now     Time
	queue   eventHeap
	seq     uint64
	yield   chan struct{} // signalled by a process when it parks or exits
	procs   int           // live processes
	parked  []*Proc       // park order, so shutdown aborts deterministically
	closed  bool
	running bool
	seed    int64
	forks   uint64
	rng     *rand.Rand
	obs     any // observer context (e.g. a tracer); opaque to the engine
}

// NewEnv returns a fresh environment whose clock reads zero. The seed fixes
// the environment's random stream; equal seeds give identical runs.
func NewEnv(seed int64) *Env {
	return &Env{
		yield: make(chan struct{}),
		seed:  seed,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Seed returns the seed the environment was created with.
func (e *Env) Seed() int64 { return e.seed }

// Rand returns the environment's shared deterministic random stream.
// Components whose draws must not depend on what else runs in the
// environment should hold their own stream from ForkRand instead.
func (e *Env) Rand() *rand.Rand { return e.rng }

// ForkRand returns a fresh deterministic random stream derived from the
// environment seed, the label, and a per-environment fork counter. Forked
// streams are independent of the shared Rand stream and of each other, so a
// component drawing from its own fork sees the same sequence regardless of
// draw interleaving elsewhere — only the seed and the order of ForkRand
// calls matter.
func (e *Env) ForkRand(label string) *rand.Rand {
	e.forks++
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%s\x00%d", e.seed, label, e.forks)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// ObserverRand returns a deterministic random stream derived from the
// environment seed and the label only. Unlike ForkRand it does not advance
// the fork counter, so observers (tracers, probes) that may or may not be
// attached draw from it without perturbing any component's ForkRand stream:
// a run behaves identically whether or not it is being observed.
func (e *Env) ObserverRand(label string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00observer\x00%s", e.seed, label)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// SetObserverContext attaches an opaque observer (e.g. a tracer) to the
// environment. The engine never inspects it; it exists so cross-cutting
// instrumentation can find its per-environment state without globals.
func (e *Env) SetObserverContext(v any) { e.obs = v }

// ObserverContext returns the value set by SetObserverContext, or nil.
func (e *Env) ObserverContext() any { return e.obs }

// schedule enqueues fn to run at time t (>= now).
func (e *Env) schedule(t Time, fn func()) *event {
	if t < e.now {
		t = e.now
	}
	ev := &event{t: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// At schedules fn to run in engine context at absolute time t.
// fn must not block; use Go for blocking activities.
func (e *Env) At(t Time, fn func()) { e.schedule(t, fn) }

// After schedules fn to run in engine context d from now.
func (e *Env) After(d Duration, fn func()) { e.schedule(e.now.Add(d), fn) }

// Proc is the handle a process uses to interact with virtual time.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	dead   bool
	span   any // current-span context, maintained by instrumentation
}

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Name returns the process name given at spawn.
func (p *Proc) Name() string { return p.name }

// SpanCtx returns the process's current-span context (opaque to the engine;
// the trace package stores its innermost open span here), or nil.
func (p *Proc) SpanCtx() any { return p.span }

// SetSpanCtx replaces the process's current-span context.
func (p *Proc) SetSpanCtx(v any) { p.span = v }

// Go spawns a process. The function starts at the current virtual time but
// is dispatched through the event queue, so a caller inside another process
// keeps running until it parks. Safe to call both before Run and from
// within running processes or event callbacks.
func (e *Env) Go(name string, fn func(p *Proc)) {
	if e.closed {
		return
	}
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.procs++
	e.schedule(e.now, func() {
		go func() {
			defer func() {
				p.dead = true
				e.procs--
				if r := recover(); r != nil {
					if r != ErrAborted {
						panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, r))
					}
				}
				e.yield <- struct{}{}
			}()
			fn(p)
		}()
		<-e.yield // wait until the new process parks or exits
	})
}

// park suspends the calling process until the engine resumes it.
func (p *Proc) park() {
	e := p.env
	e.parked = append(e.parked, p)
	e.yield <- struct{}{}
	<-p.resume
	for i, q := range e.parked {
		if q == p {
			e.parked = append(e.parked[:i], e.parked[i+1:]...)
			break
		}
	}
	if e.closed {
		panic(ErrAborted)
	}
}

// wake schedules the parked process p to resume at time t.
func (e *Env) wake(p *Proc, t Time) {
	e.schedule(t, func() {
		p.resume <- struct{}{}
		<-e.yield
	})
}

// wakeNow schedules p to resume at the current time.
func (e *Env) wakeNow(p *Proc) { e.wake(p, e.now) }

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.env.wake(p, p.env.now.Add(d))
	p.park()
}

// Yield lets every other runnable activity scheduled for the current instant
// run before the process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Run drains the event queue, advancing the clock, and returns the final
// time. After the queue drains, any processes still parked (waiting on
// events that will never complete) are aborted.
func (e *Env) Run() Time { return e.runUntil(-1) }

// RunUntil runs events up to and including time t, then stops without
// aborting parked processes; Run or RunUntil may be called again.
func (e *Env) RunUntil(t Time) Time { return e.runUntil(t) }

func (e *Env) runUntil(limit Time) Time {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 {
		if limit >= 0 && e.queue.Peek().t > limit {
			e.now = limit
			return e.now
		}
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.t
		ev.fn()
	}
	if limit < 0 {
		e.shutdown()
	} else if limit > e.now {
		e.now = limit
	}
	return e.now
}

// shutdown aborts every parked process, oldest park first. Each resumed
// process removes itself from the parked list (in park) before it panics
// with ErrAborted.
func (e *Env) shutdown() {
	e.closed = true
	for len(e.parked) > 0 {
		p := e.parked[0]
		p.resume <- struct{}{}
		<-e.yield
	}
}

// Pending reports the number of events waiting in the queue.
func (e *Env) Pending() int { return len(e.queue) }

// LiveProcs reports the number of processes that have started and not yet
// exited (including parked ones).
func (e *Env) LiveProcs() int { return e.procs }

// Package sim provides a sequential discrete-event simulation engine.
//
// The engine advances a virtual clock through a queue of timestamped events.
// Simulated activities are written as ordinary Go functions ("processes")
// that run on their own goroutines but execute strictly one at a time: a
// process runs until it parks (Sleep, Wait, Acquire, ...) and only then does
// the engine dispatch the next event. This gives deterministic, race-free
// simulations with natural sequential code.
//
// Virtual time is completely decoupled from wall-clock time: a Sleep of ten
// simulated minutes costs only one event dispatch.
package sim

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the simulation epoch.
type Time int64

// Duration re-exports time.Duration; all simulated delays use it.
type Duration = time.Duration

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the time as a duration since the epoch.
func (t Time) String() string { return Duration(t).String() }

// ErrAborted is delivered (via panic, recovered by the engine) to processes
// that are still parked when the environment shuts down, and returned from
// waits that are abandoned. Processes normally never observe it.
var ErrAborted = errors.New("sim: environment shut down")

// event is a scheduled wake-up. Events with equal times fire in scheduling
// order (seq breaks ties), which keeps runs deterministic. The common cases
// — resuming a parked process and starting a fresh one — are encoded in the
// proc/start fields rather than a closure, so the per-event allocation is
// just the heap slot itself (amortized by the backing array); fn is only
// non-nil for At/After callbacks.
type event struct {
	t     Time
	seq   uint64
	proc  *Proc  // non-nil: resume (or, with start, launch) this process
	start bool   // with proc: first dispatch, launch the goroutine
	fn    func() // engine-context callback; nil when proc is set
}

// eventHeap is a binary min-heap of events ordered by (t, seq), stored by
// value. The sift loops are hand-rolled copies of container/heap's up/down
// — identical comparison order, so the pop sequence is bit-identical to
// the previous heap.Interface implementation — but monomorphic: no
// interface dispatch per comparison and no boxing per push/pop on the
// engine's hottest path.
type eventHeap []event

//pcsi:hotpath
func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

//pcsi:hotpath
func (h *eventHeap) push(ev event) {
	q := append(*h, ev)
	*h = q
	for i := len(q) - 1; i > 0; {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

//pcsi:hotpath
func (h *eventHeap) pop() event {
	q := *h
	ev := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // release the fn/proc references in the dead slot
	q = q[:n]
	*h = q
	for i := 0; ; {
		j := 2*i + 1
		if j >= n {
			break
		}
		if r := j + 1; r < n && q.less(r, j) {
			j = r
		}
		if !q.less(j, i) {
			break
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
	return ev
}

func (h eventHeap) peek() *event { return &h[0] }

// Env is a simulation environment: a virtual clock plus an event queue.
// It is not safe for concurrent use from goroutines outside the engine's
// own process discipline.
type Env struct {
	now        Time
	queue      eventHeap
	seq        uint64
	dispatched uint64        // events popped and run, for benchmarking
	yield      chan struct{} // signalled by a process when it parks or exits
	procs      int           // live processes
	// Parked processes form an intrusive doubly-linked list in park order
	// (head = oldest), so parking and unparking are O(1) and shutdown still
	// aborts deterministically oldest-first.
	parkedHead *Proc
	parkedTail *Proc
	closed     bool
	running    bool
	seed       int64
	forks      uint64
	rng        *rand.Rand
	obs        any // observer context (e.g. a tracer); opaque to the engine
}

// NewEnv returns a fresh environment whose clock reads zero. The seed fixes
// the environment's random stream; equal seeds give identical runs.
func NewEnv(seed int64) *Env {
	return &Env{
		yield: make(chan struct{}),
		seed:  seed,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Seed returns the seed the environment was created with.
func (e *Env) Seed() int64 { return e.seed }

// Rand returns the environment's shared deterministic random stream.
// Components whose draws must not depend on what else runs in the
// environment should hold their own stream from ForkRand instead.
func (e *Env) Rand() *rand.Rand { return e.rng }

// ForkRand returns a fresh deterministic random stream derived from the
// environment seed, the label, and a per-environment fork counter. Forked
// streams are independent of the shared Rand stream and of each other, so a
// component drawing from its own fork sees the same sequence regardless of
// draw interleaving elsewhere — only the seed and the order of ForkRand
// calls matter.
func (e *Env) ForkRand(label string) *rand.Rand {
	e.forks++
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%s\x00%d", e.seed, label, e.forks)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// ObserverRand returns a deterministic random stream derived from the
// environment seed and the label only. Unlike ForkRand it does not advance
// the fork counter, so observers (tracers, probes) that may or may not be
// attached draw from it without perturbing any component's ForkRand stream:
// a run behaves identically whether or not it is being observed.
func (e *Env) ObserverRand(label string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00observer\x00%s", e.seed, label)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// SetObserverContext attaches an opaque observer (e.g. a tracer) to the
// environment. The engine never inspects it; it exists so cross-cutting
// instrumentation can find its per-environment state without globals.
func (e *Env) SetObserverContext(v any) { e.obs = v }

// ObserverContext returns the value set by SetObserverContext, or nil.
func (e *Env) ObserverContext() any { return e.obs }

// schedule enqueues fn to run at time t (>= now).
//
//pcsi:hotpath
func (e *Env) schedule(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.queue.push(event{t: t, seq: e.seq, fn: fn})
	e.seq++
}

// scheduleProc enqueues a process resume (or, with start, a process launch)
// at time t (>= now). Unlike schedule it captures nothing: the event names
// the process directly, so the engine's hottest operations — Sleep, wake,
// spawn — cost zero closure allocations.
//
//pcsi:hotpath
func (e *Env) scheduleProc(t Time, p *Proc, start bool) {
	if t < e.now {
		t = e.now
	}
	e.queue.push(event{t: t, seq: e.seq, proc: p, start: start})
	e.seq++
}

// At schedules fn to run in engine context at absolute time t.
// fn must not block; use Go for blocking activities.
func (e *Env) At(t Time, fn func()) { e.schedule(t, fn) }

// After schedules fn to run in engine context d from now.
func (e *Env) After(d Duration, fn func()) { e.schedule(e.now.Add(d), fn) }

// Proc is the handle a process uses to interact with virtual time.
type Proc struct {
	env    *Env
	name   string
	fn     func(p *Proc) // the process body, run by main on first dispatch
	resume chan struct{}
	dead   bool
	span   any // current-span context, maintained by instrumentation

	// Intrusive links in the environment's parked list; nil when running.
	parkedPrev *Proc
	parkedNext *Proc
}

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Name returns the process name given at spawn.
func (p *Proc) Name() string { return p.name }

// SpanCtx returns the process's current-span context (opaque to the engine;
// the trace package stores its innermost open span here), or nil.
func (p *Proc) SpanCtx() any { return p.span }

// SetSpanCtx replaces the process's current-span context.
func (p *Proc) SetSpanCtx(v any) { p.span = v }

// Go spawns a process. The function starts at the current virtual time but
// is dispatched through the event queue, so a caller inside another process
// keeps running until it parks. Safe to call both before Run and from
// within running processes or event callbacks.
//
//pcsi:hotpath
func (e *Env) Go(name string, fn func(p *Proc)) {
	if e.closed {
		return
	}
	p := &Proc{env: e, name: name, fn: fn, resume: make(chan struct{})}
	e.procs++
	e.scheduleProc(e.now, p, true)
}

// main is the goroutine body of a process: run the user function, then
// tear down in exit. Both are methods rather than closures so a spawn
// allocates nothing beyond the Proc, its resume channel, and the
// goroutine itself.
func (p *Proc) main() {
	defer p.exit()
	p.fn(p)
}

// exit marks the process dead and hands control back to the engine. It is
// the deferred frame of main, so recover here intercepts the ErrAborted
// panic that shutdown delivers to parked processes.
func (p *Proc) exit() {
	e := p.env
	p.dead = true
	e.procs--
	if r := recover(); r != nil {
		if r != ErrAborted {
			panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, r))
		}
	}
	e.yield <- struct{}{}
}

// park suspends the calling process until the engine resumes it.
//
//pcsi:hotpath
func (p *Proc) park() {
	e := p.env
	p.parkedPrev = e.parkedTail
	if e.parkedTail != nil {
		e.parkedTail.parkedNext = p
	} else {
		e.parkedHead = p
	}
	e.parkedTail = p
	e.yield <- struct{}{}
	<-p.resume
	if p.parkedPrev != nil {
		p.parkedPrev.parkedNext = p.parkedNext
	} else {
		e.parkedHead = p.parkedNext
	}
	if p.parkedNext != nil {
		p.parkedNext.parkedPrev = p.parkedPrev
	} else {
		e.parkedTail = p.parkedPrev
	}
	p.parkedPrev, p.parkedNext = nil, nil
	if e.closed {
		panic(ErrAborted)
	}
}

// wake schedules the parked process p to resume at time t.
//
//pcsi:hotpath
func (e *Env) wake(p *Proc, t Time) {
	e.scheduleProc(t, p, false)
}

// wakeNow schedules p to resume at the current time.
func (e *Env) wakeNow(p *Proc) { e.wake(p, e.now) }

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.env.wake(p, p.env.now.Add(d))
	p.park()
}

// Yield lets every other runnable activity scheduled for the current instant
// run before the process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Run drains the event queue, advancing the clock, and returns the final
// time. After the queue drains, any processes still parked (waiting on
// events that will never complete) are aborted.
func (e *Env) Run() Time { return e.runUntil(-1) }

// RunUntil runs events up to and including time t, then stops without
// aborting parked processes; Run or RunUntil may be called again.
func (e *Env) RunUntil(t Time) Time { return e.runUntil(t) }

// runUntil is the dispatch loop: pop the earliest event, advance the
// clock, and run it. Process events (the common case) resume or launch
// their goroutine directly; only At/After events call through fn.
//
//pcsi:hotpath
func (e *Env) runUntil(limit Time) Time {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer e.stopRunning()
	for len(e.queue) > 0 {
		if limit >= 0 && e.queue.peek().t > limit {
			e.now = limit
			return e.now
		}
		ev := e.queue.pop()
		e.now = ev.t
		e.dispatched++
		switch {
		case ev.proc == nil:
			ev.fn()
		case ev.start:
			go ev.proc.main()
			<-e.yield // wait until the new process parks or exits
		default:
			ev.proc.resume <- struct{}{}
			<-e.yield
		}
	}
	if limit < 0 {
		e.shutdown()
	} else if limit > e.now {
		e.now = limit
	}
	return e.now
}

func (e *Env) stopRunning() { e.running = false }

// shutdown aborts every parked process, oldest park first. Each resumed
// process removes itself from the parked list (in park) before it panics
// with ErrAborted.
func (e *Env) shutdown() {
	e.closed = true
	for e.parkedHead != nil {
		p := e.parkedHead
		p.resume <- struct{}{}
		<-e.yield
	}
}

// Pending reports the number of events waiting in the queue.
func (e *Env) Pending() int { return len(e.queue) }

// Dispatched reports the total number of events popped from the queue and
// run since the environment was created. The engine benchmark divides
// wall-clock time and allocation counts by it.
func (e *Env) Dispatched() uint64 { return e.dispatched }

// LiveProcs reports the number of processes that have started and not yet
// exited (including parked ones).
func (e *Env) LiveProcs() int { return e.procs }

package scheduler

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/faas"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func testCluster(seed int64) *cluster.Cluster {
	env := sim.NewEnv(seed)
	net := simnet.New(env, simnet.DC2021)
	return cluster.New(env, net, cluster.Config{
		Racks: 2, NodesPerRack: 4,
		NodeCap:         cluster.Resources{MilliCPU: 8000, MemMB: 16384},
		GPUNodesPerRack: 1, GPUsPerGPUNode: 2,
	})
}

var small = cluster.Resources{MilliCPU: 1000, MemMB: 1024}

func TestNaivePlacesSomewhereFeasible(t *testing.T) {
	c := testCluster(1)
	n, scav := (Naive{c}).Place(small, faas.PlacementHints{})
	if n == nil || scav {
		t.Fatalf("Place = %v, %v", n, scav)
	}
	if !small.Fits(n.Free()) {
		t.Error("placed on infeasible node")
	}
}

func TestPackedPrefersTightFit(t *testing.T) {
	c := testCluster(2)
	busy := c.Nodes()[2]
	if _, err := c.Allocate(busy, cluster.Resources{MilliCPU: 6500}); err != nil {
		t.Fatal(err)
	}
	n, _ := (Packed{c}).Place(small, faas.PlacementHints{})
	if n != busy {
		t.Errorf("Packed chose node %d, want tight node %d", n.ID, busy.ID)
	}
}

func TestColocateHonoursHint(t *testing.T) {
	c := testCluster(3)
	target := c.Nodes()[5]
	n, _ := (Colocate{c}).Place(small, faas.PlacementHints{NearNode: target.ID, HasNear: true})
	if n != target {
		t.Errorf("Colocate ignored feasible hint: %v vs %v", n.ID, target.ID)
	}
}

func TestColocateFallsBackToRack(t *testing.T) {
	c := testCluster(4)
	target := c.Nodes()[5]
	if _, err := c.Allocate(target, target.Cap); err != nil {
		t.Fatal(err)
	}
	n, _ := (Colocate{c}).Place(small, faas.PlacementHints{NearNode: target.ID, HasNear: true})
	if n == nil {
		t.Fatal("no placement")
	}
	if n.Rack != target.Rack {
		t.Errorf("fallback left the rack: rack %d vs %d", n.Rack, target.Rack)
	}
}

func TestColocateWithoutHintStillPlaces(t *testing.T) {
	c := testCluster(5)
	n, _ := (Colocate{c}).Place(small, faas.PlacementHints{})
	if n == nil {
		t.Fatal("no placement without hint")
	}
}

func TestScavengeMarksAndPrefersIdle(t *testing.T) {
	c := testCluster(6)
	// Make node 0 busy; the scavenger must avoid it.
	if _, err := c.Allocate(c.Nodes()[0], cluster.Resources{MilliCPU: 7000}); err != nil {
		t.Fatal(err)
	}
	n, scav := (Scavenge{C: c}).Place(small, faas.PlacementHints{})
	if n == nil || !scav {
		t.Fatalf("Place = %v, %v; want scavenged placement", n, scav)
	}
	if n == c.Nodes()[0] {
		t.Error("scavenged onto the busiest node")
	}
}

func TestScavengeFallback(t *testing.T) {
	c := testCluster(7)
	// Drive every node above the 50% scavenge threshold.
	for _, n := range c.Nodes() {
		if _, err := c.Allocate(n, cluster.Resources{MilliCPU: 5000}); err != nil {
			t.Fatal(err)
		}
	}
	n, scav := (Scavenge{C: c, Fallback: Packed{c}}).Place(small, faas.PlacementHints{})
	if n == nil {
		t.Fatal("fallback failed")
	}
	if scav {
		t.Error("fallback placement still marked scavenged")
	}
}

func TestGPUAwareRoutesGPUWork(t *testing.T) {
	c := testCluster(8)
	gpuReq := cluster.Resources{MilliCPU: 1000, MemMB: 1024, GPUs: 1}
	// Hint at a non-GPU node: GPUAware must pick a GPU node in its rack.
	nonGPU := c.Nodes()[3]
	if nonGPU.HasGPU() {
		t.Fatal("test setup: node 3 has a GPU")
	}
	n, _ := (GPUAware{C: c, Inner: Colocate{c}}).Place(gpuReq, faas.PlacementHints{NearNode: nonGPU.ID, HasNear: true})
	if n == nil || !n.HasGPU() {
		t.Fatalf("GPU request placed on %v", n)
	}
	if n.Rack != nonGPU.Rack {
		t.Errorf("GPU placement left the hint rack: %d vs %d", n.Rack, nonGPU.Rack)
	}
}

func TestFullClusterReturnsNil(t *testing.T) {
	c := testCluster(9)
	for _, n := range c.Nodes() {
		if _, err := c.Allocate(n, n.Cap); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := (Naive{c}).Place(small, faas.PlacementHints{}); n != nil {
		t.Error("Naive placed on full cluster")
	}
	if n, _ := (Scavenge{C: c}).Place(small, faas.PlacementHints{}); n != nil {
		t.Error("Scavenge placed on full cluster")
	}
}

// Package scheduler implements instance placement policies for the FaaS
// runtime, embodying the paper's §4 arguments:
//
//   - Naive places every instance on a random feasible node — the
//     strawman whose data always moves through remote storage.
//   - Packed bin-packs (best fit) for density.
//   - Colocate uses task-graph knowledge to place consumers next to
//     producers, reducing data movement "to a single cudaMemcpy" (§4.1).
//   - Scavenge harvests the most-idle nodes' spare capacity at spot
//     pricing, trading eviction risk for cost (§4.2).
package scheduler

import (
	"repro/internal/cluster"
	"repro/internal/faas"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Naive places instances uniformly at random among feasible nodes.
type Naive struct{ C *cluster.Cluster }

// Place implements faas.Placer.
func (s Naive) Place(res cluster.Resources, hints faas.PlacementHints) (*cluster.Node, bool) {
	return s.C.RandomFit(res), false
}

// Packed bin-packs with best fit.
type Packed struct{ C *cluster.Cluster }

// Place implements faas.Placer.
func (s Packed) Place(res cluster.Resources, hints faas.PlacementHints) (*cluster.Node, bool) {
	return s.C.BestFit(res), false
}

// Colocate honours NearNode hints when the hinted node has capacity,
// falling back to best fit. This is the task-graph-aware policy of §4.1.
type Colocate struct{ C *cluster.Cluster }

// Place implements faas.Placer.
func (s Colocate) Place(res cluster.Resources, hints faas.PlacementHints) (*cluster.Node, bool) {
	if hints.PreferGPUNode && !hints.HasNear {
		for _, n := range s.C.Nodes() {
			if n.HasGPU() && res.Fits(n.Free()) {
				return n, false
			}
		}
	}
	if hints.HasNear {
		if n := s.C.Node(hints.NearNode); n != nil && res.Fits(n.Free()) {
			return n, false
		}
		// Second choice: any node in the same rack.
		if near := s.C.Node(hints.NearNode); near != nil {
			for _, n := range s.C.Nodes() {
				if n.Rack == near.Rack && res.Fits(n.Free()) {
					if res.GPUs > 0 && !n.HasGPU() {
						continue
					}
					return n, false
				}
			}
		}
	}
	return s.C.BestFit(res), false
}

// Scavenge spreads work onto the least-utilised nodes and marks the
// allocations as harvested (billed at spot rates, subject to preemption).
type Scavenge struct {
	C *cluster.Cluster
	// Fallback places normally when no idle capacity exists.
	Fallback faas.Placer
}

// Place implements faas.Placer.
func (s Scavenge) Place(res cluster.Resources, hints faas.PlacementHints) (*cluster.Node, bool) {
	idle := s.C.MostIdle(res)
	for _, n := range idle {
		// Only scavenge genuinely underutilised nodes.
		if n.CurrentCPUFrac() < 0.5 {
			return n, true
		}
	}
	if s.Fallback != nil {
		return s.Fallback.Place(res, hints)
	}
	if len(idle) > 0 {
		return idle[0], true
	}
	return nil, false
}

// Traced decorates any placer with tracing: every placement decision
// becomes an instant "sched/place" event on the scheduler track, recording
// the chosen node (or a miss) and whether capacity was scavenged. A nil
// tracer (tracing off) makes it a transparent pass-through.
type Traced struct {
	Env   *sim.Env
	Inner faas.Placer
}

// Place implements faas.Placer.
func (s Traced) Place(res cluster.Resources, hints faas.PlacementHints) (*cluster.Node, bool) {
	node, scavenged := s.Inner.Place(res, hints)
	if t := trace.Of(s.Env); t != nil {
		attrs := []trace.Attr{trace.Int("cpu_m", res.MilliCPU), trace.Int("gpus", res.GPUs)}
		if node != nil {
			attrs = append(attrs, trace.Int("node", int64(node.ID)))
		} else {
			attrs = append(attrs, trace.Str("node", "none"))
		}
		if scavenged {
			attrs = append(attrs, trace.Str("scavenged", "true"))
		}
		t.Instant("scheduler", "sched", "place", attrs...)
	}
	return node, scavenged
}

// GPUAware wraps another policy, forcing GPU requests onto GPU nodes
// near the hint when possible.
type GPUAware struct {
	C     *cluster.Cluster
	Inner faas.Placer
}

// Place implements faas.Placer.
func (s GPUAware) Place(res cluster.Resources, hints faas.PlacementHints) (*cluster.Node, bool) {
	if res.GPUs > 0 && hints.HasNear {
		near := s.C.Node(hints.NearNode)
		if near != nil {
			if near.HasGPU() && res.Fits(near.Free()) {
				return near, false
			}
			for _, n := range s.C.Nodes() {
				if n.HasGPU() && n.Rack == near.Rack && res.Fits(n.Free()) {
					return n, false
				}
			}
		}
	}
	return s.Inner.Place(res, hints)
}

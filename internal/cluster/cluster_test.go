package cluster

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

func newCluster(t *testing.T, cfg Config) (*sim.Env, *Cluster) {
	t.Helper()
	env := sim.NewEnv(1)
	net := simnet.New(env, simnet.DC2021)
	return env, New(env, net, cfg)
}

func small() Config {
	return Config{
		Racks:           2,
		NodesPerRack:    4,
		NodeCap:         Resources{MilliCPU: 8000, MemMB: 16384},
		GPUNodesPerRack: 1,
		GPUsPerGPUNode:  2,
	}
}

func TestClusterLayout(t *testing.T) {
	_, c := newCluster(t, small())
	if len(c.Nodes()) != 8 {
		t.Fatalf("nodes = %d, want 8", len(c.Nodes()))
	}
	gpus := 0
	for _, n := range c.Nodes() {
		if n.HasGPU() {
			gpus++
		}
	}
	if gpus != 2 {
		t.Errorf("GPU nodes = %d, want 2 (1 per rack)", gpus)
	}
	// Racks must be reflected on the network for RTT purposes.
	a, b := c.Nodes()[0], c.Nodes()[4]
	if c.Net().Rack(a.ID) == c.Net().Rack(b.ID) {
		t.Error("nodes from different racks report the same network rack")
	}
}

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{1000, 2048, 1}
	b := Resources{500, 1024, 0}
	if got := a.Add(b); got != (Resources{1500, 3072, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Resources{500, 1024, 1}) {
		t.Errorf("Sub = %v", got)
	}
	if !b.Fits(a) {
		t.Error("b should fit in a")
	}
	if a.Fits(b) {
		t.Error("a should not fit in b")
	}
	if !(Resources{}).IsZero() {
		t.Error("zero value not IsZero")
	}
}

func TestAllocateRelease(t *testing.T) {
	_, c := newCluster(t, small())
	n := c.Nodes()[0]
	a, err := c.Allocate(n, Resources{MilliCPU: 4000, MemMB: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if n.Used().MilliCPU != 4000 {
		t.Errorf("Used = %v", n.Used())
	}
	if n.Free().MilliCPU != 4000 {
		t.Errorf("Free = %v", n.Free())
	}
	if err := c.Release(a); err != nil {
		t.Fatal(err)
	}
	if !n.Used().IsZero() {
		t.Errorf("Used after release = %v, want zero", n.Used())
	}
}

func TestDoubleReleaseFails(t *testing.T) {
	_, c := newCluster(t, small())
	a, _ := c.Allocate(c.Nodes()[0], Resources{MilliCPU: 100})
	if err := c.Release(a); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(a); err == nil {
		t.Fatal("double release succeeded")
	}
}

func TestAllocateOverCapacityFails(t *testing.T) {
	_, c := newCluster(t, small())
	n := c.Nodes()[0]
	_, err := c.Allocate(n, Resources{MilliCPU: 9000})
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
	// Partial fit must also fail atomically.
	if _, err := c.Allocate(n, Resources{MilliCPU: 100, MemMB: 1 << 30}); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
	if !n.Used().IsZero() {
		t.Errorf("failed allocation left usage %v", n.Used())
	}
}

func TestFirstFitPrefersNonGPUNodes(t *testing.T) {
	_, c := newCluster(t, small())
	n := c.FirstFit(Resources{MilliCPU: 1000})
	if n == nil {
		t.Fatal("no fit found")
	}
	if n.HasGPU() {
		t.Error("FirstFit placed CPU-only work on a GPU node with CPU nodes free")
	}
	g := c.FirstFit(Resources{MilliCPU: 1000, GPUs: 1})
	if g == nil || !g.HasGPU() {
		t.Fatal("FirstFit failed to find GPU node for GPU request")
	}
}

func TestFirstFitFallsBackToGPUNodes(t *testing.T) {
	_, c := newCluster(t, small())
	// Fill every non-GPU node.
	for _, n := range c.Nodes() {
		if !n.HasGPU() {
			if _, err := c.Allocate(n, n.Cap); err != nil {
				t.Fatal(err)
			}
		}
	}
	n := c.FirstFit(Resources{MilliCPU: 1000})
	if n == nil {
		t.Fatal("no fallback fit found")
	}
	if !n.HasGPU() {
		t.Error("expected fallback onto GPU node")
	}
}

func TestBestFitPacksTightly(t *testing.T) {
	_, c := newCluster(t, small())
	// Leave node 1 with little free CPU.
	n1 := c.Nodes()[1]
	if _, err := c.Allocate(n1, Resources{MilliCPU: 7000}); err != nil {
		t.Fatal(err)
	}
	got := c.BestFit(Resources{MilliCPU: 500})
	if got != n1 {
		t.Errorf("BestFit chose node %d, want tightly-packed node %d", got.ID, n1.ID)
	}
}

func TestMostIdleOrdering(t *testing.T) {
	_, c := newCluster(t, small())
	if _, err := c.Allocate(c.Nodes()[0], Resources{MilliCPU: 6000}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Allocate(c.Nodes()[1], Resources{MilliCPU: 2000}); err != nil {
		t.Fatal(err)
	}
	order := c.MostIdle(Resources{MilliCPU: 100})
	if len(order) == 0 {
		t.Fatal("no nodes")
	}
	for i := 1; i < len(order); i++ {
		if order[i-1].CurrentCPUFrac() > order[i].CurrentCPUFrac() {
			t.Fatal("MostIdle not sorted by utilisation")
		}
	}
	if order[len(order)-1] != c.Nodes()[0] {
		t.Error("busiest node not last")
	}
}

func TestRandomFitRespectsCapacity(t *testing.T) {
	_, c := newCluster(t, small())
	for _, n := range c.Nodes() {
		if _, err := c.Allocate(n, n.Cap); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.RandomFit(Resources{MilliCPU: 1}); n != nil {
		t.Error("RandomFit found node in a full cluster")
	}
}

func TestUtilizationTimeWeighted(t *testing.T) {
	env, c := newCluster(t, small())
	n := c.Nodes()[0]
	env.Go("load", func(p *sim.Proc) {
		a, err := c.Allocate(n, Resources{MilliCPU: 8000}) // 100%
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(100)
		if err := c.Release(a); err != nil {
			t.Error(err)
		}
		p.Sleep(100) // 0% for the second half
	})
	env.Run()
	u := n.Utilization()
	if u < 0.45 || u > 0.55 {
		t.Errorf("Utilization = %v, want ~0.5", u)
	}
}

func TestTotals(t *testing.T) {
	_, c := newCluster(t, small())
	cap := c.TotalCapacity()
	if cap.MilliCPU != 8*8000 {
		t.Errorf("TotalCapacity CPU = %d", cap.MilliCPU)
	}
	if cap.GPUs != 4 {
		t.Errorf("TotalCapacity GPUs = %d, want 4", cap.GPUs)
	}
	if _, err := c.Allocate(c.Nodes()[2], Resources{MilliCPU: 123}); err != nil {
		t.Fatal(err)
	}
	if c.TotalUsed().MilliCPU != 123 {
		t.Errorf("TotalUsed = %v", c.TotalUsed())
	}
}

func TestScavengeMarksAllocation(t *testing.T) {
	_, c := newCluster(t, small())
	a, err := c.Scavenge(c.Nodes()[0], Resources{MilliCPU: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Scavenged {
		t.Error("Scavenge did not mark allocation")
	}
	b, err := c.Allocate(c.Nodes()[0], Resources{MilliCPU: 100})
	if err != nil {
		t.Fatal(err)
	}
	if b.Scavenged {
		t.Error("Allocate marked allocation scavenged")
	}
}

// Regression: SetDown must fail in-flight waiters at the fault time, not
// leave them blocked until their own work completes.
func TestSetDownFailsInFlight(t *testing.T) {
	env, c := newCluster(t, small())
	n := c.Nodes()[0]
	var werr error
	var at sim.Time
	env.Go("waiter", func(p *sim.Proc) {
		_, werr = p.Wait(n.FailEvent())
		at = p.Now()
	})
	env.Go("chaos", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond)
		c.SetDown(n.ID, true)
	})
	env.Run()
	if !errors.Is(werr, ErrNodeDown) {
		t.Fatalf("waiter error = %v, want ErrNodeDown", werr)
	}
	if want := sim.Time(0).Add(10 * time.Millisecond); at != want {
		t.Errorf("waiter released at %v, want the fault time %v", at, want)
	}
}

func TestFailEventLifecycle(t *testing.T) {
	_, c := newCluster(t, small())
	n := c.Nodes()[0]
	if n.FailEvent().Done() {
		t.Fatal("fresh node's FailEvent already done")
	}
	c.SetDown(n.ID, true)
	if !n.FailEvent().Done() {
		t.Fatal("FailEvent still pending after SetDown")
	}
	// Asking a downed node for its event yields an already-failed one.
	if _, err := n.FailEvent().Value(); !errors.Is(err, ErrNodeDown) {
		t.Errorf("downed node's FailEvent error = %v", err)
	}
	c.SetDown(n.ID, true) // redundant transition is a no-op
	c.SetDown(n.ID, false)
	if n.FailEvent().Done() {
		t.Error("recovery did not mint a fresh pending event")
	}
	c.SetDown(n.ID, false) // redundant recovery is a no-op
	if n.Down() {
		t.Error("node still down after recovery")
	}
}

// Property: any sequence of allocate/release keeps usage within [0, cap].
func TestAllocationInvariantProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		env := sim.NewEnv(3)
		net := simnet.New(env, simnet.DC2021)
		c := New(env, net, Config{Racks: 1, NodesPerRack: 1, NodeCap: Resources{MilliCPU: 1000, MemMB: 1000}})
		n := c.Nodes()[0]
		var live []*Alloc
		for _, op := range ops {
			if op%2 == 0 || len(live) == 0 {
				res := Resources{MilliCPU: int64(op%7) * 100, MemMB: int64(op%5) * 100}
				if a, err := c.Allocate(n, res); err == nil {
					live = append(live, a)
				}
			} else {
				a := live[len(live)-1]
				live = live[:len(live)-1]
				if err := c.Release(a); err != nil {
					return false
				}
			}
			u := n.Used()
			if u.MilliCPU < 0 || u.MemMB < 0 || !u.Fits(n.Cap) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Package cluster models a warehouse-scale machine: racks of nodes, each
// with CPU, memory, and accelerator capacity, with allocation accounting
// and time-weighted utilisation tracking.
//
// The model distinguishes *reserved* capacity (dedicated allocations) from
// *scavengeable* capacity (idle resources a scheduler may harvest at lower
// cost but with eviction risk), which underpins the paper's §4.2 efficiency
// argument.
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Resources is a bundle of allocatable capacity.
type Resources struct {
	MilliCPU int64 // thousandths of a core
	MemMB    int64
	GPUs     int64
}

// Add returns r + s.
func (r Resources) Add(s Resources) Resources {
	return Resources{r.MilliCPU + s.MilliCPU, r.MemMB + s.MemMB, r.GPUs + s.GPUs}
}

// Sub returns r - s.
func (r Resources) Sub(s Resources) Resources {
	return Resources{r.MilliCPU - s.MilliCPU, r.MemMB - s.MemMB, r.GPUs - s.GPUs}
}

// Fits reports whether r fits within capacity c.
func (r Resources) Fits(c Resources) bool {
	return r.MilliCPU <= c.MilliCPU && r.MemMB <= c.MemMB && r.GPUs <= c.GPUs
}

// IsZero reports whether all fields are zero.
func (r Resources) IsZero() bool { return r == Resources{} }

// String renders the bundle compactly.
func (r Resources) String() string {
	return fmt.Sprintf("cpu=%dm mem=%dMB gpu=%d", r.MilliCPU, r.MemMB, r.GPUs)
}

// ErrNoCapacity is returned when an allocation cannot be satisfied.
var ErrNoCapacity = errors.New("cluster: insufficient capacity")

// ErrNodeDown is returned when allocating on a failed machine.
var ErrNodeDown = errors.New("cluster: node is down")

// Node is one machine.
type Node struct {
	ID     simnet.NodeID
	Rack   int
	Cap    Resources
	used   Resources
	down   bool
	failEv *sim.Event
	env    *sim.Env
	util   *metrics.Gauge // CPU utilisation fraction
	allocs map[*Alloc]struct{}
}

// Down reports whether the machine has failed.
func (n *Node) Down() bool { return n.down }

// FailEvent returns an event that fails (with ErrNodeDown) the moment the
// node goes down, letting in-flight work race completion against machine
// failure. Recovered nodes hand out a fresh, pending event.
func (n *Node) FailEvent() *sim.Event {
	if n.failEv == nil {
		n.failEv = n.env.NewEvent()
		if n.down {
			n.failEv.Fail(fmt.Errorf("%w: node %d", ErrNodeDown, n.ID))
		}
	}
	return n.failEv
}

// Used returns currently allocated resources.
func (n *Node) Used() Resources { return n.used }

// Free returns remaining capacity.
func (n *Node) Free() Resources { return n.Cap.Sub(n.used) }

// HasGPU reports whether the node has any GPU capacity.
func (n *Node) HasGPU() bool { return n.Cap.GPUs > 0 }

// Utilization returns the node's time-weighted average CPU utilisation
// from the start of the simulation through now.
func (n *Node) Utilization() float64 { return n.util.Avg(int64(n.env.Now())) }

// CurrentCPUFrac returns the instantaneous CPU allocation fraction.
func (n *Node) CurrentCPUFrac() float64 {
	if n.Cap.MilliCPU == 0 {
		return 0
	}
	return float64(n.used.MilliCPU) / float64(n.Cap.MilliCPU)
}

// Alloc is a live resource allocation on a node.
type Alloc struct {
	Node      *Node
	Res       Resources
	Scavenged bool // allocated from idle capacity at lower priority
	released  bool
}

// Cluster is a collection of nodes on a shared network.
type Cluster struct {
	env   *sim.Env
	net   *simnet.Network
	nodes []*Node
}

// Config describes a homogeneous cluster layout.
type Config struct {
	Racks        int
	NodesPerRack int
	NodeCap      Resources
	// GPUNodesPerRack nodes in each rack additionally get GPUsPerGPUNode.
	GPUNodesPerRack int
	GPUsPerGPUNode  int64
}

// DefaultConfig is a small but representative cluster: 4 racks x 16 nodes,
// 32-core/128GB nodes, 2 GPU nodes per rack with 4 GPUs each.
var DefaultConfig = Config{
	Racks:           4,
	NodesPerRack:    16,
	NodeCap:         Resources{MilliCPU: 32000, MemMB: 131072},
	GPUNodesPerRack: 2,
	GPUsPerGPUNode:  4,
}

// New builds a cluster per config, registering every node on the network.
func New(env *sim.Env, net *simnet.Network, cfg Config) *Cluster {
	c := &Cluster{env: env, net: net}
	for r := 0; r < cfg.Racks; r++ {
		for i := 0; i < cfg.NodesPerRack; i++ {
			cap := cfg.NodeCap
			if i < cfg.GPUNodesPerRack {
				cap.GPUs = cfg.GPUsPerGPUNode
			}
			id := net.AddNode(r)
			c.nodes = append(c.nodes, &Node{
				ID:     id,
				Rack:   r,
				Cap:    cap,
				env:    env,
				util:   metrics.NewGauge(fmt.Sprintf("node%d-util", id)),
				allocs: make(map[*Alloc]struct{}),
			})
		}
	}
	return c
}

// Env returns the simulation environment.
func (c *Cluster) Env() *sim.Env { return c.env }

// Net returns the cluster network.
func (c *Cluster) Net() *simnet.Network { return c.net }

// Nodes returns all nodes.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Node returns the node with the given network ID, or nil.
func (c *Cluster) Node(id simnet.NodeID) *Node {
	for _, n := range c.nodes {
		if n.ID == id {
			return n
		}
	}
	return nil
}

// Allocate reserves res on node n.
func (c *Cluster) Allocate(n *Node, res Resources) (*Alloc, error) {
	return c.allocate(n, res, false)
}

// Scavenge reserves res from idle capacity on node n. Scavenged allocations
// carry eviction risk (modelled by the scheduler) and are billed at a lower
// rate by the cost package.
func (c *Cluster) Scavenge(n *Node, res Resources) (*Alloc, error) {
	return c.allocate(n, res, true)
}

func (c *Cluster) allocate(n *Node, res Resources, scavenged bool) (*Alloc, error) {
	if n.down {
		return nil, fmt.Errorf("%w: node %d", ErrNodeDown, n.ID)
	}
	if !res.Fits(n.Free()) {
		return nil, fmt.Errorf("%w: need %v, free %v on node %d", ErrNoCapacity, res, n.Free(), n.ID)
	}
	n.used = n.used.Add(res)
	n.util.Set(int64(c.env.Now()), n.CurrentCPUFrac())
	a := &Alloc{Node: n, Res: res, Scavenged: scavenged}
	n.allocs[a] = struct{}{}
	return a, nil
}

// Release returns an allocation's resources. Releasing twice is an error.
func (c *Cluster) Release(a *Alloc) error {
	if a.released {
		return errors.New("cluster: allocation already released")
	}
	a.released = true
	n := a.Node
	delete(n.allocs, a)
	n.used = n.used.Sub(a.Res)
	if n.used.MilliCPU < 0 || n.used.MemMB < 0 || n.used.GPUs < 0 {
		panic("cluster: node usage went negative")
	}
	n.util.Set(int64(c.env.Now()), n.CurrentCPUFrac())
	return nil
}

// FirstFit returns the first node (lowest ID) with room for res, preferring
// non-GPU nodes for GPU-less requests so accelerators stay available.
func (c *Cluster) FirstFit(res Resources) *Node {
	var fallback *Node
	for _, n := range c.nodes {
		if n.down || !res.Fits(n.Free()) {
			continue
		}
		if res.GPUs == 0 && n.HasGPU() {
			if fallback == nil {
				fallback = n
			}
			continue
		}
		return n
	}
	return fallback
}

// BestFit returns the feasible node with the least free CPU after placement
// (tightest packing), preferring non-GPU nodes for GPU-less requests.
func (c *Cluster) BestFit(res Resources) *Node {
	var best *Node
	var bestFree int64 = 1 << 62
	consider := func(n *Node) {
		free := n.Free().MilliCPU - res.MilliCPU
		if free < bestFree {
			best, bestFree = n, free
		}
	}
	for _, n := range c.nodes {
		if n.down || !res.Fits(n.Free()) {
			continue
		}
		if res.GPUs == 0 && n.HasGPU() {
			continue
		}
		consider(n)
	}
	if best == nil {
		for _, n := range c.nodes {
			if !n.down && res.Fits(n.Free()) {
				consider(n)
			}
		}
	}
	return best
}

// MostIdle returns feasible nodes sorted by ascending current utilisation —
// the order a scavenging scheduler harvests idle capacity in.
func (c *Cluster) MostIdle(res Resources) []*Node {
	var fit []*Node
	for _, n := range c.nodes {
		if !n.down && res.Fits(n.Free()) {
			fit = append(fit, n)
		}
	}
	sort.SliceStable(fit, func(i, j int) bool {
		return fit[i].CurrentCPUFrac() < fit[j].CurrentCPUFrac()
	})
	return fit
}

// RandomFit returns a uniformly random feasible node, or nil.
func (c *Cluster) RandomFit(res Resources) *Node {
	var fit []*Node
	for _, n := range c.nodes {
		if !n.down && res.Fits(n.Free()) {
			fit = append(fit, n)
		}
	}
	if len(fit) == 0 {
		return nil
	}
	return fit[c.env.Rand().Intn(len(fit))]
}

// SetDown marks a machine failed or recovered. Failed machines accept no
// new allocations, and the node's FailEvent fires so in-flight work fails
// at the fault time; callers (the FaaS runtime) separately destroy the
// instances that were running there.
func (c *Cluster) SetDown(id simnet.NodeID, down bool) {
	n := c.Node(id)
	if n == nil || n.down == down {
		return
	}
	n.down = down
	if down {
		if n.failEv != nil {
			n.failEv.Fail(fmt.Errorf("%w: node %d", ErrNodeDown, id))
		}
	} else {
		n.failEv = nil // next FailEvent() call mints a fresh pending event
	}
}

// TotalCapacity sums capacity across nodes.
func (c *Cluster) TotalCapacity() Resources {
	var t Resources
	for _, n := range c.nodes {
		t = t.Add(n.Cap)
	}
	return t
}

// TotalUsed sums current allocations across nodes.
func (c *Cluster) TotalUsed() Resources {
	var t Resources
	for _, n := range c.nodes {
		t = t.Add(n.used)
	}
	return t
}

// AvgUtilization returns the mean time-weighted CPU utilisation across all
// nodes through now.
func (c *Cluster) AvgUtilization() float64 {
	if len(c.nodes) == 0 {
		return 0
	}
	var s float64
	for _, n := range c.nodes {
		s += n.Utilization()
	}
	return s / float64(len(c.nodes))
}

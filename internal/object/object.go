// Package object defines the PCSI object model (§3.2): typed objects —
// regular files, directories, FIFOs, sockets, and device interfaces — with
// versioned payloads and the four-level mutability lattice of the paper's
// Figure 1.
//
// Mutability transitions only restrict: MUTABLE may become APPEND_ONLY or
// FIXED_SIZE, and either of those may become IMMUTABLE. Once content is
// frozen (every byte of an IMMUTABLE object; the written prefix of an
// APPEND_ONLY object) it never changes, which is what makes it safe to
// cache anywhere.
package object

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/fault"
)

// ID identifies an object. IDs are allocated by stores and never reused.
type ID uint64

// NilID is the zero, never-valid object ID.
const NilID ID = 0

// String renders the ID.
func (id ID) String() string { return fmt.Sprintf("obj-%d", uint64(id)) }

// Kind enumerates the object types of §3.2 ("directories, regular files,
// FIFOs, sockets, and device interfaces to system services").
type Kind uint8

// The PCSI object kinds.
const (
	Regular Kind = iota
	Directory
	FIFO
	Socket
	Device
	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Regular:
		return "regular"
	case Directory:
		return "directory"
	case FIFO:
		return "fifo"
	case Socket:
		return "socket"
	case Device:
		return "device"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Kinds returns all object kinds.
func Kinds() []Kind {
	ks := make([]Kind, 0, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		ks = append(ks, k)
	}
	return ks
}

// Mutability is an object's position in the Figure 1 lattice.
type Mutability uint8

// The four mutability levels of Figure 1.
const (
	Mutable Mutability = iota
	AppendOnly
	FixedSize
	Immutable
)

// String names the level using the paper's capitalisation.
func (m Mutability) String() string {
	switch m {
	case Mutable:
		return "MUTABLE"
	case AppendOnly:
		return "APPEND_ONLY"
	case FixedSize:
		return "FIXED_SIZE"
	case Immutable:
		return "IMMUTABLE"
	default:
		return fmt.Sprintf("mutability(%d)", uint8(m))
	}
}

// Levels returns all mutability levels.
func Levels() []Mutability { return []Mutability{Mutable, AppendOnly, FixedSize, Immutable} }

// CanTransition reports whether Figure 1 permits moving from m to n.
// Self-transitions are allowed (no-ops); everything else must strictly
// restrict: MUTABLE → {APPEND_ONLY, FIXED_SIZE, IMMUTABLE},
// APPEND_ONLY → IMMUTABLE, FIXED_SIZE → IMMUTABLE.
func (m Mutability) CanTransition(n Mutability) bool {
	if m == n {
		return true
	}
	switch m {
	case Mutable:
		return n == AppendOnly || n == FixedSize || n == Immutable
	case AppendOnly, FixedSize:
		return n == Immutable
	case Immutable:
		return false
	default:
		return false
	}
}

// CacheStable reports whether content written under this level can be
// cached anywhere without invalidation: true for IMMUTABLE (all bytes) and
// APPEND_ONLY (the written prefix), per §3.3.
func (m Mutability) CacheStable() bool { return m == Immutable || m == AppendOnly }

// Errors returned by object operations.
var (
	ErrImmutable      = fault.Fatal("object: write to immutable object")
	ErrAppendOnly     = fault.Fatal("object: overwrite of append-only content")
	ErrFixedSize      = fault.Fatal("object: resize of fixed-size object")
	ErrBadTransition  = fault.Fatal("object: mutability transition not allowed")
	ErrOutOfRange     = fault.Fatal("object: offset out of range")
	ErrWrongKind      = fault.Fatal("object: operation not supported for kind")
	ErrFIFOEmpty      = fault.Fatal("object: fifo empty")
	ErrExists         = fault.Fatal("object: directory entry exists")
	ErrNotFound       = fault.Fatal("object: not found")
	ErrNotEmpty       = fault.Fatal("object: directory not empty")
	ErrInvalidName    = fault.Fatal("object: invalid entry name")
	ErrDeviceNoDriver = fault.Fatal("object: device has no driver")
	ErrSockClosed     = fault.Fatal("object: socket closed")
	ErrSockEmpty      = fault.Fatal("object: socket direction empty")
	ErrBadEnd         = fault.Fatal("object: socket end must be 0 (client) or 1 (server)")
)

// SockState is a socket object's connection state.
type SockState uint8

// Socket states.
const (
	SockOpen SockState = iota
	SockHalfClosed
	SockClosed
)

// Object is a PCSI object. Objects are not safe for concurrent mutation;
// the consistency layer serialises access per replica.
type Object struct {
	id      ID
	kind    Kind
	mut     Mutability
	version uint64
	data    []byte

	// Directory state (kind == Directory).
	entries   map[string]ID
	whiteouts map[string]bool

	// FIFO state (kind == FIFO): queued messages.
	fifo [][]byte

	// Socket state (kind == Socket): one message queue per direction
	// (0: client→server, 1: server→client) plus connection state.
	sock      [2][][]byte
	sockState SockState

	// Device state (kind == Device): a driver invoked on Ioctl.
	driver DeviceDriver

	// Labels are free-form metadata (consistency level, content type, ...).
	Labels map[string]string
}

// DeviceDriver handles operations on a Device object — the paper's
// "device interfaces to system services".
type DeviceDriver interface {
	// Ioctl performs a device-specific operation.
	Ioctl(op string, arg []byte) ([]byte, error)
}

// New creates an object of the given kind, initially MUTABLE, version 1.
func New(id ID, kind Kind) *Object {
	o := &Object{id: id, kind: kind, mut: Mutable, version: 1, Labels: make(map[string]string)}
	if kind == Directory {
		o.entries = make(map[string]ID)
		o.whiteouts = make(map[string]bool)
	}
	return o
}

// ID returns the object's identity.
func (o *Object) ID() ID { return o.id }

// Kind returns the object's kind.
func (o *Object) Kind() Kind { return o.kind }

// Mutability returns the current level.
func (o *Object) Mutability() Mutability { return o.mut }

// Version returns the object's version, incremented by every mutation.
func (o *Object) Version() uint64 { return o.version }

// Size returns the payload size in bytes.
func (o *Object) Size() int64 { return int64(len(o.data)) }

// SetMutability moves the object along the Figure 1 lattice.
func (o *Object) SetMutability(n Mutability) error {
	if !o.mut.CanTransition(n) {
		return fmt.Errorf("%w: %v -> %v", ErrBadTransition, o.mut, n)
	}
	if o.mut != n {
		o.mut = n
		o.version++
	}
	return nil
}

// bump records a mutation.
func (o *Object) bump() { o.version++ }

// ReadAt reads up to len(b) bytes starting at off and reports the count.
// Reading at or past EOF returns 0, nil (PCSI reads are not error-at-EOF).
func (o *Object) ReadAt(b []byte, off int64) (int, error) {
	if o.kind == Directory {
		return 0, fmt.Errorf("%w: read on %v", ErrWrongKind, o.kind)
	}
	if off < 0 {
		return 0, ErrOutOfRange
	}
	if off >= int64(len(o.data)) {
		return 0, nil
	}
	return copy(b, o.data[off:]), nil
}

// Read returns a copy of the entire payload.
func (o *Object) Read() []byte {
	out := make([]byte, len(o.data))
	copy(out, o.data)
	return out
}

// WriteAt writes b at offset off, enforcing the mutability level:
//   - MUTABLE: any offset; the object grows as needed.
//   - FIXED_SIZE: the write must fall entirely within the current size.
//   - APPEND_ONLY: only writes that start exactly at EOF are allowed
//     (equivalent to Append).
//   - IMMUTABLE: no writes.
func (o *Object) WriteAt(b []byte, off int64) (int, error) {
	if o.kind == Directory {
		return 0, fmt.Errorf("%w: write on %v", ErrWrongKind, o.kind)
	}
	if off < 0 {
		return 0, ErrOutOfRange
	}
	switch o.mut {
	case Immutable:
		return 0, ErrImmutable
	case AppendOnly:
		if off != int64(len(o.data)) {
			return 0, ErrAppendOnly
		}
	case FixedSize:
		if off+int64(len(b)) > int64(len(o.data)) {
			return 0, ErrFixedSize
		}
	}
	if end := off + int64(len(b)); end > int64(len(o.data)) {
		grown := make([]byte, end)
		copy(grown, o.data)
		o.data = grown
	}
	copy(o.data[off:], b)
	o.bump()
	return len(b), nil
}

// Append adds b at EOF (MUTABLE and APPEND_ONLY only).
func (o *Object) Append(b []byte) error {
	_, err := o.WriteAt(b, int64(len(o.data)))
	return err
}

// Truncate resizes the payload (MUTABLE only).
func (o *Object) Truncate(n int64) error {
	if o.kind == Directory {
		return fmt.Errorf("%w: truncate on %v", ErrWrongKind, o.kind)
	}
	if n < 0 {
		return ErrOutOfRange
	}
	switch o.mut {
	case Immutable:
		return ErrImmutable
	case AppendOnly:
		return ErrAppendOnly
	case FixedSize:
		return ErrFixedSize
	}
	if n <= int64(len(o.data)) {
		o.data = o.data[:n]
	} else {
		grown := make([]byte, n)
		copy(grown, o.data)
		o.data = grown
	}
	o.bump()
	return nil
}

// SetData replaces the entire payload (a whole-object put). Allowed only
// at MUTABLE, or FIXED_SIZE when the size is unchanged.
func (o *Object) SetData(b []byte) error {
	if o.kind == Directory {
		return fmt.Errorf("%w: put on %v", ErrWrongKind, o.kind)
	}
	switch o.mut {
	case Immutable:
		return ErrImmutable
	case AppendOnly:
		return ErrAppendOnly
	case FixedSize:
		if int64(len(b)) != int64(len(o.data)) {
			return ErrFixedSize
		}
	}
	o.data = append([]byte(nil), b...)
	o.bump()
	return nil
}

// ContentHash returns the hex SHA-256 of the payload.
func (o *Object) ContentHash() string {
	h := sha256.Sum256(o.data)
	return hex.EncodeToString(h[:])
}

// Clone returns a deep copy under a new ID, preserving content, kind,
// mutability, and version; used for copy-up in union namespaces and
// replica transfer.
func (o *Object) Clone(newID ID) *Object {
	c := New(newID, o.kind)
	c.mut = o.mut
	c.version = o.version
	c.data = append([]byte(nil), o.data...)
	for k, v := range o.Labels {
		c.Labels[k] = v
	}
	if o.kind == Directory {
		for k, v := range o.entries {
			c.entries[k] = v
		}
		for k := range o.whiteouts {
			c.whiteouts[k] = true
		}
	}
	for _, m := range o.fifo {
		c.fifo = append(c.fifo, append([]byte(nil), m...))
	}
	for dir := range o.sock {
		for _, m := range o.sock[dir] {
			c.sock[dir] = append(c.sock[dir], append([]byte(nil), m...))
		}
	}
	c.sockState = o.sockState
	c.driver = o.driver
	return c
}

// restore support for replication: ApplyState overwrites payload and
// version wholesale (used by anti-entropy; bypasses mutability because the
// authoritative replica already enforced it).
func (o *Object) ApplyState(data []byte, version uint64, mut Mutability) {
	o.data = append([]byte(nil), data...)
	o.version = version
	o.mut = mut
}

package object

import (
	"sort"
	"strings"
)

// Directory operations. Directory entries map names to object IDs.
// Whiteouts mark names as deleted in union-layer semantics (§3.2 cites
// union file systems as a PCSI feature); they are invisible to plain
// lookups but consulted by the namespace layer.

// validName reports whether s is a legal entry name.
func validName(s string) bool {
	return s != "" && s != "." && s != ".." && !strings.ContainsAny(s, "/\x00")
}

// Link adds name -> child. The directory's mutability gates mutation:
// IMMUTABLE and FIXED_SIZE directories reject new entries; APPEND_ONLY
// directories accept new names but never replacement or removal.
func (o *Object) Link(name string, child ID) error {
	if o.kind != Directory {
		return ErrWrongKind
	}
	if !validName(name) {
		return ErrInvalidName
	}
	switch o.mut {
	case Immutable:
		return ErrImmutable
	case FixedSize:
		return ErrFixedSize
	}
	if _, ok := o.entries[name]; ok {
		return ErrExists
	}
	o.entries[name] = child
	delete(o.whiteouts, name)
	o.bump()
	return nil
}

// Unlink removes name. Only MUTABLE directories support removal.
func (o *Object) Unlink(name string) error {
	if o.kind != Directory {
		return ErrWrongKind
	}
	switch o.mut {
	case Immutable:
		return ErrImmutable
	case AppendOnly:
		return ErrAppendOnly
	case FixedSize:
		return ErrFixedSize
	}
	if _, ok := o.entries[name]; !ok {
		return ErrNotFound
	}
	delete(o.entries, name)
	o.bump()
	return nil
}

// Lookup resolves name to a child ID.
func (o *Object) Lookup(name string) (ID, error) {
	if o.kind != Directory {
		return NilID, ErrWrongKind
	}
	id, ok := o.entries[name]
	if !ok {
		return NilID, ErrNotFound
	}
	return id, nil
}

// Entries returns entry names in sorted order.
func (o *Object) Entries() []string {
	if o.kind != Directory {
		return nil
	}
	names := make([]string, 0, len(o.entries))
	for n := range o.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EntryCount returns the number of entries.
func (o *Object) EntryCount() int { return len(o.entries) }

// Whiteout records that name is deleted in this (upper) layer, hiding any
// same-named entry in lower layers. The entry itself, if present, is
// removed.
func (o *Object) Whiteout(name string) error {
	if o.kind != Directory {
		return ErrWrongKind
	}
	if !validName(name) {
		return ErrInvalidName
	}
	switch o.mut {
	case Immutable:
		return ErrImmutable
	case AppendOnly:
		return ErrAppendOnly
	case FixedSize:
		return ErrFixedSize
	}
	delete(o.entries, name)
	o.whiteouts[name] = true
	o.bump()
	return nil
}

// IsWhiteout reports whether name is whited out in this layer.
func (o *Object) IsWhiteout(name string) bool { return o.whiteouts[name] }

// Whiteouts returns all whited-out names, sorted.
func (o *Object) Whiteouts() []string {
	names := make([]string, 0, len(o.whiteouts))
	for n := range o.whiteouts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ChildIDs returns the IDs of all entries (for GC marking).
func (o *Object) ChildIDs() []ID {
	if o.kind != Directory {
		return nil
	}
	ids := make([]ID, 0, len(o.entries))
	for _, id := range o.entries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// FIFO operations: bounded-order message queues used for inter-function
// plumbing (Figure 2 connects the GPU stage to post-processing by a FIFO).

// Push enqueues a message. FIFOs ignore the byte-level mutability checks —
// their content is transient — but IMMUTABLE still freezes them.
func (o *Object) Push(msg []byte) error {
	if o.kind != FIFO {
		return ErrWrongKind
	}
	if o.mut == Immutable {
		return ErrImmutable
	}
	o.fifo = append(o.fifo, append([]byte(nil), msg...))
	o.bump()
	return nil
}

// Pop dequeues the oldest message.
func (o *Object) Pop() ([]byte, error) {
	if o.kind != FIFO {
		return nil, ErrWrongKind
	}
	if len(o.fifo) == 0 {
		return nil, ErrFIFOEmpty
	}
	msg := o.fifo[0]
	o.fifo = o.fifo[1:]
	o.bump()
	return msg, nil
}

// QueueLen returns the number of queued FIFO messages.
func (o *Object) QueueLen() int { return len(o.fifo) }

// Socket operations: a bidirectional message pipe, the "TCP Connection"
// object of Figure 2. End 0 is the client side, end 1 the server side;
// SockSend(end, m) enqueues toward the opposite end.

func validEnd(end int) bool { return end == 0 || end == 1 }

// SockSend enqueues a message from the given end toward the other.
func (o *Object) SockSend(end int, msg []byte) error {
	if o.kind != Socket {
		return ErrWrongKind
	}
	if !validEnd(end) {
		return ErrBadEnd
	}
	if o.sockState == SockClosed {
		return ErrSockClosed
	}
	o.sock[end] = append(o.sock[end], append([]byte(nil), msg...))
	o.bump()
	return nil
}

// SockRecv dequeues the oldest message sent toward the given end.
// Receiving from a closed socket drains remaining messages, then reports
// ErrSockClosed (like a TCP FIN).
func (o *Object) SockRecv(end int) ([]byte, error) {
	if o.kind != Socket {
		return nil, ErrWrongKind
	}
	if !validEnd(end) {
		return nil, ErrBadEnd
	}
	from := 1 - end
	if len(o.sock[from]) == 0 {
		if o.sockState != SockOpen {
			return nil, ErrSockClosed
		}
		return nil, ErrSockEmpty
	}
	msg := o.sock[from][0]
	o.sock[from] = o.sock[from][1:]
	o.bump()
	return msg, nil
}

// SockClose closes the socket: no further sends; receivers drain then see
// ErrSockClosed.
func (o *Object) SockClose() error {
	if o.kind != Socket {
		return ErrWrongKind
	}
	o.sockState = SockClosed
	o.bump()
	return nil
}

// SockPending reports queued messages toward the given end.
func (o *Object) SockPending(end int) int {
	if o.kind != Socket || !validEnd(end) {
		return 0
	}
	return len(o.sock[1-end])
}

// SockStatus returns the connection state.
func (o *Object) SockStatus() SockState { return o.sockState }

// Device operations.

// SetDriver installs the device driver (once, at creation time).
func (o *Object) SetDriver(d DeviceDriver) error {
	if o.kind != Device {
		return ErrWrongKind
	}
	o.driver = d
	return nil
}

// Ioctl invokes the device driver.
func (o *Object) Ioctl(op string, arg []byte) ([]byte, error) {
	if o.kind != Device {
		return nil, ErrWrongKind
	}
	if o.driver == nil {
		return nil, ErrDeviceNoDriver
	}
	return o.driver.Ioctl(op, arg)
}

package object

import (
	"errors"
	"testing"
)

func TestDirectoryLinkLookupUnlink(t *testing.T) {
	d := New(1, Directory)
	if err := d.Link("a", 10); err != nil {
		t.Fatal(err)
	}
	if err := d.Link("b", 20); err != nil {
		t.Fatal(err)
	}
	id, err := d.Lookup("a")
	if err != nil || id != 10 {
		t.Errorf("Lookup(a) = %v, %v", id, err)
	}
	if err := d.Unlink("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Lookup("a"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Lookup after unlink err = %v", err)
	}
	if d.EntryCount() != 1 {
		t.Errorf("EntryCount = %d, want 1", d.EntryCount())
	}
}

func TestDirectoryDuplicateLink(t *testing.T) {
	d := New(1, Directory)
	if err := d.Link("x", 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Link("x", 2); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate link err = %v, want ErrExists", err)
	}
}

func TestDirectoryInvalidNames(t *testing.T) {
	d := New(1, Directory)
	for _, name := range []string{"", ".", "..", "a/b", "nul\x00byte"} {
		if err := d.Link(name, 1); !errors.Is(err, ErrInvalidName) {
			t.Errorf("Link(%q) err = %v, want ErrInvalidName", name, err)
		}
	}
}

func TestDirectoryEntriesSorted(t *testing.T) {
	d := New(1, Directory)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := d.Link(n, 1); err != nil {
			t.Fatal(err)
		}
	}
	got := d.Entries()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Entries = %v, want %v", got, want)
		}
	}
}

func TestDirectoryMutabilityGates(t *testing.T) {
	d := New(1, Directory)
	if err := d.Link("keep", 1); err != nil {
		t.Fatal(err)
	}
	// APPEND_ONLY directory: new names OK, removal forbidden.
	if err := d.SetMutability(AppendOnly); err != nil {
		t.Fatal(err)
	}
	if err := d.Link("new", 2); err != nil {
		t.Errorf("append-only dir rejected new entry: %v", err)
	}
	if err := d.Unlink("keep"); !errors.Is(err, ErrAppendOnly) {
		t.Errorf("append-only unlink err = %v", err)
	}
	if err := d.Whiteout("keep"); !errors.Is(err, ErrAppendOnly) {
		t.Errorf("append-only whiteout err = %v", err)
	}
	// IMMUTABLE directory: nothing changes.
	if err := d.SetMutability(Immutable); err != nil {
		t.Fatal(err)
	}
	if err := d.Link("другое", 3); !errors.Is(err, ErrImmutable) {
		t.Errorf("immutable link err = %v", err)
	}
}

func TestFixedSizeDirectoryRejectsChanges(t *testing.T) {
	d := New(1, Directory)
	if err := d.Link("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := d.SetMutability(FixedSize); err != nil {
		t.Fatal(err)
	}
	if err := d.Link("b", 2); !errors.Is(err, ErrFixedSize) {
		t.Errorf("fixed-size link err = %v", err)
	}
	if err := d.Unlink("a"); !errors.Is(err, ErrFixedSize) {
		t.Errorf("fixed-size unlink err = %v", err)
	}
}

func TestWhiteouts(t *testing.T) {
	d := New(1, Directory)
	if err := d.Link("gone", 5); err != nil {
		t.Fatal(err)
	}
	if err := d.Whiteout("gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Lookup("gone"); !errors.Is(err, ErrNotFound) {
		t.Error("whited-out entry still resolvable")
	}
	if !d.IsWhiteout("gone") {
		t.Error("IsWhiteout(gone) = false")
	}
	// Re-linking clears the whiteout.
	if err := d.Link("gone", 6); err != nil {
		t.Fatal(err)
	}
	if d.IsWhiteout("gone") {
		t.Error("re-link did not clear whiteout")
	}
	if len(d.Whiteouts()) != 0 {
		t.Errorf("Whiteouts = %v, want empty", d.Whiteouts())
	}
}

func TestChildIDsForGC(t *testing.T) {
	d := New(1, Directory)
	for i, n := range []string{"c", "a", "b"} {
		if err := d.Link(n, ID(10+i)); err != nil {
			t.Fatal(err)
		}
	}
	ids := d.ChildIDs()
	if len(ids) != 3 {
		t.Fatalf("ChildIDs = %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("ChildIDs not sorted")
		}
	}
	if New(2, Regular).ChildIDs() != nil {
		t.Error("regular object returned child IDs")
	}
}

func TestFIFOOrder(t *testing.T) {
	f := New(1, FIFO)
	for _, m := range []string{"one", "two", "three"} {
		if err := f.Push([]byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	if f.QueueLen() != 3 {
		t.Errorf("QueueLen = %d", f.QueueLen())
	}
	for _, want := range []string{"one", "two", "three"} {
		m, err := f.Pop()
		if err != nil || string(m) != want {
			t.Errorf("Pop = %q, %v; want %q", m, err, want)
		}
	}
	if _, err := f.Pop(); !errors.Is(err, ErrFIFOEmpty) {
		t.Errorf("empty Pop err = %v", err)
	}
}

func TestFIFOImmutableFreeze(t *testing.T) {
	f := New(1, FIFO)
	if err := f.Push([]byte("m")); err != nil {
		t.Fatal(err)
	}
	if err := f.SetMutability(Immutable); err != nil {
		t.Fatal(err)
	}
	if err := f.Push([]byte("n")); !errors.Is(err, ErrImmutable) {
		t.Errorf("push to frozen FIFO err = %v", err)
	}
}

type echoDriver struct{ calls int }

func (e *echoDriver) Ioctl(op string, arg []byte) ([]byte, error) {
	e.calls++
	return append([]byte(op+":"), arg...), nil
}

func TestDeviceIoctl(t *testing.T) {
	d := New(1, Device)
	if _, err := d.Ioctl("ping", nil); !errors.Is(err, ErrDeviceNoDriver) {
		t.Errorf("driverless ioctl err = %v", err)
	}
	drv := &echoDriver{}
	if err := d.SetDriver(drv); err != nil {
		t.Fatal(err)
	}
	out, err := d.Ioctl("ping", []byte("x"))
	if err != nil || string(out) != "ping:x" {
		t.Errorf("Ioctl = %q, %v", out, err)
	}
	if drv.calls != 1 {
		t.Errorf("driver calls = %d", drv.calls)
	}
}

func TestDirectoryCloneIndependent(t *testing.T) {
	d := New(1, Directory)
	if err := d.Link("a", 10); err != nil {
		t.Fatal(err)
	}
	if err := d.Whiteout("ghost"); err != nil {
		t.Fatal(err)
	}
	c := d.Clone(2)
	if _, err := c.Lookup("a"); err != nil {
		t.Error("clone missing entry")
	}
	if !c.IsWhiteout("ghost") {
		t.Error("clone missing whiteout")
	}
	if err := c.Link("b", 20); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Lookup("b"); !errors.Is(err, ErrNotFound) {
		t.Error("clone shares entry map with original")
	}
}

func TestSocketBidirectional(t *testing.T) {
	s := New(1, Socket)
	if err := s.SockSend(0, []byte("request")); err != nil {
		t.Fatal(err)
	}
	if err := s.SockSend(1, []byte("response")); err != nil {
		t.Fatal(err)
	}
	// Server receives what the client sent, and vice versa.
	m, err := s.SockRecv(1)
	if err != nil || string(m) != "request" {
		t.Errorf("server recv = %q, %v", m, err)
	}
	m, err = s.SockRecv(0)
	if err != nil || string(m) != "response" {
		t.Errorf("client recv = %q, %v", m, err)
	}
	// Directions are independent: own sends are not echoed back.
	if err := s.SockSend(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SockRecv(0); !errors.Is(err, ErrSockEmpty) {
		t.Errorf("client received its own message: %v", err)
	}
}

func TestSocketCloseSemantics(t *testing.T) {
	s := New(1, Socket)
	if err := s.SockSend(0, []byte("last")); err != nil {
		t.Fatal(err)
	}
	if err := s.SockClose(); err != nil {
		t.Fatal(err)
	}
	if err := s.SockSend(0, []byte("after")); !errors.Is(err, ErrSockClosed) {
		t.Errorf("send after close = %v", err)
	}
	// Drain semantics: buffered data still delivered, then FIN.
	m, err := s.SockRecv(1)
	if err != nil || string(m) != "last" {
		t.Errorf("drain = %q, %v", m, err)
	}
	if _, err := s.SockRecv(1); !errors.Is(err, ErrSockClosed) {
		t.Errorf("recv after drain = %v", err)
	}
}

func TestSocketBadEndAndKind(t *testing.T) {
	s := New(1, Socket)
	if err := s.SockSend(2, []byte("x")); !errors.Is(err, ErrBadEnd) {
		t.Errorf("bad end = %v", err)
	}
	if _, err := s.SockRecv(-1); !errors.Is(err, ErrBadEnd) {
		t.Errorf("bad end recv = %v", err)
	}
	f := New(2, Regular)
	if err := f.SockSend(0, nil); !errors.Is(err, ErrWrongKind) {
		t.Errorf("wrong kind = %v", err)
	}
	if s.SockPending(1) != 0 {
		t.Errorf("pending = %d", s.SockPending(1))
	}
	if err := s.SockSend(0, []byte("m")); err != nil {
		t.Fatal(err)
	}
	if s.SockPending(1) != 1 {
		t.Errorf("pending = %d, want 1", s.SockPending(1))
	}
}

package object

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// --- Figure 1: the mutability lattice ---

func TestFigure1TransitionMatrix(t *testing.T) {
	// The exact edge set of Figure 1 (plus self-loops).
	allowed := map[[2]Mutability]bool{
		{Mutable, Mutable}:       true,
		{Mutable, AppendOnly}:    true,
		{Mutable, FixedSize}:     true,
		{Mutable, Immutable}:     true,
		{AppendOnly, AppendOnly}: true,
		{AppendOnly, Immutable}:  true,
		{FixedSize, FixedSize}:   true,
		{FixedSize, Immutable}:   true,
		{Immutable, Immutable}:   true,
	}
	for _, from := range Levels() {
		for _, to := range Levels() {
			want := allowed[[2]Mutability{from, to}]
			if got := from.CanTransition(to); got != want {
				t.Errorf("CanTransition(%v -> %v) = %v, want %v", from, to, got, want)
			}
		}
	}
}

// Property: transitions are transitive along the lattice — if a->b and
// b->c are legal then a->c is legal (restriction only accumulates).
func TestTransitionTransitivityProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		x, y, z := Mutability(a%4), Mutability(b%4), Mutability(c%4)
		if x.CanTransition(y) && y.CanTransition(z) {
			return x.CanTransition(z)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: the lattice is antisymmetric — a->b and b->a implies a == b.
func TestTransitionAntisymmetryProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := Mutability(a%4), Mutability(b%4)
		if x.CanTransition(y) && y.CanTransition(x) {
			return x == y
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestImmutableIsTerminal(t *testing.T) {
	for _, to := range Levels() {
		if to != Immutable && Immutable.CanTransition(to) {
			t.Errorf("IMMUTABLE must not transition to %v", to)
		}
	}
}

func TestCacheStable(t *testing.T) {
	if !Immutable.CacheStable() || !AppendOnly.CacheStable() {
		t.Error("IMMUTABLE and APPEND_ONLY content must be cache-stable (§3.3)")
	}
	if Mutable.CacheStable() || FixedSize.CacheStable() {
		t.Error("MUTABLE/FIXED_SIZE content must not be cache-stable")
	}
}

func TestSetMutabilityEnforcesLattice(t *testing.T) {
	o := New(1, Regular)
	if err := o.SetMutability(AppendOnly); err != nil {
		t.Fatal(err)
	}
	if err := o.SetMutability(FixedSize); !errors.Is(err, ErrBadTransition) {
		t.Errorf("APPEND_ONLY -> FIXED_SIZE err = %v, want ErrBadTransition", err)
	}
	if err := o.SetMutability(Immutable); err != nil {
		t.Fatal(err)
	}
	if err := o.SetMutability(Mutable); !errors.Is(err, ErrBadTransition) {
		t.Errorf("IMMUTABLE -> MUTABLE err = %v, want ErrBadTransition", err)
	}
}

func TestSelfTransitionDoesNotBumpVersion(t *testing.T) {
	o := New(1, Regular)
	v := o.Version()
	if err := o.SetMutability(Mutable); err != nil {
		t.Fatal(err)
	}
	if o.Version() != v {
		t.Error("no-op transition bumped version")
	}
	if err := o.SetMutability(Immutable); err != nil {
		t.Fatal(err)
	}
	if o.Version() != v+1 {
		t.Error("real transition did not bump version")
	}
}

// --- Per-level operation legality ---

func TestMutableAllowsEverything(t *testing.T) {
	o := New(1, Regular)
	if _, err := o.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := o.WriteAt([]byte("HE"), 0); err != nil {
		t.Fatal(err)
	}
	if err := o.Append([]byte("!")); err != nil {
		t.Fatal(err)
	}
	if err := o.Truncate(3); err != nil {
		t.Fatal(err)
	}
	if got := string(o.Read()); got != "HEl" {
		t.Errorf("data = %q, want HEl", got)
	}
}

func TestAppendOnlySemantics(t *testing.T) {
	o := New(1, Regular)
	if err := o.Append([]byte("log1\n")); err != nil {
		t.Fatal(err)
	}
	if err := o.SetMutability(AppendOnly); err != nil {
		t.Fatal(err)
	}
	if err := o.Append([]byte("log2\n")); err != nil {
		t.Fatalf("append to APPEND_ONLY failed: %v", err)
	}
	if _, err := o.WriteAt([]byte("X"), 0); !errors.Is(err, ErrAppendOnly) {
		t.Errorf("overwrite err = %v, want ErrAppendOnly", err)
	}
	if err := o.Truncate(1); !errors.Is(err, ErrAppendOnly) {
		t.Errorf("truncate err = %v, want ErrAppendOnly", err)
	}
	if err := o.SetData([]byte("replace")); !errors.Is(err, ErrAppendOnly) {
		t.Errorf("SetData err = %v, want ErrAppendOnly", err)
	}
	if got := string(o.Read()); got != "log1\nlog2\n" {
		t.Errorf("data = %q", got)
	}
}

func TestFixedSizeSemantics(t *testing.T) {
	o := New(1, Regular)
	if err := o.SetData(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if err := o.SetMutability(FixedSize); err != nil {
		t.Fatal(err)
	}
	if _, err := o.WriteAt([]byte("abcd"), 2); err != nil {
		t.Fatalf("in-place write failed: %v", err)
	}
	if _, err := o.WriteAt([]byte("abcd"), 6); !errors.Is(err, ErrFixedSize) {
		t.Errorf("grow-write err = %v, want ErrFixedSize", err)
	}
	if err := o.Append([]byte("x")); !errors.Is(err, ErrFixedSize) {
		t.Errorf("append err = %v, want ErrFixedSize", err)
	}
	if err := o.Truncate(4); !errors.Is(err, ErrFixedSize) {
		t.Errorf("truncate err = %v, want ErrFixedSize", err)
	}
	if err := o.SetData(make([]byte, 8)); err != nil {
		t.Errorf("same-size SetData err = %v, want nil", err)
	}
	if err := o.SetData(make([]byte, 9)); !errors.Is(err, ErrFixedSize) {
		t.Errorf("resize SetData err = %v, want ErrFixedSize", err)
	}
	if o.Size() != 8 {
		t.Errorf("size = %d, want 8", o.Size())
	}
}

func TestImmutableRejectsAllWrites(t *testing.T) {
	o := New(1, Regular)
	if err := o.SetData([]byte("frozen")); err != nil {
		t.Fatal(err)
	}
	if err := o.SetMutability(Immutable); err != nil {
		t.Fatal(err)
	}
	hash := o.ContentHash()
	if _, err := o.WriteAt([]byte("x"), 0); !errors.Is(err, ErrImmutable) {
		t.Errorf("WriteAt err = %v", err)
	}
	if err := o.Append([]byte("x")); !errors.Is(err, ErrImmutable) {
		t.Errorf("Append err = %v", err)
	}
	if err := o.Truncate(0); !errors.Is(err, ErrImmutable) {
		t.Errorf("Truncate err = %v", err)
	}
	if err := o.SetData(nil); !errors.Is(err, ErrImmutable) {
		t.Errorf("SetData err = %v", err)
	}
	if o.ContentHash() != hash {
		t.Error("immutable content changed")
	}
}

// Property: once an object is frozen IMMUTABLE, no operation sequence can
// change its content hash.
func TestImmutableContentNeverChangesProperty(t *testing.T) {
	type op struct {
		Kind byte
		Off  int16
		Data []byte
	}
	f := func(initial []byte, ops []op) bool {
		o := New(1, Regular)
		if err := o.SetData(initial); err != nil {
			return false
		}
		if err := o.SetMutability(Immutable); err != nil {
			return false
		}
		before := o.ContentHash()
		for _, op := range ops {
			switch op.Kind % 4 {
			case 0:
				o.WriteAt(op.Data, int64(op.Off)) //nolint:errcheck
			case 1:
				o.Append(op.Data) //nolint:errcheck
			case 2:
				o.Truncate(int64(op.Off)) //nolint:errcheck
			case 3:
				o.SetData(op.Data) //nolint:errcheck
			}
		}
		return o.ContentHash() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: under APPEND_ONLY, any operation sequence leaves the original
// prefix intact — the invariant that makes append-only content safely
// cacheable (§3.3).
func TestAppendOnlyPrefixStableProperty(t *testing.T) {
	f := func(prefix []byte, writes [][]byte) bool {
		o := New(1, Regular)
		if err := o.SetData(prefix); err != nil {
			return false
		}
		if err := o.SetMutability(AppendOnly); err != nil {
			return false
		}
		for _, w := range writes {
			o.Append(w)                      //nolint:errcheck
			o.WriteAt(w, 0)                  //nolint:errcheck
			o.WriteAt(w, int64(len(prefix))) // may succeed only at EOF
			o.Truncate(0)                    //nolint:errcheck
		}
		got := o.Read()
		return len(got) >= len(prefix) && bytes.Equal(got[:len(prefix)], prefix)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// --- Basic payload operations ---

func TestReadAt(t *testing.T) {
	o := New(1, Regular)
	if err := o.SetData([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	n, err := o.ReadAt(buf, 6)
	if err != nil || n != 5 || string(buf) != "world" {
		t.Errorf("ReadAt = %d %v %q", n, err, buf)
	}
	n, err = o.ReadAt(buf, 100)
	if err != nil || n != 0 {
		t.Errorf("ReadAt past EOF = %d, %v; want 0, nil", n, err)
	}
	if _, err := o.ReadAt(buf, -1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("negative offset err = %v", err)
	}
}

func TestWriteAtGrowsWithZeroFill(t *testing.T) {
	o := New(1, Regular)
	if _, err := o.WriteAt([]byte("xy"), 4); err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 0, 0, 0, 'x', 'y'}
	if !bytes.Equal(o.Read(), want) {
		t.Errorf("data = %v, want %v", o.Read(), want)
	}
}

func TestVersionBumpsOnMutation(t *testing.T) {
	o := New(1, Regular)
	v0 := o.Version()
	if err := o.SetData([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if o.Version() <= v0 {
		t.Error("SetData did not bump version")
	}
	v1 := o.Version()
	if _, err := o.ReadAt(make([]byte, 1), 0); err != nil {
		t.Fatal(err)
	}
	if o.Version() != v1 {
		t.Error("read bumped version")
	}
}

func TestReadReturnsCopy(t *testing.T) {
	o := New(1, Regular)
	if err := o.SetData([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	got := o.Read()
	got[0] = 'X'
	if string(o.Read()) != "abc" {
		t.Error("Read exposed internal buffer")
	}
}

func TestClone(t *testing.T) {
	o := New(1, Regular)
	if err := o.SetData([]byte("data")); err != nil {
		t.Fatal(err)
	}
	o.Labels["ct"] = "text"
	if err := o.SetMutability(AppendOnly); err != nil {
		t.Fatal(err)
	}
	c := o.Clone(2)
	if c.ID() != 2 || c.Mutability() != AppendOnly || string(c.Read()) != "data" || c.Labels["ct"] != "text" {
		t.Errorf("clone mismatch: %+v", c)
	}
	// Deep copy: mutating the clone must not affect the original.
	if err := c.Append([]byte("!")); err != nil {
		t.Fatal(err)
	}
	if string(o.Read()) != "data" {
		t.Error("clone shares buffer with original")
	}
}

func TestWrongKindOperations(t *testing.T) {
	d := New(1, Directory)
	if _, err := d.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrWrongKind) {
		t.Errorf("dir ReadAt err = %v", err)
	}
	if _, err := d.WriteAt([]byte("x"), 0); !errors.Is(err, ErrWrongKind) {
		t.Errorf("dir WriteAt err = %v", err)
	}
	r := New(2, Regular)
	if err := r.Link("a", 3); !errors.Is(err, ErrWrongKind) {
		t.Errorf("file Link err = %v", err)
	}
	if err := r.Push([]byte("m")); !errors.Is(err, ErrWrongKind) {
		t.Errorf("file Push err = %v", err)
	}
	if _, err := r.Ioctl("op", nil); !errors.Is(err, ErrWrongKind) {
		t.Errorf("file Ioctl err = %v", err)
	}
}

func TestKindAndLevelStrings(t *testing.T) {
	for _, k := range Kinds() {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	if Mutable.String() != "MUTABLE" || Immutable.String() != "IMMUTABLE" ||
		AppendOnly.String() != "APPEND_ONLY" || FixedSize.String() != "FIXED_SIZE" {
		t.Error("level names must match the paper's Figure 1 capitalisation")
	}
}

package nfsbase

import (
	"errors"
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func testServer(seed int64) (*sim.Env, *Server, simnet.NodeID) {
	env := sim.NewEnv(seed)
	net := simnet.New(env, simnet.DC2021)
	srv := NewServer(net, media.Disk)
	client := net.AddNode(1) // cross-rack, like a real mount
	return env, srv, client
}

func TestMountLookupRead(t *testing.T) {
	env, srv, client := testServer(1)
	if err := srv.Export("data.bin", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	env.Go("c", func(p *sim.Proc) {
		m, err := srv.Mount(p, client)
		if err != nil {
			t.Error(err)
			return
		}
		h, err := m.Lookup(p, "data.bin")
		if err != nil {
			t.Error(err)
			return
		}
		got, err := m.Read(p, h, 2, 4)
		if err != nil || string(got) != "2345" {
			t.Errorf("Read = %q, %v", got, err)
		}
	})
	env.Run()
}

func TestPaper21LatencyCalibration(t *testing.T) {
	// §2.1: "fetching a 1KB object via the NFS protocol takes 1.5 ms".
	env, srv, client := testServer(2)
	if err := srv.Export("obj", make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	const reads = 50
	env.Go("c", func(p *sim.Proc) {
		m, err := srv.Mount(p, client)
		if err != nil {
			t.Error(err)
			return
		}
		h, err := m.Lookup(p, "obj")
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < reads; i++ {
			start := p.Now()
			if _, err := m.Read(p, h, 0, 1024); err != nil {
				t.Error(err)
				return
			}
			total += p.Now().Sub(start)
		}
	})
	env.Run()
	mean := total / reads
	if mean < 1200*time.Microsecond || mean > 1800*time.Microsecond {
		t.Errorf("1KB NFS fetch = %v, paper says ~1.5ms", mean)
	}
}

func TestStatefulSessionNoPerOpAuth(t *testing.T) {
	// After mount, per-op cost must be far below the first-op cost of the
	// REST baseline's auth+connection path: here just RTT + media.
	env, srv, client := testServer(3)
	if err := srv.Export("f", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	var op time.Duration
	env.Go("c", func(p *sim.Proc) {
		m, err := srv.Mount(p, client)
		if err != nil {
			t.Error(err)
			return
		}
		h, err := m.Lookup(p, "f")
		if err != nil {
			t.Error(err)
			return
		}
		start := p.Now()
		if _, err := m.Read(p, h, 0, 64); err != nil {
			t.Error(err)
		}
		op = p.Now().Sub(start)
	})
	env.Run()
	// One cross-rack RTT (~200µs) + disk (~1.2ms) + framing; no 50µs HTTP,
	// no marshal, no auth hop.
	if op > 2*time.Millisecond {
		t.Errorf("per-op cost %v too high for a stateful protocol", op)
	}
}

func TestWriteAndReadBack(t *testing.T) {
	env, srv, client := testServer(4)
	if err := srv.Export("f", make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	env.Go("c", func(p *sim.Proc) {
		m, err := srv.Mount(p, client)
		if err != nil {
			t.Error(err)
			return
		}
		h, err := m.Lookup(p, "f")
		if err != nil {
			t.Error(err)
			return
		}
		if err := m.Write(p, h, 0, []byte("abcd")); err != nil {
			t.Error(err)
			return
		}
		got, err := m.Read(p, h, 0, 4)
		if err != nil || string(got) != "abcd" {
			t.Errorf("read-back = %q, %v", got, err)
		}
	})
	env.Run()
}

func TestUnreachableServerErrors(t *testing.T) {
	env, srv, client := testServer(5)
	if err := srv.Export("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	env.Go("c", func(p *sim.Proc) {
		m, err := srv.Mount(p, client)
		if err != nil {
			t.Error(err)
			return
		}
		h, err := m.Lookup(p, "f")
		if err != nil {
			t.Error(err)
			return
		}
		srv.SetReachable(false)
		if _, err := m.Read(p, h, 0, 1); !errors.Is(err, ErrUnreachable) {
			t.Errorf("read from dead server err = %v", err)
		}
		srv.SetReachable(true)
		if _, err := m.Read(p, h, 0, 1); err != nil {
			t.Errorf("recovered read err = %v", err)
		}
	})
	env.Run()
}

func TestStaleHandle(t *testing.T) {
	env, srv, client := testServer(6)
	if err := srv.Export("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	env.Go("c", func(p *sim.Proc) {
		m, err := srv.Mount(p, client)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := m.Read(p, nil, 0, 1); !errors.Is(err, ErrStaleHandle) {
			t.Errorf("nil handle err = %v", err)
		}
		m2, err := srv.Mount(p, client)
		if err != nil {
			t.Error(err)
			return
		}
		h2, err := m2.Lookup(p, "f")
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := m.Read(p, h2, 0, 1); !errors.Is(err, ErrStaleHandle) {
			t.Errorf("cross-mount handle err = %v", err)
		}
	})
	env.Run()
}

func TestLookupMissing(t *testing.T) {
	env, srv, client := testServer(7)
	env.Go("c", func(p *sim.Proc) {
		m, err := srv.Mount(p, client)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := m.Lookup(p, "ghost"); err == nil {
			t.Error("lookup of missing file succeeded")
		}
	})
	env.Run()
}

func TestCostPerMillion(t *testing.T) {
	env, srv, client := testServer(8)
	if err := srv.Export("obj", make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	var meterPerM float64
	env.Go("c", func(p *sim.Proc) {
		m, err := srv.Mount(p, client)
		if err != nil {
			t.Error(err)
			return
		}
		h, err := m.Lookup(p, "obj")
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 10; i++ {
			if _, err := m.Read(p, h, 0, 1024); err != nil {
				t.Error(err)
			}
		}
		meterPerM = float64(m.Meter.PerMillionOps())
	})
	env.Run()
	if meterPerM < 0.002 || meterPerM > 0.004 {
		t.Errorf("NFS read cost = $%.4f/M, paper says $0.003/M", meterPerM)
	}
}

// Package nfsbase implements the stateful file-protocol baseline of §2.1:
// an NFS-style service where a client mounts once, resolves a path to a
// file handle once, and thereafter pays only a single round trip plus the
// server's media access per operation — no per-request connection setup,
// marshaling envelope, or credential re-validation.
//
// Calibration: with the DC2021 network profile and disk media the 1 KB
// uncached fetch lands at the paper's ~1.5 ms, priced at ~$0.003/M by the
// amortised-capacity book.
package nfsbase

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cost"
	"repro/internal/fault"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/object"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/trace"
)

// Errors returned by the protocol.
var (
	ErrStaleHandle = errors.New("nfsbase: stale file handle")
	ErrNotMounted  = errors.New("nfsbase: not mounted")
	ErrUnreachable = errors.New("nfsbase: server unreachable")
)

// framingOverhead is the per-op XDR-style framing cost — small, fixed,
// and binary, unlike the REST envelope.
const framingOverhead = 2 * time.Microsecond

// Server is an NFS-style file server.
type Server struct {
	node simnet.NodeID
	st   *store.Store
	net  *simnet.Network
	// files maps exported names to object IDs.
	files map[string]object.ID
	// reachable models a server that can disappear (the §2.2 failure
	// mode local-assumption interfaces handle badly).
	reachable bool

	Ops *metrics.Counter
	Lat *metrics.Histogram
}

// NewServer exports a fresh server (in rack 0) on disk media.
func NewServer(net *simnet.Network, media media.Profile) *Server {
	trace.Of(net.Env()).SetLabel("nfs")
	return &Server{
		node:      net.AddNode(0),
		st:        store.New(media, 0),
		net:       net,
		files:     make(map[string]object.ID),
		reachable: true,
		Ops:       metrics.NewCounter("nfs_ops"),
		Lat:       metrics.NewHistogram("nfs_latency"),
	}
}

// Node returns the server's network node.
func (s *Server) Node() simnet.NodeID { return s.node }

// Export creates a file with the given content.
func (s *Server) Export(name string, content []byte) error {
	o := s.st.Create(object.Regular)
	if err := s.st.SetData(o.ID(), content); err != nil {
		return err
	}
	s.files[name] = o.ID()
	return nil
}

// SetReachable toggles the server's availability.
func (s *Server) SetReachable(ok bool) { s.reachable = ok }

// Handle is an open-file handle: the protocol state the paper's REST
// baseline cannot keep.
type Handle struct {
	id    object.ID
	mount *Mount
}

// Mount is a client session with the server.
type Mount struct {
	srv    *Server
	client simnet.NodeID
	authed bool
	Meter  *cost.Meter
}

// Mount establishes a session: one authentication, once.
func (s *Server) Mount(p *sim.Proc, client simnet.NodeID) (*Mount, error) {
	if !s.reachable {
		return nil, ErrUnreachable
	}
	// Session setup: handshake + one-time auth.
	p.Sleep(s.net.RTT(client, s.node))
	p.Sleep(50 * time.Microsecond)
	return &Mount{srv: s, client: client, authed: true, Meter: cost.NewMeter("nfs")}, nil
}

// Lookup resolves a name to a handle (one round trip).
func (m *Mount) Lookup(p *sim.Proc, name string) (*Handle, error) {
	if !m.srv.reachable {
		return nil, ErrUnreachable
	}
	m.srv.net.Send(p, m.client, m.srv.node, 128)
	id, ok := m.srv.files[name]
	m.srv.net.Send(p, m.srv.node, m.client, 64)
	if !ok {
		return nil, fmt.Errorf("nfsbase: no such file %q", name)
	}
	return &Handle{id: id, mount: m}, nil
}

// Read fetches up to n bytes at off through the handle: one round trip
// plus the server's media cost. No caching (matching the paper's
// measurement setup).
func (m *Mount) Read(p *sim.Proc, h *Handle, off int64, n int) ([]byte, error) {
	if h == nil || h.mount != m {
		return nil, ErrStaleHandle
	}
	if !m.srv.reachable {
		// The remote failure a local-looking API must surface somehow.
		return nil, ErrUnreachable
	}
	sp := trace.Of(m.srv.net.Env()).Start(p, "nfs", "read",
		trace.Int("off", off), trace.Int("n", int64(n)))
	defer sp.Close(p)
	if err := fault.Of(m.srv.net.Env()).OpFault(p, "nfs.read"); err != nil {
		return nil, err
	}
	start := p.Now()
	p.Sleep(framingOverhead)
	m.srv.net.Send(p, m.client, m.srv.node, 128)
	o, err := m.srv.st.Get(h.id)
	if err != nil {
		m.srv.net.Send(p, m.srv.node, m.client, 64)
		return nil, ErrStaleHandle
	}
	buf := make([]byte, n)
	got, err := o.ReadAt(buf, off)
	if err != nil {
		m.srv.net.Send(p, m.srv.node, m.client, 64)
		return nil, err
	}
	p.Sleep(m.srv.st.Media().ReadCost(int64(got)))
	m.srv.net.Send(p, m.srv.node, m.client, 64+got)
	m.srv.Ops.Inc()
	m.srv.Lat.Observe(p.Now().Sub(start))
	m.Meter.Charge("read", cost.NFSBook.ReadCost(int64(got), false))
	return buf[:got], nil
}

// Write stores data at off through the handle.
func (m *Mount) Write(p *sim.Proc, h *Handle, off int64, data []byte) error {
	if h == nil || h.mount != m {
		return ErrStaleHandle
	}
	if !m.srv.reachable {
		return ErrUnreachable
	}
	sp := trace.Of(m.srv.net.Env()).Start(p, "nfs", "write",
		trace.Int("off", off), trace.Int("bytes", int64(len(data))))
	defer sp.Close(p)
	if err := fault.Of(m.srv.net.Env()).OpFault(p, "nfs.write"); err != nil {
		return err
	}
	start := p.Now()
	p.Sleep(framingOverhead)
	m.srv.net.Send(p, m.client, m.srv.node, 128+len(data))
	o, err := m.srv.st.Get(h.id)
	if err != nil {
		return ErrStaleHandle
	}
	if _, err := o.WriteAt(data, off); err != nil {
		return err
	}
	p.Sleep(m.srv.st.Media().WriteCost(int64(len(data))))
	m.srv.net.Send(p, m.srv.node, m.client, 64)
	m.srv.Ops.Inc()
	m.srv.Lat.Observe(p.Now().Sub(start))
	m.Meter.Charge("write", cost.NFSBook.WriteCost(int64(len(data))))
	return nil
}

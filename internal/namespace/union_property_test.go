package namespace

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/media"
	"repro/internal/object"
	"repro/internal/store"
)

// Model-based property test: a union namespace must behave exactly like a
// flat map with copy-on-write semantics. The model tracks, per path,
// which layer's content is visible; the implementation is driven with
// random create/write/read/remove sequences and every read is compared
// against the model.

type unionModel struct {
	// visible maps path -> content; absent = not visible.
	visible map[string]string
}

func TestUnionMatchesModelProperty(t *testing.T) {
	type op struct {
		Kind byte   // 0 create, 1 write, 2 remove, 3 read/list
		Path byte   // selects one of a fixed set of paths
		Data uint16 // content seed
	}
	paths := []string{"a", "b", "dir/x", "dir/y", "deep/er/z"}

	f := func(baseFiles []byte, ops []op) bool {
		st := store.New(media.DRAM, 0)
		rootObj := st.Create(object.Directory)
		lower, err := New(st, rootObj.ID())
		if err != nil {
			return false
		}
		model := &unionModel{visible: make(map[string]string)}
		// Seed the lower layer.
		for i, pb := range baseFiles {
			path := paths[int(pb)%len(paths)]
			if _, ok := model.visible[path]; ok {
				continue
			}
			content := fmt.Sprintf("base-%d", i)
			o, err := lower.Create(path, object.Regular)
			if err != nil {
				continue
			}
			if err := st.SetData(o.ID(), []byte(content)); err != nil {
				return false
			}
			model.visible[path] = content
		}
		lowerSnapshot := make(map[string]string)
		for k, v := range model.visible {
			lowerSnapshot[k] = v
		}

		upperObj := st.Create(object.Directory)
		u, err := NewUnion(st, upperObj.ID(), lower)
		if err != nil {
			return false
		}

		for i, o := range ops {
			path := paths[int(o.Path)%len(paths)]
			switch o.Kind % 4 {
			case 0: // create
				_, visible := model.visible[path]
				obj, err := u.Create(path, object.Regular)
				if visible {
					if !errors.Is(err, object.ErrExists) {
						return false
					}
					continue
				}
				// Creation can legitimately fail if a path component is a
				// file; the model only tracks leaf visibility, so mirror
				// the implementation's verdict when it errors that way.
				if err != nil {
					if errors.Is(err, ErrNotDir) {
						continue
					}
					return false
				}
				content := fmt.Sprintf("new-%d-%d", i, o.Data)
				if err := st.SetData(obj.ID(), []byte(content)); err != nil {
					return false
				}
				model.visible[path] = content
			case 1: // write (copy-up)
				if _, ok := model.visible[path]; !ok {
					if _, err := u.OpenForWrite(path); !errors.Is(err, ErrNotFound) && !errors.Is(err, ErrNotDir) {
						return false
					}
					continue
				}
				obj, err := u.OpenForWrite(path)
				if err != nil {
					return false
				}
				content := fmt.Sprintf("upd-%d-%d", i, o.Data)
				if err := st.SetData(obj.ID(), []byte(content)); err != nil {
					return false
				}
				model.visible[path] = content
			case 2: // remove
				if _, ok := model.visible[path]; !ok {
					if err := u.Remove(path); !errors.Is(err, ErrNotFound) && !errors.Is(err, ErrNotDir) {
						return false
					}
					continue
				}
				if err := u.Remove(path); err != nil {
					return false
				}
				delete(model.visible, path)
			case 3: // read
				want, ok := model.visible[path]
				obj, err := u.Stat(path)
				if !ok {
					if err == nil {
						return false
					}
					continue
				}
				if err != nil || string(obj.Read()) != want {
					return false
				}
			}
		}
		// Invariant: the lower layer never changed.
		for path, want := range lowerSnapshot {
			o, err := lower.Stat(path)
			if err != nil || string(o.Read()) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Package namespace implements PCSI naming (§3.2): there is no global
// namespace — each function receives a directory object as its file-system
// root and reaches additional namespaces through directory references
// passed as arguments.
//
// Namespaces support union layering in the style the paper cites from
// Docker: an upper (writable) layer superimposed on read-mostly lower
// layers, with whiteouts hiding lower entries and copy-up on write.
package namespace

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/object"
	"repro/internal/store"
)

// Errors returned by namespace operations.
var (
	ErrNotDir     = errors.New("namespace: not a directory")
	ErrNotFound   = errors.New("namespace: no such path")
	ErrBadPath    = errors.New("namespace: malformed path")
	ErrReadOnly   = errors.New("namespace: read-only layer")
	ErrDepthLimit = errors.New("namespace: path too deep")
)

// MaxDepth bounds path resolution to defend against cycles.
const MaxDepth = 64

// Namespace is a view of objects rooted at a directory. A plain namespace
// has one layer; union namespaces stack several.
type Namespace struct {
	st *store.Store
	// layers[0] is the top (writable unless readOnly) layer's root
	// directory; later entries are lower, read-only layers.
	layers   []object.ID
	readOnly bool
}

// New returns a single-layer namespace rooted at root (a Directory in st).
func New(st *store.Store, root object.ID) (*Namespace, error) {
	if err := checkDir(st, root); err != nil {
		return nil, err
	}
	return &Namespace{st: st, layers: []object.ID{root}}, nil
}

// NewUnion stacks upper above the layers of lower. The result reads
// through upper first, then each of lower's layers; writes go to upper
// with copy-up.
func NewUnion(st *store.Store, upper object.ID, lower *Namespace) (*Namespace, error) {
	if err := checkDir(st, upper); err != nil {
		return nil, err
	}
	if lower.st != st {
		return nil, errors.New("namespace: union across stores")
	}
	layers := append([]object.ID{upper}, lower.layers...)
	return &Namespace{st: st, layers: layers}, nil
}

// Freeze returns a read-only view of the namespace.
func (ns *Namespace) Freeze() *Namespace {
	dup := *ns
	dup.readOnly = true
	return &dup
}

// ReadOnly reports whether the namespace rejects writes.
func (ns *Namespace) ReadOnly() bool { return ns.readOnly }

// Root returns the top layer's root directory ID.
func (ns *Namespace) Root() object.ID { return ns.layers[0] }

// Layers returns the stack depth.
func (ns *Namespace) Layers() int { return len(ns.layers) }

func checkDir(st *store.Store, id object.ID) error {
	o, err := st.Get(id)
	if err != nil {
		return err
	}
	if o.Kind() != object.Directory {
		return fmt.Errorf("%w: %v is %v", ErrNotDir, id, o.Kind())
	}
	return nil
}

// splitPath validates and splits a slash-separated relative path.
// The empty path ("" or ".") refers to the root itself.
func splitPath(path string) ([]string, error) {
	path = strings.Trim(path, "/")
	if path == "" || path == "." {
		return nil, nil
	}
	parts := strings.Split(path, "/")
	if len(parts) > MaxDepth {
		return nil, ErrDepthLimit
	}
	for _, p := range parts {
		if p == "" || p == "." || p == ".." {
			return nil, fmt.Errorf("%w: component %q", ErrBadPath, p)
		}
	}
	return parts, nil
}

// lookupIn resolves name across the layer stack starting at the per-layer
// directory IDs in dirs (one per layer, NilID where a layer lacks the
// directory). It honours whiteouts: a whiteout in layer i hides name in
// all layers below i.
func (ns *Namespace) lookupIn(dirs []object.ID, name string) (object.ID, error) {
	for _, d := range dirs {
		if d == object.NilID {
			continue
		}
		dir, err := ns.st.Get(d)
		if err != nil {
			return object.NilID, err
		}
		if id, err := dir.Lookup(name); err == nil {
			return id, nil
		}
		if dir.IsWhiteout(name) {
			return object.NilID, fmt.Errorf("%w: %q (whiteout)", ErrNotFound, name)
		}
	}
	return object.NilID, fmt.Errorf("%w: %q", ErrNotFound, name)
}

// resolveDirs walks parts, maintaining the per-layer directory ID at each
// step. Returns the layer-wise directory IDs of the final directory.
func (ns *Namespace) resolveDirs(parts []string) ([]object.ID, error) {
	dirs := append([]object.ID(nil), ns.layers...)
	for _, name := range parts {
		next := make([]object.ID, len(dirs))
		found := false
		hidden := false
		for i, d := range dirs {
			next[i] = object.NilID
			if d == object.NilID || hidden {
				continue
			}
			dir, err := ns.st.Get(d)
			if err != nil {
				return nil, err
			}
			if id, err := dir.Lookup(name); err == nil {
				child, err := ns.st.Get(id)
				if err != nil {
					return nil, err
				}
				if child.Kind() == object.Directory {
					next[i] = id
					found = true
				} else if !found {
					return nil, fmt.Errorf("%w: %q", ErrNotDir, name)
				}
			} else if dir.IsWhiteout(name) {
				hidden = true // hides all lower layers
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		dirs = next
	}
	return dirs, nil
}

// Resolve walks path and returns the target object's ID.
func (ns *Namespace) Resolve(path string) (object.ID, error) {
	parts, err := splitPath(path)
	if err != nil {
		return object.NilID, err
	}
	if len(parts) == 0 {
		return ns.Root(), nil
	}
	dirs, err := ns.resolveDirs(parts[:len(parts)-1])
	if err != nil {
		return object.NilID, err
	}
	return ns.lookupIn(dirs, parts[len(parts)-1])
}

// Stat resolves path and returns the object.
func (ns *Namespace) Stat(path string) (*object.Object, error) {
	id, err := ns.Resolve(path)
	if err != nil {
		return nil, err
	}
	return ns.st.Get(id)
}

// ensureUpperDir guarantees the top layer contains the directory chain for
// parts, creating directories as needed (the directory half of copy-up),
// and returns the upper-layer directory ID of the final component.
func (ns *Namespace) ensureUpperDir(parts []string) (object.ID, error) {
	cur := ns.layers[0]
	for _, name := range parts {
		dir, err := ns.st.Get(cur)
		if err != nil {
			return object.NilID, err
		}
		if id, err := dir.Lookup(name); err == nil {
			child, err := ns.st.Get(id)
			if err != nil {
				return object.NilID, err
			}
			if child.Kind() != object.Directory {
				return object.NilID, fmt.Errorf("%w: %q", ErrNotDir, name)
			}
			cur = id
		} else if dir.IsWhiteout(name) {
			return object.NilID, fmt.Errorf("%w: %q (whiteout)", ErrNotFound, name)
		} else {
			// Absent in the top layer: create it there (mkdir -p). If the
			// name exists in a lower layer its entries keep showing through
			// the fresh upper directory, which is exactly union semantics.
			nd := ns.st.Create(object.Directory)
			if err := dir.Link(name, nd.ID()); err != nil {
				return object.NilID, err
			}
			cur = nd.ID()
		}
	}
	return cur, nil
}

// Bind links an existing object at path (the final component must not
// exist in the top layer). Writes always target the top layer.
func (ns *Namespace) Bind(path string, id object.ID) error {
	if ns.readOnly {
		return ErrReadOnly
	}
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("%w: cannot bind root", ErrBadPath)
	}
	dirID, err := ns.ensureUpperDir(parts[:len(parts)-1])
	if err != nil {
		return err
	}
	dir, err := ns.st.Get(dirID)
	if err != nil {
		return err
	}
	return dir.Link(parts[len(parts)-1], id)
}

// Create makes a new object of the given kind at path and returns it.
func (ns *Namespace) Create(path string, kind object.Kind) (*object.Object, error) {
	if ns.readOnly {
		return nil, ErrReadOnly
	}
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("%w: cannot create root", ErrBadPath)
	}
	// Refuse if the name is visible anywhere in the stack.
	if _, err := ns.Resolve(path); err == nil {
		return nil, object.ErrExists
	}
	dirID, err := ns.ensureUpperDir(parts[:len(parts)-1])
	if err != nil {
		return nil, err
	}
	dir, err := ns.st.Get(dirID)
	if err != nil {
		return nil, err
	}
	o := ns.st.Create(kind)
	if err := dir.Link(parts[len(parts)-1], o.ID()); err != nil {
		return nil, err
	}
	return o, nil
}

// Remove unlinks path. In a union namespace, removing a name that exists
// only in lower layers records a whiteout in the top layer.
func (ns *Namespace) Remove(path string) error {
	if ns.readOnly {
		return ErrReadOnly
	}
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("%w: cannot remove root", ErrBadPath)
	}
	if _, err := ns.Resolve(path); err != nil {
		return err
	}
	name := parts[len(parts)-1]
	dirID, err := ns.ensureUpperDir(parts[:len(parts)-1])
	if err != nil {
		return err
	}
	dir, err := ns.st.Get(dirID)
	if err != nil {
		return err
	}
	if len(ns.layers) > 1 {
		// Whiteout covers both the upper entry (removed) and lower ones.
		return dir.Whiteout(name)
	}
	return dir.Unlink(name)
}

// OpenForWrite resolves path for mutation: if the object lives in a lower
// layer it is copied up into the top layer first (file copy-up), and the
// upper copy's ID is returned.
func (ns *Namespace) OpenForWrite(path string) (*object.Object, error) {
	if ns.readOnly {
		return nil, ErrReadOnly
	}
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("%w: root is not writable data", ErrBadPath)
	}
	id, err := ns.Resolve(path)
	if err != nil {
		return nil, err
	}
	name := parts[len(parts)-1]
	// Is it already in the top layer?
	if len(ns.layers) > 1 {
		topDirs, err := ns.resolveDirsTopOnly(parts[:len(parts)-1])
		if err == nil && topDirs != object.NilID {
			if dir, err := ns.st.Get(topDirs); err == nil {
				if got, err := dir.Lookup(name); err == nil && got == id {
					return ns.st.Get(id)
				}
			}
		}
		// Copy-up. The private upper copy is a new object and starts
		// writable even when the lower original is frozen — freezing is a
		// property of the object, not of its content.
		src, err := ns.st.Get(id)
		if err != nil {
			return nil, err
		}
		up := src.Clone(ns.st.AllocID())
		if up.Kind() == object.Regular {
			up.ApplyState(src.Read(), src.Version(), object.Mutable)
		}
		if err := ns.st.Insert(up); err != nil {
			return nil, err
		}
		dirID, err := ns.ensureUpperDir(parts[:len(parts)-1])
		if err != nil {
			return nil, err
		}
		dir, err := ns.st.Get(dirID)
		if err != nil {
			return nil, err
		}
		if err := dir.Link(name, up.ID()); err != nil && !errors.Is(err, object.ErrExists) {
			return nil, err
		}
		return up, nil
	}
	return ns.st.Get(id)
}

// resolveDirsTopOnly walks parts through the top layer only, returning the
// final directory's ID or NilID if any component is absent there.
func (ns *Namespace) resolveDirsTopOnly(parts []string) (object.ID, error) {
	cur := ns.layers[0]
	for _, name := range parts {
		dir, err := ns.st.Get(cur)
		if err != nil {
			return object.NilID, err
		}
		id, err := dir.Lookup(name)
		if err != nil {
			return object.NilID, nil //nolint:nilerr // absence is not an error here
		}
		child, err := ns.st.Get(id)
		if err != nil || child.Kind() != object.Directory {
			return object.NilID, nil
		}
		cur = id
	}
	return cur, nil
}

// List returns the merged, whiteout-respecting entry names of the
// directory at path, sorted.
func (ns *Namespace) List(path string) ([]string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	dirs, err := ns.resolveDirs(parts)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	hidden := make(map[string]bool)
	var names []string
	for _, d := range dirs {
		if d == object.NilID {
			continue
		}
		dir, err := ns.st.Get(d)
		if err != nil {
			return nil, err
		}
		for _, n := range dir.Entries() {
			if !seen[n] && !hidden[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
		for _, w := range dir.Whiteouts() {
			hidden[w] = true
		}
	}
	sort.Strings(names)
	return names, nil
}

package namespace

import (
	"errors"
	"testing"

	"repro/internal/media"
	"repro/internal/object"
	"repro/internal/store"
)

func newNS(t *testing.T) (*store.Store, *Namespace) {
	t.Helper()
	st := store.New(media.DRAM, 0)
	root := st.Create(object.Directory)
	ns, err := New(st, root.ID())
	if err != nil {
		t.Fatal(err)
	}
	return st, ns
}

func TestNewRequiresDirectory(t *testing.T) {
	st := store.New(media.DRAM, 0)
	f := st.Create(object.Regular)
	if _, err := New(st, f.ID()); !errors.Is(err, ErrNotDir) {
		t.Fatalf("err = %v, want ErrNotDir", err)
	}
}

func TestCreateAndResolve(t *testing.T) {
	_, ns := newNS(t)
	o, err := ns.Create("data/file.txt", object.Regular)
	if err != nil {
		t.Fatal(err)
	}
	id, err := ns.Resolve("data/file.txt")
	if err != nil || id != o.ID() {
		t.Fatalf("Resolve = %v, %v", id, err)
	}
	// Intermediate directories were created.
	d, err := ns.Stat("data")
	if err != nil || d.Kind() != object.Directory {
		t.Fatalf("Stat(data) = %v, %v", d, err)
	}
}

func TestResolveRoot(t *testing.T) {
	_, ns := newNS(t)
	for _, p := range []string{"", ".", "/"} {
		id, err := ns.Resolve(p)
		if err != nil || id != ns.Root() {
			t.Errorf("Resolve(%q) = %v, %v; want root", p, id, err)
		}
	}
}

func TestBadPaths(t *testing.T) {
	_, ns := newNS(t)
	for _, p := range []string{"a/../b", "a/./b", "a//b"} {
		if _, err := ns.Resolve(p); !errors.Is(err, ErrBadPath) {
			t.Errorf("Resolve(%q) err = %v, want ErrBadPath", p, err)
		}
	}
}

func TestDepthLimit(t *testing.T) {
	_, ns := newNS(t)
	deep := ""
	for i := 0; i < MaxDepth+1; i++ {
		deep += "d/"
	}
	if _, err := ns.Resolve(deep + "f"); !errors.Is(err, ErrDepthLimit) {
		t.Errorf("err = %v, want ErrDepthLimit", err)
	}
}

func TestResolveMissing(t *testing.T) {
	_, ns := newNS(t)
	if _, err := ns.Resolve("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
	if _, err := ns.Resolve("a/b/c"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestResolveThroughFileFails(t *testing.T) {
	_, ns := newNS(t)
	if _, err := ns.Create("file", object.Regular); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Resolve("file/child"); !errors.Is(err, ErrNotDir) {
		t.Errorf("err = %v, want ErrNotDir", err)
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	_, ns := newNS(t)
	if _, err := ns.Create("x", object.Regular); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Create("x", object.Regular); !errors.Is(err, object.ErrExists) {
		t.Errorf("err = %v, want ErrExists", err)
	}
}

func TestBindExistingObject(t *testing.T) {
	st, ns := newNS(t)
	o := st.Create(object.Regular)
	if err := ns.Bind("linked", o.ID()); err != nil {
		t.Fatal(err)
	}
	id, err := ns.Resolve("linked")
	if err != nil || id != o.ID() {
		t.Fatalf("Resolve = %v, %v", id, err)
	}
}

func TestRemoveSingleLayer(t *testing.T) {
	_, ns := newNS(t)
	if _, err := ns.Create("x", object.Regular); err != nil {
		t.Fatal(err)
	}
	if err := ns.Remove("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Resolve("x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("resolve after remove err = %v", err)
	}
	if err := ns.Remove("x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double remove err = %v", err)
	}
}

func TestList(t *testing.T) {
	_, ns := newNS(t)
	for _, n := range []string{"b", "a", "c"} {
		if _, err := ns.Create(n, object.Regular); err != nil {
			t.Fatal(err)
		}
	}
	names, err := ns.List("")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	if len(names) != 3 {
		t.Fatalf("List = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("List = %v, want %v", names, want)
		}
	}
}

func TestFreezeRejectsWrites(t *testing.T) {
	_, ns := newNS(t)
	ro := ns.Freeze()
	if !ro.ReadOnly() {
		t.Fatal("Freeze not read-only")
	}
	if _, err := ro.Create("x", object.Regular); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Create err = %v", err)
	}
	if err := ro.Remove("x"); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Remove err = %v", err)
	}
	if err := ro.Bind("x", 1); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Bind err = %v", err)
	}
	// Original namespace is still writable.
	if _, err := ns.Create("y", object.Regular); err != nil {
		t.Errorf("original became read-only: %v", err)
	}
}

// --- Union semantics ---

func newUnion(t *testing.T) (*store.Store, *Namespace, *Namespace) {
	t.Helper()
	st, lower := newNS(t)
	// Populate lower layer.
	base, err := lower.Create("etc/config", object.Regular)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetData(base.ID(), []byte("base-config")); err != nil {
		t.Fatal(err)
	}
	if _, err := lower.Create("etc/hosts", object.Regular); err != nil {
		t.Fatal(err)
	}
	if _, err := lower.Create("bin/app", object.Regular); err != nil {
		t.Fatal(err)
	}
	upper := st.Create(object.Directory)
	u, err := NewUnion(st, upper.ID(), lower)
	if err != nil {
		t.Fatal(err)
	}
	return st, u, lower
}

func TestUnionReadsThroughLower(t *testing.T) {
	_, u, _ := newUnion(t)
	o, err := u.Stat("etc/config")
	if err != nil {
		t.Fatal(err)
	}
	if string(o.Read()) != "base-config" {
		t.Errorf("read through union = %q", o.Read())
	}
	if u.Layers() != 2 {
		t.Errorf("Layers = %d, want 2", u.Layers())
	}
}

func TestUnionUpperShadowsLower(t *testing.T) {
	st, u, lower := newUnion(t)
	// Write to the union: copy-up into the upper layer.
	up, err := u.OpenForWrite("etc/config")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetData(up.ID(), []byte("override")); err != nil {
		t.Fatal(err)
	}
	// Union sees the override; the lower layer is untouched.
	o, err := u.Stat("etc/config")
	if err != nil || string(o.Read()) != "override" {
		t.Fatalf("union read = %q, %v", o.Read(), err)
	}
	lo, err := lower.Stat("etc/config")
	if err != nil || string(lo.Read()) != "base-config" {
		t.Fatalf("lower mutated: %q, %v — copy-up leaked", lo.Read(), err)
	}
}

func TestUnionCopyUpIdempotent(t *testing.T) {
	_, u, _ := newUnion(t)
	a, err := u.OpenForWrite("etc/config")
	if err != nil {
		t.Fatal(err)
	}
	b, err := u.OpenForWrite("etc/config")
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() != b.ID() {
		t.Errorf("second OpenForWrite copied up again: %v vs %v", a.ID(), b.ID())
	}
}

func TestUnionWhiteoutHidesLower(t *testing.T) {
	_, u, lower := newUnion(t)
	if err := u.Remove("etc/hosts"); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Resolve("etc/hosts"); !errors.Is(err, ErrNotFound) {
		t.Errorf("whited-out path resolves: %v", err)
	}
	// Lower layer still has it.
	if _, err := lower.Resolve("etc/hosts"); err != nil {
		t.Errorf("lower lost entry: %v", err)
	}
	// List must hide it too.
	names, err := u.List("etc")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == "hosts" {
			t.Error("List shows whited-out entry")
		}
	}
}

func TestUnionCreateOverWhiteout(t *testing.T) {
	st, u, _ := newUnion(t)
	if err := u.Remove("etc/hosts"); err != nil {
		t.Fatal(err)
	}
	o, err := u.Create("etc/hosts", object.Regular)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetData(o.ID(), []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, err := u.Stat("etc/hosts")
	if err != nil || string(got.Read()) != "new" {
		t.Fatalf("recreated entry = %q, %v", got.Read(), err)
	}
}

func TestUnionListMerges(t *testing.T) {
	_, u, _ := newUnion(t)
	if _, err := u.Create("etc/upper-only", object.Regular); err != nil {
		t.Fatal(err)
	}
	names, err := u.List("etc")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"config": true, "hosts": true, "upper-only": true}
	if len(names) != len(want) {
		t.Fatalf("List = %v, want keys %v", names, want)
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected entry %q", n)
		}
	}
}

func TestThreeLayerStack(t *testing.T) {
	st, u2, _ := newUnion(t)
	top := st.Create(object.Directory)
	u3, err := NewUnion(st, top.ID(), u2)
	if err != nil {
		t.Fatal(err)
	}
	if u3.Layers() != 3 {
		t.Fatalf("Layers = %d, want 3", u3.Layers())
	}
	// Bottom layer content is visible through two unions.
	if _, err := u3.Resolve("bin/app"); err != nil {
		t.Errorf("3-layer resolve failed: %v", err)
	}
	// Writes land in the new top layer only.
	up, err := u3.OpenForWrite("etc/config")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetData(up.ID(), []byte("top")); err != nil {
		t.Fatal(err)
	}
	mid, err := u2.Stat("etc/config")
	if err != nil || string(mid.Read()) != "base-config" {
		t.Errorf("middle layer mutated: %q, %v", mid.Read(), err)
	}
}

func TestUnionMissingStillNotFound(t *testing.T) {
	_, u, _ := newUnion(t)
	if _, err := u.OpenForWrite("etc/absent"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

// Package media models the access cost of storage media. It sits at the
// substrate layer so that configuration-level code (experiments, examples,
// deployment options) can pick a medium without importing the state layer:
// DESIGN.md §3's layering rule reserves direct internal/store access for the
// state layer, core, and the baselines.
package media

import "time"

// Profile models the access cost of a backing medium.
type Profile struct {
	Name string
	// ReadLatency / WriteLatency are fixed per-op access times.
	ReadLatency  time.Duration
	WriteLatency time.Duration
	// Bandwidth is sustained transfer in bytes/second.
	Bandwidth float64
}

// Standard media. NVMe figures are contemporary flash; Disk matches the
// ~1ms seek-dominated service time implied by the paper's §2.1 NFS
// measurement; DRAM is a memory-resident store.
var (
	DRAM = Profile{Name: "dram", ReadLatency: 200 * time.Nanosecond, WriteLatency: 200 * time.Nanosecond, Bandwidth: 25e9}
	NVMe = Profile{Name: "nvme", ReadLatency: 80 * time.Microsecond, WriteLatency: 20 * time.Microsecond, Bandwidth: 3e9}
	Disk = Profile{Name: "disk", ReadLatency: 1200 * time.Microsecond, WriteLatency: 1200 * time.Microsecond, Bandwidth: 200e6}
)

// ReadCost returns the modelled time to read size bytes.
func (m Profile) ReadCost(size int64) time.Duration {
	return m.ReadLatency + time.Duration(float64(size)/m.Bandwidth*float64(time.Second))
}

// WriteCost returns the modelled time to write size bytes.
func (m Profile) WriteCost(size int64) time.Duration {
	return m.WriteLatency + time.Duration(float64(size)/m.Bandwidth*float64(time.Second))
}

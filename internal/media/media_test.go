package media

import (
	"testing"
	"time"
)

func TestReadWriteCostIncludesLatencyAndTransfer(t *testing.T) {
	m := Profile{Name: "t", ReadLatency: time.Millisecond, WriteLatency: 2 * time.Millisecond, Bandwidth: 1e9}
	// 1e6 bytes at 1 GB/s is 1ms of transfer on top of the fixed latency.
	if got, want := m.ReadCost(1_000_000), 2*time.Millisecond; got != want {
		t.Errorf("ReadCost = %v, want %v", got, want)
	}
	if got, want := m.WriteCost(1_000_000), 3*time.Millisecond; got != want {
		t.Errorf("WriteCost = %v, want %v", got, want)
	}
}

func TestZeroSizeCostIsLatency(t *testing.T) {
	for _, m := range []Profile{DRAM, NVMe, Disk} {
		if m.ReadCost(0) != m.ReadLatency {
			t.Errorf("%s: ReadCost(0) = %v, want %v", m.Name, m.ReadCost(0), m.ReadLatency)
		}
		if m.WriteCost(0) != m.WriteLatency {
			t.Errorf("%s: WriteCost(0) = %v, want %v", m.Name, m.WriteCost(0), m.WriteLatency)
		}
	}
}

func TestStandardMediaOrdering(t *testing.T) {
	// The media hierarchy the experiments rely on: DRAM ≪ NVMe ≪ Disk.
	if !(DRAM.ReadLatency < NVMe.ReadLatency && NVMe.ReadLatency < Disk.ReadLatency) {
		t.Errorf("read latency ordering violated: %v %v %v", DRAM.ReadLatency, NVMe.ReadLatency, Disk.ReadLatency)
	}
	if !(DRAM.Bandwidth > NVMe.Bandwidth && NVMe.Bandwidth > Disk.Bandwidth) {
		t.Errorf("bandwidth ordering violated")
	}
}

// Package cost implements pay-per-use accounting: price books for storage
// requests, data transfer, compute time, and reserved capacity, with
// USD-per-million-operations reporting.
//
// The books are calibrated so the §2.1 comparison reproduces: fetching a
// 1 KB object costs ~$0.003/M through an NFS-style service (amortised
// capacity pricing) and ~$0.18/M through a DynamoDB-style request-unit
// model.
package cost

import (
	"fmt"
	"time"
)

// USD is an amount of money in dollars.
type USD float64

// String renders the amount.
func (u USD) String() string {
	switch {
	case u == 0:
		return "$0"
	case u < 0.01:
		return fmt.Sprintf("$%.6f", float64(u))
	default:
		return fmt.Sprintf("$%.4f", float64(u))
	}
}

// PerMillion scales a per-op price to per-million-ops, the unit the paper
// quotes.
func (u USD) PerMillion() USD { return u * 1e6 }

// Book is a price book for one service.
type Book struct {
	Name string
	// PerRequest is charged on every API call (request-unit style).
	PerRequest USD
	// PerReadUnit / PerWriteUnit are charged per capacity unit consumed;
	// units are computed from payload size by UnitBytes (DynamoDB-style:
	// one read unit per 4 KB, one write unit per 1 KB).
	PerReadUnit    USD
	PerWriteUnit   USD
	ReadUnitBytes  int64
	WriteUnitBytes int64
	// StrongReadMultiplier scales read units for strongly consistent
	// reads (DynamoDB charges 2x).
	StrongReadMultiplier float64
	// PerGBTransfer is charged on bytes returned to the client.
	PerGBTransfer USD
	// PerGBMonthStored is charged on stored bytes over time.
	PerGBMonthStored USD
	// PerCoreHour, PerGBHour, and PerGPUHour price compute allocations.
	PerCoreHour USD
	PerGBHour   USD
	PerGPUHour  USD
	// ScavengedDiscount multiplies compute prices for scavenged (spot)
	// capacity.
	ScavengedDiscount float64
}

// Standard price books, calibrated to mid-2021 published pricing (the
// paper's measurement period).
var (
	// DynamoBook models DynamoDB request-unit pricing: $0.25 per million
	// read request units; an eventually consistent read of up to 4 KB is
	// half a unit, a strongly consistent one a full unit. A 1 KB strong
	// read ⇒ $0.25/M, eventual ⇒ $0.125/M; the paper's $0.18/M sits at a
	// mixed strong/eventual ratio of roughly 45/55, which experiment E2
	// reports alongside the two pure levels. Same-region transfer is free.
	DynamoBook = Book{
		Name:                 "dynamodb",
		PerReadUnit:          0.25e-6,
		PerWriteUnit:         1.25e-6,
		ReadUnitBytes:        4096,
		WriteUnitBytes:       1024,
		StrongReadMultiplier: 2,
		PerGBMonthStored:     0.25,
	}
	// NFSBook models a filer-style service (EFS-like) where requests are
	// free and cost comes from provisioned capacity + throughput,
	// amortised: at a typical duty cycle a 1 KB read lands near $0.003/M.
	NFSBook = Book{
		Name:             "nfs",
		PerRequest:       0.003e-6,
		PerGBTransfer:    0.0,
		PerGBMonthStored: 0.30,
	}
	// ComputeBook prices function execution (on-demand core-hours) with a
	// 70% discount for scavenged capacity, in line with spot pricing.
	ComputeBook = Book{
		Name:              "compute",
		PerCoreHour:       0.048,
		PerGBHour:         0.0053,
		PerGPUHour:        0.75,
		ScavengedDiscount: 0.30,
	}
	// PCSIBook prices the direct stateful protocol: no per-request
	// gateway/marshal tax to pass on (§2.1 speculates that "a part of the
	// cost difference comes from the cloud provider passing the cost of
	// providing a RESTful web service interface on to the customer"), so
	// requests price like the filer baseline with modest transfer costs.
	PCSIBook = Book{
		Name:             "pcsi",
		PerRequest:       0.002e-6,
		PerGBTransfer:    0.01,
		PerGBMonthStored: 0.25,
	}
)

// ReadCost prices one read of size bytes at the given consistency. In the
// request-unit model an eventually consistent read costs half a unit per
// ReadUnitBytes; StrongReadMultiplier scales that back up for strong reads.
func (b Book) ReadCost(size int64, strong bool) USD {
	c := b.PerRequest
	if b.PerReadUnit > 0 && b.ReadUnitBytes > 0 {
		units := float64((size + b.ReadUnitBytes - 1) / b.ReadUnitBytes)
		if units < 1 {
			units = 1
		}
		ru := units * 0.5
		if strong && b.StrongReadMultiplier > 0 {
			ru *= b.StrongReadMultiplier
		}
		c += USD(ru) * b.PerReadUnit
	}
	c += b.PerGBTransfer * USD(float64(size)/1e9)
	return c
}

// WriteCost prices one write of size bytes.
func (b Book) WriteCost(size int64) USD {
	c := b.PerRequest
	if b.PerWriteUnit > 0 && b.WriteUnitBytes > 0 {
		units := (size + b.WriteUnitBytes - 1) / b.WriteUnitBytes
		if units == 0 {
			units = 1
		}
		c += USD(units) * b.PerWriteUnit
	}
	return c
}

// ComputeCost prices a compute allocation of milliCPU cores, memMB
// memory, and gpus accelerators held for d.
func (b Book) ComputeCost(milliCPU, memMB, gpus int64, d time.Duration, scavenged bool) USD {
	hours := d.Hours()
	c := b.PerCoreHour*USD(float64(milliCPU)/1000*hours) +
		b.PerGBHour*USD(float64(memMB)/1024*hours) +
		b.PerGPUHour*USD(float64(gpus)*hours)
	if scavenged && b.ScavengedDiscount > 0 {
		c *= USD(b.ScavengedDiscount)
	}
	return c
}

// StorageCost prices size bytes stored for d.
func (b Book) StorageCost(size int64, d time.Duration) USD {
	const month = 30 * 24 * time.Hour
	return b.PerGBMonthStored * USD(float64(size)/1e9) * USD(float64(d)/float64(month))
}

// Meter accumulates charges.
type Meter struct {
	Name  string
	total USD
	ops   int64
	lines map[string]USD
}

// NewMeter returns an empty meter.
func NewMeter(name string) *Meter {
	return &Meter{Name: name, lines: make(map[string]USD)}
}

// Charge adds an amount under a line item and counts one operation.
func (m *Meter) Charge(line string, amount USD) {
	m.total += amount
	m.ops++
	m.lines[line] += amount
}

// Total returns the accumulated charge.
func (m *Meter) Total() USD { return m.total }

// Ops returns the number of charged operations.
func (m *Meter) Ops() int64 { return m.ops }

// Line returns the accumulated charge for one line item.
func (m *Meter) Line(line string) USD { return m.lines[line] }

// PerMillionOps returns the average cost per million operations.
func (m *Meter) PerMillionOps() USD {
	if m.ops == 0 {
		return 0
	}
	return m.total / USD(m.ops) * 1e6
}

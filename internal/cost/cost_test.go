package cost

import (
	"strings"
	"testing"
	"time"
)

func approx(t *testing.T, name string, got, want USD, tol float64) {
	t.Helper()
	g, w := float64(got), float64(want)
	if g < w*(1-tol) || g > w*(1+tol) {
		t.Errorf("%s = %v, want ~%v", name, got, want)
	}
}

func TestPaper21Calibration(t *testing.T) {
	// §2.1: NFS 1KB fetch costs 0.003 USD/M; DynamoDB 0.18 USD/M.
	nfs := NFSBook.ReadCost(1024, false).PerMillion()
	approx(t, "NFS 1KB/M", nfs, 0.003, 0.05)

	strong := DynamoBook.ReadCost(1024, true).PerMillion()
	ev := DynamoBook.ReadCost(1024, false).PerMillion()
	approx(t, "Dynamo strong 1KB/M", strong, 0.25, 0.05)
	approx(t, "Dynamo eventual 1KB/M", ev, 0.125, 0.05)
	// The paper's 0.18 must fall between the two pure levels.
	if !(ev < 0.18 && 0.18 < strong) {
		t.Errorf("paper's $0.18/M outside [%v, %v]", ev, strong)
	}
	// Shape: DynamoDB is ~60x costlier than NFS at this granularity.
	if strong/nfs < 30 {
		t.Errorf("Dynamo/NFS cost ratio = %.1f, want large (paper: 60x)", strong/nfs)
	}
}

func TestReadUnitsRoundUp(t *testing.T) {
	// 5 KB strong read = 2 RU.
	c5 := DynamoBook.ReadCost(5*1024, true)
	c1 := DynamoBook.ReadCost(1024, true)
	if c5 != 2*c1 {
		t.Errorf("5KB read = %v, want 2x 1KB (%v)", c5, c1)
	}
	// Zero-size read still costs one unit.
	if DynamoBook.ReadCost(0, true) != c1 {
		t.Error("zero-size read not charged minimum unit")
	}
}

func TestWriteCost(t *testing.T) {
	w1 := DynamoBook.WriteCost(1024)
	approx(t, "Dynamo 1KB write/M", w1.PerMillion(), 1.25, 0.05)
	w3 := DynamoBook.WriteCost(3 * 1024)
	if w3 != 3*w1 {
		t.Errorf("3KB write = %v, want 3x %v", w3, w1)
	}
}

func TestComputeCostAndScavengeDiscount(t *testing.T) {
	full := ComputeBook.ComputeCost(1000, 1024, 0, time.Hour, false)
	approx(t, "1 core-hour + 1GB-hour", full, USD(0.048+0.0053), 0.01)
	gpu := ComputeBook.ComputeCost(0, 0, 1, time.Hour, false)
	approx(t, "1 GPU-hour", gpu, USD(0.75), 0.01)
	spot := ComputeBook.ComputeCost(1000, 1024, 0, time.Hour, true)
	approx(t, "scavenged", spot, full*USD(0.30), 0.01)
	if spot >= full {
		t.Error("scavenged capacity not cheaper")
	}
}

func TestStorageCost(t *testing.T) {
	month := 30 * 24 * time.Hour
	c := NFSBook.StorageCost(1e9, month)
	approx(t, "1GB-month NFS", c, 0.30, 0.01)
	if NFSBook.StorageCost(1e9, month/2) >= c {
		t.Error("storage cost not time-proportional")
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter("svc")
	m.Charge("read", 0.001)
	m.Charge("read", 0.001)
	m.Charge("write", 0.01)
	if m.Ops() != 3 {
		t.Errorf("Ops = %d", m.Ops())
	}
	approx(t, "total", m.Total(), 0.012, 0.001)
	approx(t, "line read", m.Line("read"), 0.002, 0.001)
	approx(t, "per-M", m.PerMillionOps(), 0.012/3*1e6, 0.001)
	empty := NewMeter("e")
	if empty.PerMillionOps() != 0 {
		t.Error("empty meter per-M not 0")
	}
}

func TestUSDString(t *testing.T) {
	if USD(0).String() != "$0" {
		t.Errorf("zero = %q", USD(0).String())
	}
	if !strings.HasPrefix(USD(0.000001).String(), "$0.000001") {
		t.Errorf("small = %q", USD(0.000001).String())
	}
	if USD(1.5).String() != "$1.5000" {
		t.Errorf("large = %q", USD(1.5).String())
	}
}

package obs

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Objective is one declarative SLO. Exactly one of Latency, Goodput, or
// Shed must be set; the others parameterise Google-SRE-style multi-window
// burn-rate alerting: each sampler tick is scored with a bad-event
// fraction, the fraction is divided by the error Budget to get a burn
// rate, and the alert fires when both the short- and the long-window mean
// burn rate reach Threshold — the short window gives fast detection, the
// long window keeps one bad tick from paging.
type Objective struct {
	Name   string
	Tenant string // display only; "" for whole-plane objectives

	Latency *LatencyTarget
	Goodput *GoodputFloor
	Shed    *ShedCeiling

	Budget     float64 // allowed bad fraction per tick; 0 = 0.1
	Threshold  float64 // burn-rate level that alerts; 0 = 1
	ShortTicks int     // fast window, in sampler ticks; 0 = 5
	LongTicks  int     // slow window, in sampler ticks; 0 = 20

	// After/Until bound evaluation in virtual time (measured from the
	// epoch), so warm-up and drain phases do not burn budget. Zero Until
	// means forever.
	After sim.Duration
	Until sim.Duration
}

// LatencyTarget scores a tick bad (fraction 1) when the Metric histogram's
// windowed Quantile exceeds Max. Ticks with an empty window score 0.
type LatencyTarget struct {
	Metric   string // histogram name in the registry
	Quantile float64
	Max      sim.Duration
}

// GoodputFloor scores a tick by the failure share failed/(served+failed),
// using the per-tick window counts of the two named metrics (histogram
// window count or counter delta). Typed sheds are deliberately not
// failures — a shed is an answer. If MinRate > 0, a tick whose served
// rate (events/sec) falls below it scores 1 regardless of the share.
type GoodputFloor struct {
	Served  string
	Failed  string
	MinRate float64
}

// ShedCeiling scores a tick by the shed share shed/(shed+base) of the two
// named metrics' per-tick deltas — the budget is the tolerable shed share.
type ShedCeiling struct {
	Shed string
	Base string
}

// Target renders the objective's target as a human-readable phrase for
// dashboards and reports.
func (o Objective) Target() string {
	switch {
	case o.Latency != nil:
		return fmt.Sprintf("p%g(%s) <= %s within [%s, %s]",
			o.Latency.Quantile*100, o.Latency.Metric, o.Latency.Max, o.After, untilStr(o.Until))
	case o.Goodput != nil:
		t := fmt.Sprintf("failure share %s/(%s+%s) <= %g%%",
			o.Goodput.Failed, o.Goodput.Served, o.Goodput.Failed, o.budget()*100)
		if o.Goodput.MinRate > 0 {
			t += fmt.Sprintf(", served >= %g/s", o.Goodput.MinRate)
		}
		return t
	case o.Shed != nil:
		return fmt.Sprintf("shed share %s/(%s+%s) <= %g%%",
			o.Shed.Shed, o.Shed.Shed, o.Shed.Base, o.budget()*100)
	}
	return "(no target)"
}

func untilStr(d sim.Duration) string {
	if d == 0 {
		return "end"
	}
	return d.String()
}

func (o Objective) budget() float64 {
	if o.Budget > 0 {
		return o.Budget
	}
	return 0.1
}

func (o Objective) threshold() float64 {
	if o.Threshold > 0 {
		return o.Threshold
	}
	return 1
}

func (o Objective) shortTicks() int {
	if o.ShortTicks > 0 {
		return o.ShortTicks
	}
	return 5
}

func (o Objective) longTicks() int {
	if o.LongTicks > 0 {
		return o.LongTicks
	}
	return 20
}

// Alert is one burn-rate alert transition. Fire and resolve instants are
// also emitted into the trace (category "obs.slo") and the flight
// recorder.
type Alert struct {
	At        sim.Time
	Objective string
	Tenant    string
	Kind      string // "fire" | "resolve"
	ShortBurn float64
	LongBurn  float64
}

// objectiveState is the per-plane evaluation state of one objective: a
// circular buffer of per-tick burn rates sized to the long window.
type objectiveState struct {
	obj    Objective
	burns  []float64
	idx    int
	n      int
	firing bool
}

// SetObjectives replaces the plane's objective set. Call before the first
// sampler tick (objectives installed mid-run would see a truncated burn
// history). Safe on a nil plane.
func (pl *Plane) SetObjectives(objs ...Objective) {
	if pl == nil {
		return
	}
	pl.objectives = pl.objectives[:0]
	for _, o := range objs {
		pl.objectives = append(pl.objectives, &objectiveState{
			obj:   o,
			burns: make([]float64, o.longTicks()),
		})
	}
}

// Objectives returns the plane's objectives in installation order.
func (pl *Plane) Objectives() []Objective {
	if pl == nil {
		return nil
	}
	out := make([]Objective, 0, len(pl.objectives))
	for _, st := range pl.objectives {
		out = append(out, st.obj)
	}
	return out
}

// Alerts returns every alert transition so far, in virtual-time order.
func (pl *Plane) Alerts() []Alert {
	if pl == nil {
		return nil
	}
	return pl.alerts
}

// FireCount returns the number of "fire" transitions for the named
// objective ("" counts every objective).
func (pl *Plane) FireCount(objective string) int {
	n := 0
	for _, a := range pl.Alerts() {
		if a.Kind == "fire" && (objective == "" || a.Objective == objective) {
			n++
		}
	}
	return n
}

// FiredBetween reports whether the named objective fired in [from, to].
func (pl *Plane) FiredBetween(objective string, from, to sim.Time) bool {
	for _, a := range pl.Alerts() {
		if a.Kind == "fire" && a.Objective == objective && a.At >= from && a.At <= to {
			return true
		}
	}
	return false
}

// evaluate scores every objective against the tick just sampled and
// records fire/resolve transitions.
func (pl *Plane) evaluate(now sim.Time) {
	for _, st := range pl.objectives {
		burn := st.obj.badFraction(pl, now) / st.obj.budget()
		st.burns[st.idx] = burn
		st.idx = (st.idx + 1) % len(st.burns)
		st.n++
		// Both windows must exceed the threshold, and the long window must
		// be fully populated — otherwise a single early bad tick would
		// dominate a mostly-empty average and page during warm-up.
		firing := st.n >= st.obj.longTicks() &&
			st.avg(st.obj.shortTicks()) >= st.obj.threshold() &&
			st.avg(st.obj.longTicks()) >= st.obj.threshold()
		if firing != st.firing {
			st.firing = firing
			kind := "resolve"
			if firing {
				kind = "fire"
			}
			a := Alert{
				At:        now,
				Objective: st.obj.Name,
				Tenant:    st.obj.Tenant,
				Kind:      kind,
				ShortBurn: st.avg(st.obj.shortTicks()),
				LongBurn:  st.avg(st.obj.longTicks()),
			}
			pl.alerts = append(pl.alerts, a)
			detail := fmt.Sprintf("burn short=%.2f long=%.2f", a.ShortBurn, a.LongBurn)
			pl.Record("alert", kind+":"+st.obj.Name, detail)
			trace.Of(pl.env).Instant("obs", "obs.slo", "slo:"+st.obj.Name+":"+kind,
				trace.Str("detail", detail), trace.Str("tenant", st.obj.Tenant))
		}
	}
}

// avg returns the mean burn over the last w ticks (w <= len(burns)).
func (st *objectiveState) avg(w int) float64 {
	if st.n < w {
		w = st.n
	}
	if w == 0 {
		return 0
	}
	sum := 0.0
	for i := 1; i <= w; i++ {
		sum += st.burns[(st.idx-i+len(st.burns))%len(st.burns)]
	}
	return sum / float64(w)
}

// badFraction scores the tick just sampled in [0, 1].
func (o Objective) badFraction(pl *Plane, now sim.Time) float64 {
	if now < sim.Time(o.After) {
		return 0
	}
	if o.Until > 0 && now > sim.Time(o.Until) {
		return 0
	}
	switch {
	case o.Latency != nil:
		win, ok := pl.lastWindow[o.Latency.Metric]
		if !ok || win.Total == 0 {
			return 0
		}
		if win.Quantile(o.Latency.Quantile) > o.Latency.Max {
			return 1
		}
		return 0
	case o.Goodput != nil:
		served := pl.lastDelta[o.Goodput.Served]
		failed := pl.lastDelta[o.Goodput.Failed]
		if o.Goodput.MinRate > 0 && pl.rate(served) < o.Goodput.MinRate {
			return 1
		}
		if served+failed == 0 {
			return 0
		}
		return failed / (served + failed)
	case o.Shed != nil:
		shed := pl.lastDelta[o.Shed.Shed]
		base := pl.lastDelta[o.Shed.Base]
		if shed+base == 0 {
			return 0
		}
		return shed / (shed + base)
	}
	return 0
}

package obs_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// runSynthetic drives a small workload under an obs session: 60ms of
// healthy traffic, 80ms where every request fails, then 120ms healthy
// again. Returns the plane for assertions; the session is deactivated.
func runSynthetic(t *testing.T, seed int64) (*obs.Plane, *obs.Session) {
	t.Helper()
	env := sim.NewEnv(seed)
	reg := trace.NewRegistry()
	served := metrics.NewCounter("served")
	failed := metrics.NewCounter("failed")
	lat := metrics.NewHistogram("op_latency")
	util := metrics.NewGauge("util")
	reg.Register(served)
	reg.Register(failed)
	reg.Register(lat)
	reg.Register(util)

	s := obs.Activate(obs.Config{Interval: 10 * time.Millisecond})
	defer s.Deactivate()
	pl := s.Attach(env, reg, "synthetic")
	pl.SetObjectives(obs.Objective{
		Name:       "goodput-floor",
		Goodput:    &obs.GoodputFloor{Served: "served", Failed: "failed"},
		Budget:     0.2,
		ShortTicks: 3,
		LongTicks:  6,
	})

	env.Go("load", func(p *sim.Proc) {
		for i := 0; i < 260; i++ {
			p.Sleep(time.Millisecond)
			now := int64(p.Now())
			util.Set(now, float64(i%4))
			if i >= 60 && i < 140 {
				failed.Inc()
				pl.Record("fault", "op", "injected failure")
				continue
			}
			served.Inc()
			lat.Observe(time.Duration(1+i%5) * time.Millisecond)
		}
	})
	env.Run()
	return pl, s
}

func TestSamplerSeriesAndTermination(t *testing.T) {
	pl, _ := runSynthetic(t, 1)
	if pl.Samples() == 0 {
		t.Fatal("sampler never ticked")
	}
	// env.Run returned, so the sampler did not livelock the drain.
	rate := pl.SeriesData("served", "rate")
	if len(rate) == 0 {
		t.Fatal("no rate series for served counter")
	}
	// Healthy phase serves 1 op/ms = 1000/s. The first tick at t=10ms was
	// scheduled before the op landing exactly at 10ms, so its window sees
	// the 9 ops at 1..9ms — deterministically.
	if got := rate[0].V; got != 900 {
		t.Fatalf("first served rate = %v, want 900/s", got)
	}
	if pts := pl.SeriesData("util", "level"); len(pts) == 0 {
		t.Fatal("no level series for gauge")
	}
	for _, stat := range []string{"rate", "p50", "p95", "p99"} {
		if pts := pl.SeriesData("op_latency", stat); len(pts) == 0 {
			t.Fatalf("no %s series for histogram", stat)
		}
	}
	if got := pl.SeriesData("op_latency", "p99"); got[0].V <= 0 {
		t.Fatalf("p99 series starts at %v, want > 0", got[0].V)
	}
}

func TestBurnRateFiresAndResolves(t *testing.T) {
	pl, _ := runSynthetic(t, 1)
	alerts := pl.Alerts()
	if len(alerts) != 2 {
		t.Fatalf("alerts = %+v, want exactly one fire and one resolve", alerts)
	}
	fire, resolve := alerts[0], alerts[1]
	if fire.Kind != "fire" || resolve.Kind != "resolve" {
		t.Fatalf("alert kinds = %s, %s", fire.Kind, resolve.Kind)
	}
	// The bad phase spans [60ms, 140ms]; firing needs the long window's
	// mean burn over threshold, so it lands inside the phase, and the
	// resolve lands after it.
	if fire.At <= sim.Time(60*time.Millisecond) || fire.At > sim.Time(140*time.Millisecond) {
		t.Fatalf("fired at %v, want inside the bad phase", fire.At)
	}
	if resolve.At <= sim.Time(140*time.Millisecond) {
		t.Fatalf("resolved at %v, want after the bad phase", resolve.At)
	}
	if !pl.FiredBetween("goodput-floor", sim.Time(60*time.Millisecond), sim.Time(140*time.Millisecond)) {
		t.Fatal("FiredBetween misses the fire")
	}
	if pl.FireCount("goodput-floor") != 1 || pl.FireCount("") != 1 {
		t.Fatal("FireCount wrong")
	}
	if fire.ShortBurn < 1 || fire.LongBurn < 1 {
		t.Fatalf("burns at fire = %v/%v, want >= threshold", fire.ShortBurn, fire.LongBurn)
	}
}

func TestLatencyObjective(t *testing.T) {
	env := sim.NewEnv(1)
	reg := trace.NewRegistry()
	lat := metrics.NewHistogram("op_latency")
	reg.Register(lat)
	s := obs.Activate(obs.Config{Interval: 10 * time.Millisecond})
	defer s.Deactivate()
	pl := s.Attach(env, reg, "lat")
	pl.SetObjectives(obs.Objective{
		Name:       "p99-slow",
		Latency:    &obs.LatencyTarget{Metric: "op_latency", Quantile: 0.99, Max: 5 * time.Millisecond},
		Budget:     0.5,
		ShortTicks: 2,
		LongTicks:  4,
	})
	env.Go("load", func(p *sim.Proc) {
		for i := 0; i < 120; i++ {
			p.Sleep(time.Millisecond)
			d := time.Millisecond
			if i >= 40 {
				d = 50 * time.Millisecond // every window's p99 now violates
			}
			lat.Observe(d)
		}
	})
	env.Run()
	if pl.FireCount("p99-slow") != 1 {
		t.Fatalf("latency objective fires = %d, want 1 (alerts: %+v)", pl.FireCount("p99-slow"), pl.Alerts())
	}
}

func TestObjectiveEvaluationBounds(t *testing.T) {
	env := sim.NewEnv(1)
	reg := trace.NewRegistry()
	failed := metrics.NewCounter("failed")
	reg.Register(metrics.NewCounter("served"))
	reg.Register(failed)
	s := obs.Activate(obs.Config{Interval: 10 * time.Millisecond})
	defer s.Deactivate()
	pl := s.Attach(env, reg, "bounds")
	pl.SetObjectives(obs.Objective{
		Name:       "gated",
		Goodput:    &obs.GoodputFloor{Served: "served", Failed: "failed"},
		ShortTicks: 2,
		LongTicks:  4,
		After:      500 * time.Millisecond, // everything happens before this
	})
	env.Go("load", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			p.Sleep(time.Millisecond)
			failed.Inc()
		}
	})
	env.Run()
	if n := pl.FireCount(""); n != 0 {
		t.Fatalf("objective fired %d time(s) outside its evaluation window", n)
	}
}

func TestTimelineRendersDeterministically(t *testing.T) {
	render := func() (string, string) {
		pl, s := runSynthetic(t, 7)
		_ = pl
		tl := s.Timeline("SYN", 7)
		var j, h bytes.Buffer
		if err := tl.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := tl.WriteHTML(&h); err != nil {
			t.Fatal(err)
		}
		return j.String(), h.String()
	}
	j1, h1 := render()
	j2, h2 := render()
	if j1 != j2 {
		t.Fatal("timeline JSON not byte-identical across identical runs")
	}
	if h1 != h2 {
		t.Fatal("dashboard HTML not byte-identical across identical runs")
	}
	for _, want := range []string{"goodput-floor", "served", "fired", "flight recorder"} {
		if !strings.Contains(h1, want) {
			t.Errorf("dashboard HTML missing %q", want)
		}
	}
	if !strings.Contains(j1, "\"objective\": \"goodput-floor\"") {
		t.Error("timeline JSON missing alert entry")
	}
}

func TestAttachIdempotentAndNilSafe(t *testing.T) {
	env := sim.NewEnv(1)
	reg := trace.NewRegistry()
	s := obs.Activate(obs.Config{})
	defer s.Deactivate()
	if p1, p2 := s.Attach(env, reg, "a"), s.Attach(env, reg, "b"); p1 != p2 {
		t.Fatal("second Attach on the same env must return the existing plane")
	}
	var none *obs.Session
	if pl := none.Attach(env, reg, "x"); pl != nil {
		t.Fatal("nil session must return a nil plane")
	}
	var pl *obs.Plane
	pl.Record("k", "n", "d") // must not panic
	if pl.Samples() != 0 || pl.SeriesList() != nil || pl.Alerts() != nil {
		t.Fatal("nil plane accessors must be inert")
	}
	if obs.ActiveSession() != s {
		t.Fatal("ActiveSession should return the active session")
	}
}

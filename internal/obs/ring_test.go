package obs

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestRingDownsamplesToCapacity(t *testing.T) {
	r := newRing(16, aggMean)
	for i := 1; i <= 1000; i++ {
		r.push(sim.Time(i)*sim.Time(time.Millisecond), float64(i))
	}
	pts := r.points()
	if len(pts) > 16 {
		t.Fatalf("ring holds %d points, capacity 16", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].T <= pts[i-1].T {
			t.Fatalf("timestamps not increasing: %v then %v", pts[i-1].T, pts[i].T)
		}
	}
	// The whole timeline must stay covered: the final pushed sample's
	// timestamp survives folding (folded points keep the later stamp).
	if last := pts[len(pts)-1].T; last != sim.Time(1000*time.Millisecond) {
		t.Fatalf("last point at %v, want 1s", last)
	}
}

func TestRingMeanFolds(t *testing.T) {
	r := newRing(4, aggMean)
	// Capacity 4 with 4 pushes triggers one compaction to stride 2.
	for i, v := range []float64{10, 20, 30, 50} {
		r.push(sim.Time(i+1), v)
	}
	pts := r.points()
	if len(pts) != 2 || pts[0].V != 15 || pts[1].V != 40 {
		t.Fatalf("folded points = %+v, want means 15 and 40", pts)
	}
}

func TestRingMaxAggKeepsSpikes(t *testing.T) {
	r := newRing(8, aggMax)
	for i := 1; i <= 640; i++ {
		v := 1.0
		if i == 333 {
			v = 99 // one spike must survive every fold
		}
		r.push(sim.Time(i), v)
	}
	max := 0.0
	for _, p := range r.points() {
		if p.V > max {
			max = p.V
		}
	}
	if max != 99 {
		t.Fatalf("spike lost in downsampling: max = %v", max)
	}
}

func TestRecorderEvictionOrder(t *testing.T) {
	r := newRecorder(4, time.Hour)
	for i := 1; i <= 6; i++ {
		r.Record(FlightEvent{At: sim.Time(i), Kind: "k", Name: string(rune('a' - 1 + i))})
	}
	if r.Len() != 4 || r.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d, want 4 and 2", r.Len(), r.Dropped())
	}
	got := ""
	for _, ev := range r.Events() {
		got += ev.Name
	}
	if got != "cdef" {
		t.Fatalf("events = %q, want oldest-first cdef", got)
	}
}

func TestRecorderRecentWindow(t *testing.T) {
	r := newRecorder(16, 5*time.Second)
	r.Record(FlightEvent{At: sim.Time(1 * time.Second), Name: "old"})
	r.Record(FlightEvent{At: sim.Time(8 * time.Second), Name: "new"})
	recent := r.Recent(sim.Time(10 * time.Second))
	if len(recent) != 1 || recent[0].Name != "new" {
		t.Fatalf("recent = %+v, want only the event inside the 5s window", recent)
	}
	if dump := r.Dump(sim.Time(10 * time.Second)); dump == "" {
		t.Fatal("dump empty with events in window")
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(FlightEvent{})
	if r.Len() != 0 || r.Dump(0) != "" || r.Events() != nil {
		t.Fatal("nil recorder must be inert")
	}
}

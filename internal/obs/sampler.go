package obs

import (
	"sort"

	"repro/internal/sim"
)

// Point is one sampled value at a virtual-time instant.
type Point struct {
	T sim.Time
	V float64
}

// aggKind selects how a downsampling ring folds adjacent points together:
// means for rates and levels, maxima for quantile series (a latency spike
// must survive downsampling, not be averaged away).
type aggKind uint8

const (
	aggMean aggKind = iota
	aggMax
)

// ring is a fixed-capacity downsampling buffer. It starts at full
// resolution (stride 1: every push is a point); when the buffer fills, it
// folds adjacent pairs in place and doubles the stride, so an arbitrarily
// long run always fits in at most cap points covering the whole timeline
// at uniform (halved) resolution — the classic trick for bounded-memory
// telemetry of unknown-length runs.
type ring struct {
	capacity int
	stride   int
	agg      aggKind
	pts      []Point
	// partial accumulator for the in-progress stride group
	accN int
	accT sim.Time
	accV float64
}

func newRing(capacity int, agg aggKind) ring {
	return ring{capacity: capacity, stride: 1, agg: agg}
}

func (r *ring) push(t sim.Time, v float64) {
	if r.accN == 0 || (r.agg == aggMax && v > r.accV) {
		r.accV = v
	} else if r.agg == aggMean {
		r.accV += v
	}
	r.accT = t
	r.accN++
	if r.accN < r.stride {
		return
	}
	v = r.accV
	if r.agg == aggMean {
		v /= float64(r.stride)
	}
	r.pts = append(r.pts, Point{T: r.accT, V: v})
	r.accN = 0
	if len(r.pts) >= r.capacity {
		r.compact()
	}
}

// compact folds adjacent point pairs, halving the buffer and doubling the
// stride. Each folded point keeps the later timestamp (samples are
// trailing-edge readings: the value as of T).
func (r *ring) compact() {
	half := len(r.pts) / 2
	for i := 0; i < half; i++ {
		a, b := r.pts[2*i], r.pts[2*i+1]
		v := (a.V + b.V) / 2
		if r.agg == aggMax && a.V > b.V {
			v = a.V
		} else if r.agg == aggMax {
			v = b.V
		}
		r.pts[i] = Point{T: b.T, V: v}
	}
	r.pts = r.pts[:half]
	r.stride *= 2
}

// points returns the buffered points plus the partial accumulator (so the
// tail of a run is never invisible), oldest first.
func (r *ring) points() []Point {
	out := append([]Point(nil), r.pts...)
	if r.accN > 0 {
		v := r.accV
		if r.agg == aggMean {
			v /= float64(r.accN)
		}
		out = append(out, Point{T: r.accT, V: v})
	}
	return out
}

// Series is one sampled time series: a metric's stat over virtual time.
type Series struct {
	Metric string // registry metric name
	Stat   string // "rate" | "level" | "p50" | "p95" | "p99"
	Unit   string // "/s" | "" | "ns"
	ring   ring
}

// Points returns the series' samples oldest-first. Downsampling may have
// folded early points; timestamps are always strictly increasing.
func (s *Series) Points() []Point { return s.ring.points() }

func (s *Series) push(t sim.Time, v float64) { s.ring.push(t, v) }

func sortSeries(ss []*Series) {
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].Metric != ss[j].Metric {
			return ss[i].Metric < ss[j].Metric
		}
		return ss[i].Stat < ss[j].Stat
	})
}

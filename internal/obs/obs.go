// Package obs is the deterministic virtual-time telemetry plane: a
// time-series sampler over the metric registry, SLO objectives with
// multi-window burn-rate alerting, and a bounded flight recorder for
// post-mortem dumps.
//
// Everything runs inside the simulation's own clock. A sampler tick is an
// engine-context callback scheduled with sim.Env.After, so sampling
// consumes no randomness (neither Env.Rand nor ForkRand is ever touched),
// reads metrics without mutating them, and reschedules itself only while
// the environment still has foreign events pending — an attached plane
// therefore never keeps a drain alive and never changes the order or
// content of workload events. With no Session active the package costs one
// nil check per call site, and every output it produces is a pure function
// of (seed, workload), byte-identical across re-runs.
//
// Layering: obs may import only internal/sim, internal/metrics, and
// internal/trace (the layering analyzer enforces this). It deliberately
// does not use sim.Env's ObserverContext — that slot belongs to the
// tracer — and instead keeps its own env→plane table in the Session.
package obs

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DefaultInterval is the sampling period used when Config.Interval is zero.
const DefaultInterval = 50 * time.Millisecond

// NoSampling disables the time-series sampler (and with it SLO evaluation)
// while keeping the flight recorder available.
const NoSampling = sim.Duration(-1)

// Config parameterises a Session. The zero value gives 50ms sampling,
// 240-point series rings, and a 512-event / 5s flight recorder.
type Config struct {
	Interval       sim.Duration // sampling period; 0 = DefaultInterval, NoSampling = off
	Capacity       int          // max points per series ring; 0 = 240
	RecorderCap    int          // max flight-recorder events per plane; 0 = 512
	RecorderWindow sim.Duration // Dump's lookback window; 0 = 5s
	Objectives     []Objective  // objectives installed on every attached plane
}

func (c Config) withDefaults() Config {
	if c.Interval == 0 {
		c.Interval = DefaultInterval
	}
	if c.Capacity <= 0 {
		c.Capacity = 240
	}
	if c.Capacity%2 != 0 {
		c.Capacity++
	}
	if c.RecorderCap <= 0 {
		c.RecorderCap = 512
	}
	if c.RecorderWindow <= 0 {
		c.RecorderWindow = 5 * time.Second
	}
	return c
}

// Session collects the telemetry planes of every environment attached
// while it is active — the same process-global discipline as
// trace.StartCollecting and fault.Activate, and safe for the same reason:
// the engine runs one process at a time.
type Session struct {
	cfg    Config
	planes []*Plane
	byEnv  map[*sim.Env]*Plane
	labels map[string]int
}

// activeSession is the process-wide session, or nil when obs is off.
var activeSession *Session

// Activate turns the telemetry plane on. Exactly one session may be active
// at a time; the caller must Deactivate when done.
func Activate(cfg Config) *Session {
	if activeSession != nil {
		panic("obs: a session is already active")
	}
	activeSession = &Session{
		cfg:    cfg.withDefaults(),
		byEnv:  make(map[*sim.Env]*Plane),
		labels: make(map[string]int),
	}
	return activeSession
}

// Deactivate turns the telemetry plane off. Attached planes keep their
// data. Safe to call on an already-deactivated session.
func (s *Session) Deactivate() {
	if activeSession == s {
		activeSession = nil
	}
}

// ActiveSession returns the active session, or nil when obs is off.
func ActiveSession() *Session { return activeSession }

// Planes returns the attached planes in attach order.
func (s *Session) Planes() []*Plane {
	if s == nil {
		return nil
	}
	return s.planes
}

// FlightDump concatenates every plane's recent flight-recorder window into
// one text block — the capture attached to chaos invariant violations.
// Empty when nothing was recorded; safe on a nil session.
func (s *Session) FlightDump() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	for _, pl := range s.planes {
		d := pl.rec.Dump(pl.env.Now())
		if d == "" {
			continue
		}
		fmt.Fprintf(&b, "plane %s\n", pl.label)
		b.WriteString(d)
	}
	return b.String()
}

// Attach creates a telemetry plane for env, sampling reg at the session's
// interval. Attaching the same environment twice returns the existing
// plane. Safe on a nil session, returning a nil plane on which every
// method is a no-op.
func (s *Session) Attach(env *sim.Env, reg *trace.Registry, label string) *Plane {
	if s == nil || env == nil {
		return nil
	}
	if pl, ok := s.byEnv[env]; ok {
		return pl
	}
	// Arms of a sweep often share a label ("pcsi/packed"); suffix repeats
	// so dashboard panels stay distinguishable.
	s.labels[label]++
	if n := s.labels[label]; n > 1 {
		label = fmt.Sprintf("%s#%d", label, n)
	}
	pl := &Plane{
		env:      env,
		reg:      reg,
		label:    label,
		interval: s.cfg.Interval,
		capacity: s.cfg.Capacity,
		byKey:    make(map[string]*Series),
		prevHist: make(map[string]metrics.HistSnapshot),
		prevCnt:  make(map[string]metrics.CounterSnapshot),
		rec:      newRecorder(s.cfg.RecorderCap, s.cfg.RecorderWindow),
	}
	pl.SetObjectives(s.cfg.Objectives...)
	s.byEnv[env] = pl
	s.planes = append(s.planes, pl)
	if pl.interval > 0 {
		env.After(pl.interval, pl.tick)
	}
	return pl
}

// Plane is the telemetry of one simulation environment: its sampled
// series, SLO objective states, alert log, and flight recorder.
type Plane struct {
	env      *sim.Env
	reg      *trace.Registry
	label    string
	interval sim.Duration
	capacity int

	series []*Series          // creation order
	byKey  map[string]*Series // metric+"|"+stat

	prevHist map[string]metrics.HistSnapshot
	prevCnt  map[string]metrics.CounterSnapshot
	// lastDelta holds each counter's count delta and each histogram's
	// window count for the tick just sampled; lastWindow holds the
	// histograms' windowed snapshots. Both feed SLO evaluation.
	lastDelta  map[string]float64
	lastWindow map[string]metrics.HistSnapshot

	objectives []*objectiveState
	alerts     []Alert
	rec        *Recorder
	samples    int
}

// Label returns the plane's display label.
func (pl *Plane) Label() string {
	if pl == nil {
		return ""
	}
	return pl.label
}

// SetLabel renames the plane — experiments use it to tell sweep arms
// apart. Safe on a nil plane.
func (pl *Plane) SetLabel(label string) {
	if pl == nil {
		return
	}
	pl.label = label
}

// Interval returns the sampling period.
func (pl *Plane) Interval() sim.Duration {
	if pl == nil {
		return 0
	}
	return pl.interval
}

// Samples returns the number of sampler ticks taken so far.
func (pl *Plane) Samples() int {
	if pl == nil {
		return 0
	}
	return pl.samples
}

// Recorder returns the plane's flight recorder (nil on a nil plane).
func (pl *Plane) Recorder() *Recorder {
	if pl == nil {
		return nil
	}
	return pl.rec
}

// Record appends a flight-recorder event stamped with the environment's
// current virtual time. Safe on a nil plane — instrumentation can call it
// unconditionally.
func (pl *Plane) Record(kind, name, detail string) {
	if pl == nil {
		return
	}
	pl.rec.Record(FlightEvent{At: pl.env.Now(), Kind: kind, Name: name, Detail: detail})
}

// tick runs one sampling round in engine context and reschedules itself
// while the environment still has other work queued. The pending check
// runs after this tick's event was popped and before the next one is
// pushed, so it counts only foreign events: the sampler stops — instead
// of ticking forever — as soon as it would be the only thing left, and a
// drain terminates exactly as it would without obs.
func (pl *Plane) tick() {
	now := pl.env.Now()
	pl.sample(now)
	pl.evaluate(now)
	if pl.env.Pending() > 0 {
		pl.env.After(pl.interval, pl.tick)
	}
}

// sample snapshots every registry metric into the plane's series rings.
func (pl *Plane) sample(now sim.Time) {
	pl.samples++
	if pl.lastDelta == nil {
		pl.lastDelta = make(map[string]float64)
		pl.lastWindow = make(map[string]metrics.HistSnapshot)
	} else {
		clear(pl.lastDelta)
		clear(pl.lastWindow)
	}
	for _, name := range pl.reg.Names() {
		switch m := pl.reg.Get(name).(type) {
		case *metrics.Counter:
			snap := m.Snapshot()
			d := snap.Delta(pl.prevCnt[name])
			pl.prevCnt[name] = snap
			pl.seriesFor(name, "rate", "/s", aggMean).push(now, pl.rate(float64(d.N)))
			pl.lastDelta[name] = float64(d.N)
		case *metrics.Gauge:
			pl.seriesFor(name, "level", "", aggMean).push(now, m.Snapshot().Level)
		case *metrics.Histogram:
			snap := m.Snapshot()
			win := snap.Delta(pl.prevHist[name])
			pl.prevHist[name] = snap
			pl.seriesFor(name, "rate", "/s", aggMean).push(now, pl.rate(float64(win.Total)))
			pl.lastDelta[name] = float64(win.Total)
			pl.lastWindow[name] = win
			if win.Total > 0 {
				pl.seriesFor(name, "p50", "ns", aggMax).push(now, float64(win.P50()))
				pl.seriesFor(name, "p95", "ns", aggMax).push(now, float64(win.P95()))
				pl.seriesFor(name, "p99", "ns", aggMax).push(now, float64(win.P99()))
			}
		}
	}
}

// rate converts a per-tick event count to events per second.
func (pl *Plane) rate(delta float64) float64 {
	return delta * 1e9 / float64(pl.interval.Nanoseconds())
}

func (pl *Plane) seriesFor(metric, stat, unit string, agg aggKind) *Series {
	key := metric + "|" + stat
	if s, ok := pl.byKey[key]; ok {
		return s
	}
	s := &Series{Metric: metric, Stat: stat, Unit: unit, ring: newRing(pl.capacity, agg)}
	pl.byKey[key] = s
	pl.series = append(pl.series, s)
	return s
}

// SeriesList returns the plane's series sorted by (metric, stat).
func (pl *Plane) SeriesList() []*Series {
	if pl == nil {
		return nil
	}
	out := append([]*Series(nil), pl.series...)
	sortSeries(out)
	return out
}

// SeriesData returns one series' points by metric name and stat
// ("rate", "level", "p50", "p95", "p99"), or nil when absent.
func (pl *Plane) SeriesData(metric, stat string) []Point {
	if pl == nil {
		return nil
	}
	s, ok := pl.byKey[metric+"|"+stat]
	if !ok {
		return nil
	}
	return s.Points()
}

package obs

import (
	"encoding/json"
	"io"
)

// Timeline is the machine-readable dump of one session: every plane's
// series, objective statuses, alerts, and flight events. All timestamps
// are virtual nanoseconds since the epoch; encoding uses sorted series
// and append-order logs only, so marshalling is byte-deterministic.
type Timeline struct {
	Experiment string          `json:"experiment"`
	Seed       int64           `json:"seed"`
	IntervalNS int64           `json:"interval_ns"`
	Planes     []PlaneTimeline `json:"planes"`
}

// PlaneTimeline is the dump of one environment's telemetry plane.
type PlaneTimeline struct {
	Label      string            `json:"label"`
	EndNS      int64             `json:"end_ns"`
	Series     []SeriesData      `json:"series"`
	Objectives []ObjectiveStatus `json:"objectives"`
	Alerts     []AlertData       `json:"alerts"`
	Flight     []FlightData      `json:"flight"`
}

// SeriesData is one sampled series.
type SeriesData struct {
	Metric string      `json:"metric"`
	Stat   string      `json:"stat"`
	Unit   string      `json:"unit"`
	Points []PointData `json:"points"`
}

// PointData is one sample.
type PointData struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// ObjectiveStatus summarises one objective's outcome.
type ObjectiveStatus struct {
	Name      string `json:"name"`
	Tenant    string `json:"tenant,omitempty"`
	Target    string `json:"target"`
	Fires     int    `json:"fires"`
	FirstFire int64  `json:"first_fire_ns"` // -1 when it never fired
}

// AlertData is one alert transition.
type AlertData struct {
	T         int64   `json:"t"`
	Objective string  `json:"objective"`
	Tenant    string  `json:"tenant,omitempty"`
	Kind      string  `json:"kind"`
	ShortBurn float64 `json:"short_burn"`
	LongBurn  float64 `json:"long_burn"`
}

// FlightData is one flight-recorder event.
type FlightData struct {
	T      int64  `json:"t"`
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	Detail string `json:"detail,omitempty"`
}

// Timeline assembles the session's planes into an exportable timeline.
func (s *Session) Timeline(experiment string, seed int64) *Timeline {
	tl := &Timeline{Experiment: experiment, Seed: seed}
	if s == nil {
		return tl
	}
	tl.IntervalNS = s.cfg.Interval.Nanoseconds()
	for _, pl := range s.planes {
		tl.Planes = append(tl.Planes, pl.timeline())
	}
	return tl
}

func (pl *Plane) timeline() PlaneTimeline {
	pt := PlaneTimeline{Label: pl.label, EndNS: int64(pl.env.Now())}
	for _, s := range pl.SeriesList() {
		sd := SeriesData{Metric: s.Metric, Stat: s.Stat, Unit: s.Unit}
		for _, p := range s.Points() {
			sd.Points = append(sd.Points, PointData{T: int64(p.T), V: p.V})
		}
		pt.Series = append(pt.Series, sd)
	}
	for _, o := range pl.Objectives() {
		st := ObjectiveStatus{Name: o.Name, Tenant: o.Tenant, Target: o.Target(), FirstFire: -1}
		for _, a := range pl.alerts {
			if a.Objective != o.Name || a.Kind != "fire" {
				continue
			}
			st.Fires++
			if st.FirstFire < 0 {
				st.FirstFire = int64(a.At)
			}
		}
		pt.Objectives = append(pt.Objectives, st)
	}
	for _, a := range pl.alerts {
		pt.Alerts = append(pt.Alerts, AlertData{
			T: int64(a.At), Objective: a.Objective, Tenant: a.Tenant,
			Kind: a.Kind, ShortBurn: a.ShortBurn, LongBurn: a.LongBurn,
		})
	}
	for _, ev := range pl.rec.Events() {
		pt.Flight = append(pt.Flight, FlightData{
			T: int64(ev.At), Kind: ev.Kind, Name: ev.Name, Detail: ev.Detail,
		})
	}
	return pt
}

// WriteJSON writes the timeline as indented JSON. Output is
// byte-deterministic: field order is fixed by the struct tags and float
// formatting by encoding/json's shortest-round-trip rule.
func (tl *Timeline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tl)
}

package obs

import (
	"fmt"
	"html"
	"io"
	"strings"
	"time"

	"repro/internal/metrics"
)

// WriteHTML renders the timeline as a self-contained static dashboard:
// no scripts, no external assets, inline SVG sparklines, one chart per
// series, an SLO panel and flight-recorder table per plane. Rendering is
// a pure function of the timeline, so the bytes are identical across
// re-runs of the same seed.
//
// Visual conventions follow the repo's chart rules: a single blue series
// per chart (the caption names it, so no legend), text in ink tokens
// rather than series colors, recessive hairline grid, and alert markers
// in the reserved status red paired with a textual SLO panel — color
// never carries the alert meaning alone. Light and dark palettes are both
// defined; the viewer's color scheme picks one.
func (tl *Timeline) WriteHTML(w io.Writer) error {
	var b strings.Builder
	b.WriteString("<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s telemetry (seed %d)</title>\n", html.EscapeString(tl.Experiment), tl.Seed)
	b.WriteString("<style>\n" + dashCSS + "</style>\n</head>\n<body class=\"viz-root\">\n")
	fmt.Fprintf(&b, "<h1>%s &middot; virtual-time telemetry</h1>\n", html.EscapeString(tl.Experiment))
	fmt.Fprintf(&b, "<p class=\"sub\">seed %d &middot; sampling interval %s &middot; deterministic render</p>\n",
		tl.Seed, time.Duration(tl.IntervalNS))
	for i := range tl.Planes {
		writePlane(&b, &tl.Planes[i])
	}
	b.WriteString("</body>\n</html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writePlane(b *strings.Builder, pt *PlaneTimeline) {
	fmt.Fprintf(b, "<section class=\"plane\">\n<h2>%s</h2>\n", html.EscapeString(pt.Label))
	writeSLOPanel(b, pt)
	if len(pt.Series) > 0 {
		b.WriteString("<div class=\"charts\">\n")
		for i := range pt.Series {
			writeChart(b, pt, &pt.Series[i])
		}
		b.WriteString("</div>\n")
	}
	writeFlight(b, pt)
	b.WriteString("</section>\n")
}

func writeSLOPanel(b *strings.Builder, pt *PlaneTimeline) {
	if len(pt.Objectives) == 0 {
		return
	}
	b.WriteString("<table class=\"slo\">\n<thead><tr><th>objective</th><th>tenant</th><th>target</th><th>status</th><th>first fire</th></tr></thead>\n<tbody>\n")
	for _, o := range pt.Objectives {
		status := "<span class=\"ok\">&#10003; ok</span>"
		first := "&mdash;"
		if o.Fires > 0 {
			status = fmt.Sprintf("<span class=\"fired\">&#10007; fired &times;%d</span>", o.Fires)
			first = html.EscapeString(fmtNS(o.FirstFire))
		}
		tenant := o.Tenant
		if tenant == "" {
			tenant = "&mdash;"
		} else {
			tenant = html.EscapeString(tenant)
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td class=\"target\">%s</td><td>%s</td><td class=\"num\">%s</td></tr>\n",
			html.EscapeString(o.Name), tenant, html.EscapeString(o.Target), status, first)
	}
	b.WriteString("</tbody>\n</table>\n")
}

// Chart geometry: a fixed 320x84 viewBox with an inset plot area.
const (
	chartW   = 320
	chartH   = 84
	plotX0   = 8
	plotX1   = 312
	plotY0   = 10
	plotY1   = 66
	axisWid  = plotX1 - plotX0
	axisHgt  = plotY1 - plotY0
	labelY   = 80 // x-axis label row
	chartCap = `<figcaption>%s <span class="stat">%s</span></figcaption>` + "\n"
)

func writeChart(b *strings.Builder, pt *PlaneTimeline, s *SeriesData) {
	b.WriteString("<figure class=\"chart\">\n")
	fmt.Fprintf(b, chartCap, html.EscapeString(s.Metric), html.EscapeString(s.Stat))
	fmt.Fprintf(b, "<svg viewBox=\"0 0 %d %d\" width=\"%d\" height=\"%d\" role=\"img\">\n", chartW, chartH, chartW, chartH)

	tMax := pt.EndNS
	if tMax <= 0 {
		tMax = 1
	}
	vMax := 0.0
	last := 0.0
	for _, p := range s.Points {
		if p.V > vMax {
			vMax = p.V
		}
		last = p.V
	}
	if vMax == 0 {
		vMax = 1
	}
	x := func(t int64) float64 { return plotX0 + float64(t)/float64(tMax)*axisWid }
	y := func(v float64) float64 { return plotY1 - v/vMax*axisHgt }

	// Recessive chrome: a top hairline gridline at the max and the baseline.
	fmt.Fprintf(b, "<line class=\"grid\" x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\"/>\n", plotX0, plotY0, plotX1, plotY0)
	fmt.Fprintf(b, "<line class=\"baseline\" x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\"/>\n", plotX0, plotY1, plotX1, plotY1)

	// Alert fire markers: status-red verticals behind the series line.
	for _, a := range pt.Alerts {
		if a.Kind != "fire" {
			continue
		}
		fmt.Fprintf(b, "<line class=\"alert\" x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%d\"><title>%s fired at %s</title></line>\n",
			x(a.T), plotY0, x(a.T), plotY1, html.EscapeString(a.Objective), html.EscapeString(fmtNS(a.T)))
	}

	if len(s.Points) == 1 {
		fmt.Fprintf(b, "<circle class=\"pt\" cx=\"%.1f\" cy=\"%.1f\" r=\"2\"/>\n", x(s.Points[0].T), y(s.Points[0].V))
	} else if len(s.Points) > 1 {
		b.WriteString("<polyline class=\"line\" points=\"")
		for i, p := range s.Points {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(b, "%.1f,%.1f", x(p.T), y(p.V))
		}
		b.WriteString("\"/>\n")
	}

	fmt.Fprintf(b, "<title>%s %s: max %s, last %s</title>\n",
		html.EscapeString(s.Metric), html.EscapeString(s.Stat),
		html.EscapeString(fmtVal(vMax, s.Unit)), html.EscapeString(fmtVal(last, s.Unit)))
	fmt.Fprintf(b, "<text class=\"lbl\" x=\"%d\" y=\"%d\">%s</text>\n", plotX0, plotY0-2, html.EscapeString(fmtVal(vMax, s.Unit)))
	fmt.Fprintf(b, "<text class=\"lbl\" x=\"%d\" y=\"%d\">0</text>\n", plotX0, labelY)
	fmt.Fprintf(b, "<text class=\"lbl end\" x=\"%d\" y=\"%d\">%s</text>\n", plotX1, labelY, html.EscapeString(fmtNS(tMax)))
	b.WriteString("</svg>\n")
	fmt.Fprintf(b, "<div class=\"val\">last %s</div>\n", html.EscapeString(fmtVal(last, s.Unit)))
	b.WriteString("</figure>\n")
}

func writeFlight(b *strings.Builder, pt *PlaneTimeline) {
	if len(pt.Flight) == 0 {
		return
	}
	fmt.Fprintf(b, "<details class=\"flight\"><summary>flight recorder &middot; %d event(s)</summary>\n", len(pt.Flight))
	b.WriteString("<table>\n<thead><tr><th>t</th><th>kind</th><th>event</th><th>detail</th></tr></thead>\n<tbody>\n")
	for _, ev := range pt.Flight {
		fmt.Fprintf(b, "<tr><td class=\"num\">%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
			html.EscapeString(fmtNS(ev.T)), html.EscapeString(ev.Kind),
			html.EscapeString(ev.Name), html.EscapeString(ev.Detail))
	}
	b.WriteString("</tbody>\n</table>\n</details>\n")
}

// fmtNS renders a virtual timestamp compactly.
func fmtNS(ns int64) string { return metrics.FmtDuration(time.Duration(ns)) }

// fmtVal renders a sample in its series unit.
func fmtVal(v float64, unit string) string {
	switch unit {
	case "ns":
		return metrics.FmtDuration(time.Duration(v))
	case "/s":
		return fmt.Sprintf("%.0f/s", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// dashCSS holds the palette (light and dark steps of the same ramps) and
// the chart chrome. Series color is categorical slot 1; alert markers use
// the reserved status-critical step; all text wears ink tokens.
const dashCSS = `:root { color-scheme: light dark; }
body.viz-root {
  --page: #f9f9f7; --surface-1: #fcfcfb;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7; --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --critical: #d03b3b; --good: #006300;
  margin: 24px; background: var(--page); color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
@media (prefers-color-scheme: dark) {
  body.viz-root {
    --page: #0d0d0d; --surface-1: #1a1a19;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --grid: #2c2c2a; --baseline: #383835; --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --good: #0ca30c;
  }
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 24px 0 8px; }
.sub { color: var(--text-secondary); margin: 0 0 16px; }
.plane { margin-bottom: 8px; }
table { border-collapse: collapse; background: var(--surface-1); border: 1px solid var(--border); border-radius: 6px; }
th, td { padding: 4px 10px; text-align: left; font-size: 13px; border-top: 1px solid var(--grid); }
thead th { color: var(--text-secondary); font-weight: 500; border-top: none; }
td.num { font-variant-numeric: tabular-nums; }
td.target { color: var(--text-secondary); }
.ok { color: var(--good); }
.fired { color: var(--critical); font-weight: 600; }
.charts { display: flex; flex-wrap: wrap; gap: 12px; margin-top: 12px; }
.chart { margin: 0; padding: 8px 8px 4px; background: var(--surface-1); border: 1px solid var(--border); border-radius: 6px; }
.chart figcaption { font-size: 12px; color: var(--text-primary); margin-bottom: 2px; }
.chart .stat { color: var(--text-secondary); }
.chart .val { font-size: 11px; color: var(--text-secondary); text-align: right; }
svg .line { fill: none; stroke: var(--series-1); stroke-width: 2; stroke-linejoin: round; }
svg .pt { fill: var(--series-1); }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg .baseline { stroke: var(--baseline); stroke-width: 1; }
svg .alert { stroke: var(--critical); stroke-width: 1.5; }
svg .lbl { fill: var(--muted); font-size: 9px; }
svg .lbl.end { text-anchor: end; }
.flight { margin-top: 12px; }
.flight summary { cursor: pointer; color: var(--text-secondary); font-size: 13px; }
.flight table { margin-top: 8px; }
`

package obs

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// FlightEvent is one entry in the flight recorder: a shed, fault, alert,
// or any other notable instant worth having around when something breaks.
type FlightEvent struct {
	At     sim.Time
	Kind   string // "shed" | "fault" | "alert" | ...
	Name   string
	Detail string
}

func (e FlightEvent) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("%12s %-6s %s", e.At, e.Kind, e.Name)
	}
	return fmt.Sprintf("%12s %-6s %s (%s)", e.At, e.Kind, e.Name, e.Detail)
}

// Recorder is a bounded ring of recent flight events. When full, the
// oldest event is evicted; Dropped counts evictions so a dump can say how
// much history was lost.
type Recorder struct {
	capacity int
	window   sim.Duration
	buf      []FlightEvent
	start    int // index of the oldest event
	n        int // live events
	dropped  int64
}

func newRecorder(capacity int, window sim.Duration) *Recorder {
	return &Recorder{capacity: capacity, window: window, buf: make([]FlightEvent, capacity)}
}

// Record appends an event, evicting the oldest when full. Safe on a nil
// recorder.
func (r *Recorder) Record(ev FlightEvent) {
	if r == nil {
		return
	}
	if r.n == r.capacity {
		r.buf[r.start] = ev
		r.start = (r.start + 1) % r.capacity
		r.dropped++
		return
	}
	r.buf[(r.start+r.n)%r.capacity] = ev
	r.n++
}

// Len returns the number of buffered events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Dropped returns how many events were evicted to make room.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Events returns the buffered events oldest-first.
func (r *Recorder) Events() []FlightEvent {
	if r == nil {
		return nil
	}
	out := make([]FlightEvent, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.start+i)%r.capacity])
	}
	return out
}

// Recent returns the buffered events within the recorder's lookback
// window ending at now, oldest-first — the "last five virtual seconds"
// view a dump wants.
func (r *Recorder) Recent(now sim.Time) []FlightEvent {
	if r == nil {
		return nil
	}
	cutoff := now.Add(-r.window)
	evs := r.Events()
	i := 0
	for i < len(evs) && evs[i].At < cutoff {
		i++
	}
	return evs[i:]
}

// Dump renders the recent window as indented text lines — the capture
// attached to chaos invariant violations and pcsictl output.
func (r *Recorder) Dump(now sim.Time) string {
	evs := r.Recent(now)
	if len(evs) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder: last %d event(s)", len(evs))
	if d := r.Dropped(); d > 0 {
		fmt.Fprintf(&b, " (%d older evicted)", d)
	}
	b.WriteByte('\n')
	for _, ev := range evs {
		b.WriteString("  ")
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}

package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestPoissonMeanRate(t *testing.T) {
	env := sim.NewEnv(1)
	p := NewPoisson(env, 100) // 100/s
	var total time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		total += p.Next()
	}
	mean := total / n
	want := 10 * time.Millisecond
	if mean < want*9/10 || mean > want*11/10 {
		t.Errorf("mean gap = %v, want ~%v", mean, want)
	}
}

func TestPoissonZeroRate(t *testing.T) {
	env := sim.NewEnv(1)
	p := NewPoisson(env, 0)
	if p.Next() <= 0 {
		t.Error("zero-rate process returned non-positive gap")
	}
}

func TestPoissonDeterministicBySeed(t *testing.T) {
	a := NewPoisson(sim.NewEnv(7), 50)
	b := NewPoisson(sim.NewEnv(7), 50)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestBurstyAlternates(t *testing.T) {
	env := sim.NewEnv(2)
	b := NewBursty(env, 10, 1000, time.Second, time.Second)
	// Count arrivals over simulated phases: burst phases must be much
	// denser.
	var gaps []time.Duration
	var total time.Duration
	for total < 10*time.Second {
		g := b.Next()
		gaps = append(gaps, g)
		total += g
	}
	// Average rate should land between base and peak.
	rate := float64(len(gaps)) / total.Seconds()
	if rate < 20 || rate > 900 {
		t.Errorf("overall rate = %.1f/s, want between base and peak", rate)
	}
}

func TestDiurnalRateVaries(t *testing.T) {
	env := sim.NewEnv(3)
	d := NewDiurnal(env, 10, 100, 24*time.Hour)
	lo, hi := math.Inf(1), math.Inf(-1)
	for h := 0; h < 24; h++ {
		r := d.RateAt(sim.Time(time.Duration(h) * time.Hour))
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if lo < 10-0.5 || hi > 100+0.5 {
		t.Errorf("rate range [%.1f, %.1f] outside [10, 100]", lo, hi)
	}
	if hi-lo < 50 {
		t.Errorf("diurnal swing too small: [%.1f, %.1f]", lo, hi)
	}
}

func TestZipfSkew(t *testing.T) {
	env := sim.NewEnv(4)
	z := NewZipf(env, 1000, 1.2)
	counts := make(map[uint64]int)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[z.Pick()]++
	}
	// Head item should dominate the 100th item by a wide margin.
	if counts[0] < 10*counts[100]+1 {
		t.Errorf("head %d vs item-100 %d: insufficient skew", counts[0], counts[100])
	}
}

func TestLogNormalSizesClamped(t *testing.T) {
	env := sim.NewEnv(5)
	s := NewLogNormalSizes(env, 4096, 1.5, 64, 1<<20)
	var sum float64
	for i := 0; i < 10000; i++ {
		n := s.Next()
		if n < 64 || n > 1<<20 {
			t.Fatalf("size %d outside clamp", n)
		}
		sum += float64(n)
	}
	mean := sum / 10000
	if mean < 1024 || mean > 128*1024 {
		t.Errorf("mean size %.0f implausible for median 4096", mean)
	}
}

func TestFixedSize(t *testing.T) {
	if FixedSize(777).Next() != 777 {
		t.Error("FixedSize broken")
	}
}

func TestRunDrivesHandlers(t *testing.T) {
	env := sim.NewEnv(6)
	p := NewPoisson(env, 1000) // ~1000/s for 1s ⇒ ~1000 arrivals
	count := 0
	var last sim.Time
	Run(env, p, sim.Time(time.Second), func(proc *sim.Proc, seq int) {
		count++
		last = proc.Now()
	})
	env.Run()
	if count < 800 || count > 1200 {
		t.Errorf("arrivals = %d, want ~1000", count)
	}
	if last > sim.Time(time.Second) {
		t.Errorf("arrival after end time: %v", last)
	}
}

func TestRunRespectsEndTime(t *testing.T) {
	env := sim.NewEnv(7)
	p := NewPoisson(env, 10)
	count := 0
	Run(env, p, 0, func(proc *sim.Proc, seq int) { count++ })
	env.Run()
	if count != 0 {
		t.Errorf("arrivals = %d with zero window", count)
	}
}

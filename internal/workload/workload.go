// Package workload generates synthetic load for the experiments: arrival
// processes (Poisson, bursty, diurnal), Zipf-skewed object popularity, and
// size distributions. Each generator holds its own stream forked from the
// sim.Env seed (sim.Env.ForkRand), so experiments are reproducible by seed
// and a generator's draw sequence does not depend on what else runs in the
// environment.
package workload

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/sim"
)

// Arrivals yields successive inter-arrival gaps.
type Arrivals interface {
	// Next returns the gap before the next arrival.
	Next() time.Duration
}

// Poisson is an open-loop Poisson arrival process at a fixed mean rate.
type Poisson struct {
	rng  *rand.Rand
	rate float64 // arrivals per second
}

// NewPoisson returns a Poisson process at ratePerSec.
func NewPoisson(env *sim.Env, ratePerSec float64) *Poisson {
	return &Poisson{rng: env.ForkRand("workload.poisson"), rate: ratePerSec}
}

// Next implements Arrivals with exponential gaps.
func (p *Poisson) Next() time.Duration {
	if p.rate <= 0 {
		return time.Hour
	}
	gap := p.rng.ExpFloat64() / p.rate
	return time.Duration(gap * float64(time.Second))
}

// Bursty alternates between a base rate and burst-rate episodes.
type Bursty struct {
	rng        *rand.Rand
	base, peak *Poisson
	burstLen   time.Duration
	quietLen   time.Duration
	inBurst    bool
	phaseLeft  time.Duration
}

// NewBursty returns a process that runs at baseRate, jumping to peakRate
// for burstLen out of every burstLen+quietLen.
func NewBursty(env *sim.Env, baseRate, peakRate float64, burstLen, quietLen time.Duration) *Bursty {
	return &Bursty{
		rng:      env.ForkRand("workload.bursty"),
		base:     NewPoisson(env, baseRate),
		peak:     NewPoisson(env, peakRate),
		burstLen: burstLen, quietLen: quietLen,
		phaseLeft: quietLen,
	}
}

// Next implements Arrivals.
func (b *Bursty) Next() time.Duration {
	var gap time.Duration
	if b.inBurst {
		gap = b.peak.Next()
	} else {
		gap = b.base.Next()
	}
	b.phaseLeft -= gap
	for b.phaseLeft <= 0 {
		b.inBurst = !b.inBurst
		if b.inBurst {
			b.phaseLeft += b.burstLen
		} else {
			b.phaseLeft += b.quietLen
		}
	}
	return gap
}

// Diurnal modulates a Poisson process sinusoidally over a period,
// approximating day/night load swings; rate varies between low and high.
type Diurnal struct {
	rng       *rand.Rand
	env       *sim.Env
	low, high float64
	period    time.Duration
}

// NewDiurnal returns a diurnal process.
func NewDiurnal(env *sim.Env, lowRate, highRate float64, period time.Duration) *Diurnal {
	return &Diurnal{rng: env.ForkRand("workload.diurnal"), env: env, low: lowRate, high: highRate, period: period}
}

// RateAt returns the instantaneous rate at virtual time t.
func (d *Diurnal) RateAt(t sim.Time) float64 {
	phase := 2 * math.Pi * float64(t) / float64(d.period)
	return d.low + (d.high-d.low)*(1+math.Sin(phase))/2
}

// Next implements Arrivals using the rate at the current virtual time.
func (d *Diurnal) Next() time.Duration {
	r := d.RateAt(d.env.Now())
	if r <= 0 {
		return d.period / 100
	}
	gap := d.rng.ExpFloat64() / r
	return time.Duration(gap * float64(time.Second))
}

// Zipf picks item indices in [0, n) with Zipfian skew; s > 1 sharpens the
// head. Used for object popularity.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf returns a Zipf picker over n items with exponent s (s > 1).
func NewZipf(env *sim.Env, n uint64, s float64) *Zipf {
	return &Zipf{z: rand.NewZipf(env.ForkRand("workload.zipf"), s, 1, n-1)}
}

// Pick returns an item index; index 0 is the most popular.
func (z *Zipf) Pick() uint64 { return z.z.Uint64() }

// Sizes yields request payload sizes.
type Sizes interface {
	// Next returns the next payload size in bytes.
	Next() int
}

// FixedSize always returns the same size.
type FixedSize int

// Next implements Sizes.
func (f FixedSize) Next() int { return int(f) }

// LogNormalSizes draws sizes from a log-normal distribution (the shape of
// real object-store traces), clamped to [min, max].
type LogNormalSizes struct {
	rng      *rand.Rand
	mu       float64 // log-space mean
	sigma    float64
	min, max int
}

// NewLogNormalSizes returns a log-normal size distribution with the given
// median and sigma (log-space), clamped to [min, max].
func NewLogNormalSizes(env *sim.Env, median int, sigma float64, min, max int) *LogNormalSizes {
	return &LogNormalSizes{rng: env.ForkRand("workload.sizes"), mu: math.Log(float64(median)), sigma: sigma, min: min, max: max}
}

// Next implements Sizes.
func (l *LogNormalSizes) Next() int {
	v := math.Exp(l.mu + l.sigma*l.rng.NormFloat64())
	n := int(v)
	if n < l.min {
		n = l.min
	}
	if n > l.max {
		n = l.max
	}
	return n
}

// Run drives an open-loop workload: it spawns handler processes according
// to the arrival process until the end time. handler receives the arrival
// sequence number.
func Run(env *sim.Env, arr Arrivals, until sim.Time, handler func(p *sim.Proc, seq int)) {
	env.Go("workload", func(p *sim.Proc) {
		seq := 0
		for {
			gap := arr.Next()
			if p.Now().Add(gap) > until {
				return
			}
			p.Sleep(gap)
			seq++
			n := seq
			env.Go("req", func(rp *sim.Proc) { handler(rp, n) })
		}
	})
}

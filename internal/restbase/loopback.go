package restbase

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
)

// Real (wall-clock) loopback services backing the measured rows of
// Table 1: an HTTP object server and a raw TCP echo server. The Table 1
// benchmarks compare a loopback HTTP round trip against a raw socket
// round trip against an in-process call, reproducing the paper's
// HTTP-protocol and socket-overhead rows without a testbed.

// LoopbackHTTP is a real net/http server on 127.0.0.1 serving an
// in-memory object.
type LoopbackHTTP struct {
	srv  *http.Server
	ln   net.Listener
	mu   sync.RWMutex
	data []byte
	// Client is a keep-alive HTTP client bound to the server.
	Client *http.Client
	url    string
}

// NewLoopbackHTTP starts the server with the given object payload.
func NewLoopbackHTTP(payload []byte) (*LoopbackHTTP, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	l := &LoopbackHTTP{ln: ln, data: append([]byte(nil), payload...)}
	mux := http.NewServeMux()
	mux.HandleFunc("/object", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			l.mu.RLock()
			defer l.mu.RUnlock()
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(l.data) //nolint:errcheck
		case http.MethodPut:
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			l.mu.Lock()
			l.data = body
			l.mu.Unlock()
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method", http.StatusMethodNotAllowed)
		}
	})
	l.srv = &http.Server{Handler: mux}
	l.url = fmt.Sprintf("http://%s/object", ln.Addr())
	l.Client = &http.Client{}
	go l.srv.Serve(ln) //nolint:errcheck
	return l, nil
}

// URL returns the object endpoint.
func (l *LoopbackHTTP) URL() string { return l.url }

// Get performs one real HTTP GET and returns the body length.
func (l *LoopbackHTTP) Get() (int, error) {
	resp, err := l.Client.Get(l.url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	n, err := io.Copy(io.Discard, resp.Body)
	return int(n), err
}

// Close shuts the server down.
func (l *LoopbackHTTP) Close() error { return l.srv.Close() }

// LoopbackTCP is a raw TCP echo server for measuring socket round trips
// without HTTP framing.
type LoopbackTCP struct {
	ln   net.Listener
	conn net.Conn // persistent client connection
}

// NewLoopbackTCP starts the echo server and opens one client connection.
func NewLoopbackTCP() (*LoopbackTCP, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	l := &LoopbackTCP{ln: ln}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 64*1024)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		ln.Close() //nolint:errcheck
		return nil, err
	}
	l.conn = conn
	return l, nil
}

// RoundTrip writes payload and reads it back on the persistent
// connection: one socket round trip.
func (l *LoopbackTCP) RoundTrip(payload, buf []byte) error {
	if _, err := l.conn.Write(payload); err != nil {
		return err
	}
	total := 0
	for total < len(payload) {
		n, err := l.conn.Read(buf[total:len(payload)])
		if err != nil {
			return err
		}
		total += n
	}
	return nil
}

// DialRoundTrip opens a fresh connection for a single round trip — the
// stateless pattern, measuring connection setup cost.
func (l *LoopbackTCP) DialRoundTrip(payload, buf []byte) error {
	c, err := net.Dial("tcp", l.ln.Addr().String())
	if err != nil {
		return err
	}
	defer c.Close()
	if _, err := c.Write(payload); err != nil {
		return err
	}
	total := 0
	for total < len(payload) {
		n, err := c.Read(buf[total:len(payload)])
		if err != nil {
			return err
		}
		total += n
	}
	return nil
}

// Close shuts everything down.
func (l *LoopbackTCP) Close() error {
	if l.conn != nil {
		l.conn.Close() //nolint:errcheck
	}
	return l.ln.Close()
}

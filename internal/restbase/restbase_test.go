package restbase

import (
	"errors"
	"testing"
	"time"

	"repro/internal/consistency"
	"repro/internal/media"
	"repro/internal/object"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/wire"
)

func testGateway(seed int64, cfg Config) (*sim.Env, *Gateway, simnet.NodeID) {
	env := sim.NewEnv(seed)
	net := simnet.New(env, simnet.DC2021)
	var nodes []simnet.NodeID
	for i := 0; i < 3; i++ {
		nodes = append(nodes, net.AddNode(i))
	}
	grp := consistency.NewGroup(env, net, nodes, media.DRAM)
	gw := NewGateway(net, grp, cfg)
	client := net.AddNode(2)
	return env, gw, client
}

func TestGetPutRoundTrip(t *testing.T) {
	env, gw, client := testGateway(1, DefaultConfig())
	env.Go("c", func(p *sim.Proc) {
		id, err := gw.Create(p, client, "tok", object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		if err := gw.Put(p, client, "tok", id, []byte("value"), consistency.Linearizable); err != nil {
			t.Error(err)
			return
		}
		got, err := gw.Get(p, client, "tok", id, consistency.Linearizable)
		if err != nil || string(got) != "value" {
			t.Errorf("Get = %q, %v", got, err)
		}
	})
	env.Run()
	if gw.Requests.Value() != 3 {
		t.Errorf("Requests = %d, want 3", gw.Requests.Value())
	}
}

func TestAuthRequiredEveryRequest(t *testing.T) {
	env, gw, client := testGateway(2, DefaultConfig())
	env.Go("c", func(p *sim.Proc) {
		if _, err := gw.Create(p, client, "", object.Regular); !errors.Is(err, ErrAuth) {
			t.Errorf("unauthenticated create err = %v", err)
		}
		id, err := gw.Create(p, client, "tok", object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 5; i++ {
			if _, err := gw.Get(p, client, "tok", id, consistency.Eventual); err != nil {
				t.Error(err)
			}
		}
	})
	env.Run()
	// Statelessness: one auth check per request (1 failed + 1 create + 5
	// gets).
	if gw.AuthChecks != 7 {
		t.Errorf("AuthChecks = %d, want 7 (one per request)", gw.AuthChecks)
	}
}

func TestProtocolOverheadDominatesOnFastNet(t *testing.T) {
	// §2.1's argument: on an emerging fast network (1µs RTT), the REST
	// protocol overhead alone is orders of magnitude above the RTT.
	gw := &Gateway{cfg: DefaultConfig()}
	overhead := gw.ProtocolOverhead(1024)
	if overhead < 100*simnet.FastNet.BaseRTT {
		t.Errorf("protocol overhead %v not ≫ FastNet RTT %v", overhead, simnet.FastNet.BaseRTT)
	}
}

func TestKeepAliveAblation(t *testing.T) {
	slow := DefaultConfig()
	fast := DefaultConfig()
	fast.ReuseConnections = true
	envA, gwA, clientA := testGateway(3, slow)
	envB, gwB, clientB := testGateway(3, fast)
	var latA, latB time.Duration
	runOne := func(env *sim.Env, gw *Gateway, client simnet.NodeID, out *time.Duration) {
		env.Go("c", func(p *sim.Proc) {
			id, err := gw.Create(p, client, "tok", object.Regular)
			if err != nil {
				t.Error(err)
				return
			}
			start := p.Now()
			if _, err := gw.Get(p, client, "tok", id, consistency.Eventual); err != nil {
				t.Error(err)
			}
			*out = p.Now().Sub(start)
		})
		env.Run()
	}
	runOne(envA, gwA, clientA, &latA)
	runOne(envB, gwB, clientB, &latB)
	if latB >= latA {
		t.Errorf("keep-alive (%v) not faster than per-request connections (%v)", latB, latA)
	}
}

func TestBinaryCodecAblation(t *testing.T) {
	jsonCfg := DefaultConfig()
	binCfg := DefaultConfig()
	binCfg.Codec = wire.BinaryCodec{}
	big := make([]byte, 64*1024)
	var latJSON, latBin time.Duration
	for i, cfg := range []Config{jsonCfg, binCfg} {
		env, gw, client := testGateway(4, cfg)
		out := []*time.Duration{&latJSON, &latBin}[i]
		env.Go("c", func(p *sim.Proc) {
			id, err := gw.Create(p, client, "tok", object.Regular)
			if err != nil {
				t.Error(err)
				return
			}
			if err := gw.Put(p, client, "tok", id, big, consistency.Eventual); err != nil {
				t.Error(err)
				return
			}
			start := p.Now()
			if _, err := gw.Get(p, client, "tok", id, consistency.Eventual); err != nil {
				t.Error(err)
			}
			*out = p.Now().Sub(start)
		})
		env.Run()
	}
	if latBin >= latJSON {
		t.Errorf("binary codec (%v) not faster than JSON (%v) at 64KB", latBin, latJSON)
	}
}

func TestGetMissingObject(t *testing.T) {
	env, gw, client := testGateway(5, DefaultConfig())
	env.Go("c", func(p *sim.Proc) {
		if _, err := gw.Get(p, client, "tok", object.ID(999), consistency.Eventual); err == nil {
			t.Error("get of missing object succeeded")
		}
	})
	env.Run()
}

func TestMeterCharges(t *testing.T) {
	env, gw, client := testGateway(6, DefaultConfig())
	env.Go("c", func(p *sim.Proc) {
		id, err := gw.Create(p, client, "tok", object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		if err := gw.Put(p, client, "tok", id, make([]byte, 1024), consistency.Linearizable); err != nil {
			t.Error(err)
			return
		}
		if _, err := gw.Get(p, client, "tok", id, consistency.Linearizable); err != nil {
			t.Error(err)
		}
	})
	env.Run()
	if gw.Meter.Line("read") <= 0 || gw.Meter.Line("write") <= 0 {
		t.Errorf("meter lines: read=%v write=%v", gw.Meter.Line("read"), gw.Meter.Line("write"))
	}
}

func TestLoopbackHTTPRealRoundTrip(t *testing.T) {
	srv, err := NewLoopbackHTTP(make([]byte, 1024))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	n, err := srv.Get()
	if err != nil || n != 1024 {
		t.Fatalf("Get = %d, %v", n, err)
	}
}

func TestLoopbackTCPRealRoundTrip(t *testing.T) {
	srv, err := NewLoopbackTCP()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	payload := []byte("ping-payload-64-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")
	buf := make([]byte, len(payload))
	if err := srv.RoundTrip(payload, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(payload) {
		t.Error("echo mismatch")
	}
	if err := srv.DialRoundTrip(payload, buf); err != nil {
		t.Fatal(err)
	}
}

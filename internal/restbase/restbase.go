// Package restbase implements the web-services baseline of §2.1: a
// stateless REST gateway in front of the replicated store.
//
// Every request pays the costs the paper attributes to today's cloud
// APIs, each row traceable to Table 1:
//
//   - per-request connection establishment (statelessness ⇒ no session):
//     socket overhead (5 µs) plus a TCP handshake round trip;
//   - HTTP protocol processing (50 µs);
//   - JSON envelope marshaling (>50 µs per KB);
//   - per-request authentication and access-control re-checks against a
//     remote auth service ("statelessness ... has consequences such as
//     repeated access control checks");
//   - internal request routing hops (load balancer, request router)
//     before the storage backend is reached.
//
// The same package also provides real (wall-clock) loopback HTTP and TCP
// helpers used by the Table 1 measured benchmarks.
package restbase

import (
	"errors"
	"time"

	"repro/internal/consistency"
	"repro/internal/cost"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/object"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Table 1 calibrated protocol constants.
const (
	// SocketOverhead is Table 1's "Socket overhead: 5,000 ns", paid on
	// every connection the stateless protocol opens.
	SocketOverhead = 5 * time.Microsecond
	// HTTPOverhead is Table 1's "HTTP protocol: 50,000 ns", paid per
	// request and per response.
	HTTPOverhead = 50 * time.Microsecond
)

// ErrAuth is returned when the per-request credential check fails.
var ErrAuth = errors.New("restbase: authentication failed")

// ErrThrottled is the opaque 429 of §2.1's web-services world: the
// gateway says only "slow down", carrying no queue state, no retry
// budget, no per-tenant signal. Clients invariably answer with retries —
// the amplification loop E13 measures. Contrast qos.ErrOverload, which
// the retry layer classifies as a final answer.
var ErrThrottled = errors.New("restbase: too many requests (429)")

// Config tunes a Gateway.
type Config struct {
	// Codec marshals requests and responses (JSON for the REST baseline).
	Codec wire.Codec
	// RoutingHops is the number of internal hops (LB, request router)
	// between the front door and storage.
	RoutingHops int
	// PerHopProcess is the service time at each internal hop.
	PerHopProcess time.Duration
	// AuthCheck is the service time of the auth service's validation.
	AuthCheck time.Duration
	// Book prices requests.
	Book cost.Book
	// ReuseConnections enables keep-alive (ablation: isolates the
	// connection-setup share of the overhead).
	ReuseConnections bool
	// RawBody streams payloads as raw HTTP bodies (object-store style):
	// only the envelope is marshaled. When false the body rides inside
	// the JSON envelope (KV-API style), paying marshal cost on every
	// byte.
	RawBody bool
	// Workers bounds the gateway's application worker pool: requests past
	// connect/auth/routing queue FIFO for a worker. 0 (the default) keeps
	// the historical unbounded gateway byte-identical.
	Workers int
	// AppExec is the per-request application service time a worker spends
	// beyond the storage op (only meaningful with Workers > 0).
	AppExec time.Duration
	// MaxInflight caps workers-in-use plus queued requests; beyond it the
	// gateway answers ErrThrottled — the opaque 429. 0 = never throttle.
	MaxInflight int
	// RejectCost is the worker time spent producing each 429 (the reject
	// path still parses, authenticates, and formats an error response).
	// This is what melts real gateways under retry storms: rejections
	// compete with useful work for the same workers.
	RejectCost time.Duration
}

// DefaultConfig returns the REST baseline configuration.
func DefaultConfig() Config {
	return Config{
		Codec:         wire.JSONCodec{},
		RoutingHops:   2,
		PerHopProcess: 300 * time.Microsecond,
		AuthCheck:     50 * time.Microsecond,
		Book:          cost.DynamoBook,
	}
}

// Gateway is a simulated REST front door over a replicated store.
type Gateway struct {
	cfg  Config
	env  *sim.Env
	net  *simnet.Network
	grp  *consistency.Group
	node simnet.NodeID // front door
	auth simnet.NodeID // auth service

	// workers is the bounded application pool (nil when Workers == 0).
	workers *sim.Resource

	// Metrics.
	Requests *metrics.Counter
	Lat      *metrics.Histogram
	Meter    *cost.Meter
	// Throttled counts 429 responses (E13's overload baseline).
	Throttled *metrics.Counter
	// AuthChecks counts remote credential validations (E8).
	AuthChecks int64
}

// NewGateway attaches a gateway (in rack 0) to the given replicated store.
func NewGateway(net *simnet.Network, grp *consistency.Group, cfg Config) *Gateway {
	if cfg.Codec == nil {
		cfg.Codec = wire.JSONCodec{}
	}
	trace.Of(net.Env()).SetLabel("rest")
	g := &Gateway{
		cfg:       cfg,
		env:       net.Env(),
		net:       net,
		grp:       grp,
		node:      net.AddNode(0),
		auth:      net.AddNode(1),
		Requests:  metrics.NewCounter("rest_requests"),
		Lat:       metrics.NewHistogram("rest_latency"),
		Meter:     cost.NewMeter("rest"),
		Throttled: metrics.NewCounter("rest_throttled"),
	}
	if cfg.Workers > 0 {
		g.workers = g.env.NewResource("rest-workers", int64(cfg.Workers))
	}
	return g
}

// Node returns the gateway's front-door node.
func (g *Gateway) Node() simnet.NodeID { return g.node }

// connect pays connection establishment unless keep-alive is on.
func (g *Gateway) connect(p *sim.Proc, client simnet.NodeID) {
	if g.cfg.ReuseConnections {
		return
	}
	// TCP handshake: one full round trip plus socket setup at both ends.
	p.Sleep(2 * SocketOverhead)
	p.Sleep(g.net.RTT(client, g.node))
}

// authenticate re-validates the bearer token against the remote auth
// service — the stateless API cannot remember prior checks.
func (g *Gateway) authenticate(p *sim.Proc, creds string) error {
	g.AuthChecks++
	g.net.Send(p, g.node, g.auth, 256)
	p.Sleep(g.cfg.AuthCheck)
	g.net.Send(p, g.auth, g.node, 64)
	if creds == "" {
		return ErrAuth
	}
	return nil
}

// route pays the internal routing hops between front door and storage.
func (g *Gateway) route(p *sim.Proc) {
	for i := 0; i < g.cfg.RoutingHops; i++ {
		p.Sleep(g.net.Profile().BaseRTT) // hop round trip inside the fabric
		p.Sleep(g.cfg.PerHopProcess)
	}
}

// request runs the common protocol path around op, charging overheads for
// a request with reqBody bytes in and respBody bytes out. Traced runs
// decompose the request into the paper's §2.1 cost components: connect,
// marshal, HTTP processing, auth, routing, then the storage op itself.
func (g *Gateway) request(p *sim.Proc, client simnet.NodeID, creds string, reqBody, respBody int, op func() error) error {
	tr := trace.Of(g.env)
	sp := tr.Start(p, "rest", "request", trace.Int("client", int64(client)))
	defer sp.Close(p)
	start := p.Now()
	g.Requests.Inc()
	if err := fault.Of(g.env).OpFault(p, "rest.request"); err != nil {
		sp.Annotate(trace.Str("err", err.Error()))
		return err
	}
	csp := tr.Start(p, "rest.connect", "connect")
	g.connect(p, client)
	csp.Close(p)
	// Request: marshal at client, send, HTTP parse at gateway.
	msp := tr.Start(p, "rest.marshal", "marshal")
	p.Sleep(g.cfg.Codec.ModelCost(g.codedBytes(reqBody)))
	msp.Close(p)
	g.net.Send(p, client, g.node, 512+reqBody)
	hsp := tr.Start(p, "rest.http", "http")
	p.Sleep(HTTPOverhead)
	hsp.Close(p)
	asp := tr.Start(p, "rest.auth", "auth")
	err := g.authenticate(p, creds)
	asp.Close(p)
	if err != nil {
		g.net.Send(p, g.node, client, 256)
		return err
	}
	rsp := tr.Start(p, "rest.route", "route")
	g.route(p)
	rsp.Close(p)
	if g.workers != nil {
		if g.cfg.MaxInflight > 0 && int(g.workers.InUse())+g.workers.Queued() >= g.cfg.MaxInflight {
			// Opaque 429: the client learns nothing but "slow down". The
			// rejection still consumes worker time — the request was already
			// parsed, authenticated, and routed, and the error response must
			// be formatted — so under a retry storm rejections compete with
			// useful work for the same pool.
			g.Throttled.Inc()
			sp.Annotate(trace.Str("err", "429"))
			if g.cfg.RejectCost > 0 {
				g.workers.Acquire(p, 1)
				p.Sleep(g.cfg.RejectCost)
				g.workers.Release(1)
			}
			g.net.Send(p, g.node, client, 256)
			return ErrThrottled
		}
		wsp := tr.Start(p, "rest.queue", "worker")
		g.workers.Acquire(p, 1)
		wsp.Close(p)
		defer g.workers.Release(1)
		if g.cfg.AppExec > 0 {
			p.Sleep(g.cfg.AppExec)
		}
	}
	if err := op(); err != nil {
		g.net.Send(p, g.node, client, 256)
		return err
	}
	// Response: HTTP format, marshal, send.
	hsp = tr.Start(p, "rest.http", "http")
	p.Sleep(HTTPOverhead)
	hsp.Close(p)
	msp = tr.Start(p, "rest.marshal", "marshal")
	p.Sleep(g.cfg.Codec.ModelCost(g.codedBytes(respBody)))
	msp.Close(p)
	g.net.Send(p, g.node, client, 512+respBody)
	g.Lat.Observe(p.Now().Sub(start))
	return nil
}

// codedBytes returns how many payload bytes pass through the codec.
func (g *Gateway) codedBytes(body int) int {
	if g.cfg.RawBody {
		return 0 // envelope only; the body streams raw
	}
	return body
}

// Get fetches an object through the REST path.
func (g *Gateway) Get(p *sim.Proc, client simnet.NodeID, creds string, id object.ID, lvl consistency.Level) ([]byte, error) {
	var data []byte
	err := g.request(p, client, creds, 0, g.sizeOf(id), func() error {
		var rerr error
		data, rerr = g.grp.Read(p, g.node, id, lvl)
		return rerr
	})
	if err == nil {
		g.Meter.Charge("read", g.cfg.Book.ReadCost(int64(len(data)), lvl == consistency.Linearizable))
	}
	return data, err
}

// Put stores an object through the REST path.
func (g *Gateway) Put(p *sim.Proc, client simnet.NodeID, creds string, id object.ID, data []byte, lvl consistency.Level) error {
	err := g.request(p, client, creds, len(data), 0, func() error {
		return g.grp.Apply(p, g.node, id, lvl, len(data), func(o *object.Object) error {
			return o.SetData(data)
		})
	})
	if err == nil {
		g.Meter.Charge("write", g.cfg.Book.WriteCost(int64(len(data))))
	}
	return err
}

// Create allocates an object through the REST path.
func (g *Gateway) Create(p *sim.Proc, client simnet.NodeID, creds string, kind object.Kind) (object.ID, error) {
	var id object.ID
	err := g.request(p, client, creds, 0, 0, func() error {
		var cerr error
		id, cerr = g.grp.Create(p, g.node, kind)
		return cerr
	})
	return id, err
}

func (g *Gateway) sizeOf(id object.ID) int {
	if o, err := g.grp.Primary0Store().Get(id); err == nil {
		return int(o.Size())
	}
	return 0
}

// ProtocolOverhead returns the modelled fixed protocol cost of one request
// with the given body size, excluding network propagation and storage —
// the quantity §2.1 argues becomes prohibitive on fast networks.
func (g *Gateway) ProtocolOverhead(bodySize int) time.Duration {
	return ProtocolOverhead(g.cfg, bodySize)
}

// ProtocolOverhead computes the fixed per-request protocol cost of a
// configuration without a live gateway.
func ProtocolOverhead(cfg Config, bodySize int) time.Duration {
	codec := cfg.Codec
	if codec == nil {
		codec = wire.JSONCodec{}
	}
	if cfg.RawBody {
		bodySize = 0
	}
	d := 2*HTTPOverhead + codec.ModelCost(bodySize) + codec.ModelCost(0)
	if !cfg.ReuseConnections {
		d += 2 * SocketOverhead
	}
	d += cfg.AuthCheck
	d += time.Duration(cfg.RoutingHops) * cfg.PerHopProcess
	return d
}

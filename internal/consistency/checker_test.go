package consistency

import (
	"testing"

	"repro/internal/sim"
)

func TestCheckerSequentialHistory(t *testing.T) {
	var h History
	h.Add(HistOp{Client: 0, Kind: OpWrite, Value: "a", Invoke: 0, Return: 1})
	h.Add(HistOp{Client: 0, Kind: OpRead, Value: "a", Invoke: 2, Return: 3})
	if !h.Linearizable("") {
		t.Error("legal sequential history rejected")
	}
}

func TestCheckerReadOfInitial(t *testing.T) {
	var h History
	h.Add(HistOp{Kind: OpRead, Value: "init", Invoke: 0, Return: 1})
	if !h.Linearizable("init") {
		t.Error("read of initial value rejected")
	}
	var h2 History
	h2.Add(HistOp{Kind: OpRead, Value: "other", Invoke: 0, Return: 1})
	if h2.Linearizable("init") {
		t.Error("read of never-written value accepted")
	}
}

func TestCheckerStaleReadRejected(t *testing.T) {
	var h History
	// w(a) completes, then w(b) completes, then a read sees "a": illegal.
	h.Add(HistOp{Client: 0, Kind: OpWrite, Value: "a", Invoke: 0, Return: 1})
	h.Add(HistOp{Client: 0, Kind: OpWrite, Value: "b", Invoke: 2, Return: 3})
	h.Add(HistOp{Client: 1, Kind: OpRead, Value: "a", Invoke: 4, Return: 5})
	if h.Linearizable("") {
		t.Error("stale read accepted — checker broken")
	}
}

func TestCheckerConcurrentWriteFlexibility(t *testing.T) {
	var h History
	// Two overlapping writes; a later read may see either.
	h.Add(HistOp{Client: 0, Kind: OpWrite, Value: "x", Invoke: 0, Return: 10})
	h.Add(HistOp{Client: 1, Kind: OpWrite, Value: "y", Invoke: 5, Return: 15})
	h.Add(HistOp{Client: 2, Kind: OpRead, Value: "x", Invoke: 20, Return: 21})
	if !h.Linearizable("") {
		t.Error("read of concurrent write x rejected")
	}
	var h2 History
	h2.Add(HistOp{Client: 0, Kind: OpWrite, Value: "x", Invoke: 0, Return: 10})
	h2.Add(HistOp{Client: 1, Kind: OpWrite, Value: "y", Invoke: 5, Return: 15})
	h2.Add(HistOp{Client: 2, Kind: OpRead, Value: "y", Invoke: 20, Return: 21})
	if !h2.Linearizable("") {
		t.Error("read of concurrent write y rejected")
	}
}

func TestCheckerReadOverlappingWrite(t *testing.T) {
	var h History
	// A read overlapping a write may see old or new value.
	h.Add(HistOp{Client: 0, Kind: OpWrite, Value: "new", Invoke: 0, Return: 10})
	h.Add(HistOp{Client: 1, Kind: OpRead, Value: "", Invoke: 1, Return: 2})
	if !h.Linearizable("") {
		t.Error("read of pre-write value during write rejected")
	}
}

func TestCheckerSplitBrainRejected(t *testing.T) {
	var h History
	// Two sequential reads observing values in an order inconsistent with
	// any single register: r(b) then r(a) after w(a); w(b) both completed,
	// with w(a) strictly before w(b).
	h.Add(HistOp{Client: 0, Kind: OpWrite, Value: "a", Invoke: 0, Return: 1})
	h.Add(HistOp{Client: 0, Kind: OpWrite, Value: "b", Invoke: 2, Return: 3})
	h.Add(HistOp{Client: 1, Kind: OpRead, Value: "b", Invoke: 4, Return: 5})
	h.Add(HistOp{Client: 1, Kind: OpRead, Value: "a", Invoke: 6, Return: 7})
	if h.Linearizable("") {
		t.Error("value regression accepted — checker broken")
	}
}

func TestCheckerEmptyHistory(t *testing.T) {
	var h History
	if !h.Linearizable("anything") {
		t.Error("empty history rejected")
	}
}

func TestCheckerLargerHistory(t *testing.T) {
	var h History
	// Ten sequential write/read pairs — trivially linearizable but
	// exercises the memoised search.
	vals := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	var tt sim.Time
	for _, v := range vals {
		h.Add(HistOp{Kind: OpWrite, Value: v, Invoke: tt, Return: tt + 1})
		h.Add(HistOp{Kind: OpRead, Value: v, Invoke: tt + 2, Return: tt + 3})
		tt += 4
	}
	if !h.Linearizable("") {
		t.Error("long legal history rejected")
	}
}

package consistency

import (
	"errors"
	"testing"
	"time"

	"repro/internal/object"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Failure injection: the §3.3 availability/consistency trade, concretely.

func TestMinorityFailureLinearizableStillWorks(t *testing.T) {
	env, _, g, client := testbed(20)
	env.Go("c", func(p *sim.Proc) {
		id, err := g.Create(p, client, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		if err := g.Apply(p, client, id, Linearizable, 1, setData([]byte("a"))); err != nil {
			t.Error(err)
			return
		}
		// Kill one non-primary replica: majority still live.
		prim := int(uint64(id)) % g.N()
		g.SetDown((prim+1)%g.N(), true)
		if err := g.Apply(p, client, id, Linearizable, 1, setData([]byte("b"))); err != nil {
			t.Errorf("linearizable write with minority failure: %v", err)
		}
		data, err := g.Read(p, client, id, Linearizable)
		if err != nil || string(data) != "b" {
			t.Errorf("read = %q, %v", data, err)
		}
	})
	env.Run()
}

func TestMajorityFailureLinearizableUnavailable(t *testing.T) {
	env, _, g, client := testbed(21)
	env.Go("c", func(p *sim.Proc) {
		id, err := g.Create(p, client, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		g.SetDown(0, true)
		g.SetDown(1, true) // 2 of 3 down
		start := p.Now()
		err = g.Apply(p, client, id, Linearizable, 1, setData([]byte("x")))
		if !errors.Is(err, ErrUnavailable) {
			t.Errorf("err = %v, want ErrUnavailable", err)
		}
		if p.Now().Sub(start) < DownTimeout {
			t.Error("unavailability detected without waiting the timeout")
		}
	})
	env.Run()
}

func TestPrimaryDownLinearizableUnavailableButEventualServes(t *testing.T) {
	env, _, g, client := testbed(22)
	env.Go("c", func(p *sim.Proc) {
		id, err := g.Create(p, client, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		if err := g.Apply(p, client, id, Linearizable, 4, setData([]byte("data"))); err != nil {
			t.Error(err)
			return
		}
		prim := int(uint64(id)) % g.N()
		g.SetDown(prim, true)
		// Strong level: unavailable.
		if _, err := g.Read(p, client, id, Linearizable); !errors.Is(err, ErrUnavailable) {
			t.Errorf("linearizable read err = %v, want ErrUnavailable", err)
		}
		// Eventual level: a surviving replica serves (possibly stale) data.
		data, err := g.Read(p, client, id, Eventual)
		if err != nil {
			t.Errorf("eventual read during primary failure: %v", err)
		}
		if string(data) != "data" {
			t.Errorf("eventual read = %q", data)
		}
	})
	env.Run()
}

func TestAllReplicasDownEverythingUnavailable(t *testing.T) {
	env, _, g, client := testbed(23)
	env.Go("c", func(p *sim.Proc) {
		id, err := g.Create(p, client, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < g.N(); i++ {
			g.SetDown(i, true)
		}
		if _, err := g.Read(p, client, id, Eventual); !errors.Is(err, ErrUnavailable) {
			t.Errorf("eventual read err = %v", err)
		}
		if err := g.Apply(p, client, id, Eventual, 1, setData([]byte("x"))); !errors.Is(err, ErrUnavailable) {
			t.Errorf("eventual write err = %v", err)
		}
		if _, err := g.Create(p, client, object.Regular); !errors.Is(err, ErrUnavailable) {
			t.Errorf("create err = %v", err)
		}
	})
	env.Run()
}

func TestRecoveredReplicaCatchesUpViaGossip(t *testing.T) {
	env, _, g, client := testbed(24)
	g.StartAntiEntropy(5 * time.Millisecond)
	var id object.ID
	env.Go("c", func(p *sim.Proc) {
		var err error
		id, err = g.Create(p, client, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(20 * time.Millisecond)
		// Fail a non-primary replica, then write while it is down.
		prim := int(uint64(id)) % g.N()
		victim := (prim + 1) % g.N()
		g.SetDown(victim, true)
		if err := g.Apply(p, client, id, Linearizable, 7, setData([]byte("updated"))); err != nil {
			t.Error(err)
			return
		}
		// Recover; gossip must deliver the missed write.
		p.Sleep(50 * time.Millisecond)
		g.SetDown(victim, false)
		p.Sleep(time.Second)
		o, err := g.Replicas()[victim].St.Get(id)
		if err != nil || string(o.Read()) != "updated" {
			t.Errorf("recovered replica state = %v, %v — gossip catch-up failed", o, err)
		}
	})
	env.RunUntil(sim.Time(5 * time.Second))
}

// A network partition isolates the client with one replica: linearizable
// writes are rejected (no quorum on the minority side), eventual stays
// available against the reachable replica, and after the partition heals
// anti-entropy converges every replica on the partition-era write.
func TestPartitionLinearizableRejectsEventualServesThenHeals(t *testing.T) {
	env, net, g, client := testbed(26)
	env.Go("c", func(p *sim.Proc) {
		id, err := g.Create(p, client, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		if err := g.Apply(p, client, id, Linearizable, 6, setData([]byte("before"))); err != nil {
			t.Error(err)
			return
		}
		// Partition: {client, replica 0} vs {replicas 1, 2}. Whatever replica
		// is the object's primary, the client side cannot assemble a quorum.
		side := map[simnet.NodeID]bool{g.Replicas()[0].Node: true, client: true}
		net.SetReachableFunc(func(a, b simnet.NodeID) bool { return side[a] == side[b] })

		if err := g.Apply(p, client, id, Linearizable, 3, setData([]byte("lin"))); !errors.Is(err, ErrUnavailable) {
			t.Errorf("linearizable write under partition: err = %v, want ErrUnavailable", err)
		}
		if err := g.Apply(p, client, id, Eventual, 11, setData([]byte("partitioned"))); err != nil {
			t.Errorf("eventual write under partition: %v", err)
		}
		if data, err := g.Read(p, client, id, Eventual); err != nil || string(data) != "partitioned" {
			t.Errorf("eventual read under partition = %q, %v", data, err)
		}

		// Heal, force anti-entropy to quiescence, and check convergence.
		net.SetReachableFunc(nil)
		g.SyncAll()
		if div := g.Divergent(); len(div) != 0 {
			t.Errorf("divergent objects after heal+sync: %v", div)
		}
		for i, r := range g.Replicas() {
			o, err := r.St.Get(id)
			if err != nil || string(o.Read()) != "partitioned" {
				t.Errorf("replica %d after heal: %v, %v — partition-era write lost", i, o, err)
			}
		}
	})
	env.Run()
}

// While partitioned, gossip between unreachable pairs must be suppressed
// even though both endpoints are up.
func TestPartitionSuppressesGossip(t *testing.T) {
	env, net, g, client := testbed(27)
	env.Go("c", func(p *sim.Proc) {
		id, err := g.Create(p, client, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		if err := g.Apply(p, client, id, Linearizable, 5, setData([]byte("seed"))); err != nil {
			t.Error(err)
			return
		}
		g.SyncAll() // every replica holds "seed"
		// Isolate replica 2, mutate on the majority side, then sync: the
		// isolated replica must keep its old state.
		iso := g.Replicas()[2].Node
		net.SetReachableFunc(func(a, b simnet.NodeID) bool { return (a == iso) == (b == iso) })
		if err := g.Apply(p, client, id, Eventual, 7, setData([]byte("majority"))); err != nil {
			t.Error(err)
			return
		}
		g.SyncAll()
		if o, err := g.Replicas()[2].St.Get(id); err != nil || string(o.Read()) == "majority" {
			t.Errorf("isolated replica received gossip across the partition (state %v, %v)", o, err)
		}
		if len(g.Divergent()) == 0 {
			t.Error("Divergent() misses the partitioned replica's stale state")
		}
		// Heal: convergence resumes.
		net.SetReachableFunc(nil)
		g.SyncAll()
		if div := g.Divergent(); len(div) != 0 {
			t.Errorf("divergent after heal: %v", div)
		}
	})
	env.Run()
}

func TestDownReplicaExcludedFromGossip(t *testing.T) {
	env, _, g, client := testbed(25)
	var id object.ID
	env.Go("c", func(p *sim.Proc) {
		var err error
		id, err = g.Create(p, client, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(50 * time.Millisecond)
		if err := g.Apply(p, client, id, Linearizable, 3, setData([]byte("new"))); err != nil {
			t.Error(err)
		}
	})
	env.Run()
	// Manually clear one replica's payload and mark it down: SyncAll must
	// not resurrect or propagate through it.
	victim := g.Replicas()[(int(uint64(id))%g.N()+1)%g.N()]
	g.SetDown(victim.Index, true)
	before := victim.St.Reads + victim.St.Writes
	g.SyncAll()
	after := victim.St.Reads + victim.St.Writes
	if after != before {
		t.Errorf("down replica participated in anti-entropy (%d ops)", after-before)
	}
}

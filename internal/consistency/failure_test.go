package consistency

import (
	"errors"
	"testing"
	"time"

	"repro/internal/object"
	"repro/internal/sim"
)

// Failure injection: the §3.3 availability/consistency trade, concretely.

func TestMinorityFailureLinearizableStillWorks(t *testing.T) {
	env, _, g, client := testbed(20)
	env.Go("c", func(p *sim.Proc) {
		id, err := g.Create(p, client, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		if err := g.Apply(p, client, id, Linearizable, 1, setData([]byte("a"))); err != nil {
			t.Error(err)
			return
		}
		// Kill one non-primary replica: majority still live.
		prim := int(uint64(id)) % g.N()
		g.SetDown((prim+1)%g.N(), true)
		if err := g.Apply(p, client, id, Linearizable, 1, setData([]byte("b"))); err != nil {
			t.Errorf("linearizable write with minority failure: %v", err)
		}
		data, err := g.Read(p, client, id, Linearizable)
		if err != nil || string(data) != "b" {
			t.Errorf("read = %q, %v", data, err)
		}
	})
	env.Run()
}

func TestMajorityFailureLinearizableUnavailable(t *testing.T) {
	env, _, g, client := testbed(21)
	env.Go("c", func(p *sim.Proc) {
		id, err := g.Create(p, client, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		g.SetDown(0, true)
		g.SetDown(1, true) // 2 of 3 down
		start := p.Now()
		err = g.Apply(p, client, id, Linearizable, 1, setData([]byte("x")))
		if !errors.Is(err, ErrUnavailable) {
			t.Errorf("err = %v, want ErrUnavailable", err)
		}
		if p.Now().Sub(start) < DownTimeout {
			t.Error("unavailability detected without waiting the timeout")
		}
	})
	env.Run()
}

func TestPrimaryDownLinearizableUnavailableButEventualServes(t *testing.T) {
	env, _, g, client := testbed(22)
	env.Go("c", func(p *sim.Proc) {
		id, err := g.Create(p, client, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		if err := g.Apply(p, client, id, Linearizable, 4, setData([]byte("data"))); err != nil {
			t.Error(err)
			return
		}
		prim := int(uint64(id)) % g.N()
		g.SetDown(prim, true)
		// Strong level: unavailable.
		if _, err := g.Read(p, client, id, Linearizable); !errors.Is(err, ErrUnavailable) {
			t.Errorf("linearizable read err = %v, want ErrUnavailable", err)
		}
		// Eventual level: a surviving replica serves (possibly stale) data.
		data, err := g.Read(p, client, id, Eventual)
		if err != nil {
			t.Errorf("eventual read during primary failure: %v", err)
		}
		if string(data) != "data" {
			t.Errorf("eventual read = %q", data)
		}
	})
	env.Run()
}

func TestAllReplicasDownEverythingUnavailable(t *testing.T) {
	env, _, g, client := testbed(23)
	env.Go("c", func(p *sim.Proc) {
		id, err := g.Create(p, client, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < g.N(); i++ {
			g.SetDown(i, true)
		}
		if _, err := g.Read(p, client, id, Eventual); !errors.Is(err, ErrUnavailable) {
			t.Errorf("eventual read err = %v", err)
		}
		if err := g.Apply(p, client, id, Eventual, 1, setData([]byte("x"))); !errors.Is(err, ErrUnavailable) {
			t.Errorf("eventual write err = %v", err)
		}
		if _, err := g.Create(p, client, object.Regular); !errors.Is(err, ErrUnavailable) {
			t.Errorf("create err = %v", err)
		}
	})
	env.Run()
}

func TestRecoveredReplicaCatchesUpViaGossip(t *testing.T) {
	env, _, g, client := testbed(24)
	g.StartAntiEntropy(5 * time.Millisecond)
	var id object.ID
	env.Go("c", func(p *sim.Proc) {
		var err error
		id, err = g.Create(p, client, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(20 * time.Millisecond)
		// Fail a non-primary replica, then write while it is down.
		prim := int(uint64(id)) % g.N()
		victim := (prim + 1) % g.N()
		g.SetDown(victim, true)
		if err := g.Apply(p, client, id, Linearizable, 7, setData([]byte("updated"))); err != nil {
			t.Error(err)
			return
		}
		// Recover; gossip must deliver the missed write.
		p.Sleep(50 * time.Millisecond)
		g.SetDown(victim, false)
		p.Sleep(time.Second)
		o, err := g.Replicas()[victim].St.Get(id)
		if err != nil || string(o.Read()) != "updated" {
			t.Errorf("recovered replica state = %v, %v — gossip catch-up failed", o, err)
		}
	})
	env.RunUntil(sim.Time(5 * time.Second))
}

func TestDownReplicaExcludedFromGossip(t *testing.T) {
	env, _, g, client := testbed(25)
	var id object.ID
	env.Go("c", func(p *sim.Proc) {
		var err error
		id, err = g.Create(p, client, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(50 * time.Millisecond)
		if err := g.Apply(p, client, id, Linearizable, 3, setData([]byte("new"))); err != nil {
			t.Error(err)
		}
	})
	env.Run()
	// Manually clear one replica's payload and mark it down: SyncAll must
	// not resurrect or propagate through it.
	victim := g.Replicas()[(int(uint64(id))%g.N()+1)%g.N()]
	g.SetDown(victim.Index, true)
	before := victim.St.Reads + victim.St.Writes
	g.SyncAll()
	after := victim.St.Reads + victim.St.Writes
	if after != before {
		t.Errorf("down replica participated in anti-entropy (%d ops)", after-before)
	}
}

package consistency

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/object"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// testbed builds a 3-replica group across racks plus a client node.
func testbed(seed int64) (*sim.Env, *simnet.Network, *Group, simnet.NodeID) {
	env := sim.NewEnv(seed)
	net := simnet.New(env, simnet.DC2021)
	var nodes []simnet.NodeID
	for rack := 0; rack < 3; rack++ {
		nodes = append(nodes, net.AddNode(rack))
	}
	client := net.AddNode(0) // same rack as replica 0
	g := NewGroup(env, net, nodes, media.DRAM)
	return env, net, g, client
}

func setData(b []byte) func(*object.Object) error {
	return func(o *object.Object) error { return o.SetData(b) }
}

func TestCreateReplicatesToMajority(t *testing.T) {
	env, _, g, client := testbed(1)
	var id object.ID
	env.Go("c", func(p *sim.Proc) {
		var err error
		id, err = g.Create(p, client, object.Regular)
		if err != nil {
			t.Error(err)
		}
	})
	env.Run()
	if id == object.NilID {
		t.Fatal("no id")
	}
	have := 0
	for _, r := range g.Replicas() {
		if r.St.Contains(id) {
			have++
		}
	}
	if have < 2 {
		t.Errorf("object on %d replicas, want >= majority (2)", have)
	}
}

func TestLinearizableWriteVisibleEverywhereAfterSync(t *testing.T) {
	env, _, g, client := testbed(1)
	env.Go("c", func(p *sim.Proc) {
		id, err := g.Create(p, client, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		if err := g.Apply(p, client, id, Linearizable, 5, setData([]byte("hello"))); err != nil {
			t.Error(err)
			return
		}
		data, err := g.Read(p, client, id, Linearizable)
		if err != nil || string(data) != "hello" {
			t.Errorf("read-own-write = %q, %v", data, err)
		}
	})
	env.Run()
}

func TestLinearizableReadLatencyExceedsEventual(t *testing.T) {
	// The §4.3 shape: strong ops pay quorum replication, eventual ops touch
	// the closest replica only.
	env, _, g, client := testbed(2)
	var strongW, evW time.Duration
	env.Go("c", func(p *sim.Proc) {
		id, err := g.Create(p, client, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		t0 := p.Now()
		if err := g.Apply(p, client, id, Linearizable, 1024, setData(make([]byte, 1024))); err != nil {
			t.Error(err)
		}
		strongW = p.Now().Sub(t0)
		t0 = p.Now()
		if err := g.Apply(p, client, id, Eventual, 1024, setData(make([]byte, 1024))); err != nil {
			t.Error(err)
		}
		evW = p.Now().Sub(t0)
	})
	env.Run()
	if evW >= strongW {
		t.Errorf("eventual write %v not faster than linearizable %v", evW, strongW)
	}
}

func TestEventualWriteConvergesViaAntiEntropy(t *testing.T) {
	env, _, g, client := testbed(3)
	g.StartAntiEntropy(5 * time.Millisecond)
	var id object.ID
	env.Go("c", func(p *sim.Proc) {
		var err error
		id, err = g.Create(p, client, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(10 * time.Millisecond) // let create settle everywhere
		if err := g.Apply(p, client, id, Eventual, 4, setData([]byte("data"))); err != nil {
			t.Error(err)
		}
		p.Sleep(500 * time.Millisecond) // many gossip rounds
	})
	env.RunUntil(sim.Time(time.Second))
	if g.GossipRounds == 0 {
		t.Fatal("anti-entropy never ran")
	}
	for i, r := range g.Replicas() {
		o, err := r.St.Get(id)
		if err != nil || string(o.Read()) != "data" {
			t.Errorf("replica %d did not converge: %v", i, err)
		}
	}
}

func TestEventualReadCanBeStale(t *testing.T) {
	env, net, g, _ := testbed(4)
	// A client in rack 2 reads from the rack-2 replica; a client in rack 0
	// writes through rack 0. Without gossip the rack-2 read is stale.
	farClient := net.AddNode(2)
	nearClient := net.AddNode(0)
	var stale []byte
	env.Go("c", func(p *sim.Proc) {
		id, err := g.Create(p, nearClient, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(50 * time.Millisecond) // create settles on all replicas
		if err := g.Apply(p, nearClient, id, Eventual, 3, setData([]byte("new"))); err != nil {
			t.Error(err)
			return
		}
		stale, err = g.Read(p, farClient, id, Eventual)
		if err != nil {
			t.Error(err)
		}
	})
	env.Run()
	if string(stale) == "new" {
		t.Skip("closest replica happened to be the written one")
	}
	if g.StaleReads == 0 {
		t.Error("stale read not counted")
	}
}

func TestSyncAllConverges(t *testing.T) {
	env, net, g, _ := testbed(5)
	c0 := net.AddNode(0)
	c2 := net.AddNode(2)
	var id object.ID
	env.Go("c", func(p *sim.Proc) {
		var err error
		id, err = g.Create(p, c0, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(50 * time.Millisecond)
		// Conflicting eventual writes at two replicas.
		if err := g.Apply(p, c0, id, Eventual, 1, setData([]byte("A"))); err != nil {
			t.Error(err)
		}
		if err := g.Apply(p, c2, id, Eventual, 1, setData([]byte("B"))); err != nil {
			t.Error(err)
		}
	})
	env.Run()
	g.SyncAll()
	g.SyncAll() // second pass guarantees full propagation
	var vals []string
	for _, r := range g.Replicas() {
		o, err := r.St.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		vals = append(vals, string(o.Read()))
	}
	for _, v := range vals[1:] {
		if v != vals[0] {
			t.Fatalf("replicas diverged after SyncAll: %v", vals)
		}
	}
	if g.Conflicts == 0 {
		t.Error("concurrent writes not detected as conflict")
	}
}

func TestMutabilityEnforcedThroughReplication(t *testing.T) {
	env, _, g, client := testbed(6)
	env.Go("c", func(p *sim.Proc) {
		id, err := g.Create(p, client, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		if err := g.Apply(p, client, id, Linearizable, 6, setData([]byte("frozen"))); err != nil {
			t.Error(err)
			return
		}
		if err := g.Apply(p, client, id, Linearizable, 0, func(o *object.Object) error {
			return o.SetMutability(object.Immutable)
		}); err != nil {
			t.Error(err)
			return
		}
		err = g.Apply(p, client, id, Linearizable, 1, setData([]byte("x")))
		if !errors.Is(err, object.ErrImmutable) {
			t.Errorf("write to immutable err = %v", err)
		}
	})
	env.Run()
}

func TestApplyMissingObject(t *testing.T) {
	env, _, g, client := testbed(7)
	env.Go("c", func(p *sim.Proc) {
		err := g.Apply(p, client, object.ID(999), Linearizable, 1, setData([]byte("x")))
		if !errors.Is(err, ErrNotFound) {
			t.Errorf("err = %v, want ErrNotFound", err)
		}
		if _, err := g.Read(p, client, object.ID(999), Eventual); !errors.Is(err, ErrNotFound) {
			t.Errorf("read err = %v, want ErrNotFound", err)
		}
	})
	env.Run()
}

// The central correctness test: concurrent clients performing linearizable
// reads and writes must produce a linearizable history.
func TestLinearizableLevelPassesChecker(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		env, net, g, _ := testbed(100 + seed)
		var h History
		var id object.ID
		setup := env.NewEvent()
		env.Go("setup", func(p *sim.Proc) {
			var err error
			id, err = g.Create(p, net.AddNode(0), object.Regular)
			if err != nil {
				t.Error(err)
			}
			setup.Complete(nil)
		})
		for c := 0; c < 4; c++ {
			c := c
			client := net.AddNode(c % 3)
			env.Go(fmt.Sprintf("client%d", c), func(p *sim.Proc) {
				if _, err := p.Wait(setup); err != nil {
					return
				}
				for i := 0; i < 4; i++ {
					inv := p.Now()
					if (c+i)%2 == 0 {
						v := fmt.Sprintf("c%d-%d", c, i)
						if err := g.Apply(p, client, id, Linearizable, len(v), setData([]byte(v))); err != nil {
							t.Error(err)
							return
						}
						h.Add(HistOp{Client: c, Kind: OpWrite, Value: v, Invoke: inv, Return: p.Now()})
					} else {
						data, err := g.Read(p, client, id, Linearizable)
						if err != nil {
							t.Error(err)
							return
						}
						h.Add(HistOp{Client: c, Kind: OpRead, Value: string(data), Invoke: inv, Return: p.Now()})
					}
					p.Sleep(time.Duration(env.Rand().Intn(int(time.Millisecond))))
				}
			})
		}
		env.Run()
		if h.Len() != 16 {
			t.Fatalf("seed %d: history has %d ops, want 16", seed, h.Len())
		}
		if !h.Linearizable("") {
			t.Errorf("seed %d: linearizable level produced non-linearizable history", seed)
		}
	}
}

func TestStampAt(t *testing.T) {
	env, _, g, client := testbed(9)
	env.Go("c", func(p *sim.Proc) {
		id, err := g.Create(p, client, object.Regular)
		if err != nil {
			t.Error(err)
			return
		}
		if err := g.Apply(p, client, id, Linearizable, 1, setData([]byte("x"))); err != nil {
			t.Error(err)
			return
		}
		prim := int(uint64(id)) % g.N()
		s, ok := g.StampAt(prim, id)
		if !ok || s.Counter == 0 {
			t.Errorf("StampAt = %v, %v", s, ok)
		}
	})
	env.Run()
	if _, ok := g.StampAt(0, object.ID(424242)); ok {
		t.Error("StampAt for missing object reported ok")
	}
}

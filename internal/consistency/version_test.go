package consistency

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStampOrdering(t *testing.T) {
	a := Stamp{Counter: 1, Writer: 0}
	b := Stamp{Counter: 2, Writer: 0}
	c := Stamp{Counter: 2, Writer: 1}
	if !a.Less(b) || b.Less(a) {
		t.Error("counter ordering broken")
	}
	if !b.Less(c) || c.Less(b) {
		t.Error("writer tiebreak broken")
	}
	if a.Less(a) {
		t.Error("stamp less than itself")
	}
}

// Property: Less is a strict total order on stamps.
func TestStampTotalOrderProperty(t *testing.T) {
	f := func(c1, c2 uint16, w1, w2 uint8) bool {
		a := Stamp{Counter: uint64(c1), Writer: int(w1)}
		b := Stamp{Counter: uint64(c2), Writer: int(w2)}
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) != b.Less(a) // exactly one direction
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestVClockCompare(t *testing.T) {
	a := VClock{1, 0, 0}
	b := VClock{1, 1, 0}
	if a.Compare(b) != Before {
		t.Errorf("a vs b = %v, want before", a.Compare(b))
	}
	if b.Compare(a) != After {
		t.Errorf("b vs a = %v, want after", b.Compare(a))
	}
	if a.Compare(a.Clone()) != Equal {
		t.Error("clone not equal")
	}
	c := VClock{0, 2, 0}
	if a.Compare(c) != Concurrent {
		t.Errorf("a vs c = %v, want concurrent", a.Compare(c))
	}
}

func TestVClockMerge(t *testing.T) {
	a := VClock{3, 1, 0}
	b := VClock{1, 5, 2}
	a.Merge(b)
	want := VClock{3, 5, 2}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("merged = %v, want %v", a, want)
		}
	}
}

func TestVClockTick(t *testing.T) {
	v := NewVClock(3)
	v.Tick(1)
	v.Tick(1)
	v.Tick(2)
	if v[0] != 0 || v[1] != 2 || v[2] != 1 {
		t.Errorf("v = %v", v)
	}
}

// Property: merge produces a clock that is >= both inputs.
func TestVClockMergeUpperBoundProperty(t *testing.T) {
	f := func(xs, ys [4]uint8) bool {
		a, b := NewVClock(4), NewVClock(4)
		for i := 0; i < 4; i++ {
			a[i], b[i] = uint64(xs[i]), uint64(ys[i])
		}
		m := a.Clone()
		m.Merge(b)
		ra := m.Compare(a)
		rb := m.Compare(b)
		okA := ra == After || ra == Equal
		okB := rb == After || rb == Equal
		return okA && okB
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderingStrings(t *testing.T) {
	for _, o := range []Ordering{Before, Equal, After, Concurrent} {
		if o.String() == "invalid" {
			t.Errorf("ordering %d renders invalid", o)
		}
	}
	if Linearizable.String() != "linearizable" || Eventual.String() != "eventual" {
		t.Error("level names wrong")
	}
}

package consistency

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/fault"
	"repro/internal/media"
	"repro/internal/object"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/store"
)

// Errors returned by replicated operations.
var (
	ErrNoReplicas  = fault.Fatal("consistency: group has no replicas")
	ErrNotFound    = fault.Fatal("consistency: object not found")
	ErrUnavailable = errors.New("consistency: operation unavailable (insufficient live replicas)")
)

// DownTimeout is how long a client waits on an unresponsive replica
// before declaring the operation unavailable.
const DownTimeout = 500 * time.Millisecond

// Replica is one copy of the group's state on a storage node.
type Replica struct {
	Index int
	Node  simnet.NodeID
	St    *store.Store
	meta  map[object.ID]*objMeta
	down  bool
}

// Down reports whether the replica is failed (unreachable).
func (r *Replica) Down() bool { return r.down }

type objMeta struct {
	stamp Stamp
	vc    VClock
}

// Group is a replicated object store: N replicas with one per-object
// serialisation point (the primary) for linearizable operations and
// closest-replica access plus gossip for eventual ones.
type Group struct {
	env      *sim.Env
	net      *simnet.Network
	replicas []*Replica
	locks    map[object.ID]*sim.Resource
	lamport  uint64
	// merger, when set, resolves concurrent payloads during anti-entropy
	// by computing a least upper bound instead of last-writer-wins. The
	// function cache layer installs a lattice merger here; ok=false falls
	// back to LWW, so non-lattice payloads behave exactly as before.
	merger func(a, b []byte) ([]byte, bool)

	// Experiment counters.
	Conflicts    int64 // concurrent updates detected by vector clocks
	GossipRounds int64
	// Merges counts concurrent updates resolved by the installed merger
	// (lattice joins) rather than LWW.
	Merges     int64
	StaleReads int64 // eventual reads that observed a non-latest stamp
	// LinStaleReads counts linearizable reads that observed a non-latest
	// stamp. The protocol (primary serialisation + majority ack) makes this
	// impossible, so the chaos harness asserts it stays zero.
	LinStaleReads int64
}

// NewGroup builds a replicated group with one replica on each given node,
// all using the same storage medium.
func NewGroup(env *sim.Env, net *simnet.Network, nodes []simnet.NodeID, media media.Profile) *Group {
	g := &Group{env: env, net: net, locks: make(map[object.ID]*sim.Resource)}
	for i, n := range nodes {
		g.replicas = append(g.replicas, &Replica{
			Index: i,
			Node:  n,
			St:    store.New(media, 0),
			meta:  make(map[object.ID]*objMeta),
		})
	}
	return g
}

// N returns the replication factor.
func (g *Group) N() int { return len(g.replicas) }

// Replicas returns the group's replicas (primarily for tests).
func (g *Group) Replicas() []*Replica { return g.replicas }

// primary returns the serialisation-point replica for an object.
// Objects are striped across replicas so load spreads.
func (g *Group) primary(id object.ID) *Replica {
	return g.replicas[int(uint64(id))%len(g.replicas)]
}

// SetDown marks a replica failed (unreachable) or recovered. A recovered
// replica catches up through anti-entropy.
func (g *Group) SetDown(i int, down bool) { g.replicas[i].down = down }

// liveCount returns the number of up replicas.
func (g *Group) liveCount() int {
	n := 0
	for _, r := range g.replicas {
		if !r.down {
			n++
		}
	}
	return n
}

// liveFrom returns the number of replicas that are up and network-reachable
// from the given node (quorum as seen from a primary during a partition).
func (g *Group) liveFrom(from simnet.NodeID) int {
	n := 0
	for _, r := range g.replicas {
		if !r.down && g.net.Reachable(from, r.Node) {
			n++
		}
	}
	return n
}

// closest returns the nearest *live, reachable* replica to client, or nil
// when none is usable.
func (g *Group) closest(client simnet.NodeID) *Replica {
	var best *Replica
	for _, r := range g.replicas {
		if r.down || !g.net.Reachable(client, r.Node) {
			continue
		}
		if best == nil || g.net.RTT(client, r.Node) < g.net.RTT(client, best.Node) {
			best = r
		}
	}
	return best
}

// lock returns the primary-side mutex for an object.
func (g *Group) lock(id object.ID) *sim.Resource {
	l, ok := g.locks[id]
	if !ok {
		l = g.env.NewResource(fmt.Sprintf("obj-%d", id), 1)
		g.locks[id] = l
	}
	return l
}

func (g *Group) nextStamp(writer int) Stamp {
	g.lamport++
	return Stamp{Counter: g.lamport, Writer: writer}
}

// Create allocates a new object of the given kind on every replica,
// synchronously (creation is always linearizable), and returns its ID.
// client is the node the request originates from.
func (g *Group) Create(p *sim.Proc, client simnet.NodeID, kind object.Kind) (object.ID, error) {
	if len(g.replicas) == 0 {
		return object.NilID, ErrNoReplicas
	}
	// IDs come from the authoritative replica-0 store so objects created
	// directly in that store (namespace directories, copy-ups) share one
	// ID space with replicated objects.
	id := g.replicas[0].St.AllocID()
	prim := g.primary(id)
	if prim.down || !g.net.Reachable(client, prim.Node) || g.liveFrom(prim.Node) < len(g.replicas)/2+1 {
		p.Sleep(DownTimeout)
		return object.NilID, ErrUnavailable
	}
	l := g.lock(id)
	l.Acquire(p, 1)
	defer l.Release(1)
	// Client -> primary.
	g.net.Send(p, client, prim.Node, 64)
	stamp := g.nextStamp(prim.Index)
	vc := NewVClock(len(g.replicas))
	vc.Tick(prim.Index)
	// Materialise on every replica; wait for a majority (incl. primary).
	acks := g.replicateState(p, prim, func(r *Replica) {
		o := object.New(id, kind)
		if err := r.St.Insert(o); err == nil {
			r.meta[id] = &objMeta{stamp: stamp, vc: vc.Clone()}
		}
	})
	g.awaitMajority(p, acks)
	// Primary -> client.
	g.net.Send(p, prim.Node, client, 64)
	return id, nil
}

// replicateState applies fn at the primary immediately and asynchronously
// at every other replica, returning an ack queue. fn must be deterministic.
func (g *Group) replicateState(p *sim.Proc, prim *Replica, fn func(*Replica)) *sim.Queue[int] {
	acks := sim.NewQueue[int](g.env)
	fn(prim)
	p.Sleep(prim.St.Media().WriteLatency)
	acks.Put(prim.Index)
	for _, r := range g.replicas {
		if r == prim || r.down || !g.net.Reachable(prim.Node, r.Node) {
			continue
		}
		r := r
		g.env.Go("replicate", func(rp *sim.Proc) {
			g.net.Send(rp, prim.Node, r.Node, 256)
			fn(r)
			rp.Sleep(r.St.Media().WriteLatency)
			g.net.Send(rp, r.Node, prim.Node, 64)
			acks.Put(r.Index)
		})
	}
	return acks
}

// awaitMajority blocks until ceil((N+1)/2) acks have arrived.
func (g *Group) awaitMajority(p *sim.Proc, acks *sim.Queue[int]) {
	need := len(g.replicas)/2 + 1
	for i := 0; i < need; i++ {
		if _, ok := acks.Get(p); !ok {
			return
		}
	}
}

// Apply performs a mutation on an object at the given level. The mutate
// closure must be deterministic: it runs once per replica that applies the
// update. size is the payload size involved, used for transfer costs.
func (g *Group) Apply(p *sim.Proc, client simnet.NodeID, id object.ID, lvl Level, size int, mutate func(*object.Object) error) error {
	switch lvl {
	case Linearizable:
		return g.applyLinearizable(p, client, id, size, mutate)
	case Eventual:
		return g.applyEventual(p, client, id, size, mutate)
	default:
		return fault.Fatalf("consistency: unknown level %v", lvl)
	}
}

func (g *Group) applyLinearizable(p *sim.Proc, client simnet.NodeID, id object.ID, size int, mutate func(*object.Object) error) error {
	prim := g.primary(id)
	if prim.down || !g.net.Reachable(client, prim.Node) || g.liveFrom(prim.Node) < len(g.replicas)/2+1 {
		// The primary or a quorum is unreachable: the strong level
		// sacrifices availability (§3.3's CAP trade, made concrete).
		p.Sleep(DownTimeout)
		return fmt.Errorf("%w: %v", ErrUnavailable, id)
	}
	l := g.lock(id)
	g.net.Send(p, client, prim.Node, 64+size)
	l.Acquire(p, 1)
	defer l.Release(1)
	o, err := prim.St.Get(id)
	if err != nil {
		g.net.Send(p, prim.Node, client, 64)
		return fmt.Errorf("%w: %v", ErrNotFound, id)
	}
	before := o.Size()
	if err := mutate(o); err != nil {
		g.net.Send(p, prim.Node, client, 64)
		return err
	}
	if err := prim.St.UpdateAccounting(o.Size() - before); err != nil {
		return err
	}
	stamp := g.nextStamp(prim.Index)
	m := prim.meta[id]
	m.stamp = stamp
	m.vc.Tick(prim.Index)
	vc := m.vc.Clone()
	// Synchronously copy the new state to a majority.
	data, ver, mut := o.Read(), o.Version(), o.Mutability()
	acks := sim.NewQueue[int](g.env)
	p.Sleep(prim.St.Media().WriteCost(int64(size)))
	acks.Put(prim.Index)
	for _, r := range g.replicas {
		if r == prim || r.down || !g.net.Reachable(prim.Node, r.Node) {
			continue
		}
		r := r
		g.env.Go("replicate", func(rp *sim.Proc) {
			g.net.Send(rp, prim.Node, r.Node, 128+len(data))
			g.applyState(r, id, o.Kind(), data, ver, mut, stamp, vc)
			rp.Sleep(r.St.Media().WriteCost(int64(len(data))))
			g.net.Send(rp, r.Node, prim.Node, 64)
			acks.Put(r.Index)
		})
	}
	g.awaitMajority(p, acks)
	g.net.Send(p, prim.Node, client, 64)
	return nil
}

// applyState installs a full object state at a replica if it is newer.
func (g *Group) applyState(r *Replica, id object.ID, kind object.Kind, data []byte, ver uint64, mut object.Mutability, stamp Stamp, vc VClock) {
	o, err := r.St.Get(id)
	if err != nil {
		o = object.New(id, kind)
		if err := r.St.Insert(o); err != nil {
			return
		}
		r.meta[id] = &objMeta{vc: NewVClock(len(g.replicas))}
	}
	m := r.meta[id]
	if stamp.Less(m.stamp) {
		// Already have something newer; still merge clocks.
		m.vc.Merge(vc)
		return
	}
	delta := int64(len(data)) - o.Size()
	o.ApplyState(data, ver, mut)
	_ = r.St.UpdateAccounting(delta)
	m.stamp = stamp
	m.vc.Merge(vc)
}

func (g *Group) applyEventual(p *sim.Proc, client simnet.NodeID, id object.ID, size int, mutate func(*object.Object) error) error {
	r := g.closest(client)
	if r == nil {
		p.Sleep(DownTimeout)
		return ErrUnavailable
	}
	g.net.Send(p, client, r.Node, 64+size)
	o, err := r.St.Get(id)
	if err != nil {
		g.net.Send(p, r.Node, client, 64)
		return fmt.Errorf("%w: %v on replica %d", ErrNotFound, id, r.Index)
	}
	before := o.Size()
	if err := mutate(o); err != nil {
		g.net.Send(p, r.Node, client, 64)
		return err
	}
	if err := r.St.UpdateAccounting(o.Size() - before); err != nil {
		return err
	}
	m := r.meta[id]
	m.stamp = g.nextStamp(r.Index)
	m.vc.Tick(r.Index)
	p.Sleep(r.St.Media().WriteCost(int64(size)))
	g.net.Send(p, r.Node, client, 64)
	return nil
}

// Read returns an object's payload at the given level.
func (g *Group) Read(p *sim.Proc, client simnet.NodeID, id object.ID, lvl Level) ([]byte, error) {
	var data []byte
	err := g.View(p, client, id, lvl, func(o *object.Object) error {
		data = o.Read()
		return nil
	})
	return data, err
}

// View runs a read-only closure against an object's state at the given
// level, charging the appropriate protocol and media costs.
func (g *Group) View(p *sim.Proc, client simnet.NodeID, id object.ID, lvl Level, view func(*object.Object) error) error {
	var r *Replica
	switch lvl {
	case Linearizable:
		r = g.primary(id)
		if r.down || !g.net.Reachable(client, r.Node) {
			p.Sleep(DownTimeout)
			return fmt.Errorf("%w: primary for %v is down", ErrUnavailable, id)
		}
	default:
		r = g.closest(client)
		if r == nil {
			p.Sleep(DownTimeout)
			return ErrUnavailable
		}
	}
	g.net.Send(p, client, r.Node, 64)
	if lvl == Linearizable {
		l := g.lock(id)
		l.Acquire(p, 1)
		defer l.Release(1)
	}
	o, err := r.St.Get(id)
	if err != nil {
		g.net.Send(p, r.Node, client, 64)
		return fmt.Errorf("%w: %v", ErrNotFound, id)
	}
	// Track staleness against the globally newest stamp.
	newest := r.meta[id].stamp
	for _, other := range g.replicas {
		if m, ok := other.meta[id]; ok && newest.Less(m.stamp) {
			newest = m.stamp
		}
	}
	if r.meta[id].stamp.Less(newest) {
		if lvl == Linearizable {
			g.LinStaleReads++ // protocol violation; chaos invariant trips
		} else {
			g.StaleReads++
		}
	}
	p.Sleep(r.St.Media().ReadCost(o.Size()))
	err = view(o)
	g.net.Send(p, r.Node, client, 64+int(o.Size()))
	return err
}

// SetMerger installs a payload merger consulted when anti-entropy meets
// concurrent updates: ok=true replaces last-writer-wins with the merged
// payload installed at both replicas. The merger must be deterministic,
// commutative, and idempotent (lattice joins are).
func (g *Group) SetMerger(m func(a, b []byte) ([]byte, bool)) { g.merger = m }

// NewestStamp returns the newest stamp any replica holds for id — the
// reference point for staleness accounting (cache-entry audits compare
// their fill stamp against it).
func (g *Group) NewestStamp(id object.ID) (Stamp, bool) {
	var newest Stamp
	found := false
	for _, r := range g.replicas {
		if m, ok := r.meta[id]; ok {
			if !found || newest.Less(m.stamp) {
				newest = m.stamp
			}
			found = true
		}
	}
	return newest, found
}

// QuiescentApply mutates id directly at replica 0, outside any simulation
// process — the proc-free flush the chaos harness needs after the event
// queue has drained (cache replicas with unflushed lattice deltas must
// reach the store before convergence is audited). SyncAll propagates the
// result.
func (g *Group) QuiescentApply(id object.ID, fn func(*object.Object) error) error {
	src := g.replicas[0]
	o, err := src.St.Get(id)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNotFound, id)
	}
	before := o.Size()
	if err := fn(o); err != nil {
		return err
	}
	_ = src.St.UpdateAccounting(o.Size() - before)
	m, ok := src.meta[id]
	if !ok {
		m = &objMeta{vc: NewVClock(len(g.replicas))}
		src.meta[id] = m
	}
	m.stamp = g.nextStamp(src.Index)
	m.vc.Tick(src.Index)
	return nil
}

// PrimaryStamp returns the stamp the primary replica holds for id — the
// stamp of the data a linearizable read just returned (cache fills record
// it so later audits can compare entries against NewestStamp).
func (g *Group) PrimaryStamp(id object.ID) (Stamp, bool) {
	m, ok := g.primary(id).meta[id]
	if !ok {
		return Stamp{}, false
	}
	return m.stamp, true
}

// StampAt returns the version stamp a replica holds for id (tests/metrics).
func (g *Group) StampAt(replica int, id object.ID) (Stamp, bool) {
	m, ok := g.replicas[replica].meta[id]
	if !ok {
		return Stamp{}, false
	}
	return m.stamp, true
}

// Mirror synchronously copies the current replica-0 state of the given
// objects to every other replica, creating them where missing. The PCSI
// core uses this to keep metadata (directories, code objects) replicated
// after mutating them on the authoritative replica.
func (g *Group) Mirror(p *sim.Proc, ids ...object.ID) error {
	src := g.replicas[0]
	for _, id := range ids {
		o, err := src.St.Get(id)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrNotFound, id)
		}
		m, ok := src.meta[id]
		if !ok {
			m = &objMeta{vc: NewVClock(len(g.replicas))}
			src.meta[id] = m
		}
		m.stamp = g.nextStamp(src.Index)
		m.vc.Tick(src.Index)
		for _, r := range g.replicas[1:] {
			g.net.Send(p, src.Node, r.Node, 128+int(o.Size()))
			g.mirrorObject(r, o, m)
		}
	}
	return nil
}

// mirrorObject installs a structural copy of o (including directory
// entries and labels) at replica r.
func (g *Group) mirrorObject(r *Replica, o *object.Object, m *objMeta) {
	if r.St.Contains(o.ID()) {
		_ = r.St.Delete(o.ID())
	}
	clone := o.Clone(o.ID())
	_ = r.St.Insert(clone)
	rm, ok := r.meta[o.ID()]
	if !ok {
		rm = &objMeta{vc: NewVClock(len(g.replicas))}
		r.meta[o.ID()] = rm
	}
	rm.stamp = m.stamp
	rm.vc.Merge(m.vc)
}

// Delete removes an object from every replica (GC sweep propagation).
func (g *Group) Delete(ids ...object.ID) {
	for _, id := range ids {
		for _, r := range g.replicas {
			_ = r.St.Delete(id)
			delete(r.meta, id)
		}
		delete(g.locks, id)
	}
}

// Primary0Store returns replica 0's store — the authoritative metadata
// copy the PCSI core resolves namespaces against.
func (g *Group) Primary0Store() *store.Store { return g.replicas[0].St }

// Primary0Node returns replica 0's node.
func (g *Group) Primary0Node() simnet.NodeID { return g.replicas[0].Node }

// StartAntiEntropy launches the background gossip process: every interval,
// each replica exchanges state with a random peer, merging per-object by
// vector clock (LWW on conflict). Runs until the simulation ends.
func (g *Group) StartAntiEntropy(interval time.Duration) {
	if len(g.replicas) < 2 {
		return
	}
	g.env.Go("anti-entropy", func(p *sim.Proc) {
		for {
			p.Sleep(interval)
			a := g.replicas[g.env.Rand().Intn(len(g.replicas))]
			b := g.replicas[g.env.Rand().Intn(len(g.replicas))]
			if a == b || a.down || b.down || !g.net.Reachable(a.Node, b.Node) {
				continue
			}
			g.GossipRounds++
			// One round trip carries the digests plus deltas.
			g.net.Send(p, a.Node, b.Node, 512)
			g.syncPair(a, b)
			g.net.Send(p, b.Node, a.Node, 512)
		}
	})
}

// SyncAll performs full pairwise anti-entropy until quiescent — used by
// tests and by graceful shutdown to force convergence.
func (g *Group) SyncAll() {
	for i := 0; i < len(g.replicas); i++ {
		for j := 0; j < len(g.replicas); j++ {
			if i != j {
				g.syncPair(g.replicas[i], g.replicas[j])
			}
		}
	}
}

// syncPair merges object states bidirectionally between two replicas.
// Down or partitioned replicas cannot participate.
func (g *Group) syncPair(a, b *Replica) {
	if a.down || b.down || !g.net.Reachable(a.Node, b.Node) {
		return
	}
	g.pullInto(a, b)
	g.pullInto(b, a)
}

// Divergent returns (sorted) the IDs of objects whose payload, version, or
// mutability differ across live replicas — the eventual-convergence check
// run by the chaos harness after heal + SyncAll. Missing objects count as
// divergence.
func (g *Group) Divergent() []object.ID {
	var out []object.ID
	if len(g.replicas) < 2 {
		return nil
	}
	seen := make(map[object.ID]bool)
	for _, r := range g.replicas {
		for _, id := range r.St.IDs() {
			seen[id] = true
		}
	}
	ids := make([]object.ID, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		var ref *object.Object
		diverged := false
		for _, r := range g.replicas {
			if r.down {
				continue
			}
			o, err := r.St.Get(id)
			if err != nil {
				diverged = true
				break
			}
			if ref == nil {
				ref = o
				continue
			}
			if o.Version() != ref.Version() || o.Mutability() != ref.Mutability() ||
				!bytes.Equal(o.Read(), ref.Read()) {
				diverged = true
				break
			}
		}
		if diverged {
			out = append(out, id)
		}
	}
	return out
}

// pullInto copies every object state from src that is newer than dst's.
func (g *Group) pullInto(dst, src *Replica) {
	for _, id := range src.St.IDs() {
		so, err := src.St.Get(id)
		if err != nil {
			continue
		}
		sm := src.meta[id]
		dm, ok := dst.meta[id]
		if ok {
			switch dm.vc.Compare(sm.vc) {
			case Concurrent:
				g.Conflicts++
				if g.mergeConcurrent(dst, src, id, so, dm, sm) {
					continue
				}
			case After, Equal:
				// dst is as new or newer; nothing to pull (but merge clocks).
				dm.vc.Merge(sm.vc)
				continue
			}
			if sm.stamp.Less(dm.stamp) {
				dm.vc.Merge(sm.vc)
				continue
			}
		}
		g.applyState(dst, id, so.Kind(), so.Read(), so.Version(), so.Mutability(), sm.stamp, sm.vc)
	}
}

// mergeConcurrent resolves a true conflict through the installed merger:
// the least upper bound of both payloads is installed at both replicas
// under the greater stamp and the merged clock, so the exchange converges
// without either side's update being lost. Returns false (caller falls
// back to LWW) when no merger is set or the payloads are not mergeable.
func (g *Group) mergeConcurrent(dst, src *Replica, id object.ID, so *object.Object, dm, sm *objMeta) bool {
	if g.merger == nil {
		return false
	}
	do, err := dst.St.Get(id)
	if err != nil {
		return false
	}
	merged, ok := g.merger(do.Read(), so.Read())
	if !ok {
		return false
	}
	stamp := dm.stamp
	if stamp.Less(sm.stamp) {
		stamp = sm.stamp
	}
	vc := dm.vc.Clone()
	vc.Merge(sm.vc)
	ver := do.Version()
	if so.Version() > ver {
		ver = so.Version()
	}
	g.applyState(dst, id, so.Kind(), merged, ver+1, do.Mutability(), stamp, vc)
	g.applyState(src, id, so.Kind(), merged, ver+1, do.Mutability(), stamp, vc)
	g.Merges++
	return true
}

package consistency

import (
	"sort"

	"repro/internal/sim"
)

// History checking (Herlihy & Wing linearizability, Wing & Gong search)
// for single-register read/write histories. Used by tests to validate that
// the Linearizable level really is linearizable under concurrency.

// OpKind distinguishes history operations.
type OpKind uint8

// The operation kinds.
const (
	OpRead OpKind = iota
	OpWrite
)

// HistOp is one completed operation in a concurrent history.
type HistOp struct {
	Client int
	Kind   OpKind
	// Value written (OpWrite) or observed (OpRead).
	Value string
	// Invoke and Return bracket the operation in (virtual) time.
	Invoke sim.Time
	Return sim.Time
}

// History accumulates operations from concurrent clients.
type History struct {
	ops []HistOp
}

// Add records a completed operation.
func (h *History) Add(op HistOp) { h.ops = append(h.ops, op) }

// Len returns the number of recorded operations.
func (h *History) Len() int { return len(h.ops) }

// Linearizable reports whether the history has a legal linearisation for a
// single register with the given initial value: a total order of all
// operations that (a) respects real-time precedence (op A before op B if
// A.Return < B.Invoke) and (b) is a legal sequential register history
// (every read observes the most recent write, or the initial value).
//
// The search is exponential in the worst case; histories of up to a few
// dozen concurrent operations check quickly.
func (h *History) Linearizable(initial string) bool {
	ops := append([]HistOp(nil), h.ops...)
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Invoke < ops[j].Invoke })
	remaining := make([]bool, len(ops))
	for i := range remaining {
		remaining[i] = true
	}
	memo := make(map[string]bool)
	return h.search(ops, remaining, len(ops), initial, memo)
}

// search tries to extend a linearisation. remaining marks unlinearised ops.
func (h *History) search(ops []HistOp, remaining []bool, left int, reg string, memo map[string]bool) bool {
	if left == 0 {
		return true
	}
	key := stateKey(remaining, reg)
	if done, ok := memo[key]; ok {
		return done
	}
	// An op is a candidate for the next linearisation point iff no other
	// remaining op returned before it was invoked.
	for i, rem := range remaining {
		if !rem {
			continue
		}
		minimal := true
		for j, rem2 := range remaining {
			if rem2 && j != i && ops[j].Return < ops[i].Invoke {
				minimal = false
				break
			}
		}
		if !minimal {
			continue
		}
		op := ops[i]
		if op.Kind == OpRead && op.Value != reg {
			continue // this read cannot linearise here
		}
		next := reg
		if op.Kind == OpWrite {
			next = op.Value
		}
		remaining[i] = false
		if h.search(ops, remaining, left-1, next, memo) {
			remaining[i] = true
			memo[key] = true
			return true
		}
		remaining[i] = true
	}
	memo[key] = false
	return false
}

func stateKey(remaining []bool, reg string) string {
	b := make([]byte, 0, len(remaining)+1+len(reg))
	for _, r := range remaining {
		if r {
			b = append(b, '1')
		} else {
			b = append(b, '0')
		}
	}
	b = append(b, '|')
	b = append(b, reg...)
	return string(b)
}

// Package consistency implements the paper's "simple consistency menu"
// (§3.3): every operation executes at one of exactly two levels,
// linearizable or eventual.
//
// Linearizable operations are serialised through a per-object primary
// replica and synchronously replicated to a majority before
// acknowledgement. Eventual operations complete at the closest replica and
// propagate in the background via anti-entropy gossip; conflicting
// concurrent updates are detected with vector clocks and resolved
// last-writer-wins, with conflicts counted. Quorum sizes and replica
// placement are deliberately hidden from the API, as the paper prescribes
// ("we deliberately hide mechanism details like quorum sizes from the
// application").
package consistency

import "fmt"

// Level selects a consistency level for one operation.
type Level uint8

// The two entries on the menu.
const (
	Linearizable Level = iota
	Eventual
)

// String names the level.
func (l Level) String() string {
	switch l {
	case Linearizable:
		return "linearizable"
	case Eventual:
		return "eventual"
	default:
		return fmt.Sprintf("level(%d)", uint8(l))
	}
}

// Stamp is a last-writer-wins version stamp: a Lamport counter with the
// writing replica's index as tiebreak.
type Stamp struct {
	Counter uint64
	Writer  int
}

// Less orders stamps (LWW: greater stamp wins).
func (s Stamp) Less(t Stamp) bool {
	if s.Counter != t.Counter {
		return s.Counter < t.Counter
	}
	return s.Writer < t.Writer
}

// String renders the stamp.
func (s Stamp) String() string { return fmt.Sprintf("%d@r%d", s.Counter, s.Writer) }

// VClock is a vector clock with one slot per replica, used to distinguish
// causally-ordered updates from true conflicts during anti-entropy.
type VClock []uint64

// NewVClock returns a zero clock for n replicas.
func NewVClock(n int) VClock { return make(VClock, n) }

// Clone copies the clock.
func (v VClock) Clone() VClock { return append(VClock(nil), v...) }

// Tick increments replica i's slot.
func (v VClock) Tick(i int) { v[i]++ }

// Merge sets v to the element-wise maximum of v and u.
func (v VClock) Merge(u VClock) {
	for i := range v {
		if i < len(u) && u[i] > v[i] {
			v[i] = u[i]
		}
	}
}

// Compare returns -1 if v happens-before u, +1 if u happens-before v,
// 0 if equal, and Concurrent if neither dominates.
func (v VClock) Compare(u VClock) Ordering {
	less, greater := false, false
	for i := range v {
		var ui uint64
		if i < len(u) {
			ui = u[i]
		}
		switch {
		case v[i] < ui:
			less = true
		case v[i] > ui:
			greater = true
		}
	}
	switch {
	case less && greater:
		return Concurrent
	case less:
		return Before
	case greater:
		return After
	default:
		return Equal
	}
}

// Ordering is the result of a vector-clock comparison.
type Ordering int8

// The possible orderings.
const (
	Before     Ordering = -1
	Equal      Ordering = 0
	After      Ordering = 1
	Concurrent Ordering = 2
)

// String names the ordering.
func (o Ordering) String() string {
	switch o {
	case Before:
		return "before"
	case Equal:
		return "equal"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	default:
		return "invalid"
	}
}

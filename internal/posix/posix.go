// Package posix implements a minimal single-server, POSIX-flavoured file
// interface used to demonstrate §2.2's argument: interfaces designed with
// the assumption that everything is local are fast locally (a 500 ns
// system call, Table 1) but behave badly when the backing store is
// actually remote — calls block for network time the interface never
// surfaces, and an unreachable server produces errors a local file system
// could never return.
package posix

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/media"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/store"
)

// SyscallCost is Table 1's "Linux system call: 500 ns", paid on every
// operation regardless of where the data lives.
const SyscallCost = 500 * time.Nanosecond

// Errors mirroring the awkward remote cases.
var (
	ErrBadFD = errors.New("posix: bad file descriptor")
	// ErrEIO is what a POSIX interface is forced to return when the
	// "local" disk is a dead remote server — the NFS problem the paper
	// cites.
	ErrEIO    = errors.New("posix: input/output error (EIO)")
	ErrNoEnt  = errors.New("posix: no such file or directory (ENOENT)")
	ErrExists = errors.New("posix: file exists (EEXIST)")
)

// FS is a file system with POSIX-shaped calls. Local by default; Remote
// mounts put a network between the call and the data without changing the
// interface.
type FS struct {
	st    *store.Store
	net   *simnet.Network
	local simnet.NodeID
	// remote is the backing server when mounted remotely.
	remote    simnet.NodeID
	isRemote  bool
	reachable bool

	files map[string][]byte
	fds   map[int]*fd
	next  int
}

type fd struct {
	name string
	off  int64
}

// NewLocal returns a purely local FS on the given node.
func NewLocal(net *simnet.Network, node simnet.NodeID) *FS {
	return &FS{
		st: store.New(media.NVMe, 0), net: net, local: node,
		reachable: true,
		files:     make(map[string][]byte),
		fds:       make(map[int]*fd),
		next:      3,
	}
}

// NewRemote returns an FS whose data lives on server, accessed through
// the identical interface.
func NewRemote(net *simnet.Network, client, server simnet.NodeID) *FS {
	f := NewLocal(net, client)
	f.remote = server
	f.isRemote = true
	return f
}

// SetReachable toggles the remote server's availability.
func (f *FS) SetReachable(ok bool) { f.reachable = ok }

// hop charges the hidden network cost of a "local" call.
func (f *FS) hop(p *sim.Proc, size int) error {
	p.Sleep(SyscallCost)
	if !f.isRemote {
		return nil
	}
	if !f.reachable {
		// The interface has no way to say "the disk is a dead server";
		// all it can do is EIO after a timeout.
		p.Sleep(time.Second)
		return ErrEIO
	}
	f.net.Send(p, f.local, f.remote, 64)
	f.net.Send(p, f.remote, f.local, 64+size)
	return nil
}

// Creat makes a file.
func (f *FS) Creat(p *sim.Proc, name string) error {
	if err := f.hop(p, 0); err != nil {
		return err
	}
	if _, ok := f.files[name]; ok {
		return ErrExists
	}
	f.files[name] = nil
	return nil
}

// Open returns a file descriptor.
func (f *FS) Open(p *sim.Proc, name string) (int, error) {
	if err := f.hop(p, 0); err != nil {
		return -1, err
	}
	if _, ok := f.files[name]; !ok {
		return -1, ErrNoEnt
	}
	n := f.next
	f.next++
	f.fds[n] = &fd{name: name}
	return n, nil
}

// Write appends at the descriptor's offset.
func (f *FS) Write(p *sim.Proc, fdn int, data []byte) (int, error) {
	d, ok := f.fds[fdn]
	if !ok {
		return 0, ErrBadFD
	}
	if err := f.hop(p, len(data)); err != nil {
		return 0, err
	}
	buf := f.files[d.name]
	if gap := d.off - int64(len(buf)); gap > 0 {
		// One grow for the whole hole; a byte-at-a-time append is O(n²)
		// for sparse writes far past EOF.
		buf = append(buf, make([]byte, gap)...)
	}
	buf = append(buf[:d.off], data...)
	f.files[d.name] = buf
	d.off += int64(len(data))
	p.Sleep(f.st.Media().WriteCost(int64(len(data))))
	return len(data), nil
}

// Read fills buf from the descriptor's offset.
func (f *FS) Read(p *sim.Proc, fdn int, buf []byte) (int, error) {
	d, ok := f.fds[fdn]
	if !ok {
		return 0, ErrBadFD
	}
	if err := f.hop(p, len(buf)); err != nil {
		return 0, err
	}
	data := f.files[d.name]
	if d.off >= int64(len(data)) {
		return 0, nil
	}
	n := copy(buf, data[d.off:])
	d.off += int64(n)
	p.Sleep(f.st.Media().ReadCost(int64(n)))
	return n, nil
}

// Close releases the descriptor.
func (f *FS) Close(fdn int) error {
	if _, ok := f.fds[fdn]; !ok {
		return ErrBadFD
	}
	delete(f.fds, fdn)
	return nil
}

// Seek repositions the descriptor.
func (f *FS) Seek(fdn int, off int64) error {
	d, ok := f.fds[fdn]
	if !ok {
		return ErrBadFD
	}
	if off < 0 {
		return fmt.Errorf("posix: invalid offset %d", off)
	}
	d.off = off
	return nil
}

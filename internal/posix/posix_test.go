package posix

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

func setup(seed int64) (*sim.Env, *simnet.Network) {
	env := sim.NewEnv(seed)
	return env, simnet.New(env, simnet.DC2021)
}

func TestLocalReadWrite(t *testing.T) {
	env, net := setup(1)
	fs := NewLocal(net, net.AddNode(0))
	env.Go("c", func(p *sim.Proc) {
		if err := fs.Creat(p, "f"); err != nil {
			t.Error(err)
			return
		}
		fd, err := fs.Open(p, "f")
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := fs.Write(p, fd, []byte("hello")); err != nil {
			t.Error(err)
			return
		}
		if err := fs.Seek(fd, 0); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 5)
		n, err := fs.Read(p, fd, buf)
		if err != nil || n != 5 || string(buf) != "hello" {
			t.Errorf("Read = %d %q %v", n, buf, err)
		}
		if err := fs.Close(fd); err != nil {
			t.Error(err)
		}
	})
	env.Run()
}

func TestErrnoStyleErrors(t *testing.T) {
	env, net := setup(2)
	fs := NewLocal(net, net.AddNode(0))
	env.Go("c", func(p *sim.Proc) {
		if _, err := fs.Open(p, "ghost"); !errors.Is(err, ErrNoEnt) {
			t.Errorf("open missing = %v", err)
		}
		if err := fs.Creat(p, "f"); err != nil {
			t.Error(err)
		}
		if err := fs.Creat(p, "f"); !errors.Is(err, ErrExists) {
			t.Errorf("double creat = %v", err)
		}
		if _, err := fs.Read(p, 99, nil); !errors.Is(err, ErrBadFD) {
			t.Errorf("bad fd read = %v", err)
		}
		if err := fs.Close(99); !errors.Is(err, ErrBadFD) {
			t.Errorf("bad fd close = %v", err)
		}
	})
	env.Run()
}

func TestLocalOpsAreFast(t *testing.T) {
	// Table 1: a system call is ~500ns; local operations must stay in the
	// microsecond range.
	env, net := setup(3)
	fs := NewLocal(net, net.AddNode(0))
	var took time.Duration
	env.Go("c", func(p *sim.Proc) {
		if err := fs.Creat(p, "f"); err != nil {
			t.Error(err)
			return
		}
		fd, err := fs.Open(p, "f")
		if err != nil {
			t.Error(err)
			return
		}
		start := p.Now()
		if _, err := fs.Write(p, fd, make([]byte, 64)); err != nil {
			t.Error(err)
		}
		took = p.Now().Sub(start)
	})
	env.Run()
	if took > 100*time.Microsecond {
		t.Errorf("local write = %v, want microseconds", took)
	}
}

func TestRemoteSameInterfaceHiddenCost(t *testing.T) {
	// §2.2: the identical interface, silently paying cross-rack RTTs.
	env, net := setup(4)
	client, server := net.AddNode(0), net.AddNode(1)
	local := NewLocal(net, client)
	remote := NewRemote(net, client, server)
	var localT, remoteT time.Duration
	env.Go("c", func(p *sim.Proc) {
		for _, tc := range []struct {
			fs  *FS
			out *time.Duration
		}{{local, &localT}, {remote, &remoteT}} {
			if err := tc.fs.Creat(p, "f"); err != nil {
				t.Error(err)
				return
			}
			fd, err := tc.fs.Open(p, "f")
			if err != nil {
				t.Error(err)
				return
			}
			start := p.Now()
			if _, err := tc.fs.Write(p, fd, make([]byte, 64)); err != nil {
				t.Error(err)
			}
			*tc.out = p.Now().Sub(start)
		}
	})
	env.Run()
	if remoteT < 10*localT {
		t.Errorf("remote write %v not ≫ local %v — hidden cost missing", remoteT, localT)
	}
}

func TestUnreachableRemoteReturnsEIO(t *testing.T) {
	// The paper's NFS criticism: a dead server produces errors (after a
	// timeout) that no local file system would return.
	env, net := setup(5)
	fs := NewRemote(net, net.AddNode(0), net.AddNode(1))
	env.Go("c", func(p *sim.Proc) {
		if err := fs.Creat(p, "f"); err != nil {
			t.Error(err)
			return
		}
		fd, err := fs.Open(p, "f")
		if err != nil {
			t.Error(err)
			return
		}
		fs.SetReachable(false)
		start := p.Now()
		_, err = fs.Read(p, fd, make([]byte, 1))
		if !errors.Is(err, ErrEIO) {
			t.Errorf("dead-server read = %v, want EIO", err)
		}
		if p.Now().Sub(start) < time.Second {
			t.Error("EIO did not block for the timeout — too honest for POSIX")
		}
	})
	env.Run()
}

func TestSeekValidation(t *testing.T) {
	env, net := setup(6)
	fs := NewLocal(net, net.AddNode(0))
	env.Go("c", func(p *sim.Proc) {
		if err := fs.Creat(p, "f"); err != nil {
			t.Error(err)
			return
		}
		fd, err := fs.Open(p, "f")
		if err != nil {
			t.Error(err)
			return
		}
		if err := fs.Seek(fd, -1); err == nil {
			t.Error("negative seek accepted")
		}
		if err := fs.Seek(99, 0); !errors.Is(err, ErrBadFD) {
			t.Errorf("seek on bad fd = %v", err)
		}
	})
	env.Run()
}

func TestSparseWrite(t *testing.T) {
	env, net := setup(7)
	fs := NewLocal(net, net.AddNode(0))
	env.Go("c", func(p *sim.Proc) {
		if err := fs.Creat(p, "f"); err != nil {
			t.Error(err)
			return
		}
		fd, err := fs.Open(p, "f")
		if err != nil {
			t.Error(err)
			return
		}
		if err := fs.Seek(fd, 4); err != nil {
			t.Error(err)
			return
		}
		if _, err := fs.Write(p, fd, []byte("xy")); err != nil {
			t.Error(err)
			return
		}
		if err := fs.Seek(fd, 0); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 6)
		n, err := fs.Read(p, fd, buf)
		if err != nil || n != 6 {
			t.Errorf("Read = %d, %v", n, err)
			return
		}
		want := []byte{0, 0, 0, 0, 'x', 'y'}
		for i := range want {
			if buf[i] != want[i] {
				t.Errorf("buf = %v, want %v", buf, want)
				return
			}
		}
	})
	env.Run()
}

func TestSparseWriteFarPastEOF(t *testing.T) {
	// Regression: the hole fill used to grow byte-at-a-time (O(n²) for a
	// seek far past EOF); it must be a single zero-fill grow and the hole
	// must read back as zeros.
	env, net := setup(9)
	fs := NewLocal(net, net.AddNode(0))
	env.Go("c", func(p *sim.Proc) {
		if err := fs.Creat(p, "f"); err != nil {
			t.Error(err)
			return
		}
		fd, err := fs.Open(p, "f")
		if err != nil {
			t.Error(err)
			return
		}
		const hole = 1 << 20
		if err := fs.Seek(fd, hole); err != nil {
			t.Error(err)
			return
		}
		if _, err := fs.Write(p, fd, []byte("tail")); err != nil {
			t.Error(err)
			return
		}
		if err := fs.Seek(fd, 0); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, hole+4)
		n, err := fs.Read(p, fd, buf)
		if err != nil || n != hole+4 {
			t.Errorf("Read = %d, %v", n, err)
			return
		}
		for i := 0; i < hole; i += 4096 {
			if buf[i] != 0 {
				t.Errorf("hole byte %d = %d, want 0", i, buf[i])
				return
			}
		}
		if string(buf[hole:]) != "tail" {
			t.Errorf("tail = %q", buf[hole:])
		}
	})
	env.Run()
}

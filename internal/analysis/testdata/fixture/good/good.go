// Package good respects every invariant; the analyzers must stay silent on
// this entire package.
package good

import (
	"math/rand"
	"time"

	"fixture/internal/object"
	"fixture/internal/sim"
)

// tick shows durations and time construction are fine without a directive.
const tick = 10 * time.Millisecond

// stream is a legal, explicitly seeded package stream.
var stream = rand.New(rand.NewSource(1))

// Seeded draws from an explicitly seeded environment stream.
func Seeded() int {
	env := sim.NewEnv(42)
	return env.Rand().Intn(100) + stream.Intn(int(tick))
}

// Reads never need a capability annotation.
func Reads(o *object.Object) int { return o.Len() }

// clock exists to shadow the time package name below.
type clock struct{}

// Now on clock is not time.Now.
func (clock) Now() int { return 0 }

// Shadowed proves a local identifier named time does not trip the analyzer.
func Shadowed() int {
	time := clock{}
	return time.Now()
}

// Measured reads the real clock under a doc-comment directive covering the
// whole function.
//
//pcsi:allow wallclock fixture-sanctioned real measurement.
func Measured(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// Spread proves a standalone directive covers a multi-line statement,
// including a closure body.
func Spread(run func(func() time.Time)) {
	//pcsi:allow wallclock covers the whole call below.
	run(func() time.Time {
		return time.Now()
	})
}

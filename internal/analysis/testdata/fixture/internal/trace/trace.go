// Package trace violates its own layering rule: the tracer may import only
// internal/sim and the stdlib, never another substrate like metrics.
package trace

import (
	"fixture/internal/metrics" // want: layering
	"fixture/internal/sim"
)

// Span is a placeholder span carrying its environment.
type Span struct {
	Env *sim.Env
	c   metrics.Counter
}

// Touch keeps the imports used.
func (s *Span) Touch() { s.c.Inc() }

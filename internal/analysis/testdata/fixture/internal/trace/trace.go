// Package trace violates its own layering rule: the tracer may import only
// internal/sim and the stdlib, never another substrate like metrics.
package trace

import (
	"fixture/internal/metrics" // want: layering
	"fixture/internal/sim"
)

// Span is a placeholder span carrying its environment.
type Span struct {
	Env *sim.Env
	c   metrics.Counter
}

// Touch keeps the imports used.
func (s *Span) Touch() { s.c.Inc() }

// Close ends the span (stub). The spanbalance analyzer requires it on
// every return and panic path of the function that Started the span.
func (s *Span) Close(p *sim.Proc) {}

// Tracer is a placeholder tracer.
type Tracer struct{}

// Of returns env's tracer (stub: a fresh one).
func Of(env *sim.Env) *Tracer { return &Tracer{} }

// Start opens a span.
func (t *Tracer) Start(p *sim.Proc, cat, name string) *Span { return &Span{} }

// StartSpan opens a child span.
func (t *Tracer) StartSpan(p *sim.Proc, parent *Span, cat, name string) *Span { return &Span{} }

// Package gc violates layering: the state layer reaching up into compute.
package gc

import "fixture/internal/faas" // want: layering

// Collect is a placeholder that leans on compute.
func Collect() string { return faas.Invoke("gc", nil) }

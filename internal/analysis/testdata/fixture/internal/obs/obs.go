// Package obs violates its own layering rule: the telemetry plane may
// import only internal/sim, internal/metrics, internal/trace, and the
// stdlib — it observes the network through the metric registry, never by
// importing the substrate it watches.
package obs

import (
	"fixture/internal/metrics"
	"fixture/internal/sim"
	"fixture/internal/simnet" // want: layering
)

// Plane is a placeholder telemetry plane.
type Plane struct {
	Env  *sim.Env
	seen metrics.Counter
}

// Sample keeps the imports used.
func (p *Plane) Sample() {
	_ = simnet.Hold
	p.seen.Inc()
}

// Package sim is a miniature stand-in for the real simulation substrate.
package sim

import "math/rand"

// Env is a virtual-time environment stub carrying a seeded random stream.
type Env struct {
	rng *rand.Rand
}

// NewEnv returns an Env whose stream is seeded with seed.
func NewEnv(seed int64) *Env {
	return &Env{rng: rand.New(rand.NewSource(seed))}
}

// Rand returns the deterministic stream.
func (e *Env) Rand() *rand.Rand { return e.rng }

// Package sim is a miniature stand-in for the real simulation substrate.
package sim

import "math/rand"

// Env is a virtual-time environment stub carrying a seeded random stream.
type Env struct {
	rng *rand.Rand
}

// NewEnv returns an Env whose stream is seeded with seed.
func NewEnv(seed int64) *Env {
	return &Env{rng: rand.New(rand.NewSource(seed))}
}

// Rand returns the deterministic stream.
func (e *Env) Rand() *rand.Rand { return e.rng }

// ForkRand derives a labeled workload stream (stub).
func (e *Env) ForkRand(label string) *rand.Rand {
	return rand.New(rand.NewSource(int64(len(label))))
}

// ObserverRand derives a labeled observer stream (stub). Only the
// observer-domain packages may call it; the obsrand analyzer enforces that.
func (e *Env) ObserverRand(label string) *rand.Rand {
	return rand.New(rand.NewSource(int64(len(label)) + 1))
}

// Proc is a stub simulated process.
type Proc struct {
	env *Env
}

// Sleep advances virtual time (stub). It is an order-sensitive scheduling
// effect for the maprange analyzer.
func (p *Proc) Sleep(d int64) {}

// Go launches a stub process synchronously.
func (e *Env) Go(name string, fn func(*Proc)) { fn(&Proc{env: e}) }

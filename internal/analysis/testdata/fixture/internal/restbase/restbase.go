// Package restbase violates layering: a baseline importing the core it is
// measured against.
package restbase

import "fixture/internal/core" // want: layering

// Serve is a placeholder front door.
func Serve(c *core.Client) { c.Put(1, nil) }

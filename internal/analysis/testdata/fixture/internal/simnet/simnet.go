// Package simnet violates layering: a substrate importing state.
package simnet

import "fixture/internal/object" // want: layering

// Hold keeps the forbidden import used.
var Hold = object.New()

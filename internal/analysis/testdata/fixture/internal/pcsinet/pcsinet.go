// Package pcsinet violates the capability escape discipline: it is a
// client-facing package, yet raw object handles leak out of it through
// every sink the capescape analyzer knows — return types, opaque return
// flows, package vars, channel sends, and exported fields. The clean
// declarations at the bottom pin the exemptions.
package pcsinet

import "fixture/internal/object"

// Cached's type carries a raw handle: flagged at the declaration.
var Cached *object.Object // want: capescape

// current is opaque (any); only the assignment in SetCurrent escapes.
var current any

// events is an opaque channel; only the send in Publish escapes.
var events = make(chan any, 1)

// Fetch returns the raw handle type: the type rule flags the decl.
func Fetch() *object.Object { return object.New() } // want: capescape

// Opaque hides the handle behind any: the flow rule traces it back to
// the composite literal inside object.New.
func Opaque() any { return object.New() } // want: capescape

// SetCurrent stores a handle in a package-level var.
func SetCurrent() {
	current = object.New() // want: capescape
}

// Publish sends a handle over a package-level channel.
func Publish() {
	events <- object.New() // want: capescape
}

// Conn is an exported record with an opaque exported field.
type Conn struct{ Last any }

// Stash stores a handle in an exported field of an exported type.
func (c *Conn) Stash() {
	c.Last = object.New() // want: capescape
}

// fetch is unexported: invisible to clients, no diagnostic.
func fetch() *object.Object { return object.New() }

// Wrapped hides its handle behind an unexported field, which clients
// cannot reach: the type carries no handle.
type Wrapped struct{ o *object.Object }

// Wrap is clean: the handle binds to an unexported field, so neither the
// type rule nor the flow rule fires.
func Wrap() Wrapped { return Wrapped{o: fetch()} }

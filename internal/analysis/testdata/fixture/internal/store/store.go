// Package store is a miniature stand-in for the real durable store.
package store

import "fixture/internal/object"

// Store maps ids to objects.
type Store struct {
	objs map[int]*object.Object
}

// New returns an empty store.
func New() *Store { return &Store{objs: make(map[int]*object.Object)} }

// Insert adds o under id.
func (s *Store) Insert(id int, o *object.Object) { s.objs[id] = o }

// Get looks up id.
func (s *Store) Get(id int) *object.Object { return s.objs[id] }

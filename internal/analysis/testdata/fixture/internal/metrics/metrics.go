// Package metrics is a miniature stand-in for the measurement substrate.
package metrics

// Counter is a placeholder metric.
type Counter struct{ n int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Package core is a miniature stand-in for the capability-checked core.
// It is a retry-boundary package: every error below is classified one of
// the sanctioned ways, so the errclass analyzer stays quiet.
package core

import (
	"errors"

	"fixture/internal/object"
	"fixture/internal/obs"
	"fixture/internal/store"
)

// ErrDenied is cleared by the errors.Is mention in Classify.
var ErrDenied = errors.New("core: rights check failed")

// RefError is cleared by the errors.As target in Classify.
type RefError struct{ ID int }

func (e *RefError) Error() string { return "core: bad ref" }

// Classify is a classifier (func(error) bool) listing the errors above.
func Classify(err error) bool {
	var re *RefError
	if errors.As(err, &re) {
		return false
	}
	return errors.Is(err, ErrDenied)
}

// Client mediates every mutation behind a (stub) rights check. The
// telemetry plane import is legal here: core is a sanctioned obs client,
// so the layering analyzer must stay silent on it.
type Client struct {
	st    *store.Store
	plane obs.Plane
}

// NewClient returns a client over st.
func NewClient(st *store.Store) *Client { return &Client{st: st} }

// Put writes data under id after the rights check.
func (c *Client) Put(id int, data []byte) {
	o := object.New()
	o.SetData(data)
	c.st.Insert(id, o)
}

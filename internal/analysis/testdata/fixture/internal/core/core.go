// Package core is a miniature stand-in for the capability-checked core.
package core

import (
	"fixture/internal/object"
	"fixture/internal/store"
)

// Client mediates every mutation behind a (stub) rights check.
type Client struct {
	st *store.Store
}

// NewClient returns a client over st.
func NewClient(st *store.Store) *Client { return &Client{st: st} }

// Put writes data under id after the rights check.
func (c *Client) Put(id int, data []byte) {
	o := object.New()
	o.SetData(data)
	c.st.Insert(id, o)
}

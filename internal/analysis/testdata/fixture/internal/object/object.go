// Package object is a miniature stand-in for the real object layer.
package object

// Object is a blob whose mutators the capdiscipline analyzer guards.
type Object struct {
	data []byte
}

// New returns an empty object.
func New() *Object { return &Object{} }

// SetData replaces the content.
func (o *Object) SetData(b []byte) { o.data = append(o.data[:0], b...) }

// Append adds b to the content.
func (o *Object) Append(b []byte) { o.data = append(o.data, b...) }

// Len reports the content size; reads are unrestricted.
func (o *Object) Len() int { return len(o.data) }

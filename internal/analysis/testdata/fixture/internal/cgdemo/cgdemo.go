// Package cgdemo is a diagnostic-free fixture for the call-graph unit
// tests: one static call, one function-value call, one tracked literal,
// one in-place literal, and one interface call resolved by CHA.
package cgdemo

type runner interface{ run() }

type fast struct{}

func (fast) run() {}

type slow struct{}

func (*slow) run() {}

// invoke calls through the interface; CHA gives it an edge to every
// concrete implementation in the module.
func invoke(r runner) { r.run() }

func helper() {}

// entry is the root the reachability test starts from.
//
//pcsi:hotpath
func entry() {
	helper()
	f := helper
	f()
	g := func() {}
	g()
	func() { helper() }()
	invoke(&slow{})
}

// Package fault violates its own layering rule: the fault injector may
// import only internal/sim, internal/simnet, internal/cluster, and the
// stdlib — never another substrate like metrics.
package fault

import (
	"fmt"

	"fixture/internal/metrics" // want: layering
	"fixture/internal/sim"
)

// Injector is a placeholder injector carrying its environment.
type Injector struct {
	Env *sim.Env
	c   metrics.Counter
}

// Touch keeps the imports used.
func (in *Injector) Touch() { in.c.Inc() }

// Classified is implemented by errors carrying their own retry
// classification; the errclass analyzer resolves it by name.
type Classified interface {
	Retryable() bool
}

// classed is the comparable classified sentinel behind Fatal/Transient.
type classed struct {
	msg   string
	retry bool
}

func (e classed) Error() string   { return e.msg }
func (e classed) Retryable() bool { return e.retry }

// Fatal returns a non-retryable sentinel.
func Fatal(msg string) error { return classed{msg: msg} }

// Transient returns a retryable sentinel.
func Transient(msg string) error { return classed{msg: msg, retry: true} }

// Retryable is the stub substrate classifier.
func Retryable(err error) bool {
	if c, ok := err.(Classified); ok {
		return c.Retryable()
	}
	return false
}

// Fatalf returns a formatted non-retryable sentinel.
func Fatalf(format string, args ...any) error {
	return classed{msg: fmt.Sprintf(format, args...)}
}

// Transientf returns a formatted retryable sentinel.
func Transientf(format string, args ...any) error {
	return classed{msg: fmt.Sprintf(format, args...), retry: true}
}

// Policy is the retry-boundary stub: wrapclass resolves the function
// values handed to Do and audits their error results.
type Policy struct{}

// Do runs fn under the (stub) retry loop.
func (p *Policy) Do(proc *sim.Proc, op string, fn func() error) error {
	_ = proc
	_ = op
	return fn()
}

// Package fault violates its own layering rule: the fault injector may
// import only internal/sim, internal/simnet, internal/cluster, and the
// stdlib — never another substrate like metrics.
package fault

import (
	"fixture/internal/metrics" // want: layering
	"fixture/internal/sim"
)

// Injector is a placeholder injector carrying its environment.
type Injector struct {
	Env *sim.Env
	c   metrics.Counter
}

// Touch keeps the imports used.
func (in *Injector) Touch() { in.c.Inc() }

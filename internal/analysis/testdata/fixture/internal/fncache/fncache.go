// Package fncache is a miniature stand-in for the colocated function
// cache. Its legal dependency surface is the substrates plus the
// consistency layer's stamps — importing the object layer is a layering
// violation: core converts object IDs to cache keys at the boundary so the
// cache never sees objects directly.
package fncache

import (
	"fixture/internal/metrics"
	"fixture/internal/object" // want: layering
	"fixture/internal/sim"
)

// Cache is a placeholder colocated cache.
type Cache struct {
	Env  *sim.Env
	Hits metrics.Counter
}

// Lookup keeps the imports used.
func (c *Cache) Lookup(o *object.Object) bool {
	c.Hits.Inc()
	return o.Len() > 0
}

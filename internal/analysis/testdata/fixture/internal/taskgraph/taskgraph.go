// Package taskgraph exercises the wrapclass analyzer: it is a
// retry-boundary package whose fault.Policy.Do closures return errors,
// and every unclassified origin that can flow into one is flagged at the
// construction site. The classified paths at the bottom must stay quiet.
package taskgraph

import (
	"errors"
	"fmt"

	"fixture/internal/fault"
	"fixture/internal/sim"
)

// ErrStuck is classified by construction: reads of it stay clean.
var ErrStuck = fault.Transient("taskgraph: stuck")

// Run drives one step under the retry policy; wrapclass resolves the
// closure and audits the origins its error result can carry.
func Run(p *fault.Policy, proc *sim.Proc) error {
	return p.Do(proc, "taskgraph.step", func() error {
		return step()
	})
}

// step returns unclassified errors three ways; each origin is flagged
// where the error is born, not at the boundary.
func step() error {
	if cond(1) {
		return errors.New("taskgraph: raw") // want: wrapclass
	}
	if cond(2) {
		return fmt.Errorf("taskgraph: code %d", 7) // want: wrapclass
	}
	return &opError{code: 9} // want: wrapclass
}

// opError implements error with no classification: errclass flags the
// declaration, wrapclass flags the literal escaping into the boundary.
type opError struct{ code int } // want: errclass

func (e *opError) Error() string { return "taskgraph: op" }

// retry forwards op and fn through its parameters; the boundary resolves
// one caller frame up.
func retry(p *fault.Policy, proc *sim.Proc, op string, fn func() error) error {
	return p.Do(proc, op, fn)
}

// Flaky reaches the boundary through retry's parameter forwarding.
func Flaky(p *fault.Policy, proc *sim.Proc) error {
	return retry(p, proc, "taskgraph.flaky", func() error {
		return errors.New("taskgraph: flaky") // want: wrapclass
	})
}

// RunSafe wraps the classified sentinel with %w: the chain preserves the
// classification, so no diagnostic.
func RunSafe(p *fault.Policy, proc *sim.Proc) error {
	return p.Do(proc, "taskgraph.safe", func() error {
		return fmt.Errorf("taskgraph: wrapped: %w", ErrStuck)
	})
}

// shed classifies itself through fault.Classified.
type shed struct{ n int }

func (s *shed) Error() string   { return "taskgraph: shed" }
func (s *shed) Retryable() bool { return false }

// newShed's static result type implements Classified: calls launder.
func newShed() *shed { return &shed{n: 1} }

// RunShed returns only classified values: clean.
func RunShed(p *fault.Policy, proc *sim.Proc) error {
	return p.Do(proc, "taskgraph.shed", func() error {
		return newShed()
	})
}

// cond keeps the branches above alive without constant folding.
func cond(n int) bool { return n > 1 }

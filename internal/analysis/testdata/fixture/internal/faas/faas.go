// Package faas is a miniature stand-in for the compute layer. Importing the
// cross-cutting tracer is legal from any layer, so no diagnostic here.
package faas

import "fixture/internal/trace"

// Invoke is a placeholder compute entry point.
func Invoke(name string) string {
	var s trace.Span
	s.Touch()
	return name
}

// Package faas is a miniature stand-in for the compute layer. Importing the
// cross-cutting tracer is legal from any layer, so no diagnostic for that —
// but faas is a retry-boundary package, so the errclass analyzer audits
// every error it declares.
package faas

import (
	"errors"

	"fixture/internal/fault"
	"fixture/internal/fncache"
	"fixture/internal/trace"
)

// Classified constructions pass: the initializer is fault.Fatal/Transient.
var (
	ErrFatalOK     = fault.Fatal("faas: fatal ok")
	ErrTransientOK = fault.Transient("faas: transient ok")
)

// ErrListed passes because DefaultRetryable below mentions it.
var ErrListed = errors.New("faas: listed in a classifier")

// ErrOops carries no classification anywhere: flagged.
var ErrOops = errors.New("faas: unclassified") // want: errclass

// ShedError classifies itself through fault.Classified: passes.
type ShedError struct{ N int }

func (e *ShedError) Error() string   { return "faas: shed" }
func (e *ShedError) Retryable() bool { return false }

// PlainError implements error but carries no classification: flagged.
type PlainError struct{ Code int } // want: errclass

func (e *PlainError) Error() string { return "faas: plain" }

// DefaultRetryable is a classifier (func(error) bool); mentioning ErrListed
// here is what clears it above.
func DefaultRetryable(err error) bool {
	if errors.Is(err, ErrListed) {
		return true
	}
	return fault.Retryable(err)
}

// Invoke is a placeholder compute entry point. Colocating the function
// cache is legal from the compute layer — no diagnostic for the fncache
// import.
func Invoke(name string, c *fncache.Cache) string {
	var s trace.Span
	s.Touch()
	if c != nil {
		c.Hits.Inc()
	}
	return name
}

// Package faas is a miniature stand-in for the compute layer.
package faas

// Invoke is a placeholder compute entry point.
func Invoke(name string) string { return name }

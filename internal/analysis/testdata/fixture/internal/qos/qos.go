// Package qos violates its own layering rule: the admission controller
// may import only internal/sim, internal/cluster, internal/fault,
// internal/trace, and the stdlib — concrete metrics are wired in as
// interfaces by the layers it gates, never imported.
package qos

import (
	"fixture/internal/metrics" // want: layering
	"fixture/internal/sim"
)

// Controller is a placeholder admission controller.
type Controller struct {
	Env  *sim.Env
	shed metrics.Counter
}

// Admit keeps the imports used.
func (q *Controller) Admit() { q.shed.Inc() }

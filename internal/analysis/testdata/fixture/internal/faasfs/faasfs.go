// Package faasfs is a miniature stand-in for the transactional file
// system. Its legal dependency surface is the capability-checked core
// client plus the cross-cutting substrates — importing the store is a
// layering violation: every object a session touches goes through core's
// rights checks, never through raw store access.
package faasfs

import (
	"fixture/internal/core"
	"fixture/internal/store" // want: layering
)

// Mount is a placeholder transactional mount.
type Mount struct {
	cl *core.Client
}

// Attach keeps the imports used.
func Attach(cl *core.Client, st *store.Store) *Mount {
	_ = st.Get(0)
	return &Mount{cl: cl}
}

// Package unuseddirective carries a suppression that no longer suppresses
// anything; the framework reports the stale directive itself so dead
// //pcsi:allow annotations cannot accumulate.
package unuseddirective

// Sum is clean code under a stale doc-comment directive.
//
//pcsi:allow maporder nothing here ranges over a map anymore // want: directive
func Sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// Package obsclient violates layering: telemetry planes are attached by
// core, faas, and taskgraph and rendered by the harness and binaries —
// arbitrary packages may not reach internal/obs directly.
package obsclient

import "fixture/internal/obs" // want: layering

// Watch keeps the import used.
func Watch(p *obs.Plane) { p.Sample() }

// Package wallclock violates the simtime invariant.
package wallclock

import "time"

// Stamp reads the machine clock twice and waits on it.
func Stamp() time.Duration {
	start := time.Now()          // want: simtime
	time.Sleep(time.Millisecond) // want: simtime
	return time.Since(start)     // want: simtime
}

// Timer arms a wall-clock timer.
func Timer() *time.Timer {
	return time.NewTimer(time.Second) // want: simtime
}

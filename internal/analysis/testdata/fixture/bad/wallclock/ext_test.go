// External test package: the analyzers must reach package foo_test files too.
package wallclock_test

import (
	"testing"
	"time"

	"fixture/bad/wallclock"
)

func TestStamp(t *testing.T) {
	time.Sleep(time.Microsecond) // want: simtime
	if wallclock.Stamp() < 0 {
		t.Fatal("negative duration")
	}
}

// Package spanleak opens trace spans and loses them on some control-flow
// path; the spanbalance analyzer reports the leaking return, panic, and
// discard sites.
package spanleak

import (
	"fixture/internal/sim"
	"fixture/internal/trace"
)

// EarlyReturn leaks sp on the ok branch.
func EarlyReturn(p *sim.Proc, tr *trace.Tracer, ok bool) {
	sp := tr.Start(p, "cat", "early")
	if ok {
		return // want: spanbalance
	}
	sp.Close(p)
}

// Discarded never binds the span, so nothing can ever close it.
func Discarded(p *sim.Proc, tr *trace.Tracer) {
	tr.Start(p, "cat", "drop") // want: spanbalance
}

// PanicPath leaks sp when the explicit panic fires.
func PanicPath(p *sim.Proc, tr *trace.Tracer, bad bool) {
	sp := tr.StartSpan(p, nil, "cat", "panicky")
	if bad {
		panic("spanleak: boom") // want: spanbalance
	}
	sp.Close(p)
}

// DeferClose is the sanctioned shape — the deferred Close discharges every
// path, including the early return: no diagnostic.
func DeferClose(p *sim.Proc, tr *trace.Tracer, ok bool) {
	sp := tr.Start(p, "cat", "balanced")
	defer sp.Close(p)
	if ok {
		return
	}
}

// Package mutation violates capability discipline: raw object and store
// mutation outside the sanctioned layers.
package mutation

import (
	"fixture/internal/object"
	"fixture/internal/store" // want: layering
)

// Scribble mutates objects and the store without a rights check.
func Scribble(st *store.Store) {
	o := object.New()
	o.SetData([]byte("x")) // want: capdiscipline
	o.Append([]byte("y"))  // want: capdiscipline
	st.Insert(1, o)        // want: capdiscipline
	_ = o.Len()
}

// impostor has a method named like a mutator on an unrelated type.
type impostor struct{}

// SetData on impostor is not object.Object.SetData.
func (impostor) SetData(b []byte) {}

// Decoy calls the impostor; the analyzer must not flag it.
func Decoy() { impostor{}.SetData(nil) }

// Package fncacheclient violates layering: internal/fncache is colocated
// by faas and wired by core, and configured through the pcsi facade —
// arbitrary packages may not reach the cache directly.
package fncacheclient

import "fixture/internal/fncache" // want: layering

// Touch keeps the import used.
func Touch(c *fncache.Cache) { c.Hits.Inc() }

// Package randglobal violates the deterministic-randomness invariant.
package randglobal

import (
	"math/rand"
	v2 "math/rand/v2"
)

// Draw pulls from the global sources instead of a plumbed stream.
func Draw(xs []int) (int, int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want: detrand
	return rand.Intn(10), v2.IntN(10)                                     // want: detrand detrand
}

// Seeded builds a legal, explicitly seeded stream.
func Seeded() *rand.Rand { return rand.New(rand.NewSource(7)) }

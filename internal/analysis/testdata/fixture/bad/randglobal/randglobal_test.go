// In-package test file: unseeded testing/quick configs fall back to a
// wall-clock-seeded RNG and must be flagged.
package randglobal

import (
	"testing"
	"testing/quick"
)

func TestQuickUnseeded(t *testing.T) {
	f := func(x int) bool { return x == x }
	cfg := &quick.Config{MaxCount: 10} // want: detrand
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(f, nil); err != nil { // want: detrand
		t.Fatal(err)
	}
}

// Package maporder consumes randomized map-iteration order in each of the
// three ways the maprange analyzer rejects, next to the sanctioned
// counterpart of each shape, which must stay diagnostic-free.
package maporder

import (
	"fmt"
	"sort"

	"fixture/internal/sim"
)

// ArbitraryPick returns on the first iteration, consuming one arbitrary
// element of a randomized order (rule 1).
func ArbitraryPick(m map[string]int) string {
	for k := range m { // want: maprange
		return k
	}
	return ""
}

// SmallestPick examines every element before choosing: no diagnostic.
func SmallestPick(m map[string]int) string {
	best := ""
	for k := range m {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// PrintAll emits output in randomized order (rule 2, fmt sink).
func PrintAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want: maprange
	}
}

// SleepPerEntry schedules virtual-time effects in randomized order
// (rule 2, module scheduling sink).
func SleepPerEntry(p *sim.Proc, m map[string]int64) {
	for _, d := range m {
		p.Sleep(d) // want: maprange
	}
}

// Keys hands a randomly ordered slice to the caller (rule 3).
func Keys(m map[string]int) []string {
	out := []string{}
	for k := range m {
		out = append(out, k) // want: maprange
	}
	return out
}

// SortedKeys is the sanctioned append-then-sort idiom: no diagnostic.
func SortedKeys(m map[string]int) []string {
	out := []string{}
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Package extdep violates the stdlib-only rule.
package extdep

import _ "example.com/notvendored" // want: layering typecheck

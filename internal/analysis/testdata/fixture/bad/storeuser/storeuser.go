// Package storeuser violates the access rules: raw store and core imports
// from outside the sanctioned layers.
package storeuser

import (
	"fixture/internal/core"  // want: layering
	"fixture/internal/store" // want: layering
)

// Wire holds both forbidden imports.
func Wire(st *store.Store) *core.Client { return core.NewClient(st) }

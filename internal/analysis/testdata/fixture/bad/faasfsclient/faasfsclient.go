// Package faasfsclient violates layering: faasfs sessions are opened by
// faas and taskgraph invocations and mounts are configured through the
// pcsi facade — arbitrary packages may not reach the file system
// directly.
package faasfsclient

import "fixture/internal/faasfs" // want: layering

// Touch keeps the import used.
func Touch(m *faasfs.Mount) *faasfs.Mount { return m }

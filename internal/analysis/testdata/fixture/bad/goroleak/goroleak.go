// Package goroleak exercises the goroleak analyzer: go statements whose
// goroutine blocks forever on a channel nobody can satisfy.
package goroleak

// leakRecv spawns a receiver on a channel the spawner never sends on or
// closes; the goroutine parks forever.
func leakRecv() {
	ch := make(chan int)
	go func() { // want: goroleak
		<-ch
	}()
}

// leakSend spawns a sender on an unbuffered channel nobody receives from.
func leakSend() {
	done := make(chan struct{})
	go func() { // want: goroleak
		done <- struct{}{}
	}()
}

// worker drains a channel; it only exits when the channel is closed.
func worker(c chan int) {
	for range c {
	}
}

// leakNamed resolves the spawned body through the call graph: worker
// ranges over jobs, which is never closed.
func leakNamed() {
	jobs := make(chan int)
	go worker(jobs) // want: goroleak
}

// okClosed closes the channel, so the receiver terminates.
func okClosed() {
	ch := make(chan int)
	go func() {
		<-ch
	}()
	close(ch)
}

// okBuffered sends into buffer capacity; the send cannot block.
func okBuffered() {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
	}()
}

// okEscapes hands the channel to other code, which may unblock the
// goroutine; the analyzer stays silent.
func okEscapes(publish func(chan int)) {
	ch := make(chan int)
	go func() {
		<-ch
	}()
	publish(ch)
}

// okSelectDefault never blocks: the select has a default clause.
func okSelectDefault() {
	ch := make(chan int)
	go func() {
		select {
		case <-ch:
		default:
		}
	}()
}

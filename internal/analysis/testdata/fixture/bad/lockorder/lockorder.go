// Package lockorder exercises the lockorder analyzer: AB/BA acquisition
// inversions (direct and through the call graph) and lock/unlock balance.
package lockorder

import "sync"

var (
	mu sync.Mutex
	nu sync.Mutex
	a  sync.Mutex
	b  sync.Mutex
)

// abPath acquires mu then nu; together with baPath this is an inversion,
// reported once at the lexically later of the two second-lock sites.
func abPath() {
	mu.Lock()
	nu.Lock()
	nu.Unlock()
	mu.Unlock()
}

func baPath() {
	nu.Lock()
	mu.Lock() // want: lockorder
	mu.Unlock()
	nu.Unlock()
}

// lockB gives viaHelper an interprocedural second acquisition: calling it
// while holding a orders (a, b) through the call graph.
func lockB() {
	b.Lock()
	b.Unlock()
}

func viaHelper() {
	a.Lock()
	lockB()
	a.Unlock()
}

func reversed() {
	b.Lock()
	a.Lock() // want: lockorder
	a.Unlock()
	b.Unlock()
}

// leaky acquires mu but the early return path never releases it; the
// balance check reports at the acquisition site.
func leaky(cond bool) {
	mu.Lock() // want: lockorder
	if cond {
		return
	}
	mu.Unlock()
}

// okDefer releases on every path through the deferred unlock.
func okDefer() {
	mu.Lock()
	defer mu.Unlock()
}

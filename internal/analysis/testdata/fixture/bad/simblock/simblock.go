// Package simblock blocks real time inside the simulation: its sim-process
// roots (functions taking *sim.Proc, and closures handed to sim.Env.Go)
// reach wall-clock sleeps, real synchronization, OS I/O, and shared-channel
// operations. Offline and the local-channel/virtual-time functions pin the
// exemptions: simtime still fires syntactically where the time package is
// touched, but simblock only fires on sim-reachable paths.
package simblock

import (
	"os"
	"sync"
	"time"

	"fixture/internal/sim"
)

// done is a package-level channel: blocking on it parks the OS goroutine
// until some other real goroutine runs.
var done = make(chan struct{})

// wg is real synchronization, invisible to virtual time.
var wg sync.WaitGroup

// Tick is a sim-process root that blocks wall-clock directly.
func Tick(p *sim.Proc) {
	time.Sleep(time.Millisecond) // want: simblock simtime
}

// Drive spawns a process under virtual time; the closure and everything
// it calls become sim-reachable.
func Drive(env *sim.Env) {
	env.Go("worker", func(p *sim.Proc) {
		helper()
	})
}

// helper is two hops from the root: the findings name the chain.
func helper() {
	wg.Wait() // want: simblock
	<-done    // want: simblock
}

// Consume ranges over the shared channel and does real file I/O from a
// sim root.
func Consume(p *sim.Proc) {
	for range done { // want: simblock
	}
	_, _ = os.ReadFile("x") // want: simblock
}

// Local coordinates through a locally created channel: exempt, the
// spawner owns both ends.
func Local(p *sim.Proc) {
	ch := make(chan int, 1)
	ch <- 1
	<-ch
}

// Virtual sleeps in virtual time: the sanctioned API.
func Virtual(p *sim.Proc) { p.Sleep(5) }

// Offline is reachable from no sim root: simtime still flags the sleep
// syntactically, but simblock stays quiet.
func Offline() {
	time.Sleep(time.Millisecond) // want: simtime
}

// Package obsrand draws from the observer random stream in
// workload-visible code, which would make observed and unobserved runs
// diverge; only fault, trace, and qos may touch it.
package obsrand

import (
	"math/rand"

	"fixture/internal/sim"
)

// Pick makes a workload decision from the observer stream: flagged.
func Pick(env *sim.Env) int {
	return env.ObserverRand("pick").Intn(4) // want: obsrand
}

// Legit draws from the workload streams: no diagnostic.
func Legit(env *sim.Env) (int, *rand.Rand) {
	return env.Rand().Intn(4), env.ForkRand("worker")
}

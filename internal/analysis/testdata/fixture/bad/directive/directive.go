// Package directive exercises the //pcsi:allow machinery's failure modes.
package directive

import "time"

// Suppressed reads the clock under a valid doc-comment directive covering
// the whole declaration; no diagnostic.
//
//pcsi:allow wallclock fixture-sanctioned real measurement.
func Suppressed() time.Time { return time.Now() }

// Typo carries a misspelled keyword that must not silence anything.
func Typo() time.Time {
	//pcsi:allow warlclock // want: directive
	return time.Now() // want: simtime
}

// Bare carries a keyword-less directive.
func Bare() {
	// want-next: directive
	//pcsi:allow
}

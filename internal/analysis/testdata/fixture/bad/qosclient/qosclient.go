// Package qosclient violates layering: internal/qos is wired in by core,
// faas, and taskgraph and configured through the pcsi facade — arbitrary
// packages may not reach the admission controller directly.
package qosclient

import "fixture/internal/qos" // want: layering

// Gate keeps the import used.
func Gate(q *qos.Controller) { q.Admit() }

// Package hotpath exercises the hotpath analyzer: allocation hazards in
// functions reachable from a //pcsi:hotpath root, and stray directives.
package hotpath

import "fmt"

var sink any

// consume models an interface-taking helper (boxing rule).
func consume(v any) { sink = v }

// dispatch is the hot entry point; step is reachable through the static
// call, so its hazards are reported interprocedurally.
//
//pcsi:hotpath
func dispatch(events []int) {
	for _, e := range events {
		fn := func() int { return e } // want: hotpath
		_ = fn
		step(e)
	}
}

func step(e int) {
	for i := 0; i < e; i++ {
		defer cleanup() // want: hotpath
	}

	var out []int
	for i := 0; i < e; i++ {
		out = append(out, i) // want: hotpath
	}
	sink = out

	pre := make([]int, 0, 8)
	for i := 0; i < e; i++ {
		pre = append(pre, i) // preallocated: no diagnostic
	}
	sink = pre

	s := ""
	for i := 0; i < e; i++ {
		s = s + "x" // want: hotpath
	}
	t := ""
	for i := 0; i < e; i++ {
		t += "y" // want: hotpath
	}
	sink = s + t // outside any loop: no diagnostic

	name := fmt.Sprintf("ev-%d", e) // want: hotpath
	sink = name

	consume(e)     // want: hotpath
	consume(&e)    // pointer-shaped: no diagnostic
	consume("lit") // constant: no diagnostic

	if e < 0 {
		panic(fmt.Sprintf("bad event %d", e)) // error path: no diagnostic
	}
}

func cleanup() {}

// notHot has the same hazards but is unreachable from any root, so the
// analyzer stays silent about it.
func notHot(e int) string {
	s := ""
	for i := 0; i < e; i++ {
		s += "z"
	}
	return s
}

// The next directive marks no function declaration, so it is reported as
// unused rather than silently rotting in place.
// want-next: hotpath
//pcsi:hotpath

var strayTarget int

// Package blocker parks the OS goroutine from a sim-process root; the
// simblock fix annotates the blocking site.
package blocker

import (
	"sync"

	"fix/internal/sim"
)

// wg is real synchronization.
var wg sync.WaitGroup

// Wait blocks real time from a sim root.
func Wait(p *sim.Proc) {
	wg.Wait()
}

// Package collector returns map keys in randomized order; the maprange
// fix inserts the sort before the return.
package collector

// Keys returns the map's keys.
func Keys(m map[string]int) []string {
	out := []string{}
	for k := range m {
		out = append(out, k)
	}
	return out
}

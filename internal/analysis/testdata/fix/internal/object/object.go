// Package object is a minimal handle stub for the fix fixtures.
package object

// Object is the raw handle type capescape guards.
type Object struct {
	data []byte
}

// New returns an empty object.
func New() *Object { return &Object{} }

// Package sim is a minimal virtual-time stub for the fix fixtures.
package sim

// Env is a stub virtual-time environment.
type Env struct{}

// Proc is a stub simulated process.
type Proc struct{}

// Go launches fn synchronously.
func (e *Env) Go(name string, fn func(*Proc)) { fn(&Proc{}) }

// Package fault is a minimal classification stub for the fix fixtures.
package fault

import (
	"fmt"

	"fix/internal/sim"
)

// Classified is implemented by errors carrying their own classification.
type Classified interface {
	Retryable() bool
}

type classed struct {
	msg   string
	retry bool
}

func (e classed) Error() string   { return e.msg }
func (e classed) Retryable() bool { return e.retry }

// Fatal returns a non-retryable sentinel.
func Fatal(msg string) error { return classed{msg: msg} }

// Transient returns a retryable sentinel.
func Transient(msg string) error { return classed{msg: msg, retry: true} }

// Fatalf returns a formatted non-retryable sentinel.
func Fatalf(format string, args ...any) error {
	return classed{msg: fmt.Sprintf(format, args...)}
}

// Transientf returns a formatted retryable sentinel.
func Transientf(format string, args ...any) error {
	return classed{msg: fmt.Sprintf(format, args...), retry: true}
}

// Policy is the retry-boundary stub.
type Policy struct{}

// Do runs fn once.
func (p *Policy) Do(proc *sim.Proc, op string, fn func() error) error {
	_ = proc
	_ = op
	return fn()
}

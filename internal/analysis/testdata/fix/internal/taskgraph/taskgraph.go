// Package taskgraph returns unclassified errors into a retry boundary;
// the wrapclass fixes rewrite both constructors and prune the imports.
package taskgraph

import (
	"errors"
	"fmt"

	"fix/internal/fault"
	"fix/internal/sim"
)

// Run retries one step under the policy.
func Run(p *fault.Policy, proc *sim.Proc) error {
	return p.Do(proc, "taskgraph.step", func() error {
		if cond() {
			return errors.New("taskgraph: raw")
		}
		return fmt.Errorf("taskgraph: code %d", 7)
	})
}

// cond keeps both branches alive.
func cond() bool { return false }

// Package pcsinet leaks a handle through its API; the capescape fix can
// only annotate the escape for later justification.
package pcsinet

import "fix/internal/object"

// Fetch returns the raw handle type.
func Fetch() *object.Object { return object.New() }

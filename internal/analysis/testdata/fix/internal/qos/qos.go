// Package qos declares an unclassified sentinel; the errclass fix
// rewrites its constructor and swaps the import.
package qos

import "errors"

// ErrBusy reports admission rejection.
var ErrBusy = errors.New("qos: busy")

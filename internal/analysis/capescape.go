package analysis

// capescape upgrades capdiscipline from syntactic to semantic: instead of
// spotting raw `obj.Data = ...` mutations by shape, it tracks the handle
// VALUES — internal/object.Object and internal/store.Store — through the
// taint engine and reports any way one can escape the capability-checked
// layers into client hands. Origins mint at every composite literal of a
// handle type (the constructors in object/store); the engine carries them
// through returns, fields, channels, and globals; sinks live in the
// client-facing packages (pcsi, internal/core, internal/pcsinet,
// internal/wire):
//
//   - an exported function or method whose result TYPE transitively
//     carries a handle (pointers, slices, maps, channels, and exported
//     struct fields are traversed — unexported fields are unreachable
//     from clients and exempt),
//   - an exported function or method whose result FLOW carries a handle
//     origin behind an opaque type (any/error/interface),
//   - a package-level var of handle-carrying type, or one assigned a
//     handle-carrying value,
//   - a channel send or exported-field write of a handle-carrying value.
//
// There is no mechanical rewrite for an escaping handle — the fix is an
// API change — so the only suggested fix is the //pcsi:allow stub.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// capClientPkgs are the client-facing packages whose surface is the
// escape boundary (DESIGN §3: everything a caller can reach without
// holding a capability).
var capClientPkgs = stringSet(
	".", "pcsi", "internal/core", "internal/pcsinet", "internal/wire",
)

var CapEscape = &Analyzer{
	Name:      "capescape",
	Kind:      "interprocedural",
	Directive: "capescape",
	Doc:       "forbid raw object/store handle values from escaping through client-facing APIs",
	Prepare:   prepareCapEscape,
	Run:       runCapEscape,
}

type capFinding struct {
	pkg   *Package
	pos   token.Pos
	msg   string
	fixes []SuggestedFix
}

func prepareCapEscape(pass *Pass) {
	handles := handleTypes(pass)
	if len(handles) == 0 {
		pass.Cache["capescape.findings"] = []capFinding(nil)
		return
	}
	st := &capState{handles: handles}
	eng := buildTaintEngine(pass, &taintSpec{
		key:         "capescape",
		exprOrigins: st.exprOrigins,
	})
	pass.Cache["capescape.findings"] = collectCapFindings(eng, st)
}

func runCapEscape(pass *Pass) {
	findings, _ := pass.Cache["capescape.findings"].([]capFinding)
	for _, f := range findings {
		if f.pkg == pass.Pkg {
			pass.ReportWithFix(f.pos, f.fixes, "%s", f.msg)
		}
	}
}

type capState struct {
	handles map[*types.Named]bool
}

// handleTypes resolves the raw handle types of the analyzed module.
func handleTypes(pass *Pass) map[*types.Named]bool {
	handles := make(map[*types.Named]bool)
	for _, spec := range [...]struct{ pkg, name string }{
		{"internal/object", "Object"},
		{"internal/store", "Store"},
	} {
		p, err := pass.Loader.Import(pass.Module + "/" + spec.pkg)
		if err != nil || p == nil {
			continue
		}
		if obj, ok := p.Scope().Lookup(spec.name).(*types.TypeName); ok {
			if named, ok := obj.Type().(*types.Named); ok {
				handles[named] = true
			}
		}
	}
	return handles
}

// exprOrigins mints a handle origin at every composite literal of a
// handle type — the accessors in object/store construct handles exactly
// this way, and everything downstream traces back here.
func (st *capState) exprOrigins(eng *taintEngine, ctx taintCtx, e ast.Expr) []origin {
	lit, ok := e.(*ast.CompositeLit)
	if !ok || ctx.pkg.XTest || eng.inTestFile(lit.Pos()) {
		return nil
	}
	tv, ok := ctx.pkg.Info.Types[lit]
	if !ok || tv.Type == nil {
		return nil
	}
	named := namedOf(tv.Type)
	if named == nil || !st.handles[named] {
		return nil
	}
	return []origin{{pkg: ctx.pkg, pos: lit.Pos(), kind: "handle", what: named.Obj().Name()}}
}

// namedOf unwraps pointers to the named type underneath, if any.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// typeCarriesHandle reports whether a value of type t gives its holder a
// path to a raw handle: the handle type itself, or any composite shape
// (pointer, slice, array, map, channel, exported struct field) leading to
// one. Unexported struct fields are invisible to clients and exempt.
func (st *capState) typeCarriesHandle(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if st.handles[named] {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return st.typeCarriesHandle(u.Elem(), seen)
	case *types.Slice:
		return st.typeCarriesHandle(u.Elem(), seen)
	case *types.Array:
		return st.typeCarriesHandle(u.Elem(), seen)
	case *types.Chan:
		return st.typeCarriesHandle(u.Elem(), seen)
	case *types.Map:
		return st.typeCarriesHandle(u.Key(), seen) || st.typeCarriesHandle(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if f := u.Field(i); f.Exported() && st.typeCarriesHandle(f.Type(), seen) {
				return true
			}
		}
	}
	return false
}

// collectCapFindings walks the client-facing packages for escape sinks.
func collectCapFindings(eng *taintEngine, st *capState) []capFinding {
	var findings []capFinding
	add := func(pkg *Package, pos token.Pos, format string, args ...any) {
		findings = append(findings, capFinding{
			pkg: pkg, pos: pos,
			msg:   fmt.Sprintf(format, args...),
			fixes: []SuggestedFix{allowStubFix(eng.fset, pos, "capescape", "TODO: justify this handle escape")},
		})
	}
	for _, pkg := range eng.loader.FullPackages() {
		if !capClientPkgs[relPath(eng.module, pkg.Path)] || pkg.XTest {
			continue
		}
		st.checkPackageVars(eng, pkg, add)
	}
	for _, n := range eng.g.nodes {
		if !capClientPkgs[relPath(eng.module, n.pkg.Path)] || n.pkg.XTest || eng.inTestFile(n.Pos()) {
			continue
		}
		st.checkAPI(eng, n, add)
		st.checkBody(eng, n, add)
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].pkg.Path != findings[j].pkg.Path {
			return findings[i].pkg.Path < findings[j].pkg.Path
		}
		return findings[i].pos < findings[j].pos
	})
	return findings
}

// checkPackageVars flags package-level vars whose type carries a handle.
// Flow-based escapes into package vars are caught per-assignment in
// checkBody; the type rule catches the declaration itself.
func (st *capState) checkPackageVars(eng *taintEngine, pkg *Package, add func(*Package, token.Pos, string, ...any)) {
	for _, f := range pkg.Files {
		if eng.inTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					v, ok := pkg.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if st.typeCarriesHandle(v.Type(), nil) {
						add(pkg, name.Pos(),
							"package-level var %s in client-facing package %s holds a raw handle (type %s): handles must stay inside the capability-checked layers",
							name.Name, relPath(eng.module, pkg.Path), v.Type().String())
					}
				}
			}
		}
	}
}

// checkAPI flags exported functions and methods whose results leak a
// handle, by type or by flow.
func (st *capState) checkAPI(eng *taintEngine, n *funcNode, add func(*Package, token.Pos, string, ...any)) {
	if n.decl == nil || !n.decl.Name.IsExported() {
		return
	}
	sig := nodeSignature(n)
	if sig == nil {
		return
	}
	if recv := sig.Recv(); recv != nil {
		if named := namedOf(recv.Type()); named == nil || !named.Obj().Exported() {
			return // method of an unexported type: not client-reachable
		}
	}
	sum := eng.summaryOf(n)
	for i := 0; i < sig.Results().Len(); i++ {
		rt := sig.Results().At(i).Type()
		if st.typeCarriesHandle(rt, nil) {
			add(n.pkg, n.decl.Name.Pos(),
				"exported %s returns a value of type %s, which carries a raw handle out of the capability-checked layers: return a capability-checked wrapper instead",
				n.name, rt.String())
			continue
		}
		if i < len(sum.results) {
			for _, o := range sum.results[i].sortedOrigins() {
				add(n.pkg, n.decl.Name.Pos(),
					"exported %s may return a raw %s handle (created at %s) behind type %s: handles must not escape the capability-checked layers",
					n.name, o.what, eng.originSite(o), rt.String())
				break // one finding per result is enough
			}
		}
	}
}

// checkBody flags handle-carrying values escaping through package vars,
// channel sends, and exported-field writes inside client-facing code.
func (st *capState) checkBody(eng *taintEngine, n *funcNode, add func(*Package, token.Pos, string, ...any)) {
	info := n.pkg.Info
	handleOrigin := func(e ast.Expr) (origin, bool) {
		f := eng.evalPost(n, e)
		for _, o := range f.sortedOrigins() {
			return o, true
		}
		return origin{}, false
	}
	inspectShallowStmts(n.body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			if len(m.Lhs) != len(m.Rhs) {
				return true
			}
			for i, lhs := range m.Lhs {
				switch lhs := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					v, ok := info.Uses[lhs].(*types.Var)
					if !ok || !isPackageLevel(v) {
						continue
					}
					if o, ok := handleOrigin(m.Rhs[i]); ok {
						add(n.pkg, m.Pos(),
							"assignment stores a raw %s handle (created at %s) in package-level var %s of client-facing package %s",
							o.what, eng.originSite(o), lhs.Name, relPath(eng.module, n.pkg.Path))
					}
				case *ast.SelectorExpr:
					sel, ok := info.Selections[lhs]
					if !ok || sel.Kind() != types.FieldVal {
						continue
					}
					fv, ok := sel.Obj().(*types.Var)
					if !ok || !fv.Exported() {
						continue
					}
					// An exported field of an unexported type is still
					// invisible to clients.
					if named := namedOf(sel.Recv()); named != nil && !named.Obj().Exported() {
						continue
					}
					if o, ok := handleOrigin(m.Rhs[i]); ok {
						add(n.pkg, m.Pos(),
							"assignment stores a raw %s handle (created at %s) in exported field %s, reachable from client-facing APIs",
							o.what, eng.originSite(o), fv.Name())
					}
				}
			}
		case *ast.SendStmt:
			if o, ok := handleOrigin(m.Value); ok {
				add(n.pkg, m.Pos(),
					"channel send publishes a raw %s handle (created at %s) from client-facing package %s",
					o.what, eng.originSite(o), relPath(eng.module, n.pkg.Path))
			}
		}
		return true
	})
}

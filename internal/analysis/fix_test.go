package analysis

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// copyFixTree copies the testdata/fix module (go.mod and .go sources,
// not the .golden files) into dst so fixes can be applied on disk.
func copyFixTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		if !strings.HasSuffix(path, ".go") && filepath.Base(path) != "go.mod" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// runFixPass loads the module at root fresh, runs every analyzer, and
// applies the collected fixes — one pass of the pcsi-vet -fix loop.
// It returns the diagnostics of the pass and the files it changed.
func runFixPass(t *testing.T, root string) ([]Diagnostic, map[string][]byte) {
	t.Helper()
	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader(%s): %v", root, err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags := Run(l, pkgs, All())
	edits := CollectFixes(diags)
	if len(edits) == 0 {
		return diags, nil
	}
	changed, err := ApplyFixes(edits)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	return diags, changed
}

// TestFixGoldens drives the full -fix loop over a copy of the testdata/fix
// module and pins the results: every source converges to its .go.golden
// sibling (or stays byte-identical when it has none), the loop reaches a
// fixpoint (a second application changes nothing), and the fixed module
// re-vets completely clean — no diagnostics, no type errors — so the
// fixed code is known to compile.
func TestFixGoldens(t *testing.T) {
	src := filepath.Join("testdata", "fix")
	root := t.TempDir()
	copyFixTree(t, src, root)

	var fixedAnything bool
	for pass := 0; pass < 5; pass++ {
		_, changed := runFixPass(t, root)
		if len(changed) == 0 {
			break
		}
		fixedAnything = true
	}
	if !fixedAnything {
		t.Fatal("fix module produced no fixes at all")
	}

	// Idempotency: after convergence another pass must be a no-op, with a
	// completely clean re-vet (which also proves the fixes type-check).
	diags, changed := runFixPass(t, root)
	if len(changed) != 0 {
		t.Errorf("second -fix application changed files: %v", changed)
	}
	for _, d := range diags {
		t.Errorf("fixed module still reports %s:%d: %s: %s",
			d.Pos.Filename, d.Pos.Line, d.Check, d.Message)
	}

	// Golden comparison for every source file.
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		want, err := os.ReadFile(path + ".golden")
		if os.IsNotExist(err) {
			want, err = os.ReadFile(path) // no golden: the file must not change
		}
		if err != nil {
			return err
		}
		got, err := os.ReadFile(filepath.Join(root, rel))
		if err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s after -fix does not match golden:\n--- got ---\n%s\n--- want ---\n%s", rel, got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFixSingleCheckScoped asserts a -checks-restricted run only applies
// that analyzer's fixes: with only maprange selected, the collector file
// gains its sort while the unclassified qos sentinel stays untouched.
func TestFixSingleCheckScoped(t *testing.T) {
	src := filepath.Join("testdata", "fix")
	root := t.TempDir()
	copyFixTree(t, src, root)

	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(l, pkgs, []*Analyzer{MapRange})
	changed, err := ApplyFixes(CollectFixes(diags))
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 {
		t.Fatalf("maprange-only fix changed %d files, want 1: %v", len(changed), changed)
	}
	qos, err := os.ReadFile(filepath.Join(root, "internal", "qos", "qos.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(qos, []byte("errors.New")) {
		t.Error("maprange-only fix rewrote the qos sentinel")
	}
	collector, err := os.ReadFile(filepath.Join(root, "collector", "collector.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(collector, []byte("sort.Strings(out)")) {
		t.Error("maprange fix did not insert the sort")
	}
}

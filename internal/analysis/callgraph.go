package analysis

// callgraph.go builds a whole-program call graph over every fully loaded
// module package, using only go/ast + go/types (no x/tools, no SSA). It is
// the substrate for the interprocedural analyzers (hotpath, lockorder):
// where cfg.go answers "which paths exist inside one function body", the
// call graph answers "which functions can run downstream of this one".
//
// Resolution is CHA-style (class-hierarchy analysis), deliberately
// over-approximate but deterministic:
//
//   - static: a call whose callee resolves to a declared function or
//     method (including calls in go/defer statements) gets one edge.
//   - iface: a call through an interface method gets an edge to every
//     concrete method of every module type that implements the interface
//     (types collected in sorted order, so edge order is stable).
//   - funcval: calls through local function-valued variables are resolved
//     with the forward-dataflow framework: assignments of a resolvable
//     function value (declared func, method value, or function literal)
//     gen a fact for the variable, unresolvable assignments kill it, and
//     the call site gets an edge per fact that reaches it.
//   - lit: a function literal invoked in place gets an edge to the
//     literal's own node. Literals that escape (stored, passed as
//     arguments) produce no edge; each literal is still its own node, so
//     intraprocedural checks cover its body wherever it runs.
//
// Nodes, edges, and roots are all ordered by source position, so every
// traversal of the graph is deterministic.
//
// Hot-path roots are declared in the source with a directive:
//
//	//pcsi:hotpath [reason...]
//
// in the doc comment of a function or method declaration. Reachability
// from the roots (hotReachable) drives the hotpath analyzer; a directive
// that is not attached to a function declaration with a body marks
// nothing and is reported as a diagnostic, mirroring the unused
// //pcsi:allow rule.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// hotpathDirective is the comment prefix marking a call-graph root.
const hotpathDirective = "//pcsi:hotpath"

// funcNode is one call-graph node: a declared function or method, or a
// function literal.
type funcNode struct {
	pkg   *Package
	decl  *ast.FuncDecl // nil for literals
	lit   *ast.FuncLit  // nil for declared functions
	obj   *types.Func   // nil for literals
	name  string        // deterministic printable name
	body  *ast.BlockStmt
	hot   bool // carries a //pcsi:hotpath directive
	edges []callEdge
}

// Pos returns the node's defining position.
func (n *funcNode) Pos() token.Pos {
	if n.decl != nil {
		return n.decl.Pos()
	}
	return n.lit.Pos()
}

// callEdge is one resolved call from a node to a callee.
type callEdge struct {
	site   token.Pos
	kind   string // "static", "iface", "funcval", "lit"
	callee *funcNode
}

// strayHotpath is a //pcsi:hotpath directive that marks no function.
type strayHotpath struct {
	pkg *Package
	pos token.Pos
}

// callGraph is the whole-program graph plus its hot-path roots.
type callGraph struct {
	nodes []*funcNode
	byObj map[*types.Func]*funcNode
	byLit map[*ast.FuncLit]*funcNode
	roots []*funcNode
	stray []strayHotpath

	// reach maps every function reachable from a hot root to the root it
	// was first discovered from (breadth-first, deterministic order).
	reach map[*funcNode]*funcNode
}

// buildCallGraph constructs (once per Run, via the shared cache) the call
// graph of every fully loaded module package.
func buildCallGraph(pass *Pass) *callGraph {
	if g, ok := pass.Cache["callgraph"].(*callGraph); ok {
		return g
	}
	g := &callGraph{
		byObj: make(map[*types.Func]*funcNode),
		byLit: make(map[*ast.FuncLit]*funcNode),
	}
	pkgs := pass.Loader.FullPackages()
	for _, pkg := range pkgs {
		g.collectNodes(pass, pkg)
	}
	types := moduleConcreteTypes(pkgs)
	for _, n := range g.nodes {
		g.resolveEdges(n, types)
	}
	for _, n := range g.nodes {
		sortEdges(n.edges)
		if n.hot {
			g.roots = append(g.roots, n)
		}
	}
	g.computeReach()
	pass.Cache["callgraph"] = g
	return g
}

// collectNodes creates a node for every declared function and every
// function literal in the package, in source order, and applies the
// //pcsi:hotpath directives found in its files.
func (g *callGraph) collectNodes(pass *Pass, pkg *Package) {
	for _, f := range pkg.Files {
		// Directives attached to function declarations mark roots; every
		// other occurrence is stray.
		hotDecls := make(map[*ast.FuncDecl]bool)
		claimed := make(map[*ast.Comment]bool)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(c.Text, hotpathDirective) {
					claimed[c] = true
					if fd.Body != nil {
						hotDecls[fd] = true
					}
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, hotpathDirective) && !claimed[c] {
					g.stray = append(g.stray, strayHotpath{pkg: pkg, pos: c.Pos()})
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			n := &funcNode{
				pkg:  pkg,
				decl: fd,
				obj:  obj,
				name: declName(pass.Module, pkg, fd),
				body: fd.Body,
				hot:  hotDecls[fd],
			}
			g.nodes = append(g.nodes, n)
			if obj != nil {
				g.byObj[obj] = n
			}
			g.collectLits(pkg, n.name, fd.Body)
		}
		// Function literals in package-level variable initializers.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					g.collectLits(pkg, relPath(pass.Module, pkg.Path)+".init", v)
				}
			}
		}
	}
}

// collectLits creates nodes for every function literal under root, named
// parent$1, parent$2, ... in source order (nested literals extend the
// chain: parent$1$1).
func (g *callGraph) collectLits(pkg *Package, parent string, root ast.Node) {
	i := 0
	ast.Inspect(root, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok || lit == root {
			return true
		}
		i++
		node := &funcNode{
			pkg:  pkg,
			lit:  lit,
			name: joinLitName(parent, i),
			body: lit.Body,
		}
		g.nodes = append(g.nodes, node)
		g.byLit[lit] = node
		g.collectLits(pkg, node.name, lit.Body)
		return false // nested literals were just handled recursively
	})
}

func joinLitName(parent string, i int) string {
	return parent + "$" + strconv.Itoa(i)
}

// declName renders a deterministic printable name for a declared function:
// "internal/sim.(*Env).runUntil" or "internal/analysis.Run".
func declName(module string, pkg *Package, fd *ast.FuncDecl) string {
	prefix := relPath(module, pkg.Path)
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return prefix + "." + fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	star := ""
	if se, ok := recv.(*ast.StarExpr); ok {
		star = "*"
		recv = se.X
	}
	// Strip type parameters from generic receivers.
	if ix, ok := recv.(*ast.IndexExpr); ok {
		recv = ix.X
	} else if ix, ok := recv.(*ast.IndexListExpr); ok {
		recv = ix.X
	}
	name := "?"
	if id, ok := recv.(*ast.Ident); ok {
		name = id.Name
	}
	return prefix + ".(" + star + name + ")." + fd.Name.Name
}

// moduleConcreteTypes returns every non-interface named type declared in
// the loaded module packages, sorted by (package path, name), for CHA
// interface-call resolution.
func moduleConcreteTypes(pkgs []*Package) []*types.Named {
	var out []*types.Named
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			out = append(out, named)
		}
	}
	return out
}

// resolveEdges walks one node's body (not descending into nested literals,
// which are their own nodes) and resolves its call sites.
func (g *callGraph) resolveEdges(n *funcNode, concrete []*types.Named) {
	info := n.pkg.Info

	inspectShallowStmts(n.body, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		// In-place invoked literal.
		if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			if callee := g.byLit[lit]; callee != nil {
				n.edges = append(n.edges, callEdge{site: call.Pos(), kind: "lit", callee: callee})
			}
			return true
		}
		fn := calleeFunc(info, call)
		if fn != nil {
			if callee := g.byObj[fn]; callee != nil {
				n.edges = append(n.edges, callEdge{site: call.Pos(), kind: "static", callee: callee})
				return true
			}
			// Interface method call: CHA over module types.
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if s := info.Selections[sel]; s != nil {
					if _, isIface := s.Recv().Underlying().(*types.Interface); isIface {
						g.chaEdges(n, call.Pos(), s.Recv().Underlying().(*types.Interface), fn.Name(), concrete)
					}
				}
			}
		}
		return true
	})

	g.funcValEdges(n)
}

// chaEdges adds an edge to method `name` of every concrete module type
// implementing iface.
func (g *callGraph) chaEdges(n *funcNode, site token.Pos, iface *types.Interface, name string, concrete []*types.Named) {
	for _, named := range concrete {
		if !implementsEither(named, iface) {
			continue
		}
		ms := types.NewMethodSet(types.NewPointer(named))
		sel := ms.Lookup(nil, name)
		if sel == nil {
			// Method may be exported from another package.
			if pkg := named.Obj().Pkg(); pkg != nil {
				sel = ms.Lookup(pkg, name)
			}
		}
		if sel == nil {
			continue
		}
		m, ok := sel.Obj().(*types.Func)
		if !ok {
			continue
		}
		if callee := g.byObj[m]; callee != nil {
			n.edges = append(n.edges, callEdge{site: site, kind: "iface", callee: callee})
		}
	}
}

// funcValFact records that variable v may hold the function callee.
type funcValFact struct {
	v      *types.Var
	callee *funcNode
}

// funcValEdges tracks function values through locals with the dataflow
// framework: resolvable assignments gen facts, unresolvable ones kill
// them, and each call through a tracked variable gets an edge per fact.
func (g *callGraph) funcValEdges(n *funcNode) {
	info := n.pkg.Info

	resolve := func(e ast.Expr) *funcNode {
		e = ast.Unparen(e)
		if lit, ok := e.(*ast.FuncLit); ok {
			return g.byLit[lit]
		}
		switch e := e.(type) {
		case *ast.Ident:
			if fn, ok := info.Uses[e].(*types.Func); ok {
				return g.byObj[fn]
			}
		case *ast.SelectorExpr:
			if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
				return g.byObj[fn] // method value
			}
		}
		return nil
	}

	killVar := func(in factSet, v *types.Var) factSet {
		out := in
		copied := false
		for f := range in {
			if fv, ok := f.(funcValFact); ok && fv.v == v {
				if !copied {
					out = in.clone()
					copied = true
				}
				delete(out, f)
			}
		}
		return out
	}

	bind := func(out factSet, lhs, rhs ast.Expr) factSet {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return out
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return out
		}
		out = killVar(out, v)
		if callee := resolve(rhs); callee != nil {
			out = out.clone()
			out[funcValFact{v: v, callee: callee}] = true
		}
		return out
	}

	tf := func(node ast.Node, in factSet) factSet {
		out := in
		switch node := node.(type) {
		case *ast.AssignStmt:
			if len(node.Lhs) != len(node.Rhs) {
				break
			}
			for i := range node.Lhs {
				out = bind(out, node.Lhs[i], node.Rhs[i])
			}
		case *ast.DeclStmt:
			if gd, ok := node.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for i, name := range vs.Names {
							if i < len(vs.Values) {
								out = bind(out, name, vs.Values[i])
							}
						}
					}
				}
			}
		}
		return out
	}

	cfg := buildCFG(n.body, info)
	in := forwardDataflow(cfg, tf)
	replay(cfg, in, tf, func(node ast.Node, before factSet) {
		inspectShallow(node, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := info.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			var callees []*funcNode
			for f := range before {
				if fv, ok := f.(funcValFact); ok && fv.v == v {
					callees = append(callees, fv.callee)
				}
			}
			sort.Slice(callees, func(i, j int) bool { return callees[i].name < callees[j].name })
			for _, c := range callees {
				n.edges = append(n.edges, callEdge{site: call.Pos(), kind: "funcval", callee: c})
			}
			return true
		})
	})
}

// sortEdges orders and dedupes a node's edges by (site, callee name, kind).
func sortEdges(edges []callEdge) {
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].site != edges[j].site {
			return edges[i].site < edges[j].site
		}
		if edges[i].callee.name != edges[j].callee.name {
			return edges[i].callee.name < edges[j].callee.name
		}
		return edges[i].kind < edges[j].kind
	})
}

// computeReach runs a breadth-first traversal from the hot roots and
// records, for every reachable node, the root it was first discovered
// from. Roots and edges are position-sorted, so the assignment is stable.
func (g *callGraph) computeReach() {
	g.reach = make(map[*funcNode]*funcNode)
	sort.Slice(g.roots, func(i, j int) bool { return g.roots[i].name < g.roots[j].name })
	queue := make([]*funcNode, 0, len(g.roots))
	for _, r := range g.roots {
		if _, ok := g.reach[r]; !ok {
			g.reach[r] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.edges {
			if _, ok := g.reach[e.callee]; !ok {
				g.reach[e.callee] = g.reach[n]
				queue = append(queue, e.callee)
			}
		}
	}
}

// nodesIn returns the graph's nodes belonging to pkg, in source order.
func (g *callGraph) nodesIn(pkg *Package) []*funcNode {
	var out []*funcNode
	for _, n := range g.nodes {
		if n.pkg == pkg {
			out = append(out, n)
		}
	}
	return out
}

// transitiveCallees returns every node reachable from n (excluding n
// unless it is part of a cycle), memoized in memo.
func (g *callGraph) transitiveCallees(n *funcNode, memo map[*funcNode]map[*funcNode]bool) map[*funcNode]bool {
	if s, ok := memo[n]; ok {
		return s
	}
	seen := make(map[*funcNode]bool)
	memo[n] = seen // breaks cycles: callees found so far are visible mid-walk
	var walk func(*funcNode)
	walk = func(m *funcNode) {
		for _, e := range m.edges {
			if !seen[e.callee] {
				seen[e.callee] = true
				walk(e.callee)
			}
		}
	}
	walk(n)
	return seen
}

package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// The architecture tiers of DESIGN.md §3, as module-relative package paths.
var (
	substratePkgs = stringSet(
		"internal/sim", "internal/metrics", "internal/simnet", "internal/cluster",
		"internal/platform", "internal/wire", "internal/cost", "internal/workload",
		"internal/media", "internal/trace", "internal/fault", "internal/qos",
		"internal/obs",
	)

	// faultDeps are the only packages internal/fault may import: the fault
	// injector manipulates the network and cluster substrates but must stay
	// importable from every domain layer without dragging anything else in.
	faultDeps = stringSet("internal/sim", "internal/simnet", "internal/cluster")

	// qosDeps are the only packages internal/qos may import: the admission
	// controller schedules over virtual time and cluster capacity and emits
	// trace events, but must not know about metrics (it takes interfaces),
	// the state layer, or compute — the layers it gates wire it in.
	qosDeps = stringSet("internal/sim", "internal/cluster", "internal/fault", "internal/trace")

	// qosClients are the only packages that may import internal/qos: the
	// admission-controlled layers (core's data plane, faas invoke,
	// taskgraph), the facade that re-exports its configuration, and the
	// experiment harness that measures it.
	qosClients = stringSet(
		"internal/core", "internal/faas", "internal/taskgraph",
		"pcsi", "internal/experiments",
	)
	// obsDeps are the only packages internal/obs may import: the telemetry
	// plane samples metrics on virtual time and emits alert instants into
	// the tracer, and nothing else — attaching a plane must never drag a
	// domain layer in.
	obsDeps = stringSet("internal/sim", "internal/metrics", "internal/trace")

	// obsClients are the only packages that may import internal/obs: the
	// layers that attach planes and record flight events (core, faas,
	// taskgraph), the facade, the experiment harness, and the binaries that
	// render dashboards. Everything else observes through the registry.
	obsClients = stringSet(
		"internal/core", "internal/faas", "internal/taskgraph",
		"pcsi", "internal/experiments", "cmd/pcsictl", "cmd/pcsi-bench",
	)

	// fncacheDeps are the only packages internal/fncache may import: the
	// colocated function cache keeps coherence bookkeeping over virtual
	// time, stamps from the consistency layer, and metrics in the registry,
	// but never touches objects or the store directly — core converts IDs
	// at the boundary.
	fncacheDeps = stringSet(
		"internal/sim", "internal/cluster", "internal/consistency",
		"internal/trace", "internal/metrics",
	)

	// fncacheClients are the only packages that may import internal/fncache:
	// the compute layer that colocates it (faas), the core that wires
	// coherence hooks, the facade, and the experiment harness.
	fncacheClients = stringSet(
		"internal/faas", "internal/core", "pcsi", "internal/experiments",
	)

	// faasfsDeps are the only packages internal/faasfs may import: the
	// transactional file system is a client of the capability-checked core
	// (its only route to objects), classifies conflicts through fault,
	// pins snapshots with consistency stamps, and instruments commits over
	// virtual time — never the store, the baselines, or compute.
	faasfsDeps = stringSet(
		"internal/core", "internal/consistency", "internal/fault",
		"internal/trace", "internal/sim",
	)

	// faasfsClients are the only packages that may import internal/faasfs:
	// the compute layers that open per-invocation sessions (faas,
	// taskgraph), the facade that re-exports the session API, and the
	// experiment harness.
	faasfsClients = stringSet(
		"internal/faas", "internal/taskgraph", "pcsi", "internal/experiments",
	)

	statePkgs = stringSet(
		"internal/object", "internal/capability", "internal/store",
		"internal/namespace", "internal/consistency", "internal/gc",
	)
	computePkgs  = stringSet("internal/faas", "internal/taskgraph", "internal/scheduler")
	baselinePkgs = stringSet("internal/restbase", "internal/nfsbase", "internal/dynamo", "internal/posix")

	// storeClients are the only packages that may import internal/store
	// directly: the rest of the state layer, core, and the baselines (which
	// the paper defines as alternative front doors "over the same store").
	// Everything else configures media via internal/media and reaches
	// objects through capability-checked interfaces.
	storeClients = union(statePkgs, baselinePkgs, stringSet("internal/core"))

	// coreClients are the only packages that may import internal/core: the
	// public facade, the wire daemon, and the experiment harness. Binaries
	// and examples go through the pcsi facade.
	coreClients = stringSet("pcsi", "internal/pcsinet", "internal/experiments", "internal/faasfs")

	// analysisClients may import internal/analysis.
	analysisClients = stringSet("cmd/pcsi-vet")
)

func stringSet(elems ...string) map[string]bool {
	m := make(map[string]bool, len(elems))
	for _, e := range elems {
		m[e] = true
	}
	return m
}

func union(sets ...map[string]bool) map[string]bool {
	m := make(map[string]bool)
	for _, s := range sets {
		for k := range s {
			m[k] = true
		}
	}
	return m
}

// Layering enforces the import-graph rules of DESIGN.md §3: substrates
// import no state/compute/core code, the state layer never reaches up into
// compute or core, baselines never import internal/core, direct
// internal/store access is reserved for the state layer + core + baselines,
// and only the stdlib is ever imported from outside the module.
var Layering = &Analyzer{
	Name:      "layering",
	Kind:      "syntactic",
	Directive: "layering",
	Doc:       "enforce the substrate→state→compute→core import layering and the stdlib-only rule",
	Run:       runLayering,
}

func runLayering(pass *Pass) {
	target := relPath(pass.Module, strings.TrimSuffix(pass.Pkg.Path, "_test"))
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			checkImport(pass, imp, target, path)
		}
	}
}

func checkImport(pass *Pass, imp *ast.ImportSpec, target, path string) {
	if path == "C" {
		pass.Report(imp.Pos(), "cgo is not used in this repository")
		return
	}
	inModule := path == pass.Module || strings.HasPrefix(path, pass.Module+"/")
	if !inModule {
		if first, _, _ := strings.Cut(path, "/"); strings.Contains(first, ".") {
			pass.Report(imp.Pos(), "import of %s breaks the stdlib-only rule: all code builds from the standard library alone", path)
		}
		return
	}
	dep := relPath(pass.Module, path)
	if dep == target {
		// An external _test package importing the package under test.
		return
	}

	switch {
	case target == "internal/trace":
		// The tracer is cross-cutting: any layer may import it, but it may
		// itself depend only on the sim engine (and the stdlib) so that
		// instrumenting a package never drags in extra layers.
		if dep != "internal/sim" {
			pass.Report(imp.Pos(), "internal/trace may not import %s: the tracer depends only on internal/sim and the stdlib so any layer can be instrumented (DESIGN.md §3)", dep)
			return
		}
	case target == "internal/fault":
		// The fault injector is cross-cutting like the tracer: any layer may
		// import it, but it may itself depend only on the sim engine and the
		// network/cluster substrates it perturbs.
		if !faultDeps[dep] {
			pass.Report(imp.Pos(), "internal/fault may not import %s: the fault injector depends only on internal/sim, internal/simnet, and internal/cluster so any layer can inject faults (DESIGN.md §3)", dep)
			return
		}
	case target == "internal/qos":
		// The admission controller gates the data plane and the invoke path
		// but depends only on the scheduling substrate: virtual time, the
		// cluster it derives capacity from, the fault layer's error
		// classification, and the tracer. Metrics arrive as interfaces.
		if !qosDeps[dep] {
			pass.Report(imp.Pos(), "internal/qos may not import %s: the admission controller depends only on internal/sim, internal/cluster, internal/fault, and internal/trace; metrics are wired in as interfaces (DESIGN.md §3)", dep)
			return
		}
	case target == "internal/obs":
		// The telemetry plane is an observer: it reads the metric registry
		// and the virtual clock and writes trace instants, so those three
		// substrates are its whole dependency surface.
		if !obsDeps[dep] {
			pass.Report(imp.Pos(), "internal/obs may not import %s: the telemetry plane depends only on internal/sim, internal/metrics, and internal/trace so attaching it never perturbs a domain layer (DESIGN.md §3)", dep)
			return
		}
	case target == "internal/fncache":
		// The colocated cache sits between state and compute: it may see
		// the consistency layer's stamps and the substrates, nothing above.
		if !fncacheDeps[dep] {
			pass.Report(imp.Pos(), "internal/fncache may not import %s: the colocated cache depends only on internal/sim, internal/cluster, internal/consistency, internal/trace, and internal/metrics (DESIGN.md §3)", dep)
			return
		}
	case target == "internal/faasfs":
		// The transactional file system reaches objects only through the
		// capability-checked core client; everything else it may see is the
		// cross-cutting substrate.
		if !faasfsDeps[dep] {
			pass.Report(imp.Pos(), "internal/faasfs may not import %s: the transactional file system depends only on internal/core, internal/consistency, internal/fault, internal/trace, and internal/sim (DESIGN.md §3)", dep)
			return
		}
	case substratePkgs[target]:
		if !substratePkgs[dep] {
			pass.Report(imp.Pos(), "substrate package %s may not import %s: substrates depend only on the stdlib and other substrates (DESIGN.md §3)", target, dep)
			return
		}
	case statePkgs[target]:
		if !substratePkgs[dep] && !statePkgs[dep] {
			pass.Report(imp.Pos(), "state-layer package %s may not import %s: the state layer sits below compute and core (DESIGN.md §3)", target, dep)
			return
		}
	case computePkgs[target]:
		if !substratePkgs[dep] && !statePkgs[dep] && !computePkgs[dep] && dep != "internal/fncache" {
			pass.Report(imp.Pos(), "compute-layer package %s may not import %s: only internal/core ties compute to the full system (DESIGN.md §3)", target, dep)
			return
		}
	case baselinePkgs[target]:
		if dep == "internal/core" || dep == "pcsi" || computePkgs[dep] {
			pass.Report(imp.Pos(), "baseline package %s may not import %s: baselines are what PCSI is measured against and must not share its implementation", target, dep)
			return
		}
	case target == "internal/core":
		if baselinePkgs[dep] || dep == "pcsi" || dep == "internal/experiments" {
			pass.Report(imp.Pos(), "internal/core may not import %s: the PCSI core stands alone from baselines and harnesses", dep)
			return
		}
	case target == "pcsi":
		if baselinePkgs[dep] || dep == "internal/store" || dep == "internal/experiments" || dep == "internal/pcsinet" || dep == "internal/analysis" {
			pass.Report(imp.Pos(), "pcsi may not import %s: the facade re-exports internal/core's API surface only", dep)
			return
		}
	}

	switch dep {
	case "internal/store":
		if !storeClients[target] {
			pass.Report(imp.Pos(), "%s may not import internal/store directly: raw store access is reserved for the state layer, core, and the baselines; pick media via internal/media and reach objects through capability-checked interfaces", target)
		}
	case "internal/core":
		if !coreClients[target] {
			pass.Report(imp.Pos(), "%s may not import internal/core directly: use the pcsi facade", target)
		}
	case "internal/analysis":
		if !analysisClients[target] {
			pass.Report(imp.Pos(), "%s may not import internal/analysis: only cmd/pcsi-vet runs the analyzers", target)
		}
	case "internal/qos":
		if !qosClients[target] {
			pass.Report(imp.Pos(), "%s may not import internal/qos: admission control is wired in by core, faas, and taskgraph; configure it through the pcsi facade", target)
		}
	case "internal/obs":
		if !obsClients[target] {
			pass.Report(imp.Pos(), "%s may not import internal/obs: telemetry planes are attached by core, faas, and taskgraph and rendered by the harness and binaries; export metrics through the registry instead", target)
		}
	case "internal/fncache":
		if !fncacheClients[target] {
			pass.Report(imp.Pos(), "%s may not import internal/fncache: colocated caches are wired in by faas and core; configure them through the pcsi facade", target)
		}
	case "internal/faasfs":
		if !faasfsClients[target] {
			pass.Report(imp.Pos(), "%s may not import internal/faasfs: sessions are opened by faas and taskgraph invocations; configure mounts through the pcsi facade", target)
		}
	}
}

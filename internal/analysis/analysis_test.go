package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// loadFixture type-checks the fixture module under testdata and runs every
// analyzer over all of its packages.
func loadFixture(t *testing.T) (*Loader, []Diagnostic) {
	t.Helper()
	l, err := NewLoader(filepath.Join("testdata", "fixture"))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return l, Run(l, pkgs, All())
}

// wantMarkers scans the fixture sources for expectation markers:
//
//	code // want: check [check...]   — diagnostics expected on this line
//	// want-next: check [check...]   — diagnostics expected on the next line
//
// and returns the expected check names per "relpath:line" key, sorted.
func wantMarkers(t *testing.T, root string) map[string][]string {
	t.Helper()
	want := make(map[string][]string)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			marker, target := "// want:", i+1
			idx := strings.Index(line, marker)
			if j := strings.Index(line, "// want-next:"); j >= 0 {
				marker, target, idx = "// want-next:", i+2, j
			}
			if idx < 0 {
				continue
			}
			checks := strings.Fields(line[idx+len(marker):])
			if len(checks) == 0 {
				return fmt.Errorf("%s:%d: empty want marker", rel, i+1)
			}
			key := fmt.Sprintf("%s:%d", filepath.ToSlash(rel), target)
			want[key] = append(want[key], checks...)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range want {
		sort.Strings(v)
	}
	return want
}

// TestFixtureDiagnostics compares every diagnostic the analyzers produce on
// the fixture module against the // want markers in its sources: nothing
// missing, nothing extra, on any line of any fixture package (including
// in-package and external test files).
func TestFixtureDiagnostics(t *testing.T) {
	l, diags := loadFixture(t)
	got := make(map[string][]string)
	for _, d := range diags {
		rel, err := filepath.Rel(l.Root, d.Pos.Filename)
		if err != nil {
			t.Fatalf("diagnostic outside fixture root: %v", d)
		}
		key := fmt.Sprintf("%s:%d", filepath.ToSlash(rel), d.Pos.Line)
		got[key] = append(got[key], d.Check)
	}
	for _, v := range got {
		sort.Strings(v)
	}
	want := wantMarkers(t, l.Root)
	for key, checks := range want {
		if !reflect.DeepEqual(got[key], checks) {
			t.Errorf("%s: want checks %v, got %v", key, checks, got[key])
		}
	}
	for key, checks := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("%s: unexpected diagnostics %v", key, checks)
		}
	}
}

// TestExactPositions pins the full file:line:column positions and messages
// for the wallclock fixture: the diagnostics must point at the offending
// selector expression, not merely the right line.
func TestExactPositions(t *testing.T) {
	l, diags := loadFixture(t)
	var got []string
	for _, d := range diags {
		rel, _ := filepath.Rel(l.Root, d.Pos.Filename)
		if filepath.ToSlash(rel) != "bad/wallclock/wallclock.go" {
			continue
		}
		got = append(got, fmt.Sprintf("%d:%d:%s:time.%s",
			d.Pos.Line, d.Pos.Column, d.Check, afterPrefix(d.Message, "wall-clock time.")))
	}
	want := []string{
		"8:11:simtime:time.Now",
		"9:2:simtime:time.Sleep",
		"10:9:simtime:time.Since",
		"15:9:simtime:time.NewTimer",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("wallclock positions:\n got %v\nwant %v", got, want)
	}
}

// afterPrefix returns the first word of s after prefix, or s if absent.
func afterPrefix(s, prefix string) string {
	rest, ok := strings.CutPrefix(s, prefix)
	if !ok {
		return s
	}
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// TestXTestPackagesLoaded asserts the external test package of the wallclock
// fixture loads as its own "_test" package and is analyzed.
func TestXTestPackagesLoaded(t *testing.T) {
	l, err := NewLoader(filepath.Join("testdata", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./bad/wallclock")
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	want := []string{"fixture/bad/wallclock", "fixture/bad/wallclock_test"}
	if !reflect.DeepEqual(paths, want) {
		t.Fatalf("Load paths = %v, want %v", paths, want)
	}
	if !pkgs[1].XTest {
		t.Error("external test package not marked XTest")
	}
}

// TestOnlySelectedAnalyzers asserts Run honors the analyzer subset: with
// only detrand, the wallclock fixture produces no diagnostics.
func TestOnlySelectedAnalyzers(t *testing.T) {
	l, err := NewLoader(filepath.Join("testdata", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./bad/wallclock")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run(l, pkgs, []*Analyzer{DetRand}); len(diags) != 0 {
		t.Errorf("detrand-only run on wallclock fixture reported %v", diags)
	}
}

// TestRelPath pins the module-relative path helper.
func TestRelPath(t *testing.T) {
	cases := []struct{ module, path, want string }{
		{"repro", "repro", "."},
		{"repro", "repro/internal/sim", "internal/sim"},
		{"repro", "other/pkg", "other/pkg"},
		{"fixture", "fixture/bad/wallclock_test", "bad/wallclock_test"},
	}
	for _, c := range cases {
		if got := relPath(c.module, c.path); got != c.want {
			t.Errorf("relPath(%q, %q) = %q, want %q", c.module, c.path, got, c.want)
		}
	}
}

// TestDiagnosticsSorted asserts Run returns diagnostics in position order,
// which the CLI and the marker test rely on.
func TestDiagnosticsSorted(t *testing.T) {
	_, diags := loadFixture(t)
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	sorted := sort.SliceIsSorted(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	if !sorted {
		t.Error("diagnostics not sorted by position")
	}
}

// TestSpanLeakExactPositions pins file:line:column for the spanbalance
// fixture: reports must anchor on the leaking return/panic/discard site and
// name the line the span was opened on.
func TestSpanLeakExactPositions(t *testing.T) {
	l, diags := loadFixture(t)
	var got []string
	for _, d := range diags {
		rel, _ := filepath.Rel(l.Root, d.Pos.Filename)
		if filepath.ToSlash(rel) != "bad/spanleak/spanleak.go" {
			continue
		}
		where := "discarded"
		if i := strings.Index(d.Message, "opened at line "); i >= 0 {
			where = afterPrefix(d.Message[i:], "opened at line ")
		}
		got = append(got, fmt.Sprintf("%d:%d:%s:%s", d.Pos.Line, d.Pos.Column, d.Check, where))
	}
	want := []string{
		"15:3:spanbalance:13", // early return leaks the span from line 13
		"22:2:spanbalance:discarded",
		"29:3:spanbalance:27", // panic path leaks the span from line 27
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("spanleak positions:\n got %v\nwant %v", got, want)
	}
}

// TestMapOrderExactPositions pins file:line:column for the maprange
// fixture: rule 1 anchors on the for keyword, rule 2 on the sink call, and
// rule 3 on the first tainted append.
func TestMapOrderExactPositions(t *testing.T) {
	l, diags := loadFixture(t)
	var got []string
	for _, d := range diags {
		rel, _ := filepath.Rel(l.Root, d.Pos.Filename)
		if filepath.ToSlash(rel) != "bad/maporder/maporder.go" {
			continue
		}
		got = append(got, fmt.Sprintf("%d:%d:%s", d.Pos.Line, d.Pos.Column, d.Check))
	}
	want := []string{
		"16:2:maprange", // rule 1: arbitrary pick, at the for keyword
		"36:3:maprange", // rule 2: fmt.Println sink
		"44:3:maprange", // rule 2: Proc.Sleep sink
		"52:9:maprange", // rule 3: unsorted append
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("maporder positions:\n got %v\nwant %v", got, want)
	}
}

// TestHotPathExactPositions pins file:line:column for the hotpath fixture:
// each rule must anchor on the offending expression or statement (the
// closure literal, the defer keyword, the append call, the concatenation,
// the Sprintf call, the boxed argument, the stray directive).
func TestHotPathExactPositions(t *testing.T) {
	l, diags := loadFixture(t)
	var got []string
	for _, d := range diags {
		rel, _ := filepath.Rel(l.Root, d.Pos.Filename)
		if filepath.ToSlash(rel) != "bad/hotpath/hotpath.go" {
			continue
		}
		got = append(got, fmt.Sprintf("%d:%d", d.Pos.Line, d.Pos.Column))
	}
	want := []string{
		"18:9",  // rule 1: closure capture, at the func literal
		"26:3",  // rule 2: defer in loop, at the defer keyword
		"31:9",  // rule 3: unpreallocated append, at the append call
		"43:7",  // rule 5: concatenation, at the outermost BinaryExpr
		"47:3",  // rule 5: string +=, at the statement
		"51:10", // rule 6: Sprintf off the error path, at the call
		"54:10", // rule 4: boxing, at the boxed argument
		"78:1",  // stray directive, at the comment
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("hotpath positions:\n got %v\nwant %v", got, want)
	}
}

// TestGoroLeakExactPositions pins positions and blamed channels for the
// goroleak fixture: reports anchor on the go statement.
func TestGoroLeakExactPositions(t *testing.T) {
	l, diags := loadFixture(t)
	var got []string
	for _, d := range diags {
		rel, _ := filepath.Rel(l.Root, d.Pos.Filename)
		if filepath.ToSlash(rel) != "bad/goroleak/goroleak.go" {
			continue
		}
		ch := "?"
		for _, word := range []string{"ch", "done", "jobs"} {
			if strings.Contains(d.Message, " "+word+",") {
				ch = word
				break
			}
		}
		got = append(got, fmt.Sprintf("%d:%d:%s", d.Pos.Line, d.Pos.Column, ch))
	}
	want := []string{
		"9:2:ch",    // literal receiver, no send/close
		"17:2:done", // literal sender, unbuffered, no receiver
		"32:2:jobs", // named worker resolved through the call graph
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("goroleak positions:\n got %v\nwant %v", got, want)
	}
}

// TestCapEscapeExactPositions pins positions and sink kinds for the
// capescape fixture: the type rule and flow rule anchor on the declared
// name, the body rules on the escaping statement, and flow findings name
// the origin site inside object.New.
func TestCapEscapeExactPositions(t *testing.T) {
	l, diags := loadFixture(t)
	var got []string
	for _, d := range diags {
		rel, _ := filepath.Rel(l.Root, d.Pos.Filename)
		if filepath.ToSlash(rel) != "internal/pcsinet/pcsinet.go" {
			continue
		}
		kind := "?"
		for _, k := range []string{"package-level var", "returns a value of type", "may return a raw", "channel send", "exported field"} {
			if strings.Contains(d.Message, k) {
				kind = k
				break
			}
		}
		if kind == "package-level var" && strings.Contains(d.Message, "assignment stores") {
			kind = "var assignment"
		}
		got = append(got, fmt.Sprintf("%d:%d:%s:%s", d.Pos.Line, d.Pos.Column, d.Check, kind))
	}
	want := []string{
		"11:5:capescape:package-level var",       // Cached's declared type
		"20:6:capescape:returns a value of type", // Fetch's result type
		"24:6:capescape:may return a raw",        // Opaque's result flow
		"28:2:capescape:var assignment",          // current = object.New()
		"33:2:capescape:channel send",            // events <- object.New()
		"41:2:capescape:exported field",          // c.Last = object.New()
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("capescape positions:\n got %v\nwant %v", got, want)
	}
	for _, d := range diags {
		if d.Check == "capescape" && strings.Contains(d.Message, "may return a raw") &&
			!strings.Contains(d.Message, "created at object.go:10") {
			t.Errorf("flow finding does not name the origin site: %s", d.Message)
		}
	}
}

// TestWrapClassExactPositions pins positions, origin kinds, and resolved
// op strings for the wrapclass fixture: findings anchor on the error
// construction site and carry the boundary op, including the op resolved
// through retry's parameter forwarding.
func TestWrapClassExactPositions(t *testing.T) {
	l, diags := loadFixture(t)
	var got []string
	for _, d := range diags {
		rel, _ := filepath.Rel(l.Root, d.Pos.Filename)
		if filepath.ToSlash(rel) != "internal/taskgraph/taskgraph.go" || d.Check != "wrapclass" {
			continue
		}
		op := "?"
		if i := strings.Index(d.Message, "(op "); i >= 0 {
			op = strings.Trim(afterPrefix(d.Message[i:], "(op "), `"):`)
		}
		origin := "?"
		for _, k := range []string{"errors.New", "fmt.Errorf", "opError"} {
			if strings.Contains(d.Message, k) {
				origin = k
				break
			}
		}
		got = append(got, fmt.Sprintf("%d:%d:%s:%s", d.Pos.Line, d.Pos.Column, origin, op))
	}
	want := []string{
		"30:10:errors.New:taskgraph.step",  // step's raw errors.New
		"33:10:fmt.Errorf:taskgraph.step",  // step's %w-less Errorf
		"35:10:opError:taskgraph.step",     // step's composite literal
		"53:10:errors.New:taskgraph.flaky", // op resolved through retry's params
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("wrapclass positions:\n got %v\nwant %v", got, want)
	}
}

// TestSimBlockExactPositions pins positions, sinks, and chain rendering
// for the simblock fixture: direct roots report with no chain, helpers
// name the hops, and the sim-unreachable Offline stays simblock-quiet.
func TestSimBlockExactPositions(t *testing.T) {
	l, diags := loadFixture(t)
	var got []string
	for _, d := range diags {
		rel, _ := filepath.Rel(l.Root, d.Pos.Filename)
		if filepath.ToSlash(rel) != "bad/simblock/simblock.go" || d.Check != "simblock" {
			continue
		}
		sink := afterPrefix(d.Message, "")
		chain := ""
		if strings.Contains(d.Message, " via ") {
			chain = ":via"
		}
		got = append(got, fmt.Sprintf("%d:%d:%s%s", d.Pos.Line, d.Pos.Column, sink, chain))
	}
	want := []string{
		"26:2:time.Sleep",              // Tick's direct sleep, root itself
		"39:2:sync.WaitGroup.Wait:via", // helper, chained from Drive's closure
		"40:2:receive:via",             // helper's shared-channel receive
		"46:2:range",                   // Consume's range over shared channel
		"48:9:os.ReadFile",             // Consume's real file read
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("simblock positions:\n got %v\nwant %v", got, want)
	}
}

// TestLockOrderExactPositions pins positions for the lockorder fixture:
// inversions report at the lexically later second-acquisition site and
// name both functions; balance leaks report at the acquisition site.
func TestLockOrderExactPositions(t *testing.T) {
	l, diags := loadFixture(t)
	var got []string
	for _, d := range diags {
		rel, _ := filepath.Rel(l.Root, d.Pos.Filename)
		if filepath.ToSlash(rel) != "bad/lockorder/lockorder.go" {
			continue
		}
		kind := "balance"
		if strings.Contains(d.Message, "inversion") {
			kind = "inversion"
		}
		got = append(got, fmt.Sprintf("%d:%d:%s", d.Pos.Line, d.Pos.Column, kind))
	}
	want := []string{
		"25:2:inversion", // baPath's mu.Lock vs abPath's mu->nu
		"45:2:inversion", // reversed's a.Lock vs viaHelper's a->lockB(b)
		"53:2:balance",   // leaky's mu.Lock, unreleased on the return path
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("lockorder positions:\n got %v\nwant %v", got, want)
	}
}

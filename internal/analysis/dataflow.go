package analysis

// dataflow.go is a forward may-analysis framework over the CFGs of cfg.go.
// An analyzer supplies a transfer function — the gen/kill effect of one CFG
// node on a set of facts — and the framework iterates the per-block
// equations IN[b] = ⋃ OUT[pred], OUT[b] = transfer*(IN[b]) to a fixpoint.
// Facts are arbitrary comparable values (typically a *types.Var or a small
// struct keyed by one); the join is set union, so a fact holds at a point
// if it holds on ANY path reaching it. Transfer functions must be monotone:
// out = (in − kill(n)) ∪ gen(n, in) with gen non-decreasing in `in`, which
// guarantees termination because the fact domain of one function is finite.

import "go/ast"

// factSet is a set of dataflow facts. Keys must be comparable.
type factSet map[any]bool

func (s factSet) clone() factSet {
	c := make(factSet, len(s))
	for f := range s {
		c[f] = true
	}
	return c
}

// transferFn is the gen/kill effect of one CFG node: given the facts
// holding immediately before n, it returns the facts holding after. It must
// be pure (no reporting — diagnostics come from a replay pass) and may
// return its argument unchanged when n has no effect.
type transferFn func(n ast.Node, in factSet) factSet

// blockOut folds the transfer function over a block's nodes.
func blockOut(blk *block, in factSet, tf transferFn) factSet {
	out := in
	for _, n := range blk.nodes {
		out = tf(n, out)
	}
	return out
}

// forwardDataflow computes each block's entry fact set by fixpoint
// iteration. Unreachable blocks keep empty sets. The result is independent
// of iteration order (union is commutative), so the map-based worklist is
// deterministic in effect even though Go randomizes map iteration.
func forwardDataflow(g *cfg, tf transferFn) map[*block]factSet {
	in := make(map[*block]factSet, len(g.blocks))
	for _, blk := range g.blocks {
		in[blk] = factSet{}
	}
	for changed := true; changed; {
		changed = false
		for _, blk := range g.blocks {
			if blk.preds == 0 && blk != g.blocks[0] {
				continue
			}
			out := blockOut(blk, in[blk].clone(), tf)
			for _, succ := range blk.succs {
				dst := in[succ]
				for f := range out {
					if !dst[f] {
						dst[f] = true
						changed = true
					}
				}
			}
		}
	}
	return in
}

// replay re-runs the converged solution node by node, calling visit with
// the facts holding immediately BEFORE each node executes. Blocks are
// visited in creation order (≈ source order), so diagnostics emitted from
// visit come out deterministically.
func replay(g *cfg, in map[*block]factSet, tf transferFn, visit func(n ast.Node, before factSet)) {
	for _, blk := range g.blocks {
		if blk.preds == 0 && blk != g.blocks[0] {
			continue
		}
		facts := in[blk].clone()
		for _, n := range blk.nodes {
			visit(n, facts)
			facts = tf(n, facts)
		}
	}
}

// finalFacts returns the facts holding at the function's closing brace, or
// nil when control cannot fall off the end.
func finalFacts(g *cfg, in map[*block]factSet, tf transferFn) factSet {
	if !g.finalLive {
		return nil
	}
	return blockOut(g.final, in[g.final].clone(), tf)
}

// funcBodies yields every function body in the file in source order: each
// declared function and each function literal, so analyses stay strictly
// intraprocedural (a literal's body is analyzed as its own function, with
// its own CFG).
func funcBodies(f *ast.File, fn func(name string, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n.Name.Name, n.Body)
			}
		case *ast.FuncLit:
			fn("func literal", n.Body)
		}
		return true
	})
}

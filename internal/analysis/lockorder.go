package analysis

// lockorder.go enforces two mutex disciplines over the whole program.
//
// Ordering: if one code path acquires mutex A and then (directly, or
// through any chain of calls the call graph can see) acquires B while
// still holding A, and another path does the reverse, the two paths can
// deadlock against each other. Every (held, acquired) pair observed
// anywhere in the module goes into a global index; an AB pair with a BA
// counterpart is reported at the lexically later of the two acquisition
// sites, pointing at the earlier one.
//
// Balance: a Lock (or RLock) must be released on every path out of the
// function that took it — an explicit Unlock before each return, or a
// defer Unlock. A lock still held at a return or at the closing brace is
// reported at the acquisition site.
//
// Mutex identity is the variable the receiver expression names: a struct
// field (one identity per field declaration, shared by all instances — the
// classic per-type heuristic) or a package-level/local variable. Receiver
// expressions that resolve to neither are skipped.
//
// The two disciplines need opposite treatments of defer: for balance, a
// defer Unlock guarantees release at exit, so it kills the fact; for
// ordering, the mutex stays held until the function returns, so deferred
// statements have no effect on the held set.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder reports AB/BA mutex acquisition inversions across call-graph
// paths and locks not released on every path out of their function.
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Kind:      "interprocedural",
	Directive: "lockorder",
	Doc:       "enforce a consistent mutex acquisition order and release on all paths",
	Prepare:   prepareLockOrder,
	Run:       runLockOrder,
}

const lockOrderCacheKey = "lockorder.findings"

// lockFinding is one ordering violation, computed whole-program in the
// prepare phase and reported by the pass covering its package.
type lockFinding struct {
	pkg *Package
	pos token.Pos
	msg string
}

// mutexOp is one Lock/Unlock/RLock/RUnlock call on a resolvable mutex.
type mutexOp struct {
	v    *types.Var
	lock bool // acquisition (false: release)
	read bool // RLock/RUnlock
	pos  token.Pos
}

// mutexOpOf recognizes a call as a sync.Mutex/RWMutex operation whose
// receiver resolves to a variable.
func mutexOpOf(info *types.Info, call *ast.CallExpr) (mutexOp, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return mutexOp{}, false
	}
	var lock, read bool
	switch fn.Name() {
	case "Lock":
		lock = true
	case "RLock":
		lock, read = true, true
	case "Unlock":
	case "RUnlock":
		read = true
	default:
		return mutexOp{}, false
	}
	named := receiverNamed(fn)
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return mutexOp{}, false
	}
	if nm := named.Obj().Name(); nm != "Mutex" && nm != "RWMutex" {
		return mutexOp{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return mutexOp{}, false
	}
	v := mutexVarOf(info, sel.X)
	if v == nil {
		return mutexOp{}, false
	}
	return mutexOp{v: v, lock: lock, read: read, pos: call.Pos()}, true
}

// mutexVarOf resolves the mutex receiver expression to its identity
// variable: x.mu yields the field mu (shared across instances), a bare
// identifier yields the local or package-level variable.
func mutexVarOf(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	}
	return nil
}

// heldFact is an order-analysis fact: v is held (in read or write mode)
// at this program point. Deferred unlocks do not kill it.
type heldFact struct {
	v    *types.Var
	read bool
}

// lockedFact is a balance-analysis fact: the acquisition at site has not
// been matched by a release (explicit or deferred) yet.
type lockedFact struct {
	v    *types.Var
	read bool
	site token.Pos
}

// orderTF is the transfer function of the held-set analysis. Deferred
// statements are skipped entirely: their unlocks run only at exit.
func orderTF(info *types.Info) transferFn {
	return func(node ast.Node, in factSet) factSet {
		if _, ok := node.(*ast.DeferStmt); ok {
			return in
		}
		out := in
		inspectShallow(node, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			op, ok := mutexOpOf(info, call)
			if !ok {
				return true
			}
			if op.lock {
				out = out.clone()
				out[heldFact{v: op.v, read: op.read}] = true
			} else if out[heldFact{v: op.v, read: op.read}] {
				out = out.clone()
				delete(out, heldFact{v: op.v, read: op.read})
			}
			return true
		})
		return out
	}
}

// balanceTF is the transfer function of the release analysis: locks gen a
// fact carrying their site, releases — including deferred ones, which
// guarantee release at exit — kill every fact for the same mutex/mode.
func balanceTF(info *types.Info) transferFn {
	return func(node ast.Node, in factSet) factSet {
		_, deferred := node.(*ast.DeferStmt)
		out := in
		inspectShallow(node, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			op, ok := mutexOpOf(info, call)
			if !ok {
				return true
			}
			if op.lock {
				if deferred {
					return true // defer m.Lock() at exit: not this check's business
				}
				out = out.clone()
				out[lockedFact{v: op.v, read: op.read, site: op.pos}] = true
				return true
			}
			out = killLocked(out, op.v, op.read)
			return true
		})
		return out
	}
}

// killLocked removes every balance fact for the given mutex and mode,
// cloning on first write.
func killLocked(in factSet, v *types.Var, read bool) factSet {
	out := in
	copied := false
	for f := range in {
		if lf, ok := f.(lockedFact); ok && lf.v == v && lf.read == read {
			if !copied {
				out = in.clone()
				copied = true
			}
			delete(out, f)
		}
	}
	return out
}

// lockPairKey identifies "b acquired while a held".
type lockPairKey struct {
	a, b *types.Var
}

// lockPairSite is the first site observing a pair.
type lockPairSite struct {
	pos token.Pos
	pkg *Package
	fn  string // enclosing function's call-graph name
}

// prepareLockOrder runs the whole-program ordering analysis once: per
// function, the held set flows through the CFG; each acquisition — direct
// or anywhere in a call's transitive callees — while something else is
// held records a pair, and AB/BA conflicts become findings for the
// per-package passes to report.
func prepareLockOrder(pass *Pass) {
	if _, ok := pass.Cache[lockOrderCacheKey]; ok {
		return
	}
	g := buildCallGraph(pass)

	// Directly acquired mutexes per function, for call-site summaries.
	direct := make(map[*funcNode]map[*types.Var]bool)
	for _, n := range g.nodes {
		var s map[*types.Var]bool
		inspectShallowStmts(n.body, func(m ast.Node) bool {
			if _, ok := m.(*ast.DeferStmt); ok {
				return false
			}
			if call, ok := m.(*ast.CallExpr); ok {
				if op, ok := mutexOpOf(n.pkg.Info, call); ok && op.lock {
					if s == nil {
						s = make(map[*types.Var]bool)
					}
					s[op.v] = true
				}
			}
			return true
		})
		if s != nil {
			direct[n] = s
		}
	}

	memo := make(map[*funcNode]map[*funcNode]bool)
	summaries := make(map[*funcNode]map[*types.Var]bool)
	summary := func(n *funcNode) map[*types.Var]bool {
		if s, ok := summaries[n]; ok {
			return s
		}
		s := make(map[*types.Var]bool)
		for v := range direct[n] {
			s[v] = true
		}
		for c := range g.transitiveCallees(n, memo) {
			for v := range direct[c] {
				s[v] = true
			}
		}
		summaries[n] = s
		return s
	}

	pairs := make(map[lockPairKey]lockPairSite)
	record := func(n *funcNode, held factSet, v2 *types.Var, pos token.Pos) {
		for f := range held {
			hf, ok := f.(heldFact)
			if !ok || hf.v == v2 {
				continue
			}
			key := lockPairKey{a: hf.v, b: v2}
			if _, ok := pairs[key]; !ok {
				pairs[key] = lockPairSite{pos: pos, pkg: n.pkg, fn: n.name}
			}
		}
	}
	for _, n := range g.nodes {
		if direct[n] == nil {
			continue // no direct acquisition: the held set stays empty
		}
		info := n.pkg.Info
		edgeBySite := make(map[token.Pos][]*funcNode)
		for _, e := range n.edges {
			edgeBySite[e.site] = append(edgeBySite[e.site], e.callee)
		}
		tf := orderTF(info)
		cg := buildCFG(n.body, info)
		in := forwardDataflow(cg, tf)
		replay(cg, in, tf, func(node ast.Node, before factSet) {
			if _, ok := node.(*ast.DeferStmt); ok {
				return
			}
			held := before
			inspectShallow(node, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if op, ok := mutexOpOf(info, call); ok {
					if op.lock {
						record(n, held, op.v, op.pos)
						held = held.clone()
						held[heldFact{v: op.v, read: op.read}] = true
					} else if held[heldFact{v: op.v, read: op.read}] {
						held = held.clone()
						delete(held, heldFact{v: op.v, read: op.read})
					}
					return true
				}
				if len(held) == 0 {
					return true
				}
				for _, c := range edgeBySite[call.Pos()] {
					for v2 := range summary(c) {
						record(n, held, v2, call.Pos())
					}
				}
				return true
			})
		})
	}

	var findings []lockFinding
	for key, site := range pairs {
		inv, ok := pairs[lockPairKey{a: key.b, b: key.a}]
		if !ok {
			continue
		}
		// Report each unordered conflict once, at the lexically later of
		// the two sites, pointing back at the earlier one.
		p, q := pass.Fset.Position(site.pos), pass.Fset.Position(inv.pos)
		if positionLess(p, q) {
			continue // the other direction reports
		}
		findings = append(findings, lockFinding{
			pkg: site.pkg,
			pos: site.pos,
			msg: fmt.Sprintf("lock order inversion: %s is acquired while holding %s here (in %s), but %s takes them in the opposite order at %s; pick one global order or annotate //pcsi:allow lockorder",
				key.b.Name(), key.a.Name(), site.fn, inv.fn, q),
		})
	}
	sort.Slice(findings, func(i, j int) bool {
		pi, pj := pass.Fset.Position(findings[i].pos), pass.Fset.Position(findings[j].pos)
		if pi.Filename != pj.Filename || pi.Line != pj.Line || pi.Column != pj.Column {
			return positionLess(pi, pj)
		}
		return findings[i].msg < findings[j].msg
	})
	pass.Cache[lockOrderCacheKey] = findings
}

func positionLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

func runLockOrder(pass *Pass) {
	if _, ok := pass.Cache[lockOrderCacheKey]; !ok {
		prepareLockOrder(pass) // direct use without the prepare phase
	}
	findings, _ := pass.Cache[lockOrderCacheKey].([]lockFinding)
	for _, f := range findings {
		if f.pkg == pass.Pkg {
			pass.Report(f.pos, "%s", f.msg)
		}
	}
	g := buildCallGraph(pass)
	for _, n := range g.nodesIn(pass.Pkg) {
		checkLockBalance(pass, n)
	}
}

// checkLockBalance reports acquisitions not matched by a release on every
// path out of the function: at each return, and at the closing brace, any
// surviving locked fact is a leak, reported at its acquisition site.
func checkLockBalance(pass *Pass, n *funcNode) {
	info := n.pkg.Info
	any := false
	inspectShallowStmts(n.body, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if _, ok := mutexOpOf(info, call); ok {
				any = true
			}
		}
		return !any
	})
	if !any {
		return
	}
	tf := balanceTF(info)
	cg := buildCFG(n.body, info)
	in := forwardDataflow(cg, tf)
	reported := make(map[token.Pos]bool)
	report := func(f lockedFact, where string) {
		if reported[f.site] {
			return
		}
		reported[f.site] = true
		lockName, unlockName := "Lock", "Unlock"
		if f.read {
			lockName, unlockName = "RLock", "RUnlock"
		}
		pass.Report(f.site,
			"%s.%s() may still be held at %s: no %s or defer %s on this path; release on every path or annotate //pcsi:allow lockorder",
			f.v.Name(), lockName, where, unlockName, unlockName)
	}
	replay(cg, in, tf, func(node ast.Node, before factSet) {
		ret, ok := node.(*ast.ReturnStmt)
		if !ok {
			return
		}
		for f := range before {
			if lf, ok := f.(lockedFact); ok {
				report(lf, fmt.Sprintf("the return on line %d", pass.Fset.Position(ret.Pos()).Line))
			}
		}
	})
	if fin := finalFacts(cg, in, tf); fin != nil {
		for f := range fin {
			if lf, ok := f.(lockedFact); ok {
				report(lf, "the end of the function")
			}
		}
	}
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// retryBoundaryPkgs are the module-relative packages whose errors can reach
// fault.Policy retry loops: the core data plane, the invoke path, the task
// executor, and admission control. Every concrete error they declare must
// carry a retry classification, or a new sentinel silently becomes
// fatal-by-accident (or retried-forever) the first time chaos mode wraps it
// — the exact bug class qos.ErrOverload fixed by hand in PR 4.
var retryBoundaryPkgs = stringSet(
	"internal/core", "internal/faas", "internal/taskgraph", "internal/qos",
)

// ErrClass checks that every error sentinel and concrete error type
// declared in a retry-boundary package is classified: constructed with
// fault.Fatal/fault.Transient, implementing fault.Classified, or listed in
// a known classifier — a func(error) bool anywhere in the analyzed module
// that mentions the sentinel (errors.Is table, == comparison, switch case)
// or its type (errors.As target).
var ErrClass = &Analyzer{
	Name:      "errclass",
	Kind:      "dataflow",
	Directive: "errclass",
	Doc:       "require retry-boundary errors to implement fault.Classified or appear in a classifier",
	Prepare:   prepareErrClass,
	Run:       runErrClass,
}

// prepareErrClass resolves fault.Classified (a lazy package load) and
// builds the whole-program classifier index while the run is still
// serial; the parallel per-package passes then only read the cache.
func prepareErrClass(pass *Pass) {
	pass.Cache["errclass.classified"] = classifiedIface(pass)
	buildErrClassIndex(pass)
}

// errClassIndex is the whole-program classifier index, built once per Run
// from every fully loaded module package and shared through Pass.Cache.
type errClassIndex struct {
	listed    map[types.Object]bool // sentinels mentioned in a classifier
	mentioned map[*types.Named]bool // error types mentioned in a classifier
}

func runErrClass(pass *Pass) {
	if pass.Pkg.XTest {
		return
	}
	target := relPath(pass.Module, pass.Pkg.Path)
	if !retryBoundaryPkgs[target] {
		return
	}
	if _, ok := pass.Cache["errclass.classified"]; !ok {
		prepareErrClass(pass) // direct use without the prepare phase
	}
	classified, _ := pass.Cache["errclass.classified"].(*types.Interface)
	if classified == nil {
		return // no fault.Classified in this module: nothing to enforce
	}
	idx := buildErrClassIndex(pass)
	errorIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

	for _, f := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue // test-local errors never cross the runtime retry boundary
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch spec := spec.(type) {
				case *ast.ValueSpec:
					checkErrSentinels(pass, spec, errorIface, classified, idx)
				case *ast.TypeSpec:
					checkErrType(pass, spec, errorIface, classified, idx)
				}
			}
		}
	}
}

// classifiedIface resolves fault.Classified in the analyzed module.
func classifiedIface(pass *Pass) *types.Interface {
	faultPkg, err := pass.Loader.Import(pass.Module + "/internal/fault")
	if err != nil || faultPkg == nil {
		return nil
	}
	obj := faultPkg.Scope().Lookup("Classified")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// buildErrClassIndex scans every fully loaded module package for classifier
// functions — any func(error) bool — and records the package-level error
// sentinels and error types they mention.
func buildErrClassIndex(pass *Pass) *errClassIndex {
	if idx, ok := pass.Cache["errclass.index"].(*errClassIndex); ok {
		return idx
	}
	idx := &errClassIndex{
		listed:    make(map[types.Object]bool),
		mentioned: make(map[*types.Named]bool),
	}
	errorIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, pkg := range pass.Loader.FullPackages() {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !isClassifierSig(pkg.Info, fd) {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					switch obj := pkg.Info.Uses[id].(type) {
					case *types.Var:
						if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() &&
							types.Implements(obj.Type(), errorIface) {
							idx.listed[obj] = true
						}
					case *types.TypeName:
						if named, ok := obj.Type().(*types.Named); ok {
							if implementsEither(named, errorIface) {
								idx.mentioned[named] = true
							}
						}
					}
					return true
				})
			}
		}
	}
	pass.Cache["errclass.index"] = idx
	return idx
}

// isClassifierSig reports whether fd declares a func(error) bool (the shape
// of fault.Retryable, core.DefaultRetryable, and Policy.Retryable hooks).
func isClassifierSig(info *types.Info, fd *ast.FuncDecl) bool {
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	return types.Identical(sig.Params().At(0).Type(), types.Universe.Lookup("error").Type()) &&
		types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool])
}

// implementsEither reports whether T or *T implements iface.
func implementsEither(t types.Type, iface *types.Interface) bool {
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

// checkErrSentinels verifies each error-typed package var in the spec.
func checkErrSentinels(pass *Pass, spec *ast.ValueSpec, errorIface, classified *types.Interface, idx *errClassIndex) {
	info := pass.Pkg.Info
	for i, name := range spec.Names {
		obj, ok := info.Defs[name].(*types.Var)
		if !ok || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
			continue
		}
		if !types.Implements(obj.Type(), errorIface) &&
			!types.Implements(types.NewPointer(obj.Type()), errorIface) {
			continue
		}
		if implementsEither(obj.Type(), classified) || idx.listed[obj] {
			continue
		}
		if i < len(spec.Values) && initClassified(pass, spec.Values[i], classified) {
			continue
		}
		var fixes []SuggestedFix
		if i < len(spec.Values) {
			fixes = classifyRewriteFixes(pass, spec.Values[i])
		}
		pass.ReportWithFix(name.Pos(), fixes,
			"error sentinel %s is declared in retry-boundary package %s without a retry classification: construct it with fault.Fatal/fault.Transient, make it implement fault.Classified, or list it in a classifier's errors.Is set",
			name.Name, relPath(pass.Module, pass.Pkg.Path))
	}
}

// initClassified reports whether an initializer expression yields a
// classified error: a fault.Fatal/Transient call, or a value whose static
// type implements fault.Classified.
func initClassified(pass *Pass, init ast.Expr, classified *types.Interface) bool {
	init = ast.Unparen(init)
	if call, ok := init.(*ast.CallExpr); ok {
		fn := calleeFunc(pass.Pkg.Info, call)
		faultPkg := pass.Module + "/internal/fault"
		for _, name := range [...]string{"Fatal", "Transient", "Fatalf", "Transientf"} {
			if isPkgFunc(fn, faultPkg, name) {
				return true
			}
		}
	}
	if tv, ok := pass.Pkg.Info.Types[init]; ok && tv.Type != nil {
		if implementsEither(tv.Type, classified) {
			return true
		}
	}
	return false
}

// classifyRewriteFixes builds the constructor-rewrite fix for an
// unclassified sentinel initializer: errors.New → fault.Transient,
// fmt.Errorf → fault.Transientf, plus the fault import. Nil when the
// initializer has no mechanical rewrite.
func classifyRewriteFixes(pass *Pass, init ast.Expr) []SuggestedFix {
	call, ok := ast.Unparen(init).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := calleeFunc(pass.Pkg.Info, call)
	var to string
	switch {
	case isPkgFunc(fn, "errors", "New"):
		to = "fault.Transient"
	case isPkgFunc(fn, "fmt", "Errorf") && !errorfWraps(call):
		to = "fault.Transientf"
	default:
		return nil
	}
	edits := []TextEdit{editReplace(pass.Fset, call.Fun.Pos(), call.Fun.End(), to)}
	if f := fileContaining(pass.Pkg, pass.Fset, call.Pos()); f != nil {
		if imp := importEdit(pass.Fset, f, pass.Module+"/internal/fault"); imp != nil {
			edits = append(edits, *imp)
		}
	}
	return []SuggestedFix{{
		Message: "rewrite to " + to + " so the error is classified",
		Edits:   edits,
	}}
}

// checkErrType verifies a concrete named error type declared in a
// retry-boundary package.
func checkErrType(pass *Pass, spec *ast.TypeSpec, errorIface, classified *types.Interface, idx *errClassIndex) {
	obj, ok := pass.Pkg.Info.Defs[spec.Name].(*types.TypeName)
	if !ok {
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return
	}
	if _, isIface := named.Underlying().(*types.Interface); isIface {
		return
	}
	if !implementsEither(named, errorIface) {
		return
	}
	if implementsEither(named, classified) || idx.mentioned[named] {
		return
	}
	pass.Report(spec.Name.Pos(),
		"error type %s is declared in retry-boundary package %s without a retry classification: give it a Retryable() bool method (fault.Classified) or target it with errors.As in a classifier",
		spec.Name.Name, relPath(pass.Module, pass.Pkg.Path))
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// MapRange flags nondeterministic map iteration: Go randomizes map order
// per run, so map-range values flowing into an order-sensitive sink break
// the "same seed ⇒ byte-identical output" contract. Three rules, all
// intraprocedural:
//
//  1. Arbitrary pick: a map-range body that can never reach the loop's back
//     edge (it always breaks/returns on its first pass) while binding and
//     using the key or value consumes one arbitrary element.
//  2. Ordered effects in the body: calling a scheduling, tracing, metrics,
//     or printing sink inside a map-range body emits effects in randomized
//     order, whether or not the arguments are tainted.
//  3. Unsorted accumulation: appending map-derived values to a slice that
//     reaches a return without an intervening sort.* call hands randomized
//     order to the caller. The sanctioned append-then-sort idiom kills the
//     taint; keyed stores (m[k] = append(...)) are exempt because lookup
//     order, not insertion order, determines later reads.
//
// Taint propagates through locals via the forward-dataflow lattice: range
// Key/Value bindings (and ranges over already-tainted slices) gen variable
// taint, assignments propagate it, and sorting kills slice taint.
var MapRange = &Analyzer{
	Name:      "maprange",
	Kind:      "dataflow",
	Directive: "maporder",
	Doc:       "flag map iteration whose randomized order reaches an order-sensitive sink",
	Run:       runMapRange,
}

// varTaint marks a variable holding a value derived from map iteration.
type varTaint struct{ v *types.Var }

// sliceTaint marks a canonical lvalue (e.g. "out", "rep.Components")
// accumulating map-derived appends, first appended at pos, not yet sorted.
type sliceTaint struct {
	path string
	pos  token.Pos
}

// mapRangeSinks are order-sensitive callees for rule 2, keyed by module
// package, receiver type ("" for package functions), and method name.
type sinkKey struct{ pkg, recv, name string }

var moduleSinks = map[sinkKey]bool{
	{"internal/sim", "Proc", "Sleep"}:            true,
	{"internal/sim", "Proc", "Wait"}:             true,
	{"internal/sim", "Proc", "WaitAny"}:          true,
	{"internal/sim", "Proc", "Yield"}:            true,
	{"internal/sim", "Env", "Go"}:                true,
	{"internal/sim", "Env", "At"}:                true,
	{"internal/sim", "Env", "After"}:             true,
	{"internal/trace", "Tracer", "Start"}:        true,
	{"internal/trace", "Tracer", "StartSpan"}:    true,
	{"internal/trace", "Tracer", "Instant"}:      true,
	{"internal/trace", "Tracer", "Mark"}:         true,
	{"internal/trace", "Span", "Close"}:          true,
	{"internal/metrics", "Gauge", "Add"}:         true,
	{"internal/metrics", "Gauge", "Set"}:         true,
	{"internal/metrics", "Histogram", "Observe"}: true,
}

// fmtSinks are the stdlib printing functions that emit in call order.
var fmtSinks = stringSet(
	"Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln",
)

func runMapRange(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		funcBodies(f, func(_ string, body *ast.BlockStmt) {
			checkMapRange(pass, body)
		})
	}
}

// isMapRange reports whether rs ranges over a map.
func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	tv, ok := info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isOrderSink reports whether call invokes an order-sensitive effect.
func isOrderSink(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil {
		return "", false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fmtSinks[fn.Name()] && receiverNamed(fn) == nil {
		return "fmt." + fn.Name(), true
	}
	recv := receiverNamed(fn)
	if recv == nil || recv.Obj().Pkg() == nil {
		return "", false
	}
	pkg := relPath(pass.Module, recv.Obj().Pkg().Path())
	if moduleSinks[sinkKey{pkg, recv.Obj().Name(), fn.Name()}] {
		return recv.Obj().Name() + "." + fn.Name(), true
	}
	return "", false
}

// rangeVars returns the non-blank key/value variables a range binds.
func rangeVars(info *types.Info, rs *ast.RangeStmt) []*types.Var {
	var vars []*types.Var
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok {
			vars = append(vars, v)
		}
	}
	return vars
}

// lvaluePath renders an assignable expression as a canonical dotted path
// ("out", "rep.Components"), or "" for non-canonical targets — index
// expressions, dereferences, calls — which rule 3 exempts.
func lvaluePath(info *types.Info, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if _, ok := obj.(*types.Var); ok {
			return e.Name
		}
	case *ast.SelectorExpr:
		if base := lvaluePath(info, e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	case *ast.ParenExpr:
		return lvaluePath(info, e.X)
	}
	return ""
}

// exprTainted reports whether e mentions a tainted variable (outside nested
// function literals).
func exprTainted(info *types.Info, e ast.Expr, in factSet) bool {
	tainted := false
	ast.Inspect(e, func(n ast.Node) bool {
		if tainted {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && in[varTaint{v}] {
				tainted = true
			}
		}
		return true
	})
	return tainted
}

// pathTainted reports whether e is a canonical path carrying slice taint.
func pathTainted(info *types.Info, e ast.Expr, in factSet) bool {
	path := lvaluePath(info, e)
	if path == "" {
		return false
	}
	for f := range in {
		if st, ok := f.(sliceTaint); ok && st.path == path {
			return true
		}
	}
	return false
}

// killSlicePath removes all slice-taint facts for path (clone-on-write).
func killSlicePath(in factSet, path string) factSet {
	out := in
	copied := false
	for f := range in {
		if st, ok := f.(sliceTaint); ok && st.path == path {
			if !copied {
				out = in.clone()
				copied = true
			}
			delete(out, f)
		}
	}
	return out
}

// isSortCall reports whether call is a sort.* or slices.Sort* invocation.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}

func checkMapRange(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	g := buildCFG(body, info)

	// Rules 1 and 2: structural checks per map range. Function literals are
	// skipped — funcBodies analyzes each as its own function.
	reported := make(map[token.Pos]bool)
	inspectShallowStmts(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapRange(info, rs) {
			return true
		}
		ri := g.ranges[rs]
		vars := rangeVars(info, rs)
		if ri != nil && !ri.backEdge && len(vars) > 0 && usesAny(info, rs.Body, vars) {
			if !reported[rs.For] {
				reported[rs.For] = true
				pass.Report(rs.For,
					"map range executes its body at most once, consuming an arbitrary element of a randomized iteration order; pick deterministically (e.g. the smallest key) or annotate //pcsi:allow maporder")
			}
		}
		inspectShallowStmts(rs.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := isOrderSink(pass, call); ok && !reported[call.Pos()] {
				reported[call.Pos()] = true
				pass.Report(call.Pos(),
					"%s inside a map range emits effects in randomized map-iteration order; iterate a sorted key slice instead, or annotate //pcsi:allow maporder", name)
			}
			return true
		})
		return true
	})

	// Rule 3: dataflow — unsorted map-derived accumulation reaching a return.
	tf := func(n ast.Node, in factSet) factSet {
		out := in
		// Sorting a path discharges its taint wherever the call appears.
		inspectShallow(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok || !isSortCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(a ast.Node) bool {
					if e, ok := a.(ast.Expr); ok {
						if path := lvaluePath(info, e); path != "" {
							out = killSlicePath(out, path)
						}
					}
					return true
				})
			}
			return true
		})
		switch n := n.(type) {
		case *ast.RangeStmt:
			// Header: ranging a map — or an already-tainted slice — taints
			// the key/value bindings.
			if isMapRange(info, n) || exprTainted(info, n.X, out) || pathTainted(info, n.X, out) {
				for _, v := range rangeVars(info, n) {
					out = out.clone()
					out[varTaint{v}] = true
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				break
			}
			for i, lhs := range n.Lhs {
				rhs := n.Rhs[i]
				path := lvaluePath(info, lhs)
				tainted := exprTainted(info, rhs, out) || pathTainted(info, rhs, out)
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isAppendCall(info, call) {
					if path == "" {
						continue // keyed/indexed store: exempt
					}
					if tainted {
						if !hasSlicePath(out, path) {
							out = out.clone()
							out[sliceTaint{path: path, pos: call.Pos()}] = true
						}
					}
					continue // untainted append leaves existing taint as is
				}
				if path != "" && !tainted {
					out = killSlicePath(out, path)
				}
				if id, ok := lhs.(*ast.Ident); ok {
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if v, ok := obj.(*types.Var); ok {
						out = out.clone()
						if tainted {
							out[varTaint{v}] = true
						} else {
							delete(out, varTaint{v})
						}
						// A tainted slice flowing into a fresh name stays
						// tainted under the new path.
						if pathTainted(info, rhs, out) && path != "" && !hasSlicePath(out, path) {
							out[sliceTaint{path: path, pos: rhs.Pos()}] = true
						}
					}
				}
			}
		}
		return out
	}

	in := forwardDataflow(g, tf)
	leaks := make(map[sliceTaint]bool)
	firstRet := make(map[sliceTaint]*ast.ReturnStmt)
	collect := func(facts factSet, ret *ast.ReturnStmt) {
		for f := range facts {
			if st, ok := f.(sliceTaint); ok {
				leaks[st] = true
				if ret != nil && firstRet[st] == nil {
					firstRet[st] = ret
				}
			}
		}
	}
	replay(g, in, tf, func(n ast.Node, before factSet) {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			collect(before, ret)
		}
	})
	if final := finalFacts(g, in, tf); final != nil {
		collect(final, nil)
	}

	var sorted []sliceTaint
	for st := range leaks {
		sorted = append(sorted, st)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].pos != sorted[j].pos {
			return sorted[i].pos < sorted[j].pos
		}
		return sorted[i].path < sorted[j].path
	})
	// Report each accumulation once, at its first append, keeping only the
	// earliest fact per path.
	seenPath := make(map[string]bool)
	for _, st := range sorted {
		if seenPath[st.path] {
			continue
		}
		seenPath[st.path] = true
		pass.ReportWithFix(st.pos, sortBeforeReturnFix(pass, st, firstRet[st]),
			"%s accumulates values from a map range (iteration order is randomized per run) and reaches a return unsorted; sort it before use (append-then-sort) or annotate //pcsi:allow maporder", st.path)
	}
}

// sortBeforeReturnFix builds the append-then-sort fix for a rule-3 leak:
// when the first leaking return returns the accumulated slice directly
// and its element type is string or int, insert the matching sort call
// on the line above the return. Other shapes have no mechanical rewrite.
func sortBeforeReturnFix(pass *Pass, st sliceTaint, ret *ast.ReturnStmt) []SuggestedFix {
	if ret == nil || strings.Contains(st.path, ".") {
		return nil
	}
	info := pass.Pkg.Info
	var v *types.Var
	for _, res := range ret.Results {
		if id, ok := ast.Unparen(res).(*ast.Ident); ok && id.Name == st.path {
			v, _ = info.Uses[id].(*types.Var)
			break
		}
	}
	if v == nil {
		return nil
	}
	slice, ok := v.Type().Underlying().(*types.Slice)
	if !ok {
		return nil
	}
	basic, ok := slice.Elem().Underlying().(*types.Basic)
	if !ok {
		return nil
	}
	var sortFn string
	switch basic.Kind() {
	case types.String:
		sortFn = "sort.Strings"
	case types.Int:
		sortFn = "sort.Ints"
	default:
		return nil
	}
	p := pass.Fset.Position(ret.Pos())
	lineStart := pass.Fset.Position(pass.Fset.File(ret.Pos()).LineStart(p.Line)).Offset
	edits := []TextEdit{{
		File: p.Filename, Start: lineStart, End: lineStart,
		NewText: sortFn + "(" + st.path + ")\n",
	}}
	if f := fileContaining(pass.Pkg, pass.Fset, ret.Pos()); f != nil {
		if imp := importEdit(pass.Fset, f, "sort"); imp != nil {
			edits = append(edits, *imp)
		}
	}
	return []SuggestedFix{{
		Message: "insert " + sortFn + " before the return so the order is deterministic",
		Edits:   edits,
	}}
}

// hasSlicePath reports whether facts already track path.
func hasSlicePath(in factSet, path string) bool {
	for f := range in {
		if st, ok := f.(sliceTaint); ok && st.path == path {
			return true
		}
	}
	return false
}

// isAppendCall reports whether call is the append builtin.
func isAppendCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	bi, ok := info.Uses[id].(*types.Builtin)
	return ok && bi.Name() == "append"
}

// usesAny reports whether body mentions any of vars outside nested function
// literals.
func usesAny(info *types.Info, body ast.Node, vars []*types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			obj := info.Uses[id]
			for _, v := range vars {
				if obj == v {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// inspectShallowStmts walks a statement subtree skipping nested function
// literal bodies (they execute later, under their own analysis).
func inspectShallowStmts(root ast.Node, f func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return f(n)
	})
}

package analysis

import (
	"go/ast"
	"testing"
)

// assigned is the toy fact used by these tests: variable name has been
// assigned on some path.
type assigned struct{ name string }

// assignTransfer gens assigned{x} for every `x = ...` / `x := ...` node.
func assignTransfer(n ast.Node, in factSet) factSet {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return in
	}
	out := in.clone()
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			out[assigned{id.Name}] = true
		}
	}
	return out
}

// TestForwardDataflowJoin asserts the may-analysis union: a fact generated
// on one branch of an if holds after the join.
func TestForwardDataflowJoin(t *testing.T) {
	src := `package x
func f(c bool) {
	var a, b int
	if c {
		a = 1
	} else {
		b = 2
	}
	return
}`
	body, info := typedFunc(t, src, "f")
	g := buildCFG(body, info)
	in := forwardDataflow(g, assignTransfer)

	var atReturn factSet
	replay(g, in, assignTransfer, func(n ast.Node, before factSet) {
		if _, ok := n.(*ast.ReturnStmt); ok {
			atReturn = before.clone()
		}
	})
	if atReturn == nil {
		t.Fatal("replay never visited the return")
	}
	for _, name := range []string{"a", "b"} {
		if !atReturn[assigned{name}] {
			t.Errorf("fact assigned{%s} missing after join", name)
		}
	}
}

// TestForwardDataflowLoop asserts facts generated inside a loop body flow
// around the back edge to the loop header and past the loop.
func TestForwardDataflowLoop(t *testing.T) {
	src := `package x
func f(n int) {
	x := 0
	for i := 0; i < n; i++ {
		x = i
	}
	_ = x
}`
	body, info := typedFunc(t, src, "f")
	g := buildCFG(body, info)
	in := forwardDataflow(g, assignTransfer)
	final := finalFacts(g, in, assignTransfer)
	if final == nil {
		t.Fatal("control must reach the end of f")
	}
	for _, name := range []string{"x", "i"} {
		if !final[assigned{name}] {
			t.Errorf("fact assigned{%s} missing at function end", name)
		}
	}
}

// TestFinalFactsUnreachable asserts finalFacts reports nil when every path
// returns before the closing brace.
func TestFinalFactsUnreachable(t *testing.T) {
	src := `package x
func f() int {
	x := 1
	return x
}`
	body, info := typedFunc(t, src, "f")
	g := buildCFG(body, info)
	in := forwardDataflow(g, assignTransfer)
	if final := finalFacts(g, in, assignTransfer); final != nil {
		t.Errorf("finalFacts = %v, want nil for always-returning body", final)
	}
}

// TestReplaySkipsDeadBlocks asserts replay never visits unreachable nodes,
// so analyzers cannot report on dead code.
func TestReplaySkipsDeadBlocks(t *testing.T) {
	src := `package x
func f() int {
	return 1
	x := 2
	return x
}`
	body, info := typedFunc(t, src, "f")
	g := buildCFG(body, info)
	in := forwardDataflow(g, assignTransfer)
	replay(g, in, assignTransfer, func(n ast.Node, _ factSet) {
		if as, ok := n.(*ast.AssignStmt); ok {
			t.Errorf("replay visited dead assignment %v", as.Lhs)
		}
	})
}

// Package analysis is a stdlib-only static-analysis framework (go/parser +
// go/types, no golang.org/x/tools) that enforces this repository's design
// invariants from DESIGN.md §5: deterministic virtual time, seeded
// randomness, the substrate→state→compute→core layering, and
// capability-checked object mutation. The cmd/pcsi-vet CLI runs it over any
// package pattern, and a self-enforcement test keeps the repo itself clean.
//
// Legitimate exceptions are annotated in the source with a directive:
//
//	//pcsi:allow <check> [reason...]
//
// where <check> is one of the analyzer directive names (wallclock,
// globalrand, layering, rawmutation). A directive suppresses its check on
// the same line and the following line; a directive in the doc comment of a
// top-level declaration covers the whole declaration.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos     token.Position
	Check   string // analyzer name
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Check, d.Message)
}

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only selections.
	Name string
	// Directive is the //pcsi:allow keyword that suppresses this analyzer.
	Directive string
	// Doc is a one-line description.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// All returns the repo's analyzers.
func All() []*Analyzer {
	return []*Analyzer{SimTime, DetRand, Layering, CapDiscipline}
}

// Pass carries one analyzer's visit of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Module   string // module path of the analyzed tree
	Pkg      *Package

	allows map[string][]lineRange // directive keyword -> suppressed ranges per file:line
	diags  *[]Diagnostic
}

type lineRange struct {
	file       string
	start, end int
}

// RelPath returns the package path relative to the module ("internal/sim"),
// or "." for the module root. External test packages keep their "_test"
// suffix.
func (p *Pass) RelPath() string {
	return relPath(p.Module, p.Pkg.Path)
}

func relPath(module, path string) string {
	if path == module {
		return "."
	}
	if rest, ok := strings.CutPrefix(path, module+"/"); ok {
		return rest
	}
	return path
}

// Report records a diagnostic unless a //pcsi:allow directive covers it.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	for _, r := range p.allows[p.Analyzer.Directive] {
		if r.file == position.Filename && position.Line >= r.start && position.Line <= r.end {
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// directiveKeywords are the recognized //pcsi:allow arguments.
func directiveKeywords() map[string]bool {
	m := make(map[string]bool)
	for _, a := range All() {
		m[a.Directive] = true
	}
	return m
}

// collectAllows scans a package's comments for //pcsi:allow directives and
// returns the suppressed line ranges per keyword. Unknown keywords are
// reported as diagnostics so typos cannot silently disable a check.
func collectAllows(fset *token.FileSet, pkg *Package, diags *[]Diagnostic) map[string][]lineRange {
	known := directiveKeywords()
	allows := make(map[string][]lineRange)
	for _, f := range pkg.Files {
		// Doc-comment directives cover their whole declaration.
		declRange := make(map[*ast.Comment]lineRange)
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc == nil {
				continue
			}
			for _, c := range doc.List {
				declRange[c] = lineRange{
					file:  fset.Position(decl.Pos()).Filename,
					start: fset.Position(decl.Pos()).Line,
					end:   fset.Position(decl.End()).Line,
				}
			}
		}
		// A directive on or above a multi-line statement covers all of it:
		// map each starting line to the last line of the widest node
		// beginning there, so annotating e.g. a call taking a closure
		// covers the closure body too.
		lastLine := make(map[int]int)
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			start := fset.Position(n.Pos()).Line
			if end := fset.Position(n.End()).Line; end > lastLine[start] {
				lastLine[start] = end
			}
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//pcsi:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					*diags = append(*diags, Diagnostic{
						Pos:     fset.Position(c.Pos()),
						Check:   "directive",
						Message: "//pcsi:allow needs a check name (wallclock, globalrand, layering, rawmutation)",
					})
					continue
				}
				keyword := fields[0]
				if !known[keyword] {
					*diags = append(*diags, Diagnostic{
						Pos:     fset.Position(c.Pos()),
						Check:   "directive",
						Message: fmt.Sprintf("unknown //pcsi:allow check %q", keyword),
					})
					continue
				}
				r, ok := declRange[c]
				if !ok {
					pos := fset.Position(c.Pos())
					// A trailing directive covers the statement it sits on;
					// a standalone one covers the statement below it.
					end := pos.Line + 1
					if e := lastLine[pos.Line]; e > end {
						end = e
					}
					if e := lastLine[pos.Line+1]; e > end {
						end = e
					}
					r = lineRange{file: pos.Filename, start: pos.Line, end: end}
				}
				allows[keyword] = append(allows[keyword], r)
			}
		}
	}
	return allows
}

// Run applies the analyzers to every package and returns the combined
// diagnostics sorted by position. Type errors in the analyzed packages are
// reported as "typecheck" diagnostics: the invariants cannot be trusted on
// code that does not compile.
func Run(l *Loader, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, err := range pkg.TypeErrors {
			msg := err.Error()
			pos := token.Position{Filename: pkg.Dir}
			if te, ok := err.(types.Error); ok {
				pos = l.Fset.Position(te.Pos)
				msg = te.Msg
			}
			diags = append(diags, Diagnostic{Pos: pos, Check: "typecheck", Message: msg})
		}
		allows := collectAllows(l.Fset, pkg, &diags)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     l.Fset,
				Module:   l.Module,
				Pkg:      pkg,
				allows:   allows,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags
}

// Package analysis is a stdlib-only static-analysis framework (go/parser +
// go/types, no golang.org/x/tools) that enforces this repository's design
// invariants from DESIGN.md §5: deterministic virtual time, seeded
// randomness, the substrate→state→compute→core layering, and
// capability-checked object mutation. On top of the shallow AST walks, an
// intraprocedural CFG builder (cfg.go) and a forward-dataflow framework
// (dataflow.go) power the path- and flow-sensitive checks: maprange
// (randomized map-iteration order reaching order-sensitive sinks), obsrand
// (observer random streams confined to the observer domain), errclass
// (retry-boundary errors must carry a classification), and spanbalance
// (every trace span closed on every return and panic path). The
// cmd/pcsi-vet CLI runs it over any package pattern, and a
// self-enforcement test keeps the repo itself clean.
//
// Legitimate exceptions are annotated in the source with a directive:
//
//	//pcsi:allow <check> [reason...]
//
// where <check> is one of the analyzer directive names (wallclock,
// globalrand, layering, rawmutation, maporder, obsrand, errclass,
// spanleak, hotpath, goroleak, lockorder, capescape, wrapclass,
// simblock). A directive suppresses its
// check on the same line and the
// following line; a directive in the doc comment of a top-level declaration
// covers the whole declaration. A directive whose analyzer runs without
// suppressing anything is itself reported, so stale suppressions cannot
// accumulate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one finding, positioned in the analyzed source. Fixes, if
// any, are machine-applicable edits that resolve the finding; pcsi-vet
// -fix applies them (fix.go).
type Diagnostic struct {
	Pos     token.Position
	Check   string // analyzer name
	Message string
	Fixes   []SuggestedFix
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Check, d.Message)
}

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only selections.
	Name string
	// Directive is the //pcsi:allow keyword that suppresses this analyzer.
	Directive string
	// Doc is a one-line description.
	Doc string
	// Kind classifies the machinery behind the check: "syntactic" (shallow
	// AST walks), "dataflow" (CFG + gen/kill facts within one function), or
	// "interprocedural" (call graph / taint summaries across the module).
	Kind string
	// Prepare, if set, runs once before the per-package passes fan out,
	// with a pass carrying no package. It builds whole-program indexes
	// (the call graph, the classifier index) into the shared Cache and may
	// trigger lazy package loads; because the per-package passes then run
	// in parallel, ALL Cache writes and Loader loads must happen here.
	// Prepare must not report diagnostics.
	Prepare func(*Pass)
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// All returns the repo's analyzers.
func All() []*Analyzer {
	return []*Analyzer{
		SimTime, DetRand, Layering, CapDiscipline,
		MapRange, ObsRand, ErrClass, SpanBalance,
		HotPath, GoroLeak, LockOrder,
		CapEscape, WrapClass, SimBlock,
	}
}

// Pass carries one analyzer's visit of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Module   string // module path of the analyzed tree
	Pkg      *Package
	// Loader gives whole-program analyzers (errclass) access to every
	// fully loaded module package, not just the one under the pass.
	Loader *Loader
	// Cache is shared across all passes of one Run, for indexes that are
	// expensive to build and package-independent.
	Cache map[string]any

	allows map[string][]*allowRange // directive keyword -> suppressed ranges
	diags  *[]Diagnostic
}

// allowRange is the source span one //pcsi:allow directive suppresses. used
// flips when a diagnostic is actually suppressed, so Run can report stale
// directives that no longer cover anything.
type allowRange struct {
	file       string
	start, end int
	pos        token.Position // the directive comment itself
	used       bool
}

// RelPath returns the package path relative to the module ("internal/sim"),
// or "." for the module root. External test packages keep their "_test"
// suffix.
func (p *Pass) RelPath() string {
	return relPath(p.Module, p.Pkg.Path)
}

func relPath(module, path string) string {
	if path == module {
		return "."
	}
	if rest, ok := strings.CutPrefix(path, module+"/"); ok {
		return rest
	}
	return path
}

// Report records a diagnostic unless a //pcsi:allow directive covers it.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.ReportWithFix(pos, nil, format, args...)
}

// ReportWithFix records a diagnostic carrying suggested fixes, unless a
// //pcsi:allow directive covers it.
func (p *Pass) ReportWithFix(pos token.Pos, fixes []SuggestedFix, format string, args ...any) {
	position := p.Fset.Position(pos)
	for _, r := range p.allows[p.Analyzer.Directive] {
		if r.file == position.Filename && position.Line >= r.start && position.Line <= r.end {
			r.used = true
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
		Fixes:   fixes,
	})
}

// calleeFunc resolves the function or method a call invokes, or nil for
// calls through function values, conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isModuleMethod reports whether fn is the method recv.name declared in the
// analyzed module's package relPkg ("internal/trace").
func isModuleMethod(pass *Pass, fn *types.Func, relPkg, recv, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	named := receiverNamed(fn)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pass.Module+"/"+relPkg && named.Obj().Name() == recv
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && receiverNamed(fn) == nil
}

// directiveKeywords are the recognized //pcsi:allow arguments.
func directiveKeywords() map[string]bool {
	m := make(map[string]bool)
	for _, a := range All() {
		m[a.Directive] = true
	}
	return m
}

// collectAllows scans a package's comments for //pcsi:allow directives and
// returns the suppressed line ranges per keyword. Unknown keywords are
// reported as diagnostics so typos cannot silently disable a check.
func collectAllows(fset *token.FileSet, pkg *Package, diags *[]Diagnostic) map[string][]*allowRange {
	known := directiveKeywords()
	keywords := make([]string, 0, len(known))
	for k := range known {
		keywords = append(keywords, k)
	}
	sort.Strings(keywords)
	allows := make(map[string][]*allowRange)
	for _, f := range pkg.Files {
		// Doc-comment directives cover their whole declaration.
		declRange := make(map[*ast.Comment]*allowRange)
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc == nil {
				continue
			}
			for _, c := range doc.List {
				declRange[c] = &allowRange{
					file:  fset.Position(decl.Pos()).Filename,
					start: fset.Position(decl.Pos()).Line,
					end:   fset.Position(decl.End()).Line,
				}
			}
		}
		// A directive on or above a multi-line statement covers all of it:
		// map each starting line to the last line of the widest node
		// beginning there, so annotating e.g. a call taking a closure
		// covers the closure body too.
		lastLine := make(map[int]int)
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			start := fset.Position(n.Pos()).Line
			if end := fset.Position(n.End()).Line; end > lastLine[start] {
				lastLine[start] = end
			}
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//pcsi:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					*diags = append(*diags, Diagnostic{
						Pos:     fset.Position(c.Pos()),
						Check:   "directive",
						Message: fmt.Sprintf("//pcsi:allow needs a check name (%s)", strings.Join(keywords, ", ")),
					})
					continue
				}
				keyword := fields[0]
				if !known[keyword] {
					*diags = append(*diags, Diagnostic{
						Pos:     fset.Position(c.Pos()),
						Check:   "directive",
						Message: fmt.Sprintf("unknown //pcsi:allow check %q", keyword),
					})
					continue
				}
				r, ok := declRange[c]
				if !ok {
					pos := fset.Position(c.Pos())
					// A trailing directive covers the statement it sits on;
					// a standalone one covers the statement below it.
					end := pos.Line + 1
					if e := lastLine[pos.Line]; e > end {
						end = e
					}
					if e := lastLine[pos.Line+1]; e > end {
						end = e
					}
					r = &allowRange{file: pos.Filename, start: pos.Line, end: end}
				}
				r.pos = fset.Position(c.Pos())
				allows[keyword] = append(allows[keyword], r)
			}
		}
	}
	return allows
}

// Run applies the analyzers to every package and returns the combined
// diagnostics sorted by position. Type errors in the analyzed packages are
// reported as "typecheck" diagnostics: the invariants cannot be trusted on
// code that does not compile. After the analyzers finish, //pcsi:allow
// directives whose analyzer ran but which suppressed nothing are reported
// as "directive" diagnostics, so suppressions cannot rot in place.
//
// Execution is two-phase: first every analyzer's Prepare hook runs
// serially, building whole-program indexes into the shared cache (and
// performing any lazy package loads); then the per-package passes run in
// parallel, one goroutine per package, touching only immutable shared
// state. Each package's diagnostics collect into a private slice; the
// slices merge in package order and the result is globally sorted, so the
// output is byte-identical to a serial run.
func Run(l *Loader, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	cache := make(map[string]any)
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Directive] = true
		if a.Prepare != nil {
			a.Prepare(&Pass{
				Analyzer: a,
				Fset:     l.Fset,
				Module:   l.Module,
				Loader:   l,
				Cache:    cache,
			})
		}
	}
	perPkg := make([][]Diagnostic, len(pkgs))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			perPkg[i] = runPackage(l, pkg, analyzers, cache, ran)
		}(i, pkg)
	}
	wg.Wait()
	var diags []Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags
}

// runPackage runs every analyzer over one package and returns its
// diagnostics. It is the parallel unit of Run: everything it touches
// outside its own slice is read-only by the prepare-phase contract.
func runPackage(l *Loader, pkg *Package, analyzers []*Analyzer, cache map[string]any, ran map[string]bool) []Diagnostic {
	var diags []Diagnostic
	for _, err := range pkg.TypeErrors {
		msg := err.Error()
		pos := token.Position{Filename: pkg.Dir}
		if te, ok := err.(types.Error); ok {
			pos = l.Fset.Position(te.Pos)
			msg = te.Msg
		}
		diags = append(diags, Diagnostic{Pos: pos, Check: "typecheck", Message: msg})
	}
	allows := collectAllows(l.Fset, pkg, &diags)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     l.Fset,
			Module:   l.Module,
			Pkg:      pkg,
			Loader:   l,
			Cache:    cache,
			allows:   allows,
			diags:    &diags,
		}
		a.Run(pass)
	}
	// Stale suppressions: only judged for analyzers that actually ran,
	// so a -only subset never flags directives it could not exercise.
	keywords := make([]string, 0, len(allows))
	for k := range allows {
		keywords = append(keywords, k)
	}
	sort.Strings(keywords)
	for _, k := range keywords {
		if !ran[k] {
			continue
		}
		for _, r := range allows[k] {
			if !r.used {
				diags = append(diags, Diagnostic{
					Pos:     r.pos,
					Check:   "directive",
					Message: fmt.Sprintf("unused //pcsi:allow %s: no %s finding is suppressed by this directive; delete it", k, k),
				})
			}
		}
	}
	return diags
}

package analysis

// taint.go is a whole-module, summary-based interprocedural taint/escape
// engine over the call graph of callgraph.go. Where the CFG + dataflow
// framework answers "which facts hold on which paths inside one body", the
// taint engine answers "which VALUES can flow from where to where across
// function boundaries": per-function summaries record, for every result,
// the set of taint origins that may reach it and the set of parameters
// that pass through to it, and the summaries are solved bottom-up over the
// strongly connected components of the call graph (Tarjan's algorithm —
// callees converge before their callers are visited, so acyclic regions
// settle in one sweep and only recursive SCCs and the global side tables
// need the outer fixpoint).
//
// The abstract domain is deliberately small and monotone:
//
//	flow = (origins ⊆ Origin, params ⊆ Param)
//
// where an origin is a source position a spec marked as minting taint (an
// errors.New call, a raw object.Object composite literal, ...) and a param
// is a *types.Var of some function's parameter: "whatever the caller
// passes here flows onward". Propagation is flow-insensitive within a
// function — assignments, returns, composite literals, channel sends, and
// struct-field stores all merge — which over-approximates paths but keeps
// the whole-module solve cheap and deterministic. Three global side tables
// carry taint across functions that never call each other:
//
//	vars    — locals and named results, keyed by *types.Var. The table is
//	          module-global, so a closure reading a variable captured from
//	          its enclosing function resolves it for free.
//	globals — package-level vars, seeded from their initializer
//	          expressions and updated by assignments anywhere.
//	fields  — struct fields, keyed by the field's *types.Var: a store
//	          x.F = v taints F's identity; every read of .F observes it.
//	          Struct composite literals bind field values the same way,
//	          but only EXPORTED field values join the composite's own
//	          flow — a client holding the struct cannot reach unexported
//	          fields, and neither can the escape analysis through it.
//
// A taintSpec parameterizes the engine: what mints an origin, which calls
// are handled specially (fmt.Errorf("%w", ...) forwards its wrapped
// error; fault.Fatal launders classification), and how package-var reads
// are filtered. capescape and wrapclass are two specs over one engine;
// simblock needs no value flow and uses the call graph directly.
//
// Everything is deterministic: nodes are visited in SCC order derived
// from the position-sorted graph, merges are monotone over finite sets,
// and all reporting done by the analyzers sorts findings by position.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// origin is one taint source: a spec-marked expression at a fixed position.
// It is comparable, so origin sets are plain maps.
type origin struct {
	pkg  *Package  // package whose source mints the taint
	pos  token.Pos // the minting expression
	kind string    // spec tag: "errors.New", "fmt.Errorf", "handle", ...
	what string    // short human description for diagnostics
}

// flow is the engine's abstract value: the origins that may reach a value
// and the parameters whose caller-side arguments pass through to it.
type flow struct {
	origins map[origin]bool
	params  map[*types.Var]bool
}

func (f *flow) isEmpty() bool { return len(f.origins) == 0 && len(f.params) == 0 }

// addOrigin inserts o, reporting growth.
func (f *flow) addOrigin(o origin) bool {
	if f.origins[o] {
		return false
	}
	if f.origins == nil {
		f.origins = make(map[origin]bool)
	}
	f.origins[o] = true
	return true
}

// addParam inserts v, reporting growth.
func (f *flow) addParam(v *types.Var) bool {
	if f.params[v] {
		return false
	}
	if f.params == nil {
		f.params = make(map[*types.Var]bool)
	}
	f.params[v] = true
	return true
}

// merge unions src into f, reporting growth.
func (f *flow) merge(src flow) bool {
	grew := false
	for o := range src.origins {
		if f.addOrigin(o) {
			grew = true
		}
	}
	for v := range src.params {
		if f.addParam(v) {
			grew = true
		}
	}
	return grew
}

// sortedOrigins returns f's origins ordered by (package path, position).
func (f *flow) sortedOrigins() []origin {
	out := make([]origin, 0, len(f.origins))
	for o := range f.origins {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pkg.Path != out[j].pkg.Path {
			return out[i].pkg.Path < out[j].pkg.Path
		}
		if out[i].pos != out[j].pos {
			return out[i].pos < out[j].pos
		}
		return out[i].kind < out[j].kind
	})
	return out
}

// taintSummary is one function's interprocedural summary: a flow per
// result. Channel, global, and field effects live in the shared side
// tables rather than the summary, so callers need only map results.
type taintSummary struct {
	results []*flow
}

// taintCtx names the function (nil for package-level initializers) and
// package an expression is evaluated in.
type taintCtx struct {
	node *funcNode
	pkg  *Package
}

// taintSpec parameterizes the engine for one analyzer.
type taintSpec struct {
	// key namespaces the engine in Pass.Cache ("taint.<key>").
	key string
	// callFlow, if set, may fully handle a call's result flow (taint
	// constructors, laundering wrappers, forwarding wrappers). Returning
	// handled=false falls back to callee-summary resolution.
	callFlow func(eng *taintEngine, ctx taintCtx, call *ast.CallExpr) (flow, bool)
	// exprOrigins, if set, returns origins minted directly by a non-call
	// expression (typically composite literals).
	exprOrigins func(eng *taintEngine, ctx taintCtx, e ast.Expr) []origin
	// globalFilter, if set, filters the flow observed when reading a
	// package-level var (wrapclass drops classified sentinels here).
	globalFilter func(eng *taintEngine, v *types.Var, f flow) flow
}

// taintEngine solves one spec's flows over the whole module.
type taintEngine struct {
	module string
	fset   *token.FileSet
	loader *Loader
	g      *callGraph
	spec   *taintSpec

	order     []*funcNode                // bottom-up SCC order
	params    map[*funcNode][]*types.Var // receiver-first parameter objects
	paramHome map[*types.Var]*funcNode
	paramIdx  map[*types.Var]int
	variadic  map[*funcNode]bool
	siteEdges map[*funcNode]map[token.Pos][]callEdge

	sums    map[*funcNode]*taintSummary
	vars    map[*types.Var]*flow // locals + named results, module-global
	globals map[*types.Var]*flow // package-level vars
	fields  map[*types.Var]*flow // struct fields by field object

	changed bool
}

// buildTaintEngine constructs (once per Run, via the shared cache) a solved
// engine for spec. It must be called from an analyzer's Prepare hook: it
// builds the call graph and may trigger lazy loads.
func buildTaintEngine(pass *Pass, spec *taintSpec) *taintEngine {
	key := "taint." + spec.key
	if eng, ok := pass.Cache[key].(*taintEngine); ok {
		return eng
	}
	eng := &taintEngine{
		module:    pass.Module,
		fset:      pass.Fset,
		loader:    pass.Loader,
		g:         buildCallGraph(pass),
		spec:      spec,
		params:    make(map[*funcNode][]*types.Var),
		paramHome: make(map[*types.Var]*funcNode),
		paramIdx:  make(map[*types.Var]int),
		variadic:  make(map[*funcNode]bool),
		siteEdges: make(map[*funcNode]map[token.Pos][]callEdge),
		sums:      make(map[*funcNode]*taintSummary),
		vars:      make(map[*types.Var]*flow),
		globals:   make(map[*types.Var]*flow),
		fields:    make(map[*types.Var]*flow),
	}
	eng.index()
	eng.order = eng.sccOrder()
	eng.seedGlobals()
	eng.solve()
	pass.Cache[key] = eng
	return eng
}

// index records every node's parameter objects, result arity, and per-site
// edge lists.
func (eng *taintEngine) index() {
	for _, n := range eng.g.nodes {
		sig := nodeSignature(n)
		if sig == nil {
			eng.sums[n] = &taintSummary{}
			continue
		}
		var ps []*types.Var
		if recv := sig.Recv(); recv != nil {
			ps = append(ps, recv)
		}
		for i := 0; i < sig.Params().Len(); i++ {
			ps = append(ps, sig.Params().At(i))
		}
		eng.params[n] = ps
		eng.variadic[n] = sig.Variadic()
		for i, v := range ps {
			eng.paramHome[v] = n
			eng.paramIdx[v] = i
		}
		sum := &taintSummary{results: make([]*flow, sig.Results().Len())}
		for i := range sum.results {
			sum.results[i] = &flow{}
		}
		eng.sums[n] = sum

		bySite := make(map[token.Pos][]callEdge, len(n.edges))
		for _, e := range n.edges {
			bySite[e.site] = append(bySite[e.site], e)
		}
		eng.siteEdges[n] = bySite
	}
}

// nodeSignature resolves a node's *types.Signature, or nil when type
// information is missing.
func nodeSignature(n *funcNode) *types.Signature {
	if n.obj != nil {
		sig, _ := n.obj.Type().(*types.Signature)
		return sig
	}
	if n.lit != nil {
		if tv, ok := n.pkg.Info.Types[n.lit]; ok && tv.Type != nil {
			sig, _ := tv.Type.(*types.Signature)
			return sig
		}
	}
	return nil
}

// resultVars returns the (possibly unnamed) result objects of n.
func (eng *taintEngine) resultVars(n *funcNode) []*types.Var {
	sig := nodeSignature(n)
	if sig == nil {
		return nil
	}
	out := make([]*types.Var, sig.Results().Len())
	for i := range out {
		out[i] = sig.Results().At(i)
	}
	return out
}

// sccOrder returns the nodes in bottom-up SCC order: Tarjan's algorithm
// emits each strongly connected component only after every component it
// calls into, so iterating the returned slice visits callees before
// callers. Members within an SCC keep their position order.
func (eng *taintEngine) sccOrder() []*funcNode {
	index := make(map[*funcNode]int)
	low := make(map[*funcNode]int)
	onStack := make(map[*funcNode]bool)
	var stack []*funcNode
	var order []*funcNode
	next := 0

	var strongconnect func(n *funcNode)
	strongconnect = func(n *funcNode) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, e := range n.edges {
			m := e.callee
			if _, seen := index[m]; !seen {
				strongconnect(m)
				if low[m] < low[n] {
					low[n] = low[m]
				}
			} else if onStack[m] && index[m] < low[n] {
				low[n] = index[m]
			}
		}
		if low[n] == index[n] {
			var scc []*funcNode
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			sort.Slice(scc, func(i, j int) bool { return index[scc[i]] < index[scc[j]] })
			order = append(order, scc...)
		}
	}
	for _, n := range eng.g.nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return order
}

// seedGlobals evaluates every package-level var initializer once, so taint
// minted there (an errors.New sentinel, a handle composite) is visible to
// every reader before the first sweep.
func (eng *taintEngine) seedGlobals() {
	for _, pkg := range eng.loader.FullPackages() {
		ctx := taintCtx{pkg: pkg}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Names) != len(vs.Values) {
						continue
					}
					for i, name := range vs.Names {
						v, ok := pkg.Info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						eng.mergeGlobal(v, eng.eval(ctx, vs.Values[i]))
					}
				}
			}
		}
	}
}

// solve sweeps the bottom-up order to a global fixpoint. Acyclic call
// chains settle on the first sweep; recursion, closures capturing outer
// state, and the global/field side tables converge over later sweeps. The
// domain is finite and every merge is monotone, so the cap is a backstop,
// not a correctness device.
func (eng *taintEngine) solve() {
	for sweep := 0; sweep < 32; sweep++ {
		eng.changed = false
		for _, n := range eng.order {
			eng.analyzeNode(n)
		}
		if !eng.changed {
			return
		}
	}
}

// analyzeNode re-derives n's summary and side-table effects from its body.
func (eng *taintEngine) analyzeNode(n *funcNode) {
	ctx := taintCtx{node: n, pkg: n.pkg}
	results := eng.resultVars(n)
	inspectShallowStmts(n.body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			eng.assign(ctx, m.Lhs, m.Rhs)
		case *ast.DeclStmt:
			if gd, ok := m.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
						lhs := make([]ast.Expr, len(vs.Names))
						for i, name := range vs.Names {
							lhs[i] = name
						}
						eng.assign(ctx, lhs, vs.Values)
					}
				}
			}
		case *ast.RangeStmt:
			src := eng.eval(ctx, m.X)
			for _, e := range []ast.Expr{m.Key, m.Value} {
				if e != nil {
					eng.assignTo(ctx, e, src)
				}
			}
		case *ast.SendStmt:
			// A send taints the channel's identity (var or field); the
			// matching receive reads it back in eval.
			eng.assignTo(ctx, m.Chan, eng.eval(ctx, m.Value))
		case *ast.ReturnStmt:
			eng.returnStmt(ctx, m, results)
		case *ast.ExprStmt:
			eng.eval(ctx, m.X) // calls evaluated for their side effects
		case *ast.GoStmt:
			eng.eval(ctx, m.Call)
		case *ast.DeferStmt:
			eng.eval(ctx, m.Call)
		}
		return true
	})
}

// assign handles one assignment statement, spreading multi-result calls.
func (eng *taintEngine) assign(ctx taintCtx, lhs, rhs []ast.Expr) {
	if len(lhs) == len(rhs) {
		for i := range lhs {
			eng.assignTo(ctx, lhs[i], eng.eval(ctx, rhs[i]))
		}
		return
	}
	if len(rhs) != 1 {
		return
	}
	switch r := ast.Unparen(rhs[0]).(type) {
	case *ast.CallExpr:
		flows := eng.callResults(ctx, r)
		for i := range lhs {
			if i < len(flows) {
				eng.assignTo(ctx, lhs[i], flows[i])
			}
		}
	case *ast.TypeAssertExpr:
		eng.assignTo(ctx, lhs[0], eng.eval(ctx, r.X))
	case *ast.IndexExpr:
		eng.assignTo(ctx, lhs[0], eng.eval(ctx, r.X))
	case *ast.UnaryExpr:
		if r.Op == token.ARROW {
			eng.assignTo(ctx, lhs[0], eng.eval(ctx, r.X))
		}
	}
}

// returnStmt merges the returned flows into the node's summary.
func (eng *taintEngine) returnStmt(ctx taintCtx, ret *ast.ReturnStmt, results []*types.Var) {
	sum := eng.sums[ctx.node]
	switch {
	case len(ret.Results) == 0:
		// Bare return: named results carry whatever was assigned to them.
		for i, rv := range results {
			if i < len(sum.results) && rv != nil {
				if f := eng.vars[rv]; f != nil {
					eng.mergeSummary(sum, i, *f)
				}
			}
		}
	case len(ret.Results) == len(sum.results):
		for i, e := range ret.Results {
			eng.mergeSummary(sum, i, eng.eval(ctx, e))
		}
	case len(ret.Results) == 1:
		// return f() spreading a multi-result call.
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			flows := eng.callResults(ctx, call)
			for i := range sum.results {
				if i < len(flows) {
					eng.mergeSummary(sum, i, flows[i])
				}
			}
		}
	}
}

func (eng *taintEngine) mergeSummary(sum *taintSummary, i int, f flow) {
	if i < len(sum.results) && sum.results[i].merge(f) {
		eng.changed = true
	}
}

// assignTo merges f into the abstract location named by lhs.
func (eng *taintEngine) assignTo(ctx taintCtx, lhs ast.Expr, f flow) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := ctx.pkg.Info.Defs[lhs]
		if obj == nil {
			obj = ctx.pkg.Info.Uses[lhs]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		if isPackageLevel(v) {
			eng.mergeGlobal(v, f)
		} else {
			eng.mergeVar(v, f)
		}
	case *ast.SelectorExpr:
		if sel, ok := ctx.pkg.Info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
			if fv, ok := sel.Obj().(*types.Var); ok {
				eng.mergeField(fv, f)
			}
			return
		}
		if v, ok := ctx.pkg.Info.Uses[lhs.Sel].(*types.Var); ok && isPackageLevel(v) {
			eng.mergeGlobal(v, f)
		}
	case *ast.IndexExpr:
		eng.assignTo(ctx, lhs.X, f)
	case *ast.StarExpr:
		eng.assignTo(ctx, lhs.X, f)
	}
}

func (eng *taintEngine) mergeVar(v *types.Var, f flow) {
	dst := eng.vars[v]
	if dst == nil {
		dst = &flow{}
		eng.vars[v] = dst
	}
	if dst.merge(f) {
		eng.changed = true
	}
}

func (eng *taintEngine) mergeGlobal(v *types.Var, f flow) {
	dst := eng.globals[v]
	if dst == nil {
		dst = &flow{}
		eng.globals[v] = dst
	}
	if dst.merge(f) {
		eng.changed = true
	}
}

func (eng *taintEngine) mergeField(v *types.Var, f flow) {
	dst := eng.fields[v]
	if dst == nil {
		dst = &flow{}
		eng.fields[v] = dst
	}
	if dst.merge(f) {
		eng.changed = true
	}
}

// isPackageLevel reports whether v is declared at package scope.
func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// globalFlow reads a package-level var through the spec's filter.
func (eng *taintEngine) globalFlow(v *types.Var) flow {
	var f flow
	if g := eng.globals[v]; g != nil {
		f.merge(*g)
	}
	if eng.spec.globalFilter != nil {
		return eng.spec.globalFilter(eng, v, f)
	}
	return f
}

// eval computes the flow of one expression in ctx. It is re-run every
// sweep; all side effects (field binds inside composite literals) are
// monotone merges.
func (eng *taintEngine) eval(ctx taintCtx, e ast.Expr) flow {
	var out flow
	if e == nil {
		return out
	}
	if eng.spec.exprOrigins != nil {
		for _, o := range eng.spec.exprOrigins(eng, ctx, e) {
			out.addOrigin(o)
		}
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		out.merge(eng.eval(ctx, e.X))
	case *ast.Ident:
		obj := ctx.pkg.Info.Uses[e]
		if obj == nil {
			obj = ctx.pkg.Info.Defs[e]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			break
		}
		switch {
		case eng.paramHome[v] != nil:
			out.addParam(v)
			if f := eng.vars[v]; f != nil {
				out.merge(*f) // reassigned parameters
			}
		case isPackageLevel(v):
			out.merge(eng.globalFlow(v))
		default:
			// Locals, named results, and free variables captured from an
			// enclosing function all resolve through the global table.
			if f := eng.vars[v]; f != nil {
				out.merge(*f)
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := ctx.pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if fv, ok := sel.Obj().(*types.Var); ok {
				if f := eng.fields[fv]; f != nil {
					out.merge(*f)
				}
			}
			break
		}
		if v, ok := ctx.pkg.Info.Uses[e.Sel].(*types.Var); ok && isPackageLevel(v) {
			out.merge(eng.globalFlow(v))
		}
	case *ast.CallExpr:
		flows := eng.callResults(ctx, e)
		if len(flows) == 1 {
			out.merge(flows[0])
		} else {
			for _, f := range flows {
				out.merge(f)
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND || e.Op == token.ARROW {
			out.merge(eng.eval(ctx, e.X))
		}
	case *ast.StarExpr:
		out.merge(eng.eval(ctx, e.X))
	case *ast.TypeAssertExpr:
		out.merge(eng.eval(ctx, e.X))
	case *ast.IndexExpr:
		out.merge(eng.eval(ctx, e.X))
	case *ast.SliceExpr:
		out.merge(eng.eval(ctx, e.X))
	case *ast.CompositeLit:
		out.merge(eng.compositeFlow(ctx, e))
	}
	return out
}

// compositeFlow evaluates a composite literal. Struct literals bind their
// field values into the field table; only exported-field values join the
// literal's own flow, because a client holding the value cannot reach the
// unexported ones. Non-struct composites (slices, arrays, maps) union all
// element flows.
func (eng *taintEngine) compositeFlow(ctx taintCtx, lit *ast.CompositeLit) flow {
	var out flow
	st := structOf(ctx.pkg.Info, lit)
	if st == nil {
		for _, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				out.merge(eng.eval(ctx, kv.Value))
				continue
			}
			out.merge(eng.eval(ctx, el))
		}
		return out
	}
	for i, el := range lit.Elts {
		var fv *types.Var
		val := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			val = kv.Value
			if id, ok := kv.Key.(*ast.Ident); ok {
				fv, _ = ctx.pkg.Info.Uses[id].(*types.Var)
			}
		} else if i < st.NumFields() {
			fv = st.Field(i)
		}
		f := eng.eval(ctx, val)
		if fv != nil {
			eng.mergeField(fv, f)
			if fv.Exported() {
				out.merge(f)
			}
			continue
		}
		out.merge(f)
	}
	return out
}

// structOf returns the struct type a composite literal builds, or nil.
func structOf(info *types.Info, lit *ast.CompositeLit) *types.Struct {
	tv, ok := info.Types[lit]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

// callResults computes the per-result flows of one call: the spec's
// callFlow hook first (constructors and forwarding wrappers), then the
// callee summaries of every edge resolved at this site, with summary
// parameters mapped back to the caller's argument expressions.
func (eng *taintEngine) callResults(ctx taintCtx, call *ast.CallExpr) []flow {
	if eng.spec.callFlow != nil {
		if f, handled := eng.spec.callFlow(eng, ctx, call); handled {
			return []flow{f}
		}
	}
	var edges []callEdge
	if ctx.node != nil {
		edges = eng.siteEdges[ctx.node][call.Pos()]
	}
	if len(edges) == 0 {
		return nil
	}
	var flows []flow
	for _, e := range edges {
		sum := eng.sums[e.callee]
		if sum == nil {
			continue
		}
		for len(flows) < len(sum.results) {
			flows = append(flows, flow{})
		}
		args := eng.argExprs(ctx, call, e.callee)
		for i, rf := range sum.results {
			mapped := eng.mapSummaryFlow(ctx, e.callee, args, *rf)
			flows[i].merge(mapped)
		}
	}
	return flows
}

// argExprs aligns a call's argument expressions with the callee's
// receiver-first parameter list. A nil slot means "unknown argument".
func (eng *taintEngine) argExprs(ctx taintCtx, call *ast.CallExpr, callee *funcNode) []ast.Expr {
	hasRecv := false
	if sig := nodeSignature(callee); sig != nil && sig.Recv() != nil {
		hasRecv = true
	}
	if !hasRecv {
		return call.Args
	}
	args := make([]ast.Expr, 0, len(call.Args)+1)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := ctx.pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			args = append(args, sel.X)
		}
	}
	if len(args) == 0 {
		args = append(args, nil) // method expression or unknown receiver
	}
	return append(args, call.Args...)
}

// mapSummaryFlow translates one callee result flow into the caller's
// context: origins pass through unchanged; parameters of the callee map to
// the argument expressions at the site (the variadic tail unions every
// trailing argument); parameters captured from elsewhere stay symbolic.
func (eng *taintEngine) mapSummaryFlow(ctx taintCtx, callee *funcNode, args []ast.Expr, rf flow) flow {
	var out flow
	for o := range rf.origins {
		out.addOrigin(o)
	}
	nparams := len(eng.params[callee])
	for pv := range rf.params {
		if eng.paramHome[pv] != callee {
			out.addParam(pv) // captured from an enclosing function
			continue
		}
		idx := eng.paramIdx[pv]
		if eng.variadic[callee] && idx == nparams-1 {
			for _, a := range args[min(idx, len(args)):] {
				if a != nil {
					out.merge(eng.eval(ctx, a))
				}
			}
			continue
		}
		if idx < len(args) && args[idx] != nil {
			out.merge(eng.eval(ctx, args[idx]))
		}
	}
	return out
}

// evalPost evaluates an expression against the converged solution, for
// analyzers running sink walks after solve.
func (eng *taintEngine) evalPost(n *funcNode, e ast.Expr) flow {
	return eng.eval(taintCtx{node: n, pkg: n.pkg}, e)
}

// summaryOf returns n's converged summary (never nil).
func (eng *taintEngine) summaryOf(n *funcNode) *taintSummary {
	if s := eng.sums[n]; s != nil {
		return s
	}
	return &taintSummary{}
}

// originSite renders an origin's position as "file.go:17" for messages.
func (eng *taintEngine) originSite(o origin) string {
	pos := eng.fset.Position(o.pos)
	name := pos.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name + ":" + itoa(pos.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// inTestFile reports whether pos sits in a _test.go file — taint minted by
// test-only code never crosses a runtime boundary.
func (eng *taintEngine) inTestFile(pos token.Pos) bool {
	return strings.HasSuffix(eng.fset.Position(pos).Filename, "_test.go")
}

// resolveFuncArg resolves a function-valued argument expression to the
// call-graph nodes it may denote: a literal, a declared function or method
// value, or a local variable assigned one of those anywhere in the
// enclosing function (flow-insensitive, source order).
func (eng *taintEngine) resolveFuncArg(encl *funcNode, e ast.Expr) []*funcNode {
	return resolveFuncExpr(eng.g, encl, e)
}

func resolveFuncExpr(g *callGraph, encl *funcNode, e ast.Expr) []*funcNode {
	info := encl.pkg.Info
	direct := func(e ast.Expr) *funcNode {
		switch e := ast.Unparen(e).(type) {
		case *ast.FuncLit:
			return g.byLit[e]
		case *ast.Ident:
			if fn, ok := info.Uses[e].(*types.Func); ok {
				return g.byObj[fn]
			}
		case *ast.SelectorExpr:
			if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
				return g.byObj[fn]
			}
		}
		return nil
	}
	if n := direct(e); n != nil {
		return []*funcNode{n}
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		v, ok = info.Defs[id].(*types.Var)
		if !ok {
			return nil
		}
	}
	var out []*funcNode
	bind := func(lhs, rhs ast.Expr) {
		lid, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Defs[lid]
		if obj == nil {
			obj = info.Uses[lid]
		}
		if obj != v {
			return
		}
		if n := direct(rhs); n != nil {
			out = append(out, n)
		}
	}
	ast.Inspect(encl.body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			if len(m.Lhs) == len(m.Rhs) {
				for i := range m.Lhs {
					bind(m.Lhs[i], m.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range m.Names {
				if i < len(m.Values) {
					bind(name, m.Values[i])
				}
			}
		}
		return true
	})
	return out
}

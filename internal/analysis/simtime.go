package analysis

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the package time functions that read or wait on the
// machine clock. Durations, formatting, and construction (time.Duration,
// time.Unix, ...) are fine everywhere — only clock access is domain-bound.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// SimTime forbids wall-clock access in simulation-domain code. DESIGN.md §5:
// all cloud-side latencies advance the deterministic sim.Env clock, so a
// stray time.Now silently breaks "same seed ⇒ identical output tables". The
// real-measurement sites (Table 1 rows, loopback servers) opt out with
// //pcsi:allow wallclock.
var SimTime = &Analyzer{
	Name:      "simtime",
	Kind:      "syntactic",
	Directive: "wallclock",
	Doc:       "forbid wall-clock time.Now/Sleep/... outside annotated real-measurement code",
	Run:       runSimTime,
}

func runSimTime(pass *Pass) {
	forEachPkgRef(pass, "time", func(sel *ast.SelectorExpr) {
		if wallClockFuncs[sel.Sel.Name] {
			pass.Report(sel.Pos(),
				"wall-clock time.%s in simulation-domain code; use sim.Env virtual time, or annotate a real measurement with //pcsi:allow wallclock",
				sel.Sel.Name)
		}
	})
}

// forEachPkgRef calls fn for every selector expression whose qualifier
// resolves (via go/types) to an import of pkgPath. Locally shadowed
// identifiers named after the package do not trigger fn.
func forEachPkgRef(pass *Pass, pkgPath string, fn func(*ast.SelectorExpr)) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != pkgPath {
				return true
			}
			fn(sel)
			return true
		})
	}
}

package analysis

// wrapclass is the interprocedural completion of errclass: instead of
// asking "is this sentinel declared with a classification", it asks "can
// an UNCLASSIFIED error value actually reach a retry boundary". Origins
// are minted wherever an unclassified error is born — errors.New calls,
// fmt.Errorf calls that do not %w-forward, composite literals of
// unclassified error types — and the taint engine propagates them through
// returns, assignments, struct fields, channels, and fmt.Errorf("%w")
// chains. The sinks are the function values passed to fault.Policy.Do:
// whatever their error results may carry decides retry behavior, so every
// origin reaching one is a place where chaos mode will misclassify a
// failure. fault.Fatal/Transient/Fatalf/Transientf calls launder their
// result (classified by construction), as does any call whose static
// result type implements fault.Classified; package-level sentinels that
// are classified or listed in a classifier's errors.Is set read as clean.
//
// Findings are reported at the ORIGIN (that is where the fix goes), with
// the boundary they reach named in the message. The suggested fix rewrites
// errors.New → fault.Transient and fmt.Errorf → fault.Transientf (adding
// the fault import); origins with no mechanical rewrite (composite
// literals) get a //pcsi:allow stub as a last resort.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// wrapBoundaryPkgs are the packages whose fault.Policy.Do boundaries this
// check guards — errclass's four plus the transactional file system.
var wrapBoundaryPkgs = stringSet(
	"internal/core", "internal/faas", "internal/taskgraph", "internal/qos",
	"internal/faasfs",
)

var WrapClass = &Analyzer{
	Name:      "wrapclass",
	Kind:      "interprocedural",
	Directive: "wrapclass",
	Doc:       "require every error value reaching a fault.Policy.Do retry boundary to trace to a classified origin",
	Prepare:   prepareWrapClass,
	Run:       runWrapClass,
}

// wrapFinding is one origin→boundary flow, reported by the package owning
// the origin.
type wrapFinding struct {
	pkg   *Package
	pos   token.Pos
	msg   string
	fixes []SuggestedFix
}

func prepareWrapClass(pass *Pass) {
	classified := classifiedIface(pass)
	if classified == nil {
		pass.Cache["wrapclass.findings"] = []wrapFinding(nil)
		return
	}
	idx := buildErrClassIndex(pass)
	st := &wrapState{
		module:     pass.Module,
		classified: classified,
		idx:        idx,
		fixes:      make(map[origin][]SuggestedFix),
	}
	eng := buildTaintEngine(pass, &taintSpec{
		key:          "wrapclass",
		callFlow:     st.callFlow,
		exprOrigins:  st.exprOrigins,
		globalFilter: st.globalFilter,
	})
	pass.Cache["wrapclass.findings"] = collectWrapFindings(eng, st)
}

func runWrapClass(pass *Pass) {
	findings, _ := pass.Cache["wrapclass.findings"].([]wrapFinding)
	for _, f := range findings {
		if f.pkg == pass.Pkg {
			pass.ReportWithFix(f.pos, f.fixes, "%s", f.msg)
		}
	}
}

// wrapState carries the classification tables and the per-origin fixes
// built while minting.
type wrapState struct {
	module     string
	classified *types.Interface
	idx        *errClassIndex
	fixes      map[origin][]SuggestedFix
}

func (st *wrapState) faultPkg() string { return st.module + "/internal/fault" }

// callFlow mints origins at unclassified error constructors, forwards
// fmt.Errorf("%w") chains, and launders fault constructors.
func (st *wrapState) callFlow(eng *taintEngine, ctx taintCtx, call *ast.CallExpr) (flow, bool) {
	fn := calleeFunc(ctx.pkg.Info, call)
	if fn != nil {
		fp := st.faultPkg()
		for _, name := range [...]string{"Fatal", "Transient", "Fatalf", "Transientf"} {
			if isPkgFunc(fn, fp, name) {
				return flow{}, true // classified by construction
			}
		}
		if isPkgFunc(fn, "errors", "New") {
			var out flow
			if st.mintable(eng, ctx, call.Pos()) {
				o := origin{pkg: ctx.pkg, pos: call.Pos(), kind: "errors.New", what: "errors.New"}
				out.addOrigin(o)
				st.rewriteFix(eng, ctx, call, o, "fault.Transient")
			}
			return out, true
		}
		if isPkgFunc(fn, "fmt", "Errorf") {
			if errorfWraps(call) {
				var out flow
				for _, a := range call.Args[1:] {
					out.merge(eng.eval(ctx, a))
				}
				return out, true
			}
			var out flow
			if st.mintable(eng, ctx, call.Pos()) {
				o := origin{pkg: ctx.pkg, pos: call.Pos(), kind: "fmt.Errorf", what: "fmt.Errorf without %w"}
				out.addOrigin(o)
				st.rewriteFix(eng, ctx, call, o, "fault.Transientf")
			}
			return out, true
		}
	}
	// Any call whose static result type implements Classified launders:
	// typed constructors like qos's overload errors classify themselves.
	if tv, ok := ctx.pkg.Info.Types[call]; ok && tv.Type != nil {
		if _, isTuple := tv.Type.(*types.Tuple); !isTuple && implementsEither(tv.Type, st.classified) {
			return flow{}, true
		}
	}
	return flow{}, false
}

// errorfWraps reports whether a fmt.Errorf call's format literal contains
// a %w verb (the chain-preserving form).
func errorfWraps(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return true // non-literal format: assume it forwards
	}
	return strings.Contains(lit.Value, "%w")
}

// exprOrigins mints origins at composite literals of unclassified
// concrete error types.
func (st *wrapState) exprOrigins(eng *taintEngine, ctx taintCtx, e ast.Expr) []origin {
	lit, ok := e.(*ast.CompositeLit)
	if !ok || !st.mintable(eng, ctx, lit.Pos()) {
		return nil
	}
	tv, ok := ctx.pkg.Info.Types[lit]
	if !ok || tv.Type == nil {
		return nil
	}
	errorIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	t := tv.Type
	if !implementsEither(t, errorIface) || implementsEither(t, st.classified) {
		return nil
	}
	if named, ok := t.(*types.Named); ok && st.idx.mentioned[named] {
		return nil
	}
	o := origin{pkg: ctx.pkg, pos: lit.Pos(), kind: "composite", what: types.TypeString(t, nil)}
	if _, ok := st.fixes[o]; !ok {
		st.fixes[o] = []SuggestedFix{allowStubFix(eng.fset, lit.Pos(), "wrapclass", "TODO: classify this error type")}
	}
	return []origin{o}
}

// globalFilter drops flows read from classified package-level sentinels.
func (st *wrapState) globalFilter(eng *taintEngine, v *types.Var, f flow) flow {
	if implementsEither(v.Type(), st.classified) || st.idx.listed[v] {
		return flow{}
	}
	return f
}

// mintable gates origin creation: never in test files, external test
// packages, or the fault package itself.
func (st *wrapState) mintable(eng *taintEngine, ctx taintCtx, pos token.Pos) bool {
	if ctx.pkg.XTest || eng.inTestFile(pos) {
		return false
	}
	return ctx.pkg.Path != st.faultPkg()
}

// rewriteFix records the constructor-rewrite fix for an origin: replace
// the callee expression with the fault equivalent and import fault.
func (st *wrapState) rewriteFix(eng *taintEngine, ctx taintCtx, call *ast.CallExpr, o origin, to string) {
	if _, ok := st.fixes[o]; ok {
		return
	}
	edits := []TextEdit{editReplace(eng.fset, call.Fun.Pos(), call.Fun.End(), to)}
	if f := fileContaining(ctx.pkg, eng.fset, call.Pos()); f != nil {
		if imp := importEdit(eng.fset, f, st.faultPkg()); imp != nil {
			edits = append(edits, *imp)
		}
	}
	st.fixes[o] = []SuggestedFix{{
		Message: fmt.Sprintf("rewrite to %s so the error is classified", to),
		Edits:   edits,
	}}
}

// collectWrapFindings locates every fault.Policy.Do boundary, resolves the
// function values passed to it (through parameters, interprocedurally),
// and turns each origin reaching an error result into one finding.
func collectWrapFindings(eng *taintEngine, st *wrapState) []wrapFinding {
	type boundary struct {
		node *funcNode
		op   string // first op literal seen, for the message
	}
	errorIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	boundaries := make(map[*funcNode]*boundary)
	callers := callerIndex(eng.g)
	for _, n := range eng.g.nodes {
		if !wrapBoundaryPkgs[relPath(eng.module, n.pkg.Path)] {
			continue
		}
		n := n
		ast.Inspect(n.body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok || len(call.Args) != 3 {
				return true
			}
			fn := calleeFunc(n.pkg.Info, call)
			if !isModuleMethodFunc(fn, st.module, "internal/fault", "Policy", "Do") {
				return true
			}
			for _, h := range resolveBoundaryFns(eng, callers, n, call.Args[1], call.Args[2], nil) {
				if boundaries[h.node] == nil {
					boundaries[h.node] = &boundary{node: h.node, op: h.op}
				}
			}
			return true
		})
	}
	ordered := make([]*boundary, 0, len(boundaries))
	for _, b := range boundaries {
		ordered = append(ordered, b)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].node.Pos() < ordered[j].node.Pos() })

	type hit struct {
		o        origin
		boundary string
		op       string
	}
	seen := make(map[origin]hit)
	for _, b := range ordered {
		sum := eng.summaryOf(b.node)
		results := eng.resultVars(b.node)
		for i, rf := range sum.results {
			if i >= len(results) || !types.Implements(results[i].Type(), errorIface) {
				continue
			}
			for _, o := range rf.sortedOrigins() {
				if _, ok := seen[o]; !ok {
					seen[o] = hit{o: o, boundary: b.node.name, op: b.op}
				}
			}
		}
	}
	hits := make([]hit, 0, len(seen))
	for _, h := range seen {
		hits = append(hits, h)
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].o.pkg.Path != hits[j].o.pkg.Path {
			return hits[i].o.pkg.Path < hits[j].o.pkg.Path
		}
		return hits[i].o.pos < hits[j].o.pos
	})
	findings := make([]wrapFinding, 0, len(hits))
	for _, h := range hits {
		findings = append(findings, wrapFinding{
			pkg: h.o.pkg,
			pos: h.o.pos,
			msg: fmt.Sprintf("unclassified error (%s) can reach the retry boundary %s (op %q): construct it with fault.Fatal/Transient, wrap a classified error with %%w, or list it in a classifier",
				h.o.what, h.boundary, h.op),
			fixes: st.fixes[h.o],
		})
	}
	return findings
}

// isModuleMethodFunc reports whether fn is the method relPkg.recv.name of
// the analyzed module (a Pass-free isModuleMethod).
func isModuleMethodFunc(fn *types.Func, module, relPkg, recv, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	named := receiverNamed(fn)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == module+"/"+relPkg && named.Obj().Name() == recv
}

// callerIndex inverts the call graph: callee → (caller, call site).
type callerSite struct {
	caller *funcNode
	site   token.Pos
}

func callerIndex(g *callGraph) map[*funcNode][]callerSite {
	idx := make(map[*funcNode][]callerSite)
	for _, n := range g.nodes {
		for _, e := range n.edges {
			idx[e.callee] = append(idx[e.callee], callerSite{caller: n, site: e.site})
		}
	}
	return idx
}

// boundaryHit is one resolved retry-boundary function with the op string
// in force where it was resolved.
type boundaryHit struct {
	node *funcNode
	op   string
}

// resolveBoundaryFns resolves a function-valued expression to call-graph
// nodes, following parameters back through call sites: Policy.Do is almost
// always reached through a helper (core.Client.do receives op and fn and
// forwards both), so the function literal — and the op literal — live one
// or two frames up.
func resolveBoundaryFns(eng *taintEngine, callers map[*funcNode][]callerSite, encl *funcNode, opE, fnE ast.Expr, seen map[*types.Var]bool) []boundaryHit {
	op := "?"
	if opE != nil {
		if lit, ok := ast.Unparen(opE).(*ast.BasicLit); ok && lit.Kind == token.STRING {
			op = strings.Trim(lit.Value, `"`)
		}
	}
	if nodes := resolveFuncExpr(eng.g, encl, fnE); len(nodes) > 0 {
		hits := make([]boundaryHit, 0, len(nodes))
		for _, n := range nodes {
			hits = append(hits, boundaryHit{node: n, op: op})
		}
		return hits
	}
	id, ok := ast.Unparen(fnE).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := encl.pkg.Info.Uses[id].(*types.Var)
	if !ok || eng.paramHome[v] != encl || seen[v] {
		return nil
	}
	if seen == nil {
		seen = make(map[*types.Var]bool)
	}
	seen[v] = true
	fnIdx := eng.paramIdx[v]
	opIdx := -1
	if opID, ok := ast.Unparen(opE).(*ast.Ident); ok {
		if ov, ok := encl.pkg.Info.Uses[opID].(*types.Var); ok && eng.paramHome[ov] == encl {
			opIdx = eng.paramIdx[ov]
		}
	}
	var out []boundaryHit
	for _, cs := range callers[encl] {
		call := findCall(cs.caller, cs.site)
		if call == nil {
			continue
		}
		args := eng.argExprs(taintCtx{node: cs.caller, pkg: cs.caller.pkg}, call, encl)
		if fnIdx >= len(args) || args[fnIdx] == nil {
			continue
		}
		var callerOp ast.Expr
		if opIdx >= 0 && opIdx < len(args) {
			callerOp = args[opIdx]
		}
		out = append(out, resolveBoundaryFns(eng, callers, cs.caller, callerOp, args[fnIdx], seen)...)
	}
	return out
}

// findCall locates the CallExpr at pos inside n's body.
func findCall(n *funcNode, pos token.Pos) *ast.CallExpr {
	var out *ast.CallExpr
	ast.Inspect(n.body, func(m ast.Node) bool {
		if out != nil {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok && call.Pos() == pos {
			out = call
			return false
		}
		return true
	})
	return out
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// SpanBalance is the CFG path check for trace spans: every span a function
// opens with Tracer.Start/StartSpan must be closed (directly or via defer)
// on every return and explicit-panic path. A span left open corrupts the
// critical-path analysis silently — the Collector closes leaked spans at
// the environment's final time, stretching them to the end of the run.
//
// The check is intraprocedural and tracks only spans held in locals whose
// every use is a method receiver (sp.Close(p), sp.Annotate(...)). A span
// that escapes — returned, passed as an argument, stored in a field — is
// the consumer's responsibility and is not tracked; helpers that hand spans
// to their callers (e.g. core.Client's op helper) opt out by construction.
// A Close inside any function literal (deferred or not) counts as closing.
var SpanBalance = &Analyzer{
	Name:      "spanbalance",
	Kind:      "dataflow",
	Directive: "spanleak",
	Doc:       "require every trace span Start to be Closed on all return and panic paths",
	Run:       runSpanBalance,
}

// spanFact marks variable v as holding a span opened at pos and not yet
// closed on some path reaching the current point.
type spanFact struct {
	v   *types.Var
	pos token.Pos
}

func runSpanBalance(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		funcBodies(f, func(_ string, body *ast.BlockStmt) {
			checkSpanBalance(pass, body)
		})
	}
}

// isSpanStart reports whether call opens a trace span.
func isSpanStart(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Pkg.Info, call)
	return isModuleMethod(pass, fn, "internal/trace", "Tracer", "Start") ||
		isModuleMethod(pass, fn, "internal/trace", "Tracer", "StartSpan")
}

// isSpanClose reports whether call closes a trace span on an identifier
// receiver, returning the receiver's object.
func isSpanClose(pass *Pass, call *ast.CallExpr) types.Object {
	fn := calleeFunc(pass.Pkg.Info, call)
	if !isModuleMethod(pass, fn, "internal/trace", "Span", "Close") {
		return nil
	}
	sel := call.Fun.(*ast.SelectorExpr)
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.Pkg.Info.Uses[id]
}

func checkSpanBalance(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	// Report discarded span results: a Start whose span is never bound
	// cannot be closed at all. (Function literals are skipped — they are
	// checked as their own functions.)
	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isSpanStart(pass, call) {
				pass.Report(call.Pos(), "trace span is started and immediately discarded; bind it and Close it on every path, or annotate //pcsi:allow spanleak")
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != "_" || i >= len(n.Rhs) {
					continue
				}
				if call, ok := n.Rhs[i].(*ast.CallExpr); ok && isSpanStart(pass, call) {
					pass.Report(call.Pos(), "trace span is started and immediately discarded; bind it and Close it on every path, or annotate //pcsi:allow spanleak")
				}
			}
		}
		return true
	})

	// Escape analysis: a candidate span variable is tracked only while its
	// every use is a method receiver or an assignment target. Any other use
	// (argument, return value, field store, composite literal) hands the
	// close obligation to someone else.
	recvUse := make(map[*ast.Ident]bool)
	lhsUse := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := n.X.(*ast.Ident); ok {
				recvUse[id] = true
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					lhsUse[id] = true
				}
			}
		}
		return true
	})
	escaped := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || recvUse[id] || lhsUse[id] {
			return true
		}
		if obj := info.Uses[id]; obj != nil {
			escaped[obj] = true
		}
		return true
	})

	// spanVar resolves an assignment target to a trackable span variable.
	spanVar := func(lhs ast.Expr) *types.Var {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || escaped[v] {
			return nil
		}
		return v
	}

	killVar := func(facts factSet, obj types.Object) factSet {
		out := facts
		copied := false
		for f := range facts {
			if sf, ok := f.(spanFact); ok && sf.v == obj {
				if !copied {
					out = facts.clone()
					copied = true
				}
				delete(out, f)
			}
		}
		return out
	}

	tf := func(n ast.Node, in factSet) factSet {
		out := in
		// Kills: any sp.Close(...) within the node, including inside defer
		// statements and function literals (a closure that closes the span
		// discharges the obligation on whichever path runs it).
		ast.Inspect(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if obj := isSpanClose(pass, call); obj != nil {
					out = killVar(out, obj)
				}
			}
			return true
		})
		// Gens: binding a fresh span to a tracked local.
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				call, ok := n.Rhs[i].(*ast.CallExpr)
				if !ok || !isSpanStart(pass, call) {
					continue
				}
				if v := spanVar(lhs); v != nil {
					out = killVar(out, v)
					out = out.clone()
					out[spanFact{v: v, pos: call.Pos()}] = true
				}
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if i >= len(vs.Values) {
							break
						}
						call, ok := vs.Values[i].(*ast.CallExpr)
						if !ok || !isSpanStart(pass, call) {
							continue
						}
						if v := spanVar(name); v != nil {
							out = killVar(out, v)
							out = out.clone()
							out[spanFact{v: v, pos: call.Pos()}] = true
						}
					}
				}
			}
		}
		return out
	}

	g := buildCFG(body, info)
	in := forwardDataflow(g, tf)

	reportOpen := func(pos token.Pos, facts factSet, where string) {
		var open []spanFact
		for f := range facts {
			if sf, ok := f.(spanFact); ok {
				open = append(open, sf)
			}
		}
		sort.Slice(open, func(i, j int) bool { return open[i].pos < open[j].pos })
		for _, sf := range open {
			pass.Report(pos, "trace span %s opened at line %d may still be open on this %s; Close it (or defer its Close) on every path, or annotate //pcsi:allow spanleak",
				sf.v.Name(), pass.Fset.Position(sf.pos).Line, where)
		}
	}

	replay(g, in, tf, func(n ast.Node, before factSet) {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			reportOpen(n.Pos(), before, "return path")
		case *ast.ExprStmt:
			if isPanicCall(info, n.X) {
				reportOpen(n.Pos(), before, "panic path")
			}
		}
	})
	if final := finalFacts(g, in, tf); len(final) > 0 {
		reportOpen(body.Rbrace, final, "fall-off-the-end path")
	}
}

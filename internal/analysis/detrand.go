package analysis

import (
	"go/ast"
	"go/types"
)

// globalRandFuncs are the math/rand package-level functions that draw from
// the shared, unseedable-per-experiment global source. rand.New,
// rand.NewSource, rand.NewZipf and the type names stay legal: RNGs must be
// constructed from a plumbed seed and injected.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// globalRandV2Funcs is the same list for math/rand/v2, should it ever be
// adopted: every top-level draw uses the global ChaCha8 source.
var globalRandV2Funcs = map[string]bool{
	"Int": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "N": true,
}

// DetRand enforces DESIGN.md §5's determinism invariant on randomness:
// no draws from the global math/rand source, and no unseeded testing/quick
// configurations. Every RNG must be derived from an explicit seed (sim.Env
// or a literal in tests) so that "same seed ⇒ identical output tables".
var DetRand = &Analyzer{
	Name:      "detrand",
	Kind:      "syntactic",
	Directive: "globalrand",
	Doc:       "forbid global math/rand draws and unseeded testing/quick configs",
	Run:       runDetRand,
}

func runDetRand(pass *Pass) {
	forEachPkgRef(pass, "math/rand", func(sel *ast.SelectorExpr) {
		if globalRandFuncs[sel.Sel.Name] {
			pass.Report(sel.Pos(),
				"rand.%s draws from the unseeded global source; inject a *rand.Rand built from a plumbed seed (e.g. sim.Env.Rand or ForkRand)",
				sel.Sel.Name)
		}
	})
	forEachPkgRef(pass, "math/rand/v2", func(sel *ast.SelectorExpr) {
		if globalRandV2Funcs[sel.Sel.Name] {
			pass.Report(sel.Pos(),
				"rand.%s draws from the global math/rand/v2 source; inject a seeded *rand.Rand instead", sel.Sel.Name)
		}
	})
	checkQuickConfigs(pass)
}

// checkQuickConfigs flags testing/quick usage that falls back to the
// wall-clock-seeded default RNG: Config literals without a Rand field and
// Check/CheckEqual calls with a nil config.
func checkQuickConfigs(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				tv, ok := info.Types[n]
				if !ok || !isQuickConfig(tv.Type) {
					return true
				}
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Rand" {
							return true
						}
					}
				}
				pass.Report(n.Pos(),
					"testing/quick config without Rand uses a wall-clock-seeded RNG; set Rand: rand.New(rand.NewSource(<literal>))")
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "Check" && sel.Sel.Name != "CheckEqual") {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := info.Uses[id].(*types.PkgName)
				if !ok || pn.Imported().Path() != "testing/quick" {
					return true
				}
				last := n.Args[len(n.Args)-1]
				if lid, ok := last.(*ast.Ident); ok && lid.Name == "nil" {
					pass.Report(last.Pos(),
						"nil testing/quick config uses a wall-clock-seeded RNG; pass &quick.Config{Rand: rand.New(rand.NewSource(<literal>))}")
				}
			}
			return true
		})
	}
}

func isQuickConfig(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "testing/quick" && obj.Name() == "Config"
}
